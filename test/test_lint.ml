(* Lint subsystem tests: every public rule code has a trigger, the JSON
   codec round-trips, the registry filters and remaps, the sizer preflight
   refuses Error findings, and the shipped generators stay Error-clean. *)

open Test_util

let codes diags = List.map (fun d -> d.Diag.code) diags
let has_code c diags = List.mem c (codes diags)

let check_has_code ~msg c diags =
  if not (has_code c diags) then
    Alcotest.failf "%s: expected %s in [%s]" msg c
      (String.concat "; " (codes diags))

(* ---- fixture circuits --------------------------------------------------- *)

let nand2 = Cells.Library.cell_exn lib ~fn:(Cells.Fn.Nand 2) ~drive_index:0

(* a,b -> g (output), plus gate [d] with no fanout and no output mark. *)
let dangling_circuit () =
  let c = Netlist.Circuit.create ~name:"dangling" () in
  let a = Netlist.Circuit.add_input c ~name:"a" in
  let b = Netlist.Circuit.add_input c ~name:"b" in
  let g = Netlist.Circuit.add_gate c ~name:"g" ~cell:nand2 ~fanins:[| a; b |] in
  Netlist.Circuit.mark_output c g;
  let _ = Netlist.Circuit.add_gate c ~name:"d" ~cell:nand2 ~fanins:[| a; b |] in
  c

(* [u] feeds only [d]; [d] dangles. u is unreachable-from-outputs (CIRC005)
   while d itself is the dangling gate (CIRC004). *)
let unreachable_circuit () =
  let c = Netlist.Circuit.create ~name:"unreach" () in
  let a = Netlist.Circuit.add_input c ~name:"a" in
  let b = Netlist.Circuit.add_input c ~name:"b" in
  let g = Netlist.Circuit.add_gate c ~name:"g" ~cell:nand2 ~fanins:[| a; b |] in
  Netlist.Circuit.mark_output c g;
  let u = Netlist.Circuit.add_gate c ~name:"u" ~cell:nand2 ~fanins:[| a; b |] in
  let _ = Netlist.Circuit.add_gate c ~name:"d" ~cell:nand2 ~fanins:[| u; a |] in
  c

(* ---- fixture libraries -------------------------------------------------- *)

let mk_lut ?(rows = [| 2.0; 10.0 |]) ?(cols = [| 1.0; 8.0 |]) f =
  Numerics.Lut.of_function ~rows ~cols f

let good_lut ?rows ?cols () =
  mk_lut ?rows ?cols (fun s l -> 1.0 +. (0.05 *. s) +. (0.5 *. l))

let mk_cell ?(name = "TN") ?(fn = Cells.Fn.Nand 2) ?(drive_index = 0)
    ?(strength = 1.0) ?(area = 1.0) ?(input_cap = 1.0) ?delay ?output_slew () =
  let delay = match delay with Some d -> d | None -> good_lut () in
  let output_slew =
    match output_slew with Some s -> s | None -> good_lut ()
  in
  {
    Cells.Cell.name;
    fn;
    drive_index;
    strength;
    area;
    input_cap;
    delay;
    output_slew;
  }

let mk_lib ?(strengths = [| 1.0; 2.0 |]) cells =
  Cells.Library.of_cells ~name:"testlib" ~tau:5.0 ~strengths cells

(* Every cell's delay table tops out at 1 fF, so the default 4 fF output
   load exceeds even the strongest drive: CIRC006. *)
let narrow = good_lut ~cols:[| 0.5; 1.0 |] ()

let weak_lib () =
  mk_lib
    [
      mk_cell ~name:"W1" ~delay:narrow ~output_slew:narrow ();
      mk_cell ~name:"W2" ~drive_index:1 ~strength:2.0 ~area:2.0 ~delay:narrow
        ~output_slew:narrow ();
    ]

(* The strongest cell covers the load but the minimum cell does not, so a
   gate left at minimum size extrapolates: CIRC007 (and not CIRC006). *)
let narrow_min_lib () =
  mk_lib
    [
      mk_cell ~name:"N1" ~delay:narrow ~output_slew:narrow ();
      mk_cell ~name:"N2" ~drive_index:1 ~strength:2.0 ~area:2.0
        ~delay:(good_lut ~cols:[| 1.0; 100.0 |] ())
        ~output_slew:(good_lut ~cols:[| 1.0; 100.0 |] ())
        ();
    ]

let one_gate_circuit custom_lib =
  let cell = Cells.Library.min_cell custom_lib ~fn:(Cells.Fn.Nand 2) in
  let c = Netlist.Circuit.create ~name:"one" () in
  let a = Netlist.Circuit.add_input c ~name:"a" in
  let b = Netlist.Circuit.add_input c ~name:"b" in
  let g = Netlist.Circuit.add_gate c ~name:"g" ~cell ~fanins:[| a; b |] in
  Netlist.Circuit.mark_output c g;
  c

(* Delay decreases along the load axis: LIB001 (an Error) — used both as a
   pack trigger and to make the sizer preflight refuse. *)
let nonmonotone_load_lib () =
  mk_lib
    [
      mk_cell ~name:"M1"
        ~delay:
          (Numerics.Lut.create ~rows:[| 2.0; 10.0 |] ~cols:[| 1.0; 8.0 |]
             ~values:[| [| 5.0; 4.0 |]; [| 6.0; 5.5 |] |])
        ();
      mk_cell ~name:"M2" ~drive_index:1 ~strength:2.0 ~area:2.0 ();
    ]

(* ---- per-code triggers -------------------------------------------------- *)

let bench_cycle = "INPUT(a)\nOUTPUT(y)\nu = AND(a, w)\nw = OR(u, a)\ny = NAND(u, w)\n"
let bench_multi = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n"
let bench_undef = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"
let bench_syntax = "INPUT(a)\nOUTPUT(y)\nthis is not bench\ny = NOT(a)\n"
let bench_gate = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LATCH(a, b)\n"

(* ---- statrace fixtures (inline sources, parsed, never compiled) --------- *)

let statrace_parse (path, text) =
  match Srcmodel.Source.of_string ~tool:Statrace.Analyze.tool ~path text with
  | Ok s -> s
  | Error d -> Alcotest.failf "fixture %s: %s" path (Diag.to_string d)

let statrace_findings texts =
  (Statrace.Analyze.run (List.map statrace_parse texts))
    .Statrace.Analyze.findings

let par_ref =
  ( "par_ref.ml",
    "let hits = ref 0\n\
     let run () = Domain.join (Domain.spawn (fun () -> incr hits))\n" )

let par_container =
  ( "par_container.ml",
    "let cache = Hashtbl.create 7\n\
     let run () =\n\
    \  Domain.join (Domain.spawn (fun () -> Hashtbl.replace cache 1 2))\n" )

let par_array =
  ( "par_array.ml",
    "let slots = Array.make 4 0\n\
     let run () = Domain.join (Domain.spawn (fun () -> slots.(0) <- 1))\n" )

let par_dls =
  ( "par_dls.ml",
    "let run () =\n\
    \  Domain.join\n\
    \    (Domain.spawn (fun () ->\n\
    \       let k = Domain.DLS.new_key (fun () -> 0) in\n\
    \       Domain.DLS.get k))\n" )

let par_rmw =
  ( "par_rmw.ml",
    "let total = Atomic.make 0\n\
     let run () =\n\
    \  Domain.join\n\
    \    (Domain.spawn (fun () -> Atomic.set total (Atomic.get total + 1)))\n" )

let par_captured =
  ( "par_captured.ml",
    "let run () =\n\
    \  let acc = ref 0 in\n\
    \  Domain.join (Domain.spawn (fun () -> acc := 1));\n\
    \  !acc\n" )

let par_stale =
  ( "par_stale.ml",
    "(* statrace: safe — nothing here needs suppressing *)\n\
     let pure x = x + 1\n" )

(* ---- statflow fixtures (inline sources, parsed, never compiled) --------- *)

let statflow_parse (path, text) =
  match Srcmodel.Source.of_string ~tool:Statflow.Analyze.tool ~path text with
  | Ok s -> s
  | Error d -> Alcotest.failf "fixture %s: %s" path (Diag.to_string d)

let statflow_findings texts =
  let config =
    { Statflow.Analyze.default_config with entries = [ "run" ] }
  in
  (Statflow.Analyze.run ~config (List.map statflow_parse texts))
    .Statflow.Analyze.findings

let flow_construct =
  ( "flow_construct.ml",
    "let sink = ref (0, 0)\nlet run n = for i = 0 to n do sink := (i, i) done\n"
  )

let flow_closure =
  ( "flow_closure.ml",
    "let sink = ref (fun () -> 0)\n\
     let run n = for i = 0 to n do sink := (fun () -> i) done\n" )

let flow_builder =
  ( "flow_builder.ml",
    "let run n = for i = 1 to n do ignore (Array.make i 0) done\n" )

let flow_boxed = ("flow_boxed.ml", "let run x = (x *. 2.0) +. 1.0\n")

let flow_leak =
  ( "flow_leak.ml",
    "let run p =\n\
    \  let ic = open_in p in\n\
    \  if input_line ic = \"\" then failwith \"empty\";\n\
    \  close_in ic\n" )

let flow_partial = ("flow_partial.ml", "let run xs = List.hd xs + 1\n")

let flow_hash =
  ( "flow_hash.ml",
    "let tbl = Hashtbl.create 7\n\
     let run () = Hashtbl.fold (fun k v acc -> acc + (k * v)) tbl 0\n" )

let flow_clock = ("flow_clock.ml", "let run () = Sys.time () > 0.0\n")

let flow_rand = ("flow_rand.ml", "let run n = Random.int n\n")

let flow_stale =
  ( "flow_stale.ml",
    "(* statflow: safe — nothing here needs suppressing *)\n\
     let run x = x + 1\n" )

(* One (code, thunk) pair per public rule; the coverage test below asserts
   this list spans the whole non-internal catalogue. *)
let triggers : (string * (unit -> Diag.t list)) list =
  [
    ("CIRC001", fun () -> Netlist.Bench_io.lint bench_cycle);
    ("CIRC002", fun () -> Netlist.Bench_io.lint bench_multi);
    ("CIRC003", fun () -> Netlist.Bench_io.lint bench_undef);
    ("CIRC004", fun () -> Lint.Circuit_rules.check (dangling_circuit ()));
    ("CIRC005", fun () -> Lint.Circuit_rules.check (unreachable_circuit ()));
    ( "CIRC006",
      fun () ->
        let l = weak_lib () in
        Lint.Circuit_rules.check ~lib:l (one_gate_circuit l) );
    ( "CIRC007",
      fun () ->
        let l = narrow_min_lib () in
        Lint.Circuit_rules.check ~lib:l (one_gate_circuit l) );
    ( "CIRC008",
      fun () ->
        let c = Netlist.Circuit.create ~name:"noout" () in
        let _ = Netlist.Circuit.add_input c ~name:"a" in
        Netlist.Circuit.validate_diag c );
    ( "CIRC009",
      fun () -> Netlist.Circuit.validate_diag (Netlist.Circuit.create ~name:"empty" ()) );
    ( "LIB001",
      fun () -> Lint.Library_rules.check (nonmonotone_load_lib ()) );
    ( "LIB002",
      fun () ->
        Lint.Library_rules.check_cell
          (mk_cell
             ~delay:
               (Numerics.Lut.create ~rows:[| 2.0; 10.0 |] ~cols:[| 1.0; 8.0 |]
                  ~values:[| [| 5.0; 6.0 |]; [| 4.0; 5.0 |] |])
             ()) );
    ( "LIB003",
      fun () ->
        Lint.Library_rules.check_cell
          (mk_cell
             ~delay:
               (Numerics.Lut.create ~rows:[| 2.0; 10.0 |] ~cols:[| 1.0; 8.0 |]
                  ~values:[| [| -1.0; 0.0 |]; [| 0.0; 1.0 |] |])
             ()) );
    ("LIB004", fun () -> Lint.Library_rules.check_cell (mk_cell ~input_cap:0.0 ()));
    ("LIB005", fun () -> Lint.Library_rules.check (mk_lib [ mk_cell () ]));
    ( "LIB006",
      fun () ->
        Lint.Library_rules.check
          (mk_lib
             [
               mk_cell ~name:"A1" ~area:2.0 ();
               mk_cell ~name:"A2" ~drive_index:1 ~strength:2.0 ~area:1.0 ();
             ]) );
    ( "LIB007",
      fun () ->
        let l = mk_lib [ mk_cell () ] in
        Lint.Extrapolation.reset l;
        let c = Cells.Library.min_cell l ~fn:(Cells.Fn.Nand 2) in
        let _ = Numerics.Lut.query c.Cells.Cell.delay ~row:500.0 ~col:500.0 in
        Lint.Extrapolation.collect l );
    ( "STAT001",
      fun () -> Lint.Stat_rules.check_points [ (0.0, 0.5); (1.0, 0.3) ] );
    ( "STAT002",
      fun () -> Lint.Stat_rules.check_points [ (0.0, -0.2); (1.0, 1.2) ] );
    ( "STAT003",
      fun () ->
        Lint.Stat_rules.check_model (Variation.Model.create ~systematic:10.0 ()) );
    ( "STAT004",
      fun () ->
        Lint.Stat_rules.check_model
          (Variation.Model.create ~systematic:0.0 ~random_floor:0.0 ()) );
    ( "STAT005",
      fun () ->
        (* resize a gate behind the incremental engine's back: paranoid mode
           must catch the stale annotation against the scratch oracle *)
        let c = tiny_circuit () in
        let full = Ssta.Fullssta.run c in
        let diverged = ref [] in
        List.iter
          (fun g ->
            if !diverged = [] then
              let cur = Netlist.Circuit.cell_exn c g in
              Array.iter
                (fun cell ->
                  if
                    !diverged = []
                    && Cells.Cell.name cell <> Cells.Cell.name cur
                  then begin
                    Netlist.Circuit.set_cell c g cell;
                    match
                      Ssta.Fullssta.update ~paranoid:true full ~resized:[]
                    with
                    | exception Ssta.Fullssta.Divergence d -> diverged := [ d ]
                    | _ -> Netlist.Circuit.set_cell c g cur
                  end)
                (Cells.Library.sizes_of_fn lib (Cells.Cell.fn cur)))
          (Netlist.Circuit.gates c);
        !diverged );
    ("BENCH001", fun () -> Netlist.Bench_io.lint bench_syntax);
    ("BENCH002", fun () -> Netlist.Bench_io.lint bench_gate);
    (* ABS rules: statcheck runs over the tiny circuit cross-checked against
       deliberately corrupted engine lookups (a sound enclosure can only be
       escaped by feeding it a lie). *)
    ( "ABS001",
      fun () ->
        let sc =
          Absint.Statcheck.run
            ~config:
              {
                Absint.Statcheck.default_config with
                semantics = Absint.Domain.Distribution_free;
              }
            ~lib (tiny_circuit ())
        in
        Lint.Absint_rules.check_fullssta sc (fun _ ->
            Numerics.Clark.moments ~mean:1e7 ~var:0.0) );
    ( "ABS002",
      fun () ->
        let sc =
          Absint.Statcheck.run
            ~config:
              {
                Absint.Statcheck.default_config with
                semantics = Absint.Domain.Distribution_free;
              }
            ~lib (tiny_circuit ())
        in
        Lint.Absint_rules.check_fullssta sc (fun id ->
            Numerics.Clark.moments
              ~mean:(Numerics.Interval.mid (Absint.Statcheck.mean_interval sc id))
              ~var:1e9) );
    ( "ABS003",
      fun () ->
        let sc = Absint.Statcheck.run ~lib (tiny_circuit ()) in
        Lint.Absint_rules.check_fassta ~engine:`Fast sc (fun _ ->
            Numerics.Clark.moments ~mean:1e7 ~var:0.0) );
    ( "ABS004",
      fun () ->
        let sc = Absint.Statcheck.run ~lib (tiny_circuit ()) in
        Lint.Absint_rules.check_budget sc
          ~fast:(fun _ -> Numerics.Clark.moments ~mean:1e7 ~var:0.0)
          ~exact:(fun _ -> Numerics.Clark.moments ~mean:0.0 ~var:0.0) );
    ( "ABS005",
      fun () ->
        let sc = Absint.Statcheck.run ~lib (tiny_circuit ()) in
        Lint.Absint_rules.check_budget_tolerance ~tol:0.0 sc );
    ( "PAR000",
      fun () ->
        match Srcmodel.Source.of_string ~tool:Statrace.Analyze.tool ~path:"bad.ml" "let = (" with
        | Error d -> [ d ]
        | Ok _ -> [] );
    ("PAR001", fun () -> statrace_findings [ par_ref ]);
    ("PAR002", fun () -> statrace_findings [ par_container ]);
    ("PAR003", fun () -> statrace_findings [ par_array ]);
    ("PAR004", fun () -> statrace_findings [ par_dls ]);
    ("PAR005", fun () -> statrace_findings [ par_rmw ]);
    ("PAR006", fun () -> statrace_findings [ par_captured ]);
    ("PAR007", fun () -> statrace_findings [ par_stale ]);
    ( "FLOW000",
      fun () ->
        match
          Srcmodel.Source.of_string ~tool:Statflow.Analyze.tool ~path:"bad.ml"
            "let = ("
        with
        | Error d -> [ d ]
        | Ok _ -> [] );
    ("HOT001", fun () -> statflow_findings [ flow_construct ]);
    ("HOT002", fun () -> statflow_findings [ flow_closure ]);
    ("HOT003", fun () -> statflow_findings [ flow_builder ]);
    ("HOT004", fun () -> statflow_findings [ flow_boxed ]);
    ("EXC001", fun () -> statflow_findings [ flow_leak ]);
    ("EXC002", fun () -> statflow_findings [ flow_partial ]);
    ("DET001", fun () -> statflow_findings [ flow_hash ]);
    ("DET002", fun () -> statflow_findings [ flow_clock ]);
    ("DET003", fun () -> statflow_findings [ flow_rand ]);
    ("FLOW007", fun () -> statflow_findings [ flow_stale ]);
  ]

let trigger_tests =
  List.map
    (fun (code, thunk) ->
      Alcotest.test_case ("trigger " ^ code) `Quick (fun () ->
          check_has_code ~msg:code code (thunk ())))
    triggers

(* Every non-internal catalogue entry must have a trigger above; the
   catalogue itself must contain every code the triggers claim. *)
let catalogue_coverage () =
  let public =
    List.filter_map
      (fun (m : Lint.Rule.meta) ->
        if m.Lint.Rule.internal then None else Some m.Lint.Rule.code)
      Lint.Rule.all
  in
  let covered = List.map fst triggers in
  List.iter
    (fun c ->
      if not (List.mem c covered) then
        Alcotest.failf "catalogue code %s has no trigger test" c)
    public;
  List.iter
    (fun c ->
      if not (Lint.Rule.mem c) then
        Alcotest.failf "trigger %s is not in the catalogue" c)
    covered

(* Triggered severities must match the catalogue defaults. *)
let severities_match_catalogue () =
  List.iter
    (fun (code, thunk) ->
      let meta =
        match Lint.Rule.find code with
        | Some m -> m
        | None -> Alcotest.failf "%s missing from catalogue" code
      in
      let ds = List.filter (fun d -> d.Diag.code = code) (thunk ()) in
      List.iter
        (fun d ->
          if d.Diag.severity <> meta.Lint.Rule.severity then
            Alcotest.failf "%s fired at %s, catalogue says %s" code
              (Diag.Severity.to_string d.Diag.severity)
              (Diag.Severity.to_string meta.Lint.Rule.severity))
        ds)
    triggers

(* ---- bench file:line locations ----------------------------------------- *)

let bench_locations () =
  let ds = Netlist.Bench_io.lint ~file:"t.bench" bench_cycle in
  check_has_code ~msg:"cycle" "CIRC001" ds;
  List.iter
    (fun d ->
      match d.Diag.location with
      | Diag.File { file; line } ->
          Alcotest.(check string) "file" "t.bench" file;
          check_true "positive line" (line > 0)
      | _ -> Alcotest.fail "bench diagnostics must carry file:line")
    ds

let bench_lint_file () =
  let path = Filename.temp_file "statlint" ".bench" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc bench_multi);
      let ds = Netlist.Bench_io.lint_file ~path in
      check_has_code ~msg:"from file" "CIRC002" ds;
      match ds with
      | { Diag.location = Diag.File { file; line = 4 }; _ } :: _ ->
          Alcotest.(check string) "path" path file
      | _ -> Alcotest.fail "expected CIRC002 at line 4")

(* A bench whose only problem is warning-level must still load permissively
   so the lint front end can report it (instead of dying in Build.finish). *)
let bench_permissive_load () =
  let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nu = NOT(a)\n" in
  Alcotest.(check int) "parse-clean" 0 (List.length (Netlist.Bench_io.lint text));
  (try
     ignore (Netlist.Bench_io.of_string ~lib text);
     Alcotest.fail "strict load should reject the dangling gate"
   with Invalid_argument _ -> ());
  let c = Netlist.Bench_io.of_string ~validate:false ~lib text in
  check_has_code ~msg:"dangling reported" "CIRC004"
    (Lint.Circuit_rules.check ~lib c)

(* A clean bench round-trips: lint finds nothing, load succeeds. *)
let bench_clean () =
  let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = NAND(a, b)\ny = NOT(u)\n" in
  Alcotest.(check int) "no diags" 0 (List.length (Netlist.Bench_io.lint text));
  let c = Netlist.Bench_io.of_string ~lib text in
  Alcotest.(check int) "gates" 2 (Netlist.Circuit.gate_count c)

(* ---- deprecated string validate wrapper --------------------------------- *)

let validate_wrapper () =
  let c = dangling_circuit () in
  Alcotest.(check (list string))
    "wrapper = rendered diags"
    (List.map Diag.to_string (Netlist.Circuit.validate_diag c))
    (Netlist.Circuit.validate c);
  check_true "non-empty" (Netlist.Circuit.validate c <> [])

(* ---- registry ----------------------------------------------------------- *)

let registry_disable () =
  let ds = Lint.Circuit_rules.check (dangling_circuit ()) in
  check_has_code ~msg:"before" "CIRC004" ds;
  let r = Lint.Registry.disable Lint.Registry.default "CIRC004" in
  check_true "after" (not (has_code "CIRC004" (Lint.Registry.apply r ds)))

let registry_override () =
  let ds = Lint.Circuit_rules.check (dangling_circuit ()) in
  let r =
    Lint.Registry.override Lint.Registry.default ~code:"CIRC004"
      ~severity:Diag.Severity.Error
  in
  let ds' = Lint.Registry.apply r ds in
  check_true "now an error"
    (List.exists
       (fun d -> d.Diag.code = "CIRC004" && d.Diag.severity = Diag.Severity.Error)
       ds');
  check_true "has_errors" (Diag.has_errors ds')

let registry_unknown_code () =
  (try
     ignore (Lint.Registry.disable Lint.Registry.default "NOPE001");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  match Lint.Registry.of_spec ~overrides:[ "CIRC004=loud" ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad severity spec accepted"

(* The PAR pack goes through the same registry and JSON plumbing as every
   other pack: --disable drops it, --severity remaps it, and Report JSON
   round-trips the findings. *)
let registry_par_pack () =
  let ds = statrace_findings [ par_ref ] in
  check_has_code ~msg:"before" "PAR001" ds;
  (match Lint.Registry.of_spec ~disable:[ "PAR001" ] () with
  | Error e -> Alcotest.failf "disable spec rejected: %s" e
  | Ok r -> check_true "disabled" (not (has_code "PAR001" (Lint.Registry.apply r ds))));
  let warn = statrace_findings [ par_rmw ] in
  check_has_code ~msg:"rmw" "PAR005" warn;
  (match Lint.Registry.of_spec ~overrides:[ "PAR005=error" ] () with
  | Error e -> Alcotest.failf "override spec rejected: %s" e
  | Ok r ->
      check_true "promoted"
        (List.exists
           (fun d ->
             d.Diag.code = "PAR005" && d.Diag.severity = Diag.Severity.Error)
           (Lint.Registry.apply r warn)));
  let json = Lint.Report.to_json [ ("races", ds) ] in
  match Lint.Report.of_json json with
  | Error e -> Alcotest.failf "PAR json: %s" e
  | Ok [ ("races", back) ] ->
      if back <> ds then Alcotest.fail "PAR findings did not round-trip"
  | Ok _ -> Alcotest.fail "unexpected report shape"

let registry_of_spec () =
  match
    Lint.Registry.of_spec ~disable:[ "CIRC005" ]
      ~overrides:[ "CIRC007=error" ] ()
  with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok r ->
      let l = narrow_min_lib () in
      let ds =
        Lint.Registry.apply r
          (Lint.Circuit_rules.check ~lib:l (one_gate_circuit l))
      in
      check_true "CIRC007 promoted"
        (List.exists
           (fun d ->
             d.Diag.code = "CIRC007" && d.Diag.severity = Diag.Severity.Error)
           ds)

(* ---- JSON --------------------------------------------------------------- *)

let json_roundtrip () =
  let targets =
    [
      ( "bad.bench",
        Netlist.Bench_io.lint bench_cycle
        @ Lint.Circuit_rules.check (dangling_circuit ()) );
      ("clean", []);
      ( "stats",
        Lint.Stat_rules.check_points [ (0.0, -0.2); (1.0, 1.2) ]
        @ Lint.Stat_rules.check_model
            (Variation.Model.create ~systematic:10.0 ()) );
    ]
  in
  let json = Lint.Report.to_json targets in
  match Lint.Report.of_json json with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok back ->
      Alcotest.(check int) "target count" (List.length targets) (List.length back);
      List.iter2
        (fun (n1, d1) (n2, d2) ->
          Alcotest.(check string) "name" n1 n2;
          if d1 <> d2 then Alcotest.failf "diagnostics for %s did not round-trip" n1)
        targets back

let json_rejects_garbage () =
  (match Lint.Report.of_json "{\"version\":2,\"targets\":[]}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong version accepted");
  match Lint.Report.of_json "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

(* ---- report / exit codes ------------------------------------------------ *)

let exit_codes () =
  let err = Netlist.Bench_io.lint bench_cycle in
  let warn = Lint.Circuit_rules.check (dangling_circuit ()) in
  Alcotest.(check int) "errors" 1 (Lint.Report.exit_code err);
  Alcotest.(check int) "warnings" 0 (Lint.Report.exit_code warn);
  Alcotest.(check int) "warnings strict" 3 (Lint.Report.exit_code ~strict:true warn);
  Alcotest.(check int) "clean" 0 (Lint.Report.exit_code []);
  Alcotest.(check int) "clean strict" 0 (Lint.Report.exit_code ~strict:true [])

(* ---- engine / preflight ------------------------------------------------- *)

let default_setup_clean () =
  check_true "library clean of errors" (not (Diag.has_errors (Lint.Engine.check_library lib)));
  Alcotest.(check int) "model clean" 0
    (List.length (Lint.Engine.check_model Variation.Model.default))

let generators_error_clean () =
  List.iter
    (fun (e : Benchgen.Iscas_like.entry) ->
      let c = e.Benchgen.Iscas_like.build ~lib in
      let ds = Lint.Engine.check_all ~lib c in
      if Diag.has_errors ds then
        Alcotest.failf "%s has lint errors: %s" e.Benchgen.Iscas_like.name
          (String.concat "; "
             (List.map Diag.to_string (List.filter (fun d -> d.Diag.severity = Diag.Severity.Error) ds))))
    Benchgen.Iscas_like.suite

let preflight_rejects () =
  let l = nonmonotone_load_lib () in
  let c = one_gate_circuit l in
  try
    ignore (Core.Sizer.optimize ~lib:l c);
    Alcotest.fail "expected Lint.Preflight.Rejected"
  with Lint.Preflight.Rejected ds ->
    check_has_code ~msg:"payload" "LIB001" ds;
    check_true "payload has errors" (Diag.has_errors ds)

let preflight_escape_hatch () =
  let l = nonmonotone_load_lib () in
  let c = one_gate_circuit l in
  let config = { Core.Sizer.default_config with max_iterations = 2 } in
  let res = Core.Sizer.optimize ~ignore_lint:true ~config ~lib:l c in
  check_true "ran" (res.Core.Sizer.final_area > 0.0)

let preflight_passes_clean () =
  let c = tiny_circuit () in
  let ds = Lint.Preflight.gate ~lib c in
  check_true "no errors back" (not (Diag.has_errors ds))

(* FULLSSTA's post-run pdf self-check stays silent on a healthy run. *)
let fullssta_self_check () =
  let full = Ssta.Fullssta.run (tiny_circuit ()) in
  Alcotest.(check int) "clean" 0 (List.length (Ssta.Fullssta.check full))

(* ---- LUT clamp counters ------------------------------------------------- *)

let lut_oob_counting () =
  let lut = good_lut () in
  Alcotest.(check int) "fresh" 0 (Numerics.Lut.oob_count lut);
  let inside = Numerics.Lut.query lut ~row:5.0 ~col:4.0 in
  Alcotest.(check int) "in range free" 0 (Numerics.Lut.oob_count lut);
  let clamped = Numerics.Lut.query lut ~row:5.0 ~col:400.0 in
  Alcotest.(check int) "oob counted" 1 (Numerics.Lut.oob_count lut);
  (* clamp semantics: far-out query equals the edge value *)
  close ~tol:1e-12 "clamped to edge" (Numerics.Lut.query lut ~row:5.0 ~col:8.0) clamped;
  check_true "interior value sane" (inside > 0.0);
  Numerics.Lut.reset_oob lut;
  Alcotest.(check int) "reset" 0 (Numerics.Lut.oob_count lut)

let extrapolation_once_per_cell () =
  let l = mk_lib [ mk_cell () ] in
  Lint.Extrapolation.reset l;
  let c = Cells.Library.min_cell l ~fn:(Cells.Fn.Nand 2) in
  for _ = 1 to 5 do
    ignore (Numerics.Lut.query c.Cells.Cell.delay ~row:500.0 ~col:500.0)
  done;
  let ds = Lint.Extrapolation.collect l in
  Alcotest.(check int) "one diag per cell" 1 (List.length ds);
  check_has_code ~msg:"code" "LIB007" ds;
  Lint.Extrapolation.reset l;
  Alcotest.(check int) "reset clears" 0 (List.length (Lint.Extrapolation.collect l))

(* ---- suite -------------------------------------------------------------- *)

let () =
  Alcotest.run "lint"
    [
      ("triggers", trigger_tests);
      ( "catalogue",
        [
          Alcotest.test_case "coverage" `Quick catalogue_coverage;
          Alcotest.test_case "severities" `Quick severities_match_catalogue;
        ] );
      ( "bench",
        [
          Alcotest.test_case "locations" `Quick bench_locations;
          Alcotest.test_case "lint_file" `Quick bench_lint_file;
          Alcotest.test_case "permissive load" `Quick bench_permissive_load;
          Alcotest.test_case "clean" `Quick bench_clean;
        ] );
      ( "compat",
        [ Alcotest.test_case "validate wrapper" `Quick validate_wrapper ] );
      ( "registry",
        [
          Alcotest.test_case "disable" `Quick registry_disable;
          Alcotest.test_case "override" `Quick registry_override;
          Alcotest.test_case "unknown code" `Quick registry_unknown_code;
          Alcotest.test_case "of_spec" `Quick registry_of_spec;
          Alcotest.test_case "par pack" `Quick registry_par_pack;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick json_rejects_garbage;
        ] );
      ("report", [ Alcotest.test_case "exit codes" `Quick exit_codes ]);
      ( "engine",
        [
          Alcotest.test_case "default setup clean" `Quick default_setup_clean;
          Alcotest.test_case "generators error-clean" `Slow generators_error_clean;
        ] );
      ( "preflight",
        [
          Alcotest.test_case "rejects" `Quick preflight_rejects;
          Alcotest.test_case "escape hatch" `Quick preflight_escape_hatch;
          Alcotest.test_case "passes clean" `Quick preflight_passes_clean;
          Alcotest.test_case "fullssta self-check" `Quick fullssta_self_check;
        ] );
      ( "extrapolation",
        [
          Alcotest.test_case "lut oob counting" `Quick lut_oob_counting;
          Alcotest.test_case "once per cell" `Quick extrapolation_once_per_cell;
        ] );
    ]

(* Tests for the statistical timing engines: FULLSSTA, FASSTA, Monte Carlo,
   and their mutual agreement. *)

open Test_util

let chain_circuit bits =
  let bld = Netlist.Build.create ~lib ~name:"sschain" () in
  let a = Netlist.Build.input bld ~name:"a" in
  let rec go n prev = if n = 0 then prev else go (n - 1) (Netlist.Build.not_ bld prev) in
  let last = go bits a in
  ignore (Netlist.Build.output bld last);
  Netlist.Build.finish bld

(* ---- FULLSSTA ------------------------------------------------------------ *)

let fullssta_single_gate_matches_model () =
  let c = chain_circuit 1 in
  let full = Ssta.Fullssta.run c in
  let gate = List.hd (Netlist.Circuit.gates c) in
  let e = Ssta.Fullssta.electrical full in
  let d = (Sta.Electrical.arc_delays e gate).(0) in
  let strength = Cells.Cell.strength (Netlist.Circuit.cell_exn c gate) in
  let expected = Variation.Model.delay_moments Variation.Model.default ~delay:d ~strength in
  let m = Ssta.Fullssta.moments full gate in
  close ~tol:0.01 "single gate mean" expected.Numerics.Clark.mean m.Numerics.Clark.mean;
  close ~tol:0.05 "single gate sigma" (Numerics.Clark.sigma expected)
    (Numerics.Clark.sigma m)

let fullssta_chain_moments_add () =
  (* a pure chain has no max: moments must be the sums of arc moments *)
  let c = chain_circuit 8 in
  let full = Ssta.Fullssta.run c in
  let e = Ssta.Fullssta.electrical full in
  let expected_mean, expected_var =
    List.fold_left
      (fun (mu, var) gate ->
        let d = (Sta.Electrical.arc_delays e gate).(0) in
        let strength = Cells.Cell.strength (Netlist.Circuit.cell_exn c gate) in
        let mm = Variation.Model.delay_moments Variation.Model.default ~delay:d ~strength in
        (mu +. mm.Numerics.Clark.mean, var +. mm.Numerics.Clark.var))
      (0.0, 0.0) (Netlist.Circuit.gates c)
  in
  let out = Ssta.Fullssta.output_moments full in
  close ~tol:0.01 "chain mean adds" expected_mean out.Numerics.Clark.mean;
  close ~tol:0.05 "chain sigma adds" (Float.sqrt expected_var)
    (Numerics.Clark.sigma out)

let fullssta_vs_monte_carlo () =
  let c = Benchgen.Alu.generate ~lib ~bits:6 () in
  let _ = Core.Initial_sizing.apply ~lib c in
  (* validate at a gentle variation scale, where the independence
     assumption's reconvergence bias is small and real implementation bugs
     would show; the bias at production scale is documented and studied in
     EXPERIMENTS.md instead *)
  let model = Variation.Model.create ~systematic:0.15 ~random_floor:0.3 () in
  let full =
    Ssta.Fullssta.run ~config:{ Ssta.Fullssta.default_config with model } c
  in
  let fm = Ssta.Fullssta.output_moments full in
  let mc =
    Ssta.Monte_carlo.run
      ~config:{ Ssta.Monte_carlo.default_config with trials = 3000; model }
      c
  in
  let ms = Ssta.Monte_carlo.circuit_stats mc in
  close ~tol:0.02 "mean vs MC" (Numerics.Stats.mean ms) fm.Numerics.Clark.mean;
  close ~tol:0.15 "sigma vs MC" (Numerics.Stats.std ms) (Numerics.Clark.sigma fm)

let fullssta_yield_monotone () =
  let c = Benchgen.Alu.generate ~lib ~bits:4 () in
  let full = Ssta.Fullssta.run c in
  let m = Ssta.Fullssta.output_moments full in
  let mu = m.Numerics.Clark.mean in
  let y1 = Ssta.Fullssta.yield_at full ~period:(mu *. 0.8) in
  let y2 = Ssta.Fullssta.yield_at full ~period:mu in
  let y3 = Ssta.Fullssta.yield_at full ~period:(mu *. 1.2) in
  check_true "yield increases with period" (y1 <= y2 && y2 <= y3);
  check_true "median yield near half" (y2 > 0.2 && y2 < 0.8);
  close_abs ~tol:1e-9 "relaxed yield is 1" 1.0
    (Ssta.Fullssta.yield_at full ~period:(mu *. 3.0))

let fullssta_samples_config () =
  let c = Benchgen.Alu.generate ~lib ~bits:4 () in
  let coarse =
    Ssta.Fullssta.run
      ~config:{ Ssta.Fullssta.default_config with samples = 6 } c
  in
  let fine =
    Ssta.Fullssta.run
      ~config:{ Ssta.Fullssta.default_config with samples = 20 } c
  in
  let mc = Ssta.Fullssta.output_moments coarse in
  let mf = Ssta.Fullssta.output_moments fine in
  (* both resolutions agree on the mean to within a fraction of a percent *)
  close ~tol:0.02 "resolutions agree" mf.Numerics.Clark.mean mc.Numerics.Clark.mean

(* ---- FASSTA --------------------------------------------------------------- *)

let fassta_chain_is_exact () =
  let c = chain_circuit 10 in
  let fast = Ssta.Fassta.run c in
  let full = Ssta.Fullssta.run c in
  let out_fast = Ssta.Fassta.output_moments c fast in
  let out_full = Ssta.Fullssta.output_moments full in
  (* no max operations on a chain: both engines must agree tightly *)
  close ~tol:0.01 "chain mean" out_full.Numerics.Clark.mean out_fast.Numerics.Clark.mean;
  close ~tol:0.05 "chain sigma" (Numerics.Clark.sigma out_full)
    (Numerics.Clark.sigma out_fast)

let fassta_cutoff_stats_counted () =
  let c = Benchgen.Alu.generate ~lib ~bits:6 () in
  let stats = Ssta.Fassta.make_stats () in
  let _ = Ssta.Fassta.run ~stats c in
  check_true "some maxes evaluated" (stats.Ssta.Fassta.cutoff_hits + stats.Ssta.Fassta.blended > 0);
  let f = Ssta.Fassta.cutoff_fraction stats in
  check_true "fraction in [0,1]" (f >= 0.0 && f <= 1.0)

(* Regression: a stats record with no maxes recorded used to yield 0/0 =
   nan, which poisoned downstream aggregation; it must read as 0. *)
let fassta_cutoff_fraction_empty () =
  let stats = Ssta.Fassta.make_stats () in
  close ~tol:0.0 "fresh stats fraction" 0.0 (Ssta.Fassta.cutoff_fraction stats)

let fassta_propagate_boundary () =
  let c = tiny_circuit () in
  let e = Sta.Electrical.compute c in
  let n1 = Netlist.Circuit.find_exn c ~name:"n1" in
  let n3 = Netlist.Circuit.find_exn c ~name:"n3" in
  (* boundary puts n1's arrival far ahead: n3 must inherit it *)
  let boundary id =
    if id = n1 then moments ~mu:500.0 ~sigma:5.0 else moments ~mu:0.0 ~sigma:0.0
  in
  let table =
    Ssta.Fassta.propagate ~model:Variation.Model.default ~circuit:c ~electrical:e
      ~boundary [| n3 |]
  in
  let m = Hashtbl.find table n3 in
  check_true "dominated by boundary arrival" (m.Numerics.Clark.mean > 500.0)

let fassta_propagate_into_matches_run () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:5 () in
  let fast = Ssta.Fassta.run c in
  let e = Sta.Electrical.compute c in
  let out = Array.make (Netlist.Circuit.size c) (moments ~mu:0.0 ~sigma:0.0) in
  Ssta.Fassta.propagate_into ~model:Variation.Model.default ~circuit:c ~electrical:e out;
  List.iter
    (fun o ->
      close ~tol:1e-9 "same mean" fast.(o).Numerics.Clark.mean out.(o).Numerics.Clark.mean;
      close ~tol:1e-9 "same var" fast.(o).Numerics.Clark.var out.(o).Numerics.Clark.var)
    (Netlist.Circuit.outputs c)

let fassta_exact_tracks_quadratic () =
  let c = Benchgen.Alu.generate ~lib ~bits:6 () in
  let e = Sta.Electrical.compute c in
  let n = Netlist.Circuit.size c in
  let quad = Array.make n (moments ~mu:0.0 ~sigma:0.0) in
  let exact = Array.make n (moments ~mu:0.0 ~sigma:0.0) in
  Ssta.Fassta.propagate_into ~model:Variation.Model.default ~circuit:c ~electrical:e quad;
  Ssta.Fassta.propagate_into ~exact:true ~model:Variation.Model.default ~circuit:c
    ~electrical:e exact;
  List.iter
    (fun o ->
      close ~tol:0.05 "means track" exact.(o).Numerics.Clark.mean
        quad.(o).Numerics.Clark.mean)
    (Netlist.Circuit.outputs c)

(* ---- Monte Carlo ---------------------------------------------------------- *)

let mc_deterministic_by_seed () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:4 () in
  let cfg = { Ssta.Monte_carlo.default_config with trials = 50; seed = 123 } in
  let r1 = Ssta.Monte_carlo.run ~config:cfg c in
  let r2 = Ssta.Monte_carlo.run ~config:cfg c in
  Alcotest.(check (array (float 1e-12)))
    "same samples" r1.Ssta.Monte_carlo.circuit_delay r2.Ssta.Monte_carlo.circuit_delay

let mc_yield_bounds () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:4 () in
  let r =
    Ssta.Monte_carlo.run ~config:{ Ssta.Monte_carlo.default_config with trials = 200 } c
  in
  close_abs ~tol:0.0 "yield 0 at tiny period" 0.0 (Ssta.Monte_carlo.yield_at r ~period:0.0);
  close_abs ~tol:0.0 "yield 1 at huge period" 1.0
    (Ssta.Monte_carlo.yield_at r ~period:1e9);
  let q10 = Ssta.Monte_carlo.quantile r 0.1 in
  let q90 = Ssta.Monte_carlo.quantile r 0.9 in
  check_true "quantiles ordered" (q10 <= q90)

let mc_per_output_recorded () =
  let c = tiny_circuit () in
  let r =
    Ssta.Monte_carlo.run ~config:{ Ssta.Monte_carlo.default_config with trials = 100 } c
  in
  let o = List.hd (Netlist.Circuit.outputs c) in
  match Ssta.Monte_carlo.output_stats r o with
  | Some s -> check_int "all trials" 100 (Numerics.Stats.count s)
  | None -> Alcotest.fail "missing per-output stats"

let mc_per_gate_sharing_increases_sigma () =
  let c = Benchgen.Ecc.hamming_corrector ~lib ~data_bits:11 () in
  let base = { Ssta.Monte_carlo.default_config with trials = 1500 } in
  let arc = Ssta.Monte_carlo.run ~config:base c in
  let gate =
    Ssta.Monte_carlo.run
      ~config:{ base with sharing = Ssta.Monte_carlo.Per_gate } c
  in
  let s_arc = Numerics.Stats.std (Ssta.Monte_carlo.circuit_stats arc) in
  let s_gate = Numerics.Stats.std (Ssta.Monte_carlo.circuit_stats gate) in
  check_true "within-gate correlation does not reduce sigma" (s_gate > 0.8 *. s_arc)

let mc_global_correlation_widens () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:8 () in
  let base = { Ssta.Monte_carlo.default_config with trials = 1500 } in
  let indep = Ssta.Monte_carlo.run ~config:base c in
  let corr =
    Ssta.Monte_carlo.run
      ~config:
        { base with structure = Variation.Correlated.create ~global_share:0.7 () }
      c
  in
  check_true "die-to-die factor widens the distribution"
    (Numerics.Stats.std (Ssta.Monte_carlo.circuit_stats corr)
    > Numerics.Stats.std (Ssta.Monte_carlo.circuit_stats indep))

(* ---- Compare --------------------------------------------------------------- *)

let compare_reports () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:4 () in
  let `Full full_r, `Fast fast_r =
    Ssta.Compare.engines_vs_monte_carlo
      ~mc_config:{ Ssta.Monte_carlo.default_config with trials = 800 }
      c
  in
  check_true "full report has outputs"
    (List.length full_r.Ssta.Compare.per_output = 5);
  check_true "fast report has outputs"
    (List.length fast_r.Ssta.Compare.per_output = 5);
  check_true "full engine mean within 5%" (full_r.Ssta.Compare.worst_mean_rel_err < 0.05);
  check_true "fast engine mean within 8%" (fast_r.Ssta.Compare.worst_mean_rel_err < 0.08)

let () =
  Alcotest.run "ssta"
    [
      ( "fullssta",
        [
          Alcotest.test_case "single gate" `Quick fullssta_single_gate_matches_model;
          Alcotest.test_case "chain moments add" `Quick fullssta_chain_moments_add;
          Alcotest.test_case "vs monte carlo" `Quick fullssta_vs_monte_carlo;
          Alcotest.test_case "yield monotone" `Quick fullssta_yield_monotone;
          Alcotest.test_case "sampling resolutions agree" `Quick
            fullssta_samples_config;
        ] );
      ( "fassta",
        [
          Alcotest.test_case "chain is exact" `Quick fassta_chain_is_exact;
          Alcotest.test_case "cutoff stats" `Quick fassta_cutoff_stats_counted;
          Alcotest.test_case "cutoff fraction empty" `Quick
            fassta_cutoff_fraction_empty;
          Alcotest.test_case "boundary propagation" `Quick fassta_propagate_boundary;
          Alcotest.test_case "propagate_into matches run" `Quick
            fassta_propagate_into_matches_run;
          Alcotest.test_case "exact tracks quadratic" `Quick
            fassta_exact_tracks_quadratic;
        ] );
      ( "monte_carlo",
        [
          Alcotest.test_case "deterministic" `Quick mc_deterministic_by_seed;
          Alcotest.test_case "yield bounds" `Quick mc_yield_bounds;
          Alcotest.test_case "per-output stats" `Quick mc_per_output_recorded;
          Alcotest.test_case "per-gate sharing" `Quick
            mc_per_gate_sharing_increases_sigma;
          Alcotest.test_case "global correlation widens" `Quick
            mc_global_correlation_widens;
        ] );
      ("compare", [ Alcotest.test_case "reports" `Quick compare_reports ]);
    ]

(* Planted race: mutable record field and a shared Hashtbl, both mutated
   from a spawned domain. Expected: two PAR002 findings. *)

type counter = { mutable n : int }

let state = { n = 0 }
let cache : (int, int) Hashtbl.t = Hashtbl.create 16

let run () =
  let d =
    Domain.spawn (fun () ->
        state.n <- state.n + 1;
        Hashtbl.replace cache 1 state.n)
  in
  Domain.join d;
  state.n

(* Planted race: module-global ref incremented from a spawned domain.
   Expected: exactly one PAR001 at the [incr] line. *)

let hits = ref 0

let run () =
  let d = Domain.spawn (fun () -> incr hits) in
  Domain.join d;
  !hits

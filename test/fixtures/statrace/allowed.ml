(* A real race deliberately suppressed with a pragma: the analyzer must
   report nothing and count one suppression (and the pragma must not be
   flagged stale). *)

let debug_probe = ref 0

let run () =
  let d =
    Domain.spawn (fun () ->
        (* statrace: safe — debug-only probe, torn reads acceptable *)
        incr debug_probe)
  in
  Domain.join d

(* Planted race: all domains write the same slot of a shared array.
   Expected: exactly one PAR003 at the [slots.(0)] write. *)

let slots = Array.make 8 0

let run () =
  let ds =
    List.init 4 (fun i -> Domain.spawn (fun () -> slots.(0) <- i))
  in
  List.iter Domain.join ds;
  slots.(0)

(* Every sanctioned pattern in one file; the analyzer must stay silent.
   Thunk-local accumulators, results handed back through join, Atomic RMW
   primitives, mutex-guarded shared state (directly and via a callee reached
   only through the guarded call site), and Domain.DLS. *)

let total = Atomic.make 0
let log_mu = Mutex.create ()
let log : string list ref = ref []
let scratch_key = Domain.DLS.new_key (fun () -> Buffer.create 64)

(* callers hold [log_mu]; reached only through Mutex.protect below *)
let log_locked line = log := line :: !log

let worker lo hi =
  let acc = ref 0 in
  for i = lo to hi - 1 do
    acc := !acc + i
  done;
  ignore (Atomic.fetch_and_add total !acc);
  Mutex.protect log_mu (fun () -> log_locked "chunk done");
  let buf = Domain.DLS.get scratch_key in
  Buffer.clear buf;
  Buffer.add_string buf "local";
  !acc

let run n =
  let results = Array.make 2 0 in
  let d0 = Domain.spawn (fun () -> worker 0 (n / 2)) in
  let d1 = Domain.spawn (fun () -> worker (n / 2) n) in
  results.(0) <- Domain.join d0;
  results.(1) <- Domain.join d1;
  results.(0) + results.(1)

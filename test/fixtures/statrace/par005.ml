(* Planted hazard: read-modify-write split across Atomic.get and Atomic.set
   — concurrent increments lose updates. Expected: exactly one PAR005 at the
   Atomic.set. *)

let total = Atomic.make 0

let bump () = Atomic.set total (Atomic.get total + 1)

let run () =
  let ds = List.init 4 (fun _ -> Domain.spawn bump) in
  List.iter Domain.join ds;
  Atomic.get total

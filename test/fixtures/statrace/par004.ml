(* Planted hazard: a Domain.DLS key minted inside the spawned thunk — every
   execution gets a fresh, unshared slot, so the "domain-local cache" never
   caches. Expected: exactly one PAR004. *)

let run () =
  let d =
    Domain.spawn (fun () ->
        let key = Domain.DLS.new_key (fun () -> 0) in
        Domain.DLS.set key 41;
        Domain.DLS.get key + 1)
  in
  Domain.join d

(* A pragma that suppresses nothing: the allowlist itself has gone stale.
   Expected: exactly one PAR007 at the pragma line. *)

let pure x =
  (* statrace: safe — this covered a ref write that has since been removed *)
  x + 1

(* Planted race: the spawn closure writes a mutable local captured from the
   enclosing scope — shared between parent and child with no protocol.
   Expected: exactly one PAR006 at the [acc := ...] write. *)

let run () =
  let acc = ref 0 in
  let d = Domain.spawn (fun () -> acc := !acc + 1) in
  acc := !acc + 1;
  Domain.join d;
  !acc

(* planted HOT002: a closure allocated on every loop iteration — the
   capture of [i] forces a fresh block each time around *)
let sink = ref (fun () -> 0)

let run n =
  for i = 0 to n do
    sink := (fun () -> i)
  done

(* planted EXC001: a raise between the acquisition and the release, with
   no Fun.protect — the exceptional path leaks the channel *)
let run path =
  let ic = open_in path in
  let line = input_line ic in
  if line = "" then failwith "empty";
  close_in ic;
  line

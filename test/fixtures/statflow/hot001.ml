(* planted HOT001: a tuple constructed on every loop iteration of a hot
   binding — per-element construction is GC pressure, not amortized setup *)
let sink = ref (0, 0)

let run n =
  for i = 0 to n do
    sink := (i, i)
  done

(* Sanctioned patterns: everything here is hot- or det-reachable and must
   stay silent — per-call allocation amortizes, the seeded generator is
   explicit, and the resource region is protected. *)

(* the exceptional path cannot skip the close: Fun.protect guards it *)
let first_line path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> match input_line ic with "" -> failwith "empty" | l -> l)

let run xs =
  (* one buffer per call, filled in place: allocation amortizes *)
  let buf = Array.make 16 0 in
  List.iteri (fun i x -> if i < 16 then buf.(i) <- x) xs;
  let total = ref 0 in
  Array.iter (fun v -> total := !total + v) buf;
  (* explicit seeded generator, not the ambient PRNG *)
  let st = Random.State.make [| 7 |] in
  total := !total + Random.State.int st 3;
  ignore (first_line "/dev/null");
  !total

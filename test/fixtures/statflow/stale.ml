(* A pragma that suppresses nothing: statflow must report it as FLOW007
   instead of letting it rot in place. *)

(* statflow: safe — nothing below allocates in a loop *)
let run n = n + 1

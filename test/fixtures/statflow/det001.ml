(* planted DET001: an unsorted Hashtbl.fold in result-producing code —
   iteration order is unspecified and seed-dependent *)
let tbl : (int, int) Hashtbl.t = Hashtbl.create 8

let run () = Hashtbl.fold (fun k v acc -> acc + (k * v)) tbl 0

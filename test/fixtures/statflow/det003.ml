(* planted DET003: the ambient PRNG in result-producing code — two runs
   of the same input disagree unless the global seed is pinned everywhere *)
let run n = Random.int n

(* planted HOT003: a stdlib builder allocating its result inside the loop
   — the buffer should be hoisted and filled in place *)
let run n =
  let total = ref 0 in
  for i = 1 to n do
    let row = Array.make i 0 in
    total := !total + Array.length row
  done;
  !total

(* A pragma-suppressed HOT001: the reason rides in the comment, and the
   analyzer counts the suppression instead of reporting the finding. *)
let sink = ref (0, 0)

let run n =
  for i = 0 to n do
    (* statflow: safe — probe tuple; fixture exercises suppression *)
    sink := (i, i)
  done

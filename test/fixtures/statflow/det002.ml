(* planted DET002: a wall-clock read feeding the result *)
let run () = int_of_float (Sys.time () *. 1000.0)

(* planted EXC002: a partial stdlib call on the hot path — raises on the
   empty case the type system cannot rule out *)
let run xs = List.hd xs + 1

(* planted HOT004 (Info): the hot binding's tail is float arithmetic, so
   its result boxes at every out-of-inline call site *)
let run x = (x *. 2.0) +. 1.0

(* srcmodel tests: the machinery statrace and statflow share. The centerpiece
   is a randomized property for the call-graph fixpoint — random module DAGs
   checked against an independent reference model of guarded reachability —
   plus unit coverage for tool-namespaced pragmas and allow-file parsing. *)

open Test_util

(* a synthetic tool namespace: proves the plumbing is genuinely
   parameterized, not hardwired to the two real analyzers *)
let tool =
  { Srcmodel.Tool.name = "testtool"; parse_code = "PAR000"; stale_code = "PAR007" }

let parse ~path text =
  match Srcmodel.Source.of_string ~tool ~path text with
  | Ok s -> s
  | Error d -> Alcotest.failf "parse %s: %s" path (Diag.to_string d)

(* ---- random DAGs checked against a reference model ----------------------- *)

(* Nodes 0..k-1, edges strictly i -> j with i < j (so the graph is a DAG by
   construction), each edge optionally guarded (wrapped in Fun.protect).
   Node 0 is the entry. [funs.(i)] = false renders node i as a value
   binding — a tuple mentioning its callees — whose edges are never
   guarded. *)
type dag = { k : int; edges : (int * int * bool) list; funs : bool array }

let print_dag d =
  Printf.sprintf "k=%d funs=[%s] edges=[%s]" d.k
    (String.concat ""
       (List.init d.k (fun i -> if d.funs.(i) then "F" else "V")))
    (String.concat "; "
       (List.map
          (fun (i, j, g) ->
            Printf.sprintf "%d->%d%s" i j (if g then "!" else ""))
          d.edges))

let dag_gen ~mixed =
  let open QCheck.Gen in
  int_range 2 9 >>= fun k ->
  let pairs =
    List.concat
      (List.init k (fun i -> List.init (k - i - 1) (fun d -> (i, i + 1 + d))))
  in
  list_repeat (List.length pairs) (pair (int_bound 2) bool) >>= fun flags ->
  list_repeat k (int_bound 9) >>= fun kind_rolls ->
  let funs =
    Array.of_list
      (List.mapi (fun i r -> i = 0 || (not mixed) || r < 7) kind_rolls)
  in
  let edges =
    List.concat
      (List.map2
         (fun (i, j) (present, guarded) ->
           if present = 0 then [ (i, j, guarded && funs.(i)) ] else [])
         pairs flags)
  in
  return { k; edges; funs }

let dag_arbitrary ~mixed = QCheck.make ~print:print_dag (dag_gen ~mixed)

(* Render the DAG as one parseable module. Scoping does not matter — the
   analyzers parse without typechecking, and call-graph resolution is
   whole-file — so nodes are emitted in index order. *)
let source_of_dag d =
  let buf = Buffer.create 256 in
  for i = 0 to d.k - 1 do
    let out = List.filter (fun (s, _, _) -> s = i) d.edges in
    if d.funs.(i) then begin
      let calls =
        List.map
          (fun (_, j, g) ->
            if g then
              Printf.sprintf
                "Fun.protect ~finally:(fun () -> ()) (fun () -> ignore (f%d \
                 ()))"
                j
            else Printf.sprintf "ignore (f%d ())" j)
          out
      in
      Buffer.add_string buf
        (Printf.sprintf "let f%d () = %s\n" i
           (if calls = [] then "()" else String.concat "; " calls))
    end
    else
      Buffer.add_string buf
        (Printf.sprintf "let f%d = (%s0)\n" i
           (String.concat ""
              (List.map (fun (_, j, _) -> Printf.sprintf "f%d, " j) out)))
  done;
  Buffer.contents buf

(* Reference model, computed independently of the fixpoint: node j is
   reachable when some path from the entry's callees leads to it, and
   Unguarded when at least one such path crosses no guarded edge — one
   unguarded path demotes. [through_values = false] stops propagation at
   value bindings and assigns them no status at all. *)
let expected_statuses d ~through_values =
  let reach = Array.make d.k false and unguarded = Array.make d.k false in
  for i = 0 to d.k - 1 do
    let is_source = i = 0 || reach.(i) in
    let flows = i = 0 || d.funs.(i) || through_values in
    if is_source && flows then
      List.iter
        (fun (s, j, g) ->
          if s = i then begin
            reach.(j) <- true;
            if (i = 0 || unguarded.(i)) && not g then unguarded.(j) <- true
          end)
        d.edges
  done;
  List.concat
    (List.init d.k (fun j ->
         if j = 0 || not reach.(j) then []
         else if not (d.funs.(j) || through_values) then []
         else
           [
             ( ("Dag", Printf.sprintf "f%d" j),
               if unguarded.(j) then Srcmodel.Callgraph.Unguarded
               else Srcmodel.Callgraph.Guarded_only );
           ]))

let computed_statuses d ~through_values =
  let src = parse ~path:"dag.ml" (source_of_dag d) in
  let facts = [ Srcmodel.Scan.file src ] in
  let g = Srcmodel.Callgraph.build facts in
  let entries =
    Srcmodel.Callgraph.toplevel g ~module_:"Dag" ~value:"f0"
    |> List.map (fun b -> ("Dag", b))
  in
  let compute () =
    Srcmodel.Callgraph.compute g
      ~guard_of:(fun c -> c.Srcmodel.Scan.c_protected)
      ~through_values ~entries
  in
  compute ();
  let first = Srcmodel.Callgraph.statuses g in
  (* the fixpoint must be idempotent: recomputing on a saturated graph
     changes nothing *)
  compute ();
  Alcotest.(check bool)
    "idempotent" true
    (first = Srcmodel.Callgraph.statuses g);
  first

let prop_fixpoint_matches_reference =
  qcheck ~count:150 "fixpoint = reference model (functions only)"
    (dag_arbitrary ~mixed:false) (fun d ->
      computed_statuses d ~through_values:false
      = expected_statuses d ~through_values:false)

let prop_through_values =
  qcheck ~count:150 "through_values propagates exactly through value nodes"
    (dag_arbitrary ~mixed:true) (fun d ->
      computed_statuses d ~through_values:true
      = expected_statuses d ~through_values:true
      && computed_statuses d ~through_values:false
         = expected_statuses d ~through_values:false)

(* the canonical demotion shape, as a deterministic anchor for the property:
   a guarded path and an unguarded path to the same callee *)
let demotion () =
  let both =
    { k = 3; edges = [ (0, 1, true); (0, 2, false); (2, 1, false) ];
      funs = [| true; true; true |] }
  in
  let guarded_only =
    { both with edges = [ (0, 1, true); (0, 2, false) ] }
  in
  (match
     List.assoc_opt ("Dag", "f1") (computed_statuses both ~through_values:false)
   with
  | Some Srcmodel.Callgraph.Unguarded -> ()
  | st ->
      Alcotest.failf "expected Unguarded, got %s"
        (match st with
        | Some Srcmodel.Callgraph.Guarded_only -> "Guarded_only"
        | Some Srcmodel.Callgraph.Unguarded -> "Unguarded"
        | None -> "unreached"));
  match
    List.assoc_opt ("Dag", "f1")
      (computed_statuses guarded_only ~through_values:false)
  with
  | Some Srcmodel.Callgraph.Guarded_only -> ()
  | _ -> Alcotest.fail "expected Guarded_only when every path is protected"

(* ---- tool-namespaced pragmas --------------------------------------------- *)

let other =
  { Srcmodel.Tool.name = "othertool"; parse_code = "PAR000"; stale_code = "PAR007" }

let pragma_namespaces () =
  let text =
    "(* testtool: safe — mine *)\n\
     let a = 1\n\
     (* othertool: safe — not mine *)\n\
     let b = 2\n"
  in
  match
    Srcmodel.Source.of_string ~tool ~tools:[ tool; other ] ~path:"p.ml" text
  with
  | Error d -> Alcotest.failf "parse: %s" (Diag.to_string d)
  | Ok s ->
      check_int "testtool sees one" 1
        (List.length (Srcmodel.Source.pragmas_for_tool s ~tool));
      check_int "othertool sees one" 1
        (List.length (Srcmodel.Source.pragmas_for_tool s ~tool:other));
      check_true "covers its own line and the next"
        (Srcmodel.Source.pragma_for s ~tool ~line:2 <> None);
      check_true "does not cover the other tool's line"
        (Srcmodel.Source.pragma_for s ~tool ~line:4 = None);
      (* tools not in the scan set are simply not collected *)
      let solo = parse ~path:"p.ml" text in
      check_int "default scan set is [tool]" 1
        (List.length solo.Srcmodel.Source.pragmas)

let pragma_reason_text () =
  let s = parse ~path:"r.ml" "(* testtool: safe — the reason *)\nlet a = 1\n" in
  match Srcmodel.Source.pragmas_for_tool s ~tool with
  | [ (1, reason) ] ->
      check_true "reason text survives"
        (String.length reason > 0
        && String.length reason >= String.length "the reason")
  | ps -> Alcotest.failf "expected 1 pragma, got %d" (List.length ps)

(* ---- allow-file parsing -------------------------------------------------- *)

let allow_parse () =
  let path = Filename.temp_file "srcmodel" ".allow" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            "# header comment\n\n\
             PAR001 lib/foo.ml:12 torn read, reviewed\n\
             PAR003 lib/bar.ml whole-file waiver # trailing comment\n");
      match Srcmodel.Allow.parse path with
      | Error e -> Alcotest.failf "rejected: %s" e
      | Ok [ a; b ] ->
          Alcotest.(check string) "code" "PAR001" a.Srcmodel.Allow.al_code;
          Alcotest.(check string) "file" "lib/foo.ml" a.Srcmodel.Allow.al_file;
          check_int "line" 12 a.Srcmodel.Allow.al_line;
          check_int "origin line" 3 (snd a.Srcmodel.Allow.al_origin);
          check_int "no line = whole file" 0 b.Srcmodel.Allow.al_line
      | Ok es -> Alcotest.failf "expected 2 entries, got %d" (List.length es))

let allow_rejects_unknown () =
  let path = Filename.temp_file "srcmodel" ".allow" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "BOGUS9 lib/foo.ml\n");
      match Srcmodel.Allow.parse path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown code accepted")

(* ---- suite --------------------------------------------------------------- *)

let () =
  Alcotest.run "srcmodel"
    [
      ( "callgraph",
        [
          prop_fixpoint_matches_reference;
          prop_through_values;
          Alcotest.test_case "one unguarded path demotes" `Quick demotion;
        ] );
      ( "pragmas",
        [
          Alcotest.test_case "tool namespaces" `Quick pragma_namespaces;
          Alcotest.test_case "reason text" `Quick pragma_reason_text;
        ] );
      ( "allow",
        [
          Alcotest.test_case "parse" `Quick allow_parse;
          Alcotest.test_case "unknown code" `Quick allow_rejects_unknown;
        ] );
    ]

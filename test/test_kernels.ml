(* statkern tests: the fused LUT/erf kernels against their scalar references.

   Exact lanes must be BIT-identical to the scalar Clark fold (that is the
   whole contract that lets the sizer switch engines freely); fast lanes
   must stay inside their certified error intervals; the flattened LUT and
   the fused/memoized query paths must be value-transparent; and at the
   sizer level, fused exact runs must reproduce the scalar engine's final
   sizing cell for cell, while tolerance runs may only deviate through an
   audited (counted) accepted-on-budget decision. *)

open Test_util
module K = Numerics.Kernels
module C = Numerics.Clark
module L = Numerics.Lut

let kern () =
  let k = K.create () in
  K.ensure k 64;
  K.set_budget k ~cutoff_mean:Absint.Budget.k_cutoff_mean
    ~cutoff_sig:(Float.sqrt Absint.Budget.k_cutoff_var)
    ~blend_mean:Absint.Budget.kq_blend_mean
    ~blend_sig:(Float.sqrt Absint.Budget.kq_blend_var);
  k

(* Operands from small-int pairs: means in [-40, 40] ps, variances in
   (0, 9] ps² — the magnitudes the drain actually folds. *)
let op_of_ints (m, v) =
  C.moments
    ~mean:((float_of_int m -. 4000.0) /. 100.0)
    ~var:((float_of_int v +. 1.0) /. 100.0)

let gen_ops n =
  QCheck.(
    list_of_size Gen.(1 -- n) (pair (int_bound 8000) (int_bound 899)))

(* ---- exact kernels: bit-identity ---------------------------------------- *)

let prop_fold_into_bit_identical =
  qcheck ~count:500 "fold_into ≡ scalar max_exact fold, bit for bit"
    (gen_ops 12) (fun ints ->
      let ops = List.map op_of_ints ints in
      let k = kern () in
      List.iteri
        (fun i o ->
          k.K.bm.(i) <- o.C.mean;
          k.K.bv.(i) <- o.C.var)
        ops;
      K.fold_into k (List.length ops);
      (* accumulator is the FIRST operand of every scalar max, matching the
         engines' fold direction *)
      let exact =
        List.fold_left (fun acc o -> C.max_exact acc o) (List.hd ops)
          (List.tl ops)
      in
      k.K.sc.K.rm = exact.C.mean && k.K.sc.K.rv = exact.C.var)

let prop_lanes_bit_identical =
  qcheck ~count:300 "max_lanes_exact ≡ per-lane max_exact, bit for bit"
    QCheck.(
      list_of_size Gen.(1 -- 20)
        (pair (pair (int_bound 8000) (int_bound 899))
           (pair (int_bound 8000) (int_bound 899))))
    (fun lanes ->
      let k = kern () in
      List.iteri
        (fun li (a, b) ->
          let a = op_of_ints a and b = op_of_ints b in
          k.K.am.(li) <- a.C.mean;
          k.K.av.(li) <- a.C.var;
          k.K.bm.(li) <- b.C.mean;
          k.K.bv.(li) <- b.C.var)
        lanes;
      K.max_lanes_exact k (List.length lanes);
      List.for_all
        (fun (li, (a, b)) ->
          let m = C.max_exact (op_of_ints a) (op_of_ints b) in
          k.K.am.(li) = m.C.mean && k.K.av.(li) = m.C.var)
        (List.mapi (fun i l -> (i, l)) lanes))

(* α pinned at and astride the 2.6 cutoff: the branchy region where an
   execution-strategy bug would first show. sp = 1 exactly (var 0.5 + 0.5),
   so α = mean difference, representable exactly. *)
let exact_kernels_cutoff_boundary () =
  List.iter
    (fun alpha ->
      let a = C.moments ~mean:alpha ~var:0.5
      and b = C.moments ~mean:0.0 ~var:0.5 in
      let k = kern () in
      k.K.bm.(0) <- a.C.mean;
      k.K.bv.(0) <- a.C.var;
      k.K.bm.(1) <- b.C.mean;
      k.K.bv.(1) <- b.C.var;
      K.fold_into k 2;
      let m = C.max_exact a b in
      check_true
        (Printf.sprintf "fold bit-identical at alpha=%g" alpha)
        (k.K.sc.K.rm = m.C.mean && k.K.sc.K.rv = m.C.var);
      k.K.am.(0) <- a.C.mean;
      k.K.av.(0) <- a.C.var;
      k.K.bm.(0) <- b.C.mean;
      k.K.bv.(0) <- b.C.var;
      K.max_lanes_exact k 1;
      check_true
        (Printf.sprintf "lane bit-identical at alpha=%g" alpha)
        (k.K.am.(0) = m.C.mean && k.K.av.(0) = m.C.var))
    [ 2.599; 2.6; 2.601; -2.599; -2.6; -2.601; 0.0; 1e-9 ]

(* ---- fast kernels: certified interval soundness ------------------------- *)

let prop_fast_fold_within_certified_interval =
  qcheck ~count:500 "fold_into_fast error ≤ certified interval" (gen_ops 10)
    (fun ints ->
      let ops = List.map op_of_ints ints in
      let n = List.length ops in
      let k = kern () in
      List.iteri
        (fun i o ->
          k.K.bm.(i) <- o.C.mean;
          k.K.bv.(i) <- o.C.var;
          k.K.bem.(i) <- 0.0;
          k.K.bes.(i) <- 0.0)
        ops;
      K.fold_into_fast k n;
      let fast_m = k.K.sc.K.rm
      and fast_v = k.K.sc.K.rv
      and em = k.K.sc.K.re_m
      and es = k.K.sc.K.re_s in
      let exact =
        List.fold_left (fun acc o -> C.max_exact acc o) (List.hd ops)
          (List.tl ops)
      in
      let pad = 1e-9 in
      Float.abs (fast_m -. exact.C.mean) <= em +. pad
      && Float.abs (Float.sqrt fast_v -. Float.sqrt exact.C.var) <= es +. pad)

let prop_fast_lanes_within_certified_interval =
  qcheck ~count:300 "max_lanes_fast error ≤ certified interval"
    QCheck.(
      list_of_size Gen.(1 -- 16)
        (pair (pair (int_bound 8000) (int_bound 899))
           (pair (int_bound 8000) (int_bound 899))))
    (fun lanes ->
      let k = kern () in
      List.iteri
        (fun li (a, b) ->
          let a = op_of_ints a and b = op_of_ints b in
          k.K.am.(li) <- a.C.mean;
          k.K.av.(li) <- a.C.var;
          k.K.em.(li) <- 0.0;
          k.K.es.(li) <- 0.0;
          k.K.bm.(li) <- b.C.mean;
          k.K.bv.(li) <- b.C.var;
          k.K.bem.(li) <- 0.0;
          k.K.bes.(li) <- 0.0)
        lanes;
      K.max_lanes_fast k (List.length lanes);
      List.for_all
        (fun (li, (a, b)) ->
          let m = C.max_exact (op_of_ints a) (op_of_ints b) in
          let pad = 1e-9 in
          Float.abs (k.K.am.(li) -. m.C.mean) <= k.K.em.(li) +. pad
          && Float.abs (Float.sqrt k.K.av.(li) -. Float.sqrt m.C.var)
             <= k.K.es.(li) +. pad)
        (List.mapi (fun i l -> (i, l)) lanes))

let budget_kq_constants_sane () =
  let open Absint.Budget in
  check_true "eps_pdf positive" (eps_pdf > 0.0);
  check_true "eps_pdf covers phi(0) gap"
    (eps_pdf >= 0.44 -. (1.0 /. Float.sqrt (2.0 *. Float.pi)));
  check_true "kq_blend_mean ≥ blend mean with exact φ"
    (kq_blend_mean >= k_blend_mean -. 1e-12);
  check_true "kq_blend_var ≥ blend var with exact φ"
    (kq_blend_var >= k_blend_var -. 1e-12);
  check_true "kq_blend_mean small" (kq_blend_mean < 0.1);
  check_true "kq_blend_var small" (kq_blend_var < 1.0)

(* ---- flattened LUT ------------------------------------------------------ *)

(* The seed nested-array bilinear implementation, replicated operation for
   operation (same locate, same combination order), as the oracle the
   flattened row-major storage must match bit for bit. *)
let oracle_locate axis x =
  let n = Array.length axis in
  if n = 1 || x <= axis.(0) then (0, 0.0)
  else if x >= axis.(n - 1) then (Stdlib.max 0 (n - 2), 1.0)
  else
    let rec bisect lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if x < axis.(mid) then bisect lo mid else bisect mid hi
    in
    let i = bisect 0 (n - 1) in
    (i, (x -. axis.(i)) /. (axis.(i + 1) -. axis.(i)))

let oracle_query ~rows ~cols ~values ~row ~col =
  let nr = Array.length rows and nc = Array.length cols in
  let i, fr = oracle_locate rows row in
  let j, fc = oracle_locate cols col in
  let v00 = values.(i).(j) in
  if nr = 1 && nc = 1 then v00
  else
    let i1 = Stdlib.min (nr - 1) (i + 1) in
    let j1 = Stdlib.min (nc - 1) (j + 1) in
    let v01 = values.(i).(j1)
    and v10 = values.(i1).(j)
    and v11 = values.(i1).(j1) in
    ((1.0 -. fr) *. (((1.0 -. fc) *. v00) +. (fc *. v01)))
    +. (fr *. (((1.0 -. fc) *. v10) +. (fc *. v11)))

let lut_fixture () =
  let rows = [| 0.5; 1.0; 2.0; 4.0; 8.0 |]
  and cols = [| 1.0; 3.0; 9.0; 27.0 |] in
  let f r c = (r *. 3.1) +. (c *. 0.7) +. (r *. c *. 0.013) in
  let g r c = (r *. 1.7) +. (c *. 1.1) -. (r *. c *. 0.005) in
  let values_f = Array.map (fun r -> Array.map (f r) cols) rows in
  let a = L.create ~rows ~cols ~values:values_f in
  let b = L.of_function ~rows ~cols g in
  (rows, cols, values_f, a, b)

let prop_flat_lut_matches_seed_bilinear =
  qcheck ~count:500 "flat LUT query ≡ seed nested bilinear, bit for bit"
    QCheck.(pair (int_bound 2000) (int_bound 2000))
    (fun (ri, ci) ->
      let rows, cols, values, a, _ = lut_fixture () in
      (* sweep inside, on, and beyond both axes, including the clamp zone *)
      let row = -1.0 +. (float_of_int ri /. 200.0)
      and col = -1.0 +. (float_of_int ci /. 60.0) in
      L.query a ~row ~col = oracle_query ~rows ~cols ~values ~row ~col)

let prop_query2_is_query_pair =
  qcheck ~count:500 "query2 ≡ (query, query), bit for bit"
    QCheck.(pair (int_bound 2000) (int_bound 2000))
    (fun (ri, ci) ->
      let _, _, _, a, b = lut_fixture () in
      let row = -1.0 +. (float_of_int ri /. 200.0)
      and col = -1.0 +. (float_of_int ci /. 60.0) in
      check_true "fixture tables share axes" (L.shares_axes a b);
      let d, s = L.query2 a b ~row ~col in
      d = L.query a ~row ~col && s = L.query b ~row ~col)

let lut_query2_clamp_corners () =
  let _, _, _, a, b = lut_fixture () in
  List.iter
    (fun (row, col) ->
      let d, s = L.query2 a b ~row ~col in
      check_true "clamped query2 = query pair"
        (d = L.query a ~row ~col && s = L.query b ~row ~col))
    [
      (-5.0, -5.0); (100.0, 100.0); (-5.0, 100.0); (100.0, -5.0);
      (0.5, 1.0); (8.0, 27.0); (1.0, 100.0); (100.0, 3.0);
    ]

(* ---- memo transparency -------------------------------------------------- *)

let memo_is_transparent () =
  let cell =
    match Cells.Library.sizes_of_fn lib (Cells.Fn.And 2) with
    | [||] -> Alcotest.fail "library has no AND2 cells"
    | sizes -> sizes.(0)
  in
  (* 4 bits = 16 slots (the minimum): plenty of collisions/evictions over a
     20×20 grid *)
  let memo = Cells.Memo.create ~bits:4 () in
  let h = Cells.Memo.cell_hash cell in
  for i = 0 to 19 do
    for j = 0 to 19 do
      let slew = 0.3 +. (float_of_int i *. 0.37)
      and load = 0.5 +. (float_of_int j *. 0.83) in
      let d, s = Cells.Memo.query2 memo cell ~hash:h ~slew ~load in
      let d', s' = Cells.Cell.query2 cell ~slew ~load in
      check_true "memo query2 ≡ direct query2" (d = d' && s = s')
    done
  done;
  (* repeat pass: now mostly hits — still transparent *)
  for i = 0 to 19 do
    let slew = 0.3 +. (float_of_int i *. 0.37) in
    let d, s = Cells.Memo.query2 memo cell ~hash:h ~slew ~load:0.5 in
    let d', s' = Cells.Cell.query2 cell ~slew ~load:0.5 in
    check_true "memo hit ≡ direct query2" (d = d' && s = s')
  done

(* ---- sizer-level equivalence -------------------------------------------- *)

let sizing_names c =
  List.map
    (fun g -> Cells.Cell.name (Netlist.Circuit.cell_exn c g))
    (Netlist.Circuit.gates c)

let optimize_named name ~fused ~tolerance =
  let c = Benchgen.Iscas_like.build_exn ~lib name in
  ignore (Core.Initial_sizing.apply ~lib c);
  let config =
    {
      Core.Sizer.default_config with
      Core.Sizer.fused_kernels = fused;
      tolerance;
      max_iterations = 3;
    }
  in
  let r = Core.Sizer.optimize ~config ~lib c in
  (sizing_names c, r)

let fused_sizer_bit_identical () =
  List.iter
    (fun name ->
      let scalar, rs = optimize_named name ~fused:false ~tolerance:0.0 in
      let fused, rf = optimize_named name ~fused:true ~tolerance:0.0 in
      check_true (name ^ ": identical final sizing") (scalar = fused);
      check_int
        (name ^ ": identical resize count")
        rs.Core.Sizer.total_resizes rf.Core.Sizer.total_resizes)
    [ "alu2"; "alu1" ]

let tolerance_deviations_are_audited () =
  Obs.Sink.reset ();
  Obs.Sink.enable ();
  Fun.protect ~finally:Obs.Sink.disable @@ fun () ->
  let exact, _ = optimize_named "alu2" ~fused:true ~tolerance:0.0 in
  let tol, _ = optimize_named "alu2" ~fused:true ~tolerance:2.0 in
  let counter n =
    match List.assoc_opt n (Obs.Counters.dump ()) with Some v -> v | None -> 0
  in
  let accepted = counter "window.tolerance.tolerated" in
  let decided =
    counter "window.tolerance.certified"
    + accepted
    + counter "window.tolerance.fallback"
  in
  check_true "tolerance regime actually ran" (decided > 0);
  (* a deviation without an accepted-on-budget decision would be a silent
     correctness loss — the one thing the regime promises never happens *)
  if tol <> exact then
    check_true "sizing deviation implies audited tolerated decision"
      (accepted > 0)

let () =
  Alcotest.run "kernels"
    [
      ( "exact",
        [
          prop_fold_into_bit_identical;
          prop_lanes_bit_identical;
          Alcotest.test_case "cutoff boundary" `Quick
            exact_kernels_cutoff_boundary;
        ] );
      ( "fast",
        [
          prop_fast_fold_within_certified_interval;
          prop_fast_lanes_within_certified_interval;
          Alcotest.test_case "kq constants sane" `Quick
            budget_kq_constants_sane;
        ] );
      ( "lut",
        [
          prop_flat_lut_matches_seed_bilinear;
          prop_query2_is_query_pair;
          Alcotest.test_case "clamp corners" `Quick lut_query2_clamp_corners;
        ] );
      ( "memo",
        [ Alcotest.test_case "transparent" `Quick memo_is_transparent ] );
      ( "sizer",
        [
          Alcotest.test_case "fused ≡ scalar" `Quick fused_sizer_bit_identical;
          Alcotest.test_case "tolerance audited" `Quick
            tolerance_deviations_are_audited;
        ] );
    ]

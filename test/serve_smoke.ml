(* CI serve-smoke gate: drive a scripted multi-job session against a live
   statserve daemon and fail unless --domains 1 and --domains 4 produce
   byte-identical sizings on two quick circuits. This is the end-to-end
   flavor of test_serve's determinism test — socket, batching, pool and
   caches all in the loop. *)

let circuits = [ "alu1"; "alu2" ]
let fails = ref 0

let failf fmt =
  Printf.ksprintf
    (fun msg ->
      incr fails;
      prerr_endline ("serve-smoke: FAIL " ^ msg))
    fmt

let field_string name json =
  match
    Option.bind (Obs.Json.member "result" json) (Obs.Json.member name)
  with
  | Some (Obs.Json.Str s) -> Some s
  | _ -> None

let () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve-smoke-%d.sock" (Unix.getpid ()))
  in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Daemon.run
          { (Serve.Daemon.default_config ~socket) with domains = 2 })
  in
  let rec wait tries =
    if Sys.file_exists socket then ()
    else if tries = 0 then begin
      prerr_endline "serve-smoke: daemon socket never appeared";
      exit 1
    end
    else begin
      Unix.sleepf 0.05;
      wait (tries - 1)
    end
  in
  wait 100;
  let request name domains =
    Printf.sprintf
      {|{"serve":1,"id":"%s-d%d","op":"optimize","circuit":"%s","alpha":3.0,"domains":%d,"max_iterations":4}|}
      name domains name domains
  in
  (* one pipelined session: for each circuit, the same job at 1 and 4
     window domains (plus a cold/warm info pair for the cache path) *)
  let lines =
    List.concat_map
      (fun name ->
        [
          Printf.sprintf {|{"serve":1,"id":"info-%s","op":"info","circuit":"%s"}|}
            name name;
          request name 1;
          request name 4;
        ])
      circuits
  in
  let responses = Serve.Client.session ~socket lines in
  let digests = Hashtbl.create 8 in
  List.iter
    (fun line ->
      let json = Obs.Json.parse_exn line in
      let id =
        match Obs.Json.member "id" json with
        | Some (Obs.Json.Str s) -> s
        | _ -> "?"
      in
      match Obs.Json.member "ok" json with
      | Some (Obs.Json.Bool true) ->
          Option.iter
            (fun d -> Hashtbl.replace digests id d)
            (field_string "sizing_digest" json)
      | _ -> failf "job %s errored: %s" id line)
    responses;
  List.iter
    (fun name ->
      match
        ( Hashtbl.find_opt digests (Printf.sprintf "%s-d1" name),
          Hashtbl.find_opt digests (Printf.sprintf "%s-d4" name) )
      with
      | Some d1, Some d4 when String.equal d1 d4 ->
          Printf.printf "serve-smoke: %-6s domains 1 = domains 4 (%s)\n" name d1
      | Some d1, Some d4 ->
          failf "%s sizings diverge: domains 1 %s vs domains 4 %s" name d1 d4
      | _ -> failf "%s: missing optimize responses" name)
    circuits;
  (match
     Serve.Client.session ~socket [ {|{"serve":1,"id":0,"op":"shutdown"}|} ]
   with
  | [ _ ] -> ()
  | _ -> failf "shutdown not acknowledged");
  Domain.join daemon;
  if !fails > 0 then begin
    Printf.eprintf "serve-smoke: %d failure(s)\n" !fails;
    exit 1
  end;
  print_endline "serve-smoke: PASS"

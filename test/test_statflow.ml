(* statflow tests: every planted fixture yields exactly its expected
   HOT/EXC/DET findings, the sanctioned-patterns fixture stays silent,
   pragma suppression and staleness both work, the sort-sink discipline
   separates ordered from unordered Hashtbl traversals, and the static HOT
   verdicts agree with the dynamic Gc.minor_words budget on the real tree. *)

(* cwd is test/ under `dune runtest`, the project root under `dune exec` *)
let fixture_dir =
  List.find Sys.file_exists
    [
      Filename.concat "fixtures" "statflow";
      Filename.concat "test" (Filename.concat "fixtures" "statflow");
    ]

let fixture name = Filename.concat fixture_dir name

let load name =
  match Srcmodel.Source.load ~tool:Statflow.Analyze.tool (fixture name) with
  | Ok s -> s
  | Error d -> Alcotest.failf "fixture %s: %s" name (Diag.to_string d)

let parse ~path text =
  match Srcmodel.Source.of_string ~tool:Statflow.Analyze.tool ~path text with
  | Ok s -> s
  | Error d -> Alcotest.failf "inline %s: %s" path (Diag.to_string d)

(* every fixture roots its analysis at its own [run] — the bare name matches
   any module, and config entries replace both the hot and det sets *)
let config = { Statflow.Analyze.default_config with entries = [ "run" ] }

let codes (r : Statflow.Analyze.result) =
  List.map (fun d -> d.Diag.code) r.Statflow.Analyze.findings

let check_codes ~msg expected r =
  Alcotest.(check (list string)) msg expected (List.sort compare (codes r))

let run_fixtures names = Statflow.Analyze.run ~config (List.map load names)

(* ---- planted findings --------------------------------------------------- *)

let planted () =
  check_codes ~msg:"hot001" [ "HOT001" ] (run_fixtures [ "hot001.ml" ]);
  check_codes ~msg:"hot002" [ "HOT002" ] (run_fixtures [ "hot002.ml" ]);
  check_codes ~msg:"hot003" [ "HOT003" ] (run_fixtures [ "hot003.ml" ]);
  check_codes ~msg:"hot004" [ "HOT004" ] (run_fixtures [ "hot004.ml" ]);
  check_codes ~msg:"exc001" [ "EXC001" ] (run_fixtures [ "exc001.ml" ]);
  check_codes ~msg:"exc002" [ "EXC002" ] (run_fixtures [ "exc002.ml" ]);
  check_codes ~msg:"det001" [ "DET001" ] (run_fixtures [ "det001.ml" ]);
  check_codes ~msg:"det002" [ "DET002" ] (run_fixtures [ "det002.ml" ]);
  check_codes ~msg:"det003" [ "DET003" ] (run_fixtures [ "det003.ml" ])

let locations_and_severities () =
  let severity name expected =
    let r = run_fixtures [ name ] in
    match r.Statflow.Analyze.findings with
    | [ d ] ->
        Alcotest.(check string)
          (name ^ " severity") expected
          (Diag.Severity.to_string d.Diag.severity)
    | ds ->
        Alcotest.failf "%s: expected 1 finding, got %d" name (List.length ds)
  in
  severity "hot001.ml" "warning";
  severity "hot004.ml" "info";
  severity "exc001.ml" "error";
  severity "det001.ml" "error";
  let r = run_fixtures [ "hot001.ml" ] in
  match r.Statflow.Analyze.findings with
  | [ d ] -> (
      match d.Diag.location with
      | Diag.File { file; line } ->
          Alcotest.(check string) "file" (fixture "hot001.ml") file;
          Alcotest.(check int) "line of the tuple" 7 line
      | _ -> Alcotest.fail "expected file:line location")
  | ds -> Alcotest.failf "expected 1 finding, got %d" (List.length ds)

(* ---- sanctioned patterns ------------------------------------------------- *)

let clean () =
  let r = run_fixtures [ "clean.ml" ] in
  check_codes ~msg:"clean" [] r;
  Alcotest.(check int) "nothing suppressed" 0 r.Statflow.Analyze.suppressed;
  Alcotest.(check int) "entry found" 1
    (List.length r.Statflow.Analyze.hot_entries)

let allowed_pragma () =
  let r = run_fixtures [ "allowed.ml" ] in
  check_codes ~msg:"suppressed finding" [] r;
  Alcotest.(check int) "one suppression" 1 r.Statflow.Analyze.suppressed

let stale_pragma () =
  let r = run_fixtures [ "stale.ml" ] in
  check_codes ~msg:"stale" [ "FLOW007" ] r

let parse_failure () =
  match
    Srcmodel.Source.of_string ~tool:Statflow.Analyze.tool ~path:"bad.ml"
      "let run = ("
  with
  | Ok _ -> Alcotest.fail "syntax error accepted"
  | Error d -> Alcotest.(check string) "code" "FLOW000" d.Diag.code

(* ---- whole-directory run ------------------------------------------------- *)

let full_directory () =
  let r = Statflow.Analyze.run_dirs ~config [ fixture_dir ] in
  Alcotest.(check int) "files" 12 r.Statflow.Analyze.files_scanned;
  Alcotest.(check (list (pair string int)))
    "histogram"
    [
      ("DET001", 1);
      ("DET002", 1);
      ("DET003", 1);
      ("EXC001", 1);
      ("EXC002", 1);
      ("FLOW007", 1);
      ("HOT001", 1);
      ("HOT002", 1);
      ("HOT003", 1);
      ("HOT004", 1);
    ]
    (Statflow.Analyze.count_by_code r.Statflow.Analyze.findings);
  Alcotest.(check int) "one suppression" 1 r.Statflow.Analyze.suppressed

(* ---- sort-sink discipline ------------------------------------------------ *)

(* the same traversal, ordered vs not: piping the fold into List.sort is
   what separates a deterministic result from a seed-dependent one. The
   HOT001 pair (cons + tuple in the iterator callback) fires either way —
   the entry is also a hot root here. *)
let sorted_fold () =
  let unsorted =
    "let tbl = Hashtbl.create 8\n\
     let run () = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []\n"
  in
  let sorted =
    "let tbl = Hashtbl.create 8\n\
     let run () =\n\
    \  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []\n\
    \  |> List.sort compare\n"
  in
  check_codes ~msg:"unsorted traversal"
    [ "DET001"; "HOT001"; "HOT001" ]
    (Statflow.Analyze.run ~config [ parse ~path:"unsorted.ml" unsorted ]);
  check_codes ~msg:"sorted traversal"
    [ "HOT001"; "HOT001" ]
    (Statflow.Analyze.run ~config [ parse ~path:"sorted.ml" sorted ])

(* ---- interprocedural gating ---------------------------------------------- *)

(* the loop allocation sits in a callee: it fires exactly when the callee is
   reachable from a configured entry *)
let reachable_callee () =
  let src =
    "let fill sink n = for i = 0 to n do sink := (i, i) done\n\
     let run n = fill (ref (0, 0)) n\n\
     let orphan n = fill (ref (0, 0)) n\n"
  in
  check_codes ~msg:"callee on the hot path" [ "HOT001" ]
    (Statflow.Analyze.run ~config [ parse ~path:"deep.ml" src ]);
  let cfg = { config with Statflow.Analyze.entries = [ "nothing" ] } in
  check_codes ~msg:"no entry, no findings" []
    (Statflow.Analyze.run ~config:cfg [ parse ~path:"deep.ml" src ])

(* reachability flows through value bindings: a closure parked in a table
   does not hide its payload *)
let through_values () =
  let src =
    "let fill sink n = for i = 0 to n do sink := (i, i) done\n\
     let table = [ (\"fill\", fill) ]\n\
     let run n = List.iter (fun (_, f) -> f n) table\n"
  in
  check_codes ~msg:"table-parked callee" [ "HOT001" ]
    (Statflow.Analyze.run ~config [ parse ~path:"table.ml" src ])

(* ---- allow file ---------------------------------------------------------- *)

let allow_file () =
  let path = Filename.temp_file "statflow" ".allow" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            "# reviewed probe tuple\n\
             HOT001 hot001.ml:7 fixture carries it deliberately\n\
             HOT003 nonexistent.ml stale entry\n");
      match Statflow.Analyze.parse_allow_file path with
      | Error e -> Alcotest.failf "allow file rejected: %s" e
      | Ok allow ->
          let config = { config with Statflow.Analyze.allow } in
          let r =
            Statflow.Analyze.run ~config (List.map load [ "hot001.ml" ])
          in
          (* the HOT001 is suppressed; the unmatched entry turns FLOW007 *)
          check_codes ~msg:"suppressed + stale" [ "FLOW007" ] r;
          Alcotest.(check int)
            "one suppression" 1 r.Statflow.Analyze.suppressed)

let allow_file_rejects_unknown_code () =
  let path = Filename.temp_file "statflow" ".allow" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "NOPE001 some/file.ml\n");
      match Statflow.Analyze.parse_allow_file path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown code accepted")

(* ---- alloc summaries ----------------------------------------------------- *)

let summaries () =
  let r = run_fixtures [ "hot003.ml" ] in
  match r.Statflow.Analyze.summaries with
  | [ (name, c) ] ->
      Alcotest.(check string) "entry" "Hot003.run" name;
      Alcotest.(check int) "bindings" 1 c.Statflow.Analyze.bindings;
      (* ref total + Array.make row *)
      Alcotest.(check int) "builders" 2 c.Statflow.Analyze.builders;
      Alcotest.(check int) "in loop" 1 c.Statflow.Analyze.in_loop
  | ss -> Alcotest.failf "expected 1 summary, got %d" (List.length ss)

(* ---- cross-check against the dynamic allocation budget ------------------- *)

(* test_obs.ml measures 100k disabled [Obs.Counters.bump] calls at
   ~0 minor words; the static verdict on the real tree must agree — no
   HOT001-3 may name Counters.bump. Runs the default (real) entry sets. *)
let real_tree_agrees_with_gc_budget () =
  match
    List.find_opt
      (List.for_all Sys.file_exists)
      [ [ "lib" ]; [ Filename.concat ".." "lib" ] ]
  with
  | None -> () (* sources not shipped with the test tree; nothing to check *)
  | Some roots ->
      let r = Statflow.Analyze.run_dirs [ roots |> List.hd ] in
      Alcotest.(check int)
        "all fifteen hot entries resolve" 15
        (List.length r.Statflow.Analyze.hot_entries);
      List.iter
        (fun (d : Diag.t) ->
          match d.Diag.code with
          | "HOT001" | "HOT002" | "HOT003" ->
              let msg = Diag.to_string d in
              let names_bump =
                let sub = "(Counters.bump)" in
                let n = String.length msg and m = String.length sub in
                let rec scan i =
                  i + m <= n && (String.sub msg i m = sub || scan (i + 1))
                in
                scan 0
              in
              if names_bump then
                Alcotest.failf
                  "static HOT finding contradicts the Gc budget test: %s" msg
          | _ -> ())
        r.Statflow.Analyze.findings

(* ---- suite --------------------------------------------------------------- *)

let () =
  Alcotest.run "statflow"
    [
      ( "fixtures",
        [
          Alcotest.test_case "planted findings" `Quick planted;
          Alcotest.test_case "locations and severities" `Quick
            locations_and_severities;
          Alcotest.test_case "clean patterns" `Quick clean;
          Alcotest.test_case "pragma suppression" `Quick allowed_pragma;
          Alcotest.test_case "stale pragma" `Quick stale_pragma;
          Alcotest.test_case "parse failure" `Quick parse_failure;
          Alcotest.test_case "full directory" `Quick full_directory;
        ] );
      ( "model",
        [
          Alcotest.test_case "sort-sink discipline" `Quick sorted_fold;
          Alcotest.test_case "reachable callee" `Quick reachable_callee;
          Alcotest.test_case "through value bindings" `Quick through_values;
          Alcotest.test_case "alloc summaries" `Quick summaries;
        ] );
      ( "config",
        [
          Alcotest.test_case "allow file" `Quick allow_file;
          Alcotest.test_case "allow file unknown code" `Quick
            allow_file_rejects_unknown_code;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "agrees with Gc budget" `Quick
            real_tree_agrees_with_gc_budget;
        ] );
    ]

(* statrace tests: every planted-race fixture yields exactly its expected
   PAR findings, the sanctioned-patterns fixture stays silent, suppression
   and staleness both work, and the interprocedural mutex guard holds. *)

(* cwd is test/ under `dune runtest`, the project root under `dune exec` *)
let fixture_dir =
  List.find Sys.file_exists
    [
      Filename.concat "fixtures" "statrace";
      Filename.concat "test" (Filename.concat "fixtures" "statrace");
    ]

let fixture name = Filename.concat fixture_dir name

let load name =
  match Srcmodel.Source.load ~tool:Statrace.Analyze.tool (fixture name) with
  | Ok s -> s
  | Error d -> Alcotest.failf "fixture %s: %s" name (Diag.to_string d)

let parse ~path text =
  match Srcmodel.Source.of_string ~tool:Statrace.Analyze.tool ~path text with
  | Ok s -> s
  | Error d -> Alcotest.failf "inline %s: %s" path (Diag.to_string d)

let codes (r : Statrace.Analyze.result) =
  List.map (fun d -> d.Diag.code) r.Statrace.Analyze.findings

let check_codes ~msg expected r =
  Alcotest.(check (list string)) msg expected (List.sort compare (codes r))

let run_fixtures names = Statrace.Analyze.run (List.map load names)

(* ---- planted races ------------------------------------------------------ *)

let planted () =
  check_codes ~msg:"par001" [ "PAR001" ] (run_fixtures [ "par001.ml" ]);
  check_codes ~msg:"par002" [ "PAR002"; "PAR002" ] (run_fixtures [ "par002.ml" ]);
  check_codes ~msg:"par003" [ "PAR003" ] (run_fixtures [ "par003.ml" ]);
  check_codes ~msg:"par004" [ "PAR004" ] (run_fixtures [ "par004.ml" ]);
  check_codes ~msg:"par005" [ "PAR005" ] (run_fixtures [ "par005.ml" ]);
  check_codes ~msg:"par006" [ "PAR006" ] (run_fixtures [ "par006.ml" ])

let locations_and_severities () =
  let r = run_fixtures [ "par001.ml" ] in
  match r.Statrace.Analyze.findings with
  | [ d ] ->
      Alcotest.(check string) "code" "PAR001" d.Diag.code;
      (match d.Diag.severity with
      | Diag.Severity.Error -> ()
      | s -> Alcotest.failf "severity %s" (Diag.Severity.to_string s));
      (match d.Diag.location with
      | Diag.File { file; line } ->
          Alcotest.(check string) "file" (fixture "par001.ml") file;
          Alcotest.(check int) "line of incr" 7 line
      | _ -> Alcotest.fail "expected file:line location")
  | ds -> Alcotest.failf "expected 1 finding, got %d" (List.length ds)

(* ---- sanctioned patterns ------------------------------------------------ *)

let clean () =
  let r = run_fixtures [ "clean.ml" ] in
  check_codes ~msg:"clean" [] r;
  Alcotest.(check int) "nothing suppressed" 0 r.Statrace.Analyze.suppressed;
  Alcotest.(check int) "entry found" 1
    (List.length r.Statrace.Analyze.entry_points)

let allowed_pragma () =
  let r = run_fixtures [ "allowed.ml" ] in
  check_codes ~msg:"suppressed race" [] r;
  Alcotest.(check int) "one suppression" 1 r.Statrace.Analyze.suppressed

let stale_pragma () =
  let r = run_fixtures [ "stale.ml" ] in
  check_codes ~msg:"stale" [ "PAR007" ] r

(* ---- whole-directory run ------------------------------------------------ *)

let full_directory () =
  let r = Statrace.Analyze.run_dirs [ fixture_dir ] in
  Alcotest.(check int) "files" 9 r.Statrace.Analyze.files_scanned;
  Alcotest.(check (list (pair string int)))
    "histogram"
    [
      ("PAR001", 1);
      ("PAR002", 2);
      ("PAR003", 1);
      ("PAR004", 1);
      ("PAR005", 1);
      ("PAR006", 1);
      ("PAR007", 1);
    ]
    (Statrace.Analyze.count_by_code r.Statrace.Analyze.findings);
  Alcotest.(check int) "one suppression" 1 r.Statrace.Analyze.suppressed

(* ---- entry selection ---------------------------------------------------- *)

let entry_filter () =
  let srcs = List.map load [ "par001.ml"; "par003.ml" ] in
  let config =
    { Statrace.Analyze.default_config with entries = [ "Par001.run" ] }
  in
  let r = Statrace.Analyze.run ~config srcs in
  check_codes ~msg:"only par001's entry analyzed" [ "PAR001" ] r

(* ---- allow file --------------------------------------------------------- *)

let allow_file () =
  let path = Filename.temp_file "statrace" ".allow" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            "# known torn-read probe\n\
             PAR001 par001.ml:7 debug counter\n\
             PAR003 nonexistent.ml stale entry\n");
      match Statrace.Analyze.parse_allow_file path with
      | Error e -> Alcotest.failf "allow file rejected: %s" e
      | Ok allow ->
          let config = { Statrace.Analyze.default_config with allow } in
          let r =
            Statrace.Analyze.run ~config (List.map load [ "par001.ml" ])
          in
          (* the PAR001 is suppressed; the unmatched entry turns PAR007 *)
          check_codes ~msg:"suppressed + stale" [ "PAR007" ] r;
          Alcotest.(check int) "one suppression" 1 r.Statrace.Analyze.suppressed)

let allow_file_rejects_unknown_code () =
  let path = Filename.temp_file "statrace" ".allow" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "NOPE001 some/file.ml\n");
      match Statrace.Analyze.parse_allow_file path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unknown code accepted")

(* ---- interprocedural guard ---------------------------------------------- *)

(* the [record_locked] convention: raw writes in a callee reached only
   through a Mutex.protect thunk are safe ... *)
let guarded_src =
  "let mu = Mutex.create ()\n\
   let n = ref 0\n\
   let bump_locked () = incr n\n\
   let bump () = Mutex.protect mu (fun () -> bump_locked ())\n\
   let run () = Domain.join (Domain.spawn bump)\n"

(* ... but one unguarded path to the same callee re-exposes the race *)
let leaky_src =
  "let mu = Mutex.create ()\n\
   let n = ref 0\n\
   let bump_locked () = incr n\n\
   let bump () = Mutex.protect mu (fun () -> bump_locked ())\n\
   let run () =\n\
  \  let d = Domain.spawn (fun () -> bump_locked ()) in\n\
  \  bump ();\n\
  \  Domain.join d\n"

let guarded_callee () =
  check_codes ~msg:"guarded only"
    []
    (Statrace.Analyze.run [ parse ~path:"guarded.ml" guarded_src ]);
  check_codes ~msg:"one unguarded path"
    [ "PAR001" ]
    (Statrace.Analyze.run [ parse ~path:"leaky.ml" leaky_src ])

(* reachability must not flow through non-function bindings: a module-init
   expression runs once on the loading domain, before any spawn *)
let init_not_reachable () =
  let src =
    "let n = ref 0\n\
     let table = (incr n; Array.make 4 0)\n\
     let run () = Domain.join (Domain.spawn (fun () -> table.(0)))\n"
  in
  check_codes ~msg:"module init is sequential" []
    (Statrace.Analyze.run [ parse ~path:"init.ml" src ])

(* ---- suite -------------------------------------------------------------- *)

let () =
  Alcotest.run "statrace"
    [
      ( "fixtures",
        [
          Alcotest.test_case "planted races" `Quick planted;
          Alcotest.test_case "locations and severities" `Quick
            locations_and_severities;
          Alcotest.test_case "clean patterns" `Quick clean;
          Alcotest.test_case "pragma suppression" `Quick allowed_pragma;
          Alcotest.test_case "stale pragma" `Quick stale_pragma;
          Alcotest.test_case "full directory" `Quick full_directory;
        ] );
      ( "config",
        [
          Alcotest.test_case "entry filter" `Quick entry_filter;
          Alcotest.test_case "allow file" `Quick allow_file;
          Alcotest.test_case "allow file unknown code" `Quick
            allow_file_rejects_unknown_code;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "guarded callee" `Quick guarded_callee;
          Alcotest.test_case "init not reachable" `Quick init_not_reachable;
        ] );
    ]

(* Tests for the experiment harness (small circuits only; the full paper
   reproduction lives in bench/main.exe). *)

open Test_util

let fig3_reproduces_the_paper () =
  let r = Experiments.Fig3.trace () in
  Alcotest.(check (list string))
    "WNSS path is X -> g2 -> g4"
    [ "X"; "g2"; "g4" ]
    (List.map Experiments.Fig3.name r.Experiments.Fig3.path);
  (* the interesting decision: at g2 the LOWER-mean, higher-sigma input g4
     wins over g3 — the paper's central point about statistical tracing *)
  check_true "g4 beats g3 despite the lower mean"
    (List.exists
       (fun (at, picked, _) ->
         at = Experiments.Fig3.G2 && picked = Experiments.Fig3.G4)
       r.Experiments.Fig3.decisions)

let fig3_arrivals_match_figure () =
  close "g2 mean" 392.0 (Experiments.Fig3.arrival Experiments.Fig3.G2).Numerics.Clark.mean;
  close "g4 sigma" 45.0
    (Numerics.Clark.sigma (Experiments.Fig3.arrival Experiments.Fig3.G4));
  check_int "X has two inputs" 2
    (List.length (Experiments.Fig3.contributions Experiments.Fig3.X))

let approx_erf_report () =
  let r = Experiments.Approx.erf_study () in
  check_true "two-decimal claim holds (≈0.011 worst case)"
    (r.Experiments.Approx.max_abs_error < 0.015)

let approx_max_report () =
  let r = Experiments.Approx.max_study ~cases:120 ~trials:8000 () in
  check_int "all cases ran" 120 r.Experiments.Approx.cases;
  check_true "fast mean close to exact"
    (r.Experiments.Approx.worst_mean_err_vs_exact < 0.03);
  check_true "exact Clark close to MC"
    (r.Experiments.Approx.worst_mean_err_exact_vs_mc < 0.03);
  check_true "cutoff fires for a sizable share"
    (r.Experiments.Approx.cutoff_fraction > 0.1)

let approx_cutoff_study () =
  let rows = Experiments.Approx.cutoff_study ~names:[ "alu2" ] ~lib () in
  match rows with
  | [ ("alu2", f) ] -> check_true "fraction in range" (f >= 0.0 && f <= 1.0)
  | _ -> Alcotest.fail "expected one row"

let pipeline_end_to_end_small () =
  (* full pipeline on the smallest suite circuit at one alpha *)
  let entry = Option.get (Benchgen.Iscas_like.find "alu2") in
  let baseline =
    Experiments.Pipeline.prepare ~lib (fun () -> entry.Benchgen.Iscas_like.build ~lib)
  in
  check_true "baseline sane"
    (baseline.Experiments.Pipeline.moments.Numerics.Clark.mean > 0.0);
  let r = Experiments.Pipeline.run_alpha ~lib baseline ~alpha:9.0 in
  check_true "sigma reduced" (r.Experiments.Pipeline.sigma_change_pct < -10.0);
  check_true "mean within 10%" (Float.abs r.Experiments.Pipeline.mean_change_pct < 10.0);
  check_true "area increased" (r.Experiments.Pipeline.area_change_pct > 0.0);
  (* the baseline circuit is untouched by the alpha run *)
  let full = Ssta.Fullssta.run baseline.Experiments.Pipeline.circuit in
  close ~tol:1e-9 "baseline circuit unchanged"
    baseline.Experiments.Pipeline.moments.Numerics.Clark.mean
    (Ssta.Fullssta.output_moments full).Numerics.Clark.mean

let table1_row_small () =
  let entry = Option.get (Benchgen.Iscas_like.find "alu2") in
  let row = Experiments.Table1.run_circuit ~alphas:[ 3.0 ] ~lib entry in
  Alcotest.(check string) "name" "alu2" row.Experiments.Table1.name;
  check_true "gates counted" (row.Experiments.Table1.gates > 50);
  check_true "original sigma/mean positive"
    (row.Experiments.Table1.original_sigma_over_mean > 0.0);
  match row.Experiments.Table1.runs with
  | [ r ] ->
      check_true "sigma reduced" (r.Experiments.Pipeline.sigma_change_pct < 0.0);
      check_true "csv has rows"
        (String.length (Experiments.Table1.to_csv [ row ]) > 100)
  | _ -> Alcotest.fail "expected one run"

(* The domains clamp must be loud: asking for more workers than the host's
   recommended domain count (always true for [cores + 1]) has to bump the
   table1.domains.clamped counter instead of silently shrinking. Runs one
   tiny 1-iteration job so the clamp path — not the sizing — dominates.
   On a 1-core box this is also exactly the CI situation the counter was
   added for; note it rather than skipping. *)
let table1_domains_clamp () =
  let cores = Domain.recommended_domain_count () in
  if cores = 1 then
    prerr_endline "test_experiments: single core, clamp is the expected path";
  let sizer_config = { Core.Sizer.default_config with max_iterations = 1 } in
  Obs.Sink.reset ();
  Obs.Sink.enable ();
  Fun.protect ~finally:Obs.Sink.disable @@ fun () ->
  let rows =
    Experiments.Table1.run ~alphas:[ 3.0 ] ~sizer_config ~names:[ "alu2" ]
      ~domains:(cores + 1) ~lib ()
  in
  check_int "one row" 1 (List.length rows);
  let clamped =
    Option.value ~default:0
      (List.assoc_opt "table1.domains.clamped" (Obs.Counters.dump ()))
  in
  check_int "clamp counted" 1 clamped;
  Obs.Sink.reset ()

let () =
  Alcotest.run "experiments"
    [
      ( "fig3",
        [
          Alcotest.test_case "reproduces the paper" `Quick fig3_reproduces_the_paper;
          Alcotest.test_case "figure arrivals" `Quick fig3_arrivals_match_figure;
        ] );
      ( "approx",
        [
          Alcotest.test_case "erf report" `Quick approx_erf_report;
          Alcotest.test_case "max report" `Quick approx_max_report;
          Alcotest.test_case "cutoff study" `Quick approx_cutoff_study;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "end to end (alu2)" `Slow pipeline_end_to_end_small ] );
      ( "table1",
        [
          Alcotest.test_case "single row (alu2)" `Slow table1_row_small;
          Alcotest.test_case "domains clamp is loud" `Slow table1_domains_clamp;
        ] );
    ]

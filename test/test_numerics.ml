(* Unit and property tests for the numerics substrate. *)

open Test_util

(* ---- Erf ---------------------------------------------------------------- *)

let erf_reference_values () =
  (* Abramowitz & Stegun tabulated values. *)
  close ~tol:1e-6 "erf 0" 0.0 (Numerics.Erf.exact 0.0);
  close ~tol:1e-5 "erf 0.5" 0.5204999 (Numerics.Erf.exact 0.5);
  close ~tol:1e-5 "erf 1" 0.8427008 (Numerics.Erf.exact 1.0);
  close ~tol:1e-5 "erf 2" 0.9953223 (Numerics.Erf.exact 2.0);
  close ~tol:1e-5 "erf 3" 0.9999779 (Numerics.Erf.exact 3.0)

let erf_odd () =
  List.iter
    (fun x ->
      close ~tol:1e-12 "erf odd" (-.Numerics.Erf.exact x) (Numerics.Erf.exact (-.x));
      close ~tol:1e-12 "quadratic odd" (-.Numerics.Erf.quadratic x)
        (Numerics.Erf.quadratic (-.x)))
    [ 0.1; 0.7; 1.5; 2.3; 3.0 ]

let erfc_complement () =
  List.iter
    (fun x ->
      close ~tol:1e-12 "erfc" (1.0 -. Numerics.Erf.exact x) (Numerics.Erf.erfc x))
    [ -2.0; -0.3; 0.0; 0.4; 1.9 ]

(* The paper claims two-decimal accuracy for the CRC quadratic. *)
let quadratic_two_decimals () =
  let err = Numerics.Erf.max_quadratic_error () in
  check_true "quadratic error < 0.015" (err < 0.015);
  check_true "quadratic error nontrivial" (err > 0.001)

let quadratic_saturates () =
  close ~tol:0.0 "saturation +" 1.0 (Numerics.Erf.quadratic 1.9);
  close ~tol:0.0 "saturation -" (-1.0) (Numerics.Erf.quadratic (-3.5));
  close ~tol:0.0 "phi saturation point is 2.6" 2.6 Numerics.Erf.phi_saturation_point;
  close ~tol:1e-9 "phi(0)" 0.5 (Numerics.Erf.phi_quadratic 0.0);
  close ~tol:0.006 "phi(1)" 0.8413 (Numerics.Erf.phi_quadratic 1.0);
  close ~tol:0.0 "phi saturates" 1.0 (Numerics.Erf.phi_quadratic 2.7)

let erf_monotone =
  qcheck "exact erf is monotone"
    QCheck.(pair (float_bound_inclusive 4.0) (float_bound_inclusive 4.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Numerics.Erf.exact lo <= Numerics.Erf.exact hi +. 1e-12)

(* ---- Normal ------------------------------------------------------------- *)

let normal_cdf_values () =
  close ~tol:1e-7 "cdf 0" 0.5 (Numerics.Normal.cdf 0.0);
  close ~tol:1e-5 "cdf 1.96" 0.9750021 (Numerics.Normal.cdf 1.96);
  close ~tol:1e-5 "cdf -1" 0.1586553 (Numerics.Normal.cdf (-1.0));
  close ~tol:1e-6 "pdf 0" 0.3989423 (Numerics.Normal.pdf 0.0)

let normal_quantile_roundtrip =
  qcheck "quantile inverts cdf" QCheck.(float_range 0.001 0.999) (fun p ->
      Float.abs (Numerics.Normal.cdf (Numerics.Normal.quantile p) -. p) < 1e-6)

let normal_quantile_invalid () =
  Alcotest.check_raises "p=0 rejected"
    (Invalid_argument "Normal.quantile: p = 0 outside (0, 1)") (fun () ->
      ignore (Numerics.Normal.quantile 0.0))

let normal_degenerate_sigma () =
  close ~tol:0.0 "step below" 0.0 (Numerics.Normal.cdf_at ~mean:5.0 ~sigma:0.0 4.9);
  close ~tol:0.0 "step above" 1.0 (Numerics.Normal.cdf_at ~mean:5.0 ~sigma:0.0 5.0)

let normal_scaled () =
  close ~tol:1e-6 "scaled cdf at mean" 0.5
    (Numerics.Normal.cdf_at ~mean:100.0 ~sigma:7.0 100.0);
  close ~tol:1e-5 "scaled quantile" 100.0
    (Numerics.Normal.quantile_at ~mean:100.0 ~sigma:7.0 0.5)

(* ---- Clark -------------------------------------------------------------- *)

let clark_sum () =
  let a = moments ~mu:10.0 ~sigma:3.0 and b = moments ~mu:20.0 ~sigma:4.0 in
  let s = Numerics.Clark.sum a b in
  close "sum mean" 30.0 s.Numerics.Clark.mean;
  close "sum sigma" 5.0 (Numerics.Clark.sigma s)

let clark_max_symmetric_equal () =
  (* max of two iid N(0,1): mean = 1/sqrt(pi), var = 1 - 1/pi *)
  let a = moments ~mu:0.0 ~sigma:1.0 in
  let m = Numerics.Clark.max_exact a a in
  close ~tol:1e-4 "E[max] = 1/sqrt(pi)" (1.0 /. Float.sqrt Float.pi)
    m.Numerics.Clark.mean;
  close ~tol:1e-3 "Var[max] = 1 - 1/pi" (1.0 -. (1.0 /. Float.pi))
    m.Numerics.Clark.var

let clark_max_dominant () =
  let a = moments ~mu:100.0 ~sigma:1.0 and b = moments ~mu:0.0 ~sigma:1.0 in
  let m = Numerics.Clark.max_exact a b in
  close ~tol:1e-6 "dominant mean" 100.0 m.Numerics.Clark.mean;
  close ~tol:1e-4 "dominant var" 1.0 m.Numerics.Clark.var

let clark_cutoff_branches () =
  let a = moments ~mu:100.0 ~sigma:3.0 and b = moments ~mu:50.0 ~sigma:3.0 in
  (match Numerics.Clark.max_fast_resolved a b with
  | m, Numerics.Clark.Left_dominates -> close "left wins" 100.0 m.Numerics.Clark.mean
  | _ -> Alcotest.fail "expected Left_dominates");
  (match Numerics.Clark.max_fast_resolved b a with
  | m, Numerics.Clark.Right_dominates ->
      close "right wins" 100.0 m.Numerics.Clark.mean
  | _ -> Alcotest.fail "expected Right_dominates");
  match
    Numerics.Clark.max_fast_resolved (moments ~mu:100.0 ~sigma:10.0)
      (moments ~mu:101.0 ~sigma:10.0)
  with
  | _, Numerics.Clark.Blended -> ()
  | _ -> Alcotest.fail "expected Blended"

let clark_max_vs_monte_carlo () =
  let rng = Numerics.Rng.create ~seed:7 in
  let cases =
    [ (0.0, 1.0, 0.0, 1.0); (10.0, 2.0, 11.0, 3.0); (5.0, 1.0, 9.0, 4.0);
      (100.0, 10.0, 95.0, 2.0) ]
  in
  List.iter
    (fun (ma, sa, mb, sb) ->
      let stats = Numerics.Stats.create () in
      for _ = 1 to 60_000 do
        let xa = Numerics.Rng.gaussian_scaled rng ~mean:ma ~sigma:sa in
        let xb = Numerics.Rng.gaussian_scaled rng ~mean:mb ~sigma:sb in
        Numerics.Stats.add stats (Float.max xa xb)
      done;
      let m =
        Numerics.Clark.max_exact (moments ~mu:ma ~sigma:sa)
          (moments ~mu:mb ~sigma:sb)
      in
      close ~tol:0.02 "Clark mean vs MC"
        (Numerics.Stats.mean stats +. 1.0)
        (m.Numerics.Clark.mean +. 1.0);
      close ~tol:0.05 "Clark sigma vs MC" (Numerics.Stats.std stats)
        (Numerics.Clark.sigma m))
    cases

let gen_moments =
  QCheck.map
    (fun (mu, sigma) -> moments ~mu ~sigma:(0.1 +. sigma))
    QCheck.(pair (float_range (-50.) 400.) (float_range 0.0 40.0))

let clark_max_commutative =
  qcheck "exact max is commutative" (QCheck.pair gen_moments gen_moments)
    (fun (a, b) ->
      let m1 = Numerics.Clark.max_exact a b in
      let m2 = Numerics.Clark.max_exact b a in
      Float.abs (m1.Numerics.Clark.mean -. m2.Numerics.Clark.mean) < 1e-9
      && Float.abs (m1.Numerics.Clark.var -. m2.Numerics.Clark.var) < 1e-9)

let clark_max_bounds =
  qcheck "E[max] >= both means" (QCheck.pair gen_moments gen_moments)
    (fun (a, b) ->
      let m = Numerics.Clark.max_exact a b in
      m.Numerics.Clark.mean
      >= Float.max a.Numerics.Clark.mean b.Numerics.Clark.mean -. 1e-6)

(* The fast max's error sources are the quadratic Φ (≤ 0.0052) and the 2.6
   cutoff, whose truncated tail carries at most a few percent of the spread
   (worst when the dominant operand's own sigma is tiny). Both error scales
   are proportional to the spread a = sqrt(σA² + σB²). *)
let clark_fast_close_to_exact =
  qcheck "fast max tracks exact max" (QCheck.pair gen_moments gen_moments)
    (fun (a, b) ->
      let e = Numerics.Clark.max_exact a b in
      let f = Numerics.Clark.max_fast a b in
      let spread = Numerics.Clark.spread a b in
      Float.abs (e.Numerics.Clark.mean -. f.Numerics.Clark.mean)
      < (0.05 *. spread) +. 0.01
      && Float.abs (Numerics.Clark.sigma e -. Numerics.Clark.sigma f)
         < (0.2 *. spread) +. 0.01)

let clark_negative_var_rejected () =
  Alcotest.check_raises "negative variance"
    (Invalid_argument "Clark.moments: negative variance") (fun () ->
      ignore (Numerics.Clark.moments ~mean:0.0 ~var:(-1.0)))

(* The 2.6-cutoff boundary, straddled from both sides at unit spread
   (var 0.5 + 0.5 so alpha = gap exactly): the resolved branch must flip
   exactly at alpha = 2.6, and whichever branch fires must stay within the
   statically certified one-step error constants of the exact max
   (Absint.Budget's k_* — the same constants statcheck's enclosures use). *)
let clark_cutoff_boundary () =
  let check_gap gap expect_left =
    let a = Numerics.Clark.moments ~mean:gap ~var:0.5 in
    let b = Numerics.Clark.moments ~mean:0.0 ~var:0.5 in
    let sp = Numerics.Clark.spread a b in
    close ~tol:1e-12 "unit spread" 1.0 sp;
    let f, res = Numerics.Clark.max_fast_resolved a b in
    let f' = Numerics.Clark.max_fast a b in
    close ~tol:0.0 "max_fast matches resolved mean" f'.Numerics.Clark.mean
      f.Numerics.Clark.mean;
    close ~tol:0.0 "max_fast matches resolved var" f'.Numerics.Clark.var
      f.Numerics.Clark.var;
    let name = Printf.sprintf "gap %.3f" gap in
    (match (res, expect_left) with
    | Numerics.Clark.Left_dominates, true | Numerics.Clark.Blended, false -> ()
    | r, _ ->
        Alcotest.failf "%s: unexpected resolution %s" name
          (match r with
          | Numerics.Clark.Left_dominates -> "Left_dominates"
          | Numerics.Clark.Right_dominates -> "Right_dominates"
          | Numerics.Clark.Blended -> "Blended"));
    let e = Numerics.Clark.max_exact a b in
    let k_mean, k_var =
      if expect_left then (Absint.Budget.k_cutoff_mean, Absint.Budget.k_cutoff_var)
      else (Absint.Budget.k_blend_mean, Absint.Budget.k_blend_var)
    in
    check_true (name ^ ": mean within certified step")
      (Float.abs (f.Numerics.Clark.mean -. e.Numerics.Clark.mean)
      <= k_mean *. sp);
    check_true (name ^ ": var within certified step")
      (Float.abs (f.Numerics.Clark.var -. e.Numerics.Clark.var)
      <= k_var *. sp *. sp)
  in
  check_gap 2.599 false;
  check_gap 2.6 true;
  check_gap 2.601 true

let clark_list_ops () =
  let ms = [ moments ~mu:1.0 ~sigma:1.0; moments ~mu:2.0 ~sigma:1.0;
             moments ~mu:50.0 ~sigma:1.0 ] in
  let m = Numerics.Clark.max_exact_list ms in
  close ~tol:1e-3 "list max dominated by 50" 50.0 m.Numerics.Clark.mean;
  Alcotest.check_raises "empty list"
    (Invalid_argument
       "Clark.max_exact_list: empty operand list (the max of zero random \
        variables is undefined; callers must supply at least one arrival)")
    (fun () -> ignore (Numerics.Clark.max_exact_list []));
  Alcotest.check_raises "empty fast list"
    (Invalid_argument
       "Clark.max_fast_list: empty operand list (the max of zero random \
        variables is undefined; callers must supply at least one arrival)")
    (fun () -> ignore (Numerics.Clark.max_fast_list []))

(* ---- Discrete_pdf ------------------------------------------------------- *)

let pdf_constant () =
  let p = Numerics.Discrete_pdf.constant 3.0 in
  close "constant mean" 3.0 (Numerics.Discrete_pdf.mean p);
  close_abs "constant var" 0.0 (Numerics.Discrete_pdf.variance p);
  check_int "one point" 1 (Numerics.Discrete_pdf.support_size p)

let pdf_of_normal_moments () =
  let p = Numerics.Discrete_pdf.of_normal ~samples:12 ~mean:100.0 ~sigma:10.0 () in
  close ~tol:0.01 "discretized mean" 100.0 (Numerics.Discrete_pdf.mean p);
  close ~tol:0.05 "discretized sigma" 10.0 (Numerics.Discrete_pdf.std p);
  check_true "invariants" (Numerics.Discrete_pdf.check_invariants p)

let pdf_sum_moments () =
  let a = Numerics.Discrete_pdf.of_normal ~samples:12 ~mean:10.0 ~sigma:3.0 () in
  let b = Numerics.Discrete_pdf.of_normal ~samples:12 ~mean:20.0 ~sigma:4.0 () in
  let s = Numerics.Discrete_pdf.sum a b in
  close ~tol:0.01 "sum mean" 30.0 (Numerics.Discrete_pdf.mean s);
  close ~tol:0.05 "sum sigma" 5.0 (Numerics.Discrete_pdf.std s);
  check_true "invariants" (Numerics.Discrete_pdf.check_invariants s)

let pdf_max_matches_clark () =
  let a = Numerics.Discrete_pdf.of_normal ~samples:25 ~mean:100.0 ~sigma:10.0 () in
  let b = Numerics.Discrete_pdf.of_normal ~samples:25 ~mean:105.0 ~sigma:8.0 () in
  let m = Numerics.Discrete_pdf.max2 a b in
  let clark =
    Numerics.Clark.max_exact (moments ~mu:100.0 ~sigma:10.0)
      (moments ~mu:105.0 ~sigma:8.0)
  in
  close ~tol:0.02 "discrete max mean vs Clark" clark.Numerics.Clark.mean
    (Numerics.Discrete_pdf.mean m);
  close ~tol:0.12 "discrete max sigma vs Clark" (Numerics.Clark.sigma clark)
    (Numerics.Discrete_pdf.std m)

let pdf_resample_preserves_moments () =
  let a = Numerics.Discrete_pdf.of_normal ~samples:40 ~mean:50.0 ~sigma:5.0 () in
  let b = Numerics.Discrete_pdf.of_normal ~samples:40 ~mean:51.0 ~sigma:5.0 () in
  let s = Numerics.Discrete_pdf.sum a b in
  let r = Numerics.Discrete_pdf.resample s ~samples:12 in
  check_true "support bounded" (Numerics.Discrete_pdf.support_size r <= 24);
  close ~tol:1e-9 "resample preserves mean" (Numerics.Discrete_pdf.mean s)
    (Numerics.Discrete_pdf.mean r);
  close ~tol:0.02 "resample preserves sigma" (Numerics.Discrete_pdf.std s)
    (Numerics.Discrete_pdf.std r)

let pdf_cdf_quantile () =
  let p = Numerics.Discrete_pdf.of_normal ~samples:30 ~mean:0.0 ~sigma:1.0 () in
  (* discrete median resolves to within half a bin (bins are 8/30 wide) *)
  close_abs ~tol:0.15 "median" 0.0 (Numerics.Discrete_pdf.quantile p 0.5);
  close_abs ~tol:0.06 "cdf at 0" 0.5 (Numerics.Discrete_pdf.cdf p 0.0);
  close_abs ~tol:1e-9 "cdf far right" 1.0 (Numerics.Discrete_pdf.cdf p 10.0);
  close_abs ~tol:1e-9 "cdf far left" 0.0 (Numerics.Discrete_pdf.cdf p (-10.0))

let pdf_shift_scale () =
  let p = Numerics.Discrete_pdf.of_normal ~samples:15 ~mean:10.0 ~sigma:2.0 () in
  let sh = Numerics.Discrete_pdf.shift p 5.0 in
  close ~tol:1e-9 "shift mean" 15.0 (Numerics.Discrete_pdf.mean sh);
  close ~tol:1e-9 "shift keeps sigma" (Numerics.Discrete_pdf.std p)
    (Numerics.Discrete_pdf.std sh);
  let sc = Numerics.Discrete_pdf.scale p 2.0 in
  close ~tol:1e-9 "scale mean" 20.0 (Numerics.Discrete_pdf.mean sc);
  close ~tol:1e-9 "scale sigma" (2.0 *. Numerics.Discrete_pdf.std p)
    (Numerics.Discrete_pdf.std sc);
  let neg = Numerics.Discrete_pdf.scale p (-1.0) in
  close ~tol:1e-9 "negative scale mean" (-10.0) (Numerics.Discrete_pdf.mean neg)

let pdf_of_samples () =
  let values = List.init 1000 (fun i -> float_of_int (i mod 10)) in
  let p = Numerics.Discrete_pdf.of_samples ~samples:20 values in
  close ~tol:0.01 "empirical mean" 4.5 (Numerics.Discrete_pdf.mean p);
  check_true "invariants" (Numerics.Discrete_pdf.check_invariants p)

let pdf_empty_rejected () =
  Alcotest.check_raises "no mass" (Invalid_argument "Discrete_pdf: no probability mass")
    (fun () -> ignore (Numerics.Discrete_pdf.of_points [ (1.0, 0.0) ]))

let gen_pdf =
  QCheck.map
    (fun (mu, sigma, n) ->
      Numerics.Discrete_pdf.of_normal ~samples:(6 + n) ~mean:mu
        ~sigma:(0.5 +. sigma) ())
    QCheck.(triple (float_range 0.0 200.0) (float_range 0.0 20.0) (int_bound 10))

let pdf_ops_keep_invariants =
  qcheck ~count:100 "sum/max keep invariants" (QCheck.pair gen_pdf gen_pdf)
    (fun (a, b) ->
      Numerics.Discrete_pdf.check_invariants (Numerics.Discrete_pdf.sum a b)
      && Numerics.Discrete_pdf.check_invariants (Numerics.Discrete_pdf.max2 a b)
      && Numerics.Discrete_pdf.check_invariants
           (Numerics.Discrete_pdf.resample (Numerics.Discrete_pdf.sum a b)
              ~samples:10))

let pdf_max_ge_means =
  qcheck ~count:100 "E[max] >= both means" (QCheck.pair gen_pdf gen_pdf)
    (fun (a, b) ->
      let m = Numerics.Discrete_pdf.max2 a b in
      Numerics.Discrete_pdf.mean m
      >= Float.max (Numerics.Discrete_pdf.mean a) (Numerics.Discrete_pdf.mean b)
         -. 1e-6)

(* ---- Lut ---------------------------------------------------------------- *)

let lut_grid_exact () =
  let lut =
    Numerics.Lut.create ~rows:[| 1.0; 2.0 |] ~cols:[| 10.0; 20.0 |]
      ~values:[| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]
  in
  close "corner 00" 1.0 (Numerics.Lut.query lut ~row:1.0 ~col:10.0);
  close "corner 11" 4.0 (Numerics.Lut.query lut ~row:2.0 ~col:20.0);
  close "center bilinear" 2.5 (Numerics.Lut.query lut ~row:1.5 ~col:15.0)

let lut_clamps () =
  let lut =
    Numerics.Lut.create ~rows:[| 1.0; 2.0 |] ~cols:[| 10.0; 20.0 |]
      ~values:[| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]
  in
  close "clamp low" 1.0 (Numerics.Lut.query lut ~row:0.0 ~col:0.0);
  close "clamp high" 4.0 (Numerics.Lut.query lut ~row:9.0 ~col:99.0)

let lut_of_function () =
  let lut =
    Numerics.Lut.of_function ~rows:[| 0.0; 1.0; 2.0 |] ~cols:[| 0.0; 1.0 |]
      (fun r c -> r +. (10.0 *. c))
  in
  close "tabulated" 12.0 (Numerics.Lut.query lut ~row:2.0 ~col:1.0);
  (* bilinear interpolation is exact for affine functions *)
  close "affine interp" 5.5 (Numerics.Lut.query lut ~row:0.5 ~col:0.5)

let lut_validation () =
  Alcotest.check_raises "decreasing axis"
    (Invalid_argument "Lut.create: axes must be strictly increasing") (fun () ->
      ignore
        (Numerics.Lut.create ~rows:[| 2.0; 1.0 |] ~cols:[| 1.0 |]
           ~values:[| [| 1.0 |]; [| 2.0 |] |]));
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Lut.create: values shape mismatch") (fun () ->
      ignore
        (Numerics.Lut.create ~rows:[| 1.0; 2.0 |] ~cols:[| 1.0 |]
           ~values:[| [| 1.0 |] |]))

(* ---- Rng ---------------------------------------------------------------- *)

let rng_deterministic () =
  let a = Numerics.Rng.create ~seed:11 and b = Numerics.Rng.create ~seed:11 in
  for _ = 1 to 100 do
    close ~tol:0.0 "same stream" (Numerics.Rng.float a) (Numerics.Rng.float b)
  done

let rng_int_bounds =
  qcheck "int within bounds" QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Numerics.Rng.create ~seed in
      let v = Numerics.Rng.int rng ~bound in
      v >= 0 && v < bound)

let rng_float_unit () =
  let rng = Numerics.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Numerics.Rng.float rng in
    check_true "in [0,1)" (v >= 0.0 && v < 1.0)
  done

let rng_gaussian_moments () =
  let rng = Numerics.Rng.create ~seed:5 in
  let stats = Numerics.Stats.create () in
  for _ = 1 to 50_000 do
    Numerics.Stats.add stats (Numerics.Rng.gaussian rng)
  done;
  close_abs ~tol:0.02 "gaussian mean" 0.0 (Numerics.Stats.mean stats);
  close ~tol:0.02 "gaussian sigma" 1.0 (Numerics.Stats.std stats)

let rng_split_differs () =
  let parent = Numerics.Rng.create ~seed:9 in
  let child = Numerics.Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Numerics.Rng.float parent = Numerics.Rng.float child then incr same
  done;
  check_true "streams diverge" (!same < 5)

let rng_shuffle_is_permutation () =
  let rng = Numerics.Rng.create ~seed:1 in
  let arr = Array.init 50 Fun.id in
  Numerics.Rng.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ---- Stats -------------------------------------------------------------- *)

let stats_known_values () =
  let s = Numerics.Stats.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  close "mean" 5.0 (Numerics.Stats.mean s);
  close "population variance" 4.0 (Numerics.Stats.population_variance s);
  close ~tol:1e-9 "sample variance" (32.0 /. 7.0) (Numerics.Stats.variance s);
  close "min" 2.0 (Numerics.Stats.min_value s);
  close "max" 9.0 (Numerics.Stats.max_value s);
  check_int "count" 8 (Numerics.Stats.count s)

let stats_percentiles () =
  let values = List.init 101 float_of_int in
  close "median" 50.0 (Numerics.Stats.percentile values 0.5);
  close "p0" 0.0 (Numerics.Stats.percentile values 0.0);
  close "p100" 100.0 (Numerics.Stats.percentile values 1.0);
  close "p25" 25.0 (Numerics.Stats.percentile values 0.25)

let stats_sigma_over_mean () =
  let s = Numerics.Stats.of_list [ 9.0; 10.0; 11.0 ] in
  close ~tol:1e-9 "cv" (1.0 /. 10.0) (Numerics.Stats.sigma_over_mean s)

let stats_welford_matches_direct =
  qcheck ~count:100 "welford matches direct formula"
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = Numerics.Stats.of_list xs in
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
        /. (n -. 1.0)
      in
      Float.abs (mean -. Numerics.Stats.mean s) < 1e-6 *. (1.0 +. Float.abs mean)
      && Float.abs (var -. Numerics.Stats.variance s) < 1e-6 *. (1.0 +. var))

let () =
  Alcotest.run "numerics"
    [
      ( "erf",
        [
          Alcotest.test_case "reference values" `Quick erf_reference_values;
          Alcotest.test_case "oddness" `Quick erf_odd;
          Alcotest.test_case "erfc" `Quick erfc_complement;
          Alcotest.test_case "quadratic two decimals" `Quick quadratic_two_decimals;
          Alcotest.test_case "quadratic saturates" `Quick quadratic_saturates;
          erf_monotone;
        ] );
      ( "normal",
        [
          Alcotest.test_case "cdf values" `Quick normal_cdf_values;
          Alcotest.test_case "quantile invalid" `Quick normal_quantile_invalid;
          Alcotest.test_case "degenerate sigma" `Quick normal_degenerate_sigma;
          Alcotest.test_case "scaled" `Quick normal_scaled;
          normal_quantile_roundtrip;
        ] );
      ( "clark",
        [
          Alcotest.test_case "sum" `Quick clark_sum;
          Alcotest.test_case "max of iid" `Quick clark_max_symmetric_equal;
          Alcotest.test_case "dominant max" `Quick clark_max_dominant;
          Alcotest.test_case "cutoff branches" `Quick clark_cutoff_branches;
          Alcotest.test_case "cutoff boundary 2.6" `Quick clark_cutoff_boundary;
          Alcotest.test_case "vs monte carlo" `Quick clark_max_vs_monte_carlo;
          Alcotest.test_case "negative var rejected" `Quick
            clark_negative_var_rejected;
          Alcotest.test_case "list ops" `Quick clark_list_ops;
          clark_max_commutative;
          clark_max_bounds;
          clark_fast_close_to_exact;
        ] );
      ( "discrete_pdf",
        [
          Alcotest.test_case "constant" `Quick pdf_constant;
          Alcotest.test_case "of_normal moments" `Quick pdf_of_normal_moments;
          Alcotest.test_case "sum moments" `Quick pdf_sum_moments;
          Alcotest.test_case "max vs clark" `Quick pdf_max_matches_clark;
          Alcotest.test_case "resample preserves moments" `Quick
            pdf_resample_preserves_moments;
          Alcotest.test_case "cdf/quantile" `Quick pdf_cdf_quantile;
          Alcotest.test_case "shift/scale" `Quick pdf_shift_scale;
          Alcotest.test_case "of_samples" `Quick pdf_of_samples;
          Alcotest.test_case "empty rejected" `Quick pdf_empty_rejected;
          pdf_ops_keep_invariants;
          pdf_max_ge_means;
        ] );
      ( "lut",
        [
          Alcotest.test_case "grid exact" `Quick lut_grid_exact;
          Alcotest.test_case "clamps" `Quick lut_clamps;
          Alcotest.test_case "of_function" `Quick lut_of_function;
          Alcotest.test_case "validation" `Quick lut_validation;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "float unit interval" `Quick rng_float_unit;
          Alcotest.test_case "gaussian moments" `Quick rng_gaussian_moments;
          Alcotest.test_case "split differs" `Quick rng_split_differs;
          Alcotest.test_case "shuffle permutation" `Quick rng_shuffle_is_permutation;
          rng_int_bounds;
        ] );
      ( "stats",
        [
          Alcotest.test_case "known values" `Quick stats_known_values;
          Alcotest.test_case "percentiles" `Quick stats_percentiles;
          Alcotest.test_case "sigma over mean" `Quick stats_sigma_over_mean;
          stats_welford_matches_direct;
        ] );
    ]

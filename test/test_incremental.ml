(* Incremental-engine equivalence: the dirty-cone electrical refresh and the
   live FULLSSTA annotation must be indistinguishable from scratch
   recomputation on ANY well-formed netlist under ANY resize sequence — the
   exact stops make that a bit-level claim, and paranoid mode must actually
   catch a state that violates it. *)

open Test_util

(* A seeded random circuit plus the seed, so each property derives its own
   deterministic resize sequence from it. *)
let gen_case =
  QCheck.map
    (fun (seed, gates, depth) ->
      ( Benchgen.Random_dag.generate ~lib
          {
            Benchgen.Random_dag.profile_name = Printf.sprintf "incr%d" seed;
            inputs = 6;
            outputs = 4;
            gates = 20 + gates;
            depth = 3 + depth;
            seed;
          },
        seed ))
    QCheck.(triple small_int (int_bound 60) (int_bound 6))

(* One random resize step: swap up to [moves] random gates to a different
   available size of the same function. Returns the gates actually moved. *)
let random_resizes rng circuit ~moves =
  let gates = Array.of_list (Netlist.Circuit.gates circuit) in
  List.init moves (fun _ -> gates.(Random.State.int rng (Array.length gates)))
  |> List.sort_uniq compare
  |> List.filter_map (fun g ->
         let current = Netlist.Circuit.cell_exn circuit g in
         let sizes =
           Array.to_list (Cells.Library.sizes_of_fn lib (Cells.Cell.fn current))
         in
         match
           List.filter (fun c -> not (Cells.Cell.equal c current)) sizes
         with
         | [] -> None
         | alts ->
             let cell =
               List.nth alts (Random.State.int rng (List.length alts))
             in
             Netlist.Circuit.set_cell circuit g cell;
             Some g)

let prop_electrical_update_matches_compute =
  qcheck ~count:30 "Electrical.update ≡ compute under random resizes" gen_case
    (fun (c, seed) ->
      let rng = Random.State.make [| seed; 0xe1ec |] in
      let e = Sta.Electrical.compute c in
      let ok = ref true in
      for _step = 1 to 4 do
        let resized = random_resizes rng c ~moves:(1 + Random.State.int rng 3) in
        ignore (Sta.Electrical.update e c ~resized);
        let fresh = Sta.Electrical.compute c in
        for id = 0 to Netlist.Circuit.size c - 1 do
          (* bit-level: the update's slew_tol = 0.0 stop is exact *)
          if
            e.Sta.Electrical.load.(id) <> fresh.Sta.Electrical.load.(id)
            || e.Sta.Electrical.slew.(id) <> fresh.Sta.Electrical.slew.(id)
            || e.Sta.Electrical.arc_delay.(id)
               <> fresh.Sta.Electrical.arc_delay.(id)
          then ok := false
        done
      done;
      !ok)

let pdf_points_close a b =
  let pa = Numerics.Discrete_pdf.points a
  and pb = Numerics.Discrete_pdf.points b in
  List.length pa = List.length pb
  && List.for_all2
       (fun (x, p) (x', p') ->
         Float.abs (x -. x') <= 1e-9 && Float.abs (p -. p') <= 1e-9)
       pa pb

let prop_fullssta_update_matches_run =
  qcheck ~count:15 "Fullssta.update ≡ run under random resizes" gen_case
    (fun (c, seed) ->
      let rng = Random.State.make [| seed; 0xf011 |] in
      let full = Ssta.Fullssta.run c in
      let ok = ref true in
      for _step = 1 to 3 do
        let resized = random_resizes rng c ~moves:(1 + Random.State.int rng 3) in
        ignore (Ssta.Fullssta.update full ~resized);
        let fresh = Ssta.Fullssta.run c in
        List.iter
          (fun id ->
            let m = Ssta.Fullssta.moments full id
            and m' = Ssta.Fullssta.moments fresh id in
            if
              not
                (m.Numerics.Clark.mean = m'.Numerics.Clark.mean
                && m.Numerics.Clark.var = m'.Numerics.Clark.var)
            then ok := false;
            if
              not
                (pdf_points_close (Ssta.Fullssta.pdf full id)
                   (Ssta.Fullssta.pdf fresh id))
            then ok := false)
          (Netlist.Circuit.topological c)
      done;
      !ok)

(* Divergence injection: an honest update passes the paranoid cross-check; a
   lying dirty set (the gate changed but [resized] omits it, so the shared
   electrical state goes stale) must raise the STAT005 diagnostic. *)
let alt_size circuit g =
  let current = Netlist.Circuit.cell_exn circuit g in
  let sizes = Cells.Library.sizes_of_fn lib (Cells.Cell.fn current) in
  match
    List.filter
      (fun c -> not (Cells.Cell.equal c current))
      (Array.to_list sizes)
  with
  | alt :: _ -> alt
  | [] -> Alcotest.fail "library has a single size for a tiny-circuit gate"

let test_paranoid_divergence_fires () =
  let c = tiny_circuit () in
  let full = Ssta.Fullssta.run c in
  let g1, g2 =
    match Netlist.Circuit.gates c with
    | g1 :: g2 :: _ -> (g1, g2)
    | _ -> Alcotest.fail "tiny circuit lost its gates"
  in
  Netlist.Circuit.set_cell c g1 (alt_size c g1);
  ignore (Ssta.Fullssta.update ~paranoid:true full ~resized:[ g1 ]);
  Netlist.Circuit.set_cell c g2 (alt_size c g2);
  try
    ignore (Ssta.Fullssta.update ~paranoid:true full ~resized:[]);
    Alcotest.fail "paranoid mode accepted a stale electrical state"
  with Ssta.Fullssta.Divergence d ->
    Alcotest.(check string) "diagnostic code" "STAT005" d.Diag.code

(* The acceptance property in miniature: both sizer engines walk the same
   trajectory, so the final cell assignment and moments agree bit-for-bit. *)
let test_sizer_incremental_bitexact () =
  let run incremental =
    let c = Benchgen.Iscas_like.build_exn ~lib "alu2" in
    let _ = Core.Initial_sizing.apply ~lib c in
    let config = { Core.Sizer.default_config with Core.Sizer.incremental } in
    let r = Core.Sizer.optimize ~config ~lib c in
    ( List.map
        (fun g -> Cells.Cell.name (Netlist.Circuit.cell_exn c g))
        (Netlist.Circuit.gates c),
      r.Core.Sizer.final_moments )
  in
  let cells_s, m_s = run false in
  let cells_i, m_i = run true in
  check_true "final sizings identical" (cells_s = cells_i);
  check_true "final moments bit-equal"
    (m_s.Numerics.Clark.mean = m_i.Numerics.Clark.mean
    && m_s.Numerics.Clark.var = m_i.Numerics.Clark.var)

(* Paranoid mode across a whole sizing run: every per-iteration update is
   cross-checked against a scratch rebuild and none may diverge. *)
let test_sizer_paranoid_run_clean () =
  let c = Benchgen.Iscas_like.build_exn ~lib "alu1" in
  let _ = Core.Initial_sizing.apply ~lib c in
  let config =
    { Core.Sizer.default_config with Core.Sizer.incremental = true; paranoid = true }
  in
  let r = Core.Sizer.optimize ~config ~lib c in
  check_true "run completed" (r.Core.Sizer.total_resizes >= 0)

let () =
  Alcotest.run "incremental"
    [
      ( "equivalence",
        [
          prop_electrical_update_matches_compute;
          prop_fullssta_update_matches_run;
        ] );
      ( "paranoid",
        [
          Alcotest.test_case "divergence injection raises STAT005" `Quick
            test_paranoid_divergence_fires;
          Alcotest.test_case "paranoid sizing run stays clean" `Slow
            test_sizer_paranoid_run_clean;
        ] );
      ( "sizer",
        [
          Alcotest.test_case "scratch and incremental sizers agree bit-exactly"
            `Quick test_sizer_incremental_bitexact;
        ] );
    ]

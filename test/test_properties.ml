(* Cross-module properties checked on randomly generated circuits: every
   invariant here must hold for ANY well-formed mapped netlist, so the
   generator sweeps random profiles. *)

open Test_util

(* A small random circuit from a seeded profile. *)
let gen_circuit =
  QCheck.map
    (fun (seed, inputs, gates, depth) ->
      Benchgen.Random_dag.generate ~lib
        {
          Benchgen.Random_dag.profile_name = Printf.sprintf "prop%d" seed;
          inputs = 4 + inputs;
          outputs = 3;
          gates = 20 + gates;
          depth = 3 + depth;
          seed;
        })
    QCheck.(quad small_int (int_bound 10) (int_bound 60) (int_bound 8))

let prop_generated_circuits_are_valid =
  qcheck ~count:60 "generated circuits validate" gen_circuit (fun c ->
      Netlist.Circuit.validate c = [])

let prop_arrivals_dominate_fanins =
  qcheck ~count:40 "arrival >= fanin arrival + arc" gen_circuit (fun c ->
      let e = Sta.Electrical.compute c in
      let arrival = Sta.Analysis.arrivals c e in
      List.for_all
        (fun id ->
          let arcs = Sta.Electrical.arc_delays e id in
          Array.length arcs = 0
          || Array.for_all
               (fun ok -> ok)
               (Array.mapi
                  (fun k fi ->
                    arrival.(id) +. 1e-9 >= arrival.(fi) +. arcs.(k))
                  (Netlist.Circuit.fanins c id)))
        (Netlist.Circuit.topological c))

let prop_stat_mean_dominates_deterministic =
  qcheck ~count:30 "E[arrival] >= deterministic arrival" gen_circuit (fun c ->
      let e = Sta.Electrical.compute c in
      let det = Sta.Analysis.arrivals c e in
      let out = Array.make (Netlist.Circuit.size c) (moments ~mu:0.0 ~sigma:0.0) in
      Ssta.Fassta.propagate_into ~exact:true ~model:Variation.Model.default
        ~circuit:c ~electrical:e out;
      List.for_all
        (fun o -> out.(o).Numerics.Clark.mean >= det.(o) -. 1e-6)
        (Netlist.Circuit.outputs c))

let prop_fullssta_moments_finite_and_positive =
  qcheck ~count:30 "FULLSSTA moments are finite, sigma > 0 at gates" gen_circuit
    (fun c ->
      let full = Ssta.Fullssta.run c in
      List.for_all
        (fun id ->
          let m = Ssta.Fullssta.moments full id in
          Float.is_finite m.Numerics.Clark.mean
          && Float.is_finite m.Numerics.Clark.var
          && m.Numerics.Clark.var > 0.0)
        (Netlist.Circuit.gates c))

let prop_upsizing_never_changes_function =
  qcheck ~count:25 "uniform upsizing preserves function" gen_circuit (fun c ->
      let inputs = Netlist.Circuit.inputs c in
      let rng = Numerics.Rng.create ~seed:17 in
      let vectors =
        List.init 20 (fun _ ->
            List.map
              (fun id -> (Netlist.Circuit.node_name c id, Numerics.Rng.bool rng))
              inputs)
      in
      let before = List.map (fun v -> Netlist.Simulate.run c ~inputs:v) vectors in
      List.iter
        (fun id ->
          let cell = Netlist.Circuit.cell_exn c id in
          match Cells.Library.next_up lib cell with
          | Some up -> Netlist.Circuit.set_cell c id up
          | None -> ())
        (Netlist.Circuit.gates c);
      let after = List.map (fun v -> Netlist.Simulate.run c ~inputs:v) vectors in
      before = after)

let prop_upsizing_reduces_sigma =
  qcheck ~count:25 "uniform max-sizing reduces RV_O sigma" gen_circuit (fun c ->
      let s0 =
        Numerics.Clark.sigma
          (Ssta.Fullssta.output_moments (Ssta.Fullssta.run c))
      in
      List.iter
        (fun id ->
          let cell = Netlist.Circuit.cell_exn c id in
          Netlist.Circuit.set_cell c id
            (Cells.Library.max_cell lib ~fn:(Cells.Cell.fn cell)))
        (Netlist.Circuit.gates c);
      let s1 =
        Numerics.Clark.sigma
          (Ssta.Fullssta.output_moments (Ssta.Fullssta.run c))
      in
      s1 < s0)

let prop_bench_roundtrip_preserves_structure =
  qcheck ~count:25 ".bench roundtrip preserves structure" gen_circuit (fun c ->
      let c2 = Netlist.Bench_io.of_string ~lib (Netlist.Bench_io.to_string c) in
      Netlist.Circuit.gate_count c2 = Netlist.Circuit.gate_count c
      && List.length (Netlist.Circuit.inputs c2)
         = List.length (Netlist.Circuit.inputs c)
      && List.length (Netlist.Circuit.outputs c2)
         = List.length (Netlist.Circuit.outputs c))

let prop_copy_identical_timing =
  qcheck ~count:25 "copies time identically" gen_circuit (fun c ->
      let c2 = Netlist.Circuit.copy c in
      let a = Sta.Analysis.analyze c and b = Sta.Analysis.analyze c2 in
      Float.abs (Sta.Analysis.max_arrival a -. Sta.Analysis.max_arrival b) < 1e-9)

let prop_wnss_cone_nonempty_and_topological =
  qcheck ~count:20 "WNSS cone nonempty, sorted, within circuit" gen_circuit
    (fun c ->
      let full = Ssta.Fullssta.run c in
      let cone = Core.Wnss.critical_cone ~model:Variation.Model.default c full in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a < b && sorted rest
        | _ -> true
      in
      cone <> [] && sorted cone
      && List.for_all (fun id -> id >= 0 && id < Netlist.Circuit.size c) cone)

let prop_downstream_plus_arrival_bounds_delay =
  qcheck ~count:25 "arrival + downstream <= circuit delay (on some path)"
    gen_circuit (fun c ->
      let e = Sta.Electrical.compute c in
      let arrival = Sta.Analysis.arrivals c e in
      let down = Sta.Analysis.downstream_delays c e in
      let worst =
        List.fold_left
          (fun acc o -> Float.max acc arrival.(o))
          Float.neg_infinity (Netlist.Circuit.outputs c)
      in
      (* arrival(n) + downstream(n) is the longest path through n, which can
         never exceed the circuit delay *)
      List.for_all
        (fun id -> arrival.(id) +. down.(id) <= worst +. 1e-6)
        (Netlist.Circuit.topological c))

let prop_stat_slack_outputs_match_period =
  qcheck ~count:20 "output slack = period - arrival when unconstrained"
    gen_circuit (fun c ->
      let model = Variation.Model.default in
      let full = Ssta.Fullssta.run c in
      let period = 1000.0 in
      let sl = Ssta.Stat_slack.of_fullssta ~model ~period full c in
      List.for_all
        (fun o ->
          (* outputs that feed nothing else: slack = period − arrival *)
          Netlist.Circuit.fanouts c o <> []
          ||
          match Ssta.Stat_slack.slack sl o with
          | None -> false
          | Some s ->
              let m = Ssta.Fullssta.moments full o in
              Float.abs
                (s.Numerics.Clark.mean -. (period -. m.Numerics.Clark.mean))
              < 1e-6)
        (Netlist.Circuit.outputs c))

(* Statcheck's realization envelope claims: for ANY per-arc variation draw
   with |z| <= z_span, the node's arrival stays inside the envelope. Sample
   that claim with a seeded deterministic propagation using exactly the
   certifier's arc model (Fassta.arc_moments over the same electrical
   state), truncating each z at the span. *)
let prop_envelope_contains_truncated_samples =
  qcheck ~count:15 "sampled arrivals stay in statcheck envelope" gen_circuit
    (fun c ->
      let sc = Absint.Statcheck.run ~lib c in
      let cfg = Absint.Statcheck.config sc in
      let z_span = cfg.Absint.Statcheck.z_span in
      let input_arrival =
        cfg.Absint.Statcheck.electrical.Sta.Electrical.input_arrival
      in
      let e = Sta.Electrical.compute c in
      let model = Variation.Model.default in
      let rng = Numerics.Rng.create ~seed:7 in
      let order = Netlist.Circuit.topological c in
      let arrival = Array.make (Netlist.Circuit.size c) input_arrival in
      let ok = ref true in
      for _trial = 1 to 20 do
        List.iter
          (fun id ->
            if not (Netlist.Circuit.is_input c id) then begin
              let fanins = Netlist.Circuit.fanins c id in
              let best = ref Float.neg_infinity in
              Array.iteri
                (fun k fi ->
                  let m = Ssta.Fassta.arc_moments model c e id k in
                  let z =
                    Float.max (-.z_span)
                      (Float.min z_span (Numerics.Rng.gaussian rng))
                  in
                  let d =
                    m.Numerics.Clark.mean +. (z *. Numerics.Clark.sigma m)
                  in
                  best := Float.max !best (arrival.(fi) +. d))
                fanins;
              arrival.(id) <- !best;
              if
                not
                  (Numerics.Interval.contains ~tol:1e-6
                     (Absint.Statcheck.envelope sc id)
                     !best)
              then ok := false
            end)
          order
      done;
      !ok)

let prop_criticality_bounded =
  qcheck ~count:15 "criticality within [0,1]" gen_circuit (fun c ->
      let crit = Core.Criticality.compute c in
      List.for_all
        (fun id ->
          let v = Core.Criticality.criticality crit id in
          v >= -.1e-9 && v <= 1.0 +. 1e-6)
        (Netlist.Circuit.topological c))

let () =
  Alcotest.run "properties"
    [
      ( "random-circuit invariants",
        [
          prop_generated_circuits_are_valid;
          prop_arrivals_dominate_fanins;
          prop_stat_mean_dominates_deterministic;
          prop_fullssta_moments_finite_and_positive;
          prop_upsizing_never_changes_function;
          prop_upsizing_reduces_sigma;
          prop_bench_roundtrip_preserves_structure;
          prop_copy_identical_timing;
          prop_wnss_cone_nonempty_and_topological;
          prop_downstream_plus_arrival_bounds_delay;
          prop_stat_slack_outputs_match_period;
          prop_envelope_contains_truncated_samples;
          prop_criticality_bounded;
        ] );
    ]

(* statobs (lib/obs): deterministic counters, span tracing, the disabled-path
   contract, and Domain-safety of the atomic counters. *)

open Test_util

(* Test-local counters, registered once at module load like production
   call sites do. *)
let c_test = Obs.Counters.make "test.obs.bump"
let c_domains = Obs.Counters.make "test.obs.domains"

(* Every test must leave the sink disabled and empty — the rest of the
   suite (and the bench) assumes a quiet default. *)
let scoped f =
  Obs.Sink.reset ();
  Obs.Sink.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Sink.disable ();
      Obs.Sink.reset ())
    f

(* The fixed workload of the determinism test: analysis of c432, same spirit
   as the CI-gated bench section. *)
let workload () =
  let c = Benchgen.Iscas_like.build_exn ~lib "c432" in
  let _ = Core.Initial_sizing.apply ~lib c in
  let full = Ssta.Fullssta.run c in
  ignore (Ssta.Fullssta.output_moments full);
  let moments = Ssta.Fassta.run c in
  ignore (Ssta.Fassta.output_moments c moments)

let test_counters_deterministic () =
  let run () =
    Obs.Sink.reset ();
    Obs.Sink.enable ();
    workload ();
    Obs.Sink.disable ();
    Obs.Counters.dump ()
  in
  let first = run () in
  let second = run () in
  Obs.Sink.reset ();
  check_true "some counter fired" (List.exists (fun (_, v) -> v > 0) first);
  Alcotest.(check (list (pair string int)))
    "two identical runs produce identical counter dumps" first second

let test_disabled_counters_stay_zero () =
  Obs.Sink.reset ();
  check_true "sink disabled by default" (not (Obs.Sink.enabled ()));
  for _ = 1 to 1000 do
    Obs.Counters.bump c_test;
    Obs.Counters.add c_test 5
  done;
  check_int "disabled bumps record nothing" 0 (Obs.Counters.read c_test)

let test_disabled_path_allocates_nothing () =
  Obs.Sink.reset ();
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Obs.Counters.bump c_test
  done;
  let delta = Gc.minor_words () -. before in
  (* the loop itself allocates nothing; leave slack for the Gc probe *)
  check_true
    (Printf.sprintf "100k disabled bumps allocate ~nothing (%.0f words)" delta)
    (delta < 256.0)

let test_span_nesting_and_balance () =
  scoped (fun () ->
      Obs.Span.with_ "outer" (fun () ->
          Obs.Span.with_ "inner" (fun () -> check_int "depth" 2 (Obs.Span.depth ())));
      check_int "depth restored" 0 (Obs.Span.depth ());
      let events = Obs.Span.events () in
      check_int "four events" 4 (List.length events);
      (* balanced B/E per tid, and timestamps non-decreasing *)
      let stack = Hashtbl.create 4 in
      let last = ref neg_infinity in
      List.iter
        (fun (e : Obs.Span.event) ->
          check_true "monotonic ts" (e.ts_us >= !last);
          last := e.ts_us;
          let s = try Hashtbl.find stack e.tid with Not_found -> [] in
          if e.enter then Hashtbl.replace stack e.tid (e.name :: s)
          else
            match s with
            | top :: rest when String.equal top e.name ->
                Hashtbl.replace stack e.tid rest
            | _ -> Alcotest.failf "unbalanced end event %s" e.name)
        events;
      Hashtbl.iter
        (fun _ s -> check_true "all spans closed" (s = []))
        stack)

let test_span_exception_safety () =
  scoped (fun () ->
      (try
         Obs.Span.with_ "outer" (fun () ->
             Obs.Span.with_ "inner" (fun () -> failwith "boom"))
       with Failure _ -> ());
      check_int "depth restored after exception" 0 (Obs.Span.depth ());
      let events = Obs.Span.events () in
      check_int "all four events recorded" 4 (List.length events);
      let enters = List.filter (fun (e : Obs.Span.event) -> e.enter) events in
      check_int "balanced" (List.length events) (2 * List.length enters))

let test_exports_parse () =
  scoped (fun () ->
      Obs.Counters.bump c_test;
      Obs.Span.with_ "export.span" (fun () -> ());
      let metrics = Obs.Sink.metrics_json () in
      let trace = Obs.Sink.trace_json () in
      (match Obs.Json.parse_result metrics with
      | Error (msg, at) -> Alcotest.failf "metrics JSON bad at %d: %s" at msg
      | Ok v -> (
          check_true "schema tag"
            (Obs.Json.member "schema" v = Some (Obs.Json.Str "statobs/1"));
          match Obs.Json.member "counters" v with
          | Some (Obs.Json.Obj kvs) ->
              check_true "test counter exported"
                (List.assoc_opt "test.obs.bump" kvs = Some (Obs.Json.Num 1.0))
          | _ -> Alcotest.fail "no counters object"));
      match Obs.Json.parse_result trace with
      | Error (msg, at) -> Alcotest.failf "trace JSON bad at %d: %s" at msg
      | Ok v -> (
          match Obs.Json.member "traceEvents" v with
          | Some (Obs.Json.Arr evs) ->
              check_int "B and E" 2 (List.length evs);
              List.iter
                (fun e ->
                  check_true "has ph" (Obs.Json.member "ph" e <> None);
                  check_true "has ts" (Obs.Json.member "ts" e <> None))
                evs
          | _ -> Alcotest.fail "no traceEvents array"))

(* Multi-domain exactness. On a 1-core box the scheduler gives no real
   parallelism, so the race these tests pin down cannot be exercised —
   note it and pass rather than fail. *)
let multicore () = Domain.recommended_domain_count () > 1

let test_counters_domain_safe () =
  if not (multicore ()) then
    prerr_endline "test_obs: single core, domain hammer not exercised"
  else
    scoped (fun () ->
        let per_domain = 100_000 in
        let hammer () =
          for _ = 1 to per_domain do
            Obs.Counters.bump c_domains
          done
        in
        let domains = List.init 4 (fun _ -> Domain.spawn hammer) in
        List.iter Domain.join domains;
        check_int "4 x 100k bumps, exact" (4 * per_domain)
          (Obs.Counters.read c_domains))

let test_lut_oob_domain_safe () =
  (* Sequential exactness always runs... *)
  let lut =
    Numerics.Lut.create ~rows:[| 0.0; 1.0 |] ~cols:[| 0.0; 1.0 |]
      ~values:[| [| 0.0; 1.0 |]; [| 1.0; 2.0 |] |]
  in
  for _ = 1 to 10 do
    ignore (Numerics.Lut.query lut ~row:5.0 ~col:5.0)
  done;
  check_int "sequential oob count exact" 10 (Numerics.Lut.oob_count lut);
  Numerics.Lut.reset_oob lut;
  check_int "reset" 0 (Numerics.Lut.oob_count lut);
  (* ...the concurrent hammer only where there is real parallelism. *)
  if not (multicore ()) then
    prerr_endline "test_obs: single core, LUT oob hammer not exercised"
  else begin
    let per_domain = 50_000 in
    let hammer () =
      for _ = 1 to per_domain do
        ignore (Numerics.Lut.query lut ~row:9.0 ~col:9.0)
      done
    in
    let domains = List.init 4 (fun _ -> Domain.spawn hammer) in
    List.iter Domain.join domains;
    check_int "4 domains x 50k oob queries, exact" (4 * per_domain)
      (Numerics.Lut.oob_count lut)
  end

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "deterministic across runs" `Slow
            test_counters_deterministic;
          Alcotest.test_case "disabled counters stay zero" `Quick
            test_disabled_counters_stay_zero;
          Alcotest.test_case "disabled path allocates nothing" `Quick
            test_disabled_path_allocates_nothing;
          Alcotest.test_case "domain-safe totals" `Quick
            test_counters_domain_safe;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and balance" `Quick
            test_span_nesting_and_balance;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "exports parse" `Quick test_exports_parse;
        ] );
      ( "lut",
        [
          Alcotest.test_case "oob counter domain-safe" `Quick
            test_lut_oob_domain_safe;
        ] );
    ]

(* Abstract-interpretation certifier tests: interval arithmetic, the
   certified Clark error constants, statcheck containment on real suites,
   dominance analysis, and the sizer's prune-equivalence guarantee. *)

open Test_util
module I = Numerics.Interval
module D = Absint.Domain

(* ---- Interval ----------------------------------------------------------- *)

let interval_basics () =
  let a = I.v 1.0 2.0 and b = I.v (-0.5) 0.5 in
  check_true "contains" (I.contains a 1.5);
  check_true "lo excluded" (not (I.contains a 0.99));
  close ~tol:0.0 "width" 1.0 (I.width a);
  let s = I.add a b in
  check_true "add lo" (I.lo s <= 0.5);
  check_true "add hi" (I.hi s >= 2.5);
  let m = I.max2 a b in
  close ~tol:0.0 "max2 lo" 1.0 (I.lo m);
  close ~tol:0.0 "max2 hi" 2.0 (I.hi m)

let interval_outward_rounding () =
  (* 0.1 + 0.2 is not representable: the sum interval must still contain
     the real value 0.3, strictly between the rounded endpoints. *)
  let s = I.add (I.point 0.1) (I.point 0.2) in
  check_true "0.3 inside" (I.lo s <= 0.3 && 0.3 <= I.hi s);
  check_true "not a point" (I.width s > 0.0);
  let q = I.sq (I.v (-2.0) 3.0) in
  check_true "sq straddling zero" (I.lo q = 0.0 && I.hi q >= 9.0);
  let r = I.sqrt_ (I.v 2.0 2.0) in
  check_true "sqrt encloses" (I.lo r *. I.lo r <= 2.0 && 2.0 <= I.hi r *. I.hi r)

let interval_rejects_nan_or_reversed () =
  check_true "reversed rejected"
    (try ignore (I.v 2.0 1.0); false with Invalid_argument _ -> true);
  check_true "nan rejected"
    (try ignore (I.v Float.nan 1.0); false with Invalid_argument _ -> true)

(* ---- Budget constants --------------------------------------------------- *)

let budget_constants_sane () =
  let open Absint.Budget in
  check_true "eps_phi positive" (eps_phi > 0.0);
  check_true "eps_phi small" (eps_phi < 0.01);
  check_true "cutoff mean < blend mean" (k_cutoff_mean < k_blend_mean);
  check_true "cutoff var < blend var" (k_cutoff_var < k_blend_var);
  close ~tol:0.0 "k_mean is the max" (Float.max k_cutoff_mean k_blend_mean) k_mean;
  close ~tol:0.0 "k_var is the max" (Float.max k_cutoff_var k_blend_var) k_var;
  close ~tol:1e-12 "mean_step scales with spread"
    (2.0 *. mean_step ~certain_cutoff:false ~spread_hi:1.0)
    (mean_step ~certain_cutoff:false ~spread_hi:2.0);
  close ~tol:1e-12 "var_step scales with spread^2"
    (4.0 *. var_step ~certain_cutoff:true ~spread_hi:1.0)
    (var_step ~certain_cutoff:true ~spread_hi:2.0)

(* The constants certify |fast - exact| one-step deviations: verify against
   the concrete engines over a random moment grid. *)
let budget_bounds_fast_vs_exact =
  qcheck ~count:500 "one-step |fast-exact| within certified constants"
    QCheck.(
      quad (float_range (-50.0) 50.0) (float_range (-50.0) 50.0)
        (float_range 0.01 30.0) (float_range 0.01 30.0))
    (fun (ma, mb, sa, sb) ->
      let a = moments ~mu:ma ~sigma:sa and b = moments ~mu:mb ~sigma:sb in
      let sp = Numerics.Clark.spread a b in
      let f = Numerics.Clark.max_fast a b in
      let e = Numerics.Clark.max_exact a b in
      Float.abs (f.Numerics.Clark.mean -. e.Numerics.Clark.mean)
      <= (Absint.Budget.k_mean *. sp) +. 1e-9
      && Float.abs (f.Numerics.Clark.var -. e.Numerics.Clark.var)
         <= (Absint.Budget.k_var *. sp *. sp) +. 1e-9)

(* Clark's exact max of independent normals never exceeds the larger input
   variance (DESIGN.md §9.2's identity Var = vA + (vB-vA)Φ(-α) + gap·e1 -
   e1² ≤ max(vA,vB)) — the Clark-mode variance bound rests on this. *)
let clark_variance_identity =
  qcheck ~count:500 "Var(max_exact) <= max input variance"
    QCheck.(
      quad (float_range (-50.0) 50.0) (float_range (-50.0) 50.0)
        (float_range 0.01 30.0) (float_range 0.01 30.0))
    (fun (ma, mb, sa, sb) ->
      let a = moments ~mu:ma ~sigma:sa and b = moments ~mu:mb ~sigma:sb in
      let e = Numerics.Clark.max_exact a b in
      e.Numerics.Clark.var
      <= Float.max a.Numerics.Clark.var b.Numerics.Clark.var +. 1e-9
      && e.Numerics.Clark.mean
         >= Float.max a.Numerics.Clark.mean b.Numerics.Clark.mean -. 1e-9)

(* ---- Domain transfer ---------------------------------------------------- *)

let domain_max_encloses_engines =
  qcheck ~count:300 "abstract max encloses fast and exact results"
    QCheck.(
      quad (float_range (-20.0) 20.0) (float_range (-20.0) 20.0)
        (float_range 0.1 10.0) (float_range 0.1 10.0))
    (fun (ma, mb, sa, sb) ->
      let a = moments ~mu:ma ~sigma:sa and b = moments ~mu:mb ~sigma:sb in
      let av = D.exact a and bv = D.exact b in
      let r = D.max2 D.Clark_normal av bv in
      let f = Numerics.Clark.max_fast a b in
      let e = Numerics.Clark.max_exact a b in
      I.contains ~tol:1e-9 r.D.mean f.Numerics.Clark.mean
      && I.contains ~tol:1e-9 r.D.mean e.Numerics.Clark.mean
      && f.Numerics.Clark.var <= I.hi r.D.var +. 1e-9
      && e.Numerics.Clark.var <= I.hi r.D.var +. 1e-9)

let domain_max_list_empty_rejected () =
  check_true "max_list [] rejected"
    (try ignore (D.max_list D.Clark_normal []); false
     with Invalid_argument _ -> true)

(* ---- Statcheck containment on real suites ------------------------------- *)

let suite_names = [ "c432"; "c880"; "c1908" ]

let exact_moments c =
  let electrical = Sta.Electrical.compute c in
  let scratch =
    Array.make (Netlist.Circuit.size c)
      (Numerics.Clark.moments ~mean:0.0 ~var:0.0)
  in
  Ssta.Fassta.propagate_into ~exact:true ~model:Variation.Model.default
    ~circuit:c ~electrical scratch;
  scratch

let containment_on name () =
  let c = Benchgen.Iscas_like.build_exn ~lib name in
  ignore (Core.Initial_sizing.apply ~lib c);
  let sc = Absint.Statcheck.run ~lib c in
  let scd =
    Absint.Statcheck.run
      ~config:
        {
          Absint.Statcheck.default_config with
          semantics = D.Distribution_free;
        }
      ~lib c
  in
  let full = Ssta.Fullssta.run c in
  let fast = Ssta.Fassta.run c in
  let exact = exact_moments c in
  let fail_on what = function
    | [] -> ()
    | d :: _ -> Alcotest.failf "%s/%s: %a" name what Diag.pp d
  in
  fail_on "fullssta" (Lint.Absint_rules.check_fullssta scd (Ssta.Fullssta.moments full));
  fail_on "fassta fast"
    (Lint.Absint_rules.check_fassta ~engine:`Fast sc (fun id -> fast.(id)));
  fail_on "fassta exact"
    (Lint.Absint_rules.check_fassta ~engine:`Exact sc (fun id -> exact.(id)));
  fail_on "budget"
    (Lint.Absint_rules.check_budget sc
       ~fast:(fun id -> fast.(id))
       ~exact:(fun id -> exact.(id)))

(* All-sizings enclosures hull the whole drive ladder, so the current-sizing
   engines must land inside them too. *)
let all_sizings_superset () =
  let c = Benchgen.Iscas_like.build_exn ~lib "c432" in
  ignore (Core.Initial_sizing.apply ~lib c);
  let sc =
    Absint.Statcheck.run
      ~config:
        { Absint.Statcheck.default_config with scope = Absint.Statcheck.All_sizings }
      ~lib c
  in
  let fast = Ssta.Fassta.run c in
  (match Lint.Absint_rules.check_fassta ~engine:`Fast sc (fun id -> fast.(id)) with
  | [] -> ()
  | d :: _ -> Alcotest.failf "all-sizings: %a" Diag.pp d);
  (* and strictly wider than the current-sizing run somewhere *)
  let tight = Absint.Statcheck.run ~lib c in
  let wider = ref false in
  Netlist.Circuit.iter_nodes c ~f:(fun id ->
      if
        I.width (Absint.Statcheck.mean_interval sc id)
        > I.width (Absint.Statcheck.mean_interval tight id) +. 1e-9
      then wider := true);
  check_true "ladder hull is wider somewhere" !wider

let statcheck_rv_and_budget () =
  let c = Benchgen.Iscas_like.build_exn ~lib "c880" in
  ignore (Core.Initial_sizing.apply ~lib c);
  let sc = Absint.Statcheck.run ~lib c in
  let rv = Absint.Statcheck.rv_state sc in
  let full = Ssta.Fullssta.run c in
  let m = Ssta.Fullssta.output_moments full in
  (* RV_O's certified interval is a Clark-mode enclosure; FULLSSTA's RV_O
     mean tracks the exact-Clark one loosely, but the interval must at least
     bracket the per-output FASSTA fold it certifies. *)
  let fast = Ssta.Fassta.run c in
  let fm = Ssta.Fassta.output_moments c fast in
  check_true "rv interval contains FASSTA RV_O"
    (I.contains ~tol:1e-6 rv.D.mean fm.Numerics.Clark.mean);
  check_true "rv hi above FULLSSTA mean"
    (I.hi rv.D.mean +. 1.0 >= m.Numerics.Clark.mean);
  check_true "budget positive" (Absint.Statcheck.output_budget sc > 0.0);
  check_true "pp_summary prints"
    (String.length (Fmt.str "%a" Absint.Statcheck.pp_summary sc) > 0)

(* ---- Dominance ---------------------------------------------------------- *)

let dominance_on_lopsided () =
  let c = Benchgen.Lopsided.generate ~lib () in
  ignore (Core.Initial_sizing.apply ~lib c);
  let sc = Absint.Statcheck.run ~lib c in
  let dom = Absint.Dominance.compute sc in
  check_true "some output dominated"
    (List.length (Absint.Dominance.dominated_outputs dom) > 0);
  check_true "some gates skippable" (Absint.Dominance.skip_count dom > 0);
  check_true "live gates remain" (Absint.Dominance.live_count dom > 0);
  (* skip set and live set are disjoint; every skippable gate is a gate *)
  List.iter
    (fun id ->
      if Absint.Dominance.skip dom id then
        check_true "skippable is a gate"
          (not (Netlist.Circuit.is_input c id)))
    (Netlist.Circuit.topological c)

let dominance_never_skips_everything () =
  List.iter
    (fun name ->
      let c = Benchgen.Iscas_like.build_exn ~lib name in
      ignore (Core.Initial_sizing.apply ~lib c);
      let sc = Absint.Statcheck.run ~lib c in
      let dom = Absint.Dominance.compute sc in
      check_true (name ^ ": live gates remain")
        (Absint.Dominance.live_count dom > 0);
      check_true (name ^ ": at least one kept output")
        (List.length (Absint.Dominance.dominated_outputs dom)
        < List.length (Netlist.Circuit.outputs c)))
    [ "c432"; "c880" ]

let wnss_skip_filters_roots () =
  let c = Benchgen.Lopsided.generate ~lib () in
  ignore (Core.Initial_sizing.apply ~lib c);
  let sc = Absint.Statcheck.run ~lib c in
  let dom = Absint.Dominance.compute sc in
  let full = Ssta.Fullssta.run c in
  let model = Variation.Model.default in
  let dominated = Absint.Dominance.dominated_outputs dom in
  let skip id = List.mem id dominated in
  let path = Core.Wnss.trace ~skip ~model c full in
  (match path with
  | [] -> Alcotest.fail "empty WNSS path"
  | root :: _ -> check_true "root not dominated" (not (skip root)));
  (* a predicate that rejects everything falls back to the full root set *)
  let path_all = Core.Wnss.trace ~skip:(fun _ -> true) ~model c full in
  let path_none = Core.Wnss.trace ~model c full in
  check_true "total skip falls back" (path_all = path_none)

(* ---- Sizer prune equivalence -------------------------------------------- *)

let prune_equivalence () =
  let config =
    {
      Core.Sizer.default_config with
      Core.Sizer.path_source = Core.Sizer.All_output_paths;
    }
  in
  let final_cells c =
    List.map
      (fun id -> (id, Cells.Cell.name (Netlist.Circuit.cell_exn c id)))
      (Netlist.Circuit.gates c)
  in
  let run ~prune =
    let c = Benchgen.Lopsided.generate ~lib () in
    ignore (Core.Initial_sizing.apply ~lib c);
    let r = Core.Sizer.optimize ~prune ~config ~lib c in
    (final_cells c, r)
  in
  let cells0, r0 = run ~prune:false in
  let cells1, r1 = run ~prune:true in
  check_true "identical final sizing" (cells0 = cells1);
  check_int "unpruned skips nothing" 0 r0.Core.Sizer.windows_skipped;
  check_true "pruned run skipped windows" (r1.Core.Sizer.windows_skipped > 0);
  check_true "strictly fewer windows evaluated"
    (r1.Core.Sizer.windows_evaluated < r0.Core.Sizer.windows_evaluated);
  close ~tol:1e-9 "same final mean" r0.Core.Sizer.final_moments.Numerics.Clark.mean
    r1.Core.Sizer.final_moments.Numerics.Clark.mean;
  close ~tol:1e-9 "same final sigma"
    (Numerics.Clark.sigma r0.Core.Sizer.final_moments)
    (Numerics.Clark.sigma r1.Core.Sizer.final_moments)

(* ---- Lopsided generator ------------------------------------------------- *)

let lopsided_is_valid () =
  let c = Benchgen.Lopsided.generate ~lib () in
  check_true "validates" (Netlist.Circuit.validate c = []);
  check_int "three outputs" 3 (List.length (Netlist.Circuit.outputs c));
  check_true "bad params rejected"
    (try ignore (Benchgen.Lopsided.generate ~depth:2 ~lib ()); false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "absint"
    [
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick interval_basics;
          Alcotest.test_case "outward rounding" `Quick interval_outward_rounding;
          Alcotest.test_case "validation" `Quick interval_rejects_nan_or_reversed;
        ] );
      ( "budget",
        [
          Alcotest.test_case "constants sane" `Quick budget_constants_sane;
          budget_bounds_fast_vs_exact;
          clark_variance_identity;
        ] );
      ( "domain",
        [
          domain_max_encloses_engines;
          Alcotest.test_case "empty max rejected" `Quick
            domain_max_list_empty_rejected;
        ] );
      ( "statcheck",
        List.map
          (fun name ->
            Alcotest.test_case ("containment " ^ name) `Quick (containment_on name))
          suite_names
        @ [
            Alcotest.test_case "all-sizings superset" `Quick all_sizings_superset;
            Alcotest.test_case "rv and budget" `Quick statcheck_rv_and_budget;
          ] );
      ( "dominance",
        [
          Alcotest.test_case "lopsided prunes" `Quick dominance_on_lopsided;
          Alcotest.test_case "suites keep live gates" `Quick
            dominance_never_skips_everything;
          Alcotest.test_case "wnss root skip" `Quick wnss_skip_filters_roots;
        ] );
      ( "prune",
        [
          Alcotest.test_case "equivalence on lopsided" `Quick prune_equivalence;
          Alcotest.test_case "lopsided generator" `Quick lopsided_is_valid;
        ] );
    ]

(* statserve: protocol units, cache/pool behavior, job determinism, and the
   daemon robustness contract (malformed lines, oversized batches, mid-job
   disconnects, cache-hash collisions all come back as typed serve/1 errors
   instead of killing the daemon). *)

open Test_util

module P = Serve.Protocol

let parse_ok line =
  match P.parse_line line with
  | Ok p -> p
  | Error (_, e) ->
      Alcotest.failf "parse_line %S: unexpected error %s: %s" line
        (P.code_string e.P.code) e.P.message

let parse_err line =
  match P.parse_line line with
  | Ok _ -> Alcotest.failf "parse_line %S: unexpected success" line
  | Error (id, e) -> (id, e)

(* ---- protocol ---------------------------------------------------------- *)

let test_parse_ping () =
  match parse_ok {|{"serve":1,"id":7,"op":"ping"}|} with
  | P.Single { id = Obs.Json.Num 7.0; job = P.Ping } -> ()
  | _ -> Alcotest.fail "expected Single ping with id 7"

let test_parse_optimize_defaults () =
  match parse_ok {|{"serve":1,"id":"a","op":"optimize","circuit":"alu1"}|} with
  | P.Single
      {
        job =
          P.Optimize
            {
              source = P.Suite "alu1";
              alpha;
              domains = 0;
              max_iterations = None;
              return_cells = false;
              _;
            };
        _;
      } ->
      close "default alpha" 3.0 alpha
  | _ -> Alcotest.fail "expected optimize with defaults"

let test_parse_errors () =
  let check_code what expected line =
    let _, e = parse_err line in
    Alcotest.(check string) what expected (P.code_string e.P.code)
  in
  check_code "not json" "parse_error" "{nope";
  check_code "not serve/1" "parse_error" {|{"id":1,"op":"ping"}|};
  check_code "missing op" "bad_request" {|{"serve":1,"id":1}|};
  check_code "unknown op" "unknown_op" {|{"serve":1,"id":1,"op":"frobnicate"}|};
  check_code "bad alpha" "bad_request"
    {|{"serve":1,"id":1,"op":"optimize","circuit":"alu1","alpha":"three"}|};
  check_code "two sources" "bad_request"
    {|{"serve":1,"id":1,"op":"info","circuit":"alu1","bench":"..."}|};
  check_code "nested batch" "bad_request"
    {|{"serve":1,"id":1,"op":"batch","jobs":[{"op":"batch","jobs":[]}]}|};
  (* the id must survive the error for response correlation *)
  let id, _ = parse_err {|{"serve":1,"id":42,"op":"frobnicate"}|} in
  check_true "id recovered" (id = Obs.Json.Num 42.0)

let test_render_response () =
  let ok =
    P.render_response
      {
        P.id = Obs.Json.Num 1.0;
        body = Ok (Obs.Json.Obj [ ("pong", Obs.Json.Bool true) ]);
      }
  in
  Alcotest.(check string)
    "ok line" {|{"serve":1,"id":1,"ok":true,"result":{"pong":true}}|} ok;
  let err =
    P.render_response
      {
        P.id = Obs.Json.Str "x";
        body = Error (P.err P.Unknown_op "no such op %S" "zap");
      }
  in
  check_true "single line" (not (String.contains err '\n'));
  let json = Obs.Json.parse_exn err in
  check_true "ok false" (Obs.Json.member "ok" json = Some (Obs.Json.Bool false));
  (match Obs.Json.member "error" json with
  | Some e ->
      check_true "code"
        (Obs.Json.member "code" e = Some (Obs.Json.Str "unknown_op"))
  | None -> Alcotest.fail "no error member");
  (* escaping: a string result with quotes/newlines must stay one line *)
  let tricky =
    P.render_response
      {
        P.id = Obs.Json.Null;
        body = Ok (Obs.Json.Obj [ ("s", Obs.Json.Str "a\"b\nc\\d") ]);
      }
  in
  check_true "escaped single line" (not (String.contains tricky '\n'));
  match Obs.Json.member "result" (Obs.Json.parse_exn tricky) with
  | Some r ->
      check_true "roundtrip"
        (Obs.Json.member "s" r = Some (Obs.Json.Str "a\"b\nc\\d"))
  | None -> Alcotest.fail "no result member"

(* ---- cache ------------------------------------------------------------- *)

let test_cache_hit_miss () =
  let cache = Serve.Cache.create () in
  let builds = ref 0 in
  let build () = incr builds; String.length "payload" in
  (match Serve.Cache.find_or_build cache ~content:"payload" ~build with
  | Serve.Cache.Miss 7 -> ()
  | _ -> Alcotest.fail "expected Miss 7");
  (match Serve.Cache.find_or_build cache ~content:"payload" ~build with
  | Serve.Cache.Hit 7 -> ()
  | _ -> Alcotest.fail "expected Hit 7");
  check_int "built once" 1 !builds;
  check_int "one entry" 1 (Serve.Cache.length cache)

let test_cache_collision () =
  (* a constant hash makes every distinct content collide *)
  let cache = Serve.Cache.create ~hash:(fun _ -> "same") () in
  (match Serve.Cache.find_or_build cache ~content:"a" ~build:(fun () -> 1) with
  | Serve.Cache.Miss 1 -> ()
  | _ -> Alcotest.fail "expected Miss 1");
  match Serve.Cache.find_or_build cache ~content:"b" ~build:(fun () -> 2) with
  | Serve.Cache.Collision _ -> ()
  | _ -> Alcotest.fail "expected Collision"

let test_cache_build_raises () =
  let cache = Serve.Cache.create () in
  (try
     ignore
       (Serve.Cache.find_or_build cache ~content:"x" ~build:(fun () ->
            failwith "boom"))
   with Failure _ -> ());
  check_int "nothing cached" 0 (Serve.Cache.length cache);
  match Serve.Cache.find_or_build cache ~content:"x" ~build:(fun () -> 9) with
  | Serve.Cache.Miss 9 -> ()
  | _ -> Alcotest.fail "expected Miss after failed build"

(* ---- pool -------------------------------------------------------------- *)

let test_pool_order () =
  let tasks = List.init 23 (fun i () -> i * i) in
  let expect = List.init 23 (fun i -> i * i) in
  Alcotest.(check (list int)) "inline" expect (Serve.Pool.map ~domains:1 tasks);
  Alcotest.(check (list int)) "4 lanes" expect (Serve.Pool.map ~domains:4 tasks);
  Alcotest.(check (list int)) "more lanes than tasks" [ 1; 2 ]
    (Serve.Pool.map ~domains:8 [ (fun () -> 1); (fun () -> 2) ]);
  Alcotest.(check (list int)) "empty" [] (Serve.Pool.map ~domains:4 [])

(* ---- jobs -------------------------------------------------------------- *)

let run_job ?hash job =
  let env = Serve.Jobs.create_env ?hash () in
  Serve.Jobs.run env job

let job_err what expected result =
  match result with
  | Ok _ -> Alcotest.failf "%s: unexpected success" what
  | Error e ->
      Alcotest.(check string) what expected (P.code_string e.P.code)

let test_job_unknown_circuit () =
  job_err "bad suite name" "unknown_circuit"
    (run_job
       (P.Info { source = P.Suite "nope"; library = P.default_libspec }));
  job_err "bad bench text" "unknown_circuit"
    (run_job
       (P.Info { source = P.Bench "not a bench file"; library = P.default_libspec }))

let test_job_cache_collision () =
  (* constant hash: the second distinct circuit collides in the netlist
     cache and must surface as a typed error, not a wrong answer *)
  let env = Serve.Jobs.create_env ~hash:(fun _ -> "same") () in
  let info name =
    Serve.Jobs.run env
      (P.Info { source = P.Suite name; library = P.default_libspec })
  in
  (match info "alu1" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first job failed: %s" e.P.message);
  job_err "collision" "cache_collision" (info "alu2")

let optimize_digest env domains =
  match
    Serve.Jobs.run env
      (P.Optimize
         {
           source = P.Suite "alu1";
           library = P.default_libspec;
           alpha = 3.0;
           domains;
           max_iterations = Some 3;
           return_cells = false;
         })
  with
  | Error e -> Alcotest.failf "optimize d%d: %s" domains e.P.message
  | Ok result -> (
      match Obs.Json.member "sizing_digest" result with
      | Some (Obs.Json.Str d) -> d
      | _ -> Alcotest.fail "no sizing_digest")

(* The work-conservation counter set: identical for every domain count by
   construction (the chunked evaluate/commit rounds are domain-count
   independent). Counters that track physical workers (window.commit.visits
   via replica resyncs, fullssta.* via replica construction, memo/lut
   per-engine caches, parwin.windows.laneN distribution) are excluded —
   see DESIGN.md §15. *)
let conservation_counters =
  [
    "sizer.iterations";
    "sizer.windows.evaluated";
    "sizer.windows.skipped";
    "sizer.moves.committed";
    "window.trial.visits";
    "window.trial.cell_evals";
    "parwin.rounds";
    "parwin.windows.evaluated";
    "parwin.windows.discarded";
  ]

let counters_snapshot () =
  let dump = Obs.Counters.dump () in
  List.map
    (fun name -> (name, Option.value ~default:0 (List.assoc_opt name dump)))
    conservation_counters

let test_job_determinism () =
  let env = Serve.Jobs.create_env () in
  let with_counters f =
    Obs.Sink.reset ();
    Obs.Sink.enable ();
    Fun.protect ~finally:Obs.Sink.disable (fun () ->
        let r = f () in
        (r, counters_snapshot ()))
  in
  let d0, _ = with_counters (fun () -> optimize_digest env 0) in
  let d1, c1 = with_counters (fun () -> optimize_digest env 1) in
  let d4, c4 = with_counters (fun () -> optimize_digest env 4) in
  Alcotest.(check string) "serial = domains 1" d0 d1;
  Alcotest.(check string) "serial = domains 4" d0 d4;
  List.iter2
    (fun (name, v1) (_, v4) ->
      Alcotest.(check int) ("conserved: " ^ name) v1 v4)
    c1 c4;
  Obs.Sink.reset ()

(* ---- daemon over a real socket ---------------------------------------- *)

let socket_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "statserve-test-%s-%d.sock" name (Unix.getpid ()))

(* Run a daemon in its own domain with a connection cap so the test always
   terminates, hand the socket to [f], then join. *)
let with_daemon ?hash ?(connections = 1) name f =
  let socket = socket_path name in
  let config =
    {
      (Serve.Daemon.default_config ~socket) with
      max_connections = Some connections;
      max_batch = 4;
      hash;
    }
  in
  let daemon = Domain.spawn (fun () -> Serve.Daemon.run config) in
  let rec wait tries =
    if Sys.file_exists socket then ()
    else if tries = 0 then Alcotest.fail "daemon socket never appeared"
    else begin
      Unix.sleepf 0.05;
      wait (tries - 1)
    end
  in
  wait 100;
  Fun.protect ~finally:(fun () -> Domain.join daemon) (fun () -> f socket)

let response_code line =
  let json = Obs.Json.parse_exn line in
  match Obs.Json.member "error" json with
  | Some e -> (
      match Obs.Json.member "code" e with
      | Some (Obs.Json.Str c) -> c
      | _ -> Alcotest.fail "error without code")
  | None -> "ok"

let test_daemon_malformed_line () =
  with_daemon "malformed" (fun socket ->
      match
        Serve.Client.session ~socket
          [
            "this is not json";
            {|{"serve":1,"id":1,"op":"ping"}|};
            {|{"serve":1,"id":2,"op":"frobnicate"}|};
            {|{"serve":1,"id":3,"op":"ping"}|};
          ]
      with
      | [ a; b; c; d ] ->
          Alcotest.(check string) "garbage line" "parse_error" (response_code a);
          Alcotest.(check string) "ping still served" "ok" (response_code b);
          Alcotest.(check string) "unknown op" "unknown_op" (response_code c);
          Alcotest.(check string) "daemon alive" "ok" (response_code d)
      | rs -> Alcotest.failf "expected 4 responses, got %d" (List.length rs))

let test_daemon_oversized_batch () =
  with_daemon "oversized" (fun socket ->
      let jobs =
        String.concat ","
          (List.init 5 (fun i ->
               Printf.sprintf {|{"id":%d,"op":"ping"}|} i))
      in
      let batch =
        Printf.sprintf {|{"serve":1,"id":"b","op":"batch","jobs":[%s]}|} jobs
      in
      match
        Serve.Client.session ~socket [ batch; {|{"serve":1,"id":9,"op":"ping"}|} ]
      with
      | [ a; b ] ->
          Alcotest.(check string) "batch rejected" "oversized_batch"
            (response_code a);
          Alcotest.(check string) "daemon alive" "ok" (response_code b)
      | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs))

let test_daemon_disconnect_mid_job () =
  with_daemon "disconnect" ~connections:2 (fun socket ->
      (* first connection: fire a real job and hang up without reading *)
      let c = Serve.Client.connect ~socket in
      Serve.Client.send_line c
        {|{"serve":1,"id":1,"op":"optimize","circuit":"alu1","max_iterations":2}|};
      Serve.Client.close c;
      (* the daemon must survive the EPIPE and serve the next connection *)
      match Serve.Client.session ~socket [ {|{"serve":1,"id":2,"op":"ping"}|} ] with
      | [ r ] -> Alcotest.(check string) "daemon survived" "ok" (response_code r)
      | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs))

let test_daemon_cache_collision () =
  with_daemon "collision" ~hash:(fun _ -> "same") (fun socket ->
      match
        Serve.Client.session ~socket
          [
            {|{"serve":1,"id":1,"op":"info","circuit":"alu1"}|};
            {|{"serve":1,"id":2,"op":"info","circuit":"alu2"}|};
            {|{"serve":1,"id":3,"op":"ping"}|};
          ]
      with
      | [ a; b; c ] ->
          Alcotest.(check string) "first fills the cache" "ok" (response_code a);
          Alcotest.(check string) "second collides" "cache_collision"
            (response_code b);
          Alcotest.(check string) "daemon alive" "ok" (response_code c)
      | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs))

let test_daemon_batch_and_shutdown () =
  with_daemon "batch" ~connections:99 (fun socket ->
      (match
         Serve.Client.session ~socket
           [
             {|{"serve":1,"id":"b","op":"batch","jobs":[{"id":1,"op":"ping"},{"id":2,"op":"info","circuit":"alu1"}]}|};
           ]
       with
      | [ r ] -> (
          let json = Obs.Json.parse_exn r in
          match
            Option.bind (Obs.Json.member "result" json) (Obs.Json.member "results")
          with
          | Some (Obs.Json.Arr [ _; _ ]) -> ()
          | _ -> Alcotest.fail "expected 2 batch results")
      | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
      (* shutdown must stop the daemon well before the connection cap *)
      match
        Serve.Client.session ~socket [ {|{"serve":1,"id":0,"op":"shutdown"}|} ]
      with
      | [ r ] -> Alcotest.(check string) "shutdown acked" "ok" (response_code r)
      | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs))

let suite =
  [
    ( "protocol",
      [
        Alcotest.test_case "parse ping" `Quick test_parse_ping;
        Alcotest.test_case "optimize defaults" `Quick test_parse_optimize_defaults;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "render response" `Quick test_render_response;
      ] );
    ( "cache",
      [
        Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
        Alcotest.test_case "collision" `Quick test_cache_collision;
        Alcotest.test_case "failed build" `Quick test_cache_build_raises;
      ] );
    ("pool", [ Alcotest.test_case "order" `Quick test_pool_order ]);
    ( "jobs",
      [
        Alcotest.test_case "unknown circuit" `Quick test_job_unknown_circuit;
        Alcotest.test_case "cache collision" `Quick test_job_cache_collision;
        Alcotest.test_case "byte-identical across domains" `Slow
          test_job_determinism;
      ] );
    ( "daemon",
      [
        Alcotest.test_case "malformed line" `Quick test_daemon_malformed_line;
        Alcotest.test_case "oversized batch" `Quick test_daemon_oversized_batch;
        Alcotest.test_case "mid-job disconnect" `Quick
          test_daemon_disconnect_mid_job;
        Alcotest.test_case "cache collision" `Quick test_daemon_cache_collision;
        Alcotest.test_case "batch + shutdown" `Quick
          test_daemon_batch_and_shutdown;
      ] );
  ]

let () = Alcotest.run "serve" suite

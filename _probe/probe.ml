let () =
  let src =
    "let hits = ref 0\n\
     let handler () = incr hits\n\
     let handlers : (string, unit -> unit) Hashtbl.t = Hashtbl.create 8\n\
     let register () = Hashtbl.add handlers \"k\" handler\n\
     let run () =\n\
    \  let d = Domain.spawn (fun () -> register ()) in\n\
    \  Domain.join d\n"
  in
  match Statrace.Source.of_string ~path:"probe.ml" src with
  | Error d -> print_endline (Diag.to_string d)
  | Ok s ->
      let r = Statrace.Analyze.run [ s ] in
      List.iter (fun d -> print_endline (Diag.to_string d)) r.Statrace.Analyze.findings;
      Printf.printf "findings=%d\n" (List.length r.Statrace.Analyze.findings)

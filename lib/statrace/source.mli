(** Source loading for the parallel-safety analyzer: read an [.ml] file,
    parse it with the compiler's own front end (compiler-libs [Parse]), and
    scan the raw text for [(* statrace: safe — reason *)] allowlist pragmas.

    The analyzer is purely syntactic — no typing pass — so anything that
    parses under the project's compiler version is analyzable, including the
    planted-race fixtures that are never compiled. *)

type t = {
  path : string;  (** as given on the command line; used in diagnostics *)
  module_name : string;  (** capitalized basename, the module it compiles to *)
  structure : Parsetree.structure;
  pragmas : (int * string) list;
      (** [(line, reason)] for every [statrace: safe] pragma, 1-based *)
}

val of_string : path:string -> string -> (t, Diag.t) result
(** Parse source text. Parse failures come back as a single PAR000 Error
    diagnostic carrying the failing file/line. *)

val load : string -> (t, Diag.t) result
(** [of_string] over a file's contents; I/O errors are PAR000 too. *)

val load_dirs : string list -> t list * Diag.t list
(** Every [.ml] file under the given roots (recursive, [_build] and
    dot-directories skipped), sorted by path for deterministic output.
    Returns parsed sources and the PAR000 diagnostics of unparseable ones. *)

val pragma_for : t -> line:int -> (int * string) option
(** The pragma covering a finding at [line]: same line or the line above. *)

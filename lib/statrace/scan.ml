(* The extraction pass. One hand-rolled recursion over [Parsetree]
   expressions (compiler-libs 5.1 layout) threading an immutable context —
   scope map, spawn depth, guard depth — and appending facts to the current
   binding's accumulator. A manual walk, rather than [Ast_iterator], keeps
   the scope save/restore discipline explicit: every construct that binds
   names extends the map for exactly its own subtree. *)

open Parsetree

type mutable_kind = Ref | Field | Array_slot | Bytes_slot | Container

type origin =
  | Local of { kind : mutable_kind option; spawn_depth : int }
  | Dls
  | Binding

type target =
  | Var of string * origin
  | Free of string
  | Path of string list
  | Complex

type write = {
  w_kind : mutable_kind;
  w_target : target;
  w_line : int;
  w_spawn : int;
  w_guarded : bool;
}

type call = { c_path : string list; c_spawn : int; c_guarded : bool }

type atomic_op = {
  a_side : [ `Get | `Set ];
  a_target : string;
  a_line : int;
  a_spawn : int;
  a_guarded : bool;
}

type dls_new = { d_line : int; d_spawn : int }

type binding = {
  b_name : string;
  b_line : int;
  b_is_function : bool;
  b_alloc : mutable_kind option;
  b_spawns : int list;
  b_writes : write list;
  b_calls : call list;
  b_atomics : atomic_op list;
  b_dls_news : dls_new list;
}

type file_facts = { source : Source.t; bindings : binding list }

module SMap = Map.Make (String)

type ctx = { scope : origin SMap.t; spawn : int; guard : bool }

(* Mutable accumulator for the binding currently being walked. *)
type acc = {
  mutable spawns : int list;
  mutable writes : write list;
  mutable calls : call list;
  mutable atomics : atomic_op list;
  mutable dls_news : dls_new list;
}

let fresh_acc () =
  { spawns = []; writes = []; calls = []; atomics = []; dls_news = [] }

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply (a, _) -> flatten_lid a

let last2 = function
  | [] | [ _ ] -> None
  | path ->
      let arr = Array.of_list path in
      let n = Array.length arr in
      Some (arr.(n - 2), arr.(n - 1))

let line_of e = e.pexp_loc.Location.loc_start.Lexing.pos_lnum

(* ---- pattern variables --------------------------------------------------- *)

let rec pat_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (sub, { txt; _ }) -> txt :: pat_vars sub
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pat_vars ps
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) -> pat_vars p
  | Ppat_record (fields, _) -> List.concat_map (fun (_, p) -> pat_vars p) fields
  | Ppat_or (a, b) -> pat_vars a @ pat_vars b
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_exception p | Ppat_open (_, p)
    ->
      pat_vars p
  | _ -> []

let bind_pat origin ctx p =
  List.fold_left
    (fun scope v -> SMap.add v origin scope)
    ctx.scope (pat_vars p)
  |> fun scope -> { ctx with scope }

(* ---- syntactic classification -------------------------------------------- *)

(* Does this RHS syntactically allocate fresh mutable state? *)
let rec alloc_of_rhs e =
  match e.pexp_desc with
  | Pexp_array _ -> `Alloc Array_slot
  | Pexp_record _ -> `Alloc Field
  | Pexp_constraint (e, _) | Pexp_open (_, e) | Pexp_newtype (_, e) ->
      alloc_of_rhs e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match flatten_lid txt with
      | [ "ref" ] | [ "Stdlib"; "ref" ] -> `Alloc Ref
      | path when last2 path = Some ("DLS", "get") -> `Dls
      | path -> (
          match last2 path with
          | Some
              ( "Array",
                ( "make" | "init" | "copy" | "create_float" | "make_matrix"
                | "of_list" | "append" | "sub" | "map" | "mapi" | "concat" ) )
            ->
              `Alloc Array_slot
          | Some
              ("Bytes", ("create" | "make" | "copy" | "of_string" | "init" | "sub"))
            ->
              `Alloc Bytes_slot
          | Some ("Hashtbl", ("create" | "copy"))
          | Some (("Buffer" | "Queue" | "Stack"), "create") ->
              `Alloc Container
          | _ -> `Other))
  | _ -> `Other

let origin_of_rhs ctx e =
  match alloc_of_rhs e with
  | `Alloc kind -> Local { kind = Some kind; spawn_depth = ctx.spawn }
  | `Dls -> Dls
  | `Other -> Binding

let target_of ctx e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident name; _ } -> (
      match SMap.find_opt name ctx.scope with
      | Some o -> Var (name, o)
      | None -> Free name)
  | Pexp_ident { txt; _ } -> Path (flatten_lid txt)
  | _ -> Complex

(* A stable rendering of simple lvalues ([counter], [t.cell], [M.flag]) for
   PAR005's same-location get/set pairing; anything more complex renders
   uniquely per line so it can never pair up. *)
let rec render_simple e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> String.concat "." (flatten_lid txt)
  | Pexp_field (base, { txt; _ }) ->
      render_simple base ^ "." ^ String.concat "." (flatten_lid txt)
  | _ -> Printf.sprintf "<expr@%d>" (line_of e)

(* Mutating stdlib entry points: (module, function) -> kind and the index of
   the mutated argument. *)
let mutator_table =
  [
    (("Array", "set"), (Array_slot, 0));
    (("Array", "unsafe_set"), (Array_slot, 0));
    (("Array", "fill"), (Array_slot, 0));
    (("Array", "sort"), (Array_slot, 1));
    (("Array", "fast_sort"), (Array_slot, 1));
    (("Array", "stable_sort"), (Array_slot, 1));
    (("Array", "blit"), (Array_slot, 2));
    (("Bytes", "set"), (Bytes_slot, 0));
    (("Bytes", "unsafe_set"), (Bytes_slot, 0));
    (("Bytes", "fill"), (Bytes_slot, 0));
    (("Bytes", "blit"), (Bytes_slot, 2));
    (("Bytes", "blit_string"), (Bytes_slot, 2));
    (("Hashtbl", "add"), (Container, 0));
    (("Hashtbl", "replace"), (Container, 0));
    (("Hashtbl", "remove"), (Container, 0));
    (("Hashtbl", "reset"), (Container, 0));
    (("Hashtbl", "clear"), (Container, 0));
    (("Hashtbl", "filter_map_inplace"), (Container, 1));
    (("Buffer", "add_char"), (Container, 0));
    (("Buffer", "add_string"), (Container, 0));
    (("Buffer", "add_bytes"), (Container, 0));
    (("Buffer", "add_buffer"), (Container, 0));
    (("Buffer", "add_substring"), (Container, 0));
    (("Buffer", "clear"), (Container, 0));
    (("Buffer", "reset"), (Container, 0));
    (("Buffer", "truncate"), (Container, 0));
    (("Queue", "push"), (Container, 1));
    (("Queue", "add"), (Container, 1));
    (("Queue", "pop"), (Container, 0));
    (("Queue", "take"), (Container, 0));
    (("Queue", "clear"), (Container, 0));
    (("Stack", "push"), (Container, 1));
    (("Stack", "pop"), (Container, 0));
    (("Stack", "clear"), (Container, 0));
  ]

(* ---- the walk ------------------------------------------------------------ *)

let walk acc =
  let record_write ctx ~kind ~line target =
    acc.writes <-
      {
        w_kind = kind;
        w_target = target;
        w_line = line;
        w_spawn = ctx.spawn;
        w_guarded = ctx.guard;
      }
      :: acc.writes
  in
  let record_call ctx path =
    acc.calls <-
      { c_path = path; c_spawn = ctx.spawn; c_guarded = ctx.guard }
      :: acc.calls
  in
  let record_atomic ctx ~side ~line target_expr =
    acc.atomics <-
      {
        a_side = side;
        a_target = render_simple target_expr;
        a_line = line;
        a_spawn = ctx.spawn;
        a_guarded = ctx.guard;
      }
      :: acc.atomics
  in
  let rec expr ctx e =
    let line = line_of e in
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> record_call ctx (flatten_lid txt)
    | Pexp_constant _ | Pexp_unreachable | Pexp_new _ | Pexp_extension _ -> ()
    | Pexp_let (_, vbs, body) ->
        List.iter (fun vb -> expr ctx vb.pvb_expr) vbs;
        let ctx' =
          List.fold_left
            (fun c vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } ->
                  {
                    c with
                    scope =
                      SMap.add txt (origin_of_rhs ctx vb.pvb_expr) c.scope;
                  }
              | _ -> bind_pat Binding c vb.pvb_pat)
            ctx vbs
        in
        expr ctx' body
    | Pexp_fun (_, default, pat, body) ->
        Option.iter (expr ctx) default;
        expr (bind_pat Binding ctx pat) body
    | Pexp_function cases -> List.iter (case ctx) cases
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
        apply ctx ~line (flatten_lid txt) args
    | Pexp_apply (f, args) ->
        expr ctx f;
        List.iter (fun (_, a) -> expr ctx a) args
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        expr ctx scrut;
        List.iter (case ctx) cases
    | Pexp_tuple es | Pexp_array es -> List.iter (expr ctx) es
    | Pexp_construct (_, eo) | Pexp_variant (_, eo) -> Option.iter (expr ctx) eo
    | Pexp_record (fields, base) ->
        List.iter (fun (_, v) -> expr ctx v) fields;
        Option.iter (expr ctx) base
    | Pexp_field (base, _) -> expr ctx base
    | Pexp_setfield (base, _, v) ->
        record_write ctx ~kind:Field ~line (target_of ctx base);
        expr ctx base;
        expr ctx v
    | Pexp_ifthenelse (c, t, eo) ->
        expr ctx c;
        expr ctx t;
        Option.iter (expr ctx) eo
    | Pexp_sequence (a, b) ->
        expr ctx a;
        expr ctx b
    | Pexp_while (c, body) ->
        expr ctx c;
        expr ctx body
    | Pexp_for (pat, lo, hi, _, body) ->
        expr ctx lo;
        expr ctx hi;
        expr (bind_pat Binding ctx pat) body
    | Pexp_constraint (e, _)
    | Pexp_coerce (e, _, _)
    | Pexp_assert e
    | Pexp_lazy e
    | Pexp_poly (e, _)
    | Pexp_newtype (_, e)
    | Pexp_open (_, e)
    | Pexp_send (e, _)
    | Pexp_setinstvar (_, e) ->
        expr ctx e
    | Pexp_override fields -> List.iter (fun (_, v) -> expr ctx v) fields
    | Pexp_letmodule (_, me, body) ->
        module_expr ctx me;
        expr ctx body
    | Pexp_letexception (_, body) -> expr ctx body
    | Pexp_pack me -> module_expr ctx me
    | Pexp_letop { let_; ands; body } ->
        expr ctx let_.pbop_exp;
        List.iter (fun b -> expr ctx b.pbop_exp) ands;
        let ctx' =
          List.fold_left
            (fun c b -> bind_pat Binding c b.pbop_pat)
            (bind_pat Binding ctx let_.pbop_pat)
            ands
        in
        expr ctx' body
    | Pexp_object _ -> ()
  and case ctx c =
    let ctx' = bind_pat Binding ctx c.pc_lhs in
    Option.iter (expr ctx') c.pc_guard;
    expr ctx' c.pc_rhs
  and apply ctx ~line path args =
    let args' = List.map snd args in
    let nth i = List.nth_opt args' i in
    match (path, last2 path) with
    | _, Some ("Domain", "spawn") ->
        acc.spawns <- line :: acc.spawns;
        (match args' with
        | [ { pexp_desc = Pexp_fun (_, _, pat, body); _ } ] ->
            expr
              (bind_pat Binding { ctx with spawn = ctx.spawn + 1 } pat)
              body
        | [ ({ pexp_desc = Pexp_ident { txt; _ }; _ } as thunk) ] ->
            record_call { ctx with spawn = ctx.spawn + 1 } (flatten_lid txt);
            ignore thunk
        | _ -> List.iter (expr { ctx with spawn = ctx.spawn + 1 }) args')
    | _, Some ("Mutex", "protect") -> (
        match args' with
        | [ m; { pexp_desc = Pexp_fun (_, _, pat, body); _ } ] ->
            expr ctx m;
            expr (bind_pat Binding { ctx with guard = true } pat) body
        | [ m; ({ pexp_desc = Pexp_ident { txt; _ }; _ } as _thunk) ] ->
            expr ctx m;
            record_call { ctx with guard = true } (flatten_lid txt)
        | _ -> List.iter (expr ctx) args')
    | _, Some ("DLS", "new_key") when List.mem "Domain" path ->
        acc.dls_news <- { d_line = line; d_spawn = ctx.spawn } :: acc.dls_news;
        List.iter (expr ctx) args'
    | _, Some ("Atomic", ("get" | "set")) ->
        (match nth 0 with
        | Some target ->
            let side =
              if last2 path = Some ("Atomic", "get") then `Get else `Set
            in
            record_atomic ctx ~side ~line target
        | None -> ());
        List.iter (expr_skip_target ctx) args'
    | ( ([ "incr" ] | [ "decr" ] | [ "Stdlib"; "incr" ] | [ "Stdlib"; "decr" ]),
        _ ) ->
        (match nth 0 with
        | Some t -> record_write ctx ~kind:Ref ~line (target_of ctx t)
        | None -> ());
        List.iter (expr_skip_target ctx) args'
    | ([ ":=" ] | [ "Stdlib"; ":=" ]), _ ->
        (match nth 0 with
        | Some t -> record_write ctx ~kind:Ref ~line (target_of ctx t)
        | None -> ());
        List.iter (expr_skip_target ctx) args'
    | _, Some key when List.mem_assoc key mutator_table ->
        let kind, target_idx = List.assoc key mutator_table in
        (match nth target_idx with
        | Some t -> record_write ctx ~kind ~line (target_of ctx t)
        | None -> ());
        List.iter (expr_skip_target ctx) args'
    | _ ->
        record_call ctx path;
        List.iter (expr ctx) args'
  (* Walk an argument that served as a write/atomic target: its own subtree
     still gets scanned (nested calls, index expressions), but a bare ident
     does not additionally register as a "call" — a written-to location is
     not an entry into the call graph. *)
  and expr_skip_target ctx e =
    match e.pexp_desc with Pexp_ident _ -> () | _ -> expr ctx e
  and module_expr ctx me =
    match me.pmod_desc with
    | Pmod_structure items ->
        List.iter
          (fun item ->
            match item.pstr_desc with
            | Pstr_value (_, vbs) -> List.iter (fun vb -> expr ctx vb.pvb_expr) vbs
            | Pstr_eval (e, _) -> expr ctx e
            | _ -> ())
          items
    | Pmod_constraint (me, _) | Pmod_functor (_, me) -> module_expr ctx me
    | _ -> ()
  in
  expr

(* ---- top-level structure ------------------------------------------------- *)

let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) | Pexp_constraint (e, _) -> is_function e
  | _ -> false

let empty_ctx = { scope = SMap.empty; spawn = 0; guard = false }

let binding_of_vb ~prefix vb =
  let acc = fresh_acc () in
  walk acc empty_ctx vb.pvb_expr;
  let name =
    match pat_vars vb.pvb_pat with
    | v :: _ -> v
    | [] ->
        Printf.sprintf "_init_%d" vb.pvb_loc.Location.loc_start.Lexing.pos_lnum
  in
  {
    b_name = (if prefix = "" then name else prefix ^ "." ^ name);
    b_line = vb.pvb_loc.Location.loc_start.Lexing.pos_lnum;
    b_is_function = is_function vb.pvb_expr;
    b_alloc =
      (match alloc_of_rhs vb.pvb_expr with `Alloc k -> Some k | _ -> None);
    b_spawns = List.rev acc.spawns;
    b_writes = List.rev acc.writes;
    b_calls = List.rev acc.calls;
    b_atomics = List.rev acc.atomics;
    b_dls_news = List.rev acc.dls_news;
  }

let rec structure_bindings ~prefix items =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> List.map (binding_of_vb ~prefix) vbs
      | Pstr_eval (e, _) ->
          let acc = fresh_acc () in
          walk acc empty_ctx e;
          [
            {
              b_name =
                Printf.sprintf "%s_eval_%d"
                  (if prefix = "" then "" else prefix ^ ".")
                  item.pstr_loc.Location.loc_start.Lexing.pos_lnum;
              b_line = item.pstr_loc.Location.loc_start.Lexing.pos_lnum;
              b_is_function = false;
              b_alloc = None;
              b_spawns = List.rev acc.spawns;
              b_writes = List.rev acc.writes;
              b_calls = List.rev acc.calls;
              b_atomics = List.rev acc.atomics;
              b_dls_news = List.rev acc.dls_news;
            };
          ]
      | Pstr_module mb -> module_bindings ~prefix mb
      | Pstr_recmodule mbs -> List.concat_map (module_bindings ~prefix) mbs
      | _ -> [])
    items

and module_bindings ~prefix mb =
  let sub =
    match mb.pmb_name.Location.txt with Some n -> n | None -> "_"
  in
  let prefix = if prefix = "" then sub else prefix ^ "." ^ sub in
  let rec of_mod me =
    match me.pmod_desc with
    | Pmod_structure items -> structure_bindings ~prefix items
    | Pmod_constraint (me, _) | Pmod_functor (_, me) -> of_mod me
    | _ -> []
  in
  of_mod mb.pmb_expr

let file (source : Source.t) =
  { source; bindings = structure_bindings ~prefix:"" source.Source.structure }

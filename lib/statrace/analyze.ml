(* Classification pass: reachability-gated mutable-state findings, then the
   shared allowlist pass (source pragmas + allow-file + staleness, in
   [Srcmodel.Suppress]). Severities come from the lint catalogue so a PAR
   finding carries exactly what `statsize lint` would assign it. *)

module Source = Srcmodel.Source
module Scan = Srcmodel.Scan
module Callgraph = Srcmodel.Callgraph

let tool =
  { Srcmodel.Tool.name = "statrace"; parse_code = "PAR000"; stale_code = "PAR007" }

type allow_entry = Srcmodel.Allow.entry = {
  al_code : string;
  al_file : string;
  al_line : int;
  al_origin : string * int;
}

type config = { entries : string list; allow : allow_entry list }

let default_config = { entries = []; allow = [] }

type result = {
  files_scanned : int;
  entry_points : (string * string * int) list;
  findings : Diag.t list;
  suppressed : int;
}

let finding = Srcmodel.Suppress.finding

let allow_hint =
  "protect with Atomic.t or Mutex.protect, make the state domain-local \
   (Domain.DLS or allocate inside the spawned thunk), or annotate the line \
   with (* statrace: safe — reason *)"

let parse_allow_file = Srcmodel.Allow.parse

(* ---- entry selection ----------------------------------------------------- *)

let entry_selected config ~module_ (b : Scan.binding) =
  config.entries = []
  || List.exists
       (fun e ->
         e = module_ ^ "." ^ b.Scan.b_name
         || e = b.Scan.b_name || e = module_)
       config.entries

(* ---- per-binding classification ------------------------------------------ *)

let code_of_kind = function
  | Scan.Ref -> "PAR001"
  | Scan.Field | Scan.Container -> "PAR002"
  | Scan.Array_slot | Scan.Bytes_slot -> "PAR003"

let kind_noun = function
  | Scan.Ref -> "ref"
  | Scan.Field -> "mutable field of"
  | Scan.Container -> "shared container"
  | Scan.Array_slot -> "array"
  | Scan.Bytes_slot -> "bytes"

let toplevel_exists graph ~module_ ~value =
  Callgraph.toplevel graph ~module_ ~value <> []

let classify_binding graph ~file ~module_ ~is_entry (b : Scan.binding) =
  let st = Callgraph.status graph ~module_ ~value:b.Scan.b_name in
  let unguarded_reachable = is_entry || st = Some Callgraph.Unguarded in
  let any_reachable = is_entry || st <> None in
  let out = ref [] in
  let emit d = out := d :: !out in
  let shared_write (w : Scan.write) name =
    emit
      (finding ~code:(code_of_kind w.Scan.w_kind) ~file ~line:w.Scan.w_line
         ~hint:allow_hint
         "%s `%s` is written here without Atomic/Mutex protection in code \
          reachable from a Domain.spawn region (via %s.%s)"
         (kind_noun w.Scan.w_kind) name module_ b.Scan.b_name)
  in
  List.iter
    (fun (w : Scan.write) ->
      if not w.Scan.w_guarded then
        let active =
          if w.Scan.w_spawn > 0 then is_entry else unguarded_reachable
        in
        if active then
          match w.Scan.w_target with
          | Scan.Var (name, Scan.Local { spawn_depth; _ })
            when w.Scan.w_spawn > spawn_depth ->
              emit
                (finding ~code:"PAR006" ~file ~line:w.Scan.w_line
                   ~hint:
                     "allocate the state inside the spawned thunk, or hand \
                      results back through Domain.join instead of a captured \
                      mutable"
                   "spawn closure writes `%s`, a mutable local captured from \
                    the enclosing scope of %s.%s"
                   name module_ b.Scan.b_name)
          | Scan.Var _ -> ()
          | Scan.Free name ->
              if toplevel_exists graph ~module_ ~value:name then
                shared_write w name
          | Scan.Path path -> shared_write w (String.concat "." path)
          | Scan.Complex -> ())
    b.Scan.b_writes;
  (* PAR004: per-call DLS key creation in domain-reachable code *)
  List.iter
    (fun (d : Scan.dls_new) ->
      if d.Scan.d_spawn > 0 || (b.Scan.b_is_function && st <> None) then
        emit
          (finding ~code:"PAR004" ~file ~line:d.Scan.d_line
             ~hint:
               "create the key once at module initialization; a key minted \
                per call is a fresh, unshared slot every time"
             "Domain.DLS.new_key executed inside domain-reachable code \
              (%s.%s)"
             module_ b.Scan.b_name))
    b.Scan.b_dls_news;
  (* PAR005: split atomic read-modify-write inside one binding *)
  if any_reachable || List.exists (fun (a : Scan.atomic_op) -> a.Scan.a_spawn > 0) b.Scan.b_atomics
  then begin
    let gets =
      List.filter
        (fun (a : Scan.atomic_op) -> a.Scan.a_side = `Get && not a.Scan.a_guarded)
        b.Scan.b_atomics
    in
    List.iter
      (fun (s : Scan.atomic_op) ->
        if
          s.Scan.a_side = `Set && (not s.Scan.a_guarded)
          && (any_reachable || s.Scan.a_spawn > 0)
          && List.exists
               (fun (g : Scan.atomic_op) -> g.Scan.a_target = s.Scan.a_target)
               gets
        then
          emit
            (finding ~code:"PAR005" ~file ~line:s.Scan.a_line
               ~hint:
                 "use Atomic.fetch_and_add / exchange / compare_and_set so \
                  the read and write are one indivisible step"
               "Atomic.set of `%s` pairs with an Atomic.get of the same \
                location in %s.%s: a read-modify-write split across \
                statements loses updates under contention"
               s.Scan.a_target module_ b.Scan.b_name))
      b.Scan.b_atomics
  end;
  List.rev !out

(* ---- driver -------------------------------------------------------------- *)

let dedupe diags =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (d : Diag.t) ->
      let key = (d.Diag.code, Diag.to_string d) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    diags

let run ?(config = default_config) sources =
  let facts = List.map Scan.file sources in
  let graph = Callgraph.build facts in
  let entries =
    List.concat_map
      (fun (ff : Scan.file_facts) ->
        let module_ = ff.Scan.source.Source.module_name in
        List.filter_map
          (fun (b : Scan.binding) ->
            if b.Scan.b_spawns <> [] && entry_selected config ~module_ b then
              Some (module_, ff.Scan.source.Source.path, b)
            else None)
          ff.Scan.bindings)
      facts
  in
  Callgraph.compute graph
    ~entries:(List.map (fun (m, _, b) -> (m, b)) entries);
  let raw =
    List.concat_map
      (fun (ff : Scan.file_facts) ->
        let module_ = ff.Scan.source.Source.module_name in
        let file = ff.Scan.source.Source.path in
        List.concat_map
          (fun (b : Scan.binding) ->
            let is_entry =
              b.Scan.b_spawns <> [] && entry_selected config ~module_ b
            in
            classify_binding graph ~file ~module_ ~is_entry b)
          ff.Scan.bindings)
      facts
    |> dedupe
  in
  let s =
    Srcmodel.Suppress.apply ~tool ~sources ~allow:config.allow raw
  in
  {
    files_scanned = List.length sources;
    entry_points =
      List.map
        (fun (m, file, (b : Scan.binding)) ->
          ( m ^ "." ^ b.Scan.b_name,
            file,
            match b.Scan.b_spawns with l :: _ -> l | [] -> b.Scan.b_line ))
        entries;
    findings = Diag.sort (s.Srcmodel.Suppress.kept @ s.Srcmodel.Suppress.stale);
    suppressed = s.Srcmodel.Suppress.suppressed;
  }

let run_dirs ?(config = default_config) roots =
  let sources, parse_errors = Source.load_dirs ~tool roots in
  let r = run ~config sources in
  { r with findings = Diag.sort (parse_errors @ r.findings) }

let count_by_code diags =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (d : Diag.t) ->
      Hashtbl.replace tbl d.Diag.code
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d.Diag.code)))
    diags;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Classification: turn per-file facts + reachability into PAR findings.
    Parsing, fact extraction, the call graph, and the allowlist machinery
    live in [Srcmodel]; this module owns only the parallel-safety rules.

    Rule pack (catalogue defaults in [Lint.Rule]):
    - {b PAR000} (Error) — unparseable source file.
    - {b PAR001} (Error) — a plain [ref] that is module-global or another
      module's state is written from domain-reachable code without
      [Atomic]/[Mutex] protection.
    - {b PAR002} (Error) — same, for mutable record fields and shared
      containers (Hashtbl/Buffer/Queue/Stack).
    - {b PAR003} (Error) — same, for [Array.set]/[Bytes.set] and friends on
      a shared array aliased across the spawn.
    - {b PAR004} (Warning) — [Domain.DLS.new_key] executed inside
      domain-reachable code: every call mints a fresh key, so state silently
      stops being shared across calls and the key table leaks.
    - {b PAR005} (Warning) — an [Atomic.set] whose same-location
      [Atomic.get] sits in the same binding: a read-modify-write split
      across statements that loses updates under contention; use
      [fetch_and_add]/[exchange]/[compare_and_set].
    - {b PAR006} (Error) — a spawn closure writes a mutable local captured
      from the enclosing scope (allocated outside the thunk).
    - {b PAR007} (Warning) — a [(* statrace: safe — reason *)] pragma or an
      allow-file entry that suppresses nothing: stale allowlist.

    Safe by construction (no finding): [Atomic.*] operations, writes inside
    [Mutex.protect] thunks (directly or via callees reached only through
    guarded call sites), [Domain.DLS] state, and mutable locals allocated
    inside the spawned thunk itself. Writes through parameters and complex
    lvalues are out of scope — the alias-analysis caveat in DESIGN.md §12. *)

module Source = Srcmodel.Source
module Scan = Srcmodel.Scan
module Callgraph = Srcmodel.Callgraph

val tool : Srcmodel.Tool.t
(** [{name = "statrace"; parse_code = "PAR000"; stale_code = "PAR007"}] —
    pass to [Srcmodel.Source.load_dirs] when loading sources manually. *)

type allow_entry = Srcmodel.Allow.entry = {
  al_code : string;
  al_file : string;  (** suffix-matched against finding paths *)
  al_line : int;  (** 0 = any line in the file *)
  al_origin : string * int;  (** allow-file path and line, for staleness *)
}

type config = {
  entries : string list;
      (** restrict to spawn sites whose enclosing binding matches one of
          these names ([Module.binding], bare [binding], or bare [Module]);
          empty = every spawn site found *)
  allow : allow_entry list;
}

val default_config : config

val parse_allow_file : string -> (allow_entry list, string) result
(** [Srcmodel.Allow.parse]. *)

type result = {
  files_scanned : int;
  entry_points : (string * string * int) list;
      (** [(Module.binding, file, line of first spawn)] *)
  findings : Diag.t list;  (** sorted; allowlist already applied *)
  suppressed : int;  (** findings removed by pragmas/allow entries *)
}

val run : ?config:config -> Srcmodel.Source.t list -> result

val run_dirs : ?config:config -> string list -> result
(** [Srcmodel.Source.load_dirs] + [run]; PAR000 parse failures join the
    findings. *)

val count_by_code : Diag.t list -> (string * int) list
(** Sorted per-code histogram, for reports and BENCH_statrace.json. *)

(** Per-file fact extraction: one syntactic pass over a parsed source that
    records, for every top-level binding, the mutable-state operations it
    performs, the calls it makes, and the [Domain.spawn] regions it opens.

    The pass is context-sensitive in three dimensions the later phases
    consume:

    - {b spawn depth} — how many [Domain.spawn (fun () -> ...)] closures
      enclose the operation. Depth [> 0] means the code runs on a spawned
      domain whenever the spawn site executes.
    - {b guard} — whether the operation sits lexically inside a
      [Mutex.protect _ (fun () -> ...)] thunk. Guarded writes are safe; a
      call made under guard marks its edge, so callees reached {e only}
      through guarded edges inherit protection (the [record_locked]
      convention in [lib/obs/span.ml]).
    - {b scope origin} — where the written location was allocated:
      fresh mutable allocation in this binding (safe unless it crosses a
      spawn boundary), [Domain.DLS.get] result (domain-local by
      construction), an ordinary pattern binding (per-invocation view;
      aliasing is out of scope, see DESIGN.md §12), a free variable
      (resolved against the module's top level later), or a qualified path
      (another module's state). *)

type mutable_kind = Ref | Field | Array_slot | Bytes_slot | Container

type origin =
  | Local of { kind : mutable_kind option; spawn_depth : int }
      (** let-bound to a syntactically fresh mutable allocation *)
  | Dls  (** let-bound to [Domain.DLS.get _] *)
  | Binding  (** pattern/parameter binding — per-invocation, alias-blind *)

type target =
  | Var of string * origin  (** ident resolved in the local scope *)
  | Free of string  (** unqualified ident not in scope: module top level *)
  | Path of string list  (** qualified [M.x] *)
  | Complex  (** write through a non-ident base; not tracked *)

type write = {
  w_kind : mutable_kind;
  w_target : target;
  w_line : int;
  w_spawn : int;  (** spawn depth at the write site *)
  w_guarded : bool;
}

type call = {
  c_path : string list;  (** flattened longident as written *)
  c_spawn : int;
  c_guarded : bool;
}

type atomic_op = {
  a_side : [ `Get | `Set ];
  a_target : string;  (** syntactic rendering of the atomic location *)
  a_line : int;
  a_spawn : int;
  a_guarded : bool;
}

type dls_new = { d_line : int; d_spawn : int }

type binding = {
  b_name : string;  (** path inside the module, e.g. ["run"] or ["Sub.run"] *)
  b_line : int;
  b_is_function : bool;
      (** syntactically a [fun]: only these propagate reachability — a
          non-function binding's body runs once, at module init, on the
          loading domain *)
  b_alloc : mutable_kind option;
      (** for top-level [let x = ref ...] and friends: the module-global
          mutable state free-variable writes resolve to *)
  b_spawns : int list;  (** lines of [Domain.spawn] sites in this binding *)
  b_writes : write list;
  b_calls : call list;
  b_atomics : atomic_op list;
  b_dls_news : dls_new list;
}

type file_facts = { source : Source.t; bindings : binding list }

val file : Source.t -> file_facts

val last2 : string list -> (string * string) option
(** Last two components of a path, for suffix dispatch. *)

(** Module-level call graph and domain-reachability over it.

    Nodes are [(module, top-level binding)] pairs; an edge exists wherever a
    binding's body mentions an identifier that resolves to another top-level
    binding (mention, not just application — a function passed higher-order
    is reachable too). Resolution is purely syntactic: for a qualified path
    the rightmost component naming a known source module wins, with library
    namespace prefixes ([Core.Sizer.optimize] → [Sizer.optimize]) falling
    away naturally. Unresolvable paths (stdlib, external libraries) are
    dropped — the FFI blind spot DESIGN.md §12 documents.

    Reachability starts from the calls made by spawn-containing bindings and
    propagates only through bindings that are syntactically functions: a
    non-function binding's body ran once at module init, on the loading
    domain, before any spawn. Each reached node carries a guard status:
    {!Guarded_only} when every path to it goes through a
    [Mutex.protect _ (fun () -> ...)] call site, {!Unguarded} otherwise. *)

type status = Guarded_only | Unguarded

type t

val build : Scan.file_facts list -> t

val toplevel : t -> module_:string -> value:string -> Scan.binding list
(** Top-level bindings named [value] in files compiling to [module_]
    (several files of the same name merge). *)

val resolve :
  t -> current_module:string -> string list -> (string * Scan.binding) list
(** Resolve a flattened identifier path to candidate [(module, binding)]
    targets; [[]] when the path leaves the analyzed source set. *)

val compute : t -> entries:(string * Scan.binding) list -> unit
(** Run the guarded-reachability fixpoint from the given spawn-containing
    [(module, binding)] entry points. Idempotent per [t]. *)

val status : t -> module_:string -> value:string -> status option
(** [None] = not reachable from any analyzed parallel region. *)

(* Table 1 — the paper's headline result: for each benchmark circuit, the
   mean-optimized baseline's sigma/mean, then for each alpha the change in
   mean, the change in sigma, the final sigma/mean, the change in area, and
   the runtime. *)

type row = {
  name : string;
  gates : int;
  original_sigma_over_mean : float;
  runs : Pipeline.stat_run list; (* one per alpha, in order *)
}

let default_alphas = [ 3.0; 9.0 ]

(* Bumped whenever [run ?domains] asks for more workers than the host can
   actually run in parallel and the request is clamped; the clamp used to be
   silent, which made "--domains 4" on a 1-core CI box look like a real
   multi-domain run. *)
let c_domains_clamped = Obs.Counters.make "table1.domains.clamped"

let run_circuit ?(alphas = default_alphas) ?sizer_config ~lib
    (entry : Benchgen.Iscas_like.entry) =
  let baseline = Pipeline.prepare ~lib (fun () -> entry.build ~lib) in
  let runs =
    List.map
      (fun alpha -> Pipeline.run_alpha ?config:sizer_config ~lib baseline ~alpha)
      alphas
  in
  {
    name = entry.Benchgen.Iscas_like.name;
    gates = baseline.Pipeline.gates;
    original_sigma_over_mean = Pipeline.sigma_over_mean baseline.Pipeline.moments;
    runs;
  }

(* Circuits are independent end-to-end (each builds its own netlist and
   threads its own sizer state), so the table parallelizes by round-robin
   chunking the resolved entries across [domains] stdlib domains. Results
   land in a positional array, so row order — and therefore every printed
   table — is identical to the sequential run's. [domains = 1] (the
   default) never spawns and keeps the historical fully-deterministic
   behavior, progress interleaving included; with more domains the only
   shared mutable state is the atomic counters (the library's LUT
   out-of-bound counts and the statobs registry), whose totals are exact
   regardless of interleaving. *)
let run ?(alphas = default_alphas) ?sizer_config ?(names = Benchgen.Iscas_like.names)
    ?(domains = 1) ~lib () =
  let entries = List.filter_map Benchgen.Iscas_like.find names in
  let run_entry (entry : Benchgen.Iscas_like.entry) =
    Obs.Span.with_ ("table1." ^ entry.Benchgen.Iscas_like.name) @@ fun () ->
    Fmt.epr "[table1] %s...@." entry.Benchgen.Iscas_like.name;
    let row = run_circuit ~alphas ?sizer_config ~lib entry in
    Fmt.epr "[table1] %s done (%.1f s)@." entry.Benchgen.Iscas_like.name
      (List.fold_left
         (fun acc (r : Pipeline.stat_run) -> acc +. r.runtime_s)
         0.0 row.runs);
    row
  in
  if domains <= 1 then List.map run_entry entries
  else begin
    let entries = Array.of_list entries in
    let n = Array.length entries in
    let results = Array.make n None in
    let cores = Domain.recommended_domain_count () in
    let workers = Int.min (Int.min domains cores) (Int.max 1 n) in
    if workers < domains then begin
      Obs.Counters.bump c_domains_clamped;
      Fmt.epr
        "[table1] clamping --domains %d to %d (%d circuit%s, %d core%s \
         recommended)@."
        domains workers n
        (if n = 1 then "" else "s")
        cores
        (if cores = 1 then "" else "s")
    end;
    List.init workers (fun w ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            let i = ref w in
            while !i < n do
              acc := (!i, run_entry entries.(!i)) :: !acc;
              i := !i + workers
            done;
            !acc))
    |> List.iter (fun d ->
           List.iter (fun (i, row) -> results.(i) <- Some row) (Domain.join d));
    Array.to_list results |> List.filter_map Fun.id
  end

let pp_header ppf alphas =
  Fmt.pf ppf "%-8s %6s %9s" "circuit" "gates" "orig s/m";
  List.iter
    (fun a ->
      Fmt.pf ppf " | a=%-3g %6s %7s %7s %7s %8s" a "dmu%" "dsig%" "s/m" "darea%"
        "time(m)")
    alphas;
  Fmt.pf ppf "@."

let pp_row ppf row =
  Fmt.pf ppf "%-8s %6d %9.3f" row.name row.gates row.original_sigma_over_mean;
  List.iter
    (fun (r : Pipeline.stat_run) ->
      Fmt.pf ppf " |       %+6.1f %+7.1f %7.3f %+7.1f %8.2f" r.mean_change_pct
        r.sigma_change_pct r.final_sigma_over_mean r.area_change_pct
        (r.runtime_s /. 60.0))
    row.runs;
  Fmt.pf ppf "@."

let pp ppf rows =
  match rows with
  | [] -> Fmt.pf ppf "(no rows)@."
  | first :: _ ->
      pp_header ppf (List.map (fun (r : Pipeline.stat_run) -> r.alpha) first.runs);
      List.iter (pp_row ppf) rows

let to_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "circuit,gates,original_sigma_over_mean,alpha,mean_change_pct,sigma_change_pct,final_sigma_over_mean,area_change_pct,runtime_s\n";
  List.iter
    (fun row ->
      List.iter
        (fun (r : Pipeline.stat_run) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%.5f,%g,%.2f,%.2f,%.5f,%.2f,%.2f\n" row.name
               row.gates row.original_sigma_over_mean r.alpha r.mean_change_pct
               r.sigma_change_pct r.final_sigma_over_mean r.area_change_pct
               r.runtime_s))
        row.runs)
    rows;
  Buffer.contents buf

(* The paper-shape checks EXPERIMENTS.md tracks: sigma falls everywhere,
   falls further at the larger alpha for most circuits, mean moves only
   mildly, area grows. *)
type shape = {
  all_sigma_reduced : bool;
  monotone_alpha_fraction : float;
  mean_within_10_pct : bool;
  area_increases : bool;
}

let shape rows =
  let all_runs = List.concat_map (fun r -> r.runs) rows in
  let monotone =
    List.filter_map
      (fun row ->
        match row.runs with
        | [ a; b ] -> Some (b.Pipeline.sigma_change_pct <= a.Pipeline.sigma_change_pct +. 1.0)
        | _ -> None)
      rows
  in
  {
    all_sigma_reduced =
      List.for_all (fun (r : Pipeline.stat_run) -> r.sigma_change_pct < 0.0) all_runs;
    monotone_alpha_fraction =
      (match monotone with
      | [] -> Float.nan
      | ms ->
          float_of_int (List.length (List.filter Fun.id ms))
          /. float_of_int (List.length ms));
    mean_within_10_pct =
      List.for_all
        (fun (r : Pipeline.stat_run) -> Float.abs r.mean_change_pct <= 10.0)
        all_runs;
    area_increases =
      List.for_all (fun (r : Pipeline.stat_run) -> r.area_change_pct > -1.0) all_runs;
  }

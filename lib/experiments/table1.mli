(** Table 1 reproduction: per circuit, baseline σ/μ and per-α Δμ%, Δσ%,
    final σ/μ, Δarea%, runtime. *)

type row = {
  name : string;
  gates : int;
  original_sigma_over_mean : float;
  runs : Pipeline.stat_run list;
}

val default_alphas : float list
(** [3; 9], as in the paper. *)

val run_circuit :
  ?alphas:float list ->
  ?sizer_config:Core.Sizer.config ->
  lib:Cells.Library.t ->
  Benchgen.Iscas_like.entry ->
  row

val run :
  ?alphas:float list ->
  ?sizer_config:Core.Sizer.config ->
  ?names:string list ->
  ?domains:int ->
  lib:Cells.Library.t ->
  unit ->
  row list
(** [domains] (default 1) round-robins the independent circuits across that
    many stdlib domains; row order matches the sequential run, and the
    default never spawns, so test determinism is unchanged. Requests beyond
    [Domain.recommended_domain_count ()] (or beyond the circuit count) are
    clamped with a stderr note and a ["table1.domains.clamped"] counter bump
    rather than silently oversubscribing a small host. *)

val pp : row list Fmt.t
val to_csv : row list -> string

type shape = {
  all_sigma_reduced : bool;
  monotone_alpha_fraction : float;
  mean_within_10_pct : bool;
  area_increases : bool;
}

val shape : row list -> shape
(** The qualitative paper-shape checks EXPERIMENTS.md tracks. *)

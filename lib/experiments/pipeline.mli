(** Shared experiment pipeline: generate → initial sizing → mean-delay
    baseline ("Original") → StatisticalGreedy at α → area recovery →
    measure. *)

type baseline = {
  circuit : Netlist.Circuit.t;
  moments : Numerics.Clark.moments;
  area : float;
  gates : int;
  prep_runtime_s : float;
}

val sigma_over_mean : Numerics.Clark.moments -> float

val prepare :
  ?ignore_lint:bool ->
  ?mean_config:Core.Sizer.config ->
  lib:Cells.Library.t ->
  (unit -> Netlist.Circuit.t) ->
  baseline
(** The sizer's lint preflight applies: Error-level findings raise
    {!Lint.Preflight.Rejected} unless [ignore_lint] is set. *)

type stat_run = {
  alpha : float;
  circuit : Netlist.Circuit.t;
  final_moments : Numerics.Clark.moments;
  final_area : float;
  mean_change_pct : float;
  sigma_change_pct : float;
  final_sigma_over_mean : float;
  area_change_pct : float;
  iterations : int;
  resizes : int;
  runtime_s : float;
}

val run_alpha :
  ?ignore_lint:bool ->
  ?recover:bool ->
  ?config:Core.Sizer.config ->
  lib:Cells.Library.t ->
  baseline ->
  alpha:float ->
  stat_run
(** Copies the baseline circuit, so runs at different α are independent. *)

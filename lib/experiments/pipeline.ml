(* The experiment pipeline shared by Table 1, Fig. 1 and Fig. 4:

     generate -> initial (load-driven) sizing -> mean-delay baseline
              -> StatisticalGreedy at alpha -> area recovery -> measure

   The mean-optimized circuit is the paper's "Original" column; every
   statistical run copies it, so all alpha points start from the same
   baseline. *)

type baseline = {
  circuit : Netlist.Circuit.t; (* mean-optimized; copy before mutating *)
  moments : Numerics.Clark.moments; (* FULLSSTA RV_O of the baseline *)
  area : float;
  gates : int;
  prep_runtime_s : float;
}

let sigma_over_mean (m : Numerics.Clark.moments) =
  Numerics.Clark.sigma m /. m.Numerics.Clark.mean

let prepare ?(ignore_lint = false) ?(mean_config = Core.Sizer.mean_delay_config)
    ~lib build =
  Obs.Span.with_ "pipeline.prepare" @@ fun () ->
  (* statflow: safe — prep_runtime_s metadata only *)
  let started = Sys.time () in
  let circuit = build () in
  let _ = Core.Initial_sizing.apply ~lib circuit in
  let _ = Core.Sizer.optimize ~ignore_lint ~config:mean_config ~lib circuit in
  let full = Ssta.Fullssta.run circuit in
  {
    circuit;
    moments = Ssta.Fullssta.output_moments full;
    area = Netlist.Circuit.total_area circuit;
    gates = Netlist.Circuit.gate_count circuit;
    (* statflow: safe — prep_runtime_s metadata only *)
    prep_runtime_s = Sys.time () -. started;
  }

type stat_run = {
  alpha : float;
  circuit : Netlist.Circuit.t; (* the optimized copy *)
  final_moments : Numerics.Clark.moments;
  final_area : float;
  mean_change_pct : float;
  sigma_change_pct : float;
  final_sigma_over_mean : float;
  area_change_pct : float;
  iterations : int;
  resizes : int;
  runtime_s : float;
}

let run_alpha ?(ignore_lint = false) ?(recover = true)
    ?(config = Core.Sizer.default_config) ~lib (baseline : baseline) ~alpha =
  Obs.Span.with_ "pipeline.run_alpha" @@ fun () ->
  (* statflow: safe — runtime_s metadata only *)
  let started = Sys.time () in
  let circuit = Netlist.Circuit.copy baseline.circuit in
  let objective = Core.Objective.create ~alpha in
  let config = { config with Core.Sizer.objective } in
  let res = Core.Sizer.optimize ~ignore_lint ~config ~lib circuit in
  if recover then begin
    let rcfg =
      { Core.Area_recovery.default_config with objective; model = config.model }
    in
    ignore (Core.Area_recovery.recover ~config:rcfg ~lib circuit)
  end;
  let full = Ssta.Fullssta.run circuit in
  let m = Ssta.Fullssta.output_moments full in
  let area = Netlist.Circuit.total_area circuit in
  let b = baseline.moments in
  {
    alpha;
    circuit;
    final_moments = m;
    final_area = area;
    mean_change_pct =
      100.0 *. (m.Numerics.Clark.mean -. b.Numerics.Clark.mean)
      /. b.Numerics.Clark.mean;
    sigma_change_pct =
      100.0
      *. (Numerics.Clark.sigma m -. Numerics.Clark.sigma b)
      /. Numerics.Clark.sigma b;
    final_sigma_over_mean = sigma_over_mean m;
    area_change_pct = 100.0 *. (area -. baseline.area) /. baseline.area;
    iterations = List.length res.Core.Sizer.iterations;
    resizes = res.Core.Sizer.total_resizes;
    (* statflow: safe — runtime_s metadata only *)
    runtime_s = Sys.time () -. started;
  }

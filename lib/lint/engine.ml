(* Pack orchestration. Rule packs emit at catalogue defaults; the registry
   is the single place findings get filtered, re-levelled and sorted. *)

let check_circuit ?(registry = Registry.default) ?lib circuit =
  Registry.apply registry (Circuit_rules.check ?lib circuit)

let check_library ?(registry = Registry.default) lib =
  Registry.apply registry (Library_rules.check lib)

let check_model ?(registry = Registry.default) model =
  Registry.apply registry (Stat_rules.check_model model)

let check_all ?(registry = Registry.default) ?(model = Variation.Model.default)
    ~lib circuit =
  Registry.apply registry
    (Circuit_rules.check ~lib circuit
    @ Library_rules.check lib
    @ Stat_rules.check_model model)

(** The preflight gate: [Sizer.optimize] and the experiment harnesses run
    this before touching a circuit, so bad inputs fail fast with coded
    diagnostics instead of deep inside a 10k-iteration sizing loop. *)

exception Rejected of Diag.t list
(** Raised when Error-level findings are present. The payload is the full
    (sorted) finding list, errors first. A human-readable printer is
    registered with [Printexc]. *)

val gate :
  ?ignore_lint:bool ->
  ?registry:Registry.t ->
  ?model:Variation.Model.t ->
  lib:Cells.Library.t ->
  Netlist.Circuit.t ->
  Diag.t list
(** Run {!Engine.check_all}; raise {!Rejected} when errors are found unless
    [ignore_lint] (the escape hatch, default false). Returns every finding
    (so callers can log warnings) when it does not raise. *)

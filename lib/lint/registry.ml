(* Rule enable/disable and severity overrides, applied as a post-filter over
   emitted diagnostics so the rule packs stay configuration-free. *)

type t = {
  disabled : string list;
  overrides : (string * Diag.Severity.t) list;
}

let default = { disabled = []; overrides = [] }

let check_code code =
  if not (Rule.mem code) then
    invalid_arg (Printf.sprintf "Lint.Registry: unknown rule code %S" code)

let disable t code =
  check_code code;
  if List.mem code t.disabled then t else { t with disabled = code :: t.disabled }

let override t ~code ~severity =
  check_code code;
  { t with overrides = (code, severity) :: List.remove_assoc code t.overrides }

let of_spec ?(disable = []) ?(overrides = []) () =
  let ( let* ) = Result.bind in
  let* t =
    List.fold_left
      (fun acc code ->
        let* t = acc in
        if Rule.mem code then Ok { t with disabled = code :: t.disabled }
        else Error (Printf.sprintf "unknown rule code %S" code))
      (Ok default) disable
  in
  List.fold_left
    (fun acc spec ->
      let* t = acc in
      match String.index_opt spec '=' with
      | None -> Error (Printf.sprintf "bad severity override %S (want CODE=LEVEL)" spec)
      | Some i -> (
          let code = String.sub spec 0 i in
          let level = String.sub spec (i + 1) (String.length spec - i - 1) in
          if not (Rule.mem code) then
            Error (Printf.sprintf "unknown rule code %S" code)
          else
            match Diag.Severity.of_string level with
            | None -> Error (Printf.sprintf "unknown severity %S" level)
            | Some severity ->
                Ok { t with overrides = (code, severity) :: t.overrides }))
    (Ok t) overrides

let apply t diags =
  diags
  |> List.filter (fun (d : Diag.t) -> not (List.mem d.Diag.code t.disabled))
  |> List.map (fun (d : Diag.t) ->
         match List.assoc_opt d.Diag.code t.overrides with
         | Some severity -> Diag.with_severity severity d
         | None -> d)
  |> Diag.sort

(* Statistical rule pack.

   Mishagli et al. (arXiv:2401.03588) and Bosák et al. (arXiv:2211.02981)
   both stress that SSTA approximations hold only under explicit
   distributional preconditions. These rules machine-check the ones this
   repo's engines rely on: normalized discrete pdfs, non-negative second
   moments, a variation model whose sigma/mu stays in the regime where the
   normal approximation is honest, and Clark's a > 0. *)

let check_model (m : Variation.Model.t) =
  let loc = Diag.Model in
  let negative =
    (if m.Variation.Model.systematic < 0.0 then
       [
         Diag.errorf ~code:"STAT002" ~loc
           "negative systematic sigma coefficient %.3g" m.Variation.Model.systematic;
       ]
     else [])
    @ (if m.Variation.Model.random_floor < 0.0 then
         [
           Diag.errorf ~code:"STAT002" ~loc "negative random sigma floor %.3g"
             m.Variation.Model.random_floor;
         ]
       else [])
    @
    if m.Variation.Model.tau_ref <= 0.0 then
      [
        Diag.errorf ~code:"STAT002" ~loc "non-positive reference tau %.3g"
          m.Variation.Model.tau_ref;
      ]
    else []
  in
  if negative <> [] then negative
  else begin
    (* Representative operating point: a mid-ladder drive (strength 4 of the
       library's 1..8) at a delay of a few tau. Per-arc sigma/mu at minimum
       size is intentionally high (that is the sizing lever); the sanity
       range applies to a typically-sized gate. *)
    let delay = 4.0 *. m.Variation.Model.tau_ref in
    let strength = 4.0 in
    let sigma = Variation.Model.sigma m ~delay ~strength in
    let ratio = sigma /. delay in
    if sigma = 0.0 then
      [
        Diag.errorf ~code:"STAT004" ~loc
          ~hint:"give at least one of k_sys/k_rand a positive value"
          "model sigma is identically zero: Clark's max needs a = sqrt(varA \
           + varB - 2cov) > 0";
      ]
    else if ratio > 0.5 then
      [
        Diag.warningf ~code:"STAT003" ~loc
          ~hint:"the normal approximation (and Clark's formulas) degrade \
                 badly past sigma/mu = 0.5"
          "sigma/mu = %.2f at a mid-ladder drive (strength %.0f, delay %.1f \
           ps) is outside the sane range (0, 0.5]"
          ratio strength delay;
      ]
    else []
  end

let check_points ?(tol = 1e-6) points =
  let negative =
    List.mapi (fun index (value, mass) -> (index, value, mass)) points
    |> List.filter_map (fun (index, value, mass) ->
           if mass < 0.0 then
             Some
               (Diag.errorf ~code:"STAT002"
                  ~loc:(Diag.Pdf_point { index; value })
                  "pdf point %d has negative mass %.3g" index mass)
           else None)
  in
  let total = List.fold_left (fun acc (_, m) -> acc +. m) 0.0 points in
  let mass =
    if Float.abs (total -. 1.0) > tol then
      [
        Diag.errorf ~code:"STAT001" ~loc:Diag.Pdf
          ~hint:"renormalize before feeding the pdf to FULLSSTA"
          "pdf mass sums to %.9g (deviation %.3g beyond tolerance %g)" total
          (Float.abs (total -. 1.0))
          tol;
      ]
    else []
  in
  negative @ mass

let check_pdf ?tol pdf = check_points ?tol (Numerics.Discrete_pdf.points pdf)

let check_moments ~loc (m : Numerics.Clark.moments) =
  if m.Numerics.Clark.var < 0.0 then
    [
      Diag.errorf ~code:"STAT002" ~loc "negative variance %.3g"
        m.Numerics.Clark.var;
    ]
  else []

(** The statistical rule pack (STAT001–STAT004): preconditions under which
    the SSTA approximations (discrete-pdf algebra, Clark's max, the normal
    model) are actually valid. *)

val check_model : Variation.Model.t -> Diag.t list
(** STAT002 (negative sigma components / non-positive tau), STAT003
    (sigma/mu outside (0, 0.5] at minimum size), STAT004 (all-zero sigma
    degenerates Clark's a-term). *)

val check_points : ?tol:float -> (float * float) list -> Diag.t list
(** Raw (value, mass) pdf points: STAT002 for negative masses (located at
    the offending point), STAT001 when total mass deviates from 1 beyond
    [tol] (default 1e-6). *)

val check_pdf : ?tol:float -> Numerics.Discrete_pdf.t -> Diag.t list
(** {!check_points} over a constructed pdf's support — paranoia check, the
    constructor normalizes. *)

val check_moments : loc:Diag.location -> Numerics.Clark.moments -> Diag.t list
(** STAT002 when the variance is negative. *)

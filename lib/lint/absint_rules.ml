(* ABS001–ABS005: concrete engine results vs certified enclosures. *)

module I = Numerics.Interval
module D = Absint.Domain

let require sc want fn =
  let got = (Absint.Statcheck.config sc).Absint.Statcheck.semantics in
  if got <> want then
    invalid_arg
      (Printf.sprintf "Absint_rules.%s: needs a %s statcheck run" fn
         (match want with
         | D.Clark_normal -> "Clark-normal"
         | D.Distribution_free -> "distribution-free"))

(* Relative slack scaled to the magnitude of the quantity compared, so the
   checks behave identically at 10 ps and 10 ns arrivals. *)
let slack tol x = tol *. (1.0 +. Float.abs x)

let node_loc circuit id = Diag.Net (Netlist.Circuit.node_name circuit id)

let fold_nodes sc f =
  let circuit = Absint.Statcheck.circuit sc in
  let acc = ref [] in
  Netlist.Circuit.iter_nodes circuit ~f:(fun id ->
      acc := List.rev_append (f circuit id (Absint.Statcheck.state sc id)) !acc);
  List.rev !acc

let mean_outside ?(tol = 1e-9) (st : D.v) m =
  let iv = D.certified_mean st in
  not (I.contains ~tol:(slack tol (Float.max (Float.abs (I.lo iv)) (Float.abs (I.hi iv)))) iv m)

let check_fullssta ?(tol = 1e-9) sc moments_of =
  require sc D.Distribution_free "check_fullssta";
  fold_nodes sc (fun circuit id st ->
      let m = moments_of id in
      let loc = node_loc circuit id in
      let mean_bad =
        if mean_outside ~tol st m.Numerics.Clark.mean then
          [
            Diag.errorf ~code:"ABS001" ~loc
              ~hint:
                "either the discrete-pdf engine corrupted the arrival or the \
                 certifier's model diverged from the engine's configuration \
                 (samples, span, electrical state)"
              "FULLSSTA mean %.6f outside certified interval %a" m.Numerics.Clark.mean
              I.pp st.D.mean;
          ]
        else []
      in
      let var_hi = I.hi st.D.var in
      let var_bad =
        if m.Numerics.Clark.var > var_hi +. slack tol var_hi then
          [
            Diag.errorf ~code:"ABS002" ~loc
              "FULLSSTA variance %.6f above certified bound %.6f"
              m.Numerics.Clark.var var_hi;
          ]
        else []
      in
      mean_bad @ var_bad)

let engine_name = function `Fast -> "fast" | `Exact -> "exact"

let check_fassta ?(tol = 1e-9) ~engine sc moments_of =
  require sc D.Clark_normal "check_fassta";
  fold_nodes sc (fun circuit id st ->
      let m = moments_of id in
      let loc = node_loc circuit id in
      let mean_bad =
        if mean_outside ~tol st m.Numerics.Clark.mean then
          [
            Diag.errorf ~code:"ABS003" ~loc
              ~hint:
                "the enclosure admits the exact, blended and cutoff branches \
                 alike; escaping it means the moment algebra (or the \
                 certifier's arc model) is broken"
              "FASSTA (%s) mean %.6f outside certified interval %a"
              (engine_name engine) m.Numerics.Clark.mean I.pp st.D.mean;
          ]
        else []
      in
      let sigma_hi = D.certified_sigma_hi st in
      let sigma = Numerics.Clark.sigma m in
      let sigma_bad =
        if sigma > sigma_hi +. slack tol sigma_hi then
          [
            Diag.errorf ~code:"ABS003" ~loc
              "FASSTA (%s) sigma %.6f above certified bound %.6f"
              (engine_name engine) sigma sigma_hi;
          ]
        else []
      in
      mean_bad @ sigma_bad)

let check_budget ?(tol = 1e-9) sc ~fast ~exact =
  require sc D.Clark_normal "check_budget";
  fold_nodes sc (fun circuit id st ->
      let mf = (fast id).Numerics.Clark.mean in
      let me = (exact id).Numerics.Clark.mean in
      let gap = Float.abs (mf -. me) in
      let bound = Float.max st.D.err_mean (I.width st.D.mean) in
      if gap > bound +. slack tol bound then
        [
          Diag.errorf ~code:"ABS004" ~loc:(node_loc circuit id)
            "fast-vs-exact mean gap %.6f exceeds certified bound %.6f (budget \
             %.6f, interval width %.6f)"
            gap bound st.D.err_mean
            (I.width st.D.mean);
        ]
      else [])

let check_budget_tolerance ?(tol = 0.05) sc =
  require sc D.Clark_normal "check_budget_tolerance";
  let budget = Absint.Statcheck.output_budget sc in
  let scale =
    Float.max 1.0 (I.hi (Absint.Statcheck.rv_state sc).D.mean)
  in
  if budget > tol *. scale then
    [
      Diag.warningf ~code:"ABS005" ~loc:Diag.Circuit
        ~hint:
          "deep or strongly reconvergent topologies accumulate one \
           cutoff/quadratic-erf step per level; prefer the exact engine (or \
           tighten the variation model) when the budget matters"
        "accumulated FASSTA budget %.1f ps is %.1f%% of the certified RV_O \
         mean bound %.1f ps (tolerance %.0f%%)"
        budget
        (100.0 *. budget /. scale)
        scale (100.0 *. tol);
    ]
  else []

(** The rule catalogue: one entry per stable diagnostic code, carrying the
    pack it belongs to, its default severity, and the invariant it protects.
    DESIGN.md's "Diagnostics & lint" table is generated from this data, and
    the test suite asserts every non-internal code has a trigger. *)

type pack =
  | Circuit_pack
  | Library_pack
  | Stat_pack
  | Bench_pack
  | Abs_pack
  | Par_pack
  | Flow_pack

type meta = {
  code : string;
  pack : pack;
  severity : Diag.Severity.t;  (** default; the registry can override *)
  title : string;
  protects : string;  (** the precondition the rule machine-checks *)
  internal : bool;
      (** true for corruption guards the public API cannot trigger *)
}

val all : meta list
(** Sorted by code; codes are never reused or renumbered. *)

val find : string -> meta option
val mem : string -> bool

val pack_name : pack -> string
val pp_meta : meta Fmt.t

(* Text and JSON rendering of lint results, plus the exit-code policy CI
   scripts key on. *)

let pp_summary ppf ds =
  let e = Diag.count Diag.Severity.Error ds
  and w = Diag.count Diag.Severity.Warning ds
  and i = Diag.count Diag.Severity.Info ds in
  if e = 0 && w = 0 && i = 0 then Fmt.string ppf "clean"
  else
    let plural n word =
      Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s")
    in
    Fmt.string ppf
      (String.concat ", "
         (List.filter_map Fun.id
            [
              (if e > 0 then Some (plural e "error") else None);
              (if w > 0 then Some (plural w "warning") else None);
              (if i > 0 then Some (plural i "info") else None);
            ]))

let pp ppf ds =
  List.iter (fun d -> Fmt.pf ppf "  %a@." Diag.pp d) (Diag.sort ds);
  Fmt.pf ppf "  %a@." pp_summary ds

let exit_code ?(strict = false) ds =
  if Diag.has_errors ds then 1
  else if strict && Diag.count Diag.Severity.Warning ds > 0 then 3
  else 0

let to_json targets =
  Diag.Json.to_string
    (Diag.Json.Obj
       [
         ("version", Diag.Json.Num 1.0);
         ( "targets",
           Diag.Json.List
             (List.map
                (fun (name, ds) ->
                  Diag.Json.Obj
                    [
                      ("name", Diag.Json.Str name);
                      ( "diagnostics",
                        Diag.Json.List
                          (List.map Diag.Json.of_diag (Diag.sort ds)) );
                    ])
                targets) );
       ])

let of_json text =
  let ( let* ) = Result.bind in
  let* doc = Diag.Json.parse text in
  let* () =
    match Diag.Json.member "version" doc with
    | Some (Diag.Json.Num 1.0) -> Ok ()
    | _ -> Error "missing or unsupported version"
  in
  let* targets =
    match Diag.Json.member "targets" doc with
    | Some (Diag.Json.List ts) -> Ok ts
    | _ -> Error "missing targets array"
  in
  List.fold_left
    (fun acc t ->
      let* parsed = acc in
      let* name =
        match Diag.Json.member "name" t with
        | Some (Diag.Json.Str s) -> Ok s
        | _ -> Error "target missing name"
      in
      let* diag_values =
        match Diag.Json.member "diagnostics" t with
        | Some (Diag.Json.List ds) -> Ok ds
        | _ -> Error "target missing diagnostics"
      in
      let* diags =
        List.fold_left
          (fun acc v ->
            let* ds = acc in
            let* d = Diag.Json.to_diag v in
            Ok (d :: ds))
          (Ok []) diag_values
      in
      Ok ((name, List.rev diags) :: parsed))
    (Ok []) targets
  |> Result.map List.rev

(* Fail-fast gate in front of the optimizer and experiment harnesses. *)

exception Rejected of Diag.t list

let () =
  Printexc.register_printer (function
    | Rejected ds ->
        Some
          (Fmt.str "Lint.Preflight.Rejected: %a@ %a" Report.pp_summary ds
             Report.pp ds)
    | _ -> None)

let gate ?(ignore_lint = false) ?registry ?model ~lib circuit =
  let findings = Engine.check_all ?registry ?model ~lib circuit in
  if (not ignore_lint) && Diag.has_errors findings then raise (Rejected findings);
  findings

(* Circuit rule pack.

   Structure first (delegated to Circuit.validate_diag — the checks live
   with the data structure), then whole-graph reachability, then the
   electrical-range rules that need cell tables: a gate whose output load
   falls outside its delay LUT will be silently clamp-extrapolated by every
   timing query, which is exactly the kind of quiet garbage the lint layer
   exists to surface before a 10k-iteration sizing loop consumes it. *)

module C = Netlist.Circuit

(* Gates (not inputs) from which no primary output is reachable. Dangling
   gates are excluded — they are already CIRC004. *)
let unreachable_diags circuit =
  let n = C.size circuit in
  let reaches = Array.make n false in
  let rec mark id =
    if not reaches.(id) then begin
      reaches.(id) <- true;
      Array.iter mark (C.fanins circuit id)
    end
  in
  List.iter mark (C.outputs circuit);
  List.filter_map
    (fun id ->
      if reaches.(id) || C.is_input circuit id then None
      else if C.fanouts circuit id = [] then None (* dangling: CIRC004 *)
      else
        Some
          (Diag.warningf ~code:"CIRC005"
             ~loc:(Diag.Gate (C.node_name circuit id))
             ~hint:"remove the cone or mark one of its sinks as an output"
             "gate %S cannot reach any primary output"
             (C.node_name circuit id)))
    (C.topological circuit)

let load_diags ?lib circuit =
  List.filter_map
    (fun id ->
      match C.cell circuit id with
      | None -> None
      | Some cell ->
          let load = C.load circuit id in
          let name = C.node_name circuit id in
          let table_max lut =
            let cols = Numerics.Lut.cols lut in
            cols.(Array.length cols - 1)
          in
          let table_min lut = (Numerics.Lut.cols lut).(0) in
          let delay_lut = cell.Cells.Cell.delay in
          let beyond_library =
            match lib with
            | None -> None
            | Some lib ->
                let strongest =
                  Cells.Library.max_cell lib ~fn:(Cells.Cell.fn cell)
                in
                let cap = table_max strongest.Cells.Cell.delay in
                if load > cap then
                  Some
                    (Diag.warningf ~code:"CIRC006" ~loc:(Diag.Gate name)
                       ~hint:"split the fanout or buffer the net"
                       "gate %S drives %.1f fF but even %s's table ends at \
                        %.1f fF"
                       name load
                       (Cells.Cell.name strongest)
                       cap)
                else None
          in
          (match beyond_library with
          | Some _ as d -> d
          | None ->
              if load > table_max delay_lut then
                Some
                  (Diag.warningf ~code:"CIRC007" ~loc:(Diag.Gate name)
                     ~hint:"upsize the driver or buffer the net"
                     "gate %S load %.1f fF is above cell %s's table max %.1f \
                      fF (delay would extrapolate)"
                     name load (Cells.Cell.name cell) (table_max delay_lut))
              else if load < table_min delay_lut then
                Some
                  (Diag.warningf ~code:"CIRC007" ~loc:(Diag.Gate name)
                     "gate %S load %.2f fF is below cell %s's table min %.2f \
                      fF (delay would extrapolate)"
                     name load (Cells.Cell.name cell) (table_min delay_lut))
              else None))
    (C.gates circuit)

let check ?lib circuit =
  C.validate_diag circuit @ unreachable_diags circuit @ load_diags ?lib circuit

(* Library rule pack.

   The sizing engines trust the library blindly: delay gains are computed
   from table differences, area recovery from the area ladder, load from
   input caps. Each rule here protects one of those trusts. Monotonicity is
   checked with a small epsilon so benign characterization noise on flat
   tables does not fire. *)

let eps = 1e-9

(* First (row, col) where the table decreases along the given axis, if any.
   [along_cols] checks each row left-to-right; otherwise each column
   top-to-bottom. *)
let non_monotone values ~along_cols =
  let nr = Array.length values in
  let nc = if nr = 0 then 0 else Array.length values.(0) in
  let exception Found of int * int in
  try
    if along_cols then
      for i = 0 to nr - 1 do
        for j = 0 to nc - 2 do
          if values.(i).(j + 1) +. eps < values.(i).(j) then raise (Found (i, j + 1))
        done
      done
    else
      for j = 0 to nc - 1 do
        for i = 0 to nr - 2 do
          if values.(i + 1).(j) +. eps < values.(i).(j) then raise (Found (i + 1, j))
        done
      done;
    None
  with Found (i, j) -> Some (i, j)

let first_negative values =
  let exception Found of int * int in
  try
    Array.iteri
      (fun i row ->
        Array.iteri (fun j v -> if v < 0.0 then raise (Found (i, j))) row)
      values;
    None
  with Found (i, j) -> Some (i, j)

let check_table ~cell ~table lut =
  let loc = Diag.Lut { cell; table } in
  let values = Numerics.Lut.values lut in
  let monotone_load =
    match non_monotone values ~along_cols:true with
    | Some (i, j) ->
        [
          Diag.errorf ~code:"LIB001" ~loc
            ~hint:"re-characterize the cell; timing tools assume delay grows \
                   with load"
            "%s table of %s decreases along the load axis at row %d, col %d"
            table cell i j;
        ]
    | None -> []
  in
  let monotone_slew =
    match non_monotone values ~along_cols:false with
    | Some (i, j) ->
        [
          Diag.warningf ~code:"LIB002" ~loc
            "%s table of %s decreases along the slew axis at row %d, col %d"
            table cell i j;
        ]
    | None -> []
  in
  let sign =
    match first_negative values with
    | Some (i, j) ->
        [
          Diag.errorf ~code:"LIB003" ~loc
            "%s table of %s has a negative entry %.3g at row %d, col %d" table
            cell
            values.(i).(j)
            i j;
        ]
    | None -> []
  in
  monotone_load @ monotone_slew @ sign

let check_cell (c : Cells.Cell.t) =
  let name = Cells.Cell.name c in
  let params =
    (if Cells.Cell.input_cap c <= 0.0 then
       [
         Diag.errorf ~code:"LIB004" ~loc:(Diag.Cell name)
           "cell %s has non-positive input cap %.3g" name (Cells.Cell.input_cap c);
       ]
     else [])
    @
    if Cells.Cell.area c <= 0.0 then
      [
        Diag.errorf ~code:"LIB004" ~loc:(Diag.Cell name)
          "cell %s has non-positive area %.3g" name (Cells.Cell.area c);
      ]
    else []
  in
  check_table ~cell:name ~table:"delay" c.Cells.Cell.delay
  @ check_table ~cell:name ~table:"output_slew" c.Cells.Cell.output_slew
  @ params

let check_group lib fn =
  let cells = Cells.Library.sizes_of_fn lib fn in
  let ladder = Cells.Library.strengths lib in
  let fn_name = Cells.Fn.name fn in
  let missing =
    if Array.length cells < Array.length ladder then
      [
        Diag.warningf ~code:"LIB005" ~loc:(Diag.Cell fn_name)
          ~hint:"the sizing ladder silently shrinks for this function"
          "function %s has %d drive strengths; the library ladder has %d"
          fn_name (Array.length cells) (Array.length ladder);
      ]
    else []
  in
  let areas_monotone =
    let bad = ref None in
    Array.iteri
      (fun i c ->
        if
          i + 1 < Array.length cells
          && Cells.Cell.area cells.(i + 1) +. eps < Cells.Cell.area c
          && !bad = None
        then bad := Some i)
      cells;
    match !bad with
    | Some i ->
        [
          Diag.warningf ~code:"LIB006" ~loc:(Diag.Cell fn_name)
            "function %s: area decreases from drive %d (%.2f) to drive %d \
             (%.2f) despite growing strength"
            fn_name i
            (Cells.Cell.area cells.(i))
            (i + 1)
            (Cells.Cell.area cells.(i + 1));
        ]
    | None -> []
  in
  missing @ areas_monotone

let check lib =
  List.concat_map check_cell (Cells.Library.cells lib)
  @ List.concat_map (check_group lib) (Cells.Library.functions lib)

(** Runtime LUT-extrapolation monitor (LIB007). {!Numerics.Lut} counts every
    query clamped to a table edge; this module turns those counters into one
    diagnostic per cell. Reset before a run, collect after. *)

val reset : Cells.Library.t -> unit
(** Zero the out-of-bounds counters of every table in the library. *)

val collect : Cells.Library.t -> Diag.t list
(** One LIB007 Warning per cell whose delay or slew table clamped at least
    one query since the last {!reset}; counters are left intact. *)

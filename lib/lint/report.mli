(** Rendering and CI plumbing for lint results: pretty text, the JSON
    document the CLI emits (and can parse back), and exit codes. *)

val pp : Diag.t list Fmt.t
(** One line per diagnostic plus a summary line. *)

val pp_summary : Diag.t list Fmt.t
(** e.g. ["2 errors, 1 warning"] or ["clean"]. *)

val exit_code : ?strict:bool -> Diag.t list -> int
(** 0 clean (or info-only), 1 when errors are present, 3 when only warnings
    are present and [strict] is set (default: warnings exit 0, like most
    linters). Never 2 — cmdliner uses 2 for CLI usage errors. *)

val to_json : (string * Diag.t list) list -> string
(** The CLI's [--format=json] document: named targets, each with its sorted
    diagnostics. *)

val of_json : string -> ((string * Diag.t list) list, string) result
(** Parse {!to_json} output back — the round-trip contract. *)

(** Per-rule configuration: disable codes entirely or override their
    severity. Applied as a post-filter, so rule packs always emit at the
    catalogue's default severity and the registry rewrites/drops findings. *)

type t

val default : t
(** Every rule enabled at its catalogue severity. *)

val disable : t -> string -> t
(** Disable a rule code. Unknown codes raise [Invalid_argument]. *)

val override : t -> code:string -> severity:Diag.Severity.t -> t
(** Force a rule's severity. Unknown codes raise [Invalid_argument]. *)

val of_spec : ?disable:string list -> ?overrides:string list -> unit -> (t, string) result
(** Build from CLI-style specs: [disable] is a list of codes, [overrides] a
    list of [CODE=error|warning|info] strings. Returns [Error] with a
    human-readable message on unknown codes or malformed specs. *)

val apply : t -> Diag.t list -> Diag.t list
(** Drop disabled findings, rewrite overridden severities, sort. *)

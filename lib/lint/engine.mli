(** Rule-pack orchestration: run packs against a circuit, a library, and a
    variation model, with the registry applied to every result. *)

val check_circuit :
  ?registry:Registry.t -> ?lib:Cells.Library.t -> Netlist.Circuit.t -> Diag.t list

val check_library : ?registry:Registry.t -> Cells.Library.t -> Diag.t list

val check_model : ?registry:Registry.t -> Variation.Model.t -> Diag.t list

val check_all :
  ?registry:Registry.t ->
  ?model:Variation.Model.t ->
  lib:Cells.Library.t ->
  Netlist.Circuit.t ->
  Diag.t list
(** Circuit + library + model packs in one sorted list — what the sizer's
    preflight gate runs. [model] defaults to {!Variation.Model.default}. *)

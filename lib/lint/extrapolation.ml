(* Clamp-and-warn: interpolation outside the characterized grid still clamps
   (the conservative-corners behavior timing tools expect) but is no longer
   silent — the counters Lut.query maintains surface here as one LIB007
   diagnostic per cell. *)

let tables (c : Cells.Cell.t) =
  [ ("delay", c.Cells.Cell.delay); ("output_slew", c.Cells.Cell.output_slew) ]

let reset lib =
  Cells.Library.iter_cells lib ~f:(fun c ->
      List.iter (fun (_, lut) -> Numerics.Lut.reset_oob lut) (tables c))

let collect lib =
  List.concat_map
    (fun c ->
      let counts =
        List.filter_map
          (fun (table, lut) ->
            let n = Numerics.Lut.oob_count lut in
            if n > 0 then Some (table, n) else None)
          (tables c)
      in
      match counts with
      | [] -> []
      | (table, _) :: _ ->
          let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
          [
            Diag.warningf ~code:"LIB007"
              ~loc:(Diag.Lut { cell = Cells.Cell.name c; table })
              ~hint:"widen the characterization grid or keep loads/slews in \
                     range"
              "cell %s: %d quer%s outside the table were clamp-extrapolated \
               (%s)"
              (Cells.Cell.name c) total
              (if total = 1 then "y" else "ies")
              (String.concat ", "
                 (List.map (fun (t, n) -> Printf.sprintf "%s: %d" t n) counts));
          ])
    (Cells.Library.cells lib)

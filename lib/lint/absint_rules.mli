(** The abstract-interpretation rule pack (ABS001–ABS005): cross-checks of
    concrete SSTA engine results against statcheck's certified enclosures.
    Any violation is an engine (or certifier) defect — the enclosures are
    sound by construction — so the containment rules default to Error.

    The engine results come in as lookup functions rather than engine
    handles, keeping this library independent of [ssta]: pass
    [Ssta.Fullssta.moments full] or an indexing closure over
    [Ssta.Fassta.run]'s array. *)

val check_fullssta :
  ?tol:float ->
  Absint.Statcheck.t ->
  (Netlist.Circuit.id -> Numerics.Clark.moments) ->
  Diag.t list
(** ABS001/ABS002 per node: the FULLSSTA mean must lie in the certified
    mean interval and the variance below the certified bound. Requires a
    {!Absint.Domain.Distribution_free} run (raises [Invalid_argument]
    otherwise — Clark-normal enclosures do not certify discrete pdfs).
    [tol] is a relative slack (default 1e-9) scaled by the interval
    endpoints' magnitude. *)

val check_fassta :
  ?tol:float ->
  engine:[ `Fast | `Exact ] ->
  Absint.Statcheck.t ->
  (Netlist.Circuit.id -> Numerics.Clark.moments) ->
  Diag.t list
(** ABS003 per node: the engine's moments must lie inside the Clark-normal
    enclosure (mean in interval, sigma below bound). Works for both the
    quadratic-erf engine and the [~exact:true] one — the enclosure is
    engine-inclusive. Requires a {!Absint.Domain.Clark_normal} run (raises
    [Invalid_argument] otherwise). *)

val check_budget :
  ?tol:float ->
  Absint.Statcheck.t ->
  fast:(Netlist.Circuit.id -> Numerics.Clark.moments) ->
  exact:(Netlist.Circuit.id -> Numerics.Clark.moments) ->
  Diag.t list
(** ABS004 per node: |fast mean − exact mean| must not exceed the certified
    deviation bound max(accumulated step budget, mean-interval width).
    Requires a Clark-normal run. *)

val check_budget_tolerance : ?tol:float -> Absint.Statcheck.t -> Diag.t list
(** ABS005 (Warning): flags the circuit when the accumulated output budget
    exceeds [tol] (default 0.05) as a fraction of the certified RV_O mean
    upper bound — FASSTA is formally certified but only loosely. Requires a
    Clark-normal run. *)

(* The rule catalogue. Codes are append-only: once a code has shipped it is
   never reused or renumbered, so CI greps and severity overrides stay
   stable across releases. *)

type pack =
  | Circuit_pack
  | Library_pack
  | Stat_pack
  | Bench_pack
  | Abs_pack
  | Par_pack
  | Flow_pack

type meta = {
  code : string;
  pack : pack;
  severity : Diag.Severity.t;
  title : string;
  protects : string;
  internal : bool;
}

let e = Diag.Severity.Error
let w = Diag.Severity.Warning

let mk ?(internal = false) code pack severity title protects =
  { code; pack; severity; title; protects; internal }

let all =
  [
    mk "CIRC001" Circuit_pack e "combinational cycle"
      "DAG-ness: every traversal (levelize, SSTA, sizing) assumes ascending \
       ids are a topological order";
    mk "CIRC002" Circuit_pack e "multiply-driven net"
      "single-driver nets: arrival/load propagation assumes one driver per net";
    mk "CIRC003" Circuit_pack e "floating net (undefined reference)"
      "every fanin must resolve to a driven net or primary input";
    mk "CIRC004" Circuit_pack w "dangling gate"
      "no dead drivers: a gate with no fanout that is not an output is dead \
       area and skews load/area metrics";
    mk "CIRC005" Circuit_pack w "unreachable logic"
      "every gate should reach a primary output; unreachable logic cannot \
       affect RV_O yet still burns optimizer moves";
    mk "CIRC006" Circuit_pack w "load beyond library drive capability"
      "even the strongest drive for the function would extrapolate its delay \
       table at this load";
    mk "CIRC007" Circuit_pack w "load outside current cell's LUT range"
      "NLDM bilinear interpolation is only calibrated inside the table; \
       clamped extrapolation is a modeling lie";
    mk "CIRC008" Circuit_pack e "no primary outputs"
      "RV_O is a max over outputs — an empty output set makes SSTA undefined";
    mk "CIRC009" Circuit_pack e "no primary inputs"
      "arrival propagation needs at least one source";
    mk ~internal:true "CIRC010" Circuit_pack e "corrupt node table"
      "name-table/arity invariants the public construction API enforces; \
       violations mean memory corruption or an internal bug";
    mk "LIB001" Library_pack e "table non-monotone along load axis"
      "delay/slew must not decrease with load — non-monotone tables break \
       the sizing gain model and indicate corrupt characterization";
    mk "LIB002" Library_pack w "table non-monotone along slew axis"
      "delay/slew should not decrease with input slew; mild violations \
       exist in real libraries, hence Warning";
    mk "LIB003" Library_pack e "negative delay or slew entry"
      "arrival times are sums of non-negative arcs; a negative entry breaks \
       monotone arrival propagation";
    mk "LIB004" Library_pack e "non-positive input cap or area"
      "load computation and area recovery divide and rank by these";
    mk "LIB005" Library_pack w "missing drive strengths"
      "the sizing ladder (next_up/next_down) expects every function at every \
       strength; gaps silently shrink the search space";
    mk "LIB006" Library_pack w "area non-monotone vs drive strength"
      "area recovery assumes downsizing saves area";
    mk "LIB007" Library_pack w "LUT extrapolation observed at runtime"
      "queries outside the characterized table were clamped; results there \
       are extrapolations, not measurements";
    mk "STAT001" Stat_pack e "discrete pdf mass not 1"
      "FULLSSTA's cross-sum/CDF-product algebra assumes normalized pdfs";
    mk "STAT002" Stat_pack e "negative variance, mass, or sigma component"
      "second moments and probability masses are non-negative by definition";
    mk "STAT003" Stat_pack w "sigma/mu outside the sane range"
      "the paper's setup lives at sigma/mu of a few percent; a ratio above \
       0.5 means the normal approximation (and Clark) is meaningless";
    mk "STAT004" Stat_pack e "Clark precondition a > 0 violated"
      "Clark's max formulas divide by a = sqrt(varA + varB - 2*cov); a \
       zero-sigma model degenerates every max";
    mk "STAT005" Stat_pack e "incremental SSTA diverged from the scratch oracle"
      "paranoid mode re-runs the from-scratch engine after every incremental \
       update; any disagreement beyond the decay budget means the dirty-cone \
       bookkeeping dropped a dependency";
    mk "ABS001" Abs_pack e "FULLSSTA mean escapes its certified interval"
      "statcheck's distribution-free enclosures are sound for any engine \
       faithful to the model; a mean outside them is an engine defect, not \
       noise";
    mk "ABS002" Abs_pack e "FULLSSTA variance exceeds its certified bound"
      "Var(max) <= varA + varB and Popoviciu's support bound hold for any \
       independent operands; crossing them means the pdf algebra corrupted \
       second moments";
    mk "ABS003" Abs_pack e "FASSTA moments escape the certified enclosure"
      "the Clark-normal enclosures contain the exact, blended and \
       cutoff-branch evaluations for any operands inside them — both \
       FASSTA engines must land inside at every node";
    mk "ABS004" Abs_pack e "fast-vs-exact deviation exceeds the certified bound"
      "both engine trajectories are enclosed in the same mean interval, so \
       their pointwise gap is bounded by its width (and first-order by the \
       accumulated step budget)";
    mk "ABS005" Abs_pack w "circuit-wide FASSTA error budget above tolerance"
      "when the accumulated cutoff/quadratic-erf budget at the outputs is a \
       large fraction of the arrival itself, FASSTA is operating outside \
       its certified-accuracy regime on this circuit";
    mk "BENCH001" Bench_pack e "bench syntax error"
      "the .bench grammar: NAME = OP(args) and INPUT/OUTPUT declarations";
    mk "BENCH002" Bench_pack e "unsupported gate or arity"
      "technology mapping covers the ISCAS-85 primitive set plus the \
       writer's superset dialect, nothing else";
    mk "PAR000" Par_pack e "unparseable source file"
      "statrace analyzes the project's own sources; a file the compiler \
       frontend rejects cannot be certified race-free";
    mk "PAR001" Par_pack e "unprotected shared ref write"
      "module-global refs written from domain-reachable code need Atomic.t \
       or a mutex — plain stores are lost-update races under parallelism";
    mk "PAR002" Par_pack e "unprotected mutable field or container write"
      "mutable record fields and Hashtbl/Buffer/Queue/Stack are not \
       thread-safe; concurrent mutation corrupts their internal structure";
    mk "PAR003" Par_pack e "unprotected shared array or bytes write"
      "Array.set/Bytes.set on state aliased across a spawn races with \
       concurrent readers and writers of the same slot";
    mk "PAR004" Par_pack w "Domain.DLS key created in domain-reachable code"
      "a DLS key minted per call is a fresh, unshared slot every time — the \
       state silently stops being domain-local-but-persistent";
    mk "PAR005" Par_pack w "split atomic read-modify-write"
      "an Atomic.get/Atomic.set pair on the same location is not atomic as \
       a unit; use fetch_and_add/exchange/compare_and_set";
    mk "PAR006" Par_pack e "spawn closure writes captured mutable local"
      "a mutable allocated outside the thunk but written inside it is \
       shared across domains without any protocol";
    mk "PAR007" Par_pack w "stale statrace suppression"
      "a pragma or allow-file entry that suppresses nothing hides future \
       regressions at that site; the allowlist must stay verified";
    mk "FLOW000" Flow_pack e "unparseable source file"
      "statflow analyzes the project's own sources; a file the compiler \
       frontend rejects cannot be certified allocation-lean or deterministic";
    mk "HOT001" Flow_pack w "construction allocation on a hot path"
      "tuples, records, variant payloads and list conses minted per trial \
       turn the sizer's inner loop into GC pressure — the statkern floor \
       assumes the erf/exp arithmetic dominates, not the minor heap";
    mk "HOT002" Flow_pack w "closure allocation on a hot path"
      "a fun literal built per call captures its environment on the heap; \
       hoist it or take the environment as arguments";
    mk "HOT003" Flow_pack w "stdlib builder allocation on a hot path"
      "Array.make/List.map-family calls allocate their full result per \
       invocation; hot kernels should reuse preallocated scratch instead";
    mk "HOT004" Flow_pack Diag.Severity.Info "boxed-float return heuristic"
      "a function whose tail is float arithmetic boxes its result at every \
       out-of-inline call site; [@inline] or unboxed records avoid it \
       (heuristic — flambda may already sink the box)";
    mk "EXC001" Flow_pack e "raise may skip a resource release"
      "a raise reachable after open_in/Unix.openfile/Mutex.lock in a \
       Fun.protect-free region leaks the handle or deadlocks the lock on \
       the exceptional path";
    mk "EXC002" Flow_pack w "partial stdlib call on a hot path"
      "List.hd/Option.get/Hashtbl.find raise on the empty case; hot paths \
       should use total variants (find_opt, pattern matches) so the sizer \
       cannot die mid-optimization";
    mk "DET001" Flow_pack e "order-sensitive Hashtbl traversal in a result path"
      "Hashtbl.fold/iter order is unspecified and seed-dependent; any \
       result built from it breaks the serial-vs-parallel bit-exactness \
       statserve gates on, unless the result is immediately sorted";
    mk "DET002" Flow_pack e "wall-clock read in a result path"
      "Sys.time/Unix.gettimeofday in result-producing code makes reruns \
       non-reproducible; clocks belong in the obs layer, not in results";
    mk "DET003" Flow_pack e "ambient Random in a result path"
      "the global Random state is shared, unseeded, and (since 5.0) \
       per-domain; results must draw from an explicit seeded generator \
       (Random.State or Numerics.Rng)";
    mk "FLOW007" Flow_pack w "stale statflow suppression"
      "a pragma or allow-file entry that suppresses nothing hides future \
       regressions at that site; the allowlist must stay verified";
  ]

let find code = List.find_opt (fun m -> m.code = code) all
let mem code = Option.is_some (find code)

let pack_name = function
  | Circuit_pack -> "circuit"
  | Library_pack -> "library"
  | Stat_pack -> "statistical"
  | Bench_pack -> "bench"
  | Abs_pack -> "abstract"
  | Par_pack -> "parallel"
  | Flow_pack -> "flow"

let pp_meta ppf m =
  Fmt.pf ppf "%s [%s, default %a] %s — %s" m.code (pack_name m.pack)
    Diag.Severity.pp m.severity m.title m.protects

(** The circuit rule pack (CIRC001–CIRC010): structural diagnostics from
    {!Netlist.Circuit.validate_diag} plus reachability and electrical-range
    checks. Pass [lib] to enable CIRC006 (load beyond any available drive
    strength for the gate's function). *)

val check : ?lib:Cells.Library.t -> Netlist.Circuit.t -> Diag.t list
(** Unsorted, at catalogue default severities (the registry sorts/filters). *)

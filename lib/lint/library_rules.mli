(** The library rule pack (LIB001–LIB006): per-cell NLDM table sanity
    (monotonicity, sign), electrical parameters, and per-function ladder
    completeness/area monotonicity. LIB007 (runtime extrapolation) lives in
    {!Extrapolation}. *)

val check : Cells.Library.t -> Diag.t list
(** Unsorted, at catalogue default severities. *)

val check_cell : Cells.Cell.t -> Diag.t list
(** The per-cell subset (LIB001–LIB004) for a single cell. *)

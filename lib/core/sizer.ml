(* StatisticalGreedy — the paper's optimization engine (Fig. 2).

     repeat
       FULLSSTA                       (accurate outer annotation)
       trace the WNSS path
       for every gate on the path:
         extract a 2-level TFI/TFO window
         try every available size, scoring windows with FASSTA
         schedule the best size
       resize all scheduled gates
     until constraints are met or no further improvement

   One metric drives and judges: the exact-erf Clark global cost (the same
   evaluation the inner loop scores trials with), so inner gains are never
   vetoed by cross-engine bias. Only states that improve it are kept (hill
   climbing with memory); FULLSSTA provides annotations, traces, and the
   final reported moments. *)

let log_src = Logs.Src.create "statsize.sizer" ~doc:"StatisticalGreedy sizing"

module Log = (val Logs.src_log log_src)

(* statobs: outer-loop progress counters. Windows evaluated/skipped and
   moves committed mirror the result record's fields but accumulate across
   every optimize call in a run, which is what the CI counter gate diffs. *)
let c_iterations = Obs.Counters.make "sizer.iterations"
let c_windows_evaluated = Obs.Counters.make "sizer.windows.evaluated"
let c_windows_skipped = Obs.Counters.make "sizer.windows.skipped"
let c_moves_committed = Obs.Counters.make "sizer.moves.committed"

(* How path resizes are applied within one outer iteration:
   [Batch] is the paper's literal pseudocode (schedule all, resize at the
   end); [Sequential] commits each winning resize immediately and refreshes
   the window's electrical state, which resolves intra-batch load conflicts
   between neighbouring path gates. Sequential is the default; the ablation
   bench compares both. *)
type commit_mode = Sequential | Batch

(* Which statistical-critical gates each outer iteration visits: the single
   dominant WNSS path (the paper's pseudocode) or the union of per-output
   WNSS paths. All outputs contribute to RV_O's variance (§2.1), so the
   forest sweep keeps improving after the dominant path saturates; it is
   the default, with the single-path variant kept for the ablation bench. *)
type path_source = Dominant_path | All_output_paths | Critical_cone

type config = {
  objective : Objective.t;
  model : Variation.Model.t;
  window_depth : int;
  max_iterations : int;
  samples : int; (* FULLSSTA pdf points *)
  min_improvement : float; (* relative outer-cost improvement to continue *)
  patience : int; (* consecutive non-improving iterations tolerated *)
  move_threshold : float; (* minimum window-cost gain (ps) to commit a move *)
  area_weight : float; (* ps of move cost per unit of added area *)
  commit_mode : commit_mode;
  path_source : path_source;
  evaluation : Window.mode; (* trial scoring: windowed (paper) or global *)
  electrical : Sta.Electrical.config;
  incremental : bool; (* dirty-cone engines instead of per-iteration rebuilds *)
  paranoid : bool; (* cross-check every incremental update against scratch *)
  fused_kernels : bool;
      (* statkern fused/batched LUT-erf kernels — bit-identical results,
         [false] keeps the scalar reference engine (benchmark baseline) *)
  tolerance : float;
      (* > 0 opts window verdicts into the ε-certified quadratic-Φ regime
         (requires [fused_kernels]); 0 = exact scoring everywhere *)
  window_domains : int;
      (* 0 (default) = the serial engine; >= 1 routes each iteration's
         window sweep through the Parwin round loop (parallel-evaluate /
         serial-commit, [window_domains - 1] worker domains) — final
         sizings are byte-identical to serial for every domain count *)
}

let default_config =
  {
    objective = Objective.create ~alpha:3.0;
    model = Variation.Model.default;
    window_depth = 2;
    max_iterations = 120;
    samples = 12;
    min_improvement = 0.0;
    patience = 4;
    move_threshold = 0.02;
    area_weight = 0.0;
    commit_mode = Sequential;
    path_source = Critical_cone;
    evaluation = Window.Global;
    electrical = Sta.Electrical.default_config;
    incremental = true;
    paranoid = false;
    fused_kernels = true;
    tolerance = 0.0;
    window_domains = 0;
  }

(* The "Original" baseline: pure mean delay, with a small per-move gain
   threshold so the baseline stays area-lean (a real mean optimizer stops at
   diminishing returns rather than doubling every gate). *)
(* The "Original" baseline: pure mean delay with a coarser per-move gain
   threshold — a mean optimizer run to diminishing returns. (An area-aware
   variant is available through [area_weight], but because sigma scales as
   1/size here, any baseline that squeezes the mean harder also pre-crushes
   sigma and removes the paper's starting point; see DESIGN.md §5.7.) *)
let mean_delay_config =
  { default_config with objective = Objective.mean_delay; move_threshold = 0.5 }

type iteration = {
  index : int;
  cost : float;
  mean : float;
  sigma : float;
  area : float;
  resizes : int;
  path_length : int;
}

type stop_reason = Converged | No_candidate | Iteration_limit

type result = {
  config : config;
  initial_moments : Numerics.Clark.moments;
  final_moments : Numerics.Clark.moments;
  initial_area : float;
  final_area : float;
  iterations : iteration list; (* chronological *)
  stop_reason : stop_reason;
  total_resizes : int;
  cutoff_fraction : float; (* FASSTA (5)/(6) hit rate across the whole run *)
  windows_evaluated : int; (* gate windows actually scored *)
  windows_skipped : int; (* path gates certified inert and pruned *)
  runtime_s : float;
}

let fullssta_config config =
  {
    Ssta.Fullssta.samples = config.samples;
    model = config.model;
    electrical = config.electrical;
  }

(* One outer iteration: trace the WNSS path, evaluate every gate on it
   through [window] (fresh per iteration on the scratch path, persistent
   and refreshed by the caller on the incremental path), apply resizes per
   the commit mode. Returns the applied resizes (gate, previous, new) for
   potential rollback, plus window counts:
   (schedule, path_length, windows_evaluated, windows_skipped).

   [skip], when present, is Absint.Dominance's certified skip predicate: the
   gate provably cannot influence the WNSS objective under the current
   sizing (its whole cone is margin-sigma dominated and electrically
   isolated from every live gate), so its window evaluation is pure cost.
   Every root is still traced — pruning filters gates, not outputs, so the
   path itself is identical to the unpruned run's. *)
let run_iteration config ~lib ?skip circuit full window stats_acc =
  (* The statistical traces do not depend on α (they rank by variance
     structure); at α = 0 the cone still covers the deterministic critical
     forest plus the near-critical siblings whose pin loads burden critical
     drivers — visiting them lets the mean optimizer downsize them. *)
  let path =
    match config.path_source with
    | Dominant_path -> Wnss.trace ~model:config.model circuit full
    | All_output_paths -> Wnss.trace_all_outputs ~model:config.model circuit full
    | Critical_cone -> Wnss.critical_cone ~model:config.model circuit full
  in
  let gates_on_path =
    List.filter (fun id -> not (Netlist.Circuit.is_input circuit id)) path
  in
  let visited =
    match skip with
    | None -> gates_on_path
    | Some p -> List.filter (fun id -> not (p id)) gates_on_path
  in
  (* The window may be persistent across iterations, so its FASSTA counters
     accumulate: account the delta this iteration adds, not the totals. *)
  let w_stats = Window.fassta_stats window in
  let cutoff0 = w_stats.Ssta.Fassta.cutoff_hits
  and blended0 = w_stats.Ssta.Fassta.blended in
  let applied = ref [] in
  let pending = ref [] in
  List.iter
    (fun gate ->
      let sub =
        Netlist.Cone.extract circuit ~pivot:gate ~depth:config.window_depth
      in
      let verdict = Window.best_size window ~lib sub in
      let current = Netlist.Circuit.cell_exn circuit gate in
      if not (Cells.Cell.equal verdict.Window.best current) then begin
        let gain = verdict.Window.current_cost -. verdict.Window.best_cost in
        if gain > config.move_threshold then begin
          (* the move = pivot resize plus its fanin co-sizing *)
          let moves =
            (gate, current, verdict.Window.best)
            :: List.map
                 (fun (fi, cell) ->
                   (fi, Netlist.Circuit.cell_exn circuit fi, cell))
                 verdict.Window.co_resizes
          in
          match config.commit_mode with
          | Sequential ->
              List.iter
                (fun (g, _, cell) -> Netlist.Circuit.set_cell circuit g cell)
                moves;
              if config.incremental then
                Window.commit_incremental window
                  ~resized:(List.map (fun (g, _, _) -> g) moves)
              else Window.commit window sub;
              applied := List.rev_append moves !applied
          | Batch -> pending := List.rev_append moves !pending
        end
      end)
    visited;
  List.iter
    (fun (gate, _, best) -> Netlist.Circuit.set_cell circuit gate best)
    !pending;
  if config.incremental && !pending <> [] then
    Window.commit_incremental window
      ~resized:(List.map (fun (g, _, _) -> g) !pending);
  stats_acc :=
    ( fst !stats_acc + w_stats.Ssta.Fassta.cutoff_hits - cutoff0,
      snd !stats_acc + w_stats.Ssta.Fassta.blended - blended0 );
  ( List.rev_append !pending !applied,
    List.length path,
    List.length visited,
    List.length gates_on_path - List.length visited )

(* Parallel-evaluate / serial-commit variant of {!run_iteration} (statserve
   tentpole). Fixed-size chunks of the visited-gate sequence are evaluated
   concurrently across the Parwin replica pool, then the verdicts are walked
   serially in gate order. In [Sequential] mode the first commit-worthy
   verdict is committed exactly as the serial engine would commit it, the
   rest of the chunk is discarded (those gates re-chunk next round, so they
   are re-evaluated against the post-commit state), and the commit is queued
   for replica replay. Every verdict that is *used* was therefore computed
   against state bit-identical to the serial engine's at the same point, so
   the move sequence — and the final sizing — is byte-identical to serial
   mode for every domain count. In [Batch] mode no commits happen during
   the sweep, so chunks stream through without restarts (the serial Batch
   semantics are already parallel). *)
let run_iteration_par config ?skip circuit full window pool stats_acc =
  let path =
    match config.path_source with
    | Dominant_path -> Wnss.trace ~model:config.model circuit full
    | All_output_paths -> Wnss.trace_all_outputs ~model:config.model circuit full
    | Critical_cone -> Wnss.critical_cone ~model:config.model circuit full
  in
  let gates_on_path =
    List.filter (fun id -> not (Netlist.Circuit.is_input circuit id)) path
  in
  let visited =
    match skip with
    | None -> gates_on_path
    | Some p -> List.filter (fun id -> not (p id)) gates_on_path
  in
  let w_stats = Window.fassta_stats window in
  let cutoff0 = w_stats.Ssta.Fassta.cutoff_hits
  and blended0 = w_stats.Ssta.Fassta.blended in
  let gates = Array.of_list visited in
  let n = Array.length gates in
  let applied = ref [] in
  let pending = ref [] in
  let pos = ref 0 in
  while !pos < n do
    let len = Int.min Parwin.chunk_size (n - !pos) in
    let verdicts =
      Parwin.eval_chunk pool ~master:window ~circuit ~gates ~pos:!pos ~len
    in
    let committed = ref false in
    let used = ref 0 in
    while (not !committed) && !used < len do
      let v = verdicts.(!used) in
      incr used;
      let gate = v.Parwin.gate in
      let current = Netlist.Circuit.cell_exn circuit gate in
      if not (Cells.Cell.equal v.Parwin.best current) then begin
        let gain = v.Parwin.current_cost -. v.Parwin.best_cost in
        if gain > config.move_threshold then begin
          let moves =
            (gate, current, v.Parwin.best)
            :: List.map
                 (fun (fi, cell) ->
                   (fi, Netlist.Circuit.cell_exn circuit fi, cell))
                 v.Parwin.co_resizes
          in
          match config.commit_mode with
          | Sequential ->
              List.iter
                (fun (g, _, cell) -> Netlist.Circuit.set_cell circuit g cell)
                moves;
              Window.commit_incremental window
                ~resized:(List.map (fun (g, _, _) -> g) moves);
              Parwin.record_commit pool
                (List.map (fun (g, _, cell) -> (g, cell)) moves);
              applied := List.rev_append moves !applied;
              committed := true
          | Batch -> pending := List.rev_append moves !pending
        end
      end
    done;
    Parwin.count_discarded (len - !used);
    pos := !pos + !used
  done;
  List.iter
    (fun (gate, _, best) -> Netlist.Circuit.set_cell circuit gate best)
    !pending;
  if !pending <> [] then begin
    let resized = List.map (fun (g, _, _) -> g) !pending in
    Window.commit_incremental window ~resized;
    Parwin.record_commit pool
      (List.map (fun (g, _, cell) -> (g, cell)) !pending)
  end;
  stats_acc :=
    ( fst !stats_acc + w_stats.Ssta.Fassta.cutoff_hits - cutoff0,
      snd !stats_acc + w_stats.Ssta.Fassta.blended - blended0 );
  ( List.rev_append !pending !applied,
    List.length path,
    n,
    List.length gates_on_path - n )

(* The parallel round loop replays commits on bit-identical replicas and
   needs trial scores that are comparable across replicas: exact Global
   scoring on the incremental engines. Anything else falls back to the
   serial engine (the tolerance regime's audit trail is master-local, and
   Windowed scores depend on per-window FASSTA state we don't replicate). *)
let parallel_eligible config =
  config.window_domains >= 1 && config.incremental
  && config.evaluation = Window.Global
  && config.tolerance = 0.0

let optimize ?(ignore_lint = false) ?(prune = false) ?(config = default_config)
    ~lib circuit =
  Obs.Span.with_ "sizer.optimize" @@ fun () ->
  (* Preflight: refuse garbage inputs before the first FULLSSTA. Errors
     raise Lint.Preflight.Rejected (unless the caller opted out); warnings
     are logged and the run proceeds. *)
  let findings =
    Lint.Preflight.gate ~ignore_lint ~model:config.model ~lib circuit
  in
  List.iter
    (fun d ->
      if d.Diag.severity <> Diag.Severity.Error then
        Log.warn (fun m -> m "preflight: %a" Diag.pp d))
    findings;
  Lint.Extrapolation.reset lib;
  (* statflow: safe — feeds runtime_s metadata only, never the sized result *)
  let started = Sys.time () in
  let full_cfg = fullssta_config config in
  let stats_acc = ref (0, 0) in
  let full0 = Ssta.Fullssta.run ~config:full_cfg circuit in
  let initial_moments = Ssta.Fullssta.output_moments full0 in
  let initial_area = Netlist.Circuit.total_area circuit in
  let iteration_record index full resizes path_length =
    let m = Ssta.Fullssta.output_moments full in
    {
      index;
      cost = Objective.cost_of_moments config.objective m;
      mean = m.Numerics.Clark.mean;
      sigma = Numerics.Clark.sigma m;
      area = Netlist.Circuit.total_area circuit;
      resizes;
      path_length;
    }
  in
  (* Hill climbing with memory: iterations are always applied (never rolled
     back mid-run, so the search can traverse cost plateaus), the best cell
     assignment seen is remembered, and the loop stops after [patience]
     consecutive iterations without a new best — then the best state is
     restored. *)
  let snapshot () =
    List.map
      (fun id -> (id, Netlist.Circuit.cell_exn circuit id))
      (Netlist.Circuit.gates circuit)
  in
  let restore cells =
    List.iter (fun (id, cell) -> Netlist.Circuit.set_cell circuit id cell) cells
  in
  (* The acceptance metric: exact-Clark moments on fresh electrical state —
     identical in kind to Window.Global's trial scoring. The incremental
     path reads the same value off the persistent window's committed base
     (maintained bit-equal to a scratch pass by the exact-stop resync)
     instead of recomputing it from scratch. *)
  let judge_cost () =
    let electrical = Sta.Electrical.compute ~config:config.electrical circuit in
    let scratch =
      Array.make (Netlist.Circuit.size circuit)
        (Numerics.Clark.moments ~mean:0.0 ~var:0.0)
    in
    Ssta.Fassta.propagate_into ~exact:true ~model:config.model ~circuit
      ~electrical scratch;
    Objective.cost_of_rv ~exact:true config.objective
      (fun o -> scratch.(o))
      (Netlist.Circuit.outputs circuit)
  in
  let make_window full =
    Window.create ~mode:config.evaluation ~incremental:config.incremental
      ~area_weight:config.area_weight ~fused:config.fused_kernels
      ~tolerance:config.tolerance ~move_threshold:config.move_threshold
      ~circuit ~model:config.model ~objective:config.objective ~full ()
  in
  (* The persistent window (incremental mode): one allocation for the whole
     run, its shared electrical state and cached base arrivals kept in sync
     by the incremental commits; refreshed at each iteration start. The
     scratch path allocates a fresh window per iteration instead. *)
  let persistent = if config.incremental then Some (make_window full0) else None in
  (* Parallel window pool (window_domains >= 1): replicas copy the circuit
     inside Parwin.create, which returns only when every replica is built —
     after this point the master may mutate the circuit freely. *)
  let pool =
    if config.window_domains >= 1 then
      if parallel_eligible config then begin
        if config.window_domains > Domain.recommended_domain_count () then
          Log.debug (fun m ->
              m "window_domains %d exceeds recommended_domain_count %d; \
                 results are identical, only the speedup suffers"
                config.window_domains
                (Domain.recommended_domain_count ()));
        Some
          (Parwin.create ~domains:config.window_domains
             {
               Parwin.lib;
               full_cfg;
               mode = config.evaluation;
               area_weight = config.area_weight;
               fused = config.fused_kernels;
               move_threshold = config.move_threshold;
               depth = config.window_depth;
               model = config.model;
               objective = config.objective;
               paranoid = config.paranoid;
             }
             circuit)
      end
      else begin
        Parwin.note_fallback ();
        Log.warn (fun m ->
            m "window_domains %d ignored: parallel windows need incremental \
               Global exact-mode evaluation; running the serial engine"
              config.window_domains);
        None
      end
    else None
  in
  let best_cost =
    ref
      (match persistent with
      | Some w -> Window.base_cost w
      | None -> judge_cost ())
  in
  let best_cells = ref (snapshot ()) in
  (* Certified dominance pruning (opt-in): the statcheck pass is Clark-mode
     over the current sizing — O(nodes) interval work, negligible next to
     the FULLSSTA it precedes. The scratch path recomputes it every
     iteration because resizes move the enclosures; the incremental path
     reuses the previous skip set until a committed resize's electrical
     dirt actually touches a pruned cone (dirt outside every pruned cone
     cannot un-isolate one — reachability and isolation depth are static
     topology, and the dominated-output margins were certified with slack). *)
  let dom_cache = ref None in
  let dominance_skip () =
    if not prune then None
    else begin
      let stale =
        match (!dom_cache, persistent) with
        | None, _ | _, None -> true
        | Some skip_arr, Some w ->
            List.exists (fun id -> skip_arr.(id)) (Window.take_dirt w)
      in
      if stale then begin
        let sc_config =
          {
            Absint.Statcheck.default_config with
            Absint.Statcheck.model = config.model;
            electrical = config.electrical;
          }
        in
        let sc = Absint.Statcheck.run ~config:sc_config ~lib circuit in
        let dom = Absint.Dominance.compute sc in
        dom_cache :=
          Some
            (Array.init (Netlist.Circuit.size circuit) (fun id ->
                 Absint.Dominance.skip dom id))
      end;
      match !dom_cache with
      | Some skip_arr -> Some (fun id -> skip_arr.(id))
      | None -> None
    end
  in
  let windows = ref (0, 0) in
  let rec loop index full misses history resizes =
    if index >= config.max_iterations then (Iteration_limit, history, resizes)
    else begin
      let window =
        match persistent with
        | Some w ->
            if index > 0 then Window.refresh w;
            w
        | None -> make_window full
      in
      let schedule, path_length, evaluated, skipped =
        Obs.Span.with_ "sizer.iteration" @@ fun () ->
        match pool with
        | Some p ->
            run_iteration_par config ?skip:(dominance_skip ()) circuit full
              window p stats_acc
        | None ->
            run_iteration config ~lib ?skip:(dominance_skip ()) circuit full
              window stats_acc
      in
      Obs.Counters.bump c_iterations;
      Obs.Counters.add c_windows_evaluated evaluated;
      Obs.Counters.add c_windows_skipped skipped;
      Obs.Counters.add c_moves_committed (List.length schedule);
      windows := (fst !windows + evaluated, snd !windows + skipped);
      match schedule with
      | [] -> (No_candidate, history, resizes)
      | _ ->
          let full' =
            if config.incremental then begin
              let resized = List.map (fun (g, _, _) -> g) schedule in
              ignore
                (Ssta.Fullssta.update ~paranoid:config.paranoid
                   ~refresh_electrical:false full ~resized);
              Option.iter (fun p -> Parwin.record_refresh p resized) pool;
              full
            end
            else Ssta.Fullssta.run ~config:full_cfg circuit
          in
          let cost' =
            match persistent with
            | Some w -> Window.base_cost w
            | None -> judge_cost ()
          in
          let improved =
            cost' < !best_cost -. (config.min_improvement *. Float.abs !best_cost)
          in
          Log.debug (fun m ->
              m "iter %d: cost %.3f (best %.3f, %d resizes)" index cost'
                !best_cost (List.length schedule));
          let record =
            iteration_record index full' (List.length schedule) path_length
          in
          if improved then begin
            best_cost := cost';
            best_cells := snapshot ();
            loop (index + 1) full' 0 (record :: history)
              (resizes + List.length schedule)
          end
          else if misses + 1 >= config.patience then
            (Converged, record :: history, resizes + List.length schedule)
          else
            loop (index + 1) full' (misses + 1) (record :: history)
              (resizes + List.length schedule)
    end
  in
  let stop_reason, history, total_resizes =
    Fun.protect
      ~finally:(fun () -> Option.iter Parwin.shutdown pool)
      (fun () -> loop 0 full0 0 [] 0)
  in
  restore !best_cells;
  let final_full = Ssta.Fullssta.run ~config:full_cfg circuit in
  (* Clamp-and-warn (LIB007): report, once per cell, every table that was
     queried outside its characterized grid during this run. *)
  List.iter
    (fun d -> Log.warn (fun m -> m "%a" Diag.pp d))
    (Lint.Extrapolation.collect lib);
  let cutoff_hits, blended = !stats_acc in
  {
    config;
    initial_moments;
    final_moments = Ssta.Fullssta.output_moments final_full;
    initial_area;
    final_area = Netlist.Circuit.total_area circuit;
    iterations = List.rev history;
    stop_reason;
    total_resizes;
    cutoff_fraction =
      (let total = cutoff_hits + blended in
       if total = 0 then Float.nan else float_of_int cutoff_hits /. float_of_int total);
    windows_evaluated = fst !windows;
    windows_skipped = snd !windows;
    (* statflow: safe — runtime_s is reporting metadata, not a result field *)
    runtime_s = Sys.time () -. started;
  }

(* Summary percentages relative to a reference result (Table 1's columns are
   relative to the mean-optimized "Original"). *)
let mean_change_pct ~original ~optimized =
  100.0
  *. (optimized.final_moments.Numerics.Clark.mean
      -. original.Numerics.Clark.mean)
  /. original.Numerics.Clark.mean

let sigma_change_pct ~original ~optimized =
  let s0 = Numerics.Clark.sigma original in
  100.0 *. (Numerics.Clark.sigma optimized.final_moments -. s0) /. s0

let area_change_pct ~original_area ~optimized =
  100.0 *. (optimized.final_area -. original_area) /. original_area

let sigma_over_mean m =
  Numerics.Clark.sigma m /. m.Numerics.Clark.mean

let pp_stop_reason ppf = function
  | Converged -> Fmt.string ppf "converged (no further improvement)"
  | No_candidate -> Fmt.string ppf "no resize candidate on WNSS path"
  | Iteration_limit -> Fmt.string ppf "iteration limit"

let pp_result ppf r =
  let s0 = Numerics.Clark.sigma r.initial_moments
  and s1 = Numerics.Clark.sigma r.final_moments in
  let pp_cutoff ppf f =
    (* the quadratic-cutoff statistic only accrues in Windowed mode *)
    if Float.is_nan f then Fmt.string ppf "n/a"
    else Fmt.pf ppf "%.0f%%" (100.0 *. f)
  in
  let pp_pruned ppf r =
    if r.windows_skipped > 0 then
      Fmt.pf ppf " (%d windows pruned of %d)" r.windows_skipped
        (r.windows_evaluated + r.windows_skipped)
  in
  Fmt.pf ppf
    "@[<v>alpha=%g: mu %.1f -> %.1f, sigma %.2f -> %.2f, area %.1f -> %.1f@ %d \
     iterations, %d resizes%a, cutoff %a, %.2fs (%a)@]"
    (Objective.alpha r.config.objective)
    r.initial_moments.Numerics.Clark.mean r.final_moments.Numerics.Clark.mean s0 s1
    r.initial_area r.final_area
    (List.length r.iterations)
    r.total_resizes pp_pruned r pp_cutoff r.cutoff_fraction r.runtime_s
    pp_stop_reason r.stop_reason

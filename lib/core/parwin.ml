(* Domain-parallel window evaluation: replica pool + round protocol.

   Shared-nothing by construction: each worker builds its replica (circuit
   copy, FULLSSTA annotation, window) inside its own domain and is the only
   domain that ever touches it. The master communicates through two
   mutex-guarded queues per worker (requests in, replies out) carrying only
   immutable values: gate ids, cells from the shared immutable library, and
   verdict records. The master's circuit is read by workers exactly once —
   during replica construction, before [create] returns — and the master
   does not mutate it until [create] has collected every Ready. *)

let c_rounds = Obs.Counters.make "parwin.rounds"
let c_evaluated = Obs.Counters.make "parwin.windows.evaluated"
let c_discarded = Obs.Counters.make "parwin.windows.discarded"
let c_fallback = Obs.Counters.make "parwin.fallback"

(* Per-lane distribution counters (lane 0 = master). These are *not*
   work-conservation counters: the lane split depends on the domain count.
   Lanes beyond 7 fold into the last bucket. *)
let lane_buckets = 8

let c_lane =
  Array.init lane_buckets (fun i ->
      Obs.Counters.make (Printf.sprintf "parwin.windows.lane%d" i))

let chunk_size = 16

type verdict = {
  gate : Netlist.Circuit.id;
  best : Cells.Cell.t;
  co_resizes : (Netlist.Circuit.id * Cells.Cell.t) list;
  best_cost : float;
  current_cost : float;
}

type params = {
  lib : Cells.Library.t;
  full_cfg : Ssta.Fullssta.config;
  mode : Window.mode;
  area_weight : float;
  fused : bool;
  move_threshold : float;
  depth : int;
  model : Variation.Model.t;
  objective : Objective.t;
  paranoid : bool;
}

type op =
  | Commit of (Netlist.Circuit.id * Cells.Cell.t) list
  | Refresh of Netlist.Circuit.id list

type request = Eval of op list * Netlist.Circuit.id array | Quit
type reply = Ready | Verdicts of verdict array | Crashed of string

(* Unbounded mutex+condition queue. [put] never blocks, so shutdown and
   crash paths cannot deadlock; depth never exceeds 2 in practice (one
   request or reply in flight, plus a trailing Quit). *)
module Chan = struct
  type 'a t = { m : Mutex.t; cv : Condition.t; q : 'a Queue.t }

  let create () = { m = Mutex.create (); cv = Condition.create (); q = Queue.create () }

  let put c x =
    Mutex.protect c.m (fun () ->
        Queue.add x c.q;
        Condition.broadcast c.cv)

  let take c =
    Mutex.protect c.m (fun () ->
        while Queue.is_empty c.q do
          Condition.wait c.cv c.m
        done;
        Queue.pop c.q)
end

type worker = {
  domain : unit Domain.t;
  inbox : request Chan.t;
  outbox : reply Chan.t;
  pending : op list ref; (* master-side: ops not yet shipped, reversed *)
}

type t = {
  params : params;
  workers : worker array;
  mutable live : bool;
}

let bump_lane lane =
  Obs.Counters.bump c_lane.(if lane < lane_buckets then lane else lane_buckets - 1)

let eval_gate window ~lib ~depth circuit lane gate =
  Obs.Counters.bump c_evaluated;
  bump_lane lane;
  let sub = Netlist.Cone.extract circuit ~pivot:gate ~depth in
  let v = Window.best_size window ~lib sub in
  {
    gate;
    best = v.Window.best;
    co_resizes = v.Window.co_resizes;
    best_cost = v.Window.best_cost;
    current_cost = v.Window.current_cost;
  }

(* Worker body: build the replica, signal Ready, then serve rounds until
   Quit. Any exception (including during construction) is reported through
   the outbox instead of killing the reply protocol. *)
let worker_body params source lane inbox outbox () =
  match
    let circuit = Netlist.Circuit.copy source in
    let full = Ssta.Fullssta.run ~config:params.full_cfg circuit in
    let window =
      Window.create ~mode:params.mode ~incremental:true
        ~area_weight:params.area_weight ~fused:params.fused ~tolerance:0.0
        ~move_threshold:params.move_threshold ~circuit ~model:params.model
        ~objective:params.objective ~full ()
    in
    Chan.put outbox Ready;
    let apply_op = function
      | Commit moves ->
          List.iter (fun (g, c) -> Netlist.Circuit.set_cell circuit g c) moves;
          Window.commit_incremental window ~resized:(List.map fst moves)
      | Refresh resized ->
          ignore
            (Ssta.Fullssta.update ~paranoid:params.paranoid
               ~refresh_electrical:false full ~resized);
          Window.refresh window
    in
    let rec serve () =
      match Chan.take inbox with
      | Quit -> ()
      | Eval (ops, gates) ->
          List.iter apply_op ops;
          (* replicas never consume their dirt — keep the list from growing *)
          ignore (Window.take_dirt window);
          let verdicts =
            Array.map
              (eval_gate window ~lib:params.lib ~depth:params.depth circuit lane)
              gates
          in
          Chan.put outbox (Verdicts verdicts);
          serve ()
    in
    serve ()
  with
  | () -> ()
  | exception e -> Chan.put outbox (Crashed (Printexc.to_string e))

let create ~domains params circuit =
  let spawned = Int.max 0 (domains - 1) in
  let workers =
    Array.init spawned (fun i ->
        let inbox = Chan.create () and outbox = Chan.create () in
        let domain =
          Domain.spawn (worker_body params circuit (i + 1) inbox outbox)
        in
        { domain; inbox; outbox; pending = ref [] })
  in
  let t = { params; workers; live = true } in
  (* Barrier: the master must not mutate [circuit] while replicas copy it. *)
  Array.iter
    (fun w ->
      match Chan.take w.outbox with
      | Ready -> ()
      | Crashed msg ->
          Array.iter (fun w -> Chan.put w.inbox Quit) workers;
          Array.iter (fun w -> Domain.join w.domain) workers;
          failwith ("parwin: replica construction failed: " ^ msg)
      | Verdicts _ -> assert false)
    workers;
  t

let record_op t op =
  Array.iter (fun w -> w.pending := op :: !(w.pending)) t.workers

let record_commit t moves = record_op t (Commit moves)
let record_refresh t resized = record_op t (Refresh resized)
let count_discarded n = Obs.Counters.add c_discarded n
let note_fallback () = Obs.Counters.bump c_fallback

(* Contiguous lane split of [len] items across [lanes]: lane i starts at
   [start i]. Deterministic, but results never depend on it — only the
   per-lane distribution counters do. *)
let lane_start ~len ~lanes i =
  let base = len / lanes and rem = len mod lanes in
  (i * base) + Int.min i rem

let eval_chunk t ~master ~circuit ~gates ~pos ~len =
  Obs.Counters.bump c_rounds;
  let lanes = Array.length t.workers + 1 in
  let start i = pos + lane_start ~len ~lanes i in
  let stop i = pos + lane_start ~len ~lanes (i + 1) in
  (* ship work to every worker with a non-empty slice (pending ops ride
     along; workers with empty slices sync lazily on their next round) *)
  let sent =
    Array.mapi
      (fun i w ->
        let lo = start (i + 1) and hi = stop (i + 1) in
        if hi > lo then begin
          let ops = List.rev !(w.pending) in
          w.pending := [];
          Chan.put w.inbox (Eval (ops, Array.sub gates lo (hi - lo)));
          true
        end
        else false)
      t.workers
  in
  let out = Array.make len None in
  (* master evaluates lane 0 on its own (live) window while workers run *)
  for k = start 0 to stop 0 - 1 do
    out.(k - pos) <-
      Some
        (eval_gate master ~lib:t.params.lib ~depth:t.params.depth circuit 0
           gates.(k))
  done;
  Array.iteri
    (fun i w ->
      if sent.(i) then
        match Chan.take w.outbox with
        | Verdicts vs ->
            Array.iteri (fun j v -> out.(start (i + 1) - pos + j) <- Some v) vs
        | Crashed msg -> failwith ("parwin: worker died: " ^ msg)
        | Ready -> assert false)
    t.workers;
  Array.map
    (function Some v -> v | None -> assert false (* every slot filled *))
    out

let shutdown t =
  if t.live then begin
    t.live <- false;
    Array.iter (fun w -> Chan.put w.inbox Quit) t.workers;
    Array.iter (fun w -> Domain.join w.domain) t.workers
  end

(** Subcircuit (window) evaluation for the sizing inner loop (paper §4.5):
    FASSTA over a 2-level TFI/TFO window with frozen FULLSSTA boundary,
    scored by the worst per-output Cost = μ + α·σ. *)

type t

type mode =
  | Windowed  (** paper §4.5: FASSTA on the window with frozen FULLSSTA
          boundary, statistical-slack scoring of window outputs *)
  | Global
      (** trial electrical update stays window-local, but scoring runs a
          whole-circuit FASSTA pass against the real primary outputs *)

val create :
  ?mode:mode ->
  ?incremental:bool ->
  ?area_weight:float ->
  ?fused:bool ->
  ?tolerance:float ->
  ?move_threshold:float ->
  circuit:Netlist.Circuit.t ->
  model:Variation.Model.t ->
  objective:Objective.t ->
  full:Ssta.Fullssta.t ->
  unit ->
  t
(** Shares the FULLSSTA run's electrical state; trials mutate and restore
    it, so the [full] annotation must come from the same circuit object.
    Default mode: [Global]. [incremental] (default false) switches trials
    to dirty-cone electrical updates (clipped to the window, exact-stop, so
    trial scores are identical) and enables {!commit_incremental}.
    [area_weight] (default 0) adds ps-per-area-unit pricing of each move's
    area delta to trial costs — the baseline mean optimizer uses it to stop
    at diminishing returns.

    [fused] (default true) routes arrival folds, RV_O folds and LUT lookups
    through the batched/fused statkern kernels ({!Numerics.Kernels},
    {!Cells.Memo}) — a pure execution-strategy switch: every value, cost
    and verdict is bit-identical to the scalar reference path ([false], the
    pre-kernel engine, kept as the benchmark baseline and oracle).

    [tolerance] (default 0 = exact) opts into the ε-certified fast-scoring
    regime on the vectorized candidate drain (requires [fused]; honoured
    with [incremental] + [Global]): candidates are scored with the paper's
    quadratic-Φ max alongside certified error intervals
    ({!Absint.Budget}), and each verdict is either proven identical to
    exact scoring, accepted with a certified cost-regret bound
    ≤ [tolerance] (recorded in {!tolerance_trace}), or re-scored exactly.
    [move_threshold] must then mirror the sizer's commit threshold, since
    certification reasons about the commit decision. *)

val refresh : t -> unit
(** Bring a persistent window up to date at the start of a new outer
    iteration (downstream slack stats + cached base arrivals), assuming the
    shared electrical state is already in sync. Equivalent to building a
    fresh window over the same annotation. *)

val cost : t -> Netlist.Cone.subcircuit -> float
(** Window cost as currently sized. *)

val cost_with_cell :
  ?co_size:bool ->
  lib:Cells.Library.t ->
  t ->
  Netlist.Cone.subcircuit ->
  Cells.Cell.t ->
  float * (Netlist.Circuit.id * Cells.Cell.t) list
(** Window cost with a trial cell installed on the pivot, together with the
    fanin co-sizing the trial would commit (side-effect-free: circuit and
    electrical state are restored). [co_size] (default true) also sizes the
    pivot's fanin drivers up per the logical-effort rule, letting compound
    moves cross the load-coordination barrier. *)

type verdict = {
  best : Cells.Cell.t;
  co_resizes : (Netlist.Circuit.id * Cells.Cell.t) list;
  best_cost : float;
  current_cost : float;
}

val best_size :
  ?co_size:bool -> t -> lib:Cells.Library.t -> Netlist.Cone.subcircuit -> verdict
(** Best cell over every available size of the pivot's function (ties keep
    the incumbent), with its induced co-sizing and window costs. *)

val commit : t -> Netlist.Cone.subcircuit -> unit
(** Re-derive the window's electrical state after a committed resize so
    later evaluations in the same outer iteration see it. *)

val commit_incremental : t -> resized:Netlist.Circuit.id list -> unit
(** Incremental equivalent of {!commit}: exact-stop electrical update from
    the [resized] gates and a change-wavefront resync of the cached base
    arrivals with a bit-equal stop — the state after it is bit-identical to
    {!commit}'s full refresh. Does not touch the FULLSSTA annotation; the
    caller re-syncs it once per outer iteration via
    {!Ssta.Fullssta.update}. *)

val base_cost : t -> float
(** RV_O cost of the committed sizes, as maintained by commits. *)

val take_dirt : t -> Netlist.Circuit.id list
(** Electrical-dirty ids accumulated by {!commit_incremental} since the last
    call (unordered, may contain duplicates); clears the accumulator. Lets
    callers invalidate caches keyed on electrical state — e.g. recompute a
    dominance prune only when the dirt touches a pruned cone. *)

val fassta_stats : t -> Ssta.Fassta.stats
(** Accumulated cutoff/blend counts across all evaluations. *)

val tolerance_trace : t -> (Netlist.Circuit.id * float) list
(** Tolerance-regime audit trail: the verdicts accepted on budget rather
    than proven identical to exact scoring, newest first, as (pivot,
    certified cost-regret bound). Empty in exact mode ([tolerance = 0]) and
    whenever every decision certified. The statobs counters
    [window.tolerance.certified]/[tolerated]/[fallback] tally the three
    outcomes. *)

(* Subcircuit evaluation — paper §4.5.

   For a candidate gate and a trial size, the cost of the resize is judged
   inside a window of two levels of transitive fanin/fanout: the trial cell
   is installed, the window's electrical state (loads, slews, arc delays) is
   re-derived in place, FASSTA propagates arrival moments from the frozen
   FULLSSTA boundary values, and the cost is the worst Cost(O_i) = μ + α·σ
   over the window's observed outputs. Everything is restored afterwards,
   so trials are free of global side effects. *)

(* How a trial is scored:
   [Windowed] — FASSTA on the window only, boundary moments frozen from
   FULLSSTA, outputs scored with the statistical-slack correction. This is
   the paper's §4.5 scheme.
   [Global] — the trial still only re-derives the window's electrical state
   (slew perturbations die out within a couple of levels), but scoring
   re-propagates arrival moments incrementally from the window to every
   affected node downstream (changes below a decay tolerance stop the
   wavefront) and prices the real RV_O — window myopia removed at roughly
   O(affected region) per trial. *)
type mode = Windowed | Global

(* statobs: trial-drain wavefront pops, per-(candidate, node) recomputes in
   the vectorized drain, and commit-resync pops. Counts are accumulated in
   local ints during each drain and flushed once, so the pops themselves
   never pay for the instrumentation. *)
let c_trial_visits = Obs.Counters.make "window.trial.visits"
let c_cell_evals = Obs.Counters.make "window.trial.cell_evals"
let c_commit_visits = Obs.Counters.make "window.commit.visits"

(* statobs: how each tolerance-regime window decision was resolved —
   certified identical to exact, accepted under the ε budget, or fallen
   back to the exact drain. All zero in exact mode (tolerance = 0). *)
let c_tol_certified = Obs.Counters.make "window.tolerance.certified"
let c_tol_tolerated = Obs.Counters.make "window.tolerance.tolerated"
let c_tol_fallback = Obs.Counters.make "window.tolerance.fallback"

type t = {
  circuit : Netlist.Circuit.t;
  model : Variation.Model.t;
  objective : Objective.t;
  mode : mode;
  incremental : bool; (* dirty-cone trials and commits instead of full sweeps *)
  electrical : Sta.Electrical.t; (* shared, mutated and restored per trial *)
  full : Ssta.Fullssta.t; (* the annotation the window was built over *)
  boundary : Netlist.Circuit.id -> Numerics.Clark.moments;
  down_mean : float array; (* remaining mean delay to any primary output *)
  down_var : float array; (* delay variance along that downstream path *)
  base : Numerics.Clark.moments array; (* arrivals for the committed sizes *)
  mutable base_cost : float; (* RV_O cost of [base] *)
  override : (int, Numerics.Clark.moments) Hashtbl.t; (* trial deltas *)
  area_weight : float; (* ps of cost per unit of added area *)
  wavefront : Netlist.Wavefront.t; (* scratch queue for incremental trials *)
  in_window : bool array; (* scratch membership bitmap for clipped trials *)
  mutable dirt : Netlist.Circuit.id list;
      (* electrical-dirty ids accumulated by incremental commits, for the
         caller's dominance-cache invalidation; see [take_dirt] *)
  stats : Ssta.Fassta.stats;
  (* Incremental-engine fast path (unused when [incremental] is false; the
     scratch engine keeps the original Hashtbl machinery as the oracle).
     All of it is pure caching: every value read out of these structures is
     bit-identical to what the oracle path recomputes, so trial costs and
     hence sizing decisions are unchanged.
     - [f_arc] holds each node's per-fanin arc delay moments for the
       COMMITTED electrical state; [f_row] remembers the physical arc-delay
       row each cache line was derived from, so validity is one pointer
       compare ([Electrical.update] replaces a row exactly when its values
       changed, and trials restore the original rows afterwards).
     - [ov_m]/[ov_gen] are the trial override table as flat arrays: an
       entry is live when its generation stamp matches [gen], so starting a
       new trial is one integer bump instead of a Hashtbl.reset.
     - [outputs_arr]/[out_idx]/[out_prefix] support RV_O prefix folding:
       [out_prefix.(i)] is the statistical max of the first i+1 outputs'
       base arrivals (same left fold as [Clark.max_exact_list]), so a trial
       that only perturbs outputs from index j onward resumes the fold at
       the cached prefix instead of re-maxing every output. *)
  f_arc : Numerics.Clark.moments array array;
  f_row : float array array;
  ov_m : Numerics.Clark.moments array;
  ov_gen : int array;
  mutable gen : int;
  outputs_arr : Netlist.Circuit.id array;
  out_idx : int array; (* node id -> index in [outputs_arr], or -1 *)
  out_prefix : Numerics.Clark.moments array;
  mutable min_out : int; (* lowest output index overridden by this trial *)
  base_sigma : float array;
      (* [Clark.sigma base.(id)], maintained at every base write so the
         wavefront decay test costs one sqrt (the fresh value) per node
         instead of two — the cached sqrt of an identical var is the
         identical float *)
  (* Vectorized trial scoring: [best_size] drains ALL candidate cells of a
     window through ONE topologically-ordered wavefront. Because nodes pop
     in ascending id = topological order, evaluating cell [c] exactly at
     the nodes where [c] has a pending change replays the same computation
     sequence — same values, same decay decisions — as [c]'s solo drain,
     so every per-cell cost is bit-identical to the one-trial-at-a-time
     path while the heap traffic and fanout walks are paid once per node
     instead of once per node per cell.
     - [pend]/[pend_gen]: per-node bitmask of candidate cells awaiting
       recomputation there (generation-stamped, no clearing).
     - [vc_ov]/[vc_ov_gen]: per-cell override arrivals (the vectorized
       [ov_m]/[ov_gen]).
     - [vc_arc]/[vc_arc_gen]: per-cell arc moments captured from the
       trial's perturbed electrical rows while they were live — the same
       [delay_moments] calls the solo drain makes inline.
     - [vc_min_out]: per-cell lowest perturbed output index for the RV_O
       prefix-fold resume. *)
  pend : int array;
  pend_gen : int array;
  mutable vc_ov : Numerics.Clark.moments array array;
  mutable vc_ov_gen : int array array;
  mutable vc_arc : Numerics.Clark.moments array array array;
  mutable vc_arc_gen : int array array;
  mutable vc_min_out : int array;
  (* Fused-kernel regime (statkern). [kern] is this window's private
     staging/accumulator scratch for Numerics.Kernels — single-owner, like
     the wavefront. The [lane_*] arrays are per-node drain scratch mapping
     kernel lanes back to candidate indices and hoisting each lane's
     per-cell table pointers out of the operand loop. All of it is
     execution strategy only: with [fused] on, every exact-mode value is
     bit-identical to the scalar path. *)
  fused : bool;
  kern : Numerics.Kernels.t;
  lane_cell : int array;
  lane_arcs : Numerics.Clark.moments array array;
  lane_ov : Numerics.Clark.moments array array;
  lane_ov_gen : int array array;
  lane_em : float array array;
  lane_es : float array array;
  (* ε-certified tolerance regime (opt-in, [tolerance] > 0; honoured on the
     incremental Global vectorized path only). The fast drain carries, per
     candidate and node, certified |Δmean|/|Δsigma| bounds against the
     exact drain over the same inputs ([vc_em]/[vc_es], live under the
     same stamps as [vc_ov]); [lane_slack] accumulates the certified cost
     exposure of wavefront-stop decisions the bounds could not disambiguate.
     [tol_trace] records every decision accepted on budget rather than
     certified-identical, as (pivot, certified cost-regret bound). *)
  tolerance : float;
  move_threshold : float;
  (* Fast-drain wavefront decay threshold, ≥ [epsilon_wave]. The fast drain
     may kill a lane's wavefront at a node whose certified move estimate is
     below this, charging the candidate's [lane_slack] for the certified
     worst-case cost exposure of the drop; scaling it with [tolerance]
     converts regret budget directly into skipped drain work. The exact
     drain always uses [epsilon_wave]. *)
  fast_wave : float;
  mutable vc_em : float array array;
  mutable vc_es : float array array;
  mutable lane_slack : float array;
  mutable tol_trace : (Netlist.Circuit.id * float) list;
}

(* Candidate bitmasks live in one int; windows with more sizes than this
   (none in practice) fall back to the one-trial-at-a-time path. *)
let max_vec_cells = Sys.int_size - 2

(* Scalar accumulator for arrival folds: the drain below runs
   [Clark.max_exact] millions of times per sizer call, and folding through
   a mutable float pair instead of intermediate records keeps the hot loop
   allocation-free (a moments record is built only for the values that are
   actually stored). *)
type acc2 = { mutable am : float; mutable av : float }

(* [acc <- max(acc, N(bm, bv))]: a clone of [Clark.max_exact ~rho:0.0] —
   the same operations in the same order on the same operands, so the
   accumulated mean/var are bit-identical to the record-folding oracle. *)
let scalar_max acc bm bv =
  let am = acc.am and av = acc.av in
  let sp = Float.sqrt (Float.max (av +. bv) 0.0) in
  if sp <= 0.0 then begin
    if am >= bm then ()
    else begin
      acc.am <- bm;
      acc.av <- bv
    end
  end
  else begin
    let alpha = (am -. bm) /. sp in
    let phi = Numerics.Normal.pdf alpha in
    let cdf_pos = Numerics.Normal.cdf alpha in
    let cdf_neg = 1.0 -. cdf_pos in
    let m1 = (am *. cdf_pos) +. (bm *. cdf_neg) +. (sp *. phi) in
    let m2 =
      (((am *. am) +. av) *. cdf_pos)
      +. (((bm *. bm) +. bv) *. cdf_neg)
      +. ((am +. bm) *. sp *. phi)
    in
    acc.am <- m1;
    acc.av <- Float.max (m2 -. (m1 *. m1)) 0.0
  end

(* Wavefront decay tolerance: a node whose recomputed moments move by less
   than this (in ps, on mean and sigma) does not wake its fanouts. *)
let epsilon_wave = 1e-3

(* Statistical required-time estimate: for every node, the mean delay D of
   the longest remaining path to a primary output, and the variance V
   accumulated along that same path. A window output o is then scored as the
   cost of the full worst path through it,

     score(o) = Cost( N(μ_o + D(o), σ_o² + V(o)) ) = μ_o + D(o) + α·√(σ_o²+V(o))

   which makes window-local deltas commensurate with the global objective:
   slowing a shallow carry bit with hundreds of ps of chain left weighs as
   much as slowing a gate that feeds a primary output directly, and variance
   improvements are discounted by the variance the rest of the path will add
   anyway. Without this slack correction the max across window outputs hides
   collateral damage entirely. *)
let downstream_stats_into ~model circuit electrical down_mean down_var =
  Array.fill down_mean 0 (Array.length down_mean) 0.0;
  Array.fill down_var 0 (Array.length down_var) 0.0;
  List.iter
    (fun id ->
      let fanins = Netlist.Circuit.fanins circuit id in
      Array.iteri
        (fun k fi ->
          let arc = Ssta.Fassta.arc_moments model circuit electrical id k in
          let cand_mean = arc.Numerics.Clark.mean +. down_mean.(id) in
          if cand_mean > down_mean.(fi) then begin
            down_mean.(fi) <- cand_mean;
            down_var.(fi) <- arc.Numerics.Clark.var +. down_var.(id)
          end)
        fanins)
    (List.rev (Netlist.Circuit.topological circuit))

let rv_cost t moments_of =
  Objective.cost_of_rv ~exact:true t.objective moments_of
    (Netlist.Circuit.outputs t.circuit)

(* Rebuild the RV_O prefix folds from the current base arrivals: the same
   left fold [Clark.max_exact_list] runs over the outputs list, checkpointed
   at every index. [from] skips entries before the first output whose base
   arrival changed — they fold exclusively over unchanged values. *)
let rebuild_out_prefix ?(from = 0) t =
  let outs = t.outputs_arr in
  let m = Array.length outs in
  if m > 0 && from < m then begin
    let start =
      if from = 0 then begin
        t.out_prefix.(0) <- t.base.(outs.(0));
        1
      end
      else from
    in
    for i = start to m - 1 do
      t.out_prefix.(i) <-
        Numerics.Clark.max_exact t.out_prefix.(i - 1) t.base.(outs.(i))
    done
  end

(* Re-derive the committed-state arrival moments and their RV_O cost. *)
let refresh_base t =
  Ssta.Fassta.propagate_into ~exact:true
    ?kernel:(if t.fused then Some t.kern else None)
    ~model:t.model ~circuit:t.circuit ~electrical:t.electrical t.base;
  t.base_cost <- rv_cost t (fun o -> t.base.(o));
  if t.incremental then begin
    rebuild_out_prefix t;
    for id = 0 to Array.length t.base - 1 do
      t.base_sigma.(id) <- Numerics.Clark.sigma t.base.(id)
    done
  end

(* Re-derive one node's cached arc delay moments from its current
   electrical row — the identical [Variation.Model.delay_moments] call the
   oracle recompute makes inline, so a cached read is bit-equal to an
   inline recompute for as long as the row survives. *)
let refresh_arc_cache t id =
  let row = Sta.Electrical.arc_delays t.electrical id in
  if row != t.f_row.(id) then begin
    let fanins = Netlist.Circuit.fanins t.circuit id in
    let nf = Array.length fanins in
    if nf > 0 then begin
      let strength =
        Cells.Cell.strength (Netlist.Circuit.cell_exn t.circuit id)
      in
      let line = t.f_arc.(id) in
      for k = 0 to nf - 1 do
        line.(k) <-
          Variation.Model.delay_moments t.model ~delay:row.(k) ~strength
      done
    end;
    t.f_row.(id) <- row
  end

let create ?(mode = Global) ?(incremental = false) ?(area_weight = 0.0)
    ?(fused = true) ?(tolerance = 0.0) ?(move_threshold = 0.0) ~circuit ~model
    ~objective ~full () =
  let electrical = Ssta.Fullssta.electrical full in
  (* the fused regime also serves (delay, slew) lookups through the memoized
     [Cells.Memo] — bit-transparent, toggled on the run's shared engine *)
  Sta.Electrical.set_fused electrical fused;
  let kern = Numerics.Kernels.create () in
  (* Certified per-step fast-max error constants from the abstract
     interpreter; [Kernels] sits below [Absint] in the dependency order, so
     they travel as plain floats. *)
  (* blended-branch constants are the kq_* family: the fast kernels use the
     fully-quadratic step (quadratic Φ and its derivative as φ), see
     Numerics.Kernels.pdf_fast *)
  Numerics.Kernels.set_budget kern ~cutoff_mean:Absint.Budget.k_cutoff_mean
    ~cutoff_sig:(Float.sqrt Absint.Budget.k_cutoff_var)
    ~blend_mean:Absint.Budget.kq_blend_mean
    ~blend_sig:(Float.sqrt Absint.Budget.kq_blend_var);
  let n = Netlist.Circuit.size circuit in
  let down_mean = Array.make n 0.0 and down_var = Array.make n 0.0 in
  downstream_stats_into ~model circuit electrical down_mean down_var;
  let zero = Numerics.Clark.moments ~mean:0.0 ~var:0.0 in
  let outputs = Netlist.Circuit.outputs circuit in
  let outputs_arr =
    if incremental then Array.of_list outputs else [||]
  in
  let out_idx = Array.make (if incremental then n else 0) (-1) in
  Array.iteri (fun i o -> out_idx.(o) <- i) outputs_arr;
  (* a sentinel no live electrical row can alias, so every cache line
     starts stale *)
  let stale_row = [| Float.nan |] in
  let t =
    {
      circuit;
      model;
      objective;
      mode;
      incremental;
      electrical;
      full;
      boundary = Ssta.Fullssta.moments full;
      down_mean;
      down_var;
      base = Array.make n zero;
      base_cost = 0.0;
      override = Hashtbl.create 997;
      area_weight;
      wavefront = Netlist.Wavefront.create n;
      in_window = Array.make n false;
      dirt = [];
      stats = Ssta.Fassta.make_stats ();
      f_arc =
        (if incremental then
           Array.init n (fun id ->
               Array.make
                 (Array.length (Netlist.Circuit.fanins circuit id))
                 zero)
         else [||]);
      f_row = (if incremental then Array.make n stale_row else [||]);
      ov_m = (if incremental then Array.make n zero else [||]);
      ov_gen = Array.make (if incremental then n else 0) 0;
      gen = 0;
      outputs_arr;
      out_idx;
      out_prefix = Array.make (Array.length outputs_arr) zero;
      min_out = max_int;
      base_sigma = Array.make (if incremental then n else 0) 0.0;
      pend = Array.make (if incremental then n else 0) 0;
      pend_gen = Array.make (if incremental then n else 0) 0;
      vc_ov = [||];
      vc_ov_gen = [||];
      vc_arc = [||];
      vc_arc_gen = [||];
      vc_min_out = [||];
      fused;
      kern;
      lane_cell = Array.make max_vec_cells 0;
      lane_arcs = Array.make max_vec_cells [||];
      lane_ov = Array.make max_vec_cells [||];
      lane_ov_gen = Array.make max_vec_cells [||];
      lane_em = Array.make max_vec_cells [||];
      lane_es = Array.make max_vec_cells [||];
      tolerance;
      move_threshold;
      fast_wave = Float.max epsilon_wave (tolerance /. 16.0);
      vc_em = [||];
      vc_es = [||];
      lane_slack = [||];
      tol_trace = [];
    }
  in
  if incremental then
    for id = 0 to n - 1 do
      refresh_arc_cache t id
    done;
  refresh_base t;
  t

(* Bring a persistent window up to date with the (already refreshed)
   electrical state at the start of a new outer iteration. The FULLSSTA
   boundary needs no action — [boundary] reads the live annotation.
   Idempotent, and equivalent to building a fresh window. *)
let refresh t =
  downstream_stats_into ~model:t.model t.circuit t.electrical t.down_mean
    t.down_var;
  refresh_base t

let score t o (m : Numerics.Clark.moments) =
  Objective.cost_of_moments t.objective
    (Numerics.Clark.moments
       ~mean:(m.Numerics.Clark.mean +. t.down_mean.(o))
       ~var:(m.Numerics.Clark.var +. t.down_var.(o)))

let windowed_cost t (sub : Netlist.Cone.subcircuit) =
  let table =
    Ssta.Fassta.propagate ~stats:t.stats ~model:t.model ~circuit:t.circuit
      ~electrical:t.electrical ~boundary:t.boundary sub.Netlist.Cone.members
  in
  let moments_of id =
    match Hashtbl.find_opt table id with Some m -> m | None -> t.boundary id
  in
  List.fold_left
    (fun acc o -> Float.max acc (score t o (moments_of o)))
    Float.neg_infinity sub.Netlist.Cone.window_outputs

(* Global scoring uses exact-erf Clark moments: the paper's quadratic erf is
   a 2-level-window device whose near-tie slope error compounds over whole
   circuits (it overstated RV_O's sigma 2.4x on the c499-class parity
   trees).

   Incremental trial propagation: recompute the window members from the
   cached base arrivals, then let the change wavefront run downstream,
   stopping wherever the recomputed moments move by less than
   [epsilon_wave]. Touched values live in [override]; [base] is never
   mutated by a trial. *)
let moments_at t id =
  match Hashtbl.find_opt t.override id with Some m -> m | None -> t.base.(id)

(* One exact-Clark node recomputation, reading fanin arrivals through
   [arrival_of]; the per-arc operations and fold order mirror
   [Fassta.propagate_into ~exact:true] bit for bit — the incremental base
   resync below leans on that to stop exactly where a full pass would have
   written identical values. *)
let recompute_node_with t arrival_of id =
  let fanins = Netlist.Circuit.fanins t.circuit id in
  if Array.length fanins = 0 then t.base.(id)
  else begin
    let arcs = Sta.Electrical.arc_delays t.electrical id in
    let strength = Cells.Cell.strength (Netlist.Circuit.cell_exn t.circuit id) in
    let acc = ref None in
    Array.iteri
      (fun k fi ->
        let arc =
          Variation.Model.delay_moments t.model ~delay:arcs.(k) ~strength
        in
        let arrival = Numerics.Clark.sum (arrival_of fi) arc in
        acc :=
          Some
            (match !acc with
            | None -> arrival
            | Some best -> Numerics.Clark.max_exact best arrival))
      fanins;
    match !acc with Some m -> m | None -> assert false
  end

let recompute_node t id = recompute_node_with t (moments_at t) id

(* Incremental-engine node recompute: the same per-arc operations in the
   same fold order as [recompute_node], with two cache reads replacing
   recomputation. Arc delay moments come from [f_arc] whenever the node's
   electrical row is the committed one (pointer-equal — a trial only
   replaces rows inside its perturbation cone, and restores them after);
   trial arrivals come from the generation-stamped override arrays instead
   of a Hashtbl probe. Every value read here is bit-identical to what the
   oracle path computes, so costs — and sizing decisions — cannot drift. *)
let fast_recompute_into t acc id =
  let fanins = Netlist.Circuit.fanins t.circuit id in
  let nf = Array.length fanins in
  if nf = 0 then begin
    let b = t.base.(id) in
    acc.am <- b.Numerics.Clark.mean;
    acc.av <- b.Numerics.Clark.var
  end
  else begin
    let row = Sta.Electrical.arc_delays t.electrical id in
    let cached = row == t.f_row.(id) in
    let line = t.f_arc.(id) in
    let strength =
      if cached then 0.0
      else Cells.Cell.strength (Netlist.Circuit.cell_exn t.circuit id)
    in
    let gen = t.gen in
    (* unsafe accesses: k < nf = |fanins| = |line| = |row|, and fi is a
       node id, so every indexed array (length [size circuit]) covers it *)
    for k = 0 to nf - 1 do
      let fi = Array.unsafe_get fanins k in
      let arc =
        if cached then Array.unsafe_get line k
        else
          Variation.Model.delay_moments t.model
            ~delay:(Array.unsafe_get row k)
            ~strength
      in
      let m =
        if Array.unsafe_get t.ov_gen fi = gen then Array.unsafe_get t.ov_m fi
        else Array.unsafe_get t.base fi
      in
      let sm = m.Numerics.Clark.mean +. arc.Numerics.Clark.mean in
      let sv = m.Numerics.Clark.var +. arc.Numerics.Clark.var in
      if k = 0 then begin
        acc.am <- sm;
        acc.av <- sv
      end
      else scalar_max acc sm sv
    done
  end

(* Fused variant of [fast_recompute_into]: the same cache reads and the
   same per-operand sums, but the arrival fold runs through one batched
   [Kernels.fold_into] call whose arithmetic replicates [scalar_max]
   literal-for-literal — bit-identical accumulation, without the
   per-operand cross-module pdf/cdf/erf calls. *)
let fused_recompute_into t acc id =
  let fanins = Netlist.Circuit.fanins t.circuit id in
  let nf = Array.length fanins in
  if nf = 0 then begin
    let b = t.base.(id) in
    acc.am <- b.Numerics.Clark.mean;
    acc.av <- b.Numerics.Clark.var
  end
  else begin
    let row = Sta.Electrical.arc_delays t.electrical id in
    let cached = row == t.f_row.(id) in
    let line = t.f_arc.(id) in
    let strength =
      if cached then 0.0
      else Cells.Cell.strength (Netlist.Circuit.cell_exn t.circuit id)
    in
    let gen = t.gen in
    let kern = t.kern in
    Numerics.Kernels.ensure kern nf;
    let bm = kern.Numerics.Kernels.bm and bv = kern.Numerics.Kernels.bv in
    (* unsafe accesses: same bounds argument as [fast_recompute_into],
       plus k < nf ≤ kern.cap after [ensure] *)
    for k = 0 to nf - 1 do
      let fi = Array.unsafe_get fanins k in
      let arc =
        if cached then Array.unsafe_get line k
        else
          Variation.Model.delay_moments t.model
            ~delay:(Array.unsafe_get row k)
            ~strength
      in
      let m =
        if Array.unsafe_get t.ov_gen fi = gen then Array.unsafe_get t.ov_m fi
        else Array.unsafe_get t.base fi
      in
      Array.unsafe_set bm k (m.Numerics.Clark.mean +. arc.Numerics.Clark.mean);
      Array.unsafe_set bv k (m.Numerics.Clark.var +. arc.Numerics.Clark.var)
    done;
    Numerics.Kernels.fold_into kern nf;
    acc.am <- kern.Numerics.Kernels.sc.Numerics.Kernels.rm;
    acc.av <- kern.Numerics.Kernels.sc.Numerics.Kernels.rv
  end

(* [seed] enqueues the trial's change seeds: every window member for the
   full-sweep path, or just the electrically-dirty nodes for the
   incremental path. Nodes whose recomputed moments do not move simply
   drop out of the drain, so the narrower seeding scores identically. *)
let trial_cost t ~seed =
  Hashtbl.reset t.override;
  let w = t.wavefront in
  Netlist.Wavefront.clear w;
  seed (fun id -> Netlist.Wavefront.push w id);
  let visits = ref 0 in
  let rec drain () =
    let id = Netlist.Wavefront.pop w in
    if id >= 0 then begin
      incr visits;
      let fresh = recompute_node t id in
      let old = t.base.(id) in
      let moved =
        Float.abs (fresh.Numerics.Clark.mean -. old.Numerics.Clark.mean)
        +. Float.abs (Numerics.Clark.sigma fresh -. Numerics.Clark.sigma old)
        > epsilon_wave
      in
      if moved then begin
        Hashtbl.replace t.override id fresh;
        Netlist.Circuit.iter_fanouts t.circuit id ~f:(fun fo ->
            Netlist.Wavefront.push w fo)
      end
      else Hashtbl.remove t.override id;
      drain ()
    end
  in
  drain ();
  Obs.Counters.add c_trial_visits !visits;
  rv_cost t (moments_at t)

(* Incremental-engine trial scoring: semantically [trial_cost] — same
   seeds, same [epsilon_wave] stop on the same recomputed moments — on the
   flat cache structures. Opening a trial is one generation bump, and the
   final RV_O fold resumes from the cached prefix at the first perturbed
   output (or short-circuits to the committed cost when no output moved,
   which is bit-equal to folding all-base values: [base_cost] was produced
   by that very fold). *)
let fast_trial_cost t ~seed =
  t.gen <- t.gen + 1;
  t.min_out <- max_int;
  let w = t.wavefront in
  Netlist.Wavefront.clear w;
  seed (fun id -> Netlist.Wavefront.push w id);
  let acc = { am = 0.0; av = 0.0 } in
  let push_fanout fo = Netlist.Wavefront.push w fo in
  let visits = ref 0 in
  let rec drain () =
    let id = Netlist.Wavefront.pop w in
    if id >= 0 then begin
      incr visits;
      if t.fused then fused_recompute_into t acc id
      else fast_recompute_into t acc id;
      let old = t.base.(id) in
      let moved =
        Float.abs (acc.am -. old.Numerics.Clark.mean)
        +. Float.abs (Float.sqrt acc.av -. t.base_sigma.(id))
        > epsilon_wave
      in
      if moved then begin
        t.ov_m.(id) <- Numerics.Clark.moments ~mean:acc.am ~var:acc.av;
        t.ov_gen.(id) <- t.gen;
        let oi = t.out_idx.(id) in
        if oi >= 0 && oi < t.min_out then t.min_out <- oi;
        Netlist.Circuit.iter_fanouts t.circuit id ~f:push_fanout
      end;
      drain ()
    end
  in
  drain ();
  Obs.Counters.add c_trial_visits !visits;
  if t.min_out = max_int then t.base_cost
  else begin
    let outs = t.outputs_arr in
    let gen = t.gen in
    let read o = if t.ov_gen.(o) = gen then t.ov_m.(o) else t.base.(o) in
    let j = t.min_out in
    if t.fused then begin
      (* same fold, staged: operand 0 is the cached prefix (or the first
         perturbed output when j = 0), so the batched fold replays the
         scalar resume bit for bit *)
      let kern = t.kern in
      let m = Array.length outs in
      Numerics.Kernels.ensure kern (m - j + 1);
      let bm = kern.Numerics.Kernels.bm and bv = kern.Numerics.Kernels.bv in
      let nops = ref 0 in
      if j > 0 then begin
        let p = t.out_prefix.(j - 1) in
        bm.(0) <- p.Numerics.Clark.mean;
        bv.(0) <- p.Numerics.Clark.var;
        nops := 1
      end;
      for i = j to m - 1 do
        let mo = read outs.(i) in
        bm.(!nops) <- mo.Numerics.Clark.mean;
        bv.(!nops) <- mo.Numerics.Clark.var;
        incr nops
      done;
      Numerics.Kernels.fold_into kern !nops;
      Objective.cost_of_moments t.objective
        (Numerics.Clark.moments ~mean:kern.Numerics.Kernels.sc.Numerics.Kernels.rm
           ~var:kern.Numerics.Kernels.sc.Numerics.Kernels.rv)
    end
    else begin
      let m0 = read outs.(j) in
      let acc =
        ref
          (if j = 0 then m0
           else Numerics.Clark.max_exact t.out_prefix.(j - 1) m0)
      in
      for i = j + 1 to Array.length outs - 1 do
        acc := Numerics.Clark.max_exact !acc (read outs.(i))
      done;
      Objective.cost_of_moments t.objective !acc
    end
  end

(* Cost of the window as currently sized (no trial cell). *)
let cost t (sub : Netlist.Cone.subcircuit) =
  match t.mode with Windowed -> windowed_cost t sub | Global -> t.base_cost

(* A heavier pivot burdens its fanin drivers; the logical-effort rule sizes
   them up (never down) so the compound move crosses the coordination
   barrier a single-gate move cannot: upsizing is only profitable when the
   drivers strengthen with the load. *)
let fanin_adjustments t ~lib pivot =
  Array.to_list (Netlist.Circuit.fanins t.circuit pivot)
  |> List.filter_map (fun fi ->
         match Netlist.Circuit.cell t.circuit fi with
         | None -> None (* primary input *)
         | Some fanin_cell ->
             let load = Netlist.Circuit.load t.circuit fi in
             let rule =
               Initial_sizing.pick_cell lib ~fn:(Cells.Cell.fn fanin_cell) ~load
                 ~target:4.0
             in
             if Cells.Cell.strength rule > Cells.Cell.strength fanin_cell then
               Some (fi, rule)
             else None)

(* Evaluate one trial cell for the window's pivot (plus its induced fanin
   co-sizing): install, recompute the window electrically, score, restore.
   Returns the cost and the fanin adjustments the trial would commit.

   Two electrically-equivalent trial engines share the scoring shell. The
   full-sweep path snapshots and recomputes every window member; the
   incremental path (t.incremental) seeds a clipped [Electrical.update]
   from the resized gates only — the exact stop writes the same values the
   full sweep would, touching just the true perturbation cone, and its undo
   log rewinds precisely what was touched. Both stay clipped to the window
   (slew perturbations are assumed to die out within its two levels), so
   the two paths score every trial identically. *)
let cost_with_cell ?(co_size = true) ~lib t (sub : Netlist.Cone.subcircuit) trial
    =
  let pivot = sub.Netlist.Cone.pivot in
  let original = Netlist.Circuit.cell_exn t.circuit pivot in
  let members = sub.Netlist.Cone.members in
  Netlist.Circuit.set_cell t.circuit pivot trial;
  let adjustments = if co_size then fanin_adjustments t ~lib pivot else [] in
  let saved =
    List.map
      (fun (fi, _) -> (fi, Netlist.Circuit.cell_exn t.circuit fi))
      adjustments
  in
  List.iter
    (fun (fi, cell) -> Netlist.Circuit.set_cell t.circuit fi cell)
    adjustments;
  let restore_cells () =
    List.iter
      (fun (fi, cell) -> Netlist.Circuit.set_cell t.circuit fi cell)
      saved;
    Netlist.Circuit.set_cell t.circuit pivot original
  in
  let trial_score =
    if t.incremental then (fun () ->
      Array.iter (fun id -> t.in_window.(id) <- true) members;
      let dirty, log =
        Sta.Electrical.update_logged
          ~within:(fun id -> t.in_window.(id))
          t.electrical t.circuit
          ~resized:(pivot :: List.map fst adjustments)
      in
      Fun.protect
        ~finally:(fun () ->
          Sta.Electrical.restore t.electrical log;
          Array.iter (fun id -> t.in_window.(id) <- false) members)
        (fun () ->
          match t.mode with
          | Windowed -> windowed_cost t sub
          | Global -> fast_trial_cost t ~seed:(fun push -> List.iter push dirty)))
    else (fun () ->
      let snap = Sta.Electrical.snapshot t.electrical members in
      Fun.protect
        ~finally:(fun () -> Sta.Electrical.restore t.electrical snap)
        (fun () ->
          Sta.Electrical.recompute_nodes t.electrical t.circuit members;
          match t.mode with
          | Windowed -> windowed_cost t sub
          | Global -> trial_cost t ~seed:(fun push -> Array.iter push members)))
  in
  Fun.protect ~finally:restore_cells (fun () ->
      let c = trial_score () in
      (* area-aware variant: price the area this move adds (baseline mean
         optimization uses it to stop at diminishing returns) *)
      let area_delta =
        if t.area_weight = 0.0 then 0.0
        else
          Cells.Cell.area trial -. Cells.Cell.area original
          +. List.fold_left
               (fun acc ((fi, cell), (_, old_cell)) ->
                 ignore fi;
                 acc +. Cells.Cell.area cell -. Cells.Cell.area old_cell)
               0.0
               (List.combine adjustments saved)
      in
      (c +. (t.area_weight *. area_delta), adjustments))

type verdict = {
  best : Cells.Cell.t;
  co_resizes : (Netlist.Circuit.id * Cells.Cell.t) list;
  best_cost : float;
  current_cost : float;
}

(* Grow the vectorized-trial structures to [nc] candidate slots. Fresh
   generation-stamp arrays start at 0 and [t.gen] is bumped before any
   batch, so new slots begin universally invalid without clearing. *)
let ensure_vc t nc =
  let cur = Array.length t.vc_ov in
  if cur < nc then begin
    let n = Array.length t.ov_gen in
    let zero = Numerics.Clark.moments ~mean:0.0 ~var:0.0 in
    let grow mk old = Array.init nc (fun c -> if c < cur then old.(c) else mk ()) in
    t.vc_ov <- grow (fun () -> Array.make n zero) t.vc_ov;
    t.vc_ov_gen <- grow (fun () -> Array.make n 0) t.vc_ov_gen;
    t.vc_arc <- grow (fun () -> Array.make n [||]) t.vc_arc;
    t.vc_arc_gen <- grow (fun () -> Array.make n 0) t.vc_arc_gen;
    t.vc_min_out <- Array.make nc max_int;
    if t.tolerance > 0.0 then begin
      (* error-interval shadow of [vc_ov], live under the same stamps *)
      t.vc_em <- grow (fun () -> Array.make n 0.0) t.vc_em;
      t.vc_es <- grow (fun () -> Array.make n 0.0) t.vc_es;
      t.lane_slack <- Array.make nc 0.0
    end
  end

(* Score every candidate cell of the window in ONE shared wavefront drain.

   Phase 1 (capture) runs the per-cell electrical trials exactly as
   [cost_with_cell] does — install, clipped exact-stop update, restore —
   but instead of scoring inside the trial, it captures each dirty node's
   arc delay moments (the same [delay_moments] calls on the same perturbed
   rows and trial strengths the solo drain would make inline) and seeds the
   node's pending bit for that cell.

   Phase 2 (drain) pops the union wavefront in ascending id = topological
   order and recomputes, at each node, only the cells whose bit is pending.
   A cell's computation subsequence is then node-for-node identical to its
   solo drain: same topological order, same fanin overrides, same arc
   moments, same [epsilon_wave] decision — so every per-cell cost is
   bit-identical while the heap pops and fanout walks are amortized across
   the whole candidate set.

   With [t.fused], phase 2 runs lane-batched: a node's pending candidates
   become kernel lanes and the fanin fold runs k-major through
   [Kernels.max_lanes_exact] — each lane still replays its candidate's solo
   operation sequence, so costs remain bit-identical.

   [fast] (requires [t.fused]; the ε-tolerance regime) swaps in the
   quadratic-Φ lane kernels and returns, per candidate, a certified bound
   on |fast cost - exact cost| assembled from the per-lane error intervals
   plus the accumulated exposure of ambiguous wavefront-stop decisions. *)
let vec_costs ?(fast = false) t ~lib ~co_size (sub : Netlist.Cone.subcircuit)
    trials =
  let fast = fast && t.fused in
  let pivot = sub.Netlist.Cone.pivot in
  let original = Netlist.Circuit.cell_exn t.circuit pivot in
  let members = sub.Netlist.Cone.members in
  let nc = Array.length trials in
  ensure_vc t nc;
  t.gen <- t.gen + 1;
  let gen = t.gen in
  let w = t.wavefront in
  Netlist.Wavefront.clear w;
  Array.fill t.vc_min_out 0 nc max_int;
  if fast then Array.fill t.lane_slack 0 nc 0.0;
  let adjs = Array.make nc [] in
  let area_deltas = Array.make nc 0.0 in
  Array.iter (fun id -> t.in_window.(id) <- true) members;
  Fun.protect
    ~finally:(fun () -> Array.iter (fun id -> t.in_window.(id) <- false) members)
    (fun () ->
      Array.iteri
        (fun c trial ->
          Netlist.Circuit.set_cell t.circuit pivot trial;
          let adjustments =
            if co_size then fanin_adjustments t ~lib pivot else []
          in
          let saved =
            List.map
              (fun (fi, _) -> (fi, Netlist.Circuit.cell_exn t.circuit fi))
              adjustments
          in
          List.iter
            (fun (fi, cell) -> Netlist.Circuit.set_cell t.circuit fi cell)
            adjustments;
          adjs.(c) <- adjustments;
          area_deltas.(c) <-
            (if t.area_weight = 0.0 then 0.0
             else
               Cells.Cell.area trial -. Cells.Cell.area original
               +. List.fold_left
                    (fun acc ((fi, cell), (_, old_cell)) ->
                      ignore fi;
                      acc +. Cells.Cell.area cell -. Cells.Cell.area old_cell)
                    0.0
                    (List.combine adjustments saved));
          Fun.protect
            ~finally:(fun () ->
              List.iter
                (fun (fi, cell) -> Netlist.Circuit.set_cell t.circuit fi cell)
                saved;
              Netlist.Circuit.set_cell t.circuit pivot original)
            (fun () ->
              let dirty, log =
                Sta.Electrical.update_logged
                  ~within:(fun id -> t.in_window.(id))
                  t.electrical t.circuit
                  ~resized:(pivot :: List.map fst adjustments)
              in
              Fun.protect
                ~finally:(fun () -> Sta.Electrical.restore t.electrical log)
                (fun () ->
                  List.iter
                    (fun id ->
                      let fanins = Netlist.Circuit.fanins t.circuit id in
                      let nf = Array.length fanins in
                      if nf > 0 then begin
                        let row = Sta.Electrical.arc_delays t.electrical id in
                        let strength =
                          Cells.Cell.strength
                            (Netlist.Circuit.cell_exn t.circuit id)
                        in
                        (* reuse the slot's array across batches when the
                           fanin count is unchanged (values are only read
                           under a matching generation stamp) *)
                        let prev = t.vc_arc.(c).(id) in
                        let line =
                          if Array.length prev = nf then prev
                          else begin
                            let a = Array.make nf t.base.(id) in
                            t.vc_arc.(c).(id) <- a;
                            a
                          end
                        in
                        for k = 0 to nf - 1 do
                          line.(k) <-
                            Variation.Model.delay_moments t.model
                              ~delay:row.(k) ~strength
                        done;
                        t.vc_arc_gen.(c).(id) <- gen
                      end;
                      (if t.pend_gen.(id) = gen then
                         t.pend.(id) <- t.pend.(id) lor (1 lsl c)
                       else begin
                         t.pend.(id) <- 1 lsl c;
                         t.pend_gen.(id) <- gen
                       end);
                      Netlist.Wavefront.push w id)
                    dirty)))
        trials);
  let acc = { am = 0.0; av = 0.0 } in
  let prop = ref 0 in
  let push_pend fo =
    (if t.pend_gen.(fo) = gen then t.pend.(fo) <- t.pend.(fo) lor !prop
     else begin
       t.pend.(fo) <- !prop;
       t.pend_gen.(fo) <- gen
     end);
    Netlist.Wavefront.push w fo
  in
  let visits = ref 0 in
  let cell_evals = ref 0 in
  let rec drain () =
    let id = Netlist.Wavefront.pop w in
    if id >= 0 then begin
      incr visits;
      let mask = if t.pend_gen.(id) = gen then t.pend.(id) else 0 in
      let fanins = Netlist.Circuit.fanins t.circuit id in
      let nf = Array.length fanins in
      if nf > 0 && mask <> 0 then begin
        let old = t.base.(id) in
        let old_mean = old.Numerics.Clark.mean in
        let old_sigma = t.base_sigma.(id) in
        let line = t.f_arc.(id) in
        let oi = t.out_idx.(id) in
        prop := 0;
        if t.fused then begin
          (* Lane-batched recompute: gather this node's pending candidates
             into kernel lanes, hoist each lane's arc/override pointers, and
             run the fanin fold k-major — one [max_lanes_*] call per fanin
             level instead of one cross-module scalar max per (candidate,
             fanin). Lane [li] performs candidate [lane_cell.(li)]'s exact
             solo operation sequence, in order, on the same operands. *)
          let kern = t.kern in
          Numerics.Kernels.ensure kern nc;
          let nl = ref 0 in
          (* unsafe accesses: c < nc ≤ |vc_*|, li < nc ≤ max_vec_cells =
             |lane_*| and ≤ kern.cap after [ensure], k < nf = |fanins| =
             |arcs|, and fi/id are node ids covered by every length-n
             array *)
          for c = 0 to nc - 1 do
            if mask land (1 lsl c) <> 0 then begin
              incr cell_evals;
              let li = !nl in
              Array.unsafe_set t.lane_cell li c;
              Array.unsafe_set t.lane_arcs li
                (if Array.unsafe_get (Array.unsafe_get t.vc_arc_gen c) id = gen
                 then Array.unsafe_get (Array.unsafe_get t.vc_arc c) id
                 else line);
              Array.unsafe_set t.lane_ov li (Array.unsafe_get t.vc_ov c);
              Array.unsafe_set t.lane_ov_gen li
                (Array.unsafe_get t.vc_ov_gen c);
              if fast then begin
                Array.unsafe_set t.lane_em li (Array.unsafe_get t.vc_em c);
                Array.unsafe_set t.lane_es li (Array.unsafe_get t.vc_es c)
              end;
              nl := li + 1
            end
          done;
          let nl = !nl in
          Numerics.Kernels.(
            let am = kern.am and av = kern.av in
            let bm = kern.bm and bv = kern.bv in
            let kem = kern.em and kes = kern.es in
            let bem = kern.bem and bes = kern.bes in
            for k = 0 to nf - 1 do
              let fi = Array.unsafe_get fanins k in
              for li = 0 to nl - 1 do
                let ov_gen = Array.unsafe_get t.lane_ov_gen li in
                let live = Array.unsafe_get ov_gen fi = gen in
                let fm =
                  if live then
                    Array.unsafe_get (Array.unsafe_get t.lane_ov li) fi
                  else Array.unsafe_get t.base fi
                in
                let arc =
                  Array.unsafe_get (Array.unsafe_get t.lane_arcs li) k
                in
                let sm = fm.Numerics.Clark.mean +. arc.Numerics.Clark.mean in
                let sv = fm.Numerics.Clark.var +. arc.Numerics.Clark.var in
                if k = 0 then begin
                  Array.unsafe_set am li sm;
                  Array.unsafe_set av li sv
                end
                else begin
                  Array.unsafe_set bm li sm;
                  Array.unsafe_set bv li sv
                end;
                if fast then begin
                  let e_m =
                    if live then
                      Array.unsafe_get (Array.unsafe_get t.lane_em li) fi
                    else 0.0
                  and e_s =
                    if live then
                      Array.unsafe_get (Array.unsafe_get t.lane_es li) fi
                    else 0.0
                  in
                  if k = 0 then begin
                    Array.unsafe_set kem li e_m;
                    Array.unsafe_set kes li e_s
                  end
                  else begin
                    Array.unsafe_set bem li e_m;
                    Array.unsafe_set bes li e_s
                  end
                end
              done;
              if k > 0 then
                if fast then max_lanes_fast kern nl
                else max_lanes_exact kern nl
            done;
            for li = 0 to nl - 1 do
              let c = Array.unsafe_get t.lane_cell li in
              let m = Array.unsafe_get am li
              and v = Array.unsafe_get av li in
              let move =
                Float.abs (m -. old_mean)
                +. Float.abs (Float.sqrt v -. old_sigma)
              in
              let moved =
                move > (if fast then t.fast_wave else epsilon_wave)
              in
              if fast then begin
                let err =
                  Array.unsafe_get kem li +. Array.unsafe_get kes li
                in
                (* Whenever this stop/propagate decision may diverge from
                   the exact drain's — the true move lies in [move − err,
                   move + err], the exact threshold is [epsilon_wave], ours
                   is [fast_wave] ≥ it — charge the candidate's certified
                   cost exposure: a dropped (or spuriously kept) delta of
                   at most move + err shifts every downstream moment by at
                   most that much (the exact max is jointly 1-Lipschitz in
                   its operand means, ≤ 0.4-Lipschitz in the sigmas), so
                   the cost moves by ≤ max(1, α)·(move + err). Raising
                   [fast_wave] with the tolerance budget widens the
                   charged band and decays wavefronts sooner — regret
                   budget traded directly for skipped drain work. *)
                let divergent =
                  if moved then move -. err <= epsilon_wave
                  else move +. err > epsilon_wave
                in
                if divergent then
                  t.lane_slack.(c) <-
                    t.lane_slack.(c)
                    +. Float.max 1.0 (Objective.alpha t.objective)
                       *. (move +. err)
              end;
              if moved then begin
                (Array.unsafe_get t.lane_ov li).(id) <-
                  Numerics.Clark.moments ~mean:m ~var:v;
                (Array.unsafe_get t.lane_ov_gen li).(id) <- gen;
                if fast then begin
                  (Array.unsafe_get t.lane_em li).(id) <-
                    Array.unsafe_get kem li;
                  (Array.unsafe_get t.lane_es li).(id) <-
                    Array.unsafe_get kes li
                end;
                if oi >= 0 && oi < t.vc_min_out.(c) then
                  t.vc_min_out.(c) <- oi;
                prop := !prop lor (1 lsl c)
              end
            done)
        end
        else begin
          (* unsafe accesses: c < nc ≤ |vc_*|, k < nf = |fanins| = |arcs|,
             and fi/id are node ids covered by every length-n array *)
          for c = 0 to nc - 1 do
            if mask land (1 lsl c) <> 0 then begin
              incr cell_evals;
              let arcs =
                if Array.unsafe_get (Array.unsafe_get t.vc_arc_gen c) id = gen
                then Array.unsafe_get (Array.unsafe_get t.vc_arc c) id
                else line
              in
              let ov = Array.unsafe_get t.vc_ov c
              and ov_gen = Array.unsafe_get t.vc_ov_gen c in
              for k = 0 to nf - 1 do
                let fi = Array.unsafe_get fanins k in
                let fm =
                  if Array.unsafe_get ov_gen fi = gen then
                    Array.unsafe_get ov fi
                  else Array.unsafe_get t.base fi
                in
                let arc = Array.unsafe_get arcs k in
                let sm = fm.Numerics.Clark.mean +. arc.Numerics.Clark.mean in
                let sv = fm.Numerics.Clark.var +. arc.Numerics.Clark.var in
                if k = 0 then begin
                  acc.am <- sm;
                  acc.av <- sv
                end
                else scalar_max acc sm sv
              done;
              let moved =
                Float.abs (acc.am -. old_mean)
                +. Float.abs (Float.sqrt acc.av -. old_sigma)
                > epsilon_wave
              in
              if moved then begin
                ov.(id) <- Numerics.Clark.moments ~mean:acc.am ~var:acc.av;
                ov_gen.(id) <- gen;
                if oi >= 0 && oi < t.vc_min_out.(c) then t.vc_min_out.(c) <- oi;
                prop := !prop lor (1 lsl c)
              end
            end
          done
        end;
        if !prop <> 0 then
          Netlist.Circuit.iter_fanouts t.circuit id ~f:push_pend
      end;
      drain ()
    end
  in
  drain ();
  Obs.Counters.add c_trial_visits !visits;
  Obs.Counters.add c_cell_evals !cell_evals;
  let outs = t.outputs_arr in
  let nouts = Array.length outs in
  let eps = if fast then Array.make nc 0.0 else [||] in
  let costs =
    Array.init nc (fun c ->
        if t.vc_min_out.(c) = max_int then begin
          if fast then eps.(c) <- t.lane_slack.(c);
          t.base_cost
        end
        else begin
          let ov = t.vc_ov.(c) and ov_gen = t.vc_ov_gen.(c) in
          let read o = if ov_gen.(o) = gen then ov.(o) else t.base.(o) in
          let j = t.vc_min_out.(c) in
          if t.fused then
            Numerics.Kernels.(
              (* the batched fold replays the scalar prefix-resume bit for
                 bit: operand 0 is the cached prefix (or the first
                 perturbed output when j = 0) *)
              let kern = t.kern in
              ensure kern (nouts - j + 1);
              let bm = kern.bm and bv = kern.bv in
              let bem = kern.bem and bes = kern.bes in
              let nops = ref 0 in
              if j > 0 then begin
                let p = t.out_prefix.(j - 1) in
                bm.(0) <- p.Numerics.Clark.mean;
                bv.(0) <- p.Numerics.Clark.var;
                if fast then begin
                  bem.(0) <- 0.0;
                  bes.(0) <- 0.0
                end;
                nops := 1
              end;
              for i = j to nouts - 1 do
                let o = outs.(i) in
                let mo = read o in
                bm.(!nops) <- mo.Numerics.Clark.mean;
                bv.(!nops) <- mo.Numerics.Clark.var;
                if fast then begin
                  let live = ov_gen.(o) = gen in
                  bem.(!nops) <- (if live then t.vc_em.(c).(o) else 0.0);
                  bes.(!nops) <- (if live then t.vc_es.(c).(o) else 0.0)
                end;
                incr nops
              done;
              if fast then begin
                fold_into_fast kern !nops;
                (* |Δcost| ≤ |Δμ| + α·|Δσ| for cost = μ + α·σ *)
                eps.(c) <-
                  kern.sc.re_m
                  +. (Objective.alpha t.objective *. kern.sc.re_s)
                  +. t.lane_slack.(c);
                Objective.cost_of_moments t.objective
                  (Numerics.Clark.moments ~mean:kern.sc.rm ~var:kern.sc.rv)
              end
              else begin
                fold_into kern !nops;
                Objective.cost_of_moments t.objective
                  (Numerics.Clark.moments ~mean:kern.sc.rm ~var:kern.sc.rv)
              end)
          else begin
            let m0 = read outs.(j) in
            (if j = 0 then begin
               acc.am <- m0.Numerics.Clark.mean;
               acc.av <- m0.Numerics.Clark.var
             end
             else begin
               let p = t.out_prefix.(j - 1) in
               acc.am <- p.Numerics.Clark.mean;
               acc.av <- p.Numerics.Clark.var;
               scalar_max acc m0.Numerics.Clark.mean m0.Numerics.Clark.var
             end);
            for i = j + 1 to nouts - 1 do
              let m = read outs.(i) in
              scalar_max acc m.Numerics.Clark.mean m.Numerics.Clark.var
            done;
            Objective.cost_of_moments t.objective
              (Numerics.Clark.moments ~mean:acc.am ~var:acc.av)
          end
        end)
  in
  (* identical pricing arithmetic to [cost_with_cell] *)
  Array.iteri
    (fun c base -> costs.(c) <- base +. (t.area_weight *. area_deltas.(c)))
    costs;
  (costs, adjs, eps)

(* The inner loop of Fig. 2: try every available size for the pivot, return
   the best cell, its induced fanin co-sizing, and its cost (ties keep the
   incumbent). The incremental Global engine scores the whole candidate set
   through [vec_costs]; everything else evaluates one trial at a time. Both
   produce bit-identical verdicts. *)
let best_size ?(co_size = true) t ~lib (sub : Netlist.Cone.subcircuit) =
  let pivot = sub.Netlist.Cone.pivot in
  let current = Netlist.Circuit.cell_exn t.circuit pivot in
  let candidates = Cells.Library.sizes_of_fn lib (Cells.Cell.fn current) in
  let current_cost = cost t sub in
  let best =
    ref { best = current; co_resizes = []; best_cost = current_cost; current_cost }
  in
  let trials =
    Array.of_list
      (List.filter
         (fun cell -> not (Cells.Cell.equal cell current))
         (Array.to_list candidates))
  in
  if
    t.incremental && t.mode = Global
    && Array.length trials > 0
    && Array.length trials <= max_vec_cells
  then begin
    let pick costs adjs =
      Array.iteri
        (fun c cell ->
          if costs.(c) < !best.best_cost then
            best :=
              {
                !best with
                best = cell;
                co_resizes = adjs.(c);
                best_cost = costs.(c);
              })
        trials
    in
    if t.tolerance > 0.0 && t.fused then begin
      (* ε-tolerance regime: score with the quadratic-Φ kernels and their
         certified per-candidate error bounds, then decide what the exact
         drain would have decided.
         - certified: the bounds prove the sizer's decision (commit the
           fast argmin, or keep the incumbent) is the one exact scoring
           yields — accept, bit-identical outcome.
         - tolerated: not provably identical, but the worst-case cost
           regret of acting on the fast verdict is ≤ 2·max ε ≤ tolerance —
           accept and record the bound in the trace.
         - fallback: rerun the exact drain (its generation bump leaves no
           fast state live). Decisions are the only thing at stake:
           commits always re-derive exact electrical and arrival state. *)
      let costs, adjs, eps = vec_costs ~fast:true t ~lib ~co_size sub trials in
      let nc = Array.length trials in
      let bi = ref (-1) in
      for c = 0 to nc - 1 do
        if costs.(c) < (if !bi < 0 then current_cost else costs.(!bi)) then
          bi := c
      done;
      let thr = t.move_threshold in
      let certified =
        if !bi >= 0 && current_cost -. costs.(!bi) > thr then begin
          (* exact argmin is provably [bi] and its gain provably clears
             the threshold *)
          let b = !bi in
          let ok = ref (current_cost -. (costs.(b) +. eps.(b)) > thr) in
          for c = 0 to nc - 1 do
            if c <> b && not (costs.(c) -. eps.(c) > costs.(b) +. eps.(b))
            then ok := false
          done;
          !ok
        end
        else begin
          (* fast verdict is "keep": certified iff no candidate can reach
             the threshold even at its optimistic bound *)
          let ok = ref true in
          for c = 0 to nc - 1 do
            if current_cost -. (costs.(c) -. eps.(c)) > thr then ok := false
          done;
          !ok
        end
      in
      if certified then begin
        Obs.Counters.bump c_tol_certified;
        pick costs adjs
      end
      else begin
        let eps_max = Array.fold_left Float.max 0.0 eps in
        if 2.0 *. eps_max <= t.tolerance then begin
          Obs.Counters.bump c_tol_tolerated;
          t.tol_trace <- (pivot, 2.0 *. eps_max) :: t.tol_trace;
          pick costs adjs
        end
        else begin
          Obs.Counters.bump c_tol_fallback;
          let costs, adjs, _ = vec_costs t ~lib ~co_size sub trials in
          pick costs adjs
        end
      end
    end
    else begin
      let costs, adjs, _ = vec_costs t ~lib ~co_size sub trials in
      pick costs adjs
    end
  end
  else
    Array.iter
      (fun cell ->
        if not (Cells.Cell.equal cell current) then begin
          let c, adjustments = cost_with_cell ~co_size ~lib t sub cell in
          if c < !best.best_cost then
            best :=
              { !best with best = cell; co_resizes = adjustments; best_cost = c }
        end)
      candidates;
  !best

(* Make a committed resize visible to subsequent window evaluations. A full
   electrical refresh is one cheap LUT sweep and guarantees later trials in
   the same sweep never score against stale loads or slews; the cached base
   arrivals are re-derived with it. *)
let commit t (_sub : Netlist.Cone.subcircuit) =
  Sta.Electrical.recompute_all t.electrical t.circuit;
  refresh_base t

(* Incremental commit: an unclipped exact-stop [Electrical.update] from the
   resized gates, then the cached base arrivals are resynced by draining
   the change wavefront with a bit-equal stop — [recompute_node_with]
   performs the same operations in the same order as the full
   [propagate_into ~exact:true] pass, so a node whose fanin arrivals and
   arc delays are unchanged recomputes to bit-identical moments and the
   sweep halts there, leaving [base] bit-equal to a full refresh. The
   FULLSSTA annotation is deliberately NOT touched here: mid-sweep trials
   read it only as the frozen boundary (Windowed mode) or not at all
   (Global mode reads [base]), and the caller re-syncs it once per outer
   iteration with [Fullssta.update]. *)
let commit_incremental t ~resized =
  let dirty = Sta.Electrical.update t.electrical t.circuit ~resized in
  (* Re-derive the arc caches of every replaced row before the resync, so
     the drain below (and all later trials) read committed-state arc
     moments; a fresh generation leaves no trial override live, making
     [fast_recompute_node] read pure base arrivals — exactly what
     [recompute_node_with (fun fi -> t.base.(fi))] did. *)
  List.iter (fun id -> refresh_arc_cache t id) dirty;
  t.gen <- t.gen + 1;
  let w = t.wavefront in
  Netlist.Wavefront.clear w;
  List.iter (fun id -> Netlist.Wavefront.push w id) dirty;
  let acc = { am = 0.0; av = 0.0 } in
  let push_fanout fo = Netlist.Wavefront.push w fo in
  let min_o = ref max_int in
  let visits = ref 0 in
  let rec drain () =
    let id = Netlist.Wavefront.pop w in
    if id >= 0 then begin
      incr visits;
      if t.fused then fused_recompute_into t acc id
      else fast_recompute_into t acc id;
      let old = t.base.(id) in
      if
        not
          (Float.equal acc.am old.Numerics.Clark.mean
          && Float.equal acc.av old.Numerics.Clark.var)
      then begin
        t.base.(id) <- Numerics.Clark.moments ~mean:acc.am ~var:acc.av;
        t.base_sigma.(id) <- Float.sqrt acc.av;
        let oi = t.out_idx.(id) in
        if oi >= 0 && oi < !min_o then min_o := oi;
        Netlist.Circuit.iter_fanouts t.circuit id ~f:push_fanout
      end;
      drain ()
    end
  in
  drain ();
  Obs.Counters.add c_commit_visits !visits;
  (* the resync wrote nothing before output index [min_o], so earlier prefix
     entries — and, when no output arrival changed at all, the committed
     cost itself — are already the values a full refold would produce (the
     last prefix entry IS the RV_O fold [cost_of_rv] performs: the same left
     [max_exact] fold over the same output order) *)
  (let m = Array.length t.out_prefix in
   if !min_o < m then begin
     rebuild_out_prefix ~from:!min_o t;
     t.base_cost <- Objective.cost_of_moments t.objective t.out_prefix.(m - 1)
   end
   else if m = 0 then t.base_cost <- rv_cost t (fun o -> t.base.(o)));
  t.dirt <- List.rev_append dirty t.dirt

let base_cost t = t.base_cost

(* Tolerance-regime audit trail: every verdict accepted on budget rather
   than certified-identical, newest first, as (pivot, certified cost-regret
   bound). Empty in exact mode and whenever every decision certified. *)
let tolerance_trace t = t.tol_trace

(* Hand the accumulated electrical-dirty ids (from incremental commits) to
   the caller and forget them; used to decide when a dominance prune needs
   recomputing. *)
let take_dirt t =
  let d = t.dirt in
  t.dirt <- [];
  d

let fassta_stats t = t.stats

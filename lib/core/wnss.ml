(* Worst Negative Statistical Slack (WNSS) path tracing — paper §4.4.

   Unlike the deterministic case, the input with the highest mean (or the
   highest variance) is not necessarily the one driving the variance at a
   gate's output: the statistical max blends all inputs. Inputs are ranked
   pairwise:

   - when the cutoff conditions (5)/(6) hold — |μA − μB| / a ≥ 2.6 — the max
     collapses and the higher-mean input plainly dominates;
   - otherwise we compare the sensitivities ∂Var(max)/∂μ, evaluated by a
     forward finite difference with step h ≈ 1% of the mean. Mean and sigma
     along a path are coupled (you cannot move one without the other), so
     the perturbation drags sigma along by Δσ = c·Δμ with c equal to the
     variation model's delay-proportionality coefficient.

   The trace starts at the circuit's virtual output (the statistical max
   over all primary outputs, RV_O) and walks fanin-ward to a primary input,
   applying the same ranking at every step. *)

type config = {
  h_fraction : float; (* finite-difference step as a fraction of the mean *)
  coupling : float; (* the paper's c in Δσ = c·Δμ *)
}

let config ?(h_fraction = 0.01) ~coupling () =
  if h_fraction <= 0.0 then invalid_arg "Wnss.config: h_fraction <= 0";
  { h_fraction; coupling }

let of_model model = config ~coupling:(Variation.Model.coupling model) ()

let variance_of (m : Numerics.Clark.moments) = m.Numerics.Clark.var

(* statobs: each call costs two extra Clark max evaluations, the dominant
   expense of the §4.4 path ranking. *)
let c_finite_diff = Obs.Counters.make "wnss.finite_diff.evals"

(* ∂Var(max(A,B))/∂μA by forward finite difference, with the σ coupling. *)
let variance_sensitivity t ~target:(a : Numerics.Clark.moments) ~other:b =
  Obs.Counters.bump c_finite_diff;
  let h = t.h_fraction *. (Float.abs a.Numerics.Clark.mean +. 1.0) in
  let base = variance_of (Numerics.Clark.max_fast a b) in
  let sigma_a = Numerics.Clark.sigma a in
  let sigma_a' = sigma_a +. (t.coupling *. h) in
  let a' =
    Numerics.Clark.moments
      ~mean:(a.Numerics.Clark.mean +. h)
      ~var:(sigma_a' *. sigma_a')
  in
  (variance_of (Numerics.Clark.max_fast a' b) -. base) /. h

type choice = First | Second

(* Pairwise dominance per §4.4. *)
let dominant t (a : Numerics.Clark.moments) (b : Numerics.Clark.moments) =
  let spread = Numerics.Clark.spread a b in
  if spread <= 0.0 then
    if a.Numerics.Clark.mean >= b.Numerics.Clark.mean then First else Second
  else
    let alpha = (a.Numerics.Clark.mean -. b.Numerics.Clark.mean) /. spread in
    if alpha >= Numerics.Clark.cutoff then First
    else if alpha <= -.Numerics.Clark.cutoff then Second
    else
      let sa = variance_sensitivity t ~target:a ~other:b in
      let sb = variance_sensitivity t ~target:b ~other:a in
      if sa >= sb then First else Second

(* Champion sweep across a non-empty list of labelled contributions. *)
let pick_dominant t = function
  | [] -> invalid_arg "Wnss.pick_dominant: empty"
  | (x0, m0) :: rest ->
      List.fold_left
        (fun (x, m) (y, my) ->
          match dominant t m my with First -> (x, m) | Second -> (y, my))
        (x0, m0) rest

(* Generic trace over abstract contribution providers, so hand-specified
   examples (Fig. 3) use exactly the production ranking code. [contributions]
   gives, for a node, each fanin with the moments of (fanin arrival + arc
   delay); empty means a path endpoint. [roots] are the circuit outputs with
   their arrival moments. Returns the path output-first. *)
let trace_generic t ~contributions ~roots =
  let root, _ = pick_dominant t roots in
  let rec walk node acc =
    match contributions node with
    | [] -> List.rev (node :: acc)
    | inputs ->
        let next, _ = pick_dominant t inputs in
        walk next (node :: acc)
  in
  walk root []

let circuit_contributions ~model circuit full =
  let electrical = Ssta.Fullssta.electrical full in
  fun id ->
    match Netlist.Circuit.cell circuit id with
    | None -> []
    | Some _ ->
        let fanins = Netlist.Circuit.fanins circuit id in
        Array.to_list
          (Array.mapi
             (fun k fi ->
               let arc = Ssta.Fassta.arc_moments model circuit electrical id k in
               (fi, Numerics.Clark.sum (Ssta.Fullssta.moments full fi) arc))
             fanins)

(* Optional root pruning: [skip] marks outputs statically proven to never
   carry the WNSS path (e.g. Absint.Dominance's certified-dominated set).
   Filtering is only sound for such predicates, so it is opt-in; if a
   predicate discards every root we fall back to the full set rather than
   trace nothing. *)
let filter_roots skip roots =
  match skip with
  | None -> roots
  | Some p -> (
      match List.filter (fun (r, _) -> not (p r)) roots with
      | [] -> roots
      | kept -> kept)

(* Standard trace on a FULLSSTA-annotated circuit: from the dominant output
   of the virtual RV_O max node down to a primary input. *)
let trace ?config:cfg ?skip ~model circuit full =
  let t = match cfg with Some c -> c | None -> of_model model in
  let contributions = circuit_contributions ~model circuit full in
  let roots =
    filter_roots skip
      (List.map
         (fun o -> (o, Ssta.Fullssta.moments full o))
         (Netlist.Circuit.outputs circuit))
  in
  trace_generic t ~contributions ~roots

(* The statistical critical cone: where the single-path trace descends only
   into the dominant input, the cone includes EVERY fanin whose contribution
   is not cutoff-dominated — precisely the inputs the paper's conditions
   (5)/(6) say still shape the output variance (|Δμ|/a < 2.6 means the max
   genuinely blends them). Variance at RV_O flows in through all of these,
   so the sizer visits them all. *)
let cone_generic t ~contributions ~roots =
  let seen = Hashtbl.create 997 in
  let rec visit node =
    if not (Hashtbl.mem seen node) then begin
      Hashtbl.add seen node ();
      match contributions node with
      | [] -> ()
      | inputs ->
          let _, dominant_m = pick_dominant t inputs in
          List.iter
            (fun (fi, m) ->
              let spread = Numerics.Clark.spread dominant_m m in
              let dominated =
                spread > 0.0
                && (dominant_m.Numerics.Clark.mean -. m.Numerics.Clark.mean)
                   /. spread
                   >= Numerics.Clark.cutoff
              in
              if not dominated then visit fi)
            inputs
    end
  in
  (* Every root within cutoff of the dominant root contributes to RV_O. *)
  let _, dom_m = pick_dominant t roots in
  List.iter
    (fun (r, m) ->
      let spread = Numerics.Clark.spread dom_m m in
      let dominated =
        spread > 0.0
        && (dom_m.Numerics.Clark.mean -. m.Numerics.Clark.mean) /. spread
           >= Numerics.Clark.cutoff
      in
      if not dominated then visit r)
    roots;
  Hashtbl.fold (fun id () acc -> id :: acc) seen [] |> List.sort Stdlib.compare

let critical_cone ?config:cfg ?skip ~model circuit full =
  let t = match cfg with Some c -> c | None -> of_model model in
  let contributions id =
    match Netlist.Circuit.cell circuit id with
    | None -> []
    | Some _ ->
        let electrical = Ssta.Fullssta.electrical full in
        let fanins = Netlist.Circuit.fanins circuit id in
        Array.to_list
          (Array.mapi
             (fun k fi ->
               let arc = Ssta.Fassta.arc_moments model circuit electrical id k in
               (fi, Numerics.Clark.sum (Ssta.Fullssta.moments full fi) arc))
             fanins)
  in
  let roots =
    filter_roots skip
      (List.map
         (fun o -> (o, Ssta.Fullssta.moments full o))
         (Netlist.Circuit.outputs circuit))
  in
  cone_generic t ~contributions ~roots

(* WNSS path anchored at one specific output. *)
let trace_from_output ?config:cfg ~model circuit full output =
  let t = match cfg with Some c -> c | None -> of_model model in
  let contributions = circuit_contributions ~model circuit full in
  trace_generic t ~contributions
    ~roots:[ (output, Ssta.Fullssta.moments full output) ]

(* Union of the per-output WNSS paths, deduplicated, in topological order —
   the whole statistical-critical forest. All outputs contribute to RV_O's
   variance (paper §2.1), so the sizer sweeps every per-output path rather
   than re-saturating the single dominant one. *)
let trace_all_outputs ?config:cfg ?skip ~model circuit full =
  let t = match cfg with Some c -> c | None -> of_model model in
  let contributions = circuit_contributions ~model circuit full in
  let seen = Hashtbl.create 997 in
  let outputs =
    List.map
      (fun (o, _) -> o)
      (filter_roots skip
         (List.map
            (fun o -> (o, Ssta.Fullssta.moments full o))
            (Netlist.Circuit.outputs circuit)))
  in
  List.iter
    (fun o ->
      let path =
        trace_generic t ~contributions
          ~roots:[ (o, Ssta.Fullssta.moments full o) ]
      in
      List.iter (fun id -> Hashtbl.replace seen id ()) path)
    outputs;
  Hashtbl.fold (fun id () acc -> id :: acc) seen []
  |> List.sort Stdlib.compare

(** Domain-parallel WNSS-window evaluation (statserve tentpole, ROADMAP
    item 2): a shared-nothing replica pool that evaluates fixed-size chunks
    of the per-iteration window set concurrently, for the sizer's
    parallel-evaluate / serial-commit round loop.

    Each worker domain owns a full replica of the job — a
    {!Netlist.Circuit.copy}, its own {!Ssta.Fullssta.run} annotation and its
    own {!Window.t} — built inside the worker, so no mutable state is ever
    shared across domains. The master keeps replicas bit-identical to its
    own circuit by replaying every commit and every end-of-iteration
    refresh as an op stream ({!record_commit} / {!record_refresh}); because
    replica construction and every replayed step are deterministic, every
    verdict a replica returns is the verdict the serial engine would have
    computed at the same point. DESIGN.md §15 carries the full determinism
    argument.

    Work conservation: {!chunk_size} is a fixed constant, independent of
    the domain count, so the sequence of evaluated chunks (and hence the
    [window.trial.*] / [parwin.*] counter totals) depends only on the
    circuit and config — domain count only changes how each chunk is
    sliced across lanes. *)

type verdict = {
  gate : Netlist.Circuit.id;
  best : Cells.Cell.t;
  co_resizes : (Netlist.Circuit.id * Cells.Cell.t) list;
  best_cost : float;
  current_cost : float;
}
(** {!Window.verdict} plus the pivot it belongs to. *)

type params = {
  lib : Cells.Library.t;
  full_cfg : Ssta.Fullssta.config;
  mode : Window.mode;  (** must be [Global] for cross-replica validity *)
  area_weight : float;
  fused : bool;
  move_threshold : float;
  depth : int;  (** window TFI/TFO depth *)
  model : Variation.Model.t;
  objective : Objective.t;
  paranoid : bool;
}

type t

val chunk_size : int
(** Gates evaluated speculatively per round (fixed, domain-count
    independent — the work-conservation invariant). *)

val create : domains:int -> params -> Netlist.Circuit.t -> t
(** Spawn [domains - 1] worker domains (0 when [domains <= 1]: every chunk
    is then evaluated inline on the master window — same algorithm, no
    concurrency). Each worker copies [circuit] and builds its replica;
    [create] returns once every replica is ready, after which the master
    may freely mutate [circuit] again. Raises [Failure] if a worker dies
    during construction. *)

val eval_chunk :
  t -> master:Window.t -> circuit:Netlist.Circuit.t ->
  gates:Netlist.Circuit.id array -> pos:int -> len:int -> verdict array
(** Evaluate gates [pos, pos+len) of [gates]: the chunk is split into
    contiguous lane slices (master takes the first; workers one each),
    evaluated concurrently, and returned in gate order. Workers first
    replay any ops recorded since their previous round, so every verdict is
    computed against exactly the master's committed state. *)

val record_commit : t -> (Netlist.Circuit.id * Cells.Cell.t) list -> unit
(** Queue a committed move set for replica replay ([Circuit.set_cell] +
    {!Window.commit_incremental}), in commit order. *)

val record_refresh : t -> Netlist.Circuit.id list -> unit
(** Queue an end-of-iteration resync for replica replay
    ({!Ssta.Fullssta.update} with [refresh_electrical:false], then
    {!Window.refresh}) — the replica-side mirror of the sizer's
    per-iteration FULLSSTA update. *)

val count_discarded : int -> unit
(** Account speculative verdicts dropped by a serial-commit restart
    ([parwin.windows.discarded]). *)

val note_fallback : unit -> unit
(** Account a sizer run that requested parallel windows but fell back to
    the serial engine ([parwin.fallback]). *)

val shutdown : t -> unit
(** Stop and join every worker. Idempotent; safe after a worker crash. *)

(** Worst-negative-statistical-slack (WNSS) path tracing (paper §4.4):
    rank gate inputs by cutoff dominance or finite-difference variance
    sensitivity, and walk the dominant chain from RV_O to a primary input. *)

type config = { h_fraction : float; coupling : float }

val config : ?h_fraction:float -> coupling:float -> unit -> config
(** [h_fraction] defaults to 0.01 (the paper's "h of the order of 1%% of the
    mean"); [coupling] is the paper's c in Δσ = c·Δμ. *)

val of_model : Variation.Model.t -> config

val variance_sensitivity :
  config -> target:Numerics.Clark.moments -> other:Numerics.Clark.moments -> float
(** ∂Var(max(target, other))/∂μ_target by forward finite difference with the
    σ coupling. *)

type choice = First | Second

val dominant : config -> Numerics.Clark.moments -> Numerics.Clark.moments -> choice
(** Pairwise ranking: cutoff (5)/(6) picks the higher mean; otherwise the
    larger variance sensitivity wins. *)

val pick_dominant :
  config -> ('a * Numerics.Clark.moments) list -> 'a * Numerics.Clark.moments

val trace_generic :
  config ->
  contributions:
    (Netlist.Circuit.id -> (Netlist.Circuit.id * Numerics.Clark.moments) list) ->
  roots:(Netlist.Circuit.id * Numerics.Clark.moments) list ->
  Netlist.Circuit.id list
(** Trace over abstract contribution providers (used by the Fig. 3
    reproduction); returns the path output-first. *)

val trace :
  ?config:config ->
  ?skip:(Netlist.Circuit.id -> bool) ->
  model:Variation.Model.t ->
  Netlist.Circuit.t ->
  Ssta.Fullssta.t ->
  Netlist.Circuit.id list
(** WNSS path of an annotated circuit, dominant primary output first,
    ending at a primary input.

    [skip] excludes primary outputs from the root set before the dominant
    one is picked. Only sound for predicates that are true exclusively on
    outputs statically proven to never carry the WNSS path — pass
    [Absint.Dominance] membership, whose certified margin (default 4 joint
    sigmas) is beyond the 2.6 cutoff at which the ranking itself declares a
    root dominated. If the predicate discards every root, the full root set
    is used (a total skip would otherwise trace nothing). *)

val trace_from_output :
  ?config:config ->
  model:Variation.Model.t ->
  Netlist.Circuit.t ->
  Ssta.Fullssta.t ->
  Netlist.Circuit.id ->
  Netlist.Circuit.id list
(** WNSS path anchored at one specific output. *)

val critical_cone :
  ?config:config ->
  ?skip:(Netlist.Circuit.id -> bool) ->
  model:Variation.Model.t ->
  Netlist.Circuit.t ->
  Ssta.Fullssta.t ->
  Netlist.Circuit.id list
(** The statistical critical cone: every node reachable from RV_O through
    fanins that are not cutoff-dominated (the inputs conditions (5)/(6) say
    still shape the variance), deduplicated, topologically ordered.
    [skip] prunes roots as in {!trace}. *)

val trace_all_outputs :
  ?config:config ->
  ?skip:(Netlist.Circuit.id -> bool) ->
  model:Variation.Model.t ->
  Netlist.Circuit.t ->
  Ssta.Fullssta.t ->
  Netlist.Circuit.id list
(** Union of the per-output WNSS paths (the statistical-critical forest),
    deduplicated, topologically ordered. [skip] prunes roots as in
    {!trace}. *)

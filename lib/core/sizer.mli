(** StatisticalGreedy — the paper's gain-based statistical sizing engine
    (Fig. 2), plus the α = 0 mean-delay baseline configuration. The circuit
    is resized in place. *)

type commit_mode =
  | Sequential
      (** commit each winning resize immediately (default; avoids intra-batch
          load conflicts) *)
  | Batch  (** the paper's literal pseudocode: resize scheduled gates at the
          end of the sweep *)

type path_source =
  | Dominant_path  (** the single dominant WNSS path (paper pseudocode) *)
  | All_output_paths  (** union of per-output WNSS paths *)
  | Critical_cone
      (** every node not cutoff-dominated on some path to RV_O (default;
          all of these shape RV_O's variance per conditions (5)/(6)) *)

type config = {
  objective : Objective.t;
  model : Variation.Model.t;
  window_depth : int;  (** TFI/TFO levels, paper uses 2 *)
  max_iterations : int;
  samples : int;  (** FULLSSTA pdf points *)
  min_improvement : float;  (** relative outer-cost decrease to continue *)
  patience : int;  (** consecutive non-improving iterations tolerated *)
  move_threshold : float;  (** minimum window-cost gain (ps) per move *)
  area_weight : float;  (** ps of move cost per unit of added area *)
  commit_mode : commit_mode;
  path_source : path_source;
  evaluation : Window.mode;  (** trial scoring: windowed (paper) or global *)
  electrical : Sta.Electrical.config;
  incremental : bool;
      (** default true: one persistent electrical state, FULLSSTA annotation
          and window per run, kept in sync with dirty-cone updates
          ({!Sta.Electrical.update}, {!Ssta.Fullssta.update},
          {!Window.commit_incremental}) instead of per-iteration from-scratch
          rebuilds. Every incremental stop is exact (bit-equal values), so
          the sizing trajectory and final cells are identical to the scratch
          path — only faster. *)
  paranoid : bool;
      (** default false: cross-check every incremental FULLSSTA update
          against a from-scratch run, raising {!Ssta.Fullssta.Divergence}
          (STAT005) on any mismatch. Costs more than the scratch path;
          meant for debugging and CI property runs. *)
  fused_kernels : bool;
      (** default true: route the inner loops through the statkern
          fused/batched kernels — flattened-LUT paired lookups with
          memoization ({!Cells.Memo}) and staged batched Clark folds
          ({!Numerics.Kernels}). A pure execution-strategy switch: results
          are bit-identical; [false] keeps the scalar reference engine (the
          benchmark baseline and property-test oracle). *)
  tolerance : float;
      (** default 0 (exact). > 0 opts window verdicts into the ε-certified
          quadratic-Φ scoring regime (requires [fused_kernels]): each
          verdict is proven identical to exact scoring, accepted with a
          certified cost-regret bound ≤ [tolerance] ps (audited via
          {!Window.tolerance_trace}), or transparently re-scored exactly. *)
  window_domains : int;
      (** default 0: the serial engine, untouched. >= 1 evaluates each
          iteration's window sweep through the {!Parwin} replica pool
          ([window_domains - 1] worker domains plus the master lane):
          fixed-size chunks of the visited-gate sequence are scored
          concurrently on bit-identical replicas, then walked serially in
          gate order — in [Sequential] mode the first commit-worthy verdict
          commits exactly as the serial engine would and the rest of the
          chunk is re-evaluated post-commit. Final sizings are
          byte-identical to the serial engine for every domain count, and
          the evaluation-work counters ([window.trial.*], [parwin.rounds],
          [parwin.windows.*]) are domain-count invariant (the
          work-conservation property gated in CI). Requires [incremental],
          [Window.Global] evaluation and [tolerance = 0]; anything else
          logs a warning, bumps [parwin.fallback] and runs serially. *)
}

val default_config : config
(** α = 3, depth-2 windows, 12-point pdfs, sequential commits, per-output
    path forest, 120 iterations max, incremental engines on. *)

val mean_delay_config : config
(** The "Original" baseline: identical machinery at α = 0. *)

type iteration = {
  index : int;
  cost : float;
  mean : float;
  sigma : float;
  area : float;
  resizes : int;
  path_length : int;
}

type stop_reason = Converged | No_candidate | Iteration_limit

type result = {
  config : config;
  initial_moments : Numerics.Clark.moments;
  final_moments : Numerics.Clark.moments;
  initial_area : float;
  final_area : float;
  iterations : iteration list;
  stop_reason : stop_reason;
  total_resizes : int;
  cutoff_fraction : float;
  windows_evaluated : int;
      (** gate windows actually scored across all iterations *)
  windows_skipped : int;
      (** path gates statically certified inert and skipped ([prune] only) *)
  runtime_s : float;
}

val optimize :
  ?ignore_lint:bool ->
  ?prune:bool ->
  ?config:config ->
  lib:Cells.Library.t ->
  Netlist.Circuit.t ->
  result
(** Runs a lint preflight first ({!Lint.Preflight.gate} over circuit,
    library, and variation model): Error-level findings raise
    {!Lint.Preflight.Rejected} unless [ignore_lint] is set; warnings are
    logged. After the run, LUT extrapolation observed during sizing is
    logged once per cell (LIB007).

    [prune] (default false) turns on certified dominance pruning: before
    each iteration's window sweep, an {!Absint.Statcheck} pass over the
    current sizing feeds {!Absint.Dominance}, and path gates in its skip
    set — provably unable to influence RV_O's worst slack, and electrically
    isolated from every live gate — are not window-evaluated. Roots are
    never filtered, so the traced path is the unpruned run's; with the
    default [Window.Global] evaluation the final sizing is provably
    identical (skipped gates' window gains are below [move_threshold] by
    the dominance margin), only cheaper. [windows_skipped] reports the
    savings. *)

val mean_change_pct :
  original:Numerics.Clark.moments -> optimized:result -> float

val sigma_change_pct :
  original:Numerics.Clark.moments -> optimized:result -> float

val area_change_pct : original_area:float -> optimized:result -> float

val sigma_over_mean : Numerics.Clark.moments -> float

val pp_stop_reason : stop_reason Fmt.t
val pp_result : result Fmt.t

(* Moments of max(A, B) for (jointly) normal A, B — C. E. Clark, "The greatest
   of a finite set of random variables", Operations Research 9 (1961); the
   paper's equations (1)-(3).

   With a² = Var A + Var B − 2ρ·σA·σB and α = (μA − μB) / a:

     E[max]   = μA·Φ(α) + μB·Φ(−α) + a·φ(α)
     E[max²]  = (μA²+σA²)·Φ(α) + (μB²+σB²)·Φ(−α) + (μA+μB)·a·φ(α)
     Var[max] = E[max²] − E[max]²

   The fast variant applies the paper's cutoff (equations (5)/(6)): when
   |α| ≥ 2.6 the saturated quadratic erf makes Φ(α) ∈ {0, 1} and φ(α) ≈ 0,
   so the max collapses to the dominant operand with no arithmetic. *)

type moments = { mean : float; var : float }

let moments ~mean ~var =
  if var < 0.0 then invalid_arg "Clark.moments: negative variance";
  { mean; var }

let sigma m = Float.sqrt m.var

let pp_moments ppf m = Fmt.pf ppf "N(%g, %g²)" m.mean (sigma m)

let sum a b = { mean = a.mean +. b.mean; var = a.var +. b.var }

let shift a d = { a with mean = a.mean +. d }

(* How the fast max was resolved; the experiment in §4.3 reports how often
   each branch fires. *)
type resolution = Left_dominates | Right_dominates | Blended

(* statobs counters: short-circuit resolutions (rules 5/6) vs full blended
   evaluations, plus exact-max calls — together they measure how much
   arithmetic the paper's cutoff actually saves on a given workload. *)
let c_max_exact = Obs.Counters.make "clark.max_exact.calls"
let c_cutoff = Obs.Counters.make "clark.max_fast.cutoff"
let c_blended = Obs.Counters.make "clark.max_fast.blended"

let spread ?(rho = 0.0) a b =
  (* the rho = 0 hot path skips the two sigma square roots: the correlation
     term is then [0.0 *. sigma a *. sigma b] = +0.0 (sigmas are finite and
     non-negative), and [v -. 0.0] is bitwise [v], so both branches produce
     the identical float *)
  let v =
    if rho = 0.0 then a.var +. b.var
    else a.var +. b.var -. (2.0 *. rho *. sigma a *. sigma b)
  in
  Float.sqrt (Float.max v 0.0)

let max_exact ?(rho = 0.0) a b =
  Obs.Counters.bump c_max_exact;
  let sp = spread ~rho a b in
  if sp <= 0.0 then
    (* Identical (or perfectly correlated equal-sigma) operands: the max is
       whichever has the larger mean. *)
    if a.mean >= b.mean then a else b
  else
    let alpha = (a.mean -. b.mean) /. sp in
    let phi = Normal.pdf alpha in
    let cdf_pos = Normal.cdf alpha in
    let cdf_neg = 1.0 -. cdf_pos in
    let m1 = (a.mean *. cdf_pos) +. (b.mean *. cdf_neg) +. (sp *. phi) in
    let m2 =
      (((a.mean *. a.mean) +. a.var) *. cdf_pos)
      +. (((b.mean *. b.mean) +. b.var) *. cdf_neg)
      +. ((a.mean +. b.mean) *. sp *. phi)
    in
    { mean = m1; var = Float.max (m2 -. (m1 *. m1)) 0.0 }

let cutoff = Erf.phi_saturation_point

let max_fast_resolved a b =
  let sp = spread a b in
  if sp <= 0.0 then begin
    Obs.Counters.bump c_cutoff;
    if a.mean >= b.mean then (a, Left_dominates) else (b, Right_dominates)
  end
  else
    let alpha = (a.mean -. b.mean) /. sp in
    if alpha >= cutoff then begin
      Obs.Counters.bump c_cutoff;
      (a, Left_dominates)
    end
    else if alpha <= -.cutoff then begin
      Obs.Counters.bump c_cutoff;
      (b, Right_dominates)
    end
    else begin
      Obs.Counters.bump c_blended;
      let phi = Normal.pdf alpha in
      let cdf_pos = Normal.cdf_fast alpha in
      let cdf_neg = 1.0 -. cdf_pos in
      let m1 = (a.mean *. cdf_pos) +. (b.mean *. cdf_neg) +. (sp *. phi) in
      let m2 =
        (((a.mean *. a.mean) +. a.var) *. cdf_pos)
        +. (((b.mean *. b.mean) +. b.var) *. cdf_neg)
        +. ((a.mean +. b.mean) *. sp *. phi)
      in
      ({ mean = m1; var = Float.max (m2 -. (m1 *. m1)) 0.0 }, Blended)
    end

let max_fast a b = fst (max_fast_resolved a b)

(* The max over an empty operand set has no distribution (a fold over
   nothing would have to invent a neutral element, and -inf is not a normal
   random variable), so both list forms reject it loudly instead of leaking
   a bogus value into an arrival-time propagation. *)
let max_exact_list = function
  | [] ->
      invalid_arg
        "Clark.max_exact_list: empty operand list (the max of zero random \
         variables is undefined; callers must supply at least one arrival)"
  | m :: rest -> List.fold_left (fun acc x -> max_exact acc x) m rest

let max_fast_list = function
  | [] ->
      invalid_arg
        "Clark.max_fast_list: empty operand list (the max of zero random \
         variables is undefined; callers must supply at least one arrival)"
  | m :: rest -> List.fold_left (fun acc x -> max_fast acc x) m rest

(** Discrete probability distributions — the FULLSSTA pdf representation
    (Liou et al., DAC'01): finitely many (value, mass) points with [sum] by
    cross sums, [max] by CDF products, and re-sampling to a point budget. *)

type t

val of_points : (float * float) list -> t
(** Build from (value, mass) pairs; sorts, merges duplicates, renormalizes.
    Raises [Invalid_argument] when total mass is zero. *)

val constant : float -> t
(** Point mass. *)

val of_normal :
  ?span:float -> samples:int -> mean:float -> sigma:float -> unit -> t
(** Discretize a normal over mean ± span·sigma (default span 4.0) into
    [samples] equal-width bins with CDF-difference masses. *)

val of_samples : samples:int -> float list -> t
(** Empirical distribution of raw draws, re-binned to [samples] points. *)

val equal : t -> t -> bool
(** Bit-level equality of supports and masses (no tolerance) — the exact
    "nothing changed" test used by incremental propagation. *)

val points : t -> (float * float) list
val support_size : t -> int
val min_value : t -> float
val max_value : t -> float

val mean : t -> float
val variance : t -> float
val std : t -> float
val to_moments : t -> Clark.moments

val cdf : t -> float -> float
(** Mass at or below the argument (right-continuous step CDF). *)

val quantile : t -> float -> float
(** Smallest support point whose cumulative mass reaches the argument. *)

val shift : t -> float -> t
val scale : t -> float -> t

val sum : t -> t -> t
(** Distribution of the sum of independent variables (support grows to the
    product of sizes; follow with {!resample}). *)

val max2 : t -> t -> t
(** Distribution of the max of independent variables. *)

val max_list : t list -> t
(** Left fold of {!max2}; raises on the empty list. *)

val resample : t -> samples:int -> t
(** Re-bin to at most [samples] points, preserving the mean exactly. *)

val check_invariants : t -> bool
(** Structural invariants (sorted support, masses ≥ 0 summing to 1). *)

val pp : t Fmt.t

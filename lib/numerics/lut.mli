(** 2-D lookup tables with bilinear interpolation and edge clamping — the
    NLDM-style timing model of the standard-cell library. *)

type t

val create : rows:float array -> cols:float array -> values:float array array -> t
(** Axes must be strictly increasing; [values.(i).(j)] sits at
    ([rows.(i)], [cols.(j)]). Raises [Invalid_argument] on shape errors. *)

val of_function : rows:float array -> cols:float array -> (float -> float -> float) -> t
(** Tabulate a function on the given grid. *)

val query : t -> row:float -> col:float -> float
(** Bilinear interpolation; queries outside the grid clamp to the edge and
    bump the table's out-of-bounds counter (see {!oob_count}). *)

val shares_axes : t -> t -> bool
(** Whether two tables share their axis arrays physically — the condition
    under which {!query2} fuses the index computation. Holds for every
    (delay, output-slew) pair produced by the generated library, which
    tabulates both from one shared axis pair. *)

val query2 : t -> t -> row:float -> col:float -> float * float
(** [query2 a b ~row ~col] is [(query a ~row ~col, query b ~row ~col)] —
    bit-identical values and identical out-of-bounds accounting — but when
    [shares_axes a b] the axis bisection and interpolation fractions are
    computed once and reused for both tables. This is the fused kernel for
    the (delay, slew) pair every timing arc evaluates at the same
    (input-slew, load) point. *)

val range : t -> row:float * float -> col:float * float -> float * float
(** [(min, max)] of the clamped bilinear surface over the query box
    [row × col]. Exact for the piecewise-bilinear surface (extremes are
    attained on box corners and grid-line crossings, all of which are
    evaluated). Unlike {!query}, never bumps the out-of-bounds counter —
    this is the certification entry point for sweeping hypothetical
    operating boxes. Raises [Invalid_argument] on an empty box. *)

val in_range : t -> row:float -> col:float -> bool
(** Whether a query point lies inside the table (no clamping needed). Does
    not touch the out-of-bounds counter. *)

val oob_count : t -> int
(** How many {!query} calls since creation (or {!reset_oob}) were clamped —
    the raw signal behind the lint pack's extrapolation warning. The
    counter is atomic, so totals are exact even when experiment runners
    query a shared library from several domains at once. *)

val reset_oob : t -> unit

val rows : t -> float array
val cols : t -> float array

val values : t -> float array array
(** A deep copy of the table entries (row-major), for validators. *)

val map : t -> f:(float -> float) -> t

val pp : t Fmt.t

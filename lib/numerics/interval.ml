(* Closed float intervals with outward rounding.

   IEEE-754 binary operations round to nearest, so a float result can sit on
   either side of the real result. Directed rounding modes are not reachable
   from OCaml, but nudging each computed endpoint one ulp outward (Float.pred
   on lower bounds, Float.succ on upper bounds) over-approximates any
   rounding error of a single correctly-rounded primitive. Compound
   expressions apply the nudge per primitive, keeping the enclosure sound at
   the cost of a few spare ulps of width. *)

type t = { lo : float; hi : float }

let v lo hi =
  (* the negated comparison also rejects NaN endpoints *)
  if not (lo <= hi) then
    invalid_arg (Printf.sprintf "Interval.v: not a valid interval [%g, %g]" lo hi);
  { lo; hi }

let point x = v x x
let lo t = t.lo
let hi t = t.hi
let width t = t.hi -. t.lo
let mid t = 0.5 *. (t.lo +. t.hi)
let is_point t = t.lo = t.hi

let contains ?(tol = 0.0) t x = x >= t.lo -. tol && x <= t.hi +. tol

(* One-ulp outward nudges. Infinite endpoints stay put: Float.pred infinity
   is max_float, which would unsoundly SHRINK an upper bound of +inf (and
   symmetrically for the lower side). *)
let down x = if Float.is_finite x then Float.pred x else x
let up x = if Float.is_finite x then Float.succ x else x

let add a b = { lo = down (a.lo +. b.lo); hi = up (a.hi +. b.hi) }
let neg a = { lo = -.a.hi; hi = -.a.lo }
let sub a b = add a (neg b)

let scale k a =
  if k >= 0.0 then { lo = down (k *. a.lo); hi = up (k *. a.hi) }
  else { lo = down (k *. a.hi); hi = up (k *. a.lo) }

let sq a =
  let l2 = a.lo *. a.lo and h2 = a.hi *. a.hi in
  if a.lo >= 0.0 then { lo = down l2; hi = up h2 }
  else if a.hi <= 0.0 then { lo = down h2; hi = up l2 }
  else { lo = 0.0; hi = up (Float.max l2 h2) }

let sqrt_ a =
  let l = Float.max a.lo 0.0 and h = Float.max a.hi 0.0 in
  { lo = Float.max 0.0 (down (Float.sqrt l)); hi = up (Float.sqrt h) }

(* max/min of two floats is exact — no rounding step, no nudge. *)
let max2 a b = { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }
let min2 a b = { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }
let join a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let meet a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let inflate margin t =
  if margin < 0.0 then invalid_arg "Interval.inflate: negative margin";
  { lo = down (t.lo -. margin); hi = up (t.hi +. margin) }

let inflate_rel eps t =
  if eps < 0.0 then invalid_arg "Interval.inflate_rel: negative eps";
  {
    lo = down (t.lo -. (eps *. (1.0 +. Float.abs t.lo)));
    hi = up (t.hi +. (eps *. (1.0 +. Float.abs t.hi)));
  }

let pp ppf t = Fmt.pf ppf "[%g, %g]" t.lo t.hi

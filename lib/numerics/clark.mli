(** Clark's moment formulas for the max of normal random variables — the
    paper's equations (1)–(3) — in an exact form and the FASSTA fast form
    with the 2.6-cutoff short circuit (equations (5)/(6)). *)

type moments = { mean : float; var : float }

val moments : mean:float -> var:float -> moments
(** Smart constructor; raises on negative variance. *)

val sigma : moments -> float
(** Standard deviation. *)

val pp_moments : moments Fmt.t

val sum : moments -> moments -> moments
(** Moments of A + B assuming independence. *)

val shift : moments -> float -> moments
(** Add a deterministic offset to the mean. *)

type resolution = Left_dominates | Right_dominates | Blended

val cutoff : float
(** The paper's 2.6 threshold on (μA − μB)/a — the argument at which the
    quadratic Φ saturates. *)

val spread : ?rho:float -> moments -> moments -> float
(** [spread a b] is the a-term: sqrt(σA² + σB² − 2ρσAσB). *)

val max_exact : ?rho:float -> moments -> moments -> moments
(** Clark's moments with the reference erf. *)

val max_fast : moments -> moments -> moments
(** FASSTA max: cutoff short-circuit, else Clark with quadratic erf. *)

val max_fast_resolved : moments -> moments -> moments * resolution
(** Like {!max_fast} but also reports which branch resolved the max. *)

val max_exact_list : moments list -> moments
(** Left fold of {!max_exact}. Raises [Invalid_argument] with a descriptive
    message on the empty list — the max of zero random variables has no
    distribution, so there is no sound neutral element to return. *)

val max_fast_list : moments list -> moments
(** Left fold of {!max_fast}; raises [Invalid_argument] on the empty list
    (same contract as {!max_exact_list}). *)

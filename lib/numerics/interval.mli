(** Closed floating-point intervals with outward-rounded arithmetic — the
    base abstract domain of the statcheck certifier ([lib/absint]). Every
    derived operation widens its endpoints by one ulp per primitive float
    operation, so a computed interval always contains the real-arithmetic
    result of the operation on any members of its operands. *)

type t = { lo : float; hi : float }

val v : float -> float -> t
(** [v lo hi]; raises [Invalid_argument] unless [lo <= hi] (rejects NaN). *)

val point : float -> t
(** Degenerate interval [x, x]. *)

val lo : t -> float
val hi : t -> float
val width : t -> float
val mid : t -> float

val contains : ?tol:float -> t -> float -> bool
(** Membership with an absolute slack [tol] (default 0) on both sides. *)

val is_point : t -> bool

val add : t -> t -> t
(** Outward-rounded [a + b]. *)

val neg : t -> t
val sub : t -> t -> t

val scale : float -> t -> t
(** Outward-rounded multiplication by a scalar (any sign). *)

val sq : t -> t
(** Outward-rounded x² hull (handles sign-crossing intervals; lower bound 0
    when the interval straddles 0). *)

val sqrt_ : t -> t
(** Outward-rounded sqrt of the non-negative part (the lower endpoint is
    clamped at 0 first — callers use this on variance intervals whose lower
    bound may round slightly negative). *)

val max2 : t -> t -> t
(** Interval of max(x, y): [max lo, max hi] — exact (max never rounds). *)

val min2 : t -> t -> t
val join : t -> t -> t
(** Convex hull of the union. *)

val meet : t -> t -> t option
(** Intersection; [None] when disjoint. *)

val inflate : float -> t -> t
(** Widen both endpoints outward by an absolute margin (≥ 0). *)

val inflate_rel : float -> t -> t
(** Widen both endpoints outward by [eps · (1 + |endpoint|)] — absorbs
    epsilon-level float drift (e.g. pdf renormalization) soundly. *)

val pp : t Fmt.t

(** Fused Clark-max kernels: staged flat-array operands, batched lane maxes,
    and unboxed scalar folds for the sizer's hot loops.

    The exact kernels replicate [Clark.max_exact ~rho:0] (with [Normal.pdf],
    [Normal.cdf] and the A&S 7.1.26 [Erf.exact]) literal-for-literal, so
    their results are bit-identical to the scalar reference — the contract
    test/test_kernels.ml asserts. The fast kernels replicate
    [Clark.max_fast] (2.6-sigma cutoff + CRC quadratic Φ) and additionally
    accumulate certified error intervals per lane, using per-step constants
    installed by the certifying caller (Absint.Budget — which depends on
    this library, so the constants arrive as plain floats through
    {!set_budget}).

    A kernel instance is single-owner scratch: one [t] per window/engine,
    never shared across domains. The record is exposed so hot loops can
    stage operands and read accumulators without accessor calls. *)

(** All-float scratch (flat float block — stores never allocate). *)
type scalars = {
  mutable rm : float;  (** scalar fold result: mean *)
  mutable rv : float;  (** scalar fold result: variance *)
  mutable re_m : float;  (** scalar fold certified |Δmean| (fast regime) *)
  mutable re_s : float;  (** scalar fold certified |Δsigma| (fast regime) *)
  mutable kc_mean : float;
  mutable kc_sig : float;
  mutable kb_mean : float;
  mutable kb_sig : float;
}

type t = {
  mutable cap : int;
  mutable bm : float array;  (** staged operand means *)
  mutable bv : float array;  (** staged operand variances *)
  mutable bem : float array;  (** staged operand |Δmean| bounds (fast) *)
  mutable bes : float array;  (** staged operand |Δsigma| bounds (fast) *)
  mutable am : float array;  (** lane accumulator means *)
  mutable av : float array;  (** lane accumulator variances *)
  mutable em : float array;  (** lane accumulated |Δmean| bounds (fast) *)
  mutable es : float array;  (** lane accumulated |Δsigma| bounds (fast) *)
  sc : scalars;
}

val create : unit -> t

val ensure : t -> int -> unit
(** Grow every staging/accumulator array to hold at least [n] entries.
    Existing contents are NOT preserved across a growth step — call before
    staging, never between staging and evaluating. *)

val set_budget :
  t ->
  cutoff_mean:float ->
  cutoff_sig:float ->
  blend_mean:float ->
  blend_sig:float ->
  unit
(** Install the certified per-step error constants (mean and sigma error per
    fast max, normalized by the operand spread) used by the fast kernels'
    interval accounting. Callers pass [Absint.Budget.k_cutoff_mean],
    [sqrt k_cutoff_var], [k_blend_mean], [sqrt k_blend_var]. Until installed
    the constants are [+inf], so an uncertified fast run can never certify
    a decision. *)

val fold_into : t -> int -> unit
(** [fold_into t n] folds the [n] staged operands [bm]/[bv].[0..n-1] with
    the exact Clark max (accumulator first, matching every scalar fold in
    the tree) and leaves the result in [t.sc.rm]/[t.sc.rv]. Bit-identical
    to the corresponding [Clark.max_exact] fold. Raises on [n <= 0]. *)

val max_lanes_exact : t -> int -> unit
(** Lanewise accumulate: for each lane [li < n],
    [(am, av).(li) <- max_exact((am, av).(li), (bm, bv).(li))]. One call
    replaces [n] scalar maxes in the vectorized candidate drain. *)

val fold_into_fast : t -> int -> unit
(** Fast-regime fold of staged operands (with their [bem]/[bes] intervals);
    results in [t.sc.rm]/[rv], certified interval in [t.sc.re_m]/[re_s].
    Arithmetic replicates [Clark.max_fast]. *)

val max_lanes_fast : t -> int -> unit
(** Lanewise fast accumulate with per-lane interval accounting in
    [em]/[es]. *)

(* Discrete probability distributions: the FULLSSTA representation.

   Following Liou et al. (DAC'01), a pdf is a finite list of (value, mass)
   points. The SSTA engine keeps 10-15 points per pdf; [sum] and [max] expand
   the support (cross sums, support union) and the engine re-samples back to
   its budget afterwards.

   Invariants: support strictly increasing, masses non-negative, masses sum
   to 1 (up to float round-off; constructors renormalize). *)

type t = { xs : float array; ps : float array }

let epsilon_mass = 1e-12

(* statobs counters for the pdf kernels: calls count invocations, points
   count the work each invocation actually did (na·nb for the cross-product
   sum, na+nb for the CDF-product max), so the ratio exposes support-size
   growth that wall-clock alone would hide. *)
let c_sum_calls = Obs.Counters.make "pdf.sum.calls"
let c_sum_points = Obs.Counters.make "pdf.sum.points"
let c_max2_calls = Obs.Counters.make "pdf.max2.calls"
let c_max2_points = Obs.Counters.make "pdf.max2.points"
let c_resample_calls = Obs.Counters.make "pdf.resample.calls"
let c_of_normal_calls = Obs.Counters.make "pdf.of_normal.calls"

(* Per-domain scratch buffers for the hot kernels: [sum], [resample] and
   [of_normal] run hundreds of times per SSTA pass, and their intermediates
   (cross-product points, merge temporaries, bin accumulators) would
   otherwise churn the minor heap at several MB per pass. Domain-local so
   the experiment runners can fan out over domains without sharing. Only
   intermediates live here — every returned pdf is built from fresh
   arrays, so results never alias the pool. *)
type scratch = {
  mutable s1 : float array;
  mutable s2 : float array;
  mutable s3 : float array;
  mutable s4 : float array;
  mutable s5 : float array;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { s1 = [||]; s2 = [||]; s3 = [||]; s4 = [||]; s5 = [||] })

let scratch_get n =
  let s = Domain.DLS.get scratch_key in
  if Array.length s.s1 < n then begin
    let m = Stdlib.max n (2 * Array.length s.s1) in
    s.s1 <- Array.make m 0.0;
    s.s2 <- Array.make m 0.0;
    s.s3 <- Array.make m 0.0;
    s.s4 <- Array.make m 0.0;
    s.s5 <- Array.make m 0.0
  end;
  s

let check_invariants t =
  let n = Array.length t.xs in
  n > 0
  && Array.length t.ps = n
  && (let rec incr i = i >= n - 1 || (t.xs.(i) < t.xs.(i + 1) && incr (i + 1)) in
      incr 0)
  && Array.for_all (fun p -> p >= -.epsilon_mass) t.ps
  &&
  let total = Array.fold_left ( +. ) 0.0 t.ps in
  Float.abs (total -. 1.0) < 1e-6

(* Stable bottom-up merge sort of the first [n] entries of the parallel
   point arrays, ascending by support value. Stability (equal values keep
   their arrival order) matters: duplicate support points are later merged
   by sequential mass addition, and float addition is not associative, so
   the accumulation order is part of the kernel's observable semantics.
   A sortedness pre-scan makes the common already-sorted case (max, resample
   bins) a single pass. *)
let sort_points xs ps n =
  (* supports are finite and non-NaN (module invariant), so the raw float
     comparison is exact and avoids an external call per element *)
  let sorted = ref true in
  for i = 1 to n - 1 do
    if xs.(i - 1) > xs.(i) then sorted := false
  done;
  if not !sorted then begin
    let idx = Array.init n Fun.id in
    let tmp = Array.make n 0 in
    let width = ref 1 in
    while !width < n do
      let w = !width in
      let lo = ref 0 in
      while !lo < n - w do
        let mid = !lo + w and hi = Stdlib.min (!lo + (2 * w)) n in
        Array.blit idx !lo tmp !lo (hi - !lo);
        let i = ref !lo and j = ref mid and k = ref !lo in
        while !i < mid && !j < hi do
          if Float.compare xs.(tmp.(!i)) xs.(tmp.(!j)) <= 0 then begin
            idx.(!k) <- tmp.(!i);
            incr i
          end
          else begin
            idx.(!k) <- tmp.(!j);
            incr j
          end;
          incr k
        done;
        while !i < mid do
          idx.(!k) <- tmp.(!i);
          incr i;
          incr k
        done;
        while !j < hi do
          idx.(!k) <- tmp.(!j);
          incr j;
          incr k
        done;
        lo := !lo + (2 * w)
      done;
      width := 2 * w
    done;
    let xs' = Array.make n 0.0 and ps' = Array.make n 0.0 in
    for i = 0 to n - 1 do
      xs'.(i) <- xs.(idx.(i));
      ps'.(i) <- ps.(idx.(i))
    done;
    Array.blit xs' 0 xs 0 n;
    Array.blit ps' 0 ps 0 n
  end

(* Collapse duplicate support points, drop negligible masses, renormalize.
   Works in place on the first [n] entries of the scratch arrays (which the
   caller surrenders); the cluster write index never overtakes the read
   index, so compaction and merging are single in-place passes. *)
let normalize_arrays xs ps n =
  let k = ref 0 in
  for i = 0 to n - 1 do
    if ps.(i) > epsilon_mass then begin
      xs.(!k) <- xs.(i);
      ps.(!k) <- ps.(i);
      incr k
    end
  done;
  let n = !k in
  sort_points xs ps n;
  (* Merge clusters of support points within 1e-12 relative distance of the
     cluster's first point, accumulating mass in ascending order. *)
  let m = ref 0 in
  for i = 0 to n - 1 do
    if
      !m > 0
      && Float.abs (xs.(i) -. xs.(!m - 1))
         <= 1e-12 *. (1.0 +. Float.abs xs.(!m - 1))
    then ps.(!m - 1) <- ps.(!m - 1) +. ps.(i)
    else begin
      xs.(!m) <- xs.(i);
      ps.(!m) <- ps.(i);
      incr m
    end
  done;
  let m = !m in
  let total = ref 0.0 in
  for i = 0 to m - 1 do
    total := !total +. ps.(i)
  done;
  if !total <= 0.0 then invalid_arg "Discrete_pdf: no probability mass";
  let rxs = Array.sub xs 0 m in
  let rps = Array.make m 0.0 in
  for i = 0 to m - 1 do
    rps.(i) <- ps.(i) /. !total
  done;
  { xs = rxs; ps = rps }

let normalize points =
  let n = List.length points in
  let xs = Array.make (Stdlib.max n 1) 0.0
  and ps = Array.make (Stdlib.max n 1) 0.0 in
  List.iteri
    (fun i (x, p) ->
      xs.(i) <- x;
      ps.(i) <- p)
    points;
  normalize_arrays xs ps n

let of_points points = normalize points

(* Bit-level equality (same support, same masses); the incremental SSTA
   engine uses this as its exact "nothing changed, stop propagating" test. *)
let equal a b =
  a == b
  || (Array.length a.xs = Array.length b.xs
     && Array.for_all2 Float.equal a.xs b.xs
     && Array.for_all2 Float.equal a.ps b.ps)

let constant x = { xs = [| x |]; ps = [| 1.0 |] }

let support_size t = Array.length t.xs
let min_value t = t.xs.(0)
let max_value t = t.xs.(Array.length t.xs - 1)

let points t = Array.to_list (Array.map2 (fun x p -> (x, p)) t.xs t.ps)

let mean t =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. t.ps.(i))) t.xs;
  !acc

let variance t =
  let m = mean t in
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. m in
      acc := !acc +. (d *. d *. t.ps.(i)))
    t.xs;
  Float.max !acc 0.0

let std t = Float.sqrt (variance t)

let to_moments t = Clark.moments ~mean:(mean t) ~var:(variance t)

(* Discretize N(mean, sigma²) over mean ± span·sigma with CDF-difference bin
   masses: each support point carries the mass of its surrounding bin, so the
   discretized pdf's CDF interleaves the true CDF. *)
let of_normal ?(span = 4.0) ~samples ~mean ~sigma () =
  Obs.Counters.bump c_of_normal_calls;
  if samples < 1 then invalid_arg "Discrete_pdf.of_normal: samples < 1";
  if sigma <= 0.0 then constant mean
  else
    let lo = mean -. (span *. sigma) and hi = mean +. (span *. sigma) in
    let step = (hi -. lo) /. float_of_int samples in
    (* both boundary CDF evaluations stay per bin: [left +. step] of one bin
       and [lo +. i *. step] of the next are not bitwise equal, so sharing
       them would perturb the masses in the last ulp *)
    let s = scratch_get samples in
    let xs = s.s1 and ps = s.s2 in
    for i = 0 to samples - 1 do
      let left = lo +. (float_of_int i *. step) in
      let right = left +. step in
      xs.(i) <- 0.5 *. (left +. right);
      ps.(i) <-
        Normal.cdf_at ~mean ~sigma right -. Normal.cdf_at ~mean ~sigma left
    done;
    normalize_arrays xs ps samples

let shift t d = { t with xs = Array.map (fun x -> x +. d) t.xs }

let scale t k =
  if k = 0.0 then constant 0.0
  else if k > 0.0 then { t with xs = Array.map (fun x -> x *. k) t.xs }
  else
    normalize (Array.to_list (Array.map2 (fun x p -> (x *. k, p)) t.xs t.ps))

(* Piecewise-constant CDF: probability mass at or below x. *)
let cdf t x =
  let acc = ref 0.0 in
  (try
     Array.iteri
       (fun i xi ->
         if xi <= x then acc := !acc +. t.ps.(i) else raise Exit)
       t.xs
   with Exit -> ());
  Float.min !acc 1.0

let quantile t p =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Discrete_pdf.quantile";
  let n = Array.length t.xs in
  let rec walk i acc =
    if i >= n - 1 then t.xs.(n - 1)
    else
      let acc = acc +. t.ps.(i) in
      if acc >= p then t.xs.(i) else walk (i + 1) acc
  in
  walk 0 0.0

(* Re-bin onto a uniform grid of [samples] bins spanning the support. Each
   bin's mass is split across two points at its centroid ± its within-bin
   standard deviation, so both the mean and the variance are preserved
   exactly — naive centroid binning leaks variance at every propagation
   step, which compounds badly along deep paths. Resulting support is at
   most 2·samples points. *)
let resample t ~samples =
  Obs.Counters.bump c_resample_calls;
  if samples < 1 then invalid_arg "Discrete_pdf.resample: samples < 1";
  let n = Array.length t.xs in
  if n <= 2 * samples then t
  else
    let lo = min_value t and hi = max_value t in
    if hi <= lo then constant lo
    else
      let width = (hi -. lo) /. float_of_int samples in
      let s = scratch_get (2 * samples) in
      let mass = s.s1 and m1 = s.s2 and m2 = s.s3 in
      Array.fill mass 0 samples 0.0;
      Array.fill m1 0 samples 0.0;
      Array.fill m2 0 samples 0.0;
      for i = 0 to n - 1 do
        let x = t.xs.(i) in
        let p = t.ps.(i) in
        let b =
          Stdlib.min (samples - 1) (int_of_float ((x -. lo) /. width))
        in
        mass.(b) <- mass.(b) +. p;
        m1.(b) <- m1.(b) +. (p *. x);
        m2.(b) <- m2.(b) +. (p *. x *. x)
      done;
      let bxs = s.s4 and bps = s.s5 in
      let k = ref 0 in
      for b = 0 to samples - 1 do
        if mass.(b) > epsilon_mass then begin
          let mu = m1.(b) /. mass.(b) in
          let var = Float.max ((m2.(b) /. mass.(b)) -. (mu *. mu)) 0.0 in
          let sd = Float.sqrt var in
          if sd > 1e-9 *. (1.0 +. Float.abs mu) then begin
            bxs.(!k) <- mu -. sd;
            bps.(!k) <- 0.5 *. mass.(b);
            incr k;
            bxs.(!k) <- mu +. sd;
            bps.(!k) <- 0.5 *. mass.(b);
            incr k
          end
          else begin
            bxs.(!k) <- mu;
            bps.(!k) <- mass.(b);
            incr k
          end
        end
      done;
      normalize_arrays bxs bps !k

(* Sum of independent discrete random variables: cross sums of supports
   with product masses. The cross product is generated as [na] runs that
   are already ascending (fixed outer point, inner support is strictly
   increasing), so a stable bottom-up merge starting at run width [nb]
   reaches the sorted order in log(na) passes with no index indirection —
   the hot kernel of every pdf propagation step. The result order is the
   unique stable ascending permutation, exactly what [sort_points] would
   produce, and filtering commutes with stable sorting, so the digest in
   [normalize_arrays] sees bit-identical data. Callers resample afterwards
   to bound growth. *)
let sum a b =
  let na = Array.length a.xs and nb = Array.length b.xs in
  let n = na * nb in
  Obs.Counters.bump c_sum_calls;
  Obs.Counters.add c_sum_points n;
  let s = scratch_get n in
  let xs = s.s1 and ps = s.s2 in
  (* runs keep the historical outer order (descending index) so equal
     support values across runs retain their generation order for the
     stable merge; within a run values are strictly increasing, so the
     ascending inner traversal cannot reorder ties *)
  let k = ref 0 in
  for i = na - 1 downto 0 do
    let xa = a.xs.(i) and pa = a.ps.(i) in
    for j = 0 to nb - 1 do
      xs.(!k) <- xa +. b.xs.(j);
      ps.(!k) <- pa *. b.ps.(j);
      incr k
    done
  done;
  if na > 1 then begin
    let tx = s.s3 and tp = s.s4 in
    let src_x = ref xs
    and src_p = ref ps
    and dst_x = ref tx
    and dst_p = ref tp in
    let width = ref nb in
    while !width < n do
      let w = !width in
      let sx = !src_x and sp = !src_p and dx = !dst_x and dp = !dst_p in
      let lo = ref 0 in
      while !lo < n do
        let mid = Stdlib.min (!lo + w) n
        and hi = Stdlib.min (!lo + (2 * w)) n in
        let i = ref !lo and j = ref mid and k = ref !lo in
        while !i < mid && !j < hi do
          (* raw [<=] is exact here: supports are finite and non-NaN *)
          if sx.(!i) <= sx.(!j) then begin
            dx.(!k) <- sx.(!i);
            dp.(!k) <- sp.(!i);
            incr i
          end
          else begin
            dx.(!k) <- sx.(!j);
            dp.(!k) <- sp.(!j);
            incr j
          end;
          incr k
        done;
        while !i < mid do
          dx.(!k) <- sx.(!i);
          dp.(!k) <- sp.(!i);
          incr i;
          incr k
        done;
        while !j < hi do
          dx.(!k) <- sx.(!j);
          dp.(!k) <- sp.(!j);
          incr j;
          incr k
        done;
        lo := !lo + (2 * w)
      done;
      let x = !src_x and p = !src_p in
      src_x := !dst_x;
      src_p := !dst_p;
      dst_x := x;
      dst_p := p;
      width := 2 * w
    done;
    normalize_arrays !src_x !src_p n
  end
  else normalize_arrays xs ps n

(* Max of independent discrete random variables via the CDF product
   F_max(x) = F_A(x) · F_B(x) evaluated on the union of supports: a single
   ascending merge over both supports with running prefix masses, O(na+nb)
   instead of a full CDF scan per union point. *)
let max2 a b =
  let na = Array.length a.xs and nb = Array.length b.xs in
  Obs.Counters.bump c_max2_calls;
  Obs.Counters.add c_max2_points (na + nb);
  let xs = Array.make (na + nb) 0.0 and ps = Array.make (na + nb) 0.0 in
  let m = ref 0 in
  let ia = ref 0 and ib = ref 0 in
  let fa = ref 0.0 and fb = ref 0.0 in
  let prev = ref 0.0 in
  while !ia < na || !ib < nb do
    let x =
      if !ia >= na then b.xs.(!ib)
      else if !ib >= nb then a.xs.(!ia)
      else Float.min a.xs.(!ia) b.xs.(!ib)
    in
    while !ia < na && a.xs.(!ia) <= x do
      fa := !fa +. a.ps.(!ia);
      incr ia
    done;
    while !ib < nb && b.xs.(!ib) <= x do
      fb := !fb +. b.ps.(!ib);
      incr ib
    done;
    let f = Float.min !fa 1.0 *. Float.min !fb 1.0 in
    let mass = f -. !prev in
    prev := f;
    if mass > epsilon_mass then begin
      xs.(!m) <- x;
      ps.(!m) <- mass;
      incr m
    end
  done;
  normalize_arrays xs ps !m

let max_list = function
  | [] -> invalid_arg "Discrete_pdf.max_list: empty"
  | t :: rest -> List.fold_left max2 t rest

(* Empirical distribution of raw samples binned to [samples] points; the
   Monte-Carlo engine uses this to build comparable pdfs. *)
let of_samples ~samples values =
  match values with
  | [] -> invalid_arg "Discrete_pdf.of_samples: empty"
  | _ ->
      let n = List.length values in
      let w = 1.0 /. float_of_int n in
      let raw = normalize (List.map (fun v -> (v, w)) values) in
      resample raw ~samples

let pp ppf t =
  Fmt.pf ppf "@[<hov 2>pdf[%d pts, μ=%.4g, σ=%.4g]@]" (support_size t) (mean t)
    (std t)

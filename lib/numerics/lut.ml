(* Two-dimensional lookup tables with bilinear interpolation — the NLDM-style
   delay/slew model of the cell library ("industrial 90nm lookup-table based
   standard cell library" in the paper's setup).

   Axes must be strictly increasing. Queries outside the grid clamp to the
   edge, matching how timing tools extrapolate conservative corners.

   Storage is a single contiguous row-major float array (stride = column
   count): the four corner reads of a bilinear patch land in at most two
   cache lines, and the fused two-table [query2] below re-uses one index
   computation for a (delay, slew) table pair sharing axes — the dominant
   query pattern of the timing engines. The interpolation arithmetic is
   unchanged from the seed nested-array implementation, so every query
   returns bit-identical values. *)

type t = {
  rows : float array; (* first index, e.g. input slew *)
  cols : float array; (* second index, e.g. load capacitance *)
  flat : float array; (* row-major: value at (rows.(i), cols.(j)) is flat.(i*nc + j) *)
  nr : int;
  nc : int;
  oob_queries : int Atomic.t; (* queries clamped to the grid edge *)
}

(* Global across all tables (per-table detail stays in [oob_count]); feeds
   the CI-gated counter block. *)
let c_clamp = Obs.Counters.make "lut.clamp_events"

let strictly_increasing a =
  let n = Array.length a in
  let rec go i = i >= n - 1 || (a.(i) < a.(i + 1) && go (i + 1)) in
  go 0

let create ~rows ~cols ~values =
  let nr = Array.length rows and nc = Array.length cols in
  if nr = 0 || nc = 0 then invalid_arg "Lut.create: empty axis";
  if not (strictly_increasing rows && strictly_increasing cols) then
    invalid_arg "Lut.create: axes must be strictly increasing";
  if Array.length values <> nr || Array.exists (fun r -> Array.length r <> nc) values
  then invalid_arg "Lut.create: values shape mismatch";
  let flat = Array.make (nr * nc) 0.0 in
  for i = 0 to nr - 1 do
    Array.blit values.(i) 0 flat (i * nc) nc
  done;
  { rows; cols; flat; nr; nc; oob_queries = Atomic.make 0 }

let of_function ~rows ~cols f =
  let values = Array.map (fun r -> Array.map (fun c -> f r c) cols) rows in
  create ~rows ~cols ~values

(* Index of the cell containing x, clamped so that i and i+1 are valid; also
   returns the interpolation fraction in [0, 1]. *)
let locate axis x =
  let n = Array.length axis in
  if n = 1 || x <= axis.(0) then (0, 0.0)
  else if x >= axis.(n - 1) then (Stdlib.max 0 (n - 2), 1.0)
  else
    let rec bisect lo hi =
      (* invariant: axis.(lo) <= x < axis.(hi) *)
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if x < axis.(mid) then bisect lo mid else bisect mid hi
    in
    let i = bisect 0 (n - 1) in
    let frac = (x -. axis.(i)) /. (axis.(i + 1) -. axis.(i)) in
    (i, frac)

let in_range_axis axis x = x >= axis.(0) && x <= axis.(Array.length axis - 1)

let in_range t ~row ~col = in_range_axis t.rows row && in_range_axis t.cols col

let oob_count t = Atomic.get t.oob_queries
let reset_oob t = Atomic.set t.oob_queries 0

(* Bilinear combination at an already-located cell. The value reads and the
   arithmetic replicate the seed nested-array implementation operation for
   operation, so results are bit-identical to it. *)
let eval_located t i fr j fc =
  let base = (i * t.nc) + j in
  let v00 = t.flat.(base) in
  if t.nr = 1 && t.nc = 1 then v00
  else
    let i1 = Stdlib.min (t.nr - 1) (i + 1) in
    let j1 = Stdlib.min (t.nc - 1) (j + 1) in
    let v01 = t.flat.((i * t.nc) + j1)
    and v10 = t.flat.((i1 * t.nc) + j)
    and v11 = t.flat.((i1 * t.nc) + j1) in
    ((1.0 -. fr) *. (((1.0 -. fc) *. v00) +. (fc *. v01)))
    +. (fr *. (((1.0 -. fc) *. v10) +. (fc *. v11)))

let eval t ~row ~col =
  let i, fr = locate t.rows row in
  let j, fc = locate t.cols col in
  eval_located t i fr j fc

let query t ~row ~col =
  if not (in_range t ~row ~col) then begin
    Atomic.incr t.oob_queries;
    Obs.Counters.bump c_clamp
  end;
  eval t ~row ~col

let shares_axes a b = a.rows == b.rows && a.cols == b.cols

(* Fused two-table query: one [locate] pair serves both tables when they
   share axis arrays (the generated library passes the same slew/load axes
   to every cell's delay and output-slew tables). Each table's value is the
   same [eval_located] combination [query] performs, and the out-of-bounds
   accounting bumps per table exactly as two separate [query] calls would —
   so the fused path is observationally identical except for the halved
   index work (and the fused-query counter maintained by the caller). *)
let query2 a b ~row ~col =
  if shares_axes a b then begin
    (if not (in_range a ~row ~col) then begin
       Atomic.incr a.oob_queries;
       Obs.Counters.bump c_clamp;
       Atomic.incr b.oob_queries;
       Obs.Counters.bump c_clamp
     end);
    let i, fr = locate a.rows row in
    let j, fc = locate a.cols col in
    (eval_located a i fr j fc, eval_located b i fr j fc)
  end
  else (query a ~row ~col, query b ~row ~col)

(* Hull of the interpolated surface over a box of query points. The clamped
   bilinear surface restricted to any axis-aligned box is piecewise bilinear
   with breakpoints on the grid lines, and a bilinear patch on a box attains
   its extremes at the box corners — so evaluating at every (row, col) pair
   drawn from {box edges} ∪ {grid lines crossing the box} covers the true
   min/max exactly. Certification queries go through here rather than
   [query] so sweeping hypothetical operating boxes does not pollute the
   out-of-bounds counter (LIB007 reports real runtime queries only). *)
let range t ~row:(rlo, rhi) ~col:(clo, chi) =
  if not (rlo <= rhi && clo <= chi) then invalid_arg "Lut.range: empty box";
  let axis_points axis lo hi =
    let inside =
      Array.to_list axis |> List.filter (fun x -> x > lo && x < hi)
    in
    lo :: (inside @ [ hi ])
  in
  let rows_pts = axis_points t.rows rlo rhi in
  let cols_pts = axis_points t.cols clo chi in
  let min_v = ref infinity and max_v = ref neg_infinity in
  List.iter
    (fun row ->
      List.iter
        (fun col ->
          let v = eval t ~row ~col in
          if v < !min_v then min_v := v;
          if v > !max_v then max_v := v)
        cols_pts)
    rows_pts;
  (!min_v, !max_v)

let rows t = Array.copy t.rows
let cols t = Array.copy t.cols

let values t =
  Array.init t.nr (fun i -> Array.sub t.flat (i * t.nc) t.nc)

let map t ~f =
  { t with flat = Array.map f t.flat; oob_queries = Atomic.make 0 }

let pp ppf t = Fmt.pf ppf "lut[%dx%d]" t.nr t.nc

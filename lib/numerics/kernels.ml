(* Fused Clark-max kernels for the sizer's inner loops.

   The profile in EXPERIMENTS.md §"incremental" pins ~55% of a c880 sizing
   iteration on the candidate-drain Clark maxes themselves: per max, two
   [Float.exp]s, an Abramowitz–Stegun erf, a square root and a handful of
   divisions — with every call crossing a module boundary ([Normal.pdf],
   [Normal.cdf], [Erf.exact]), which on a non-flambda compiler boxes each
   float argument and result. This module removes the boxing and the
   per-operand dispatch without changing a single bit of the arithmetic:

   - callers *stage* operands into flat float arrays (unboxed storage) and
     issue one call per node fold or per lane batch, so the erf/φ/Φ
     polynomial evaluation inlines into a single tight loop;
   - the math is a literal-for-literal, operation-for-operation replica of
     [Clark.max_exact ~rho:0] / [Clark.max_fast] (including [Normal.pdf],
     [Normal.cdf] and the A&S 7.1.26 Horner form of [Erf.exact]), so exact
     kernels are bit-identical to the scalar reference — the property
     test/test_kernels.ml checks corner-by-corner;
   - results come back through mutable float record fields ([rm]/[rv]) or
     the lane accumulator arrays, both unboxed.

   The fast lane variants additionally carry certified error intervals: per
   lane, an accumulated mean-error and sigma-error bound grown by the
   per-step constants of Absint.Budget (installed by the caller through
   [set_budget]; this module cannot depend on Absint, which sits above
   numerics). See DESIGN.md §14 for the accounting contract. *)

(* All-float record: OCaml stores such records as flat float blocks, so the
   hot-loop stores below do not allocate. Mixing these fields into [t]
   (which holds ints and arrays) would box every store. *)
type scalars = {
  (* scalar fold results (unboxed return channel) *)
  mutable rm : float;
  mutable rv : float;
  mutable re_m : float; (* fold |Δmean| bound (fast regime) *)
  mutable re_s : float; (* fold |Δsigma| bound (fast regime) *)
  (* per-step budget constants, normalized by spread: mean error ≤ k·sp,
     sigma error ≤ k·sp. Installed via [set_budget]; the +inf defaults mean
     an uncertified fast run can never certify a decision by accident. *)
  mutable kc_mean : float; (* cutoff branch *)
  mutable kc_sig : float;
  mutable kb_mean : float; (* blended branch *)
  mutable kb_sig : float;
}

type t = {
  mutable cap : int; (* capacity of every array below *)
  (* staged operands (one entry per fold step or per lane) *)
  mutable bm : float array; (* operand means *)
  mutable bv : float array; (* operand variances *)
  mutable bem : float array; (* operand certified |Δmean| (fast regime) *)
  mutable bes : float array; (* operand certified |Δsigma| (fast regime) *)
  (* lane accumulators for the batched candidate drain *)
  mutable am : float array;
  mutable av : float array;
  mutable em : float array; (* accumulated lane |Δmean| bound *)
  mutable es : float array; (* accumulated lane |Δsigma| bound *)
  sc : scalars;
}

let c_fold_calls = Obs.Counters.make "kernels.fold.calls"
let c_fold_ops = Obs.Counters.make "kernels.fold.ops"
let c_lane_calls = Obs.Counters.make "kernels.lanes.calls"
let c_lane_ops = Obs.Counters.make "kernels.lanes.ops"
let c_fast_ops = Obs.Counters.make "kernels.fast.ops"

let create () =
  let n = 64 in
  {
    cap = n;
    bm = Array.make n 0.0;
    bv = Array.make n 0.0;
    bem = Array.make n 0.0;
    bes = Array.make n 0.0;
    am = Array.make n 0.0;
    av = Array.make n 0.0;
    em = Array.make n 0.0;
    es = Array.make n 0.0;
    sc =
      {
        rm = 0.0;
        rv = 0.0;
        re_m = 0.0;
        re_s = 0.0;
        kc_mean = infinity;
        kc_sig = infinity;
        kb_mean = infinity;
        kb_sig = infinity;
      };
  }

let ensure t n =
  if n > t.cap then begin
    let cap = Stdlib.max n (2 * t.cap) in
    t.bm <- Array.make cap 0.0;
    t.bv <- Array.make cap 0.0;
    t.bem <- Array.make cap 0.0;
    t.bes <- Array.make cap 0.0;
    t.am <- Array.make cap 0.0;
    t.av <- Array.make cap 0.0;
    t.em <- Array.make cap 0.0;
    t.es <- Array.make cap 0.0;
    t.cap <- cap
  end

let set_budget t ~cutoff_mean ~cutoff_sig ~blend_mean ~blend_sig =
  let sc = t.sc in
  sc.kc_mean <- cutoff_mean;
  sc.kc_sig <- cutoff_sig;
  sc.kb_mean <- blend_mean;
  sc.kb_sig <- blend_sig

(* ---- local replicas of the reference special functions -------------------

   Same literals, same parenthesization, same operation order as
   Numerics.Erf / Numerics.Normal — the compiler emits the same float ops,
   so the results are bit-identical. They live here (rather than being
   called cross-module) purely so they inline into the loops below with
   unboxed floats. *)

let sqrt_two = Float.sqrt 2.0
let sqrt_two_pi = Float.sqrt (2.0 *. Float.pi)

(* = Erf.exact *)
let[@inline] erf_exact x =
  let ax = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. ax)) in
  let poly =
    t
    *. (0.254829592
       +. (t
          *. (-0.284496736
             +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  let v = 1.0 -. (poly *. Float.exp (-.(ax *. ax))) in
  if x >= 0.0 then v else -.v

(* = Normal.pdf *)
let[@inline] pdf x = Float.exp (-0.5 *. x *. x) /. sqrt_two_pi

(* = Normal.cdf *)
let[@inline] cdf x = 0.5 *. (1.0 +. erf_exact (x /. sqrt_two))

(* = Erf.phi_quadratic (= Normal.cdf_fast) *)
let[@inline] phi_excess_magnitude x =
  if x <= 2.2 then 0.1 *. x *. (4.4 -. x)
  else if x <= 2.6 then 0.49
  else 0.5

let[@inline] cdf_fast x =
  if x >= 0.0 then 0.5 +. phi_excess_magnitude x
  else 0.5 -. phi_excess_magnitude (-.x)

(* φ surrogate of the fast lanes: the quadratic Φ's own derivative,
   φq(x) = dΦq/dx = max(0, 0.44 − 0.2·|x|). Three flops, no [exp] — this is
   what makes a fast blended step transcendental-free. Certified error and
   the matching step constants: Absint.Budget.eps_pdf / kq_blend_*. *)
let[@inline] pdf_fast x =
  let ax = Float.abs x in
  if ax >= 2.2 then 0.0 else 0.44 -. (0.2 *. ax)

(* |α| ≥ cutoff collapses the fast max to the dominant operand (paper
   conditions (5)/(6)); must equal Clark.cutoff = Erf.phi_saturation_point. *)
let cutoff = 2.6

(* ---- exact kernels ----------------------------------------------------- *)

(* One exact Clark max, (am, av) ← max((am, av), (bm, bv)), written as a
   macro-style code block via mutually-redundant lets so both the fold and
   the lane loops share the identical operation sequence. Accumulator is
   the FIRST operand (a), matching every scalar fold in the tree: Window's
   scalar_max and Fassta's [Clark.max_exact best arrival]. *)

let fold_into t n =
  if n <= 0 then invalid_arg "Kernels.fold_into: empty operand set";
  Obs.Counters.bump c_fold_calls;
  Obs.Counters.add c_fold_ops (n - 1);
  let bm = t.bm and bv = t.bv in
  (* accumulate directly in the all-float scalar record: a [float ref] (or
     a float field of the mixed record [t]) would box every store *)
  let sc = t.sc in
  sc.rm <- Array.unsafe_get bm 0;
  sc.rv <- Array.unsafe_get bv 0;
  for k = 1 to n - 1 do
    let b_mean = Array.unsafe_get bm k and b_var = Array.unsafe_get bv k in
    let a_mean = sc.rm and a_var = sc.rv in
    let sp = Float.sqrt (Float.max (a_var +. b_var) 0.0) in
    if sp <= 0.0 then begin
      if a_mean >= b_mean then () (* accumulator already holds the max *)
      else begin
        sc.rm <- b_mean;
        sc.rv <- b_var
      end
    end
    else begin
      let alpha = (a_mean -. b_mean) /. sp in
      let phi = pdf alpha in
      let cdf_pos = cdf alpha in
      let cdf_neg = 1.0 -. cdf_pos in
      let m1 = (a_mean *. cdf_pos) +. (b_mean *. cdf_neg) +. (sp *. phi) in
      let m2 =
        (((a_mean *. a_mean) +. a_var) *. cdf_pos)
        +. (((b_mean *. b_mean) +. b_var) *. cdf_neg)
        +. ((a_mean +. b_mean) *. sp *. phi)
      in
      sc.rm <- m1;
      sc.rv <- Float.max (m2 -. (m1 *. m1)) 0.0
    end
  done

let max_lanes_exact t n =
  Obs.Counters.bump c_lane_calls;
  Obs.Counters.add c_lane_ops n;
  let bm = t.bm and bv = t.bv and am = t.am and av = t.av in
  for li = 0 to n - 1 do
    let a_mean = Array.unsafe_get am li and a_var = Array.unsafe_get av li in
    let b_mean = Array.unsafe_get bm li and b_var = Array.unsafe_get bv li in
    let sp = Float.sqrt (Float.max (a_var +. b_var) 0.0) in
    if sp <= 0.0 then begin
      if a_mean >= b_mean then ()
      else begin
        Array.unsafe_set am li b_mean;
        Array.unsafe_set av li b_var
      end
    end
    else begin
      let alpha = (a_mean -. b_mean) /. sp in
      let phi = pdf alpha in
      let cdf_pos = cdf alpha in
      let cdf_neg = 1.0 -. cdf_pos in
      let m1 = (a_mean *. cdf_pos) +. (b_mean *. cdf_neg) +. (sp *. phi) in
      let m2 =
        (((a_mean *. a_mean) +. a_var) *. cdf_pos)
        +. (((b_mean *. b_mean) +. b_var) *. cdf_neg)
        +. ((a_mean +. b_mean) *. sp *. phi)
      in
      Array.unsafe_set am li m1;
      Array.unsafe_set av li (Float.max (m2 -. (m1 *. m1)) 0.0)
    end
  done

(* ---- fast (ε-certified) kernels ----------------------------------------

   Arithmetic follows Clark.max_fast's shape (cutoff collapse + CRC
   quadratic Φ in the blended branch) and goes one step cheaper: φ is
   replaced by [pdf_fast] (the quadratic Φ's own derivative), so a blended
   step is transcendental-free — no [exp] anywhere in the fast drain. The
   certified step constants installed via [set_budget] must match this
   arithmetic (Absint.Budget.kq_blend_mean/var for blended steps,
   k_cutoff_mean/var for cutoff steps). Alongside the
   moments, each lane carries a certified error interval (|Δmean| ≤ em, |Δsigma| ≤ es vs the
   exact fold over the same *staged* operands plus the operands' own
   intervals):

     em' = max(em_a, em_b) + 0.4·(es_a + es_b) + k_mean(branch)·sp
     es' = max(es_a, es_b) + 0.5·(em_a + em_b) + k_sig(branch)·sp

   The k·sp terms are Absint.Budget's certified per-step constants
   evaluated at the fast operands (the branch is known, so the branch
   constant applies). The operand-propagation terms use the Lipschitz
   bounds of the exact max: ∂E/∂μA = Φ(α), ∂E/∂μB = Φ(−α) — a convex
   combination, hence the max — and |∂E/∂σ·| ≤ φ(α) ≤ 0.4; the 0.5
   mean-to-sigma cross term is the engineering bound documented and
   empirically validated in DESIGN.md §14. *)

(* One fast step, (a) ← max_fast((a), (b)), results through t.rm/rv/re_m/re_s
   (mutable float fields stay unboxed; a result closure would allocate per
   lane). *)
let fast_step sc a_mean a_var a_em a_es b_mean b_var b_em b_es =
  let sp = Float.sqrt (Float.max (a_var +. b_var) 0.0) in
  if sp <= 0.0 then begin
    (* degenerate operands: the fast pick equals the exact pick, no step
       error; only the operand intervals survive *)
    if a_mean >= b_mean then begin
      sc.rm <- a_mean;
      sc.rv <- a_var;
      sc.re_m <- a_em;
      sc.re_s <- a_es
    end
    else begin
      sc.rm <- b_mean;
      sc.rv <- b_var;
      sc.re_m <- b_em;
      sc.re_s <- b_es
    end
  end
  else
    let alpha = (a_mean -. b_mean) /. sp in
    if alpha >= cutoff then begin
      sc.rm <- a_mean;
      sc.rv <- a_var;
      sc.re_m <- Float.max a_em b_em +. (0.4 *. (a_es +. b_es)) +. (sc.kc_mean *. sp);
      sc.re_s <- Float.max a_es b_es +. (0.5 *. (a_em +. b_em)) +. (sc.kc_sig *. sp)
    end
    else if alpha <= -.cutoff then begin
      sc.rm <- b_mean;
      sc.rv <- b_var;
      sc.re_m <- Float.max a_em b_em +. (0.4 *. (a_es +. b_es)) +. (sc.kc_mean *. sp);
      sc.re_s <- Float.max a_es b_es +. (0.5 *. (a_em +. b_em)) +. (sc.kc_sig *. sp)
    end
    else begin
      let phi = pdf_fast alpha in
      let cdf_pos = cdf_fast alpha in
      let cdf_neg = 1.0 -. cdf_pos in
      let m1 = (a_mean *. cdf_pos) +. (b_mean *. cdf_neg) +. (sp *. phi) in
      let m2 =
        (((a_mean *. a_mean) +. a_var) *. cdf_pos)
        +. (((b_mean *. b_mean) +. b_var) *. cdf_neg)
        +. ((a_mean +. b_mean) *. sp *. phi)
      in
      sc.rm <- m1;
      sc.rv <- Float.max (m2 -. (m1 *. m1)) 0.0;
      sc.re_m <- Float.max a_em b_em +. (0.4 *. (a_es +. b_es)) +. (sc.kb_mean *. sp);
      sc.re_s <- Float.max a_es b_es +. (0.5 *. (a_em +. b_em)) +. (sc.kb_sig *. sp)
    end

let fold_into_fast t n =
  if n <= 0 then invalid_arg "Kernels.fold_into_fast: empty operand set";
  Obs.Counters.bump c_fold_calls;
  Obs.Counters.add c_fast_ops (n - 1);
  let bm = t.bm and bv = t.bv and bem = t.bem and bes = t.bes in
  let sc = t.sc in
  sc.rm <- Array.unsafe_get bm 0;
  sc.rv <- Array.unsafe_get bv 0;
  sc.re_m <- Array.unsafe_get bem 0;
  sc.re_s <- Array.unsafe_get bes 0;
  for k = 1 to n - 1 do
    fast_step sc sc.rm sc.rv sc.re_m sc.re_s (Array.unsafe_get bm k)
      (Array.unsafe_get bv k) (Array.unsafe_get bem k) (Array.unsafe_get bes k)
  done

let max_lanes_fast t n =
  Obs.Counters.bump c_lane_calls;
  Obs.Counters.add c_fast_ops n;
  let bm = t.bm and bv = t.bv and bem = t.bem and bes = t.bes in
  let am = t.am and av = t.av and em = t.em and es = t.es in
  let sc = t.sc in
  for li = 0 to n - 1 do
    fast_step sc (Array.unsafe_get am li) (Array.unsafe_get av li)
      (Array.unsafe_get em li) (Array.unsafe_get es li)
      (Array.unsafe_get bm li) (Array.unsafe_get bv li)
      (Array.unsafe_get bem li) (Array.unsafe_get bes li);
    Array.unsafe_set am li sc.rm;
    Array.unsafe_set av li sc.rv;
    Array.unsafe_set em li sc.re_m;
    Array.unsafe_set es li sc.re_s
  done

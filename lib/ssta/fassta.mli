(** FASSTA — moments-only statistical timing (the fast inner engine, paper
    §4.3): Clark max with quadratic erf and the 2.6 cutoff short-circuit. *)

type stats = { mutable cutoff_hits : int; mutable blended : int }
(** How often the (5)/(6) cutoff resolved a max without arithmetic — the
    paper observes it fires "in the vast majority of cases". *)

val make_stats : unit -> stats

val cutoff_fraction : stats -> float
(** Fraction of recorded max operations resolved by the cutoff. Returns [0.]
    (not nan) when no max operations were recorded at all — callers needing
    to distinguish "no data" from "never fired" can inspect the counters. *)

val arc_moments :
  Variation.Model.t ->
  Netlist.Circuit.t ->
  Sta.Electrical.t ->
  Netlist.Circuit.id ->
  int ->
  Numerics.Clark.moments
(** Delay moments of fanin arc [k] of a gate. *)

val max_arrivals :
  ?stats:stats -> Numerics.Clark.moments list -> Numerics.Clark.moments

val propagate :
  ?stats:stats ->
  model:Variation.Model.t ->
  circuit:Netlist.Circuit.t ->
  electrical:Sta.Electrical.t ->
  boundary:(Netlist.Circuit.id -> Numerics.Clark.moments) ->
  Netlist.Circuit.id array ->
  (Netlist.Circuit.id, Numerics.Clark.moments) Hashtbl.t
(** Propagate through a topologically-ordered node subset; [boundary]
    supplies arrivals for fanins outside the subset (and for primary
    inputs inside it). This is the subcircuit-evaluation primitive. *)

val propagate_into :
  ?stats:stats ->
  ?exact:bool ->
  ?kernel:Numerics.Kernels.t ->
  model:Variation.Model.t ->
  circuit:Netlist.Circuit.t ->
  electrical:Sta.Electrical.t ->
  Numerics.Clark.moments array ->
  unit
(** Whole-circuit fast pass into a caller-owned scratch array (index = node
    id) — the allocation-light primitive behind global trial evaluation.
    [exact] (default false) replaces the quadratic-erf Clark max with the
    exact-erf one: the paper's quadratic approximation is built for 2-level
    windows, and its near-tie slope error compounds over whole circuits.
    [kernel] (honoured only with [exact]) batches each node's arrival fold
    through [Numerics.Kernels.fold_into] — bit-identical results, fewer
    cross-module float calls and intermediate records. *)

val run :
  ?stats:stats ->
  ?model:Variation.Model.t ->
  ?config:Sta.Electrical.config ->
  Netlist.Circuit.t ->
  Numerics.Clark.moments array
(** Whole-circuit fast pass. *)

val output_moments :
  Netlist.Circuit.t -> Numerics.Clark.moments array -> Numerics.Clark.moments
(** Fast-max over the primary outputs (RV_O approximation). *)

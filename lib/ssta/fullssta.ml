(* FULLSSTA — the paper's accurate outer-loop engine (§4.2), after Liou et
   al.'s probabilistic event propagation: arrival times are discrete pdfs
   sampled at a user-controlled rate (10-15 points; we default to 12), SUM
   and MAX operate on the discretized pdfs, and the mean/variance at every
   node is stored for the fast inner engine (FASSTA) to consume. *)

type config = {
  samples : int;
  model : Variation.Model.t;
  electrical : Sta.Electrical.config;
}

let default_config =
  {
    samples = 12;
    model = Variation.Model.default;
    electrical = Sta.Electrical.default_config;
  }

type t = {
  circuit : Netlist.Circuit.t;
  config : config;
  electrical : Sta.Electrical.t;
  pdfs : Numerics.Discrete_pdf.t array; (* arrival pdf per node *)
  moments : Numerics.Clark.moments array; (* point values stored per node *)
}

(* Normal pdf of one fanin arc's delay under the variation model. *)
let arc_pdf config circuit electrical id k =
  let delay = (Sta.Electrical.arc_delays electrical id).(k) in
  let strength =
    Cells.Cell.strength (Netlist.Circuit.cell_exn circuit id)
  in
  let sigma = Variation.Model.sigma config.model ~delay ~strength in
  Numerics.Discrete_pdf.of_normal ~samples:config.samples ~mean:delay ~sigma ()

let run ?(config = default_config) circuit =
  if config.samples < 2 then invalid_arg "Fullssta.run: samples < 2";
  let electrical = Sta.Electrical.compute ~config:config.electrical circuit in
  let n = Netlist.Circuit.size circuit in
  let pdfs =
    Array.make n
      (Numerics.Discrete_pdf.constant config.electrical.Sta.Electrical.input_arrival)
  in
  List.iter
    (fun id ->
      let fanins = Netlist.Circuit.fanins circuit id in
      if Array.length fanins > 0 then begin
        let arrivals_per_arc =
          Array.to_list
            (Array.mapi
               (fun k fi ->
                 let arc = arc_pdf config circuit electrical id k in
                 Numerics.Discrete_pdf.resample
                   (Numerics.Discrete_pdf.sum pdfs.(fi) arc)
                   ~samples:config.samples)
               fanins)
        in
        pdfs.(id) <-
          Numerics.Discrete_pdf.resample
            (Numerics.Discrete_pdf.max_list arrivals_per_arc)
            ~samples:config.samples
      end)
    (Netlist.Circuit.topological circuit);
  let moments = Array.map Numerics.Discrete_pdf.to_moments pdfs in
  { circuit; config; electrical; pdfs; moments }

let pdf t id = t.pdfs.(id)
let moments t id = t.moments.(id)
let electrical t = t.electrical

(* The circuit-level random variable RV_O of §2.1: the statistical max over
   every primary output's arrival. *)
let output_rv t =
  match Netlist.Circuit.outputs t.circuit with
  | [] -> invalid_arg "Fullssta.output_rv: no outputs"
  | outs ->
      Numerics.Discrete_pdf.resample
        (Numerics.Discrete_pdf.max_list (List.map (fun o -> t.pdfs.(o)) outs))
        ~samples:t.config.samples

let output_moments t = Numerics.Discrete_pdf.to_moments (output_rv t)

(* sigma/mean of RV_O — Table 1's headline metric. *)
let sigma_over_mean t =
  let m = output_moments t in
  if m.Numerics.Clark.mean = 0.0 then Float.nan
  else Numerics.Clark.sigma m /. m.Numerics.Clark.mean

(* Statistical yield at a clock period: P(RV_O <= period). *)
let yield_at t ~period = Numerics.Discrete_pdf.cdf (output_rv t) period

(* Post-run self-check: every stored arrival pdf must still be a pdf after
   the SUM/MAX/resample chain. Findings here point at engine defects (lost
   mass, negative weights, negative stored variance), not at user input —
   the lint preflight guards the inputs. *)
let check ?(tol = 1e-6) t =
  List.concat_map
    (fun id ->
      let loc = Diag.Net (Netlist.Circuit.node_name t.circuit id) in
      let points = Numerics.Discrete_pdf.points t.pdfs.(id) in
      let mass = List.fold_left (fun a (_, m) -> a +. m) 0.0 points in
      (if Float.abs (mass -. 1.0) > tol then
         [
           Diag.errorf ~code:"STAT001" ~loc
             "arrival pdf mass drifted to %.9g after propagation" mass;
         ]
       else [])
      @ (if List.exists (fun (_, m) -> m < 0.0) points then
           [
             Diag.errorf ~code:"STAT002" ~loc
               "arrival pdf has a negative point mass";
           ]
         else [])
      @
      let var = t.moments.(id).Numerics.Clark.var in
      if var < 0.0 then
        [ Diag.errorf ~code:"STAT002" ~loc "stored arrival variance %.3g" var ]
      else [])
    (Netlist.Circuit.topological t.circuit)

(* FULLSSTA — the paper's accurate outer-loop engine (§4.2), after Liou et
   al.'s probabilistic event propagation: arrival times are discrete pdfs
   sampled at a user-controlled rate (10-15 points; we default to 12), SUM
   and MAX operate on the discretized pdfs, and the mean/variance at every
   node is stored for the fast inner engine (FASSTA) to consume. *)

type config = {
  samples : int;
  model : Variation.Model.t;
  electrical : Sta.Electrical.config;
}

let default_config =
  {
    samples = 12;
    model = Variation.Model.default;
    electrical = Sta.Electrical.default_config;
  }

(* statobs: scratch propagation node count vs dirty-cone wavefront pops —
   the FULLSSTA analogue of the electrical engine's visit counters. *)
let c_run_nodes = Obs.Counters.make "fullssta.run.nodes"
let c_update_visits = Obs.Counters.make "fullssta.update.visits"

type t = {
  circuit : Netlist.Circuit.t;
  config : config;
  electrical : Sta.Electrical.t;
  pdfs : Numerics.Discrete_pdf.t array; (* arrival pdf per node *)
  moments : Numerics.Clark.moments array; (* point values stored per node *)
  (* Live-annotation support for [update]: which electrical arc row and
     drive strength each node's pdfs were last derived from (physical row
     pointers — Electrical.update keeps rows intact exactly when their
     values survived), the per-arc resampled arrival pdfs so clean arcs
     are never recomputed, a change bitmap + wavefront for the sweep, and
     the memoized output RV. *)
  last_arc : float array array;
  last_strength : float array;
  arc_arrivals : Numerics.Discrete_pdf.t array array;
  changed : bool array;
  wave : Netlist.Wavefront.t;
  mutable out_rv : Numerics.Discrete_pdf.t option;
}

(* Normal pdf of one fanin arc's delay under the variation model. *)
let arc_pdf config circuit electrical id k =
  let delay = (Sta.Electrical.arc_delays electrical id).(k) in
  let strength =
    Cells.Cell.strength (Netlist.Circuit.cell_exn circuit id)
  in
  let sigma = Variation.Model.sigma config.model ~delay ~strength in
  Numerics.Discrete_pdf.of_normal ~samples:config.samples ~mean:delay ~sigma ()

(* Resampled arrival pdf through one fanin arc: fanin arrival + arc delay. *)
let arc_arrival config circuit electrical pdfs id k fi =
  let arc = arc_pdf config circuit electrical id k in
  Numerics.Discrete_pdf.resample
    (Numerics.Discrete_pdf.sum pdfs.(fi) arc)
    ~samples:config.samples

let node_strength circuit id =
  match Netlist.Circuit.cell circuit id with
  | None -> 0.0
  | Some cell -> Cells.Cell.strength cell

let run ?(config = default_config) circuit =
  if config.samples < 2 then invalid_arg "Fullssta.run: samples < 2";
  Obs.Span.with_ "fullssta.run" @@ fun () ->
  let electrical = Sta.Electrical.compute ~config:config.electrical circuit in
  let n = Netlist.Circuit.size circuit in
  Obs.Counters.add c_run_nodes n;
  let pdfs =
    Array.make n
      (Numerics.Discrete_pdf.constant config.electrical.Sta.Electrical.input_arrival)
  in
  let arc_arrivals = Array.make n [||] in
  List.iter
    (fun id ->
      let fanins = Netlist.Circuit.fanins circuit id in
      if Array.length fanins > 0 then begin
        let arrivals =
          Array.mapi
            (fun k fi -> arc_arrival config circuit electrical pdfs id k fi)
            fanins
        in
        arc_arrivals.(id) <- arrivals;
        pdfs.(id) <-
          Numerics.Discrete_pdf.resample
            (Numerics.Discrete_pdf.max_list (Array.to_list arrivals))
            ~samples:config.samples
      end)
    (Netlist.Circuit.topological circuit);
  let moments = Array.map Numerics.Discrete_pdf.to_moments pdfs in
  {
    circuit;
    config;
    electrical;
    pdfs;
    moments;
    last_arc = Array.init n (fun id -> Sta.Electrical.arc_delays electrical id);
    last_strength = Array.init n (fun id -> node_strength circuit id);
    arc_arrivals;
    changed = Array.make n false;
    wave = Netlist.Wavefront.create n;
    out_rv = None;
  }

let pdf t id = t.pdfs.(id)
let moments t id = t.moments.(id)
let electrical t = t.electrical

(* The circuit-level random variable RV_O of §2.1: the statistical max over
   every primary output's arrival. Memoized; [update] drops the memo when a
   primary output's arrival pdf moves. *)
let output_rv t =
  match t.out_rv with
  | Some rv -> rv
  | None -> (
      match Netlist.Circuit.outputs t.circuit with
      | [] -> invalid_arg "Fullssta.output_rv: no outputs"
      | outs ->
          let rv =
            Numerics.Discrete_pdf.resample
              (Numerics.Discrete_pdf.max_list
                 (List.map (fun o -> t.pdfs.(o)) outs))
              ~samples:t.config.samples
          in
          t.out_rv <- Some rv;
          rv)

let output_moments t = Numerics.Discrete_pdf.to_moments (output_rv t)

exception Divergence of Diag.t

(* Paranoid oracle: rebuild the annotation from scratch and insist the
   incremental state matches. With no decay budget the match must be
   bit-level; with one, stopped nodes may each carry up to [decay_tol] of
   moment error and errors compound along paths, so the bound is the budget
   times the (over-approximated by node count) path depth. *)
let check_against_scratch t ~decay_tol =
  let fresh = run ~config:t.config t.circuit in
  let n = Netlist.Circuit.size t.circuit in
  let slack = decay_tol *. float_of_int n in
  for id = 0 to n - 1 do
    let ok =
      if decay_tol = 0.0 then
        Numerics.Discrete_pdf.equal t.pdfs.(id) fresh.pdfs.(id)
      else
        let m = t.moments.(id) and m' = fresh.moments.(id) in
        Float.abs (m.Numerics.Clark.mean -. m'.Numerics.Clark.mean)
        +. Float.abs (Numerics.Clark.sigma m -. Numerics.Clark.sigma m')
        <= slack
    in
    if not ok then
      raise
        (Divergence
           (Diag.errorf ~code:"STAT005"
              ~loc:(Diag.Net (Netlist.Circuit.node_name t.circuit id))
              "incremental arrival (μ=%.9g σ=%.9g) diverged from scratch \
               (μ=%.9g σ=%.9g)"
              t.moments.(id).Numerics.Clark.mean
              (Numerics.Clark.sigma t.moments.(id))
              fresh.moments.(id).Numerics.Clark.mean
              (Numerics.Clark.sigma fresh.moments.(id))))
  done

(* Re-propagate only what a resize actually perturbed. Arc dirtiness is
   found by scanning for replaced electrical arc rows (Electrical.update
   keeps a row's physical identity exactly when its values survived, and
   always replaces rows of resized gates) plus drive-strength deltas, so the
   scan is sound no matter who refreshed the electrical state — including a
   full [recompute_all], which simply marks everything dirty. Dirty nodes
   drain through the wavefront in topological order; a node whose recomputed
   pdf is bit-identical (or, with [decay_tol] > 0, whose moments moved less
   than the budget) keeps its stored pdf and stops the sweep there. Per-arc
   resampled arrivals are cached so a multi-fanin node only recomputes the
   arcs that are actually dirty. *)
let update ?(paranoid = false) ?(decay_tol = 0.0) ?(refresh_electrical = true)
    t ~resized =
  Obs.Span.with_ "fullssta.update" @@ fun () ->
  if refresh_electrical then
    ignore (Sta.Electrical.update t.electrical t.circuit ~resized);
  let n = Netlist.Circuit.size t.circuit in
  Array.fill t.changed 0 n false;
  Netlist.Wavefront.clear t.wave;
  for id = 0 to n - 1 do
    if
      Sta.Electrical.arc_delays t.electrical id != t.last_arc.(id)
      || node_strength t.circuit id <> t.last_strength.(id)
    then Netlist.Wavefront.push t.wave id
  done;
  let dirty = ref [] in
  let visits = ref 0 in
  let quit = ref false in
  while not !quit do
    let id = Netlist.Wavefront.pop t.wave in
    if id < 0 then quit := true
    else begin
      incr visits;
      let fanins = Netlist.Circuit.fanins t.circuit id in
      if Array.length fanins > 0 then begin
        let row = Sta.Electrical.arc_delays t.electrical id in
        let strength = node_strength t.circuit id in
        let row_dirty =
          row != t.last_arc.(id) || strength <> t.last_strength.(id)
        in
        let arrivals = t.arc_arrivals.(id) in
        Array.iteri
          (fun k fi ->
            if row_dirty || t.changed.(fi) then
              arrivals.(k) <-
                arc_arrival t.config t.circuit t.electrical t.pdfs id k fi)
          fanins;
        t.last_arc.(id) <- row;
        t.last_strength.(id) <- strength;
        let pdf' =
          Numerics.Discrete_pdf.resample
            (Numerics.Discrete_pdf.max_list (Array.to_list arrivals))
            ~samples:t.config.samples
        in
        let keep =
          Numerics.Discrete_pdf.equal pdf' t.pdfs.(id)
          || decay_tol > 0.0
             &&
             let m' = Numerics.Discrete_pdf.to_moments pdf' in
             let m = t.moments.(id) in
             Float.abs (m'.Numerics.Clark.mean -. m.Numerics.Clark.mean)
             +. Float.abs (Numerics.Clark.sigma m' -. Numerics.Clark.sigma m)
             <= decay_tol
        in
        if not keep then begin
          t.pdfs.(id) <- pdf';
          t.moments.(id) <- Numerics.Discrete_pdf.to_moments pdf';
          t.changed.(id) <- true;
          dirty := id :: !dirty;
          Netlist.Circuit.iter_fanouts t.circuit id ~f:(fun fo ->
              Netlist.Wavefront.push t.wave fo)
        end
      end
    end
  done;
  Obs.Counters.add c_update_visits !visits;
  (match t.out_rv with
  | Some _
    when List.exists (fun o -> t.changed.(o)) (Netlist.Circuit.outputs t.circuit)
    ->
      t.out_rv <- None
  | _ -> ());
  if paranoid then check_against_scratch t ~decay_tol;
  !dirty

(* sigma/mean of RV_O — Table 1's headline metric. *)
let sigma_over_mean t =
  let m = output_moments t in
  if m.Numerics.Clark.mean = 0.0 then Float.nan
  else Numerics.Clark.sigma m /. m.Numerics.Clark.mean

(* Statistical yield at a clock period: P(RV_O <= period). *)
let yield_at t ~period = Numerics.Discrete_pdf.cdf (output_rv t) period

(* Post-run self-check: every stored arrival pdf must still be a pdf after
   the SUM/MAX/resample chain. Findings here point at engine defects (lost
   mass, negative weights, negative stored variance), not at user input —
   the lint preflight guards the inputs. *)
let check ?(tol = 1e-6) t =
  List.concat_map
    (fun id ->
      let loc = Diag.Net (Netlist.Circuit.node_name t.circuit id) in
      let points = Numerics.Discrete_pdf.points t.pdfs.(id) in
      let mass = List.fold_left (fun a (_, m) -> a +. m) 0.0 points in
      (if Float.abs (mass -. 1.0) > tol then
         [
           Diag.errorf ~code:"STAT001" ~loc
             "arrival pdf mass drifted to %.9g after propagation" mass;
         ]
       else [])
      @ (if List.exists (fun (_, m) -> m < 0.0) points then
           [
             Diag.errorf ~code:"STAT002" ~loc
               "arrival pdf has a negative point mass";
           ]
         else [])
      @
      let var = t.moments.(id).Numerics.Clark.var in
      if var < 0.0 then
        [ Diag.errorf ~code:"STAT002" ~loc "stored arrival variance %.3g" var ]
      else [])
    (Netlist.Circuit.topological t.circuit)

(* FASSTA — the paper's fast inner engine (§4.3): arrival times are carried
   as (mean, variance) pairs only. SUM adds moments; MAX uses Clark's
   formulas with the quadratic erf approximation, short-circuited entirely
   when the 2.6 cutoff (equations (5)/(6)) resolves the max to one operand.

   The engine runs over any topologically-ordered node subset with frozen
   boundary values — exactly how the optimizer evaluates candidate gate
   sizes inside an extracted subcircuit — or over the whole circuit. *)

type stats = {
  mutable cutoff_hits : int; (* max resolved by (5)/(6) without arithmetic *)
  mutable blended : int; (* max needed the Clark evaluation *)
}

let make_stats () = { cutoff_hits = 0; blended = 0 }

(* statobs: nodes pushed through the moment-propagation kernels (both the
   windowed and the whole-circuit form), the inner engine's unit of work. *)
let c_propagate_nodes = Obs.Counters.make "fassta.propagate.nodes"

let record stats resolution =
  match resolution with
  | Numerics.Clark.Left_dominates | Numerics.Clark.Right_dominates ->
      stats.cutoff_hits <- stats.cutoff_hits + 1
  | Numerics.Clark.Blended -> stats.blended <- stats.blended + 1

let cutoff_fraction stats =
  let total = stats.cutoff_hits + stats.blended in
  (* No max operations recorded means the cutoff never had a chance to fire:
     report a hit rate of zero rather than nan, so the value stays usable in
     arithmetic and comparisons (callers that want to display "no data"
     distinctly can test [total] themselves via the stats fields). *)
  if total = 0 then 0.0
  else float_of_int stats.cutoff_hits /. float_of_int total

(* Moments of one fanin arc's delay. *)
let arc_moments model circuit (electrical : Sta.Electrical.t) id k =
  let delay = (Sta.Electrical.arc_delays electrical id).(k) in
  let strength = Cells.Cell.strength (Netlist.Circuit.cell_exn circuit id) in
  Variation.Model.delay_moments model ~delay ~strength

(* Statistical max across fanin-arc arrivals, with optional stats capture. *)
let max_arrivals ?stats arrivals =
  match arrivals with
  | [] -> invalid_arg "Fassta.max_arrivals: empty"
  | first :: rest ->
      List.fold_left
        (fun acc m ->
          let v, resolution = Numerics.Clark.max_fast_resolved acc m in
          Option.iter (fun s -> record s resolution) stats;
          v)
        first rest

(* Propagate moments through [nodes] (topologically ordered). [boundary]
   supplies the arrival moments of any fanin outside [nodes]; inputs inside
   [nodes] get the boundary value too. Results land in [out] (a map from id
   to moments), which is also the return value. *)
let propagate ?stats ~model ~circuit ~electrical ~boundary nodes =
  Obs.Counters.add c_propagate_nodes (Array.length nodes);
  let out = Hashtbl.create (Array.length nodes * 2) in
  let value_of fi =
    match Hashtbl.find_opt out fi with Some m -> m | None -> boundary fi
  in
  Array.iter
    (fun id ->
      let fanins = Netlist.Circuit.fanins circuit id in
      if Array.length fanins = 0 then Hashtbl.replace out id (boundary id)
      else begin
        let arrivals =
          Array.to_list
            (Array.mapi
               (fun k fi ->
                 Numerics.Clark.sum (value_of fi)
                   (arc_moments model circuit electrical id k))
               fanins)
        in
        Hashtbl.replace out id (max_arrivals ?stats arrivals)
      end)
    nodes;
  out

(* Whole-circuit fast pass into a caller-owned array (no allocation beyond
   the moments themselves) — the sizing inner loop calls this thousands of
   times per iteration.

   [kernel] (only honoured with [exact]) routes each node's arrival fold
   through [Numerics.Kernels.fold_into]: arrivals are staged as raw floats
   and folded in one batched call whose arithmetic replicates
   [Clark.max_exact] operation-for-operation, so the results are
   bit-identical to the scalar path — it only skips the per-operand
   cross-module calls and intermediate moment records. *)
let propagate_into ?stats ?(exact = false) ?kernel ~model ~circuit ~electrical
    out =
  Obs.Counters.add c_propagate_nodes (Netlist.Circuit.size circuit);
  let input_arrival =
    electrical.Sta.Electrical.config.Sta.Electrical.input_arrival
  in
  let input_moments = Numerics.Clark.moments ~mean:input_arrival ~var:0.0 in
  match kernel with
  | Some kern when exact ->
      List.iter
        (fun id ->
          let fanins = Netlist.Circuit.fanins circuit id in
          let nf = Array.length fanins in
          if nf = 0 then out.(id) <- input_moments
          else begin
            let arcs = Sta.Electrical.arc_delays electrical id in
            let strength =
              Cells.Cell.strength (Netlist.Circuit.cell_exn circuit id)
            in
            Numerics.Kernels.ensure kern nf;
            let bm = kern.Numerics.Kernels.bm
            and bv = kern.Numerics.Kernels.bv in
            for k = 0 to nf - 1 do
              let m = out.(fanins.(k)) in
              let s = Variation.Model.sigma model ~delay:arcs.(k) ~strength in
              (* = Clark.sum (out fi) (delay_moments ...): same adds *)
              bm.(k) <- m.Numerics.Clark.mean +. arcs.(k);
              bv.(k) <- m.Numerics.Clark.var +. (s *. s)
            done;
            Numerics.Kernels.fold_into kern nf;
            out.(id) <-
              Numerics.Clark.moments ~mean:kern.Numerics.Kernels.sc.rm
                ~var:kern.Numerics.Kernels.sc.rv
          end)
        (Netlist.Circuit.topological circuit)
  | _ ->
      List.iter
        (fun id ->
          let fanins = Netlist.Circuit.fanins circuit id in
          if Array.length fanins = 0 then out.(id) <- input_moments
          else begin
            let arcs = Sta.Electrical.arc_delays electrical id in
            let strength =
              Cells.Cell.strength (Netlist.Circuit.cell_exn circuit id)
            in
            let acc = ref None in
            Array.iteri
              (fun k fi ->
                let arc =
                  Variation.Model.delay_moments model ~delay:arcs.(k) ~strength
                in
                let arrival = Numerics.Clark.sum out.(fi) arc in
                match !acc with
                | None -> acc := Some arrival
                | Some best ->
                    if exact then
                      acc := Some (Numerics.Clark.max_exact best arrival)
                    else begin
                      let v, resolution =
                        Numerics.Clark.max_fast_resolved best arrival
                      in
                      Option.iter (fun s -> record s resolution) stats;
                      acc := Some v
                    end)
              fanins;
            match !acc with Some m -> out.(id) <- m | None -> assert false
          end)
        (Netlist.Circuit.topological circuit)

(* Whole-circuit fast pass: useful standalone and for engine-accuracy
   studies against FULLSSTA / Monte Carlo. *)
let run ?stats ?(model = Variation.Model.default) ?config circuit =
  let electrical = Sta.Electrical.compute ?config circuit in
  let input_arrival = electrical.Sta.Electrical.config.input_arrival in
  let boundary _ = Numerics.Clark.moments ~mean:input_arrival ~var:0.0 in
  let nodes = Array.of_list (Netlist.Circuit.topological circuit) in
  let table = propagate ?stats ~model ~circuit ~electrical ~boundary nodes in
  let n = Netlist.Circuit.size circuit in
  Array.init n (fun id ->
      match Hashtbl.find_opt table id with
      | Some m -> m
      | None -> boundary id)

let output_moments circuit moments =
  match Netlist.Circuit.outputs circuit with
  | [] -> invalid_arg "Fassta.output_moments: no outputs"
  | outs -> Numerics.Clark.max_fast_list (List.map (fun o -> moments.(o)) outs)

(** FULLSSTA — discrete-pdf statistical timing (the accurate outer engine,
    paper §4.2). Stores per-node pdfs and their moments for FASSTA. *)

type config = {
  samples : int;  (** pdf points, paper uses 10–15 (default 12) *)
  model : Variation.Model.t;
  electrical : Sta.Electrical.config;
}

val default_config : config

type t

val run : ?config:config -> Netlist.Circuit.t -> t

exception Divergence of Diag.t
(** Raised (code STAT005) when paranoid mode catches the incremental state
    disagreeing with a from-scratch rebuild. *)

val update :
  ?paranoid:bool ->
  ?decay_tol:float ->
  ?refresh_electrical:bool ->
  t ->
  resized:Netlist.Circuit.id list ->
  Netlist.Circuit.id list
(** [update t ~resized] brings the live annotation back in sync after the
    listed gates changed cells, re-propagating pdfs only through the dirty
    fanout cone (topological wavefront; per-arc arrival pdfs are cached and
    only dirty arcs recomputed). With [decay_tol = 0.0] (default) the sweep
    stops exactly where a recomputed pdf is bit-identical to the stored one,
    leaving the annotation bit-equal to a fresh {!run}; a positive
    [decay_tol] also stops where the node's |Δmean| + |Δsigma| falls within
    the budget, mirroring the FASSTA window cutoff. [refresh_electrical]
    (default true) first runs {!Sta.Electrical.update} for [resized]; pass
    false when the caller already refreshed the shared electrical state —
    dirtiness is re-derived from replaced arc rows either way. [paranoid]
    cross-checks the result against a scratch run and raises {!Divergence}
    on any mismatch. Returns the ids whose arrival pdfs changed. *)

val pdf : t -> Netlist.Circuit.id -> Numerics.Discrete_pdf.t
(** Arrival-time pdf at a node. *)

val moments : t -> Netlist.Circuit.id -> Numerics.Clark.moments
(** Stored (mean, variance) of the node's arrival — FASSTA's boundary data. *)

val electrical : t -> Sta.Electrical.t

val output_rv : t -> Numerics.Discrete_pdf.t
(** RV_O = statistical max over all primary outputs (paper §2.1). *)

val output_moments : t -> Numerics.Clark.moments

val sigma_over_mean : t -> float
(** σ/μ of RV_O — Table 1's headline metric. *)

val yield_at : t -> period:float -> float
(** P(RV_O ≤ period). *)

val check : ?tol:float -> t -> Diag.t list
(** Post-run invariant self-check: every stored arrival pdf still sums to 1
    within [tol] (default 1e-6), has no negative point mass, and carries a
    non-negative stored variance. Findings (STAT001/STAT002) indicate engine
    defects rather than bad inputs. *)

(** FULLSSTA — discrete-pdf statistical timing (the accurate outer engine,
    paper §4.2). Stores per-node pdfs and their moments for FASSTA. *)

type config = {
  samples : int;  (** pdf points, paper uses 10–15 (default 12) *)
  model : Variation.Model.t;
  electrical : Sta.Electrical.config;
}

val default_config : config

type t

val run : ?config:config -> Netlist.Circuit.t -> t

val pdf : t -> Netlist.Circuit.id -> Numerics.Discrete_pdf.t
(** Arrival-time pdf at a node. *)

val moments : t -> Netlist.Circuit.id -> Numerics.Clark.moments
(** Stored (mean, variance) of the node's arrival — FASSTA's boundary data. *)

val electrical : t -> Sta.Electrical.t

val output_rv : t -> Numerics.Discrete_pdf.t
(** RV_O = statistical max over all primary outputs (paper §2.1). *)

val output_moments : t -> Numerics.Clark.moments

val sigma_over_mean : t -> float
(** σ/μ of RV_O — Table 1's headline metric. *)

val yield_at : t -> period:float -> float
(** P(RV_O ≤ period). *)

val check : ?tol:float -> t -> Diag.t list
(** Post-run invariant self-check: every stored arrival pdf still sums to 1
    within [tol] (default 1e-6), has no negative point mass, and carries a
    non-negative stored variance. Findings (STAT001/STAT002) indicate engine
    defects rather than bad inputs. *)

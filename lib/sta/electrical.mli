(** Electrical state of a sized circuit: loads, slews (worst-fanin
    propagation) and nominal per-arc delays from the library LUTs. Shared by
    the deterministic, statistical, and Monte-Carlo engines. *)

type config = { input_slew : float; input_arrival : float }

val default_config : config
(** 10 ps boundary slew, time-0 input arrivals. *)

type t = {
  config : config;
  load : float array;
  slew : float array;
  arc_delay : float array array;
  mutable wave : Netlist.Wavefront.t option;
      (** scratch queue for [update]; managed internally *)
  mutable scratch : float array;
      (** delay staging buffer for [update]; managed internally *)
  mutable memo : Cells.Memo.t option;
      (** fused-kernel regime: when set, (delay, slew) pairs are served
          through the memoized fused [Cells.Memo.query2]. Bit-transparent —
          values are identical to the scalar path; only the statobs LUT
          counters differ. [None] (the default) is the scalar reference
          path. *)
}

val compute : ?config:config -> ?fused:bool -> Netlist.Circuit.t -> t
(** [fused] (default [false]) enables the memoized fused-lookup regime;
    see {!set_fused}. *)

val set_fused : t -> bool -> unit
(** Switch the fused-lookup regime on (allocating a fresh memo if none is
    installed) or off. Purely an execution-strategy toggle: timing values
    are unaffected. *)

val load : t -> Netlist.Circuit.id -> float
val slew : t -> Netlist.Circuit.id -> float

val arc_delays : t -> Netlist.Circuit.id -> float array
(** Nominal delay per fanin arc ([||] for primary inputs). *)

val gate_mean_delay : t -> Netlist.Circuit.id -> float

val recompute_nodes : t -> Netlist.Circuit.t -> Netlist.Circuit.id array -> unit
(** Recompute load/arc-delays/slew in place for a topologically-ordered node
    subset, reading the circuit's current cells (trial-resize support). *)

val recompute_all : t -> Netlist.Circuit.t -> unit
(** Full in-place refresh of loads, arc delays and slews. *)

val update :
  ?slew_tol:float ->
  ?within:(Netlist.Circuit.id -> bool) ->
  t ->
  Netlist.Circuit.t ->
  resized:Netlist.Circuit.id list ->
  Netlist.Circuit.id list
(** [update t circuit ~resized] refreshes only the cone a resize perturbs:
    loads at fanins of resized gates, then slews/arc delays through the
    affected fanout cone in topological order, stopping where the recomputed
    slew moves by at most [slew_tol] (default [0.0]: an exact stop, leaving
    the state bit-identical to {!recompute_all}). Nodes whose values
    survive keep their arc arrays physically intact — consumers may use
    pointer inequality as the dirty marker — while resized gates always get
    fresh arrays. [within] clips seeding and sweeping to a node subset,
    mirroring {!recompute_nodes} on a window. Returns the ids whose stored
    load, slew or arc delays changed (unordered, may contain duplicates). *)

type snapshot

val update_logged :
  ?slew_tol:float ->
  ?within:(Netlist.Circuit.id -> bool) ->
  t ->
  Netlist.Circuit.t ->
  resized:Netlist.Circuit.id list ->
  Netlist.Circuit.id list * snapshot
(** Like {!update}, additionally returning an undo log: [restore]ing it
    rewinds every touched node to its pre-update state (trial support). *)

val snapshot : t -> Netlist.Circuit.id array -> snapshot
val restore : t -> snapshot -> unit

(* The electrical state of a sized circuit: per-node load and output slew,
   and the nominal delay of every fanin->output arc, all straight from the
   library LUTs.

   Slew propagation uses the worst (largest) fanin slew, the usual
   conservative choice that keeps the electrical pass independent of
   arrival times. Both timing engines (deterministic and statistical) and
   the Monte-Carlo sampler consume these arc delays, so they always agree
   on the nominal electrical picture. *)

type config = { input_slew : float; input_arrival : float }

let default_config = { input_slew = 10.0; input_arrival = 0.0 }

(* statobs: full-sweep node visits vs dirty-cone wavefront pops. Their
   ratio is the incremental engine's savings, reproducible run-to-run. *)
let c_compute_nodes = Obs.Counters.make "electrical.compute.nodes"
let c_update_visits = Obs.Counters.make "electrical.update.visits"

type t = {
  config : config;
  load : float array;
  slew : float array;
  arc_delay : float array array; (* arc_delay.(gate).(k) for fanin k *)
  mutable wave : Netlist.Wavefront.t option;
      (* lazily-created scratch queue for [update]; reused across calls *)
  mutable scratch : float array;
      (* delay staging buffer for [update]; fresh arrays are cut from it
         only when a node's arc delays actually changed *)
  mutable memo : Cells.Memo.t option;
      (* fused-kernel regime: serve (delay, slew) pairs through Lut.query2
         with an exact-repeat memo. [None] is the scalar reference path,
         byte-for-byte the pre-statkern code; values are bit-identical
         either way (the memo caches a pure function, and query2 matches
         the scalar queries bit-for-bit), only the statobs LUT counters
         tell the lanes apart. *)
}

let set_fused t fused =
  match (fused, t.memo) with
  | true, None -> t.memo <- Some (Cells.Memo.create ())
  | false, _ -> t.memo <- None
  | true, Some _ -> ()

(* Fused per-node evaluation: one memoized [query2] per fanin arc yields
   every arc delay AND the output slew (the slew at the worst fanin's
   operating point is exactly [Cell.slew cell ~slew:worst ~load], since the
   worst input slew is attained at some fanin). Returns a fresh arcs array;
   writes nothing. *)
let fused_arcs_and_slew memo cell ~slews ~fanins ~load =
  let nf = Array.length fanins in
  let h = Cells.Memo.cell_hash cell in
  let worst = ref 0.0 and kw = ref (-1) in
  for k = 0 to nf - 1 do
    let s = slews.(fanins.(k)) in
    if s > !worst then begin
      worst := s;
      kw := k
    end
  done;
  let arcs = Array.make nf 0.0 in
  let out_slew = ref 0.0 in
  for k = 0 to nf - 1 do
    let d, s =
      Cells.Memo.query2 memo cell ~hash:h ~slew:slews.(fanins.(k)) ~load
    in
    arcs.(k) <- d;
    if k = !kw then out_slew := s
  done;
  let out_slew =
    (* all fanin slews ≤ 0 (possible only with a zero boundary slew): no
       fanin attains the max, fall back to the scalar query at the
       accumulated worst (= 0.0), exactly as the reference path does *)
    if !kw >= 0 then !out_slew else Cells.Cell.slew cell ~slew:!worst ~load
  in
  (arcs, out_slew)

let compute ?(config = default_config) ?(fused = false) circuit =
  let n = Netlist.Circuit.size circuit in
  Obs.Counters.add c_compute_nodes n;
  let memo = if fused then Some (Cells.Memo.create ()) else None in
  let load = Array.make n 0.0 in
  let slew = Array.make n config.input_slew in
  let arc_delay = Array.make n [||] in
  List.iter
    (fun id ->
      load.(id) <- Netlist.Circuit.load circuit id;
      match Netlist.Circuit.cell circuit id with
      | None -> () (* primary input: slew stays at the boundary value *)
      | Some cell -> (
          let fanins = Netlist.Circuit.fanins circuit id in
          match memo with
          | Some memo ->
              let arcs, s =
                fused_arcs_and_slew memo cell ~slews:slew ~fanins
                  ~load:load.(id)
              in
              arc_delay.(id) <- arcs;
              slew.(id) <- s
          | None ->
              let worst_in_slew =
                Array.fold_left
                  (fun acc fi -> Float.max acc slew.(fi))
                  0.0 fanins
              in
              arc_delay.(id) <-
                Array.map
                  (fun fi ->
                    Cells.Cell.delay cell ~slew:slew.(fi) ~load:load.(id))
                  fanins;
              slew.(id) <-
                Cells.Cell.slew cell ~slew:worst_in_slew ~load:load.(id)))
    (Netlist.Circuit.topological circuit);
  { config; load; slew; arc_delay; wave = None; scratch = [||]; memo }

let load t id = t.load.(id)
let slew t id = t.slew.(id)
let arc_delays t id = t.arc_delay.(id)

(* In-place recomputation for a topologically-ordered node subset — the
   sizing inner loop re-derives the electrical picture of a subcircuit
   window after a trial resize, leaving everything outside untouched.
   Boundary slews are whatever the arrays currently hold. *)
let recompute_node t circuit id =
  t.load.(id) <- Netlist.Circuit.load circuit id;
  match Netlist.Circuit.cell circuit id with
  | None -> ()
  | Some cell -> (
      let fanins = Netlist.Circuit.fanins circuit id in
      match t.memo with
      | Some memo ->
          let arcs, s =
            fused_arcs_and_slew memo cell ~slews:t.slew ~fanins
              ~load:t.load.(id)
          in
          t.arc_delay.(id) <- arcs;
          t.slew.(id) <- s
      | None ->
          let worst_in_slew =
            Array.fold_left (fun acc fi -> Float.max acc t.slew.(fi)) 0.0 fanins
          in
          t.arc_delay.(id) <-
            Array.map
              (fun fi ->
                Cells.Cell.delay cell ~slew:t.slew.(fi) ~load:t.load.(id))
              fanins;
          t.slew.(id) <-
            Cells.Cell.slew cell ~slew:worst_in_slew ~load:t.load.(id))

let recompute_nodes t circuit ids =
  Obs.Counters.add c_compute_nodes (Array.length ids);
  Array.iter (fun id -> recompute_node t circuit id) ids

(* Full in-place refresh: every node, in topological order. Cheap (one LUT
   sweep) and used after each committed resize so subsequent evaluations
   never see stale loads or slews. *)
let recompute_all t circuit =
  Obs.Counters.add c_compute_nodes (Netlist.Circuit.size circuit);
  List.iter
    (fun id -> recompute_node t circuit id)
    (Netlist.Circuit.topological circuit)

(* Saved per-node electrical state, for undoing a trial recomputation. *)
type snapshot = (int * float * float * float array) array

let snapshot t ids =
  Array.map (fun id -> (id, t.load.(id), t.slew.(id), t.arc_delay.(id))) ids

let restore t (snap : snapshot) =
  Array.iter
    (fun (id, load, slew, arcs) ->
      t.load.(id) <- load;
      t.slew.(id) <- slew;
      t.arc_delay.(id) <- arcs)
    snap

(* Dirty-cone incremental refresh after a resize.

   Loads change exactly at the fanins of resized gates (a node's load reads
   its fanouts' pin caps), and slews/arc-delays change only downstream of a
   load or cell change, so the sweep seeds those nodes into a wavefront and
   drains it in ascending-id (= topological) order. A node whose recomputed
   slew moves by at most [slew_tol] stops the sweep there: with the default
   tolerance of 0.0 this is an exact stop — the recomputation is a pure
   function of unchanged inputs from that frontier on, so the skipped
   region is bit-identical to what a full sweep would write.

   Unchanged nodes keep their existing arc arrays (physical equality is the
   "not dirty" marker downstream consumers rely on); resized gates always
   get fresh arrays even when every delay value survives the resize, so a
   pointer scan still spots the cell change. [within] clips both seeding and
   sweeping to a node subset, mirroring [recompute_nodes] on a window. When
   [log] is set, every node is recorded before its first mutation; entries
   are prepended, so the left-to-right [restore] overwrite order makes the
   oldest record win. *)
let update_core ~slew_tol ~within ~log t circuit ~resized =
  let n = Netlist.Circuit.size circuit in
  let wave =
    match t.wave with
    | Some w when Netlist.Wavefront.capacity w >= n -> w
    | _ ->
        let w = Netlist.Wavefront.create n in
        t.wave <- Some w;
        w
  in
  Netlist.Wavefront.clear wave;
  let dirty = ref [] in
  let entries = ref [] in
  let note id =
    if log then
      entries := (id, t.load.(id), t.slew.(id), t.arc_delay.(id)) :: !entries
  in
  let allow = match within with None -> fun _ -> true | Some f -> f in
  List.iter
    (fun g ->
      if allow g then Netlist.Wavefront.push wave g;
      Array.iter
        (fun fi ->
          if allow fi then begin
            let load' = Netlist.Circuit.load circuit fi in
            if load' <> t.load.(fi) then begin
              note fi;
              t.load.(fi) <- load';
              dirty := fi :: !dirty;
              if Netlist.Circuit.cell circuit fi <> None then
                Netlist.Wavefront.push wave fi
            end
          end)
        (Netlist.Circuit.fanins circuit g))
    resized;
  let push_fo fo = Netlist.Wavefront.push wave fo in
  (* local pop count flushed once after the drain: the per-pop cost stays
     off the disabled path entirely *)
  let visits = ref 0 in
  let quit = ref false in
  while not !quit do
    let id = Netlist.Wavefront.pop wave in
    if id < 0 then quit := true
    else if (incr visits; allow id) then
      match Netlist.Circuit.cell circuit id with
      | None -> ()
      | Some cell ->
          let fanins = Netlist.Circuit.fanins circuit id in
          let nf = Array.length fanins in
          let load_id = t.load.(id) in
          let worst_in_slew = ref 0.0 in
          for k = 0 to nf - 1 do
            worst_in_slew := Float.max !worst_in_slew t.slew.(fanins.(k))
          done;
          (* stage the fresh delays in the scratch buffer, fusing the
             comparison against the current arcs; a new array is only
             allocated when the node is actually dirty *)
          if Array.length t.scratch < nf then t.scratch <- Array.make nf 0.0;
          let stage = t.scratch in
          let resized_here = List.mem id resized in
          let old_arcs = t.arc_delay.(id) in
          let equal = ref ((not resized_here) && Array.length old_arcs = nf) in
          let slew' =
            match t.memo with
            | None ->
                for k = 0 to nf - 1 do
                  let d =
                    Cells.Cell.delay cell ~slew:t.slew.(fanins.(k))
                      ~load:load_id
                  in
                  stage.(k) <- d;
                  if !equal && d <> old_arcs.(k) then equal := false
                done;
                Cells.Cell.slew cell ~slew:!worst_in_slew ~load:load_id
            | Some memo ->
                (* fused: one memoized query2 per arc covers the delays AND
                   the output slew (read off the worst fanin's pair) *)
                let h = Cells.Memo.cell_hash cell in
                let kw = ref (-1) in
                let acc = ref 0.0 in
                for k = 0 to nf - 1 do
                  let s = t.slew.(fanins.(k)) in
                  if s > !acc then begin
                    acc := s;
                    kw := k
                  end
                done;
                let out = ref 0.0 in
                for k = 0 to nf - 1 do
                  let d, s =
                    Cells.Memo.query2 memo cell ~hash:h
                      ~slew:t.slew.(fanins.(k)) ~load:load_id
                  in
                  stage.(k) <- d;
                  if !equal && d <> old_arcs.(k) then equal := false;
                  if k = !kw then out := s
                done;
                if !kw >= 0 then !out
                else Cells.Cell.slew cell ~slew:!worst_in_slew ~load:load_id
          in
          let arcs_equal = !equal in
          let slew_moved = Float.abs (slew' -. t.slew.(id)) > slew_tol in
          if (not arcs_equal) || slew_moved then begin
            note id;
            if not arcs_equal then begin
              t.arc_delay.(id) <- Array.sub stage 0 nf;
              dirty := id :: !dirty
            end;
            if slew_moved then begin
              t.slew.(id) <- slew';
              if arcs_equal then dirty := id :: !dirty;
              Netlist.Circuit.iter_fanouts circuit id ~f:push_fo
            end
          end
  done;
  Obs.Counters.add c_update_visits !visits;
  (!dirty, Array.of_list !entries)

let update ?(slew_tol = 0.0) ?within t circuit ~resized =
  fst (update_core ~slew_tol ~within ~log:false t circuit ~resized)

let update_logged ?(slew_tol = 0.0) ?within t circuit ~resized =
  update_core ~slew_tol ~within ~log:true t circuit ~resized

let gate_mean_delay t id =
  let arcs = t.arc_delay.(id) in
  if Array.length arcs = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 arcs /. float_of_int (Array.length arcs)

(** Two electrically disjoint blocks of very different depth sharing no
    nodes at all: a deep XOR/NAND spine whose outputs dominate RV_O, and a
    shallow cone whose outputs sit dozens of joint sigmas below it.

    Purpose-built for the dominance-pruning contract: statcheck certifies
    the shallow outputs as dominated, every shallow gate is skippable (its
    whole fanin neighbourhood is dead), and — because the gap is far beyond
    the 2.6 cutoff — resizing shallow gates cannot move the global
    objective, so pruned and unpruned sizer runs provably coincide. *)

val generate :
  ?name:string ->
  ?depth:int ->
  ?shallow_bits:int ->
  lib:Cells.Library.t ->
  unit ->
  Netlist.Circuit.t
(** [depth] (default 28) is the deep spine's gate depth; [shallow_bits]
    (default 4) sizes the shallow cone (2 logic levels over
    2·shallow_bits private inputs). *)

(* Deep spine + shallow satellite cone, structurally disjoint (not even
   shared primary inputs), so dominance analysis can prove the satellite
   skippable with any isolation radius. The spine alternates XOR2 (fresh
   input each level, keeping every level 2-ary and irredundant) with NAND2
   pairs feeding both spine outputs, so it levelizes to [depth] and carries
   all of RV_O's probability mass. *)

let generate ?(name = "lopsided") ?(depth = 28) ?(shallow_bits = 4) ~lib () =
  if depth < 4 then invalid_arg "Lopsided.generate: depth < 4";
  if shallow_bits < 2 then invalid_arg "Lopsided.generate: shallow_bits < 2";
  let bld =
    Netlist.Build.create ~lib ~name:(Printf.sprintf "%s_%d" name depth) ()
  in
  (* Deep block: a chain where level i xors in a fresh primary input, so no
     level collapses and the arrival grows linearly with depth. *)
  let seeds = Netlist.Build.inputs bld ~prefix:"dp" ~count:(depth + 1) in
  let spine = ref seeds.(0) in
  for i = 1 to depth - 1 do
    spine := Netlist.Build.xor2 bld !spine seeds.(i)
  done;
  let deep_a = Netlist.Build.xor2 bld !spine seeds.(depth) in
  let deep_b = Netlist.Build.nand bld [ !spine; seeds.(depth) ] in
  ignore (Netlist.Build.output bld deep_a);
  ignore (Netlist.Build.output bld deep_b);
  (* Shallow block: private inputs, two logic levels, one output. *)
  let sh = Netlist.Build.inputs bld ~prefix:"sh" ~count:(2 * shallow_bits) in
  let pairs =
    Array.init shallow_bits (fun i ->
        Netlist.Build.and_ bld [ sh.(2 * i); sh.((2 * i) + 1) ])
  in
  let shallow_out = Netlist.Build.or_ bld (Array.to_list pairs) in
  ignore (Netlist.Build.output bld shallow_out);
  Netlist.Build.finish bld

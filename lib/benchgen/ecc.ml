(* Single-error-correcting Hamming circuits — the functional family of
   ISCAS-85 c499/c1355 (32-bit SEC circuits; c1355 is c499 with its XORs
   expanded into NAND networks, which is exactly what [`Nand4] does here). *)

open Netlist

type xor_style = Native | Nand4

(* XOR in the requested style. The 4-NAND2 expansion quadruples gate count
   and doubles depth, mirroring the c499 -> c1355 re-mapping. *)
let make_xor bld style x y =
  match style with
  | Native -> Build.xor2 bld x y
  | Nand4 ->
      let n1 = Build.nand bld [ x; y ] in
      let n2 = Build.nand bld [ x; n1 ] in
      let n3 = Build.nand bld [ y; n1 ] in
      Build.nand bld [ n2; n3 ]

(* Balanced XOR reduction (log depth, like the parity trees in c499). *)
let rec xor_tree bld style = function
  | [] -> invalid_arg "Ecc.xor_tree: empty"
  | [ x ] -> x
  | nodes ->
      let rec pair = function
        | x :: y :: rest -> make_xor bld style x y :: pair rest
        | leftover -> leftover
      in
      xor_tree bld style (pair nodes)

let check_bit_count ~data_bits =
  let rec go r = if 1 lsl r >= data_bits + r + 1 then r else go (r + 1) in
  go 1

(* Positions 1..n in a Hamming code, with check bits at powers of two.
   [data_positions] lists the codeword positions of data bits in order. *)
let layout ~data_bits =
  let r = check_bit_count ~data_bits in
  let total = data_bits + r in
  let is_power_of_two p = p land (p - 1) = 0 in
  let data_positions =
    List.filter (fun p -> not (is_power_of_two p)) (List.init total (fun i -> i + 1))
  in
  (r, total, data_positions)

(* Corrector: inputs are the received codeword (data bits d0.. and check
   bits c0..), outputs the corrected data bits o0... A classic two-stage
   structure: parity trees form the syndrome, a decoder flips the flagged
   position. *)
let hamming_corrector ?(name = "sec") ?(style = Native) ~lib ~data_bits () =
  if data_bits < 2 then invalid_arg "Ecc.hamming_corrector: data_bits < 2";
  let r, _total, data_positions = layout ~data_bits in
  let style_tag = match style with Native -> "" | Nand4 -> "_nand" in
  let bld =
    Build.create ~lib ~name:(Printf.sprintf "%s%d%s" name data_bits style_tag) ()
  in
  let data = Build.inputs bld ~prefix:"d" ~count:data_bits in
  let check = Build.inputs bld ~prefix:"c" ~count:r in
  (* codeword position -> node *)
  let position_node = Hashtbl.create 97 in
  List.iteri (fun i p -> Hashtbl.add position_node p data.(i)) data_positions;
  Array.iteri (fun j c -> Hashtbl.add position_node (1 lsl j) c) check;
  (* syndrome bit j = parity of all positions with bit j set *)
  let syndrome =
    Array.init r (fun j ->
        (* Sort by codeword position: Hashtbl.fold order is unspecified, and
           the xor-tree shape (hence gate naming and load topology) must not
           depend on hash-bucket layout. Found by statsize flow (DET001). *)
        let members =
          Hashtbl.fold
            (fun p node acc ->
              if p land (1 lsl j) <> 0 then (p, node) :: acc else acc)
            position_node []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
          |> List.map snd
        in
        xor_tree bld style members)
  in
  (* flip data bit i when the syndrome equals its position *)
  List.iteri
    (fun i p ->
      let literals =
        Array.to_list
          (Array.mapi
             (fun j s ->
               if p land (1 lsl j) <> 0 then s else Build.not_ bld s)
             syndrome)
      in
      let flip = Build.and_ bld literals in
      let corrected = make_xor bld style data.(i) flip in
      ignore (Build.output ~name:(Printf.sprintf "o%d" i) bld corrected))
    data_positions;
  Build.finish bld

(* Encoder: data in, check bits out (parity trees only) — a pure XOR-tree
   workload for depth/variance studies. *)
let hamming_encoder ?(name = "enc") ?(style = Native) ~lib ~data_bits () =
  if data_bits < 2 then invalid_arg "Ecc.hamming_encoder: data_bits < 2";
  let r, _total, data_positions = layout ~data_bits in
  let style_tag = match style with Native -> "" | Nand4 -> "_nand" in
  let bld =
    Build.create ~lib ~name:(Printf.sprintf "%s%d%s" name data_bits style_tag) ()
  in
  let data = Build.inputs bld ~prefix:"d" ~count:data_bits in
  let by_position = List.combine data_positions (Array.to_list data) in
  Array.iteri
    (fun j _ ->
      let members =
        List.filter_map
          (fun (p, node) -> if p land (1 lsl j) <> 0 then Some node else None)
          by_position
      in
      ignore
        (Build.output ~name:(Printf.sprintf "c%d" j) bld (xor_tree bld style members)))
    (Array.make r ());
  Build.finish bld

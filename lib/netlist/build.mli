(** Construction DSL over a cell library: fresh-name management, balanced
    decomposition of wide AND/OR/NAND/NOR into trees and XOR into chains.
    Used by the benchmark generators and the [.bench] mapper. *)

type t

val create :
  ?drive_index:int -> ?output_load:float -> lib:Cells.Library.t -> name:string ->
  unit -> t
(** New builder; gates are instantiated at [drive_index] (default 0 =
    minimum size — sizing starts from the smallest cells). *)

val circuit : t -> Circuit.t
val library : t -> Cells.Library.t

val fresh : t -> string -> string
(** Fresh node name with the given prefix. *)

val input : t -> name:string -> Circuit.id
val inputs : t -> prefix:string -> count:int -> Circuit.id array

val gate : ?name:string -> t -> Cells.Fn.t -> Circuit.id array -> Circuit.id
(** One library gate; arity must match exactly. *)

val not_ : ?name:string -> t -> Circuit.id -> Circuit.id
val buf : ?name:string -> t -> Circuit.id -> Circuit.id

val and_ : ?name:string -> t -> Circuit.id list -> Circuit.id
(** AND of any width ≥ 1 (balanced tree above arity 4); [name] lands on the
    root gate. *)

val or_ : ?name:string -> t -> Circuit.id list -> Circuit.id
val nand : ?name:string -> t -> Circuit.id list -> Circuit.id
val nor : ?name:string -> t -> Circuit.id list -> Circuit.id

val xor2 : ?name:string -> t -> Circuit.id -> Circuit.id -> Circuit.id
val xnor2 : ?name:string -> t -> Circuit.id -> Circuit.id -> Circuit.id

val xor : ?name:string -> t -> Circuit.id list -> Circuit.id
(** Parity of any width ≥ 1 (balanced XOR2 tree). *)

val mux2 :
  ?name:string -> t -> sel:Circuit.id -> a:Circuit.id -> b:Circuit.id -> Circuit.id
(** [sel ? b : a]. *)

val aoi21 : ?name:string -> t -> Circuit.id -> Circuit.id -> Circuit.id -> Circuit.id
val oai21 : ?name:string -> t -> Circuit.id -> Circuit.id -> Circuit.id -> Circuit.id

val output : ?name:string -> t -> Circuit.id -> Circuit.id
(** Mark as primary output; with [name], a named buffer is inserted first. *)

val finish : ?validate:bool -> t -> Circuit.t
(** Validate and return the circuit; raises on any structural finding.
    [~validate:false] skips the check — the lint front end loads this way
    so warning-level findings are reported as diagnostics instead of
    aborting the load. *)

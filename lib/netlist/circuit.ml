(* Technology-mapped combinational circuits.

   A circuit is a DAG of primary inputs and library-cell instances. Nodes are
   dense integer ids; because a gate's fanins must exist before the gate is
   added, id order is a topological order — every traversal in the timing and
   sizing engines relies on this invariant.

   Gate sizes are mutable (that is the whole point of the library); structure
   is append-only. *)

type id = int

type kind =
  | Primary_input
  | Gate of { mutable cell : Cells.Cell.t; fanins : id array }

type node = {
  id : id;
  name : string;
  kind : kind;
  mutable fanouts : id list; (* gates reading this node's output, reversed *)
  mutable is_output : bool;
}

type t = {
  circuit_name : string;
  nodes : node Vec.t;
  by_name : (string, id) Hashtbl.t;
  mutable input_ids : id list; (* reversed during construction *)
  mutable output_ids : id list; (* reversed during construction *)
  mutable output_load : float; (* fF presented by each primary output *)
}

let dummy_node =
  { id = -1; name = "!dummy"; kind = Primary_input; fanouts = []; is_output = false }

let create ?(output_load = 4.0) ~name () =
  {
    circuit_name = name;
    nodes = Vec.create ~dummy:dummy_node;
    by_name = Hashtbl.create 997;
    input_ids = [];
    output_ids = [];
    output_load;
  }

let name t = t.circuit_name
let size t = Vec.length t.nodes
let output_load t = t.output_load
let set_output_load t load = t.output_load <- load

let node t id = Vec.get t.nodes id
let node_name t id = (node t id).name
let mem_name t name = Hashtbl.mem t.by_name name
let find t ~name = Hashtbl.find_opt t.by_name name

let find_exn t ~name =
  match find t ~name with
  | Some id -> id
  | None -> invalid_arg (Printf.sprintf "Circuit.find_exn: no node %S" name)

let register t name =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Circuit: duplicate node name %S" name)

let add_input t ~name =
  register t name;
  let id =
    Vec.push t.nodes
      { id = Vec.length t.nodes; name; kind = Primary_input; fanouts = [];
        is_output = false }
  in
  Hashtbl.add t.by_name name id;
  t.input_ids <- id :: t.input_ids;
  id

let add_gate t ~name ~cell ~fanins =
  register t name;
  let arity = Cells.Cell.arity cell in
  if Array.length fanins <> arity then
    invalid_arg
      (Printf.sprintf "Circuit.add_gate %S: cell %s expects %d fanins, got %d"
         name (Cells.Cell.name cell) arity (Array.length fanins));
  let here = Vec.length t.nodes in
  Array.iter
    (fun fi ->
      if fi < 0 || fi >= here then
        invalid_arg
          (Printf.sprintf "Circuit.add_gate %S: fanin %d not yet defined" name fi))
    fanins;
  let id =
    Vec.push t.nodes
      { id = here; name; kind = Gate { cell; fanins }; fanouts = [];
        is_output = false }
  in
  Hashtbl.add t.by_name name id;
  Array.iter
    (fun fi ->
      let src = Vec.get t.nodes fi in
      src.fanouts <- id :: src.fanouts)
    fanins;
  id

let mark_output t id =
  let n = node t id in
  if not n.is_output then begin
    n.is_output <- true;
    t.output_ids <- id :: t.output_ids
  end

let inputs t = List.rev t.input_ids
let outputs t = List.rev t.output_ids
let is_output t id = (node t id).is_output
let is_input t id = match (node t id).kind with Primary_input -> true | Gate _ -> false

let fanins t id =
  match (node t id).kind with Primary_input -> [||] | Gate g -> g.fanins

let fanouts t id = List.rev (node t id).fanouts

(* Allocation-free fanout iteration (arbitrary order) for hot paths. *)
let iter_fanouts t id ~f = List.iter f (node t id).fanouts

let cell t id =
  match (node t id).kind with
  | Primary_input -> None
  | Gate g -> Some g.cell

let cell_exn t id =
  match cell t id with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Circuit.cell_exn: node %S is a primary input"
           (node_name t id))

let set_cell t id cell =
  match (node t id).kind with
  | Primary_input ->
      invalid_arg "Circuit.set_cell: cannot size a primary input"
  | Gate g ->
      if not (Cells.Fn.equal (Cells.Cell.fn g.cell) (Cells.Cell.fn cell)) then
        invalid_arg
          (Printf.sprintf "Circuit.set_cell: %s -> %s changes logic function"
             (Cells.Cell.name g.cell) (Cells.Cell.name cell));
      g.cell <- cell

(* Capacitive load on a node's output: fanin-pin caps of all readers plus the
   fixed external load when the node drives a primary output. *)
let load t id =
  let n = node t id in
  let fanout_cap =
    List.fold_left
      (fun acc reader ->
        match (node t reader).kind with
        | Primary_input -> acc
        | Gate g -> acc +. Cells.Cell.input_cap g.cell)
      0.0 n.fanouts
  in
  if n.is_output then fanout_cap +. t.output_load else fanout_cap

let iter_nodes t ~f = Vec.iter t.nodes ~f:(fun n -> f n.id)

(* Ids ascend in topological order by construction. *)
let topological t = List.init (size t) Fun.id

let gates t =
  List.filter (fun id -> not (is_input t id)) (topological t)

let gate_count t =
  Vec.fold t.nodes ~init:0 ~f:(fun acc n ->
      match n.kind with Primary_input -> acc | Gate _ -> acc + 1)

let total_area t =
  Vec.fold t.nodes ~init:0.0 ~f:(fun acc n ->
      match n.kind with
      | Primary_input -> acc
      | Gate g -> acc +. Cells.Cell.area g.cell)

(* Structural sanity: names resolve, fanin arities match, every non-output
   node with no fanout is flagged, outputs non-empty. Typed diagnostics;
   the empty list means the circuit is well-formed. The CIRC010 corruption
   checks guard internal invariants the public API cannot break. *)
let validate_diag t =
  let problems = ref [] in
  let add d = problems := d :: !problems in
  if t.output_ids = [] then
    add
      (Diag.errorf ~code:"CIRC008" ~loc:Diag.Circuit
         ~hint:"mark at least one node with mark_output"
         "circuit %S has no primary outputs" t.circuit_name);
  if t.input_ids = [] then
    add
      (Diag.errorf ~code:"CIRC009" ~loc:Diag.Circuit
         "circuit %S has no primary inputs" t.circuit_name);
  Vec.iter t.nodes ~f:(fun n ->
      (match Hashtbl.find_opt t.by_name n.name with
      | Some id when id = n.id -> ()
      | _ ->
          add
            (Diag.errorf ~code:"CIRC010" ~loc:(Diag.Net n.name)
               "node %S not registered under its own name (corrupt node table)"
               n.name));
      match n.kind with
      | Primary_input -> ()
      | Gate g ->
          if Array.length g.fanins <> Cells.Cell.arity g.cell then
            add
              (Diag.errorf ~code:"CIRC010" ~loc:(Diag.Gate n.name)
                 "gate %S has %d fanins but cell %s expects %d" n.name
                 (Array.length g.fanins)
                 (Cells.Cell.name g.cell)
                 (Cells.Cell.arity g.cell));
          Array.iter
            (fun fi ->
              if fi >= n.id then
                add
                  (Diag.errorf ~code:"CIRC001" ~loc:(Diag.Gate n.name)
                     "gate %S has non-topological fanin %d (combinational \
                      cycle or corrupt ids)"
                     n.name fi))
            g.fanins;
          if n.fanouts = [] && not n.is_output then
            add
              (Diag.warningf ~code:"CIRC004" ~loc:(Diag.Gate n.name)
                 ~hint:"mark it as an output or remove it"
                 "gate %S is dangling (no fanout, not an output)" n.name));
  List.rev !problems

(* Deprecated string rendering of {!validate_diag}, kept for one release. *)
let validate t = List.map Diag.to_string (validate_diag t)

(* Structural deep copy (fresh mutable cells) — lets one prepared baseline
   feed several independent optimization runs. *)
let copy ?name:new_name t =
  let dst =
    create ~output_load:t.output_load
      ~name:(match new_name with Some n -> n | None -> t.circuit_name)
      ()
  in
  Vec.iter t.nodes ~f:(fun n ->
      let id =
        match n.kind with
        | Primary_input -> add_input dst ~name:n.name
        | Gate g ->
            add_gate dst ~name:n.name ~cell:g.cell ~fanins:(Array.copy g.fanins)
      in
      assert (id = n.id));
  List.iter (fun o -> mark_output dst o) (List.rev t.output_ids);
  dst

let pp ppf t =
  Fmt.pf ppf "circuit %s: %d inputs, %d outputs, %d gates, area %.1f"
    t.circuit_name (List.length t.input_ids) (List.length t.output_ids)
    (gate_count t) (total_area t)

(* Construction DSL over a cell library. Generators and the .bench mapper
   use this to assemble circuits without touching cell objects directly:
   n-ary operations wider than the library's gates are decomposed into
   balanced trees, XORs into chains, and fresh names are managed here. *)

type t = {
  circuit : Circuit.t;
  lib : Cells.Library.t;
  drive_index : int; (* drive strength assigned to created gates *)
  mutable counter : int;
}

let create ?(drive_index = 0) ?output_load ~lib ~name () =
  { circuit = Circuit.create ?output_load ~name (); lib; drive_index; counter = 0 }

let circuit t = t.circuit
let library t = t.lib

let fresh t prefix =
  let rec next () =
    let name = Printf.sprintf "%s_%d" prefix t.counter in
    t.counter <- t.counter + 1;
    if Circuit.mem_name t.circuit name then next () else name
  in
  next ()

let input t ~name = Circuit.add_input t.circuit ~name

let inputs t ~prefix ~count =
  Array.init count (fun i ->
      Circuit.add_input t.circuit ~name:(Printf.sprintf "%s%d" prefix i))

let cell_for t fn = Cells.Library.cell_exn t.lib ~fn ~drive_index:t.drive_index

let gate ?name t fn fanins =
  let name = match name with Some n -> n | None -> fresh t (Cells.Fn.name fn) in
  Circuit.add_gate t.circuit ~name ~cell:(cell_for t fn) ~fanins

let not_ ?name t a = gate ?name t Cells.Fn.Inv [| a |]
let buf ?name t a = gate ?name t Cells.Fn.Buf [| a |]

(* Widest native arity the builder's library offers for a gate family —
   decomposition adapts to whatever the library actually has. *)
let native_cap t ~cap_fn =
  let lib = t.lib in
  if Cells.Library.mem_fn lib (cap_fn 4) then 4
  else if Cells.Library.mem_fn lib (cap_fn 3) then 3
  else if Cells.Library.mem_fn lib (cap_fn 2) then 2
  else
    invalid_arg
      (Printf.sprintf "Build: library %s lacks %s entirely"
         (Cells.Library.name lib)
         (Cells.Fn.name (cap_fn 2)))

let rec take n = function
  | rest when n = 0 -> ([], rest)
  | [] -> ([], [])
  | x :: rest ->
      let group, leftover = take (n - 1) rest in
      (x :: group, leftover)

(* One balanced reduction level: groups of up to [cap] operands collapse
   into gates; a lone leftover passes through to the next level. *)
let reduce_one_level t ~cap ~cap_fn operands =
  let rec go acc = function
    | [] -> List.rev acc
    | [ x ] -> List.rev (x :: acc)
    | rest ->
        let group, leftover = take (Stdlib.min cap (List.length rest)) rest in
        let g = gate t (cap_fn (List.length group)) (Array.of_list group) in
        go (g :: acc) leftover
  in
  go [] operands

(* The requested name must land on the ROOT gate of a decomposed tree (the
   .bench mapper relies on it), so reduction stops once the operands fit a
   single native gate, built explicitly with the name. *)
let rec nary ?name t ~cap_fn operands =
  let cap = native_cap t ~cap_fn in
  match operands with
  | [] -> invalid_arg "Build.nary: empty operand list"
  | [ x ] -> buf ?name t x
  | ops when List.length ops <= cap ->
      gate ?name t (cap_fn (List.length ops)) (Array.of_list ops)
  | ops -> nary ?name t ~cap_fn (reduce_one_level t ~cap ~cap_fn ops)

let and_ ?name t ops = nary ?name t ~cap_fn:(fun n -> Cells.Fn.And n) ops
let or_ ?name t ops = nary ?name t ~cap_fn:(fun n -> Cells.Fn.Or n) ops

(* NAND/NOR of arbitrary width: the native gate when the library fits it,
   otherwise an inverted AND/OR tree. *)
let nand ?name t ops =
  let n = List.length ops in
  if n >= 2 && n <= 4 && Cells.Library.mem_fn t.lib (Cells.Fn.Nand n) then
    gate ?name t (Cells.Fn.Nand n) (Array.of_list ops)
  else not_ ?name t (and_ t ops)

let nor ?name t ops =
  let n = List.length ops in
  if n >= 2 && n <= 4 && Cells.Library.mem_fn t.lib (Cells.Fn.Nor n) then
    gate ?name t (Cells.Fn.Nor n) (Array.of_list ops)
  else not_ ?name t (or_ t ops)

let xor2 ?name t a b = gate ?name t Cells.Fn.Xor2 [| a; b |]
let xnor2 ?name t a b = gate ?name t Cells.Fn.Xnor2 [| a; b |]

let rec xor ?name t = function
  | [] -> invalid_arg "Build.xor: empty operand list"
  | [ x ] -> buf ?name t x
  | [ a; b ] -> xor2 ?name t a b
  | [ a; b; c ] -> xor2 ?name t (xor2 t a b) c
  | ops ->
      (* pair up one level, recurse; the root XOR2 carries the name *)
      let rec pair = function
        | a :: b :: rest -> xor2 t a b :: pair rest
        | leftover -> leftover
      in
      xor ?name t (pair ops)

let mux2 ?name t ~sel ~a ~b = gate ?name t Cells.Fn.Mux2 [| a; b; sel |]
let aoi21 ?name t a b c = gate ?name t Cells.Fn.Aoi21 [| a; b; c |]
let oai21 ?name t a b c = gate ?name t Cells.Fn.Oai21 [| a; b; c |]

let output ?name t id =
  let id = match name with None -> id | Some n -> buf ~name:n t id in
  Circuit.mark_output t.circuit id;
  id

let finish ?(validate = true) t =
  if not validate then t.circuit
  else
    match Circuit.validate_diag t.circuit with
  | [] -> t.circuit
  | problems ->
      invalid_arg
        (Printf.sprintf "Build.finish: invalid circuit %s: %s"
           (Circuit.name t.circuit)
           (String.concat "; " (List.map Diag.to_string problems)))

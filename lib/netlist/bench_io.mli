(** ISCAS-85 [.bench] reader/writer. Reading technology-maps primitives onto
    minimum-size library cells (wide gates become balanced trees); writing
    emits a superset dialect this reader accepts back. *)

exception Parse_error of { line : int; code : string; message : string }
(** [code] is the stable diagnostic code (BENCH001 syntax, BENCH002
    unsupported gate, CIRC001 cycle, CIRC002 multiply-driven, CIRC003
    undefined reference). *)

val of_string :
  ?name:string -> ?validate:bool -> lib:Cells.Library.t -> string -> Circuit.t
(** Parse and map; raises {!Parse_error} on malformed text, undefined
    references, or combinational cycles (fail-fast — first problem wins).
    [~validate:false] skips the final structural check so circuits with
    warning-level issues (e.g. dangling gates) still load — the lint front
    end reports those as diagnostics instead. *)

val load :
  ?name:string ->
  ?validate:bool ->
  lib:Cells.Library.t ->
  path:string ->
  unit ->
  Circuit.t

val lint : ?file:string -> string -> Diag.t list
(** Permissive diagnostic pass: parse line by line (malformed lines become
    diagnostics and are skipped), then report undefined references,
    unsupported operators, multiply-driven nets and combinational cycles over
    the surviving definition graph — every problem in the file at once, with
    [file:line] locations. Empty iff {!of_string} would succeed. *)

val lint_file : path:string -> Diag.t list

val to_string : Circuit.t -> string
val save : Circuit.t -> path:string -> unit

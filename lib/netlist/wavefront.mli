(** Allocation-free change-wavefront queue: a min-heap of node ids with a
    dedup bitmap. Ascending id order is topological order by the circuit
    construction invariant, so draining a wavefront visits every touched
    node after all of its touched fanins. Shared by the incremental
    electrical sweep, FASSTA trial scoring, and FULLSSTA re-propagation. *)

type t

val create : int -> t
(** [create n] sizes the dedup bitmap for node ids [0 .. n-1]. *)

val capacity : t -> int
(** The [n] the queue was created for. *)

val push : t -> int -> unit
(** Enqueue an id; already-queued ids are ignored (the bitmap dedups). *)

val pop : t -> int
(** Smallest queued id, or [-1] when empty. *)

val mem : t -> int -> bool
val is_empty : t -> bool

val clear : t -> unit
(** Drop all queued ids (leaves the bitmap clean). *)

(* Mutable min-heap of node ids with a dedup bitmap.

   The incremental engines (electrical sweeps, FASSTA trial scoring, FULLSSTA
   re-propagation) all process change wavefronts in ascending id order —
   which, by the circuit construction invariant, is topological order — and
   they run thousands of times per sizing iteration, so pushes and pops must
   not allocate. Grown out of Core.Window's private heap and shared here so
   every layer drains changes the same way. *)

type t = {
  mutable heap : int array;
  mutable heap_len : int;
  queued : bool array; (* sized to the circuit *)
}

let create n = { heap = Array.make 64 0; heap_len = 0; queued = Array.make n false }

let capacity t = Array.length t.queued
let is_empty t = t.heap_len = 0

let mem t id = t.queued.(id)

let push t id =
  if not t.queued.(id) then begin
    t.queued.(id) <- true;
    if t.heap_len = Array.length t.heap then begin
      let grown = Array.make (2 * t.heap_len) 0 in
      Array.blit t.heap 0 grown 0 t.heap_len;
      t.heap <- grown
    end;
    t.heap.(t.heap_len) <- id;
    t.heap_len <- t.heap_len + 1;
    let i = ref (t.heap_len - 1) in
    while !i > 0 && t.heap.((!i - 1) / 2) > t.heap.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = t.heap.(p) in
      t.heap.(p) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := p
    done
  end

let pop t =
  if t.heap_len = 0 then -1
  else begin
    let top = t.heap.(0) in
    t.heap_len <- t.heap_len - 1;
    t.heap.(0) <- t.heap.(t.heap_len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.heap_len && t.heap.(l) < t.heap.(!smallest) then smallest := l;
      if r < t.heap_len && t.heap.(r) < t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!i) in
        t.heap.(!i) <- t.heap.(!smallest);
        t.heap.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    t.queued.(top) <- false;
    top
  end

let clear t =
  while t.heap_len > 0 do
    t.heap_len <- t.heap_len - 1;
    t.queued.(t.heap.(t.heap_len)) <- false
  done

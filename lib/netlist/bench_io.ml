(* ISCAS-85 [.bench] reader and writer.

   Reading performs the technology-mapping step the paper delegates to Design
   Compiler: bench primitives become minimum-size library cells, and gates
   wider than the library's arity cap are decomposed into balanced trees.
   Definitions may appear in any order; we instantiate in dependency order.

   Writing emits a superset dialect: every cell function prints under its
   library name (AOI21/OAI21/MUX2 included), which this reader accepts back,
   so write/read round-trips preserve structure. *)

exception Parse_error of { line : int; code : string; message : string }

let fail ?(code = "BENCH001") line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; code; message })) fmt

type def = { op : string; args : string list; line : int }

type parsed = {
  inputs : (string * int) list; (* name, line *)
  outputs : (string * int) list;
  defs : (string, def) Hashtbl.t;
  def_order : string list;
}

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') s

let parse_line ~line ~acc text =
  let text = String.trim text in
  if text = "" || text.[0] = '#' then acc
  else
    let lparen =
      match String.index_opt text '(' with
      | Some i -> i
      | None -> fail line "expected '(' in %S" text
    in
    let rparen =
      match String.rindex_opt text ')' with
      | Some i when i > lparen -> i
      | _ -> fail line "expected ')' in %S" text
    in
    let args_text = String.sub text (lparen + 1) (rparen - lparen - 1) in
    let args =
      String.split_on_char ',' args_text
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    match String.index_opt text '=' with
    | None -> (
        let keyword = String.trim (String.sub text 0 lparen) in
        match (String.uppercase_ascii keyword, args) with
        | "INPUT", [ name ] -> { acc with inputs = (name, line) :: acc.inputs }
        | "OUTPUT", [ name ] -> { acc with outputs = (name, line) :: acc.outputs }
        | _ -> fail line "expected INPUT(x) or OUTPUT(x), got %S" text)
    | Some eq ->
        let name = String.trim (String.sub text 0 eq) in
        let op =
          String.uppercase_ascii (String.trim (String.sub text (eq + 1) (lparen - eq - 1)))
        in
        if name = "" then fail line "missing gate name in %S" text;
        if args = [] then fail line "gate %S has no operands" name;
        if Hashtbl.mem acc.defs name then
          fail ~code:"CIRC002" line "duplicate definition of %S (multiply-driven net)"
            name;
        Hashtbl.add acc.defs name { op; args; line };
        { acc with def_order = name :: acc.def_order }

let parse_text text =
  let acc =
    { inputs = []; outputs = []; defs = Hashtbl.create 997; def_order = [] }
  in
  let lines = String.split_on_char '\n' text in
  let acc, _ =
    List.fold_left
      (fun (acc, n) l ->
        ((if is_blank l then acc else parse_line ~line:n ~acc l), n + 1))
      (acc, 1) lines
  in
  {
    acc with
    inputs = List.rev acc.inputs;
    outputs = List.rev acc.outputs;
    def_order = List.rev acc.def_order;
  }

let instantiate_gate builder ~name def ids =
  let module F = Cells.Fn in
  match (def.op, List.length ids) with
  | ("NOT" | "INV"), 1 -> Build.not_ ~name builder (List.hd ids)
  | ("BUF" | "BUFF"), 1 -> Build.buf ~name builder (List.hd ids)
  | ("AND" | "AND2" | "AND3" | "AND4"), n when n >= 2 -> Build.and_ ~name builder ids
  | ("OR" | "OR2" | "OR3" | "OR4"), n when n >= 2 -> Build.or_ ~name builder ids
  | ("NAND" | "NAND2" | "NAND3" | "NAND4"), n when n >= 2 -> Build.nand ~name builder ids
  | ("NOR" | "NOR2" | "NOR3" | "NOR4"), n when n >= 2 -> Build.nor ~name builder ids
  | ("XOR" | "XOR2"), n when n >= 2 -> Build.xor ~name builder ids
  | ("XNOR" | "XNOR2"), 2 ->
      (match ids with
      | [ a; b ] -> Build.xnor2 ~name builder a b
      | _ -> assert false)
  | ("XNOR" | "XNOR2"), n when n > 2 -> Build.not_ ~name builder (Build.xor builder ids)
  | "AOI21", 3 ->
      (match ids with [ a; b; c ] -> Build.aoi21 ~name builder a b c | _ -> assert false)
  | "OAI21", 3 ->
      (match ids with [ a; b; c ] -> Build.oai21 ~name builder a b c | _ -> assert false)
  | "MUX2", 3 ->
      (match ids with
      | [ a; b; s ] -> Build.mux2 ~name builder ~sel:s ~a ~b
      | _ -> assert false)
  | op, n -> fail ~code:"BENCH002" def.line "unsupported gate %s/%d for %S" op n name

let map_to_circuit ?(name = "bench") ?(validate = true) ~lib parsed =
  let builder = Build.create ~lib ~name () in
  List.iter
    (fun (input_name, line) ->
      if Hashtbl.mem parsed.defs input_name then
        fail ~code:"CIRC002" line "node %S is both INPUT and a gate (multiply-driven)"
          input_name;
      ignore (Build.input builder ~name:input_name))
    parsed.inputs;
  let circuit = Build.circuit builder in
  (* Dependency-ordered instantiation (definitions may be out of order). *)
  let visiting = Hashtbl.create 97 in
  let rec resolve ref_name ~line =
    match Circuit.find circuit ~name:ref_name with
    | Some id -> id
    | None -> (
        match Hashtbl.find_opt parsed.defs ref_name with
        | None -> fail ~code:"CIRC003" line "reference to undefined signal %S" ref_name
        | Some def ->
            if Hashtbl.mem visiting ref_name then
              fail ~code:"CIRC001" def.line "combinational cycle through %S" ref_name;
            Hashtbl.add visiting ref_name ();
            let ids = List.map (fun a -> resolve a ~line:def.line) def.args in
            Hashtbl.remove visiting ref_name;
            instantiate_gate builder ~name:ref_name def ids)
  in
  List.iter (fun n -> ignore (resolve n ~line:0)) parsed.def_order;
  List.iter
    (fun (out_name, line) ->
      Circuit.mark_output circuit (resolve out_name ~line))
    parsed.outputs;
  Build.finish ~validate builder

let of_string ?name ?validate ~lib text =
  map_to_circuit ?name ?validate ~lib (parse_text text)

(* ---- permissive diagnostic pass ----------------------------------------

   [of_string] is fail-fast: the first problem raises. The lint front end
   wants every problem in the file at once, with file:line positions, so
   this second pass parses line by line (bad lines become diagnostics and
   are skipped) and then checks references, operators and cycles over the
   surviving definition graph without instantiating any gates. *)

(* `Ok | `Unknown op | `Bad_arity mirror exactly what [instantiate_gate]
   would accept. *)
let op_support op ~arity =
  match op with
  | "NOT" | "INV" | "BUF" | "BUFF" -> if arity = 1 then `Ok else `Bad_arity
  | "AND" | "AND2" | "AND3" | "AND4"
  | "OR" | "OR2" | "OR3" | "OR4"
  | "NAND" | "NAND2" | "NAND3" | "NAND4"
  | "NOR" | "NOR2" | "NOR3" | "NOR4"
  | "XOR" | "XOR2" | "XNOR" | "XNOR2" ->
      if arity >= 2 then `Ok else `Bad_arity
  | "AOI21" | "OAI21" | "MUX2" -> if arity = 3 then `Ok else `Bad_arity
  | _ -> `Unknown

let lint ?(file = "<bench>") text =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let loc line = Diag.File { file; line } in
  let acc =
    ref { inputs = []; outputs = []; defs = Hashtbl.create 997; def_order = [] }
  in
  List.iteri
    (fun i l ->
      let line = i + 1 in
      if not (is_blank l) then
        match parse_line ~line ~acc:!acc l with
        | acc' -> acc := acc'
        | exception Parse_error { line; code; message } ->
            add (Diag.make ~code ~severity:Diag.Severity.Error ~loc:(loc line) message))
    (String.split_on_char '\n' text);
  let parsed =
    {
      !acc with
      inputs = List.rev !acc.inputs;
      outputs = List.rev !acc.outputs;
      def_order = List.rev !acc.def_order;
    }
  in
  let defined name =
    List.mem_assoc name parsed.inputs || Hashtbl.mem parsed.defs name
  in
  List.iter
    (fun (input_name, line) ->
      if Hashtbl.mem parsed.defs input_name then
        add
          (Diag.errorf ~code:"CIRC002" ~loc:(loc line)
             "node %S is both INPUT and a gate (multiply-driven)" input_name))
    parsed.inputs;
  List.iter
    (fun name ->
      match Hashtbl.find_opt parsed.defs name with
      | None -> ()
      | Some def ->
          (match op_support def.op ~arity:(List.length def.args) with
          | `Ok -> ()
          | `Unknown ->
              add
                (Diag.errorf ~code:"BENCH002" ~loc:(loc def.line)
                   "unsupported gate %s for %S" def.op name)
          | `Bad_arity ->
              add
                (Diag.errorf ~code:"BENCH002" ~loc:(loc def.line)
                   "unsupported gate %s/%d for %S" def.op
                   (List.length def.args) name));
          List.iter
            (fun a ->
              if not (defined a) then
                add
                  (Diag.errorf ~code:"CIRC003" ~loc:(loc def.line)
                     "reference to undefined signal %S" a))
            def.args)
    parsed.def_order;
  List.iter
    (fun (out_name, line) ->
      if not (defined out_name) then
        add
          (Diag.errorf ~code:"CIRC003" ~loc:(loc line)
             "OUTPUT references undefined signal %S" out_name))
    parsed.outputs;
  (* Cycle detection over the definition graph (no instantiation): a grey
     node reached again is a back edge — one diagnostic per back edge. *)
  let color = Hashtbl.create 97 in
  let rec dfs name =
    match Hashtbl.find_opt color name with
    | Some _ -> ()
    | None -> (
        match Hashtbl.find_opt parsed.defs name with
        | None -> ()
        | Some def ->
            Hashtbl.replace color name `Grey;
            List.iter
              (fun a ->
                if Hashtbl.find_opt color a = Some `Grey then
                  add
                    (Diag.errorf ~code:"CIRC001" ~loc:(loc def.line)
                       "combinational cycle through %S" a)
                else dfs a)
              def.args;
            Hashtbl.replace color name `Black)
  in
  List.iter dfs parsed.def_order;
  Diag.sort !diags

let lint_file ~path =
  let text = In_channel.with_open_text path In_channel.input_all in
  lint ~file:path text

let load ?name ?validate ~lib ~path () =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ?name ?validate ~lib (In_channel.input_all ic))

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s — emitted by statsize\n" (Circuit.name t));
  List.iter
    (fun id ->
      Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Circuit.node_name t id)))
    (Circuit.inputs t);
  List.iter
    (fun id ->
      Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (Circuit.node_name t id)))
    (Circuit.outputs t);
  List.iter
    (fun id ->
      match Circuit.cell t id with
      | None -> ()
      | Some cell ->
          let args =
            Circuit.fanins t id |> Array.to_list
            |> List.map (Circuit.node_name t)
            |> String.concat ", "
          in
          Buffer.add_string buf
            (Printf.sprintf "%s = %s(%s)\n" (Circuit.node_name t id)
               (Cells.Fn.name (Cells.Cell.fn cell))
               args))
    (Circuit.topological t);
  Buffer.contents buf

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

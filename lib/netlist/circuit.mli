(** Technology-mapped combinational circuits: a DAG of primary inputs and
    library-cell instances with dense integer ids.

    Invariant: a gate's fanins are created before the gate, so ascending id
    order is a topological order. Gate {e sizes} are mutable; structure is
    append-only. *)

type id = int

type t

val create : ?output_load:float -> name:string -> unit -> t
(** Fresh empty circuit. [output_load] (default 4.0 fF) is the fixed
    capacitance each primary output drives. *)

val name : t -> string
val size : t -> int
(** Total node count (inputs + gates). *)

val output_load : t -> float
val set_output_load : t -> float -> unit

val add_input : t -> name:string -> id
val add_gate : t -> name:string -> cell:Cells.Cell.t -> fanins:id array -> id
(** Raises [Invalid_argument] on duplicate names, arity mismatch, or fanins
    that do not exist yet. *)

val mark_output : t -> id -> unit
(** Flag a node as a primary output (idempotent). *)

val inputs : t -> id list
val outputs : t -> id list
val is_input : t -> id -> bool
val is_output : t -> id -> bool

val node_name : t -> id -> string
val mem_name : t -> string -> bool
val find : t -> name:string -> id option
val find_exn : t -> name:string -> id

val fanins : t -> id -> id array
(** Empty for primary inputs. Do not mutate. *)

val fanouts : t -> id -> id list
(** Gates reading this node, in insertion order. *)

val iter_fanouts : t -> id -> f:(id -> unit) -> unit
(** Allocation-free fanout iteration (unspecified order). *)

val cell : t -> id -> Cells.Cell.t option
val cell_exn : t -> id -> Cells.Cell.t

val set_cell : t -> id -> Cells.Cell.t -> unit
(** Resize a gate. Raises if the new cell computes a different function or
    the node is a primary input. *)

val load : t -> id -> float
(** Capacitive load on the node's output: reader pin caps plus the external
    output load when the node is a primary output. *)

val topological : t -> id list
(** All ids in topological order. *)

val gates : t -> id list
(** Gate ids (no primary inputs), topologically ordered. *)

val iter_nodes : t -> f:(id -> unit) -> unit
val gate_count : t -> int
val total_area : t -> float

val copy : ?name:string -> t -> t
(** Structural deep copy with fresh mutable cell assignments (ids are
    preserved). *)

val validate_diag : t -> Diag.t list
(** Structural problems as typed diagnostics (codes CIRC001/004/008/009/010),
    empty when well-formed. Dangling gates are [Warning]; everything else is
    [Error]. *)

val validate : t -> string list
(** Deprecated: string rendering of {!validate_diag}, kept for one release.
    Empty when well-formed. *)

val pp : t Fmt.t

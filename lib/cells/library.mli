(** Standard-cell libraries and the generated 90nm-like default (every
    function at eight drive strengths with LUT delay/slew models). *)

type t

val name : t -> string

val tau : t -> float
(** Technology time constant (ps) the LUTs were seeded from. *)

val strengths : t -> float array
(** The drive-strength ladder, ascending. *)

val functions : t -> Fn.t list
val cell_count : t -> int

val iter_cells : t -> f:(Cell.t -> unit) -> unit
(** Every cell, grouped by function, ascending drive within a group. *)

val cells : t -> Cell.t list

val sizes_of_fn : t -> Fn.t -> Cell.t array
(** All drive variants of a function, ascending by strength; raises
    [Invalid_argument] when the function is not in the library. *)

val mem_fn : t -> Fn.t -> bool
val find : t -> name:string -> Cell.t option
val cell_exn : t -> fn:Fn.t -> drive_index:int -> Cell.t
val min_cell : t -> fn:Fn.t -> Cell.t
val max_cell : t -> fn:Fn.t -> Cell.t
val next_up : t -> Cell.t -> Cell.t option
val next_down : t -> Cell.t -> Cell.t option

val of_cells : name:string -> tau:float -> strengths:float array -> Cell.t list -> t
(** Assemble a library from explicit cells (used by the liberty reader);
    raises on duplicate cell names. *)

val generate :
  ?name:string ->
  ?tau:float ->
  ?strengths:float array ->
  ?slew_axis:float array ->
  ?load_axis:float array ->
  ?shapes:Fn.t list ->
  unit ->
  t
(** Procedurally generate a library (see module doc). *)

val default : t lazy_t
(** The library every experiment uses unless told otherwise. *)

val default_strengths : float array
val default_slew_axis : float array
val default_load_axis : float array

val pp : t Fmt.t

(* A sized standard cell: one logic function at one drive strength, with
   NLDM-style lookup tables for delay and output slew.

   Units: time in ps, capacitance in fF, area in µm². *)

type t = {
  name : string; (* e.g. "NAND2_X4" *)
  fn : Fn.t;
  drive_index : int; (* position in the library's strength ladder *)
  strength : float; (* relative drive strength (1.0 = minimum size) *)
  area : float;
  input_cap : float; (* per input pin *)
  delay : Numerics.Lut.t; (* rows: input slew, cols: load cap -> delay *)
  output_slew : Numerics.Lut.t; (* same axes -> output transition *)
}

let name t = t.name
let fn t = t.fn
let arity t = Fn.arity t.fn
let drive_index t = t.drive_index
let strength t = t.strength
let area t = t.area
let input_cap t = t.input_cap

(* statobs: every timing-model lookup funnels through these wrappers, so
   the three counters together are the total LUT traffic of a run. Fused
   (delay, slew) lookups bump only [lut.fused_queries] — the drop in the
   two scalar counters is the observable signal that a caller migrated to
   the fused kernel (ISSUE 9 satellite: the query2 migration audit). *)
let c_delay_queries = Obs.Counters.make "lut.delay_queries"
let c_slew_queries = Obs.Counters.make "lut.slew_queries"
let c_fused_queries = Obs.Counters.make "lut.fused_queries"

let delay t ~slew ~load =
  Obs.Counters.bump c_delay_queries;
  Numerics.Lut.query t.delay ~row:slew ~col:load

let slew t ~slew ~load =
  Obs.Counters.bump c_slew_queries;
  Numerics.Lut.query t.output_slew ~row:slew ~col:load

let query2 t ~slew ~load =
  Obs.Counters.bump c_fused_queries;
  Numerics.Lut.query2 t.delay t.output_slew ~row:slew ~col:load

let equal a b = String.equal a.name b.name

let pp ppf t =
  Fmt.pf ppf "%s(area=%.2f, cin=%.2f)" t.name t.area t.input_cap

(** Generation-stamped memo cache for exact-repeat (cell, slew, load) arc
    evaluations — a pure-function cache over the fused {!Cell.query2}, so
    it is bit-transparent: results with the memo on are identical to
    results with it off, in every regime.

    Direct-mapped over parallel flat arrays; slots are verified by physical
    equality on the stored cell and exact float equality on the operating
    point, and evicted by overwrite, so behaviour (and the statobs
    [cells.memo.hits]/[cells.memo.misses] counters) is deterministic.
    Single-owner scratch: one instance per timing engine, never shared
    across domains. *)

type t

val create : ?bits:int -> unit -> t
(** A cache with [2^bits] slots (default [15] → 32768 slots ≈ 1.3 MB).
    Raises outside [4..24]. *)

val reset : t -> unit
(** O(1) whole-cache invalidation (generation bump). The cached function is
    pure, so this is only needed when cell records themselves could be
    recycled (e.g. library swap) — not between sizing iterations. *)

val cell_hash : Cell.t -> int
(** Deterministic hash of the cell identity; hoist one call per node, then
    probe once per fanin with it. *)

val query2 : t -> Cell.t -> hash:int -> slew:float -> load:float -> float * float
(** [(delay, output slew)] at the operating point — from cache on an
    exact repeat, else computed through {!Cell.query2} and installed.
    [hash] must be [cell_hash] of the same cell. *)

val hits : unit -> int
val misses : unit -> int

(* Standard-cell libraries and the procedurally generated 90nm-like default.

   The paper sizes gates against "an industrial 90nm lookup-table based
   standard cell library with 6-8 sizes per gate type". We generate an
   equivalent-interface library: every function in {!Fn.all_shapes} at eight
   drive strengths, each with bilinear delay/slew LUTs exhibiting the usual
   nonlinear dependence on load and input slew. The sizing engines consume
   only the LUTs, input caps and areas, exactly as they would a real library. *)

type t = {
  name : string;
  tau : float; (* technology time constant, ps *)
  strengths : float array; (* drive-strength ladder, ascending *)
  groups : (Fn.t * Cell.t array) list; (* cells per function, by drive *)
  by_name : (string, Cell.t) Hashtbl.t;
}

let name t = t.name
let tau t = t.tau
let strengths t = Array.copy t.strengths
let functions t = List.map fst t.groups

let cell_count t =
  List.fold_left (fun acc (_, cs) -> acc + Array.length cs) 0 t.groups

let iter_cells t ~f = List.iter (fun (_, cs) -> Array.iter f cs) t.groups

let cells t =
  List.concat_map (fun (_, cs) -> Array.to_list cs) t.groups

let sizes_of_fn t fn =
  match List.assoc_opt fn t.groups with
  | Some cells -> cells
  | None ->
      invalid_arg
        (Printf.sprintf "Library.sizes_of_fn: %s not in library %s" (Fn.name fn)
           t.name)

let mem_fn t fn = List.mem_assoc fn t.groups

let find t ~name = Hashtbl.find_opt t.by_name name

let cell_exn t ~fn ~drive_index =
  let cells = sizes_of_fn t fn in
  if drive_index < 0 || drive_index >= Array.length cells then
    invalid_arg
      (Printf.sprintf "Library.cell_exn: drive %d out of range for %s"
         drive_index (Fn.name fn));
  cells.(drive_index)

let min_cell t ~fn = (sizes_of_fn t fn).(0)

let max_cell t ~fn =
  let cells = sizes_of_fn t fn in
  cells.(Array.length cells - 1)

let next_up t cell =
  let cells = sizes_of_fn t (Cell.fn cell) in
  let i = Cell.drive_index cell in
  if i + 1 < Array.length cells then Some cells.(i + 1) else None

let next_down t cell =
  let cells = sizes_of_fn t (Cell.fn cell) in
  let i = Cell.drive_index cell in
  if i > 0 then Some cells.(i - 1) else None

let of_cells ~name ~tau ~strengths cells =
  let by_name = Hashtbl.create 97 in
  List.iter
    (fun (c : Cell.t) ->
      if Hashtbl.mem by_name c.Cell.name then
        invalid_arg ("Library.of_cells: duplicate cell " ^ c.Cell.name);
      Hashtbl.add by_name c.Cell.name c)
    cells;
  let groups =
    List.filter_map
      (fun fn ->
        let group =
          List.filter (fun c -> Fn.equal (Cell.fn c) fn) cells
          |> List.sort (fun a b -> Float.compare (Cell.strength a) (Cell.strength b))
        in
        match group with [] -> None | _ -> Some (fn, Array.of_list group))
      (List.sort_uniq Fn.compare (List.map Cell.fn cells))
  in
  { name; tau; strengths; groups; by_name }

(* ---- generated default library ---------------------------------------- *)

let default_strengths = [| 1.0; 2.0; 3.0; 4.0; 6.0; 8.0; 12.0; 16.0 |]
let default_slew_axis = [| 2.0; 5.0; 10.0; 20.0; 40.0; 80.0; 160.0 |]
let default_load_axis = [| 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0 |]

(* Analytic seed for the LUT entries. The load term scales with logical
   effort and inversely with strength; the quadratic load correction and the
   sublinear slew term give the tables their realistic curvature. *)
let model_delay ~tau fn strength ~slew ~load =
  let g = Fn.effort fn and p = Fn.parasitic fn in
  let normalized = load /. strength in
  let load_term = g *. normalized *. (1.0 +. (0.004 *. normalized)) in
  let slew_term = 0.22 *. slew *. (1.0 +. (0.0015 *. slew)) in
  (p *. tau) +. load_term +. slew_term

let model_slew ~tau fn strength ~slew ~load =
  let g = Fn.effort fn in
  let normalized = load /. strength in
  (0.9 *. tau)
  +. (1.6 *. g *. normalized *. (1.0 +. (0.003 *. normalized)))
  +. (0.12 *. slew)

let drive_suffix s =
  if Float.is_integer s then Printf.sprintf "X%d" (int_of_float s)
  else Printf.sprintf "X%g" s

let make_cell ~tau ~slew_axis ~load_axis fn ~drive_index ~strength =
  let delay =
    Numerics.Lut.of_function ~rows:slew_axis ~cols:load_axis (fun slew load ->
        model_delay ~tau fn strength ~slew ~load)
  and output_slew =
    Numerics.Lut.of_function ~rows:slew_axis ~cols:load_axis (fun slew load ->
        model_slew ~tau fn strength ~slew ~load)
  in
  {
    Cell.name = Printf.sprintf "%s_%s" (Fn.name fn) (drive_suffix strength);
    fn;
    drive_index;
    strength;
    area = 1.4 *. Fn.base_area fn *. (0.35 +. (0.65 *. strength));
    input_cap = 1.2 *. Fn.effort fn *. strength;
    delay;
    output_slew;
  }

let generate ?(name = "statsize90") ?(tau = 5.0) ?(strengths = default_strengths)
    ?(slew_axis = default_slew_axis) ?(load_axis = default_load_axis)
    ?(shapes = Fn.all_shapes) () =
  let cells =
    List.concat_map
      (fun fn ->
        List.init (Array.length strengths) (fun i ->
            make_cell ~tau ~slew_axis ~load_axis fn ~drive_index:i
              ~strength:strengths.(i)))
      shapes
  in
  of_cells ~name ~tau ~strengths cells

let default = lazy (generate ())

let pp ppf t =
  Fmt.pf ppf "library %s: %d functions, %d cells" t.name (List.length t.groups)
    (cell_count t)

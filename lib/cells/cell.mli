(** A sized standard cell: one logic function at one drive strength with
    LUT-based delay and output-slew models. Units: ps, fF, µm². *)

type t = {
  name : string;
  fn : Fn.t;
  drive_index : int;
  strength : float;
  area : float;
  input_cap : float;
  delay : Numerics.Lut.t;
  output_slew : Numerics.Lut.t;
}

val name : t -> string
val fn : t -> Fn.t
val arity : t -> int

val drive_index : t -> int
(** Position in the library's strength ladder (0 = minimum size). *)

val strength : t -> float
val area : t -> float
val input_cap : t -> float

val delay : t -> slew:float -> load:float -> float
(** Pin-to-output delay for the given input slew (ps) and load (fF). *)

val slew : t -> slew:float -> load:float -> float
(** Output transition time under the same conditions. *)

val query2 : t -> slew:float -> load:float -> float * float
(** [(delay, output slew)] at one operating point, fused through
    [Lut.query2]: when the two tables share axis arrays (always true for
    the generated library) the bisection and interpolation fractions are
    computed once. Values and out-of-bounds accounting are bit-identical
    to the ({!delay}, {!slew}) pair; bumps the [lut.fused_queries]
    counter instead of the two scalar ones. *)

val equal : t -> t -> bool
val pp : t Fmt.t

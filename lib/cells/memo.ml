(* Generation-stamped memo cache for exact-repeat arc evaluations.

   The sizer's hill climb re-times the same neighbourhoods over and over:
   across consecutive iterations most (cell, input-slew, load) operating
   points repeat exactly (floats and all), because a trial only perturbs
   timing inside one window while everything else resettles to identical
   values. A (delay, output-slew) pair for an exact-repeat point can
   therefore be served from a cache with zero accuracy loss — the memo is
   a pure-function cache, never an approximation, so exact-mode sizings
   stay bit-identical with it on or off.

   Layout: a direct-mapped open-addressing table over parallel arrays
   (flat float payloads, no per-entry allocation). A slot is verified by
   physical equality on the stored [Cell.t] plus float equality on the
   operating point — collisions can only serve wrong data if two live
   cells were physically equal, which they are not (the library constructs
   each cell record once). Eviction is overwrite-on-miss, which keeps the
   policy deterministic so the statobs hit/miss counters are CI-gateable.

   Invalidation: [reset] bumps a generation stamp, an O(1) whole-cache
   clear used when a caller cannot rule out stale reuse (e.g. a library
   swap). Because the cached function is pure there is no within-run
   staleness to manage.

   Thread-safety: none — a memo is single-owner scratch, one per timing
   engine instance, like the engine's other scratch arrays. *)

type t = {
  mask : int; (* capacity - 1; capacity is a power of two *)
  cells : Cell.t option array;
  slews : float array;
  loads : float array;
  d_out : float array; (* cached delay *)
  s_out : float array; (* cached output slew *)
  gens : int array; (* slot live iff gens.(i) = gen *)
  mutable gen : int;
}

let c_hits = Obs.Counters.make "cells.memo.hits"
let c_misses = Obs.Counters.make "cells.memo.misses"

let create ?(bits = 15) () =
  if bits < 4 || bits > 24 then invalid_arg "Memo.create: bits out of range";
  let n = 1 lsl bits in
  {
    mask = n - 1;
    cells = Array.make n None;
    slews = Array.make n 0.0;
    loads = Array.make n 0.0;
    d_out = Array.make n 0.0;
    s_out = Array.make n 0.0;
    gens = Array.make n 0;
    gen = 1;
  }

let reset t = t.gen <- t.gen + 1

(* Hash of the cell identity, hoisted out of the per-fanin probe: a node
   evaluation probes once per fanin arc with the SAME cell, so callers
   compute this once per node. Deterministic across runs (string hash of
   the cell name), which keeps the hit/miss counters gateable. *)
let cell_hash cell = Hashtbl.hash (Cell.name cell)

(* Mix the operating point into the slot index. Multiplicative mixing of
   the raw float bit patterns; the exact constants only affect collision
   rates, not correctness (slots are verified before use). *)
let[@inline] slot t h ~slew ~load =
  let hs = Int64.to_int (Int64.bits_of_float slew) in
  let hl = Int64.to_int (Int64.bits_of_float load) in
  let m = ((h * 0x9e3779b1) lxor (hs * 0x85ebca77) lxor (hl * 0xc2b2ae35)) in
  (m lxor (m lsr 16)) land t.mask

(* Serve (delay, output-slew) for an exact-repeat point, or compute via the
   fused [Cell.query2] and install. The float equality below is exact bit
   comparison in effect: operating points either repeat exactly (cache
   applies) or differ (recompute) — there is no tolerance, by design. *)
let query2 t cell ~hash ~slew ~load =
  let i = slot t hash ~slew ~load in
  if
    t.gens.(i) = t.gen
    && t.slews.(i) = slew
    && t.loads.(i) = load
    &&
    match t.cells.(i) with Some c -> c == cell | None -> false
  then begin
    Obs.Counters.bump c_hits;
    (t.d_out.(i), t.s_out.(i))
  end
  else begin
    Obs.Counters.bump c_misses;
    let (d, s) = Cell.query2 cell ~slew ~load in
    t.cells.(i) <- Some cell;
    t.slews.(i) <- slew;
    t.loads.(i) <- load;
    t.d_out.(i) <- d;
    t.s_out.(i) <- s;
    t.gens.(i) <- t.gen;
    (d, s)
  end

let hits () = Obs.Counters.read c_hits
let misses () = Obs.Counters.read c_misses

(* statflow classification: allocation, exception-safety, and determinism
   findings over the srcmodel facts, gated by two reachability closures —
   one rooted at the declared hot entries (the sizer/SSTA kernels), one at
   the deterministic-result entries (everything whose output must be
   bit-identical serial vs parallel).

   Noise discipline: HOT001–HOT003 fire only for allocations in iteration
   contexts (loop bodies, iterator callbacks) — a single allocation per call
   amortizes, an allocation per element is what turns the inner loop into
   GC pressure. HOT004 is Info-grade: the boxed-float-return heuristic
   cannot see what flambda sinks. DESIGN.md §13 spells out the model. *)

module Source = Srcmodel.Source
module Scan = Srcmodel.Scan
module Callgraph = Srcmodel.Callgraph

let tool =
  {
    Srcmodel.Tool.name = "statflow";
    parse_code = "FLOW000";
    stale_code = "FLOW007";
  }

(* The kernels PR-3/PR-4 claim are allocation-lean, plus the query layers
   under them. Overridable with --entry. *)
let default_hot_entries =
  [
    "Window.trial_cost";
    "Window.fast_trial_cost";
    "Window.vec_costs";
    "Window.commit_incremental";
    "Electrical.update";
    "Fullssta.update";
    "Discrete_pdf.sum";
    "Discrete_pdf.max2";
    "Lut.query";
    "Lut.query2";
    "Memo.query2";
    "Kernels.fold_into";
    "Kernels.max_lanes_exact";
    "Kernels.fold_into_fast";
    "Kernels.max_lanes_fast";
  ]

(* Everything whose result statserve gates on being bit-identical across
   serial and parallel runs — the sizing/SSTA pipeline, the parallel window
   engine's chunk evaluator, and the serve layer that carries results over
   the wire (protocol encode/decode, the job pool, job execution). *)
let default_det_entries =
  [
    "Table1.run";
    "Fullssta.run";
    "Fassta.run";
    "Electrical.compute";
    "Electrical.update";
    "Fullssta.update";
    "Sizer.optimize";
    "Parwin.eval_chunk";
    "Pool.map";
    "Protocol.parse_line";
    "Protocol.render_response";
    "Jobs.run";
  ]

type allow_entry = Srcmodel.Allow.entry

type config = {
  entries : string list;
      (* non-empty: replaces BOTH default entry sets (hot and det) *)
  allow : allow_entry list;
}

let default_config = { entries = []; allow = [] }

type counts = {
  constructs : int;
  closures : int;
  builders : int;
  in_loop : int;
  bindings : int;
}

let zero_counts =
  { constructs = 0; closures = 0; builders = 0; in_loop = 0; bindings = 0 }

type result = {
  files_scanned : int;
  hot_entries : (string * string * int) list;
  det_entries : (string * string * int) list;
  summaries : (string * counts) list;
  findings : Diag.t list;
  suppressed : int;
}

let finding = Srcmodel.Suppress.finding
let parse_allow_file = Srcmodel.Allow.parse

let entry_selected names ~module_ (b : Scan.binding) =
  List.exists
    (fun e ->
      e = module_ ^ "." ^ b.Scan.b_name || e = b.Scan.b_name || e = module_)
    names

(* ---- per-binding classification ------------------------------------------ *)

let alloc_findings ~file ~module_ (b : Scan.binding) =
  List.filter_map
    (fun (a : Scan.alloc) ->
      if not a.Scan.h_loop then None
      else
        match a.Scan.h_kind with
        | Scan.Construct what ->
            Some
              (finding ~code:"HOT001" ~file ~line:a.Scan.h_line
                 ~hint:
                   "hoist the value out of the loop, reuse preallocated \
                    scratch, or annotate with (* statflow: safe — reason *)"
                 "%s constructed inside a loop on a hot path (%s.%s)" what
                 module_ b.Scan.b_name)
        | Scan.Closure ->
            Some
              (finding ~code:"HOT002" ~file ~line:a.Scan.h_line
                 ~hint:
                   "hoist the closure out of the loop or pass its captures \
                    as arguments"
                 "closure allocated inside a loop on a hot path (%s.%s)"
                 module_ b.Scan.b_name)
        | Scan.Builder fn ->
            Some
              (finding ~code:"HOT003" ~file ~line:a.Scan.h_line
                 ~hint:
                   "allocate the buffer once outside the loop and fill it in \
                    place"
                 "%s allocates its result inside a loop on a hot path (%s.%s)"
                 fn module_ b.Scan.b_name))
    b.Scan.b_allocs

let classify ~hot_graph ~det_graph ~file ~module_ ~is_hot ~is_det
    (b : Scan.binding) =
  let hot_here =
    is_hot || Callgraph.status hot_graph ~module_ ~value:b.Scan.b_name <> None
  in
  let det_here =
    is_det || Callgraph.status det_graph ~module_ ~value:b.Scan.b_name <> None
  in
  let out = ref [] in
  let emit d = out := d :: !out in
  if hot_here then begin
    List.iter emit (alloc_findings ~file ~module_ b);
    if b.Scan.b_float_ret then
      emit
        (finding ~code:"HOT004" ~file ~line:b.Scan.b_line
           ~hint:
             "consider [@inline] on the definition or unboxed float records \
              at the call boundary (heuristic: flambda may already sink the \
              box)"
           "%s.%s returns freshly computed float arithmetic: result boxes at \
            every out-of-inline call"
           module_ b.Scan.b_name);
    List.iter
      (fun (p : Scan.partial_call) ->
        emit
          (finding ~code:"EXC002" ~file ~line:p.Scan.p_line
             ~hint:
               "use the _opt variant or a pattern match so the hot path \
                cannot raise on the empty case"
             "partial call %s on a hot path (%s.%s)" p.Scan.p_fn module_
             b.Scan.b_name))
      b.Scan.b_partials
  end;
  (* EXC001 is a local property — resource safety does not depend on who
     calls the binding — so it fires everywhere, not just on hot paths *)
  List.iter
    (fun (r : Scan.raise_site) ->
      if not r.Scan.r_protected then
        List.iter
          (fun (q : Scan.acquire) ->
            if q.Scan.q_line <= r.Scan.r_line then
              emit
                (finding ~code:"EXC001" ~file ~line:r.Scan.r_line
                   ~hint:
                     "wrap the region in Fun.protect ~finally:(fun () -> \
                      release) so the exceptional path releases too"
                   "%s here may skip the release of %s acquired at line %d \
                    (%s.%s)"
                   r.Scan.r_fn q.Scan.q_what q.Scan.q_line module_
                   b.Scan.b_name))
          b.Scan.b_acquires)
    b.Scan.b_raises;
  if det_here then
    List.iter
      (fun (i : Scan.impure) ->
        match i.Scan.i_kind with
        | Scan.Hash_order { sorted = true } -> ()
        | Scan.Hash_order { sorted = false } ->
            emit
              (finding ~code:"DET001" ~file ~line:i.Scan.i_line
                 ~hint:
                   "sort the traversal's result (Hashtbl.fold ... |> \
                    List.sort ...) or iterate over a sorted key list"
                 "%s traverses in unspecified seed-dependent order inside \
                  result-producing code (%s.%s)"
                 i.Scan.i_what module_ b.Scan.b_name)
        | Scan.Clock ->
            emit
              (finding ~code:"DET002" ~file ~line:i.Scan.i_line
                 ~hint:
                   "move timing to the obs layer; results must not depend \
                    on the wall clock"
                 "%s read inside result-producing code (%s.%s)" i.Scan.i_what
                 module_ b.Scan.b_name)
        | Scan.Rand ->
            emit
              (finding ~code:"DET003" ~file ~line:i.Scan.i_line
                 ~hint:
                   "thread an explicit seeded generator (Random.State or \
                    Numerics.Rng) instead of the ambient global state"
                 "%s draws from the ambient PRNG inside result-producing \
                  code (%s.%s)"
                 i.Scan.i_what module_ b.Scan.b_name))
      b.Scan.b_impures;
  List.rev !out

(* ---- alloc summaries ----------------------------------------------------- *)

let counts_of_binding (b : Scan.binding) =
  List.fold_left
    (fun c (a : Scan.alloc) ->
      let c =
        match a.Scan.h_kind with
        | Scan.Construct _ -> { c with constructs = c.constructs + 1 }
        | Scan.Closure -> { c with closures = c.closures + 1 }
        | Scan.Builder _ -> { c with builders = c.builders + 1 }
      in
      if a.Scan.h_loop then { c with in_loop = c.in_loop + 1 } else c)
    zero_counts b.Scan.b_allocs

let add_counts a b =
  {
    constructs = a.constructs + b.constructs;
    closures = a.closures + b.closures;
    builders = a.builders + b.builders;
    in_loop = a.in_loop + b.in_loop;
    bindings = a.bindings + b.bindings;
  }

(* Transitive allocation summary for one entry: direct counts of every
   binding reachable from it, entry included — the static complement of a
   Gc.minor_words measurement around one call. *)
let transitive_counts graph ~module_ (b : Scan.binding) =
  let visited = Hashtbl.create 64 in
  let total = ref zero_counts in
  let rec visit m (b : Scan.binding) =
    let key = (m, b.Scan.b_name) in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      total :=
        add_counts !total { (counts_of_binding b) with bindings = 1 };
      List.iter
        (fun (c : Scan.call) ->
          List.iter
            (fun (m', b') -> visit m' b')
            (Callgraph.resolve graph ~current_module:m c.Scan.c_path))
        b.Scan.b_calls
    end
  in
  visit module_ b;
  !total

(* ---- driver -------------------------------------------------------------- *)

let dedupe diags =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (d : Diag.t) ->
      let key = (d.Diag.code, Diag.to_string d) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    diags

let select_entries facts names =
  List.concat_map
    (fun (ff : Scan.file_facts) ->
      let module_ = ff.Scan.source.Source.module_name in
      List.filter_map
        (fun (b : Scan.binding) ->
          if entry_selected names ~module_ b then
            Some (module_, ff.Scan.source.Source.path, b)
          else None)
        ff.Scan.bindings)
    facts

let run ?(config = default_config) sources =
  let facts = List.map Scan.file sources in
  let hot_names, det_names =
    match config.entries with
    | [] -> (default_hot_entries, default_det_entries)
    | es -> (es, es)
  in
  let hot_entries = select_entries facts hot_names in
  let det_entries = select_entries facts det_names in
  (* one fixpoint per graph: hot edges are "guarded" when made under
     Fun.protect (EXC semantics ride along for free), det uses the same
     machinery with reachability only *)
  let hot_graph = Callgraph.build facts in
  Callgraph.compute hot_graph
    ~guard_of:(fun c -> c.Scan.c_protected)
    ~through_values:true
    ~entries:(List.map (fun (m, _, b) -> (m, b)) hot_entries);
  let det_graph = Callgraph.build facts in
  Callgraph.compute det_graph
    ~guard_of:(fun _ -> false)
    ~through_values:true
    ~entries:(List.map (fun (m, _, b) -> (m, b)) det_entries);
  let raw =
    List.concat_map
      (fun (ff : Scan.file_facts) ->
        let module_ = ff.Scan.source.Source.module_name in
        let file = ff.Scan.source.Source.path in
        List.concat_map
          (fun (b : Scan.binding) ->
            classify ~hot_graph ~det_graph ~file ~module_
              ~is_hot:(entry_selected hot_names ~module_ b)
              ~is_det:(entry_selected det_names ~module_ b)
              b)
          ff.Scan.bindings)
      facts
    |> dedupe
  in
  let s = Srcmodel.Suppress.apply ~tool ~sources ~allow:config.allow raw in
  let entry_triple (m, file, (b : Scan.binding)) =
    (m ^ "." ^ b.Scan.b_name, file, b.Scan.b_line)
  in
  {
    files_scanned = List.length sources;
    hot_entries = List.map entry_triple hot_entries;
    det_entries = List.map entry_triple det_entries;
    summaries =
      List.map
        (fun (m, _, b) ->
          ( m ^ "." ^ b.Scan.b_name,
            transitive_counts hot_graph ~module_:m b ))
        hot_entries;
    findings = Diag.sort (s.Srcmodel.Suppress.kept @ s.Srcmodel.Suppress.stale);
    suppressed = s.Srcmodel.Suppress.suppressed;
  }

let run_dirs ?(config = default_config) roots =
  let sources, parse_errors = Source.load_dirs ~tool roots in
  let r = run ~config sources in
  { r with findings = Diag.sort (parse_errors @ r.findings) }

let count_by_code diags =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (d : Diag.t) ->
      Hashtbl.replace tbl d.Diag.code
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d.Diag.code)))
    diags;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

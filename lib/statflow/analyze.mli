(** statflow: interprocedural allocation, exception-safety, and determinism
    analysis for the hot paths. Built on [Srcmodel] (parsing, fact
    extraction, call graph, allowlist); this module owns only the flow
    rules and the two reachability closures they are gated by.

    Rule pack (catalogue defaults in [Lint.Rule]):
    - {b FLOW000} (Error) — unparseable source file.
    - {b HOT001} (Warning) — tuple/record/variant/cons/array-literal
      construction inside a loop or iterator callback, in code reachable
      from a hot entry.
    - {b HOT002} (Warning) — closure allocation, same gating.
    - {b HOT003} (Warning) — stdlib builder ([Array.make], [List.map], …)
      allocating its result, same gating.
    - {b HOT004} (Info) — a hot-reachable function whose tail is float
      arithmetic: its result boxes at every out-of-inline call site
      (heuristic; flambda may sink the box).
    - {b EXC001} (Error) — a [raise]/[failwith] after a resource
      acquisition ([open_in], [Unix.openfile], [Mutex.lock]) in the same
      binding, outside any [Fun.protect]/[try] region: the exceptional path
      leaks the handle or deadlocks the lock. Local property — fires
      everywhere, not just on hot paths.
    - {b EXC002} (Warning) — a partial stdlib call ([List.hd],
      [Option.get], [Hashtbl.find]) in hot-reachable code.
    - {b DET001} (Error) — [Hashtbl.fold]/[iter]/[to_seq] whose result is
      not immediately sorted, in code reachable from a deterministic-result
      entry: iteration order is unspecified and seed-dependent.
    - {b DET002} (Error) — [Sys.time]/[Unix.gettimeofday] in
      result-producing code.
    - {b DET003} (Error) — ambient [Random.*] (not [Random.State]) in
      result-producing code.
    - {b FLOW007} (Warning) — a [(* statflow: safe — reason *)] pragma or
      allow-file entry that suppresses nothing.

    Noise discipline and soundness caveats (DESIGN.md §13): HOT fires only
    on allocations in iteration contexts — one allocation per call
    amortizes; one per element is GC pressure. Reachability propagates
    through value bindings too ([Callgraph.compute ~through_values:true]),
    so closure tables like [Iscas_like.suite] do not hide their payloads. *)

module Source = Srcmodel.Source
module Scan = Srcmodel.Scan
module Callgraph = Srcmodel.Callgraph

val tool : Srcmodel.Tool.t
(** [{name = "statflow"; parse_code = "FLOW000"; stale_code = "FLOW007"}] *)

val default_hot_entries : string list
(** The sizer/SSTA kernels PR-3/PR-4 claim are allocation-lean:
    [Window.trial_cost]/[fast_trial_cost]/[vec_costs]/[commit_incremental],
    [Electrical.update], [Fullssta.update], [Discrete_pdf.sum]/[max2],
    [Lut.query]. *)

val default_det_entries : string list
(** Result-producing roots statserve's serial≡parallel gate cares about:
    [Table1.run], engine [run]/[compute]/[update], [Sizer.optimize]. *)

type allow_entry = Srcmodel.Allow.entry

type config = {
  entries : string list;
      (** non-empty: replaces {e both} default entry sets; names match as
          [Module.binding], bare [binding], or bare [Module] *)
  allow : allow_entry list;
}

val default_config : config

val parse_allow_file : string -> (allow_entry list, string) result
(** [Srcmodel.Allow.parse]. *)

type counts = {
  constructs : int;
  closures : int;
  builders : int;
  in_loop : int;  (** of the above, how many sit in iteration contexts *)
  bindings : int;  (** reachable bindings folded into this summary *)
}

type result = {
  files_scanned : int;
  hot_entries : (string * string * int) list;
      (** [(Module.binding, file, line)] of each resolved hot entry *)
  det_entries : (string * string * int) list;
  summaries : (string * counts) list;
      (** per hot entry: transitive allocation-site summary over everything
          reachable from it — the static complement of a [Gc.minor_words]
          measurement around one call *)
  findings : Diag.t list;  (** sorted; allowlist already applied *)
  suppressed : int;
}

val run : ?config:config -> Srcmodel.Source.t list -> result

val run_dirs : ?config:config -> string list -> result
(** [Srcmodel.Source.load_dirs] + [run]; FLOW000 parse failures join the
    findings. *)

val count_by_code : Diag.t list -> (string * int) list
(** Sorted per-code histogram, for reports and BENCH_statflow.json. *)

(** The statcheck abstract domain: a sound enclosure of one node's
    arrival-time distribution, tracked as certified intervals on the mean
    and variance, optional hard support bounds on realizations, and an
    accumulated fast-vs-exact Clark error budget.

    Two transfer semantics share the domain:

    - {!Clark_normal} certifies the moments-only engines. The max transfer
      is {e engine-inclusive}: its output enclosure contains the result of
      exact Clark (corner evaluation of the exact formulas, sound because
      E[max] is monotone in each operand mean and in the spread), of the
      blended quadratic-Φ evaluation, and of the 2.6-cutoff short circuit
      (the latter two within one certified {!Budget} step of exact Clark),
      for any operand moments inside the input enclosures. Containment of a
      whole FASSTA run — fast or [~exact:true] — follows by induction over
      the propagation order, with no error transport. The variance upper
      bound uses Var(max) ≤ max(varA, varB), an identity-based bound proved
      for independent normals (DESIGN.md §9.1).
    - {!Distribution_free} certifies FULLSSTA's discrete-pdf engine, whose
      node distributions are not normal: E[max] ∈ [max(μA, μB),
      (μA+μB)/2 + sqrt(varA+varB+(μA−μB)²)/2] and Var(max) ≤ varA + varB
      hold for ANY independent operands, and hard support intervals (with
      Popoviciu's inequality Var ≤ (width/2)²) absorb the discretization. *)

type semantics = Clark_normal | Distribution_free

type v = {
  mean : Numerics.Interval.t;  (** certified enclosure of E[arrival] *)
  var : Numerics.Interval.t;  (** certified enclosure of Var[arrival], lo ≥ 0 *)
  support : Numerics.Interval.t option;
      (** hard bounds on every realization, when tracked *)
  err_mean : float;
      (** first-order fast-vs-exact mean deviation budget: the certified
          per-max-operation {!Budget.mean_step} bounds accumulated along the
          deepest path. The fully-transported sound bound on
          |fast − exact| at a node is the width of [mean], since both
          engine trajectories are enclosed in it. *)
  err_sigma : float;  (** first-order sigma deviation budget, same shape *)
}

val exact : ?support:Numerics.Interval.t -> Numerics.Clark.moments -> v
(** Point abstraction of exactly-known moments (zero error budget). *)

val make :
  mean:Numerics.Interval.t ->
  var:Numerics.Interval.t ->
  ?support:Numerics.Interval.t ->
  ?err_mean:float ->
  ?err_sigma:float ->
  unit ->
  v
(** Checked constructor: clamps [var.lo] at 0 and refines against the
    support (mean ∈ support, Var ≤ (support width / 2)²). *)

val sum : v -> v -> v
(** Independent sum: means and variances add, supports add, budgets add. *)

val max2 : semantics -> v -> v -> v
(** Statistical max under the given semantics (see module doc). Under
    {!Clark_normal} the enclosure is inflated by (and the budget accrues)
    one certified {!Budget.mean_step}/{!Budget.var_step}, using the
    cutoff-branch constants only when the certified mean gap proves
    conditions (5)/(6) fire for every enclosed operand pair. *)

val max_list : semantics -> v list -> v
(** Left fold of {!max2} — the same association order as the engines' fanin
    folds; raises [Invalid_argument] on the empty list. *)

val pad_resample : samples:int -> v -> v
(** Account for one [Discrete_pdf.resample] + renormalization step of the
    FULLSSTA engine: widens the support by a quarter bin width per side
    (resample's two-point moment-preserving split can overshoot its bin by
    ≤ 0.2071 bin widths) and inflates the moment intervals by a relative
    epsilon absorbing dropped sub-1e-12 masses. Identity on domain values
    without support. *)

val spread_hi : v -> v -> float
(** Upper bound on the Clark spread sqrt(varA + varB) over all operand
    moments inside the two enclosures. *)

val certified_mean : v -> Numerics.Interval.t
(** The enclosure every certified engine's computed mean must fall in. *)

val certified_sigma_hi : v -> float
(** Upper bound on every certified engine's computed sigma. *)

val pp : v Fmt.t

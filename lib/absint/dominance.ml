(* Dominance pruning from certified bounds.

   Soundness of the skip set rests on two facts:

   - output selection: an output o is discarded only when some other
     output's certified mean LOWER bound exceeds o's certified mean UPPER
     bound by margin joint sigmas, so under every distribution compatible
     with the enclosures o sits margin sigmas below a competitor — far
     beyond the 2.6 cutoff at which both SSTA engines already treat the
     max as fully resolved;
   - gate selection: a gate is skipped only when no directed path from it
     reaches a kept output (it is outside every kept transitive fanin), so
     its delay cannot enter RV_O except through discarded outputs, AND its
     whole [isolation]-level fanin-driver neighbourhood is equally dead,
     which closes the electrical side channel (resizing g changes g's pin
     caps, hence its fanin drivers' loads, delays and output slews, which
     sibling readers of those drivers observe). Primary inputs are exempt
     from the neighbourhood test: they have no cell, a fixed arrival and a
     configured slew, so extra load on them changes nothing. *)

type t = {
  margin : float;
  circuit : Netlist.Circuit.t;
  dominated : Netlist.Circuit.id list;
  live : bool array;
  skip_set : bool array;
}

let compute ?(margin = 4.0) ?(isolation = 2) sc =
  if not (margin > 0.0) then invalid_arg "Dominance.compute: margin must be > 0";
  if isolation < 0 then invalid_arg "Dominance.compute: negative isolation";
  let circuit = Statcheck.circuit sc in
  let n = Netlist.Circuit.size circuit in
  let outputs = Netlist.Circuit.outputs circuit in
  let lo o = Numerics.Interval.lo (Statcheck.mean_interval sc o) in
  let hi o = Numerics.Interval.hi (Statcheck.mean_interval sc o) in
  let dominates o' o =
    (* o' certifiably beats o by margin joint sigmas. *)
    let joint =
      Float.succ (Float.sqrt (Statcheck.var_hi sc o +. Statcheck.var_hi sc o'))
    in
    let gap = lo o' -. hi o in
    gap > 0.0 && gap >= margin *. joint
  in
  let dominated =
    List.filter
      (fun o -> List.exists (fun o' -> o' <> o && dominates o' o) outputs)
      outputs
  in
  let live = Array.make n false in
  let rec mark id =
    if not live.(id) then begin
      live.(id) <- true;
      Array.iter mark (Netlist.Circuit.fanins circuit id)
    end
  in
  List.iter (fun o -> if not (List.mem o dominated) then mark o) outputs;
  let skip_set = Array.make n false in
  List.iter
    (fun id ->
      let ok = ref (not live.(id)) in
      let rec probe depth id =
        if !ok && depth > 0 then
          Array.iter
            (fun fi ->
              if not (Netlist.Circuit.is_input circuit fi) then
                if live.(fi) then ok := false else probe (depth - 1) fi)
            (Netlist.Circuit.fanins circuit id)
      in
      probe isolation id;
      skip_set.(id) <- !ok)
    (Netlist.Circuit.gates circuit);
  { margin; circuit; dominated; live; skip_set }

let margin t = t.margin
let dominated_outputs t = t.dominated
let skip t id = t.skip_set.(id)
let skip_count t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.skip_set

let live_count t =
  List.fold_left
    (fun acc id -> if t.live.(id) then acc + 1 else acc)
    0
    (Netlist.Circuit.gates t.circuit)

let pp ppf t =
  Fmt.pf ppf
    "@[<v>dominance %s (margin %g sigma): %d/%d outputs dominated@ %d/%d gates \
     skippable (%d live)@]"
    (Netlist.Circuit.name t.circuit)
    t.margin
    (List.length t.dominated)
    (List.length (Netlist.Circuit.outputs t.circuit))
    (skip_count t)
    (Netlist.Circuit.gate_count t.circuit)
    (live_count t)

(* The statcheck forward pass.

   Per fanin arc we build a sound abstraction of the arc-delay random
   variable, then run the domain's SUM/MAX transfers over the levelized
   circuit (ascending ids are topological by the Circuit invariant). Arc
   abstraction by scope:

   - Current_sizing: the nominal delay d comes from Sta.Electrical exactly
     as both engines see it, and sigma from the variation model — point
     intervals, so the enclosures stay tight.
   - All_sizings: delay and output slew are hulled over the function's whole
     drive ladder with Lut.range corner sweeps (never bumping the LIB007
     out-of-bounds counters), loads over the readers' ladder cap extremes —
     the result holds under any sizing.

   In distribution-free mode the arc additionally carries hard support
   bounds matching FULLSSTA's span-4σ discretization, a variance bound
   padded by half a discretization step ((σ + step/2)² since the midpoint
   quantization moves each realization by ≤ step/2 and truncation only
   shrinks variance), and the walk inserts a pad_resample after each arc
   SUM and each node MAX — exactly where Fullssta.run resamples. *)

module I = Numerics.Interval

type scope = Current_sizing | All_sizings

type config = {
  scope : scope;
  semantics : Domain.semantics;
  z_span : float;
  samples : int;
  model : Variation.Model.t;
  electrical : Sta.Electrical.config;
}

let default_config =
  {
    scope = Current_sizing;
    semantics = Domain.Clark_normal;
    z_span = 4.0;
    samples = 12;
    model = Variation.Model.default;
    electrical = Sta.Electrical.default_config;
  }

(* FULLSSTA discretizes arcs over mean ± 4σ (Discrete_pdf.of_normal's
   default span, not configurable from Fullssta). *)
let fullssta_span = 4.0

type arc = { delay : I.t; sigma_lo : float; sigma_hi : float }

type t = {
  config : config;
  circuit : Netlist.Circuit.t;
  states : Domain.v array;
  env : I.t array;
  rv : Domain.v;
  rv_env : I.t;
}

(* Float-evaluation slack on LUT corner sweeps and interval hulls. *)
let lut_eps = 1e-9

(* ---- arc abstraction ---------------------------------------------------- *)

let arcs_current config circuit =
  let electrical = Sta.Electrical.compute ~config:config.electrical circuit in
  fun id k ->
    let d = (Sta.Electrical.arc_delays electrical id).(k) in
    let strength = Cells.Cell.strength (Netlist.Circuit.cell_exn circuit id) in
    let sigma = Variation.Model.sigma config.model ~delay:d ~strength in
    { delay = I.point d; sigma_lo = sigma; sigma_hi = sigma }

let arcs_all_sizings ~lib config circuit =
  let n = Netlist.Circuit.size circuit in
  (* Load enclosure: hull each reader pin over its function's ladder caps. *)
  let load = Array.make n (I.point 0.0) in
  Netlist.Circuit.iter_nodes circuit ~f:(fun id ->
      let readers =
        List.fold_left
          (fun acc reader ->
            match Netlist.Circuit.cell circuit reader with
            | None -> acc
            | Some cell ->
                let ladder =
                  Cells.Library.sizes_of_fn lib (Cells.Cell.fn cell)
                in
                let caps =
                  Array.map (fun c -> Cells.Cell.input_cap c) ladder
                in
                let lo = Array.fold_left Float.min infinity caps in
                let hi = Array.fold_left Float.max neg_infinity caps in
                I.add acc (I.v lo hi))
          (I.point 0.0)
          (Netlist.Circuit.fanouts circuit id)
      in
      let ext =
        if Netlist.Circuit.is_output circuit id then
          I.point (Netlist.Circuit.output_load circuit)
        else I.point 0.0
      in
      load.(id) <- I.add readers ext);
  (* Slew enclosure: worst-fanin propagation mirrored on intervals, hulled
     over the ladder. *)
  let slew = Array.make n (I.point config.electrical.Sta.Electrical.input_slew) in
  let arc = Array.make n [||] in
  List.iter
    (fun id ->
      match Netlist.Circuit.cell circuit id with
      | None -> ()
      | Some cell ->
          let fanins = Netlist.Circuit.fanins circuit id in
          let ladder = Cells.Library.sizes_of_fn lib (Cells.Cell.fn cell) in
          let worst_in =
            Array.fold_left
              (fun acc fi -> I.max2 acc slew.(fi))
              (I.point 0.0) fanins
          in
          let col = (I.lo load.(id), I.hi load.(id)) in
          arc.(id) <-
            Array.map
              (fun fi ->
                let row = (I.lo slew.(fi), I.hi slew.(fi)) in
                Array.fold_left
                  (fun acc c ->
                    let dlo, dhi = Numerics.Lut.range c.Cells.Cell.delay ~row ~col in
                    let strength = Cells.Cell.strength c in
                    let slo =
                      Variation.Model.sigma config.model ~delay:dlo ~strength
                    in
                    let shi =
                      Variation.Model.sigma config.model ~delay:dhi ~strength
                    in
                    match acc with
                    | None ->
                        Some
                          {
                            delay = I.inflate_rel lut_eps (I.v dlo dhi);
                            sigma_lo = slo;
                            sigma_hi = shi;
                          }
                    | Some a ->
                        Some
                          {
                            delay =
                              I.join a.delay (I.inflate_rel lut_eps (I.v dlo dhi));
                            sigma_lo = Float.min a.sigma_lo slo;
                            sigma_hi = Float.max a.sigma_hi shi;
                          })
                  None ladder
                |> Option.get)
              fanins;
          slew.(id) <-
            Array.fold_left
              (fun acc c ->
                let row = (I.lo worst_in, I.hi worst_in) in
                let slo, shi = Numerics.Lut.range c.Cells.Cell.output_slew ~row ~col in
                I.join acc (I.inflate_rel lut_eps (I.v slo shi)))
              (let c0 = ladder.(0) in
               let row = (I.lo worst_in, I.hi worst_in) in
               let slo, shi = Numerics.Lut.range c0.Cells.Cell.output_slew ~row ~col in
               I.inflate_rel lut_eps (I.v slo shi))
              ladder)
    (Netlist.Circuit.topological circuit);
  fun id k -> arc.(id).(k)

(* Domain abstraction of one arc under the configured semantics. *)
let arc_state config (a : arc) =
  match config.semantics with
  | Domain.Clark_normal ->
      Domain.make ~mean:a.delay
        ~var:(I.v (a.sigma_lo *. a.sigma_lo) (Float.succ (a.sigma_hi *. a.sigma_hi)))
        ()
  | Domain.Distribution_free ->
      (* of_normal over mean ± 4σ with [samples] bins: midpoints carry the
         bin mass, so each realization is within step/2 of a truncated
         draw. Truncation + renormalization keeps the mean (symmetry) and
         shrinks the variance, so sd ≤ σ + step/2. *)
      let step =
        2.0 *. fullssta_span *. a.sigma_hi /. float_of_int (Stdlib.max 1 config.samples)
      in
      let sd_hi = a.sigma_hi +. (0.5 *. step) in
      let support =
        I.v
          (I.lo a.delay -. (fullssta_span *. a.sigma_hi))
          (I.hi a.delay +. (fullssta_span *. a.sigma_hi))
      in
      Domain.make
        ~mean:(I.inflate_rel 1e-9 a.delay)
        ~var:(I.v 0.0 (Float.succ (sd_hi *. sd_hi)))
        ~support ()

let arc_envelope config (a : arc) =
  I.v
    (I.lo a.delay -. (config.z_span *. a.sigma_hi))
    (I.hi a.delay +. (config.z_span *. a.sigma_hi))

(* ---- forward pass ------------------------------------------------------- *)

let run ?(config = default_config) ~lib circuit =
  if config.samples < 1 then invalid_arg "Statcheck.run: samples < 1";
  if config.z_span < 0.0 then invalid_arg "Statcheck.run: negative z_span";
  let arcs =
    match config.scope with
    | Current_sizing -> arcs_current config circuit
    | All_sizings -> arcs_all_sizings ~lib config circuit
  in
  let n = Netlist.Circuit.size circuit in
  let input_arrival = config.electrical.Sta.Electrical.input_arrival in
  let input_state =
    Domain.exact ~support:(I.point input_arrival)
      (Numerics.Clark.moments ~mean:input_arrival ~var:0.0)
  in
  let states = Array.make n input_state in
  let env = Array.make n (I.point input_arrival) in
  let dist_free = config.semantics = Domain.Distribution_free in
  let pad v = if dist_free then Domain.pad_resample ~samples:config.samples v else v in
  List.iter
    (fun id ->
      let fanins = Netlist.Circuit.fanins circuit id in
      if Array.length fanins > 0 then begin
        let arrivals = ref [] in
        let e = ref None in
        Array.iteri
          (fun k fi ->
            let a = arcs id k in
            let s = pad (Domain.sum states.(fi) (arc_state config a)) in
            arrivals := s :: !arrivals;
            let ae = I.add env.(fi) (arc_envelope config a) in
            e := Some (match !e with None -> ae | Some acc -> I.max2 acc ae))
          fanins;
        states.(id) <- pad (Domain.max_list config.semantics (List.rev !arrivals));
        env.(id) <- Option.get !e
      end)
    (Netlist.Circuit.topological circuit);
  let outputs = Netlist.Circuit.outputs circuit in
  let rv, rv_env =
    match outputs with
    | [] -> (input_state, I.point input_arrival)
    | outs ->
        ( pad
            (Domain.max_list config.semantics
               (List.map (fun o -> states.(o)) outs)),
          List.fold_left
            (fun acc o -> I.max2 acc env.(o))
            env.(List.hd outs) outs )
  in
  { config; circuit; states; env; rv; rv_env }

(* ---- accessors ---------------------------------------------------------- *)

let config t = t.config
let circuit t = t.circuit
let state t id = t.states.(id)
let mean_interval t id = t.states.(id).Domain.mean
let var_hi t id = I.hi t.states.(id).Domain.var
let err_mean t id = t.states.(id).Domain.err_mean
let envelope t id = t.env.(id)
let rv_state t = t.rv
let rv_envelope t = t.rv_env

let output_budget t =
  List.fold_left
    (fun acc o -> Float.max acc t.states.(o).Domain.err_mean)
    t.rv.Domain.err_mean
    (Netlist.Circuit.outputs t.circuit)

let pp_summary ppf t =
  let widest =
    Array.fold_left (fun acc s -> Float.max acc (I.width s.Domain.mean)) 0.0 t.states
  in
  Fmt.pf ppf
    "@[<v>statcheck %s: %d nodes, scope %s, %s semantics@ RV_O mean in %a, \
     sigma <= %.3f@ envelope (|z| <= %g): %a@ worst mean-interval width %.3f \
     ps, FASSTA budget (mean) %.4f ps@]"
    (Netlist.Circuit.name t.circuit)
    (Netlist.Circuit.size t.circuit)
    (match t.config.scope with
    | Current_sizing -> "current-sizing"
    | All_sizings -> "all-sizings")
    (match t.config.semantics with
    | Domain.Clark_normal -> "Clark-normal"
    | Domain.Distribution_free -> "distribution-free")
    I.pp t.rv.Domain.mean
    (Domain.certified_sigma_hi t.rv)
    t.config.z_span I.pp t.rv_env widest (output_budget t)

(* Certified per-step error constants for the fast Clark max.

   Everything here is a sup of an explicit elementary function, evaluated on
   a dense grid and padded outward by

     (grid step / 2) * (certified bound on the integrand's derivative)
     + the reference erf's own absolute error (1.5e-7, A&S 7.1.26)
     + a float round-off cushion,

   so each exported constant is a true upper bound of the mathematical sup.
   The derivations live in DESIGN.md §9.2; the key algebraic identity used
   for the variance constants is (with sp² = varA + varB, α = (μA−μB)/sp,
   e₁ = sp·(φ(α) − αΦ(−α)) the Mills-gap term, all for ρ = 0):

     Var_exact(max) = varA + (varB − varA)·Φ(−α) + (μB − μA)·e₁ − e₁²

   which is verified numerically by the test suite against Clark.max_exact. *)

let phi = Numerics.Normal.pdf
let cdf = Numerics.Normal.cdf
let cdf_q = Numerics.Normal.cdf_fast
let cutoff = Numerics.Clark.cutoff

(* Reference-function slack: A&S erf error plus round-off headroom. *)
let reference_pad = 1e-6

let grid_sup ~lo ~hi ~step ~deriv_bound f =
  let n = int_of_float (Float.ceil ((hi -. lo) /. step)) in
  let best = ref neg_infinity in
  for i = 0 to n do
    let x = Float.min hi (lo +. (float_of_int i *. step)) in
    let v = f x in
    if v > !best then best := v
  done;
  !best +. (0.5 *. step *. deriv_bound) +. reference_pad

(* sup |Φq − Φ|. Both functions are odd around 1/2, so [0, ∞) suffices; past
   the saturation point Φq = 1 and the gap Φ(−x) only decreases, so the grid
   stops a little beyond the cutoff. Derivative bound: |Φq'| ≤ 0.44 on the
   quadratic segment (0.1·(4.4 − 2x) at x = 0) and |Φ'| ≤ 0.4. *)
let eps_phi =
  grid_sup ~lo:0.0 ~hi:(cutoff +. 0.5) ~step:1e-4 ~deriv_bound:0.84 (fun x ->
      Float.abs (cdf_q x -. cdf x))

(* Cutoff branch, mean: E_exact − μ_dominant = e₁ = sp·(φ(α) − αΦ(−α)) ≥ 0,
   and d/dα [φ − αΦ(−α)] = −Φ(−α) < 0, so the sup over |α| ≥ 2.6 is attained
   exactly at the cutoff. *)
let k_cutoff_mean = phi cutoff -. (cutoff *. cdf (-.cutoff)) +. reference_pad

(* Cutoff branch, variance: from the identity above, with |varB − varA| ≤
   sp², |μB − μA| = α·sp and e₁ ≤ sp·(φ − αΦ(−α)):
     |Var_exact − var_dominant| ≤ sp²·(Φ(−α) + α·e₁(α) + e₁(α)²).
   The bracket is maximal near the cutoff and decays like φ(α); the grid
   runs far enough out that the tail is below the attained sup. Derivative
   bound 1.0 is generous (each term's slope is O(φ(α)) ≤ 0.02 past 2.6). *)
let k_cutoff_var =
  grid_sup ~lo:cutoff ~hi:8.0 ~step:1e-3 ~deriv_bound:1.0 (fun a ->
      let e1 = phi a -. (a *. cdf (-.a)) in
      cdf (-.a) +. (a *. e1) +. (e1 *. e1))

(* Blended branch, mean: E_fast − E_exact = (μA − μB)·(Φq − Φ)(α)
   = sp · α·ε(α). |d/dα [α·ε]| ≤ |ε| + |α|(0.44 + 0.4) ≤ 2.2 on the range. *)
let k_blend_mean =
  grid_sup ~lo:0.0 ~hi:cutoff ~step:1e-4 ~deriv_bound:2.2 (fun a ->
      Float.abs (a *. (cdf_q a -. cdf a)))

(* Blended branch, variance. Shift-invariance lets us set μB = 0, μA = α·sp;
   expanding Var_fast − Var_exact with ε = Φq − Φ gives
     ε·[ (μA−μB)(μA+μB−2·E_exact) + (σA²−σB²) − ε·(μA−μB)² ]
   whose magnitude is ≤ sp²·|ε(α)|·( |α|·|α(1−2Φ(α)) − 2φ(α)| + 1 + ε·α² ).
   The bracket is bounded by ≈ 8 on |α| ≤ 2.6 and its slope by ≈ 40, so a
   1e-4 grid with derivative bound 50 certifies the sup comfortably. *)
let k_blend_var =
  grid_sup ~lo:0.0 ~hi:cutoff ~step:1e-4 ~deriv_bound:50.0 (fun a ->
      let eps = Float.abs (cdf_q a -. cdf a) in
      eps
      *. ((a *. Float.abs ((a *. (1.0 -. (2.0 *. cdf a))) -. (2.0 *. phi a)))
          +. 1.0
          +. (eps *. a *. a)))

let k_mean = Float.max k_cutoff_mean k_blend_mean
let k_var = Float.max k_cutoff_var k_blend_var

(* ---- fully-quadratic blended branch (statkern fast lanes) ----------------

   The statkern drain kernels go one step further than [Clark.max_fast]:
   besides the quadratic Φ they replace φ with the quadratic's own
   derivative,

     φq(x) = dΦq/dx = max(0, 0.44 − 0.2·|x|)

   (zero on the plateau and past saturation), eliminating the last
   [Float.exp] from the blended branch. The constants below certify that
   variant; the cutoff branch uses no φ or Φ at all, so [k_cutoff_*] apply
   to it unchanged. *)

let phi_q x =
  let ax = Float.abs x in
  if ax >= 2.2 then 0.0 else 0.44 -. (0.2 *. ax)

(* sup |φq − φ|, attained at 0 (0.44 vs 1/√2π). Derivative bound:
   |φq'| ≤ 0.2 and |φ'| = |x|·φ(x) ≤ φ(1) ≤ 0.25 → 0.45, padded to 1. The
   grid runs to 8: beyond, φq = 0 and φ ≤ φ(8) is far below the sup. *)
let eps_pdf =
  grid_sup ~lo:0.0 ~hi:8.0 ~step:1e-4 ~deriv_bound:1.0 (fun x ->
      Float.abs (phi_q x -. phi x))

(* Fully-quadratic blended mean: with εΦ = Φq − Φ and εφ = φq − φ,
     E_fastq − E_exact = (μA − μB)·εΦ(α) + sp·εφ(α) = sp·(α·εΦ + εφ).
   Both α·εΦ and εφ are even in α, so [0, cutoff] suffices. Derivative
   bound: 2.2 (documented for α·εΦ above) + 0.45 (εφ) → 4 generously. *)
let kq_blend_mean =
  grid_sup ~lo:0.0 ~hi:cutoff ~step:1e-4 ~deriv_bound:4.0 (fun a ->
      Float.abs ((a *. (cdf_q a -. cdf a)) +. (phi_q a -. phi a)))

(* Fully-quadratic blended variance. Var is shift-invariant for both fast
   and exact forms, so set μB = 0, μA = α·sp (α ≥ 0 wlog by operand
   symmetry). Then with |varA − varB| ≤ sp²:
     |m2_f − m2_e|  = |(μA² + varA − varB)·εΦ + μA·sp·εφ|
                    ≤ sp²·((α² + 1)·|εΦ| + α·|εφ|)
     |m1_f² − m1_e²| ≤ sp·|α·εΦ + εφ| · (m1_f + m1_e)
                    ≤ sp²·(α·|εΦ| + |εφ|)·(2α + φ + φq)
   and |Var_f − Var_e| ≤ the sum. Slopes of every factor are bounded by
   small constants on [0, 2.6]; 60 covers their products comfortably. *)
let kq_blend_var =
  grid_sup ~lo:0.0 ~hi:cutoff ~step:1e-4 ~deriv_bound:60.0 (fun a ->
      let ef = Float.abs (cdf_q a -. cdf a) in
      let ep = Float.abs (phi_q a -. phi a) in
      let em = (a *. ef) +. ep in
      (((a *. a) +. 1.0) *. ef) +. (a *. ep)
      +. (em *. ((2.0 *. a) +. phi a +. phi_q a)))

let mean_step ~certain_cutoff ~spread_hi =
  (if certain_cutoff then k_cutoff_mean else k_mean) *. spread_hi

let var_step ~certain_cutoff ~spread_hi =
  (if certain_cutoff then k_cutoff_var else k_var) *. spread_hi *. spread_hi

let sigma_step ~certain_cutoff ~spread_hi =
  Float.sqrt (if certain_cutoff then k_cutoff_var else k_var) *. spread_hi

(** Structural dominance: prove that some gates can never lie on the WNSS
    path, using only certified bounds.

    An output [o] is {e certified-dominated} when some other output [o']'s
    certified mean {e lower} bound beats [o]'s certified mean {e upper}
    bound by at least [margin] joint sigmas (margin · sqrt(varhi(o) +
    varhi(o'))). With the default margin 4 (> the paper's 2.6 cutoff), the
    dominated output is statically outside every cutoff decision the WNSS
    tracer can face, and its influence on RV_O's moments is bounded by the
    Mills gap φ(m) − m·Φ(−m) per sigma — far below the sizer's
    move-commit threshold.

    Gates are then marked {e live} by walking the transitive fanin of every
    non-dominated output; a gate is {e skippable} when itself and its whole
    [isolation]-level transitive-fanin gate neighbourhood are non-live (the
    isolation levels keep a skipped gate's resize from touching a live
    cone through the load/slew side channels: resizing g changes g's input
    pin caps, hence its fanin drivers' loads, delays and output slews,
    which sibling readers of those drivers observe — two levels cover the
    window evaluator's pivot + fanin co-sizing reach). *)

type t

val compute : ?margin:float -> ?isolation:int -> Statcheck.t -> t
(** [margin] defaults to 4.0 joint sigmas, [isolation] to 2 fanin levels.
    Expects (and is only meaningful for) a {!Statcheck.t} computed under
    the current sizing. *)

val margin : t -> float
val dominated_outputs : t -> Netlist.Circuit.id list
(** Outputs proven to never carry the WNSS path, with their cones. *)

val skip : t -> Netlist.Circuit.id -> bool
(** True when the gate is proven safe to leave out of sizer evaluation. *)

val skip_count : t -> int
(** Number of skippable gates. *)

val live_count : t -> int
(** Number of gates feeding some non-dominated output. *)

val pp : t Fmt.t

(* The statcheck abstract value and its transfer functions. Soundness
   arguments for every bound live in DESIGN.md §9.1; the two load-bearing
   facts are:

   - Clark's E[max] is monotone non-decreasing in μA, μB and in the spread
     (∂E/∂μA = Φ(α), ∂E/∂μB = Φ(−α), ∂E/∂a = φ(α), all ≥ 0), so corner
     evaluation of the exact formula yields a sound interval extension;
   - for independent normals, Var(max) = varA·Φ(α) + varB·Φ(−α)
     + (μB−μA)·e₁ − e₁² with e₁ = E[max] − μA ≥ 0 when α ≥ 0, whose last
     two terms are ≤ 0 — hence Var(max) ≤ max(varA, varB). The
     distribution-free fallback Var(max) ≤ varA + varB (from
     max = (A+B)/2 + |A−B|/2 and Minkowski) covers non-normal operands. *)

module I = Numerics.Interval
module C = Numerics.Clark

type semantics = Clark_normal | Distribution_free

type v = {
  mean : I.t;
  var : I.t;
  support : I.t option;
  err_mean : float;
  err_sigma : float;
}

(* Epsilon absorbed per FULLSSTA renormalization (dropped ≤ 1e-12 masses and
   the implied rescale): generous by ~an order of magnitude. *)
let resample_moment_eps = 1e-8

(* Relative widening applied to Clark corner evaluations: the monotonicity
   argument is exact in real arithmetic; the float evaluation of the same
   formula at interior points can cross a corner value by a few ulps. *)
let corner_eps = 1e-9

let clamp_var var = if I.lo var < 0.0 then I.v 0.0 (Float.max 0.0 (I.hi var)) else var

(* Refine moments against hard support bounds: the mean of a distribution on
   [a, b] lies in [a, b], and Popoviciu gives Var ≤ ((b − a)/2)². If float
   drift ever makes the two sound enclosures disjoint, keep the moment
   interval (both enclose the truth, so this cannot lose it). *)
let refine t =
  match t.support with
  | None -> t
  | Some s ->
      let mean = match I.meet t.mean s with Some m -> m | None -> t.mean in
      let half = 0.5 *. I.width s in
      let pop = Float.succ (half *. half) in
      let var =
        if I.hi t.var > pop then I.v (Float.min (I.lo t.var) pop) pop else t.var
      in
      { t with mean; var }

let make ~mean ~var ?support ?(err_mean = 0.0) ?(err_sigma = 0.0) () =
  refine { mean; var = clamp_var var; support; err_mean; err_sigma }

let exact ?support (m : C.moments) =
  make ~mean:(I.point m.C.mean) ~var:(I.point m.C.var) ?support ()

let sum a b =
  let support =
    match (a.support, b.support) with
    | Some sa, Some sb -> Some (I.add sa sb)
    | _ -> None
  in
  refine
    {
      mean = I.add a.mean b.mean;
      var = clamp_var (I.add a.var b.var);
      support;
      (* Sum of independent variables: means add exactly, so mean errors
         add; sqrt(vA + vB) is 1-Lipschitz in each operand sigma, so sigma
         errors add too. *)
      err_mean = a.err_mean +. b.err_mean;
      err_sigma = a.err_sigma +. b.err_sigma;
    }

let support_max a b =
  match (a.support, b.support) with
  | Some sa, Some sb -> Some (I.max2 sa sb)
  | _ -> None

(* Upper bound on the Clark spread sqrt(varA + varB) for ANY pair of operand
   moments inside the enclosures — in particular for the pair either engine
   actually holds, since both trajectories are enclosed (see max2_clark). *)
let spread_hi a b = Float.succ (Float.sqrt (I.hi a.var +. I.hi b.var))

(* Do conditions (5)/(6) provably fire for the fast engine, whatever member
   of the enclosures it actually sees? Sufficient: the smallest possible
   mean gap already clears cutoff × (largest possible spread) — the fast
   engine's own α can only be larger. (A degenerate fast spread of 0 takes
   the sp ≤ 0 branch, which returns the same dominant operand.) *)
let certain_cutoff a b =
  let sp = spread_hi a b in
  let gap_a = I.lo a.mean -. I.hi b.mean in
  let gap_b = I.lo b.mean -. I.hi a.mean in
  Float.max gap_a gap_b >= C.cutoff *. sp

(* Engine-inclusive Clark max: the output enclosure contains the result of
   BOTH engines applied to any operand moments inside the input enclosures —
   exact Clark (corner evaluation, by monotonicity), the blended quadratic-Φ
   evaluation and the 2.6-cutoff short circuit (each within one certified
   Budget step of exact Clark at the same operands). Containment of a whole
   engine run then follows by induction over the propagation order, with no
   error transport: the inductive hypothesis "this engine's node moments lie
   in the node enclosure" is re-established at every arc sum and max. The
   err_* fields no longer carry the containment proof; they accumulate the
   per-operation step bounds along the deepest path as a first-order
   fast-vs-exact deviation budget (the fully-transported sound bound on
   |fast − exact| at a node is the width of the node's mean interval, since
   both trajectories are enclosed in it). *)
let max2_clark a b =
  let mean_lo =
    (C.max_exact
       (C.moments ~mean:(I.lo a.mean) ~var:(Float.max 0.0 (I.lo a.var)))
       (C.moments ~mean:(I.lo b.mean) ~var:(Float.max 0.0 (I.lo b.var))))
      .C.mean
  in
  let mean_hi =
    (C.max_exact
       (C.moments ~mean:(I.hi a.mean) ~var:(I.hi a.var))
       (C.moments ~mean:(I.hi b.mean) ~var:(I.hi b.var)))
      .C.mean
  in
  let mean =
    I.inflate_rel corner_eps
      (I.v (Float.min mean_lo mean_hi) (Float.max mean_lo mean_hi))
  in
  (* E[max] ≥ max of the operand means — tightens the corner lower bound
     and never loosens it (sound for the fast branches too, up to the step
     inflation below: the cutoff returns the dominant operand's mean, which
     is ≥ both operand lower bounds, and the blended mean is within one
     step of exact). *)
  let mean =
    I.v (Float.max (I.lo mean) (Float.max (I.lo a.mean) (I.lo b.mean))) (I.hi mean)
  in
  let certain_cutoff = certain_cutoff a b in
  let sp = spread_hi a b in
  let mean_step = Budget.mean_step ~certain_cutoff ~spread_hi:sp in
  let var_step = Budget.var_step ~certain_cutoff ~spread_hi:sp in
  refine
    {
      mean = I.inflate mean_step mean;
      (* Exact: Var(max) ≤ max(varA, varB) by the §9.1 identity; cutoff
         returns an operand variance (≤ the max of the highs); blended is
         within var_step of exact and clamped at 0 by Clark.max_fast. *)
      var = I.v 0.0 (Float.succ (Float.max (I.hi a.var) (I.hi b.var) +. var_step));
      support = support_max a b;
      err_mean = Float.max a.err_mean b.err_mean +. mean_step;
      err_sigma =
        Float.max a.err_sigma b.err_sigma
        +. Budget.sigma_step ~certain_cutoff ~spread_hi:sp;
    }

let max2_dist_free a b =
  let mean_lo = Float.max (I.lo a.mean) (I.lo b.mean) in
  (* E[max] = (μA+μB)/2 + E|A−B|/2 and E|A−B| ≤ sqrt(E(A−B)²)
     = sqrt(varA + varB + (μA−μB)²); the bound is monotone in both means
     and in the variance sum, so the high corner is sound. *)
  let vhi = Float.succ (I.hi a.var +. I.hi b.var) in
  let gap = I.hi a.mean -. I.hi b.mean in
  let mean_hi =
    Float.succ
      (0.5 *. (I.hi a.mean +. I.hi b.mean +. Float.sqrt (vhi +. (gap *. gap))))
  in
  refine
    {
      mean = I.v mean_lo (Float.max mean_lo mean_hi);
      var = I.v 0.0 vhi;
      support = support_max a b;
      err_mean = Float.max a.err_mean b.err_mean;
      err_sigma = Float.max a.err_sigma b.err_sigma;
    }

let max2 semantics a b =
  match semantics with
  | Clark_normal -> max2_clark a b
  | Distribution_free -> max2_dist_free a b

let max_list semantics = function
  | [] -> invalid_arg "Domain.max_list: empty operand list"
  | x :: rest -> List.fold_left (max2 semantics) x rest

let pad_resample ~samples t =
  match t.support with
  | None -> t
  | Some s ->
      (* resample's moment-preserving two-point split can place a point up
         to (1 − 1/√2)/2 ≈ 0.2071 bin widths outside its bin; 0.25 pads
         that with margin. Bin width is the (pre-pad) support width over
         the sample budget. *)
      let pad = 0.25 *. I.width s /. float_of_int (Stdlib.max 1 samples) in
      refine
        {
          t with
          support = Some (I.inflate pad s);
          mean = I.inflate_rel resample_moment_eps t.mean;
          var = clamp_var (I.inflate_rel resample_moment_eps t.var);
        }

let certified_mean t = t.mean
let certified_sigma_hi t = Float.sqrt (I.hi t.var)

let pp ppf t =
  Fmt.pf ppf "@[mean %a var %a%a err(μ %.3g, σ %.3g)@]" I.pp t.mean I.pp t.var
    (Fmt.option (fun ppf s -> Fmt.pf ppf " supp %a" I.pp s))
    t.support t.err_mean t.err_sigma

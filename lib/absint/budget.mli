(** Certified one-step error constants for the FASSTA Clark max.

    [Numerics.Clark.max_fast] deviates from [max_exact] in exactly two ways:
    the 2.6-cutoff short circuit (the max collapses to the dominant operand,
    paper conditions (5)/(6)) and, in the blended branch, the CRC quadratic
    Φ replacing the reference Φ in the CDF weights. Both deviations scale
    linearly (mean) or quadratically (variance) with the spread
    a = sqrt(varA + varB), so each constant below is normalized by the
    appropriate power of the spread:

      |E_fast − E_exact|     ≤ k_mean · a
      |Var_fast − Var_exact| ≤ k_var  · a²

    The constants are computed once at startup from the reference erf by
    dense grid supremum plus an explicit padding that covers the grid
    resolution (via derivative bounds), the reference erf's own |error| ≤
    1.5e-7 (A&S 7.1.26), and float round-off — so they are certified upper
    bounds, not estimates. Derivations: DESIGN.md §9.2. *)

val eps_phi : float
(** Certified sup over all x of |Φ_quadratic(x) − Φ(x)| (≈ 5.3e-3). *)

val k_cutoff_mean : float
(** Mean constant when the cutoff branch fires (|α| ≥ 2.6): the Mills-ratio
    gap φ(2.6) − 2.6·Φ(−2.6), which is decreasing in |α| (≈ 1.5e-3). *)

val k_cutoff_var : float
(** Variance constant for the cutoff branch: certified sup over |α| ≥ 2.6 of
    Φ(−α) + α·e₁(α) + e₁(α)² with e₁ = φ − αΦ(−α) (≈ 8.5e-3). *)

val k_blend_mean : float
(** Mean constant for the blended branch: sup over |α| < 2.6 of
    |α·(Φ_quadratic − Φ)(α)| (≈ 1.4e-2). *)

val k_blend_var : float
(** Variance constant for the blended branch (≈ 4.5e-2). *)

val eps_pdf : float
(** Certified sup over all x of |φq(x) − φ(x)| where
    φq(x) = max(0, 0.44 − 0.2·|x|) is the quadratic Φ's own derivative —
    the φ surrogate used by the statkern fast lanes (≈ 4.2e-2). *)

val kq_blend_mean : float
(** Mean constant for the fully-quadratic blended branch (quadratic Φ AND
    φq replacing φ, no [exp] at all): certified sup of
    |α·(Φq − Φ) + (φq − φ)| (≈ 4.5e-2). *)

val kq_blend_var : float
(** Variance constant for the fully-quadratic blended branch (≈ 0.3). *)

val k_mean : float
(** max of the two mean constants — sound when the branch taken by the
    concrete run cannot be determined statically. *)

val k_var : float
(** max of the two variance constants. *)

val mean_step : certain_cutoff:bool -> spread_hi:float -> float
(** One max operation's certified mean-error contribution: the branch
    constant (cutoff when the certified α interval proves the cutoff fires,
    else the max over both branches) times the spread upper bound. *)

val var_step : certain_cutoff:bool -> spread_hi:float -> float
(** One max operation's certified variance-error contribution: the branch
    variance constant times spread_hi². *)

val sigma_step : certain_cutoff:bool -> spread_hi:float -> float
(** One max operation's certified sigma-error contribution:
    sqrt(k_var) · spread_hi, using |σf − σe| ≤ sqrt(|Vf − Ve|). *)

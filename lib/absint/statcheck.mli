(** The statcheck certifier: one forward abstract-interpretation pass over
    the levelized circuit producing, per node,

    - certified arrival-time enclosures (mean interval, variance bound,
      and — in distribution-free mode — hard support bounds),
    - an accumulated fast-vs-exact Clark error budget ({!Domain.v}), and
    - a realization envelope: hard bounds on the arrival under any
      truncated variation draw |z| ≤ [z_span] per arc (the Monte-Carlo
      property tests sample inside it).

    The [scope] axis picks what the enclosures quantify over:
    {!Current_sizing} reads the circuit's present cells (tight — this is
    what the lint cross-checks and the sizer's dominance pruning use), while
    {!All_sizings} hulls every arc over the library's whole drive ladder
    (via {!Numerics.Lut.range} corner sweeps), so the result is sound under
    any sizing the optimizer may ever visit. *)

type scope = Current_sizing | All_sizings

type config = {
  scope : scope;
  semantics : Domain.semantics;
  z_span : float;  (** envelope half-width in sigmas per arc (default 4) *)
  samples : int;
      (** FULLSSTA pdf budget the distribution-free mode certifies
          (default 12, matching [Ssta.Fullssta.default_config]) *)
  model : Variation.Model.t;
  electrical : Sta.Electrical.config;
}

val default_config : config
(** Current sizing, Clark-normal semantics, z_span 4, 12 samples, default
    model and electrical config. *)

type t

val run : ?config:config -> lib:Cells.Library.t -> Netlist.Circuit.t -> t
(** One forward pass; O(nodes × arcs) domain operations (plus a LUT corner
    sweep per arc and ladder cell under [All_sizings]). *)

val config : t -> config
val circuit : t -> Netlist.Circuit.t

val state : t -> Netlist.Circuit.id -> Domain.v
val mean_interval : t -> Netlist.Circuit.id -> Numerics.Interval.t
val var_hi : t -> Netlist.Circuit.id -> float
val err_mean : t -> Netlist.Circuit.id -> float

val envelope : t -> Netlist.Circuit.id -> Numerics.Interval.t
(** Hard realization bounds at a node for truncated draws |z| ≤ z_span. *)

val rv_state : t -> Domain.v
(** Abstract state of RV_O (the statistical max over primary outputs),
    obtained by folding the same max transfer over the output states. *)

val rv_envelope : t -> Numerics.Interval.t

val output_budget : t -> float
(** Certified circuit-wide FASSTA mean-error budget: the worst accumulated
    [err_mean] across primary outputs (and RV_O). *)

val pp_summary : t Fmt.t
(** One-paragraph text report: RV_O enclosure, worst budgets, node count. *)

(* The process-variation model.

   Following the paper's setup (variations added per Cong'97 and Nassif'00),
   every gate-delay arc receives two variation components:

   - a systematic part proportional to the delay through the gate and
     inversely proportional to device dimensions (the paper's own wording in
     §4.4: "gate performance variations inversely proportional to their
     dimensions") — upsizing reduces sigma; this is the lever the optimizer
     exploits;
   - an unsystematic random part that does not shrink with sizing — the
     floor that makes improvement saturate at high alpha (the paper's
     observation that pushing alpha past ~9 stops helping).

     sigma(d, s) = sqrt( (k_sys · d / s^e)² + (k_rand · tau_ref)² )

   with size exponent e = 1 by default (the paper's "inversely
   proportional to their dimensions"). *)

type t = {
  systematic : float; (* k_sys, fraction of delay at minimum size *)
  random_floor : float; (* k_rand, fraction of tau_ref *)
  tau_ref : float; (* reference time constant, ps *)
  size_exponent : float; (* e in sigma_sys ∝ 1/s^e *)
}

let create ?(systematic = 0.8) ?(random_floor = 0.15) ?(tau_ref = 5.0)
    ?(size_exponent = 1.0) () =
  if systematic < 0.0 || random_floor < 0.0 || tau_ref <= 0.0 then
    invalid_arg "Variation.Model.create: negative parameters";
  if size_exponent < 0.0 then
    invalid_arg "Variation.Model.create: negative size exponent";
  { systematic; random_floor; tau_ref; size_exponent }

let default = create ()

let systematic_sigma t ~delay ~strength =
  (* e = 1 (the paper's default) short-circuits the libm pow: IEEE 754
     guarantees pow(x, 1) = x exactly for every x, so the branch is
     bit-identical and saves the transcendental on the hot arc path. *)
  let base = Float.max strength 1e-9 in
  let denom =
    if t.size_exponent = 1.0 then base else Float.pow base t.size_exponent
  in
  t.systematic *. delay /. denom

let random_sigma t = t.random_floor *. t.tau_ref

let sigma t ~delay ~strength =
  let s1 = systematic_sigma t ~delay ~strength and s2 = random_sigma t in
  Float.sqrt ((s1 *. s1) +. (s2 *. s2))

let delay_moments t ~delay ~strength =
  let s = sigma t ~delay ~strength in
  Numerics.Clark.moments ~mean:delay ~var:(s *. s)

(* The paper's coupling constant c in Δσ ≈ c·Δμ (§4.4): how much an arc's
   sigma moves when its mean moves. We use the systematic coefficient at the
   reference size, "equal to those assumed to relate mean delay through a
   gate to its variance". *)
let coupling t = t.systematic

let pp ppf t =
  Fmt.pf ppf "variation(k_sys=%.3f, k_rand=%.3f, tau=%.1f)" t.systematic
    t.random_floor t.tau_ref

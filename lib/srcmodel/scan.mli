(** Per-file fact extraction: one syntactic pass over a parsed source that
    records, for every top-level binding, the mutable-state operations it
    performs, the calls it makes, the [Domain.spawn] regions it opens — and,
    for statflow, the heap allocations, raise sites, resource acquisitions,
    partial stdlib calls, and impure (order/clock/PRNG) operations in it.

    The pass is context-sensitive in several dimensions the later phases
    consume:

    - {b spawn depth} — how many [Domain.spawn (fun () -> ...)] closures
      enclose the operation. Depth [> 0] means the code runs on a spawned
      domain whenever the spawn site executes.
    - {b guard} — whether the operation sits lexically inside a
      [Mutex.protect _ (fun () -> ...)] thunk. Guarded writes are safe; a
      call made under guard marks its edge, so callees reached {e only}
      through guarded edges inherit protection (the [record_locked]
      convention in [lib/obs/span.ml]).
    - {b protect} — whether the operation sits inside a [Fun.protect] thunk
      (or a [try] body, whose raises are caught locally). A raise under
      protection cannot skip a release; statflow's EXC001 keys on this.
    - {b sorted} — whether the expression's value flows into a
      [List.sort]-family sink (directly, via [|>], or via [@@]). An
      order-sensitive [Hashtbl.fold] whose result is immediately sorted is
      deterministic again; statflow's DET001 keys on this.
    - {b loop} — inside a for/while body or a non-top [fun] literal (an
      iterator callback): an allocation here may execute many times per
      call of the enclosing binding.
    - {b scope origin} — where a written location was allocated:
      fresh mutable allocation in this binding (safe unless it crosses a
      spawn boundary), [Domain.DLS.get] result (domain-local by
      construction), an ordinary pattern binding (per-invocation view;
      aliasing is out of scope, see DESIGN.md §12), a free variable
      (resolved against the module's top level later), or a qualified path
      (another module's state). *)

type mutable_kind = Ref | Field | Array_slot | Bytes_slot | Container

type origin =
  | Local of { kind : mutable_kind option; spawn_depth : int }
      (** let-bound to a syntactically fresh mutable allocation *)
  | Dls  (** let-bound to [Domain.DLS.get _] *)
  | Binding  (** pattern/parameter binding — per-invocation, alias-blind *)

type target =
  | Var of string * origin  (** ident resolved in the local scope *)
  | Free of string  (** unqualified ident not in scope: module top level *)
  | Path of string list  (** qualified [M.x] *)
  | Complex  (** write through a non-ident base; not tracked *)

type write = {
  w_kind : mutable_kind;
  w_target : target;
  w_line : int;
  w_spawn : int;  (** spawn depth at the write site *)
  w_guarded : bool;
}

type call = {
  c_path : string list;  (** flattened longident as written *)
  c_spawn : int;
  c_guarded : bool;
  c_protected : bool;  (** made inside a [Fun.protect] thunk or [try] body *)
}

type atomic_op = {
  a_side : [ `Get | `Set ];
  a_target : string;  (** syntactic rendering of the atomic location *)
  a_line : int;
  a_spawn : int;
  a_guarded : bool;
}

type dls_new = { d_line : int; d_spawn : int }

type alloc_kind =
  | Construct of string
      (** tuple / record / variant payload / list cons / array literal; the
          string names the constructor for the message *)
  | Closure  (** a [fun] literal in expression position *)
  | Builder of string
      (** a stdlib allocator by name, e.g. ["Array.make"] or ["List.map"] *)

type alloc = {
  h_kind : alloc_kind;
  h_line : int;
  h_loop : bool;  (** may execute many times per call (loop / callback) *)
}

type raise_site = {
  r_fn : string;  (** [raise], [failwith], [invalid_arg], ... *)
  r_line : int;
  r_protected : bool;  (** inside [Fun.protect] / [try]: cannot skip release *)
}

type acquire = {
  q_what : string;  (** [open_in], [Unix.openfile], [Mutex.lock], ... *)
  q_line : int;
}

type partial_call = {
  p_fn : string;  (** [List.hd], [Option.get], [Hashtbl.find], ... *)
  p_line : int;
}

type impure_kind =
  | Hash_order of { sorted : bool }
      (** [Hashtbl.fold]/[iter]/[to_seq]; [sorted] when the value flows
          straight into a sort sink *)
  | Clock  (** [Sys.time], [Unix.gettimeofday], ... *)
  | Rand  (** ambient [Random.*] (not [Random.State]) *)

type impure = { i_kind : impure_kind; i_what : string; i_line : int }

type binding = {
  b_name : string;  (** path inside the module, e.g. ["run"] or ["Sub.run"] *)
  b_line : int;
  b_is_function : bool;
      (** syntactically a [fun]: statrace propagates reachability only
          through these — a non-function binding's body runs once, at module
          init, on the loading domain. statflow also propagates through
          value bindings (closure tables run when invoked, not when built) *)
  b_alloc : mutable_kind option;
      (** for top-level [let x = ref ...] and friends: the module-global
          mutable state free-variable writes resolve to *)
  b_spawns : int list;  (** lines of [Domain.spawn] sites in this binding *)
  b_writes : write list;
  b_calls : call list;
  b_atomics : atomic_op list;
  b_dls_news : dls_new list;
  b_allocs : alloc list;
  b_raises : raise_site list;
  b_acquires : acquire list;
  b_partials : partial_call list;
  b_impures : impure list;
  b_float_ret : bool;
      (** tail expression is float arithmetic: the result boxes at every
          out-of-inline call site (heuristic, Info-grade) *)
}

type file_facts = { source : Source.t; bindings : binding list }

val file : Source.t -> file_facts

val last2 : string list -> (string * string) option
(** Last two components of a path, for suffix dispatch. *)

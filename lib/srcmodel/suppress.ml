(* The allowlist pass both analyzers run after classification: source
   pragmas first (this tool's namespace only), then allow-file entries, then
   staleness of the allowlist itself — a suppression that bites nothing is a
   finding (the tool's [stale_code]), because it means either the underlying
   issue was fixed and the annotation lingers, or the annotation never
   covered what its author believed. *)

let severity_of code =
  match Lint.Rule.find code with
  | Some m -> m.Lint.Rule.severity
  | None -> Diag.Severity.Warning

let finding ~code ~file ~line ?hint fmt =
  Fmt.kstr
    (fun message ->
      Diag.make ~code ~severity:(severity_of code)
        ~loc:(Diag.File { file; line })
        ?hint message)
    fmt

let has_suffix ~suffix s =
  let ls = String.length s and lf = String.length suffix in
  lf <= ls && String.sub s (ls - lf) lf = suffix

type result = { kept : Diag.t list; suppressed : int; stale : Diag.t list }

let apply ~(tool : Tool.t) ~(sources : Source.t list)
    ~(allow : Allow.entry list) diags =
  let used_pragmas : (string * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let used_allows : (string * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let source_for file =
    List.find_opt (fun (s : Source.t) -> s.Source.path = file) sources
  in
  let suppressed = ref 0 in
  let kept =
    List.filter
      (fun (d : Diag.t) ->
        match d.Diag.location with
        | Diag.File { file; line } ->
            let by_pragma =
              match source_for file with
              | Some src -> (
                  match Source.pragma_for src ~tool ~line with
                  | Some (pline, _) ->
                      Hashtbl.replace used_pragmas (file, pline) ();
                      true
                  | None -> false)
              | None -> false
            in
            let by_allow =
              (not by_pragma)
              && List.exists
                   (fun (a : Allow.entry) ->
                     if
                       a.Allow.al_code = d.Diag.code
                       && has_suffix ~suffix:a.Allow.al_file file
                       && (a.Allow.al_line = 0 || a.Allow.al_line = line)
                     then begin
                       Hashtbl.replace used_allows a.Allow.al_origin ();
                       true
                     end
                     else false)
                   allow
            in
            if by_pragma || by_allow then begin
              incr suppressed;
              false
            end
            else true
        | _ -> true)
      diags
  in
  let stale =
    List.concat_map
      (fun (s : Source.t) ->
        List.filter_map
          (fun (line, _) ->
            if Hashtbl.mem used_pragmas (s.Source.path, line) then None
            else
              Some
                (finding ~code:tool.Tool.stale_code ~file:s.Source.path ~line
                   ~hint:
                     "delete the pragma, or re-point it at the line it is \
                      meant to cover"
                   "stale %s pragma: it suppresses no finding" tool.Tool.name))
          (Source.pragmas_for_tool s ~tool))
      sources
    @ List.filter_map
        (fun (a : Allow.entry) ->
          if Hashtbl.mem used_allows a.Allow.al_origin then None
          else
            let file, line = a.Allow.al_origin in
            Some
              (finding ~code:tool.Tool.stale_code ~file ~line
                 ~hint:"delete the entry, or fix its CODE PATH:LINE to match"
                 "stale allow-file entry: %s %s%s suppresses no finding"
                 a.Allow.al_code a.Allow.al_file
                 (if a.Allow.al_line = 0 then ""
                  else Printf.sprintf ":%d" a.Allow.al_line)))
        allow
  in
  { kept; suppressed = !suppressed; stale }

(* The extraction pass. One hand-rolled recursion over [Parsetree]
   expressions (compiler-libs 5.1 layout) threading an immutable context —
   scope map, spawn depth, guard/protect/sorted/loop flags — and appending
   facts to the current binding's accumulator. A manual walk, rather than
   [Ast_iterator], keeps the scope save/restore discipline explicit: every
   construct that binds names extends the map for exactly its own subtree.

   The pass serves two analyzers. statrace consumes the mutable-state facts
   (writes, atomics, spawns, DLS); statflow consumes the allocation,
   raise/resource, partial-call and impurity facts. Both share the call
   facts the call graph is built from. *)

open Parsetree

type mutable_kind = Ref | Field | Array_slot | Bytes_slot | Container

type origin =
  | Local of { kind : mutable_kind option; spawn_depth : int }
  | Dls
  | Binding

type target =
  | Var of string * origin
  | Free of string
  | Path of string list
  | Complex

type write = {
  w_kind : mutable_kind;
  w_target : target;
  w_line : int;
  w_spawn : int;
  w_guarded : bool;
}

type call = {
  c_path : string list;
  c_spawn : int;
  c_guarded : bool;
  c_protected : bool;
}

type atomic_op = {
  a_side : [ `Get | `Set ];
  a_target : string;
  a_line : int;
  a_spawn : int;
  a_guarded : bool;
}

type dls_new = { d_line : int; d_spawn : int }

(* ---- statflow facts ------------------------------------------------------ *)

type alloc_kind =
  | Construct of string  (* tuple/record/variant/cons/array literal *)
  | Closure  (* a [fun] literal in expression position *)
  | Builder of string  (* a named stdlib allocator, e.g. "Array.make" *)

type alloc = { h_kind : alloc_kind; h_line : int; h_loop : bool }
type raise_site = { r_fn : string; r_line : int; r_protected : bool }
type acquire = { q_what : string; q_line : int }
type partial_call = { p_fn : string; p_line : int }
type impure_kind = Hash_order of { sorted : bool } | Clock | Rand
type impure = { i_kind : impure_kind; i_what : string; i_line : int }

type binding = {
  b_name : string;
  b_line : int;
  b_is_function : bool;
  b_alloc : mutable_kind option;
  b_spawns : int list;
  b_writes : write list;
  b_calls : call list;
  b_atomics : atomic_op list;
  b_dls_news : dls_new list;
  b_allocs : alloc list;
  b_raises : raise_site list;
  b_acquires : acquire list;
  b_partials : partial_call list;
  b_impures : impure list;
  b_float_ret : bool;
}

type file_facts = { source : Source.t; bindings : binding list }

module SMap = Map.Make (String)

type ctx = {
  scope : origin SMap.t;
  spawn : int;
  guard : bool;  (* lexically inside a [Mutex.protect] thunk *)
  protect : bool;  (* inside a [Fun.protect] thunk or a [try] body *)
  sorted : bool;  (* value flows into a [List.sort]-family sink *)
  loop : bool;  (* inside a for/while body or a known-iterator callback *)
}

(* Mutable accumulator for the binding currently being walked. *)
type acc = {
  mutable spawns : int list;
  mutable writes : write list;
  mutable calls : call list;
  mutable atomics : atomic_op list;
  mutable dls_news : dls_new list;
  mutable allocs : alloc list;
  mutable raises : raise_site list;
  mutable acquires : acquire list;
  mutable partials : partial_call list;
  mutable impures : impure list;
}

let fresh_acc () =
  {
    spawns = [];
    writes = [];
    calls = [];
    atomics = [];
    dls_news = [];
    allocs = [];
    raises = [];
    acquires = [];
    partials = [];
    impures = [];
  }

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply (a, _) -> flatten_lid a

let last2 = function
  | [] | [ _ ] -> None
  | path ->
      let arr = Array.of_list path in
      let n = Array.length arr in
      Some (arr.(n - 2), arr.(n - 1))

let line_of e = e.pexp_loc.Location.loc_start.Lexing.pos_lnum

(* ---- pattern variables --------------------------------------------------- *)

let rec pat_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (sub, { txt; _ }) -> txt :: pat_vars sub
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pat_vars ps
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) -> pat_vars p
  | Ppat_record (fields, _) -> List.concat_map (fun (_, p) -> pat_vars p) fields
  | Ppat_or (a, b) -> pat_vars a @ pat_vars b
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_exception p | Ppat_open (_, p)
    ->
      pat_vars p
  | _ -> []

let bind_pat origin ctx p =
  List.fold_left
    (fun scope v -> SMap.add v origin scope)
    ctx.scope (pat_vars p)
  |> fun scope -> { ctx with scope }

(* ---- syntactic classification -------------------------------------------- *)

(* Does this RHS syntactically allocate fresh mutable state? *)
let rec alloc_of_rhs e =
  match e.pexp_desc with
  | Pexp_array _ -> `Alloc Array_slot
  | Pexp_record _ -> `Alloc Field
  | Pexp_constraint (e, _) | Pexp_open (_, e) | Pexp_newtype (_, e) ->
      alloc_of_rhs e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match flatten_lid txt with
      | [ "ref" ] | [ "Stdlib"; "ref" ] -> `Alloc Ref
      | path when last2 path = Some ("DLS", "get") -> `Dls
      | path -> (
          match last2 path with
          | Some
              ( "Array",
                ( "make" | "init" | "copy" | "create_float" | "make_matrix"
                | "of_list" | "append" | "sub" | "map" | "mapi" | "concat" ) )
            ->
              `Alloc Array_slot
          | Some
              ( "Bytes",
                ("create" | "make" | "copy" | "of_string" | "init" | "sub") )
            ->
              `Alloc Bytes_slot
          | Some ("Hashtbl", ("create" | "copy"))
          | Some (("Buffer" | "Queue" | "Stack"), "create") ->
              `Alloc Container
          | _ -> `Other))
  | _ -> `Other

let origin_of_rhs ctx e =
  match alloc_of_rhs e with
  | `Alloc kind -> Local { kind = Some kind; spawn_depth = ctx.spawn }
  | `Dls -> Dls
  | `Other -> Binding

let target_of ctx e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident name; _ } -> (
      match SMap.find_opt name ctx.scope with
      | Some o -> Var (name, o)
      | None -> Free name)
  | Pexp_ident { txt; _ } -> Path (flatten_lid txt)
  | _ -> Complex

(* A stable rendering of simple lvalues ([counter], [t.cell], [M.flag]) for
   PAR005's same-location get/set pairing; anything more complex renders
   uniquely per line so it can never pair up. *)
let rec render_simple e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> String.concat "." (flatten_lid txt)
  | Pexp_field (base, { txt; _ }) ->
      render_simple base ^ "." ^ String.concat "." (flatten_lid txt)
  | _ -> Printf.sprintf "<expr@%d>" (line_of e)

(* Mutating stdlib entry points: (module, function) -> kind and the index of
   the mutated argument. *)
let mutator_table =
  [
    (("Array", "set"), (Array_slot, 0));
    (("Array", "unsafe_set"), (Array_slot, 0));
    (("Array", "fill"), (Array_slot, 0));
    (("Array", "sort"), (Array_slot, 1));
    (("Array", "fast_sort"), (Array_slot, 1));
    (("Array", "stable_sort"), (Array_slot, 1));
    (("Array", "blit"), (Array_slot, 2));
    (("Bytes", "set"), (Bytes_slot, 0));
    (("Bytes", "unsafe_set"), (Bytes_slot, 0));
    (("Bytes", "fill"), (Bytes_slot, 0));
    (("Bytes", "blit"), (Bytes_slot, 2));
    (("Bytes", "blit_string"), (Bytes_slot, 2));
    (("Hashtbl", "add"), (Container, 0));
    (("Hashtbl", "replace"), (Container, 0));
    (("Hashtbl", "remove"), (Container, 0));
    (("Hashtbl", "reset"), (Container, 0));
    (("Hashtbl", "clear"), (Container, 0));
    (("Hashtbl", "filter_map_inplace"), (Container, 1));
    (("Buffer", "add_char"), (Container, 0));
    (("Buffer", "add_string"), (Container, 0));
    (("Buffer", "add_bytes"), (Container, 0));
    (("Buffer", "add_buffer"), (Container, 0));
    (("Buffer", "add_substring"), (Container, 0));
    (("Buffer", "clear"), (Container, 0));
    (("Buffer", "reset"), (Container, 0));
    (("Buffer", "truncate"), (Container, 0));
    (("Queue", "push"), (Container, 1));
    (("Queue", "add"), (Container, 1));
    (("Queue", "pop"), (Container, 0));
    (("Queue", "take"), (Container, 0));
    (("Queue", "clear"), (Container, 0));
    (("Stack", "push"), (Container, 1));
    (("Stack", "pop"), (Container, 0));
    (("Stack", "clear"), (Container, 0));
  ]

(* Stdlib entry points that allocate their result on every call. The table
   is deliberately coarse — it names the builders that show up on SSTA hot
   paths, not the whole stdlib. *)
let builder_fns =
  [
    ( "Array",
      [
        "make"; "init"; "copy"; "create_float"; "make_matrix"; "of_list";
        "to_list"; "append"; "sub"; "map"; "mapi"; "map2"; "concat"; "of_seq";
      ] );
    ( "List",
      [
        "map"; "mapi"; "map2"; "init"; "filter"; "filter_map"; "concat";
        "concat_map"; "append"; "rev"; "rev_append"; "rev_map"; "of_seq";
        "flatten"; "combine"; "split"; "merge"; "sort"; "sort_uniq";
        "stable_sort"; "fast_sort";
      ] );
    ( "Bytes",
      [ "create"; "make"; "copy"; "of_string"; "to_string"; "init"; "sub";
        "cat" ] );
    ( "String",
      [ "make"; "init"; "concat"; "sub"; "cat"; "split_on_char"; "map";
        "mapi" ] );
    ("Hashtbl", [ "create"; "copy" ]);
    ("Buffer", [ "create"; "contents"; "to_bytes" ]);
    ("Queue", [ "create" ]);
    ("Stack", [ "create" ]);
    ("Printf", [ "sprintf" ]);
    ("Format", [ "asprintf" ]);
    ("Fmt", [ "str" ]);
  ]

let builder_of path =
  match path with
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref"
  | [ "^" ] | [ "Stdlib"; "^" ] -> Some "(^)"
  | [ "@" ] | [ "Stdlib"; "@" ] -> Some "(@)"
  | _ -> (
      match last2 path with
      | Some (m, f) -> (
          match List.assoc_opt m builder_fns with
          | Some fns when List.mem f fns -> Some (m ^ "." ^ f)
          | _ -> None)
      | None -> None)

let raise_fn = function
  | [ (("raise" | "raise_notrace" | "failwith" | "invalid_arg") as f) ]
  | [ "Stdlib"; (("raise" | "raise_notrace" | "failwith" | "invalid_arg") as f) ]
    ->
      Some f
  | path -> (
      match last2 path with
      | Some ("Fmt", (("failwith" | "invalid_arg") as f)) -> Some ("Fmt." ^ f)
      | _ -> None)

let acquire_of path =
  match path with
  | [ f ] | [ "Stdlib"; f ]
    when List.mem f
           [
             "open_in"; "open_in_bin"; "open_in_gen"; "open_out";
             "open_out_bin"; "open_out_gen";
           ] ->
      Some f
  | path -> (
      match last2 path with
      | Some ("Mutex", "lock") -> Some "Mutex.lock"
      | Some ("Unix", "openfile") -> Some "Unix.openfile"
      | _ -> None)

let partial_of path =
  match last2 path with
  | Some ("List", (("hd" | "tl" | "nth" | "find") as f)) -> Some ("List." ^ f)
  | Some ("Option", "get") -> Some "Option.get"
  | Some ("Hashtbl", "find") -> Some "Hashtbl.find"
  | _ -> None

(* Ambient wall-clock and PRNG state; [Random.State] and the project's own
   seeded [Numerics.Rng] never match. *)
let impure_of path =
  match last2 path with
  | Some ("Hashtbl", (("fold" | "iter" | "to_seq") as f)) ->
      Some (`Hash, "Hashtbl." ^ f)
  | Some ("Sys", "time") -> Some (`Clock, "Sys.time")
  | Some ("Unix", (("gettimeofday" | "time" | "times") as f)) ->
      Some (`Clock, "Unix." ^ f)
  | Some ("Random", f) when not (List.mem "State" path) ->
      Some (`Rand, "Random." ^ f)
  | _ -> None

(* Higher-order stdlib entry points whose callback runs once per element:
   a fun literal passed to one of these executes in an iteration context. *)
let iterator_fns =
  [
    ( "List",
      [
        "iter"; "iteri"; "iter2"; "map"; "mapi"; "map2"; "rev_map"; "init";
        "fold_left"; "fold_right"; "fold_left_map"; "fold_left2"; "filter";
        "filter_map"; "concat_map"; "for_all"; "exists"; "for_all2";
        "exists2"; "find"; "find_opt"; "find_map"; "partition"; "sort";
        "sort_uniq"; "stable_sort"; "fast_sort"; "merge";
      ] );
    ( "Array",
      [
        "iter"; "iteri"; "iter2"; "map"; "mapi"; "map2"; "init";
        "fold_left"; "fold_right"; "for_all"; "exists"; "find_opt"; "sort";
        "stable_sort"; "fast_sort";
      ] );
    ( "Seq",
      [ "iter"; "map"; "filter"; "filter_map"; "fold_left"; "init";
        "for_all"; "exists" ] );
    ("Hashtbl", [ "iter"; "fold"; "filter_map_inplace" ]);
  ]

let is_iterator path =
  match last2 path with
  | Some (m, f) -> (
      match List.assoc_opt m iterator_fns with
      | Some fns -> List.mem f fns
      | None -> false)
  | None -> false

let sort_sink_path path =
  match last2 path with
  | Some
      (("List" | "Array"), ("sort" | "sort_uniq" | "stable_sort" | "fast_sort"))
    ->
      true
  | _ -> false

(* Is this expression a [List.sort]-family function (possibly already
   applied to its comparator), i.e. a sink that makes an unordered fold
   upstream of it order-insensitive again? *)
let rec is_sort_sink e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> sort_sink_path (flatten_lid txt)
  | Pexp_apply (f, _) -> is_sort_sink f
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> is_sort_sink e
  | _ -> false

(* ---- the walk ------------------------------------------------------------ *)

let walk acc =
  let record_write ctx ~kind ~line target =
    acc.writes <-
      {
        w_kind = kind;
        w_target = target;
        w_line = line;
        w_spawn = ctx.spawn;
        w_guarded = ctx.guard;
      }
      :: acc.writes
  in
  let record_call ctx path =
    acc.calls <-
      {
        c_path = path;
        c_spawn = ctx.spawn;
        c_guarded = ctx.guard;
        c_protected = ctx.protect;
      }
      :: acc.calls
  in
  let record_atomic ctx ~side ~line target_expr =
    acc.atomics <-
      {
        a_side = side;
        a_target = render_simple target_expr;
        a_line = line;
        a_spawn = ctx.spawn;
        a_guarded = ctx.guard;
      }
      :: acc.atomics
  in
  let record_alloc ctx ~kind ~line =
    acc.allocs <-
      { h_kind = kind; h_line = line; h_loop = ctx.loop } :: acc.allocs
  in
  let rec expr ctx e =
    let line = line_of e in
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> record_call ctx (flatten_lid txt)
    | Pexp_constant _ | Pexp_unreachable | Pexp_new _ | Pexp_extension _ -> ()
    | Pexp_let (_, vbs, body) ->
        List.iter (fun vb -> expr ctx vb.pvb_expr) vbs;
        let ctx' =
          List.fold_left
            (fun c vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } ->
                  {
                    c with
                    scope =
                      SMap.add txt (origin_of_rhs ctx vb.pvb_expr) c.scope;
                  }
              | _ -> bind_pat Binding c vb.pvb_pat)
            ctx vbs
        in
        expr ctx' body
    | Pexp_fun _ | Pexp_function _ ->
        (* one runtime closure however many curried params the chain has *)
        record_alloc ctx ~kind:Closure ~line;
        peel ctx e
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
        apply ctx ~line (flatten_lid txt) args
    | Pexp_apply (f, args) ->
        expr ctx f;
        List.iter (fun (_, a) -> expr ctx a) args
    | Pexp_try (scrut, cases) ->
        (* raises in the scrutinee are caught right here *)
        expr { ctx with protect = true } scrut;
        List.iter (case ctx) cases
    | Pexp_match (scrut, cases) ->
        expr ctx scrut;
        List.iter (case ctx) cases
    | Pexp_tuple es ->
        record_alloc ctx ~kind:(Construct "tuple") ~line;
        List.iter (expr ctx) es
    | Pexp_array es ->
        record_alloc ctx ~kind:(Construct "array literal") ~line;
        List.iter (expr ctx) es
    | Pexp_construct ({ txt; _ }, eo) -> (
        match (flatten_lid txt, eo) with
        | _, None -> ()
        | [ "::" ], Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ } ->
            (* one cons cell, not a cons plus a tuple *)
            record_alloc ctx ~kind:(Construct "list cons") ~line;
            expr ctx hd;
            expr ctx tl
        | path, Some arg ->
            record_alloc ctx ~kind:(Construct (String.concat "." path)) ~line;
            expr ctx arg)
    | Pexp_variant (tag, eo) -> (
        match eo with
        | None -> ()
        | Some arg ->
            record_alloc ctx ~kind:(Construct ("`" ^ tag)) ~line;
            expr ctx arg)
    | Pexp_record (fields, base) ->
        record_alloc ctx ~kind:(Construct "record") ~line;
        List.iter (fun (_, v) -> expr ctx v) fields;
        Option.iter (expr ctx) base
    | Pexp_field (base, _) -> expr ctx base
    | Pexp_setfield (base, _, v) ->
        record_write ctx ~kind:Field ~line (target_of ctx base);
        expr ctx base;
        expr ctx v
    | Pexp_ifthenelse (c, t, eo) ->
        expr ctx c;
        expr ctx t;
        Option.iter (expr ctx) eo
    | Pexp_sequence (a, b) ->
        expr ctx a;
        expr ctx b
    | Pexp_while (c, body) ->
        expr ctx c;
        expr { ctx with loop = true } body
    | Pexp_for (pat, lo, hi, _, body) ->
        expr ctx lo;
        expr ctx hi;
        expr (bind_pat Binding { ctx with loop = true } pat) body
    | Pexp_constraint (e, _)
    | Pexp_coerce (e, _, _)
    | Pexp_assert e
    | Pexp_lazy e
    | Pexp_poly (e, _)
    | Pexp_newtype (_, e)
    | Pexp_open (_, e)
    | Pexp_send (e, _)
    | Pexp_setinstvar (_, e) ->
        expr ctx e
    | Pexp_override fields -> List.iter (fun (_, v) -> expr ctx v) fields
    | Pexp_letmodule (_, me, body) ->
        module_expr ctx me;
        expr ctx body
    | Pexp_letexception (_, body) -> expr ctx body
    | Pexp_pack me -> module_expr ctx me
    | Pexp_letop { let_; ands; body } ->
        expr ctx let_.pbop_exp;
        List.iter (fun b -> expr ctx b.pbop_exp) ands;
        let ctx' =
          List.fold_left
            (fun c b -> bind_pat Binding c b.pbop_pat)
            (bind_pat Binding ctx let_.pbop_pat)
            ands
        in
        expr ctx' body
    | Pexp_object _ -> ()
  and case ctx c =
    let ctx' = bind_pat Binding ctx c.pc_lhs in
    Option.iter (expr ctx') c.pc_guard;
    expr ctx' c.pc_rhs
  (* Walk a fun chain's params and body without recording a closure for the
     chain itself — used for the binding's own leading funs (the function,
     not an allocation at its call sites) and after a closure has already
     been recorded once for the whole chain. *)
  and peel ctx e =
    match e.pexp_desc with
    | Pexp_fun (_, default, pat, body) ->
        Option.iter (expr ctx) default;
        peel (bind_pat Binding ctx pat) body
    | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> peel ctx body
    | Pexp_function cases -> List.iter (case ctx) cases
    | _ -> expr ctx e
  and apply ctx ~line path args =
    let args' = List.map snd args in
    let nth i = List.nth_opt args' i in
    (* statflow facts piggyback on every application, whatever the
       parallel-analysis dispatch below does with it *)
    Option.iter
      (fun b -> record_alloc ctx ~kind:(Builder b) ~line)
      (builder_of path);
    Option.iter
      (fun f ->
        acc.raises <-
          { r_fn = f; r_line = line; r_protected = ctx.protect } :: acc.raises)
      (raise_fn path);
    Option.iter
      (fun q -> acc.acquires <- { q_what = q; q_line = line } :: acc.acquires)
      (acquire_of path);
    Option.iter
      (fun p -> acc.partials <- { p_fn = p; p_line = line } :: acc.partials)
      (partial_of path);
    Option.iter
      (fun (k, what) ->
        let i_kind =
          match k with
          | `Hash -> Hash_order { sorted = ctx.sorted }
          | `Clock -> Clock
          | `Rand -> Rand
        in
        acc.impures <- { i_kind; i_what = what; i_line = line } :: acc.impures)
      (impure_of path);
    match (path, last2 path) with
    | _, Some ("Domain", "spawn") ->
        acc.spawns <- line :: acc.spawns;
        (match args' with
        | [ { pexp_desc = Pexp_fun (_, _, pat, body); _ } ] ->
            expr (bind_pat Binding { ctx with spawn = ctx.spawn + 1 } pat) body
        | [ { pexp_desc = Pexp_ident { txt; _ }; _ } ] ->
            record_call { ctx with spawn = ctx.spawn + 1 } (flatten_lid txt)
        | _ -> List.iter (expr { ctx with spawn = ctx.spawn + 1 }) args')
    | _, Some ("Mutex", "protect") -> (
        match args' with
        | [ m; { pexp_desc = Pexp_fun (_, _, pat, body); _ } ] ->
            expr ctx m;
            expr (bind_pat Binding { ctx with guard = true } pat) body
        | [ m; { pexp_desc = Pexp_ident { txt; _ }; _ } ] ->
            expr ctx m;
            record_call { ctx with guard = true } (flatten_lid txt)
        | _ -> List.iter (expr ctx) args')
    | _, Some ("Fun", "protect") ->
        (* both the body thunk and ~finally run under the combinator: a
           raise inside either cannot skip the release *)
        List.iter
          (fun a ->
            match a.pexp_desc with
            | Pexp_fun (_, _, pat, body) ->
                expr (bind_pat Binding { ctx with protect = true } pat) body
            | Pexp_ident { txt; _ } ->
                record_call { ctx with protect = true } (flatten_lid txt)
            | _ -> expr ctx a)
          args'
    | _, Some ("DLS", "new_key") when List.mem "Domain" path ->
        acc.dls_news <- { d_line = line; d_spawn = ctx.spawn } :: acc.dls_news;
        List.iter (expr ctx) args'
    | _, Some ("Atomic", ("get" | "set")) ->
        (match nth 0 with
        | Some target ->
            let side =
              if last2 path = Some ("Atomic", "get") then `Get else `Set
            in
            record_atomic ctx ~side ~line target
        | None -> ());
        List.iter (expr_skip_target ctx) args'
    | ( ([ "incr" ] | [ "decr" ] | [ "Stdlib"; "incr" ] | [ "Stdlib"; "decr" ]),
        _ ) ->
        (match nth 0 with
        | Some t -> record_write ctx ~kind:Ref ~line (target_of ctx t)
        | None -> ());
        List.iter (expr_skip_target ctx) args'
    | ([ ":=" ] | [ "Stdlib"; ":=" ]), _ ->
        (match nth 0 with
        | Some t -> record_write ctx ~kind:Ref ~line (target_of ctx t)
        | None -> ());
        List.iter (expr_skip_target ctx) args'
    | ([ "|>" ] | [ "Stdlib"; "|>" ]), _ -> (
        match args' with
        | [ x; f ] ->
            expr (if is_sort_sink f then { ctx with sorted = true } else ctx) x;
            expr ctx f
        | _ -> List.iter (expr ctx) args')
    | ([ "@@" ] | [ "Stdlib"; "@@" ]), _ -> (
        match args' with
        | [ f; x ] ->
            expr ctx f;
            expr (if is_sort_sink f then { ctx with sorted = true } else ctx) x
        | _ -> List.iter (expr ctx) args')
    | _, _ when sort_sink_path path ->
        record_call ctx path;
        List.iter (callback_arg { ctx with sorted = true } ~iter:true) args'
    | _, Some key when List.mem_assoc key mutator_table ->
        let kind, target_idx = List.assoc key mutator_table in
        (match nth target_idx with
        | Some t -> record_write ctx ~kind ~line (target_of ctx t)
        | None -> ());
        List.iter (expr_skip_target ctx) args'
    | _ ->
        record_call ctx path;
        List.iter (callback_arg ctx ~iter:(is_iterator path)) args'
  (* A fun literal passed to a known iterator: the closure itself allocates
     once at the call site, but its body runs per element — record the
     closure with the surrounding context and walk the body as a loop. *)
  and callback_arg ctx ~iter a =
    match a.pexp_desc with
    | (Pexp_fun _ | Pexp_function _) when iter ->
        record_alloc ctx ~kind:Closure ~line:(line_of a);
        peel { ctx with loop = true } a
    | _ -> expr ctx a
  (* Walk an argument that served as a write/atomic target: its own subtree
     still gets scanned (nested calls, index expressions), but a bare ident
     does not additionally register as a "call" — a written-to location is
     not an entry into the call graph. *)
  and expr_skip_target ctx e =
    match e.pexp_desc with Pexp_ident _ -> () | _ -> expr ctx e
  and module_expr ctx me =
    match me.pmod_desc with
    | Pmod_structure items ->
        List.iter
          (fun item ->
            match item.pstr_desc with
            | Pstr_value (_, vbs) ->
                List.iter (fun vb -> expr ctx vb.pvb_expr) vbs
            | Pstr_eval (e, _) -> expr ctx e
            | _ -> ())
          items
    | Pmod_constraint (me, _) | Pmod_functor (_, me) -> module_expr ctx me
    | _ -> ()
  in
  (expr, peel)

(* ---- top-level structure ------------------------------------------------- *)

let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) | Pexp_constraint (e, _) -> is_function e
  | _ -> false

(* Boxed-float-return heuristic: the function's tail expression is float
   arithmetic, so every out-of-inline call boxes its result. *)
let float_op = function
  | [ ("+." | "-." | "*." | "/." | "**" | "sqrt" | "exp" | "log" | "abs_float")
    ]
  | [ "Stdlib";
      ("+." | "-." | "*." | "/." | "**" | "sqrt" | "exp" | "log" | "abs_float")
    ] ->
      true
  | path -> (
      match last2 path with Some ("Float", _) -> true | _ -> false)

let rec returns_float_op e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      float_op (flatten_lid txt)
  | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) -> returns_float_op body
  | Pexp_constraint (body, _) | Pexp_open (_, body) -> returns_float_op body
  | Pexp_let (_, _, body) | Pexp_sequence (_, body) -> returns_float_op body
  | Pexp_ifthenelse (_, t, Some e) -> returns_float_op t || returns_float_op e
  | _ -> false

let empty_ctx =
  {
    scope = SMap.empty;
    spawn = 0;
    guard = false;
    protect = false;
    sorted = false;
    loop = false;
  }

let finish ~name ~line ~is_fn ~alloc ~float_ret acc =
  {
    b_name = name;
    b_line = line;
    b_is_function = is_fn;
    b_alloc = alloc;
    b_spawns = List.rev acc.spawns;
    b_writes = List.rev acc.writes;
    b_calls = List.rev acc.calls;
    b_atomics = List.rev acc.atomics;
    b_dls_news = List.rev acc.dls_news;
    b_allocs = List.rev acc.allocs;
    b_raises = List.rev acc.raises;
    b_acquires = List.rev acc.acquires;
    b_partials = List.rev acc.partials;
    b_impures = List.rev acc.impures;
    b_float_ret = float_ret;
  }

let binding_of_vb ~prefix vb =
  let acc = fresh_acc () in
  let is_fn = is_function vb.pvb_expr in
  let expr_w, peel_w = walk acc in
  (* a function binding's own leading fun chain is the function, not a
     closure allocation at call sites — peel it *)
  (if is_fn then peel_w else expr_w) empty_ctx vb.pvb_expr;
  let name =
    match pat_vars vb.pvb_pat with
    | v :: _ -> v
    | [] ->
        Printf.sprintf "_init_%d" vb.pvb_loc.Location.loc_start.Lexing.pos_lnum
  in
  finish
    ~name:(if prefix = "" then name else prefix ^ "." ^ name)
    ~line:vb.pvb_loc.Location.loc_start.Lexing.pos_lnum ~is_fn
    ~alloc:(match alloc_of_rhs vb.pvb_expr with `Alloc k -> Some k | _ -> None)
    ~float_ret:(is_fn && returns_float_op vb.pvb_expr)
    acc

let rec structure_bindings ~prefix items =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> List.map (binding_of_vb ~prefix) vbs
      | Pstr_eval (e, _) ->
          let acc = fresh_acc () in
          (fst (walk acc)) empty_ctx e;
          [
            finish
              ~name:
                (Printf.sprintf "%s_eval_%d"
                   (if prefix = "" then "" else prefix ^ ".")
                   item.pstr_loc.Location.loc_start.Lexing.pos_lnum)
              ~line:item.pstr_loc.Location.loc_start.Lexing.pos_lnum
              ~is_fn:false ~alloc:None ~float_ret:false acc;
          ]
      | Pstr_module mb -> module_bindings ~prefix mb
      | Pstr_recmodule mbs -> List.concat_map (module_bindings ~prefix) mbs
      | _ -> [])
    items

and module_bindings ~prefix mb =
  let sub = match mb.pmb_name.Location.txt with Some n -> n | None -> "_" in
  let prefix = if prefix = "" then sub else prefix ^ "." ^ sub in
  let rec of_mod me =
    match me.pmod_desc with
    | Pmod_structure items -> structure_bindings ~prefix items
    | Pmod_constraint (me, _) | Pmod_functor (_, me) -> of_mod me
    | _ -> []
  in
  of_mod mb.pmb_expr

let file (source : Source.t) =
  { source; bindings = structure_bindings ~prefix:"" source.Source.structure }

(* Source loading: compiler-libs parse + pragma scan. The pragma scanner
   works on the raw text rather than the AST's attribute/comment stream so
   it sees comments anywhere — including lines the parser attaches to no
   node at all — and so fixtures with planted findings need no special
   annotation syntax beyond an ordinary comment. Pragmas are scanned per
   tool ([(* statrace: safe … *)] vs [(* statflow: safe … *)]) so the two
   analyzers' allowlists never shadow each other. *)

type t = {
  path : string;
  module_name : string;
  structure : Parsetree.structure;
  pragmas : (string * int * string) list;
}

let module_name_of_path path =
  Filename.basename path |> Filename.remove_extension |> String.capitalize_ascii

let parse_error ~(tool : Tool.t) ~path ~line msg =
  Diag.errorf ~code:tool.Tool.parse_code
    ~loc:(Diag.File { file = path; line })
    ~hint:
      (tool.Tool.name
     ^ " analyzes source syntactically; the file must parse under the \
        project's own compiler version")
    "unparseable source file: %s" msg

(* A pragma line contains the full open-comment form and nothing after the
   close: [find_sub] locates "(* NAME: safe" and the line must end with
   "*)" (modulo trailing whitespace). Both conditions together keep lines
   that merely mention the pragma — help text, string literals, this very
   comment — from registering as suppressions. The reason is everything
   after the marker up to the comment close, dashes trimmed; an empty
   reason is accepted but discouraged. *)
let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let scan_pragmas ~tools text =
  let lines =
    String.split_on_char '\n' text |> List.mapi (fun i line -> (i + 1, line))
  in
  let ends_with_close line =
    let t = String.trim line in
    String.length t >= 2 && String.sub t (String.length t - 2) 2 = "*)"
  in
  let scan_tool (tool : Tool.t) =
    let marker = Tool.pragma_marker tool in
    List.filter_map
      (fun (n, line) ->
        if not (ends_with_close line) then None
        else
        match find_sub line marker with
        | None -> None
        | Some i ->
            let rest =
              String.sub line
                (i + String.length marker)
                (String.length line - i - String.length marker)
            in
            let rest =
              match find_sub rest "*)" with
              | Some j -> String.sub rest 0 j
              | None -> rest
            in
            let reason =
              String.trim rest
              |> fun s ->
              (* strip a leading em-dash / hyphen separator *)
              let s = String.trim s in
              let drop p s =
                if String.length s >= String.length p
                   && String.sub s 0 (String.length p) = p
                then
                  String.sub s (String.length p)
                    (String.length s - String.length p)
                else s
              in
              String.trim (drop "-" (drop "\xe2\x80\x94" s))
            in
            Some (tool.Tool.name, n, reason))
      lines
  in
  List.concat_map scan_tool tools

let of_string ~tool ?(tools = []) ~path text =
  let tools = if tools = [] then [ tool ] else tools in
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure ->
      Ok
        {
          path;
          module_name = module_name_of_path path;
          structure;
          pragmas = scan_pragmas ~tools text;
        }
  | exception exn ->
      let line =
        match exn with
        | Syntaxerr.Error e ->
            (Syntaxerr.location_of_error e).Location.loc_start.Lexing.pos_lnum
        | _ -> lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum
      in
      let msg =
        match exn with
        | Syntaxerr.Error _ -> "syntax error"
        | Failure m -> m
        | e -> Printexc.to_string e
      in
      Error (parse_error ~tool ~path ~line msg)

let load ~tool ?tools path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> of_string ~tool ?tools ~path text
  | exception Sys_error msg -> Error (parse_error ~tool ~path ~line:0 msg)

let rec ml_files_under dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.sort String.compare
      |> List.concat_map (fun entry ->
             let path = Filename.concat dir entry in
             if String.length entry > 0 && entry.[0] = '.' then []
             else if entry = "_build" then []
             else if Sys.is_directory path then ml_files_under path
             else if Filename.check_suffix entry ".ml" then [ path ]
             else [])
  | exception Sys_error _ -> []

let load_dirs ~tool ?tools roots =
  let files =
    List.concat_map
      (fun root ->
        if Sys.file_exists root && Sys.is_directory root then
          ml_files_under root
        else if Sys.file_exists root && Filename.check_suffix root ".ml" then
          [ root ]
        else [])
      roots
    |> List.sort_uniq String.compare
  in
  List.fold_left
    (fun (srcs, errs) path ->
      match load ~tool ?tools path with
      | Ok s -> (s :: srcs, errs)
      | Error d -> (srcs, d :: errs))
    ([], []) files
  |> fun (srcs, errs) -> (List.rev srcs, List.rev errs)

let pragmas_for_tool t ~(tool : Tool.t) =
  List.filter_map
    (fun (name, line, reason) ->
      if name = tool.Tool.name then Some (line, reason) else None)
    t.pragmas

let pragma_for t ~(tool : Tool.t) ~line =
  List.find_opt
    (fun (name, n, _) -> name = tool.Tool.name && (n = line || n = line - 1))
    t.pragmas
  |> Option.map (fun (_, n, reason) -> (n, reason))

(** Source loading for the source analyzers (statrace, statflow): read an
    [.ml] file, parse it with the compiler's own front end (compiler-libs
    [Parse]), and scan the raw text for [(* NAME: safe — reason *)]
    allowlist pragmas, one namespace per {!Tool.t}.

    The analyzers are purely syntactic — no typing pass — so anything that
    parses under the project's compiler version is analyzable, including
    planted fixtures that are never compiled. *)

type t = {
  path : string;  (** as given on the command line; used in diagnostics *)
  module_name : string;  (** capitalized basename, the module it compiles to *)
  structure : Parsetree.structure;
  pragmas : (string * int * string) list;
      (** [(tool, line, reason)] for every [NAME: safe] pragma, 1-based;
          only the tools passed at load time are scanned for *)
}

val of_string :
  tool:Tool.t -> ?tools:Tool.t list -> path:string -> string -> (t, Diag.t) result
(** Parse source text. Parse failures come back as a single Error diagnostic
    (code [tool.parse_code]) carrying the failing file/line. [tools] is the
    set of pragma namespaces to scan for; it defaults to [[tool]] — pass
    both analyzers' tools to share one parsed source set between them. *)

val load : tool:Tool.t -> ?tools:Tool.t list -> string -> (t, Diag.t) result
(** [of_string] over a file's contents; I/O errors are parse errors too. *)

val load_dirs :
  tool:Tool.t -> ?tools:Tool.t list -> string list -> t list * Diag.t list
(** Every [.ml] file under the given roots (recursive, [_build] and
    dot-directories skipped), sorted by path for deterministic output.
    Returns parsed sources and the diagnostics of unparseable ones. *)

val pragmas_for_tool : t -> tool:Tool.t -> (int * string) list
(** This tool's [(line, reason)] pragmas, for staleness accounting. *)

val pragma_for : t -> tool:Tool.t -> line:int -> (int * string) option
(** The pragma covering a finding at [line]: same line or the line above. *)

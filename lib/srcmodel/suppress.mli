(** The shared allowlist pass: source pragmas (this tool's namespace), then
    allow-file entries, then staleness of the allowlist itself. *)

type result = {
  kept : Diag.t list;  (** findings that survived suppression *)
  suppressed : int;
  stale : Diag.t list;
      (** one [tool.stale_code] finding per pragma or allow entry that
          suppressed nothing *)
}

val apply :
  tool:Tool.t ->
  sources:Source.t list ->
  allow:Allow.entry list ->
  Diag.t list ->
  result
(** Findings without a file location pass through untouched. A pragma
    suppresses a finding on its own line or the line below; an allow entry
    matches by code, path suffix, and line (0 = whole file). *)

val severity_of : string -> Diag.Severity.t
(** Catalogue severity for a code ([Warning] if unregistered) — shared so
    analyzer findings carry exactly what [statsize lint] would assign. *)

val finding :
  code:string ->
  file:string ->
  line:int ->
  ?hint:string ->
  ('a, Format.formatter, unit, Diag.t) format4 ->
  'a
(** Diagnostic constructor with catalogue severity and file/line location. *)

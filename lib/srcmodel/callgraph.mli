(** Module-level call graph and guarded reachability over it.

    Nodes are [(module, top-level binding)] pairs; an edge exists wherever a
    binding's body mentions an identifier that resolves to another top-level
    binding (mention, not just application — a function passed higher-order
    is reachable too). Resolution is purely syntactic: for a qualified path
    the rightmost component naming a known source module wins, with library
    namespace prefixes ([Core.Sizer.optimize] → [Sizer.optimize]) falling
    away naturally. Unresolvable paths (stdlib, external libraries) are
    dropped — the FFI blind spot DESIGN.md §12 documents.

    Reachability starts from the calls made by the given entry bindings and
    propagates a guard status per reached node: {!Guarded_only} when every
    path to it goes through a guarded edge, {!Unguarded} otherwise — the
    improvement lattice is [unreached → Guarded_only → Unguarded], monotone,
    and one unguarded path always demotes. What makes an edge "guarded" is a
    parameter: statrace keys on [Mutex.protect] call sites ([c_guarded]),
    statflow on [Fun.protect]/[try] regions ([c_protected]). *)

type status = Guarded_only | Unguarded

type t

val build : Scan.file_facts list -> t

val toplevel : t -> module_:string -> value:string -> Scan.binding list
(** Top-level bindings named [value] in files compiling to [module_]
    (several files of the same name merge). *)

val resolve :
  t -> current_module:string -> string list -> (string * Scan.binding) list
(** Resolve a flattened identifier path to candidate [(module, binding)]
    targets; [[]] when the path leaves the analyzed source set. *)

val compute :
  ?guard_of:(Scan.call -> bool) ->
  ?through_values:bool ->
  t ->
  entries:(string * Scan.binding) list ->
  unit
(** Run the guarded-reachability fixpoint from the given [(module, binding)]
    entry points. [guard_of] (default [c_guarded]) decides which call edges
    count as guarded. [through_values] (default [false]) also assigns
    statuses to — and continues through — non-function bindings: statrace
    leaves it off (a value binding's body ran once at module init, before
    any spawn), statflow turns it on (a closure table runs its payloads when
    the hot caller invokes them). Idempotent per [t]; one [t] holds one
    fixpoint, so analyzers with different parameters must each {!build}
    their own. *)

val status : t -> module_:string -> value:string -> status option
(** [None] = not reachable from any entry. *)

val statuses : t -> ((string * string) * status) list
(** All reached [(module, binding)] nodes with their statuses, sorted — for
    alloc-summary reporting and tests. *)

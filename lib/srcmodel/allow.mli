(** Allow-file entries: the out-of-source suppression channel, for findings
    in code the team cannot annotate (vendored files, generated code). *)

type entry = {
  al_code : string;
  al_file : string;  (** suffix-matched against finding paths *)
  al_line : int;  (** 0 = any line in the file *)
  al_origin : string * int;  (** allow-file path and line, for staleness *)
}

val parse : string -> (entry list, string) result
(** Lines of [CODE PATH[:LINE] optional reason]; [#] comments and blank
    lines skipped. Unknown codes (not in the lint catalogue) are errors. *)

(* Allow-file parsing, shared verbatim between the analyzers: lines of
   [CODE PATH[:LINE] optional reason], [#] comments, blank lines skipped.
   Codes are validated against the lint catalogue up front so a typo'd code
   is a hard error at load time, not a suppression that silently never
   fires. *)

type entry = {
  al_code : string;
  al_file : string;
  al_line : int;
  al_origin : string * int;
}

let parse path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text ->
      let entries = ref [] and err = ref None in
      String.split_on_char '\n' text
      |> List.iteri (fun i line ->
             let lineno = i + 1 in
             let line =
               match String.index_opt line '#' with
               | Some j -> String.sub line 0 j
               | None -> line
             in
             match
               String.split_on_char ' ' (String.trim line)
               |> List.filter (fun s -> s <> "")
             with
             | [] -> ()
             | code :: target :: _rest when Lint.Rule.mem code ->
                 let file, al_line =
                   match String.rindex_opt target ':' with
                   | Some j -> (
                       let f = String.sub target 0 j in
                       let l =
                         String.sub target (j + 1)
                           (String.length target - j - 1)
                       in
                       match int_of_string_opt l with
                       | Some n -> (f, n)
                       | None -> (target, 0))
                   | None -> (target, 0)
                 in
                 entries :=
                   {
                     al_code = code;
                     al_file = file;
                     al_line;
                     al_origin = (path, lineno);
                   }
                   :: !entries
             | code :: _ ->
                 if !err = None then
                   err :=
                     Some
                       (Printf.sprintf "%s:%d: unknown rule code %s" path
                          lineno code));
      (match !err with Some e -> Error e | None -> Ok (List.rev !entries))

type status = Guarded_only | Unguarded

type t = {
  modules : (string, Scan.file_facts list) Hashtbl.t;
  statuses : (string * string, status) Hashtbl.t;
}

let build facts =
  let modules = Hashtbl.create 64 in
  List.iter
    (fun (ff : Scan.file_facts) ->
      let m = ff.Scan.source.Source.module_name in
      Hashtbl.replace modules m
        (match Hashtbl.find_opt modules m with
        | Some fs -> fs @ [ ff ]
        | None -> [ ff ]))
    facts;
  { modules; statuses = Hashtbl.create 256 }

let toplevel t ~module_ ~value =
  match Hashtbl.find_opt t.modules module_ with
  | None -> []
  | Some files ->
      List.concat_map
        (fun (ff : Scan.file_facts) ->
          List.filter (fun (b : Scan.binding) -> b.Scan.b_name = value) ff.bindings)
        files

let is_capitalized s =
  String.length s > 0 && Char.uppercase_ascii s.[0] = s.[0]

let resolve t ~current_module path =
  match path with
  | [] -> []
  | [ v ] ->
      toplevel t ~module_:current_module ~value:v
      |> List.map (fun b -> (current_module, b))
  | comps ->
      let arr = Array.of_list comps in
      let n = Array.length arr in
      (* rightmost component that names a known source module and is
         followed by at least one more component *)
      let rec try_at i =
        if i < 0 then []
        else if is_capitalized arr.(i) && Hashtbl.mem t.modules arr.(i) then
          let value =
            String.concat "." (Array.to_list (Array.sub arr (i + 1) (n - i - 1)))
          in
          match toplevel t ~module_:arr.(i) ~value with
          | [] -> try_at (i - 1)
          | bs -> List.map (fun b -> (arr.(i), b)) bs
        else try_at (i - 1)
      in
      try_at (n - 2)

let status t ~module_ ~value = Hashtbl.find_opt t.statuses (module_, value)

(* Worklist fixpoint over the improvement lattice
   None -> Guarded_only -> Unguarded (monotone; [Some Unguarded] terminal).
   What counts as a "guarded" edge is the caller's choice: statrace passes
   [c_guarded] (Mutex.protect call sites), statflow passes [c_protected]
   (Fun.protect / try regions) — the demotion rule "one unguarded path
   demotes the callee" is identical.

   [through_values] selects the propagation policy for non-function
   bindings. statrace stops at them (their body ran once at module init,
   before any spawn); statflow flows through them, because a value binding
   like a closure table ([Iscas_like.suite]) runs its payloads when the hot
   caller invokes them, not when the module loads.

   One [t] holds one fixpoint: analyzers with different parameters must each
   [build] their own. *)
let compute ?(guard_of = fun (c : Scan.call) -> c.Scan.c_guarded)
    ?(through_values = false) t ~entries =
  let work = Queue.create () in
  let push_callees modu (b : Scan.binding) ~as_guarded =
    List.iter
      (fun (c : Scan.call) ->
        let g = as_guarded || guard_of c in
        List.iter
          (fun (m', b') -> Queue.add (m', b', g) work)
          (resolve t ~current_module:modu c.Scan.c_path))
      b.Scan.b_calls
  in
  List.iter (fun (m, b) -> push_callees m b ~as_guarded:false) entries;
  while not (Queue.is_empty work) do
    let m, (b : Scan.binding), guarded = Queue.pop work in
    if b.Scan.b_is_function || through_values then begin
      let key = (m, b.Scan.b_name) in
      let improved =
        match (Hashtbl.find_opt t.statuses key, guarded) with
        | Some Unguarded, _ -> None
        | Some Guarded_only, true -> None
        | Some Guarded_only, false | None, false -> Some Unguarded
        | None, true -> Some Guarded_only
      in
      match improved with
      | None -> ()
      | Some st ->
          Hashtbl.replace t.statuses key st;
          push_callees m b ~as_guarded:(st = Guarded_only)
    end
  done

let statuses t =
  Hashtbl.fold (fun (m, v) st acc -> ((m, v), st) :: acc) t.statuses []
  |> List.sort compare

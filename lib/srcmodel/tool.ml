(* Identity of an analyzer built on this library. The pragma marker, the
   parse-failure code, and the stale-suppression code all derive from it, so
   two analyzers can suppress findings independently in the same source
   file: a [(* statrace: safe *)] pragma never silences a statflow finding
   and vice versa. *)

type t = {
  name : string;  (** pragma namespace, e.g. ["statrace"] or ["statflow"] *)
  parse_code : string;  (** diagnostic code for unparseable sources *)
  stale_code : string;  (** diagnostic code for suppressions that bite nothing *)
}

let pragma_marker t = "(* " ^ t.name ^ ": safe"

(** Identity of an analyzer built on srcmodel: names the pragma namespace
    and the two bookkeeping diagnostic codes every analyzer needs (parse
    failure, stale suppression). Passing the tool around — rather than
    baking one marker in — is what lets statrace and statflow share one
    parsed source set while keeping their suppressions separate. *)

type t = {
  name : string;  (** pragma namespace, e.g. ["statrace"] or ["statflow"] *)
  parse_code : string;  (** diagnostic code for unparseable sources *)
  stale_code : string;  (** diagnostic code for suppressions that bite nothing *)
}

val pragma_marker : t -> string
(** The open-comment form a suppression line must contain:
    [(* NAME: safe — ... *)] up to the namespace and keyword. *)

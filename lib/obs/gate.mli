(** The global observability switch. Counters and spans record only while it
    is on; the disabled path at every instrumented call site is a single
    atomic load and branch. Flip it through {!Sink.enable} / {!Sink.disable}
    rather than directly. *)

val on : unit -> bool
val set : bool -> unit

(* The single switch the whole observability layer hides behind. Every
   instrumented call site guards on [on ()], so the disabled path costs one
   atomic load (a plain load on x86-64/arm64) plus a predictable branch —
   the "zero-cost-when-disabled" contract the hot kernels rely on. The flag
   is [Atomic.t] so experiment runners fanning out over domains observe a
   consistent value without data races. *)

let flag = Atomic.make false

let[@inline] on () = Atomic.get flag
let set v = Atomic.set flag v

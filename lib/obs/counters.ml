type t = { name : string; cell : int Atomic.t }

(* The registry only grows (counters are registered at module init and live
   for the whole process); the mutex covers registration and bulk reads so
   [dump]/[reset_all] see a consistent list from any domain. *)
let mu = Mutex.create ()
let registry : t list ref = ref []

let make name =
  let c = { name; cell = Atomic.make 0 } in
  Mutex.protect mu (fun () ->
      if List.exists (fun e -> String.equal e.name name) !registry then
        invalid_arg ("Obs.Counters.make: duplicate counter name " ^ name);
      registry := c :: !registry);
  c

let name t = t.name

let[@inline] bump t = if Gate.on () then Atomic.incr t.cell

let[@inline] add t n =
  if Gate.on () then ignore (Atomic.fetch_and_add t.cell n : int)

let read t = Atomic.get t.cell

let reset_all () =
  Mutex.protect mu (fun () ->
      List.iter (fun t -> Atomic.set t.cell 0) !registry)

let dump () =
  Mutex.protect mu (fun () ->
      List.map (fun t -> (t.name, Atomic.get t.cell)) !registry)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type event = { name : string; enter : bool; ts_us : float; tid : int }

type summary = {
  mutable count : int;
  mutable total_us : float;
  mutable max_us : float;
}

(* All trace state sits behind one mutex: span begin/end is orders of
   magnitude rarer than counter bumps (spans wrap whole SSTA runs and sizer
   iterations, not inner-loop pops), so contention is a non-issue and the
   lock buys us a globally ordered, monotonically clamped event stream. *)
let mu = Mutex.create ()
let events_rev : event list ref = ref []
let n_events = ref 0
let dropped_events = ref 0
let last_ts = ref 0.0
(* statflow: safe — trace-epoch timestamp; observability only, never a result *)
let t0 = ref (Unix.gettimeofday ())
let by_name : (string, summary) Hashtbl.t = Hashtbl.create 32

(* Soft cap on recorded events so a pathological run cannot eat the heap.
   Only begin events check it — see [leave]. *)
let max_events = 1_000_000

(* Per-domain nesting depth, exposed for tests and sanity checks. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

(* statflow: safe — trace timestamps are observability data, not results *)
let now_us () = (Unix.gettimeofday () -. !t0) *. 1e6

(* Caller holds [mu]. Clamps the wall clock so the stream is non-decreasing
   even if gettimeofday steps backwards (NTP). *)
let record_locked name enter =
  let raw = now_us () in
  let ts_us = if raw > !last_ts then raw else !last_ts in
  last_ts := ts_us;
  let tid = (Domain.self () :> int) in
  events_rev := { name; enter; ts_us; tid } :: !events_rev;
  incr n_events;
  ts_us

let enter name =
  Mutex.protect mu (fun () ->
      if !n_events >= max_events then begin
        incr dropped_events;
        None
      end
      else Some (record_locked name true))

(* An end event for a begin that made it into the buffer always records,
   cap or not — dropping it would unbalance the trace. *)
let leave name t_begin =
  Mutex.protect mu (fun () ->
      let t_end = record_locked name false in
      let dur = t_end -. t_begin in
      let s =
        match Hashtbl.find_opt by_name name with
        | Some s -> s
        | None ->
            let s = { count = 0; total_us = 0.0; max_us = 0.0 } in
            Hashtbl.add by_name name s;
            s
      in
      s.count <- s.count + 1;
      s.total_us <- s.total_us +. dur;
      if dur > s.max_us then s.max_us <- dur)

let with_ name f =
  if not (Gate.on ()) then f ()
  else
    (* Capture whether our begin event recorded: if the gate flips or the
       cap trips mid-span we still only emit the end that matches. *)
    match enter name with
    | None -> f ()
    | Some t_begin ->
        let d = Domain.DLS.get depth_key in
        incr d;
        Fun.protect
          ~finally:(fun () ->
            decr d;
            leave name t_begin)
          f

let events () = Mutex.protect mu (fun () -> List.rev !events_rev)
let depth () = !(Domain.DLS.get depth_key)
let dropped () = Mutex.protect mu (fun () -> !dropped_events)

let summaries () =
  Mutex.protect mu (fun () ->
      Hashtbl.fold
        (fun name s acc -> (name, s.count, s.total_us, s.max_us) :: acc)
        by_name [])
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)

let reset () =
  Mutex.protect mu (fun () ->
      events_rev := [];
      n_events := 0;
      dropped_events := 0;
      last_ts := 0.0;
      Hashtbl.reset by_name;
      t0 := Unix.gettimeofday ())

(** Wall-clock span tracing with nesting.

    Spans record begin/end event pairs suitable for Chrome's [trace_event]
    viewer, plus a per-name summary (count / total / max duration) for the
    flat metrics export. Unlike {!Counters}, span timestamps are wall-clock
    and therefore never deterministic — they are for humans profiling a run,
    not for CI gates. *)

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span named [name]. When the {!Gate} is
    off this is just [f ()]. The end event is recorded even when [f] raises
    ([Fun.protect]), so traces stay balanced and nesting depth is restored
    under exceptions. *)

type event = { name : string; enter : bool; ts_us : float; tid : int }
(** [ts_us] is microseconds since the last {!reset}, clamped monotonic.
    [tid] is the recording domain's id. *)

val events : unit -> event list
(** Recorded events in chronological order. *)

val depth : unit -> int
(** Current nesting depth of the calling domain. *)

val summaries : unit -> (string * int * float * float) list
(** Per-name [(name, count, total_us, max_us)] over completed spans, sorted
    by name. *)

val dropped : unit -> int
(** Spans not recorded because the event buffer hit its cap. Only begin
    events are ever dropped; an end event whose begin was recorded always
    records, so the trace stays balanced. *)

val reset : unit -> unit
(** Clear all events and summaries and restart the trace clock. *)

(** The front door of the observability layer: enable/disable recording,
    reset state between workloads, and export what was recorded.

    Two export shapes serve two audiences: [metrics_json] is the flat,
    machine-diffable form (deterministic counters first, advisory span
    summaries second) that CI gates on; [trace_json] is Chrome
    [trace_event] format — load it at chrome://tracing or in Perfetto. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero all counters and clear the span trace; call before a measured
    workload so exports describe exactly that workload. *)

val metrics_json : unit -> string
(** [{"schema":"statobs/1","counters":{...},"spans":[...],
    "dropped_events":n}] — counters sorted by name, exactly reproducible
    run-to-run; span timings advisory. *)

val trace_json : unit -> string
(** Chrome [trace_event] JSON: [{"displayTimeUnit":"ms","traceEvents":
    [{name,cat,ph,pid,tid,ts}]}] with [ph] of ["B"]/["E"] and [ts] in
    microseconds. *)

val write_metrics : path:string -> unit
val write_trace : path:string -> unit

(** Deterministic monotonic operation counters.

    A counter counts *operations*, not seconds: for a fixed input and
    toolchain the totals are exactly reproducible run-to-run, which is what
    lets CI assert on them bit-for-bit while wall-clock stays advisory.
    Cells are [Atomic.t], so totals stay exact when experiment runners fan
    work out over stdlib domains (each domain's operations are themselves
    deterministic, and addition commutes). *)

type t

val make : string -> t
(** Register a new counter under a globally unique name; counters are
    created once at module initialization. Raises [Invalid_argument] on a
    duplicate name. *)

val name : t -> string

val bump : t -> unit
(** [bump t] adds 1 when the {!Gate} is on; a no-op (one load + branch)
    otherwise. *)

val add : t -> int -> unit
(** [add t n] adds [n] when the {!Gate} is on. Hot drains accumulate into a
    local int and flush once through here, keeping the per-pop cost off the
    disabled path entirely. *)

val read : t -> int

val reset_all : unit -> unit
(** Zero every registered counter (start of a measured workload). *)

val dump : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name — the
    deterministic block CI gates on. *)

let enable () = Gate.set true
let disable () = Gate.set false
let enabled = Gate.on

let reset () =
  Counters.reset_all ();
  Span.reset ()

(* Hand-rolled emission: the toolchain has no JSON library, and the shapes
   here are flat enough that a Buffer is clearer than a combinator layer.
   Floats print as %.3f (microsecond fields with nanosecond noise would
   defeat eyeball diffing); counters print as plain ints. *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let metrics_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"schema\":\"statobs/1\",\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      escape b name;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int v))
    (Counters.dump ());
  Buffer.add_string b "},\"spans\":[";
  List.iteri
    (fun i (name, count, total_us, max_us) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":";
      escape b name;
      Buffer.add_string b (Printf.sprintf ",\"count\":%d" count);
      Buffer.add_string b (Printf.sprintf ",\"total_us\":%.3f" total_us);
      Buffer.add_string b (Printf.sprintf ",\"max_us\":%.3f}" max_us))
    (Span.summaries ());
  Buffer.add_string b
    (Printf.sprintf "],\"dropped_events\":%d}" (Span.dropped ()));
  Buffer.contents b

let trace_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i (e : Span.event) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":";
      escape b e.name;
      Buffer.add_string b ",\"cat\":\"statsize\",\"ph\":";
      Buffer.add_string b (if e.enter then "\"B\"" else "\"E\"");
      Buffer.add_string b
        (Printf.sprintf ",\"pid\":1,\"tid\":%d,\"ts\":%.3f}" e.tid e.ts_us))
    (Span.events ());
  Buffer.add_string b "]}";
  Buffer.contents b

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc contents;
      output_char oc '\n')

let write_metrics ~path = write_file ~path (metrics_json ())
let write_trace ~path = write_file ~path (trace_json ())

(* Minimal hand-rolled JSON reader (the toolchain ships no JSON library).
   Covers RFC 8259 except surrogate-pair recombination — escaped non-BMP
   characters decode as two replacement bytes, which none of our emitters
   produce. Shared by the bench counter gate and the observability tests. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string * int

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' ->
                  let cp = hex4 () in
                  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
                  else if cp < 0x800 then begin
                    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
                    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                  end
                  else begin
                    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
                    Buffer.add_char b
                      (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                  end
              | _ -> fail "bad escape character");
              go ())
      | Some c when Char.code c < 0x20 -> fail "raw control character in string"
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let consume_digits () =
      let seen = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            seen := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !seen then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> consume_digits ()
    | _ -> fail "expected digit");
    if peek () = Some '.' then begin
      advance ();
      consume_digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        consume_digits ()
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                member ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          member ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec item () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                item ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          item ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after JSON value";
  v

let parse_result s =
  match parse_exn s with
  | v -> Ok v
  | exception Bad (msg, at) -> Error (msg, at)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

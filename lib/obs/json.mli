(** Minimal JSON reader for the bench counter gate and observability tests.
    Hand-rolled because the toolchain ships no JSON library. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string * int
(** [Bad (message, byte_offset)]. *)

val parse_exn : string -> t
(** Parse a complete JSON document; raises {!Bad} on malformed input or
    trailing garbage. *)

val parse_result : string -> (t, string * int) result

val member : string -> t -> t option
(** [member k (Obj ...)] looks up key [k]; [None] on missing key or
    non-object. *)

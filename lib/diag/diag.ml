(* Typed diagnostics shared by the lint subsystem and the validators.

   The JSON codec is deliberately hand-rolled: the container ships no JSON
   library, the schema is ours, and writing both directions in one place is
   what makes the CLI's --format=json output round-trip by construction. *)

module Severity = struct
  type t = Error | Warning | Info

  let rank = function Error -> 0 | Warning -> 1 | Info -> 2
  let compare a b = Int.compare (rank a) (rank b)

  let to_string = function
    | Error -> "error"
    | Warning -> "warning"
    | Info -> "info"

  let of_string = function
    | "error" -> Some Error
    | "warning" -> Some Warning
    | "info" -> Some Info
    | _ -> None

  let pp ppf s = Fmt.string ppf (to_string s)
end

type location =
  | Circuit
  | Net of string
  | Gate of string
  | Cell of string
  | Lut of { cell : string; table : string }
  | Pdf
  | Pdf_point of { index : int; value : float }
  | Model
  | File of { file : string; line : int }

type t = {
  code : string;
  severity : Severity.t;
  location : location;
  message : string;
  hint : string option;
}

let make ~code ~severity ~loc ?hint message =
  { code; severity; location = loc; message; hint }

let errorf ~code ~loc ?hint fmt =
  Fmt.kstr (fun message -> make ~code ~severity:Severity.Error ~loc ?hint message) fmt

let warningf ~code ~loc ?hint fmt =
  Fmt.kstr
    (fun message -> make ~code ~severity:Severity.Warning ~loc ?hint message)
    fmt

let infof ~code ~loc ?hint fmt =
  Fmt.kstr (fun message -> make ~code ~severity:Severity.Info ~loc ?hint message) fmt

let with_severity severity t = { t with severity }

let pp_location ppf = function
  | Circuit -> Fmt.string ppf "circuit"
  | Net n -> Fmt.pf ppf "net %S" n
  | Gate g -> Fmt.pf ppf "gate %S" g
  | Cell c -> Fmt.pf ppf "cell %s" c
  | Lut { cell; table } -> Fmt.pf ppf "%s.%s" cell table
  | Pdf -> Fmt.string ppf "pdf"
  | Pdf_point { index; value } -> Fmt.pf ppf "pdf[%d] (=%g)" index value
  | Model -> Fmt.string ppf "variation model"
  | File { file; line } -> Fmt.pf ppf "%s:%d" file line

let location_string loc = Fmt.str "%a" pp_location loc

let compare a b =
  let c = Severity.compare a.severity b.severity in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = String.compare (location_string a.location) (location_string b.location) in
      if c <> 0 then c else String.compare a.message b.message

let sort ds = List.sort compare ds

let max_severity = function
  | [] -> None
  | d :: rest ->
      Some
        (List.fold_left
           (fun acc d ->
             if Severity.compare d.severity acc < 0 then d.severity else acc)
           d.severity rest)

let has_errors ds = List.exists (fun d -> d.severity = Severity.Error) ds
let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let pp ppf t =
  Fmt.pf ppf "%a[%s] %a: %s%a" Severity.pp t.severity t.code pp_location
    t.location t.message
    (Fmt.option (fun ppf h -> Fmt.pf ppf " (hint: %s)" h))
    t.hint

let to_string t = Fmt.str "%a" pp t

module Json = struct
  type value =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of value list
    | Obj of (string * value) list

  (* ---- writer ---------------------------------------------------------- *)

  let escape_into buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let number_string f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let to_string v =
    let buf = Buffer.create 256 in
    let rec go = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Num f -> Buffer.add_string buf (number_string f)
      | Str s ->
          Buffer.add_char buf '"';
          escape_into buf s;
          Buffer.add_char buf '"'
      | List vs ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i v ->
              if i > 0 then Buffer.add_char buf ',';
              go v)
            vs;
          Buffer.add_char buf ']'
      | Obj fields ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_char buf '"';
              escape_into buf k;
              Buffer.add_string buf "\":";
              go v)
            fields;
          Buffer.add_char buf '}'
    in
    go v;
    Buffer.contents buf

  (* ---- parser ---------------------------------------------------------- *)

  exception Bad of string

  let parse text =
    let n = String.length text in
    let pos = ref 0 in
    let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
    let peek () = if !pos < n then Some text.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail "expected %C at offset %d" c !pos
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub text !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail "bad literal at offset %d" !pos
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = text.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape");
          let e = text.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub text !pos 4 in
              pos := !pos + 4;
              let cp =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape %S" hex
              in
              (* UTF-8 encode the code point (BMP only — all we ever emit). *)
              if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
              else if cp < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
              end
          | c -> fail "bad escape \\%C" c);
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char text.[!pos] do
        advance ()
      done;
      let s = String.sub text start (!pos - start) in
      match float_of_string_opt s with
      | Some f -> f
      | None -> fail "bad number %S at offset %d" s start
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else
            let rec fields acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((key, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((key, v) :: acc))
              | _ -> fail "expected ',' or '}' at offset %d" !pos
            in
            fields []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  List (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']' at offset %d" !pos
            in
            elements []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage at offset %d" !pos;
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  (* ---- diagnostic schema ------------------------------------------------ *)

  let location_to_json = function
    | Circuit -> Obj [ ("kind", Str "circuit") ]
    | Net n -> Obj [ ("kind", Str "net"); ("name", Str n) ]
    | Gate g -> Obj [ ("kind", Str "gate"); ("name", Str g) ]
    | Cell c -> Obj [ ("kind", Str "cell"); ("name", Str c) ]
    | Lut { cell; table } ->
        Obj [ ("kind", Str "lut"); ("cell", Str cell); ("table", Str table) ]
    | Pdf -> Obj [ ("kind", Str "pdf") ]
    | Pdf_point { index; value } ->
        Obj
          [ ("kind", Str "pdf_point"); ("index", Num (float_of_int index));
            ("value", Num value) ]
    | Model -> Obj [ ("kind", Str "model") ]
    | File { file; line } ->
        Obj
          [ ("kind", Str "file"); ("file", Str file);
            ("line", Num (float_of_int line)) ]

  let str_member key v =
    match member key v with
    | Some (Str s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" key)

  let num_member key v =
    match member key v with
    | Some (Num f) -> Ok f
    | _ -> Error (Printf.sprintf "missing numeric field %S" key)

  let ( let* ) r f = Result.bind r f

  let location_of_json v =
    let* kind = str_member "kind" v in
    match kind with
    | "circuit" -> Ok Circuit
    | "net" ->
        let* n = str_member "name" v in
        Ok (Net n)
    | "gate" ->
        let* n = str_member "name" v in
        Ok (Gate n)
    | "cell" ->
        let* n = str_member "name" v in
        Ok (Cell n)
    | "lut" ->
        let* cell = str_member "cell" v in
        let* table = str_member "table" v in
        Ok (Lut { cell; table })
    | "pdf" -> Ok Pdf
    | "pdf_point" ->
        let* index = num_member "index" v in
        let* value = num_member "value" v in
        Ok (Pdf_point { index = int_of_float index; value })
    | "model" -> Ok Model
    | "file" ->
        let* file = str_member "file" v in
        let* line = num_member "line" v in
        Ok (File { file; line = int_of_float line })
    | k -> Error (Printf.sprintf "unknown location kind %S" k)

  let of_diag t =
    Obj
      ([
         ("code", Str t.code);
         ("severity", Str (Severity.to_string t.severity));
         ("location", location_to_json t.location);
         ("message", Str t.message);
       ]
      @ match t.hint with None -> [] | Some h -> [ ("hint", Str h) ])

  let to_diag v =
    let* code = str_member "code" v in
    let* sev_s = str_member "severity" v in
    let* severity =
      match Severity.of_string sev_s with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "unknown severity %S" sev_s)
    in
    let* loc_v =
      match member "location" v with
      | Some l -> Ok l
      | None -> Error "missing location"
    in
    let* location = location_of_json loc_v in
    let* message = str_member "message" v in
    let hint = match member "hint" v with Some (Str h) -> Some h | _ -> None in
    Ok { code; severity; location; message; hint }
end

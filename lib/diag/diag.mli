(** Typed diagnostics — the shared currency of the lint subsystem and the
    structural validators: a stable code (e.g. [CIRC001]), a severity, a
    location (net/gate/cell/pdf-point/file:line), a message, and an optional
    fix hint. The JSON codec is self-contained so the CLI's [--format=json]
    output round-trips without external dependencies. *)

module Severity : sig
  type t = Error | Warning | Info

  val compare : t -> t -> int
  (** Most severe first: [Error < Warning < Info]. *)

  val to_string : t -> string
  val of_string : string -> t option
  val pp : t Fmt.t
end

type location =
  | Circuit  (** the circuit as a whole *)
  | Net of string  (** a named net / node *)
  | Gate of string  (** a gate instance *)
  | Cell of string  (** a library cell (or cell family) *)
  | Lut of { cell : string; table : string }  (** one table of a cell *)
  | Pdf  (** a discrete pdf as a whole *)
  | Pdf_point of { index : int; value : float }  (** one pdf support point *)
  | Model  (** the variation model *)
  | File of { file : string; line : int }  (** source text position *)

type t = {
  code : string;  (** stable, e.g. "CIRC001" — never reused across rules *)
  severity : Severity.t;
  location : location;
  message : string;
  hint : string option;  (** optional actionable fix suggestion *)
}

val make :
  code:string ->
  severity:Severity.t ->
  loc:location ->
  ?hint:string ->
  string ->
  t

val errorf :
  code:string -> loc:location -> ?hint:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val warningf :
  code:string -> loc:location -> ?hint:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val infof :
  code:string -> loc:location -> ?hint:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val with_severity : Severity.t -> t -> t

val compare : t -> t -> int
(** Severity first, then code, then rendered location, then message. *)

val sort : t list -> t list

val max_severity : t list -> Severity.t option
(** [None] on the empty list. *)

val has_errors : t list -> bool
val count : Severity.t -> t list -> int

val pp_location : location Fmt.t
val pp : t Fmt.t
(** e.g. [error[CIRC004] gate "g7": dangling gate (hint: mark it as an
    output or remove it)]. *)

val to_string : t -> string

(** Minimal self-contained JSON: enough for the lint CLI schema, written and
    parsed by the same code so output round-trips. *)
module Json : sig
  type value =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of value list
    | Obj of (string * value) list

  val to_string : value -> string
  val parse : string -> (value, string) result
  (** Parse one JSON document (trailing whitespace allowed). *)

  val member : string -> value -> value option
  (** Field lookup on [Obj]; [None] otherwise. *)

  val of_diag : t -> value
  val to_diag : value -> (t, string) result
end

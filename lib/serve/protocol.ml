(* serve/1 request parsing + response rendering. *)

type error_code =
  | Parse_error
  | Bad_request
  | Unknown_op
  | Unknown_circuit
  | Oversized_batch
  | Oversized_request
  | Cache_collision
  | Job_failed

type error = { code : error_code; message : string }

let err code fmt = Printf.ksprintf (fun message -> { code; message }) fmt

let code_string = function
  | Parse_error -> "parse_error"
  | Bad_request -> "bad_request"
  | Unknown_op -> "unknown_op"
  | Unknown_circuit -> "unknown_circuit"
  | Oversized_batch -> "oversized_batch"
  | Oversized_request -> "oversized_request"
  | Cache_collision -> "cache_collision"
  | Job_failed -> "job_failed"

type source = Suite of string | Bench of string

type libspec = { tau : float option; strengths : float array option }

let default_libspec = { tau = None; strengths = None }

let libspec_key spec =
  match spec with
  | { tau = None; strengths = None } -> "default"
  | _ ->
      let b = Buffer.create 64 in
      (match spec.tau with
      | None -> Buffer.add_string b "tau=default"
      | Some t -> Buffer.add_string b (Printf.sprintf "tau=%h" t));
      (match spec.strengths with
      | None -> Buffer.add_string b ";strengths=default"
      | Some s ->
          Buffer.add_string b ";strengths=";
          Array.iter (fun x -> Buffer.add_string b (Printf.sprintf "%h," x)) s);
      Buffer.contents b

type job =
  | Ping
  | Info of { source : source; library : libspec }
  | Analyze of { source : source; library : libspec; alpha : float }
  | Optimize of {
      source : source;
      library : libspec;
      alpha : float;
      domains : int;
      max_iterations : int option;
      return_cells : bool;
    }
  | Table1 of {
      source : source;
      library : libspec;
      alphas : float list;
      domains : int;
      max_iterations : int option;
    }
  | Stats
  | Shutdown

type request = { id : Obs.Json.t; job : job }
type payload = Single of request | Batch of request list

(* ---- compact single-line JSON emitter ---- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let number_text f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_nan f then "null" (* RFC 8259 has no NaN *)
  else Printf.sprintf "%.17g" f

let to_line json =
  let b = Buffer.create 256 in
  let rec go = function
    | Obs.Json.Null -> Buffer.add_string b "null"
    | Obs.Json.Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Obs.Json.Num f -> Buffer.add_string b (number_text f)
    | Obs.Json.Str s ->
        Buffer.add_char b '"';
        escape_into b s;
        Buffer.add_char b '"'
    | Obs.Json.Arr xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          xs;
        Buffer.add_char b ']'
    | Obs.Json.Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape_into b k;
            Buffer.add_string b "\":";
            go v)
          kvs;
        Buffer.add_char b '}'
  in
  go json;
  Buffer.contents b

(* ---- request parsing ---- *)

let ( let* ) = Result.bind

let member_or k default json =
  Option.value ~default (Obs.Json.member k json)

let as_float what = function
  | Obs.Json.Num f -> Ok f
  | _ -> Error (err Bad_request "%s must be a number" what)

let as_int what = function
  | Obs.Json.Num f when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error (err Bad_request "%s must be an integer" what)

let as_bool what = function
  | Obs.Json.Bool x -> Ok x
  | _ -> Error (err Bad_request "%s must be a boolean" what)

let opt_field k conv json =
  match Obs.Json.member k json with
  | None | Some Obs.Json.Null -> Ok None
  | Some v ->
      let* x = conv k v in
      Ok (Some x)

let field_or k conv default json =
  let* v = opt_field k conv json in
  Ok (Option.value ~default v)

let parse_source json =
  match (Obs.Json.member "circuit" json, Obs.Json.member "bench" json) with
  | Some (Obs.Json.Str name), None -> Ok (Suite name)
  | None, Some (Obs.Json.Str text) -> Ok (Bench text)
  | None, None ->
      Error (err Bad_request "missing circuit source: \"circuit\" or \"bench\"")
  | Some _, Some _ ->
      Error (err Bad_request "give exactly one of \"circuit\" and \"bench\"")
  | _ -> Error (err Bad_request "\"circuit\"/\"bench\" must be strings")

let parse_libspec json =
  match Obs.Json.member "library" json with
  | None | Some Obs.Json.Null -> Ok default_libspec
  | Some (Obs.Json.Obj _ as spec) ->
      let* tau = opt_field "tau" as_float spec in
      let* strengths =
        match Obs.Json.member "strengths" spec with
        | None | Some Obs.Json.Null -> Ok None
        | Some (Obs.Json.Arr xs) ->
            let* fs =
              List.fold_right
                (fun x acc ->
                  let* acc = acc in
                  let* f = as_float "library.strengths element" x in
                  Ok (f :: acc))
                xs (Ok [])
            in
            Ok (Some (Array.of_list fs))
        | Some _ ->
            Error (err Bad_request "library.strengths must be an array")
      in
      Ok { tau; strengths }
  | Some _ -> Error (err Bad_request "\"library\" must be an object")

let parse_alphas json =
  match Obs.Json.member "alphas" json with
  | None | Some Obs.Json.Null -> Ok [ 3.0; 9.0 ]
  | Some (Obs.Json.Arr xs) when xs <> [] ->
      List.fold_right
        (fun x acc ->
          let* acc = acc in
          let* f = as_float "alphas element" x in
          Ok (f :: acc))
        xs (Ok [])
  | Some _ -> Error (err Bad_request "\"alphas\" must be a non-empty array")

let rec parse_job json =
  let* op =
    match Obs.Json.member "op" json with
    | Some (Obs.Json.Str op) -> Ok op
    | Some _ -> Error (err Bad_request "\"op\" must be a string")
    | None -> Error (err Bad_request "missing \"op\"")
  in
  match op with
  | "ping" -> Ok (`Job Ping)
  | "stats" -> Ok (`Job Stats)
  | "shutdown" -> Ok (`Job Shutdown)
  | "info" ->
      let* source = parse_source json in
      let* library = parse_libspec json in
      Ok (`Job (Info { source; library }))
  | "analyze" ->
      let* source = parse_source json in
      let* library = parse_libspec json in
      let* alpha = field_or "alpha" as_float 3.0 json in
      Ok (`Job (Analyze { source; library; alpha }))
  | "optimize" ->
      let* source = parse_source json in
      let* library = parse_libspec json in
      let* alpha = field_or "alpha" as_float 3.0 json in
      let* domains = field_or "domains" as_int 0 json in
      let* max_iterations = opt_field "max_iterations" as_int json in
      let* return_cells = field_or "return_cells" as_bool false json in
      Ok
        (`Job
          (Optimize
             { source; library; alpha; domains; max_iterations; return_cells }))
  | "table1" ->
      let* source = parse_source json in
      let* library = parse_libspec json in
      let* alphas = parse_alphas json in
      let* domains = field_or "domains" as_int 0 json in
      let* max_iterations = opt_field "max_iterations" as_int json in
      Ok (`Job (Table1 { source; library; alphas; domains; max_iterations }))
  | "batch" -> (
      match Obs.Json.member "jobs" json with
      | Some (Obs.Json.Arr jobs) ->
          let* requests =
            List.fold_right
              (fun sub acc ->
                let* acc = acc in
                let* r = parse_request sub in
                Ok (r :: acc))
              jobs (Ok [])
          in
          Ok (`Batch requests)
      | _ -> Error (err Bad_request "\"batch\" needs a \"jobs\" array"))
  | op -> Error (err Unknown_op "unknown op %S" op)

and parse_request json =
  match json with
  | Obs.Json.Obj _ -> (
      let id = member_or "id" Obs.Json.Null json in
      match parse_job json with
      | Ok (`Job job) -> Ok { id; job }
      | Ok (`Batch _) ->
          Error (err Bad_request "\"batch\" cannot nest inside a batch")
      | Error e -> Error e)
  | _ -> Error (err Bad_request "request must be a JSON object")

let parse_line line =
  match Obs.Json.parse_result line with
  | Error (msg, off) ->
      Error (Obs.Json.Null, err Parse_error "byte %d: %s" off msg)
  | Ok json -> (
      let id = member_or "id" Obs.Json.Null json in
      match json with
      | Obs.Json.Obj _ -> (
          match member_or "serve" Obs.Json.Null json with
          | Obs.Json.Num 1.0 -> (
              match parse_job json with
              | Ok (`Job job) -> Ok (Single { id; job })
              | Ok (`Batch requests) -> Ok (Batch requests)
              | Error e -> Error (id, e))
          | _ ->
              Error (id, err Parse_error "not a serve/1 request (\"serve\":1)"))
      | _ -> Error (id, err Parse_error "request must be a JSON object"))

(* ---- responses ---- *)

type response = { id : Obs.Json.t; body : (Obs.Json.t, error) result }

let response_json { id; body } =
  let fields =
    match body with
    | Ok result ->
        [
          ("serve", Obs.Json.Num 1.0);
          ("id", id);
          ("ok", Obs.Json.Bool true);
          ("result", result);
        ]
    | Error e ->
        [
          ("serve", Obs.Json.Num 1.0);
          ("id", id);
          ("ok", Obs.Json.Bool false);
          ( "error",
            Obs.Json.Obj
              [
                ("code", Obs.Json.Str (code_string e.code));
                ("message", Obs.Json.Str e.message);
              ] );
        ]
  in
  Obs.Json.Obj fields

let render_response r = to_line (response_json r)

(** Serve job execution: resolve the library and circuit through the
    content-hashed caches, run the requested analysis/optimization on a
    private copy, and marshal the result to [serve/1] JSON. Jobs never
    mutate cached state — every job works on a {!Netlist.Circuit.copy} of
    the cached pristine netlist, so concurrent pool lanes share nothing but
    the (mutex-guarded) caches and the immutable libraries. *)

type env

val create_env : ?hash:(string -> string) -> unit -> env
(** [hash] is forwarded to both caches (test hook for the collision path). *)

val run : env -> Protocol.job -> (Obs.Json.t, Protocol.error) result
(** Execute one job (pure result: no timing metadata). [Shutdown] only
    produces its acknowledgement — the daemon owns the actual stop. Never
    raises: job exceptions come back as [Job_failed]. *)

val execute : env -> Protocol.job -> (Obs.Json.t, Protocol.error) result
(** {!run} plus an ["elapsed_s"] wall-clock field on success (service
    metadata, deliberately outside the deterministic result payload). *)

val sizing_digest : Netlist.Circuit.t -> string
(** Hex digest of the gate-order cell-name list — the byte-identity witness
    the determinism gates compare across domain counts. *)

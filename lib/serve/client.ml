type t = { fd : Unix.file_descr; ic : in_channel }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd }

let send_line t line =
  let payload = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length payload in
  let rec go off =
    if off < len then go (off + Unix.write t.fd payload off (len - off))
  in
  go 0

let recv_line t = In_channel.input_line t.ic

let request t line =
  send_line t line;
  match recv_line t with
  | Some response -> response
  | None -> failwith "serve client: daemon closed the connection"

let request_json t json =
  Obs.Json.parse_exn (request t (Protocol.to_line json))

let close t =
  (* closing the channel closes the underlying fd *)
  try In_channel.close t.ic with Sys_error _ -> ()

let with_connection ~socket f =
  let t = connect ~socket in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let session ~socket lines =
  with_connection ~socket (fun t ->
      List.iter (send_line t) lines;
      List.map
        (fun _ ->
          match recv_line t with
          | Some r -> r
          | None -> failwith "serve client: connection closed mid-session")
        lines)

let log_src = Logs.Src.create "statsize.serve" ~doc:"statserve daemon"

module Log = (val Logs.src_log log_src)

let c_connections = Obs.Counters.make "serve.connections"
let c_requests = Obs.Counters.make "serve.requests"
let c_batches = Obs.Counters.make "serve.batches"
let c_errors = Obs.Counters.make "serve.request.errors"
let c_disconnects = Obs.Counters.make "serve.disconnects"

type config = {
  socket : string;
  domains : int;
  max_batch : int;
  max_request_bytes : int;
  max_connections : int option;
  hash : (string -> string) option;
}

let default_config ~socket =
  {
    socket;
    domains = 1;
    max_batch = 64;
    max_request_bytes = 8 * 1024 * 1024;
    max_connections = None;
    hash = None;
  }

exception Disconnected

(* Line framing over the raw fd: [next_batch] blocks for at least one
   complete line, then drains whatever else already arrived (the batching
   window) without blocking. Returns [None] on EOF. *)
type reader = { fd : Unix.file_descr; buf : Buffer.t; max_line : int }

let split_lines reader =
  let s = Buffer.contents reader.buf in
  let lines = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        lines := String.sub s !start (i - !start) :: !lines;
        start := i + 1
      end)
    s;
  Buffer.clear reader.buf;
  Buffer.add_substring reader.buf s !start (String.length s - !start);
  List.rev !lines

let readable_now fd =
  match Unix.select [ fd ] [] [] 0.0 with
  | [ _ ], _, _ -> true
  | _ -> false

let read_chunk reader =
  let bytes = Bytes.create 65536 in
  match Unix.read reader.fd bytes 0 (Bytes.length bytes) with
  | 0 -> false
  | n ->
      Buffer.add_subbytes reader.buf bytes 0 n;
      true
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> false

exception Line_too_long

let rec next_batch reader =
  match split_lines reader with
  | [] ->
      if Buffer.length reader.buf > reader.max_line then raise Line_too_long;
      if read_chunk reader then next_batch reader else None
  | lines ->
      (* drain everything already queued behind the first line(s) *)
      let rec drain lines =
        if readable_now reader.fd && read_chunk reader then
          drain (lines @ split_lines reader)
        else lines
      in
      Some (drain lines)

let write_line fd line =
  let payload = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length payload in
  let rec go off =
    if off < len then begin
      match Unix.write fd payload off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          Obs.Counters.bump c_disconnects;
          raise Disconnected
    end
  in
  go 0

(* One request line parses to an immediate error response, a single job, or
   an explicit batch of jobs. All jobs of a wire batch run through one
   [Pool.map]; responses regroup per line, in request order. *)
type parsed =
  | Failed of Protocol.response
  | One of Protocol.request
  | Many of Protocol.request list

let no_id body = { Protocol.id = Obs.Json.Null; body }

let parse config line =
  Obs.Counters.bump c_requests;
  if String.length line > config.max_request_bytes then
    Failed
      (no_id
         (Error
            (Protocol.err Protocol.Oversized_request
               "request line is %d bytes (cap %d)" (String.length line)
               config.max_request_bytes)))
  else
    match Protocol.parse_line line with
    | Error (id, e) -> Failed { Protocol.id; body = Error e }
    | Ok (Protocol.Single r) -> One r
    | Ok (Protocol.Batch rs) ->
        if List.length rs > config.max_batch then
          Failed
            (no_id
               (Error
                  (Protocol.err Protocol.Oversized_batch
                     "batch of %d jobs exceeds max_batch %d" (List.length rs)
                     config.max_batch)))
        else Many rs

let is_shutdown (r : Protocol.request) = r.job = Protocol.Shutdown

let requests_of = function Failed _ -> [] | One r -> [ r ] | Many rs -> rs

let serve_batch config env fd lines =
  Obs.Counters.bump c_batches;
  let parsed = List.map (parse config) lines in
  let tasks = List.concat_map requests_of parsed in
  let results =
    Pool.map ~domains:config.domains
      (List.map
         (fun (r : Protocol.request) () -> Jobs.execute env r.job)
         tasks)
  in
  List.iter
    (fun body -> if Result.is_error body then Obs.Counters.bump c_errors)
    results;
  let remaining = ref (List.combine tasks results) in
  let take () =
    match !remaining with
    | (r, body) :: rest ->
        remaining := rest;
        { Protocol.id = r.Protocol.id; body }
    | [] -> assert false
  in
  List.iter
    (fun p ->
      let response =
        match p with
        | Failed r -> r
        | One _ -> take ()
        | Many rs ->
            let subs = List.map (fun _ -> take ()) rs in
            no_id
              (Ok
                 (Obs.Json.Obj
                    [
                      ( "results",
                        Obs.Json.Arr (List.map Protocol.response_json subs) );
                    ]))
      in
      write_line fd (Protocol.render_response response))
    parsed;
  List.exists (fun p -> List.exists is_shutdown (requests_of p)) parsed

let serve_connection config env fd =
  Obs.Counters.bump c_connections;
  let reader =
    { fd; buf = Buffer.create 4096; max_line = config.max_request_bytes + 2 }
  in
  let rec loop () =
    match next_batch reader with
    | None -> false
    | Some lines ->
        if serve_batch config env fd lines then true else loop ()
  in
  match loop () with
  | stop -> stop
  | exception Disconnected ->
      Log.info (fun m -> m "client disconnected mid-session");
      false
  | exception Line_too_long ->
      Obs.Counters.bump c_errors;
      (try
         write_line fd
           (Protocol.render_response
              {
                Protocol.id = Obs.Json.Null;
                body =
                  Error
                    (Protocol.err Protocol.Oversized_request
                       "request line exceeds %d bytes" config.max_request_bytes);
              })
       with Disconnected -> ());
      false

let run config =
  if Sys.os_type = "Unix" then
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let env = Jobs.create_env ?hash:config.hash () in
  (* warm the default library before any worker domain can race the lazy *)
  ignore (Lazy.force Cells.Library.default);
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink config.socket with Unix.Unix_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink config.socket with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX config.socket);
      Unix.listen sock 16;
      Log.info (fun m ->
          m "listening on %s (%d pool domains)" config.socket config.domains);
      let served = ref 0 in
      let rec accept_loop () =
        let capped =
          match config.max_connections with
          | Some cap -> !served >= cap
          | None -> false
        in
        if not capped then begin
          let client, _ = Unix.accept sock in
          incr served;
          let stop =
            Fun.protect
              ~finally:(fun () ->
                try Unix.close client with Unix.Unix_error _ -> ())
              (fun () -> serve_connection config env client)
          in
          if not stop then accept_loop ()
        end
      in
      accept_loop ())

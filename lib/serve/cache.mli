(** Content-hashed caches for the serve daemon (parsed netlists, generated
    libraries). Keys are the full source content; lookups go through a
    digest index but always verify the stored content byte-for-byte, so a
    digest collision is *detected* and surfaced as a typed error instead of
    silently serving the wrong value. Domain-safe: a mutex guards the
    table, builds run outside it (a racing duplicate build is wasted work,
    never wrong — builds are deterministic functions of the content, and
    the first insert wins). *)

type 'a t

val create : ?hash:(string -> string) -> unit -> 'a t
(** [hash] defaults to stdlib [Digest.string] (MD5). Tests inject a
    colliding hash to exercise the collision path. *)

type 'a outcome =
  | Hit of 'a
  | Miss of 'a  (** built just now (and cached) *)
  | Collision of string  (** digest matched, stored content differed *)

val find_or_build : 'a t -> content:string -> build:(unit -> 'a) -> 'a outcome
(** [build] may raise; nothing is cached in that case. *)

val length : 'a t -> int

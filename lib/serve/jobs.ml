let c_jobs = Obs.Counters.make "serve.jobs"
let c_job_errors = Obs.Counters.make "serve.jobs.errors"
let c_netlist_hits = Obs.Counters.make "serve.cache.netlist.hits"
let c_netlist_misses = Obs.Counters.make "serve.cache.netlist.misses"
let c_library_hits = Obs.Counters.make "serve.cache.library.hits"
let c_library_misses = Obs.Counters.make "serve.cache.library.misses"
let c_collisions = Obs.Counters.make "serve.cache.collisions"

type env = {
  libs : Cells.Library.t Cache.t;
  circuits : Netlist.Circuit.t Cache.t;
}

let create_env ?hash () =
  { libs = Cache.create ?hash (); circuits = Cache.create ?hash () }

let ( let* ) = Result.bind

let cache_result ~hits ~misses ~collision_msg outcome =
  match outcome with
  | Cache.Hit v ->
      Obs.Counters.bump hits;
      Ok (v, true)
  | Cache.Miss v ->
      Obs.Counters.bump misses;
      Ok (v, false)
  | Cache.Collision msg ->
      Obs.Counters.bump c_collisions;
      Error (Protocol.err Protocol.Cache_collision "%s: %s" collision_msg msg)

let resolve_lib env (spec : Protocol.libspec) =
  let key = Protocol.libspec_key spec in
  let build () =
    match spec with
    | { tau = None; strengths = None } -> Lazy.force Cells.Library.default
    | { tau; strengths } ->
        Cells.Library.generate ?tau ?strengths ~name:("serve:" ^ key) ()
  in
  let* lib, hit =
    cache_result ~hits:c_library_hits ~misses:c_library_misses
      ~collision_msg:"library cache"
      (Cache.find_or_build env.libs ~content:("library\x00" ^ key) ~build)
  in
  Ok (lib, key, hit)

(* The cached value is the pristine parsed/generated netlist; every caller
   gets a private copy. The cache key includes the library key because
   .bench technology mapping depends on the library's cells. *)
let resolve_circuit env ~lib ~libkey source =
  let content, build =
    match source with
    | Protocol.Suite name ->
        ( "suite\x00" ^ libkey ^ "\x00" ^ name,
          fun () ->
            match Benchgen.Iscas_like.find name with
            | Some entry -> entry.Benchgen.Iscas_like.build ~lib
            | None ->
                Fmt.failwith "unknown suite circuit %S (see `statsize list`)"
                  name )
    | Protocol.Bench text ->
        ( "bench\x00" ^ libkey ^ "\x00" ^ text,
          fun () -> Netlist.Bench_io.of_string ~name:"bench" ~lib text )
  in
  match
    cache_result ~hits:c_netlist_hits ~misses:c_netlist_misses
      ~collision_msg:"netlist cache"
      (Cache.find_or_build env.circuits ~content ~build)
  with
  | Ok (pristine, hit) -> Ok (Netlist.Circuit.copy pristine, hit)
  | Error e -> Error e
  | exception Netlist.Bench_io.Parse_error { line; code; message } ->
      Error
        (Protocol.err Protocol.Unknown_circuit "%s: line %d: %s" code line
           message)
  | exception Failure msg -> Error (Protocol.err Protocol.Unknown_circuit "%s" msg)

let num f = Obs.Json.Num f
let int i = Obs.Json.Num (float_of_int i)
let str s = Obs.Json.Str s

let cache_fields ~lib_hit ~circuit_hit =
  ( "cache",
    Obs.Json.Obj
      [
        ("library", str (if lib_hit then "hit" else "miss"));
        ("netlist", str (if circuit_hit then "hit" else "miss"));
      ] )

let sizing_digest circuit =
  let names =
    List.map
      (fun id -> Cells.Cell.name (Netlist.Circuit.cell_exn circuit id))
      (Netlist.Circuit.gates circuit)
  in
  Digest.to_hex (Digest.string (String.concat "," names))

let moments_fields prefix m =
  [
    (prefix ^ "mean", num m.Numerics.Clark.mean);
    (prefix ^ "sigma", num (Numerics.Clark.sigma m));
  ]

let sizer_config ~alpha:_ ~domains ~max_iterations =
  let config =
    { Core.Sizer.default_config with window_domains = domains }
  in
  match max_iterations with
  | None -> config
  | Some n -> { config with max_iterations = n }

let stat_run_json (r : Experiments.Pipeline.stat_run) =
  Obs.Json.Obj
    [
      ("alpha", num r.alpha);
      ("mean_change_pct", num r.mean_change_pct);
      ("sigma_change_pct", num r.sigma_change_pct);
      ("final_sigma_over_mean", num r.final_sigma_over_mean);
      ("area_change_pct", num r.area_change_pct);
      ("iterations", int r.iterations);
      ("resizes", int r.resizes);
      ("runtime_s", num r.runtime_s);
      ("sizing_digest", str (sizing_digest r.circuit));
    ]

let run env job =
  match job with
  | Protocol.Ping -> Ok (Obs.Json.Obj [ ("pong", Obs.Json.Bool true) ])
  | Protocol.Stats ->
      let counters =
        List.map (fun (n, v) -> (n, int v)) (Obs.Counters.dump ())
      in
      Ok
        (Obs.Json.Obj
           [
             ("counters", Obs.Json.Obj counters);
             ("cached_netlists", int (Cache.length env.circuits));
             ("cached_libraries", int (Cache.length env.libs));
           ])
  | Protocol.Shutdown -> Ok (Obs.Json.Obj [ ("stopping", Obs.Json.Bool true) ])
  | Protocol.Info { source; library } ->
      let* lib, libkey, lib_hit = resolve_lib env library in
      let* circuit, circuit_hit = resolve_circuit env ~lib ~libkey source in
      Ok
        (Obs.Json.Obj
           [
             ("name", str (Netlist.Circuit.name circuit));
             ("nodes", int (Netlist.Circuit.size circuit));
             ("gates", int (Netlist.Circuit.gate_count circuit));
             ("inputs", int (List.length (Netlist.Circuit.inputs circuit)));
             ("outputs", int (List.length (Netlist.Circuit.outputs circuit)));
             ("area", num (Netlist.Circuit.total_area circuit));
             cache_fields ~lib_hit ~circuit_hit;
           ])
  | Protocol.Analyze { source; library; alpha } ->
      let* lib, libkey, lib_hit = resolve_lib env library in
      let* circuit, circuit_hit = resolve_circuit env ~lib ~libkey source in
      ignore (Core.Initial_sizing.apply ~lib circuit);
      let full = Ssta.Fullssta.run circuit in
      let m = Ssta.Fullssta.output_moments full in
      let objective = Core.Objective.create ~alpha in
      Ok
        (Obs.Json.Obj
           (moments_fields "" m
           @ [
               ("sigma_over_mean", num (Ssta.Fullssta.sigma_over_mean full));
               ("alpha", num alpha);
               ("cost", num (Core.Objective.cost_of_moments objective m));
               cache_fields ~lib_hit ~circuit_hit;
             ]))
  | Protocol.Optimize
      { source; library; alpha; domains; max_iterations; return_cells } ->
      let* lib, libkey, lib_hit = resolve_lib env library in
      let* circuit, circuit_hit = resolve_circuit env ~lib ~libkey source in
      let baseline =
        Experiments.Pipeline.prepare ~lib (fun () -> circuit)
      in
      let config = sizer_config ~alpha ~domains ~max_iterations in
      let r = Experiments.Pipeline.run_alpha ~config ~lib baseline ~alpha in
      let cells =
        if not return_cells then []
        else
          [
            ( "cells",
              Obs.Json.Arr
                (List.map
                   (fun id ->
                     str
                       (Cells.Cell.name
                          (Netlist.Circuit.cell_exn r.Experiments.Pipeline.circuit
                             id)))
                   (Netlist.Circuit.gates r.Experiments.Pipeline.circuit)) );
          ]
      in
      Ok
        (Obs.Json.Obj
           ([
              ("name", str (Netlist.Circuit.name circuit));
              ("gates", int baseline.Experiments.Pipeline.gates);
              ("domains", int domains);
            ]
           @ moments_fields "baseline_" baseline.Experiments.Pipeline.moments
           @ moments_fields "final_" r.Experiments.Pipeline.final_moments
           @ [
               ("final_area", num r.Experiments.Pipeline.final_area);
               ("mean_change_pct", num r.Experiments.Pipeline.mean_change_pct);
               ("sigma_change_pct", num r.Experiments.Pipeline.sigma_change_pct);
               ( "final_sigma_over_mean",
                 num r.Experiments.Pipeline.final_sigma_over_mean );
               ("area_change_pct", num r.Experiments.Pipeline.area_change_pct);
               ("iterations", int r.Experiments.Pipeline.iterations);
               ("resizes", int r.Experiments.Pipeline.resizes);
               ( "sizing_digest",
                 str (sizing_digest r.Experiments.Pipeline.circuit) );
               cache_fields ~lib_hit ~circuit_hit;
             ]
           @ cells))
  | Protocol.Table1 { source; library; alphas; domains; max_iterations } ->
      let* lib, libkey, lib_hit = resolve_lib env library in
      let* circuit, circuit_hit = resolve_circuit env ~lib ~libkey source in
      let name = Netlist.Circuit.name circuit in
      let entry =
        { Benchgen.Iscas_like.name; build = (fun ~lib:_ -> circuit) }
      in
      let config = sizer_config ~alpha:0.0 ~domains ~max_iterations in
      let row =
        Experiments.Table1.run_circuit ~alphas ~sizer_config:config ~lib entry
      in
      Ok
        (Obs.Json.Obj
           [
             ("name", str row.Experiments.Table1.name);
             ("gates", int row.Experiments.Table1.gates);
             ( "original_sigma_over_mean",
               num row.Experiments.Table1.original_sigma_over_mean );
             ( "runs",
               Obs.Json.Arr (List.map stat_run_json row.Experiments.Table1.runs)
             );
             cache_fields ~lib_hit ~circuit_hit;
           ])

let run env job =
  Obs.Counters.bump c_jobs;
  match run env job with
  | Ok _ as ok -> ok
  | Error _ as e ->
      Obs.Counters.bump c_job_errors;
      e
  | exception e ->
      Obs.Counters.bump c_job_errors;
      Error
        (Protocol.err Protocol.Job_failed "job raised: %s"
           (Printexc.to_string e))

let execute env job =
  (* wall-clock is service metadata, appended outside the deterministic
     result payload [run] produces *)
  let t0 = Unix.gettimeofday () in
  match run env job with
  | Ok (Obs.Json.Obj fields) ->
      Ok (Obs.Json.Obj (fields @ [ ("elapsed_s", num (Unix.gettimeofday () -. t0)) ]))
  | other -> other

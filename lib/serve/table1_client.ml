type run = {
  alpha : float;
  mean_change_pct : float;
  sigma_change_pct : float;
  final_sigma_over_mean : float;
  area_change_pct : float;
  iterations : int;
  resizes : int;
  runtime_s : float;
  sizing_digest : string;
}

type row = {
  name : string;
  gates : int;
  original_sigma_over_mean : float;
  runs : run list;
}

let ( let* ) = Result.bind

let jfloat what json =
  match json with
  | Some (Obs.Json.Num f) -> Ok f
  | _ -> Error (Printf.sprintf "table1 response: bad %S" what)

let jint what json =
  let* f = jfloat what json in
  Ok (int_of_float f)

let jstr what json =
  match json with
  | Some (Obs.Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "table1 response: bad %S" what)

let parse_run json =
  let m k = Obs.Json.member k json in
  let* alpha = jfloat "alpha" (m "alpha") in
  let* mean_change_pct = jfloat "mean_change_pct" (m "mean_change_pct") in
  let* sigma_change_pct = jfloat "sigma_change_pct" (m "sigma_change_pct") in
  let* final_sigma_over_mean =
    jfloat "final_sigma_over_mean" (m "final_sigma_over_mean")
  in
  let* area_change_pct = jfloat "area_change_pct" (m "area_change_pct") in
  let* iterations = jint "iterations" (m "iterations") in
  let* resizes = jint "resizes" (m "resizes") in
  let* runtime_s = jfloat "runtime_s" (m "runtime_s") in
  let* sizing_digest = jstr "sizing_digest" (m "sizing_digest") in
  Ok
    {
      alpha;
      mean_change_pct;
      sigma_change_pct;
      final_sigma_over_mean;
      area_change_pct;
      iterations;
      resizes;
      runtime_s;
      sizing_digest;
    }

let parse_row line =
  let* json =
    Result.map_error
      (fun (msg, off) -> Printf.sprintf "byte %d: %s" off msg)
      (Obs.Json.parse_result line)
  in
  match Obs.Json.member "ok" json with
  | Some (Obs.Json.Bool true) -> (
      match Obs.Json.member "result" json with
      | Some result -> (
          let m k = Obs.Json.member k result in
          let* name = jstr "name" (m "name") in
          let* gates = jint "gates" (m "gates") in
          let* original_sigma_over_mean =
            jfloat "original_sigma_over_mean" (m "original_sigma_over_mean")
          in
          match m "runs" with
          | Some (Obs.Json.Arr runs) ->
              let* runs =
                List.fold_right
                  (fun r acc ->
                    let* acc = acc in
                    let* run = parse_run r in
                    Ok (run :: acc))
                  runs (Ok [])
              in
              Ok { name; gates; original_sigma_over_mean; runs }
          | _ -> Error "table1 response: missing \"runs\"")
      | None -> Error "table1 response: missing \"result\"")
  | _ -> (
      match Obs.Json.member "error" json with
      | Some e ->
          Error
            (Printf.sprintf "daemon error: %s" (Protocol.to_line e))
      | None -> Error "table1 response: not ok, no error")

let run ~socket ?(alphas = Experiments.Table1.default_alphas)
    ?(names = Benchgen.Iscas_like.names) ?(domains = 0) ?max_iterations () =
  let request name =
    let fields =
      [
        ("serve", Obs.Json.Num 1.0);
        ("id", Obs.Json.Str name);
        ("op", Obs.Json.Str "table1");
        ("circuit", Obs.Json.Str name);
        ("alphas", Obs.Json.Arr (List.map (fun a -> Obs.Json.Num a) alphas));
        ("domains", Obs.Json.Num (float_of_int domains));
      ]
      @
      match max_iterations with
      | None -> []
      | Some n -> [ ("max_iterations", Obs.Json.Num (float_of_int n)) ]
    in
    Protocol.to_line (Obs.Json.Obj fields)
  in
  match Client.session ~socket (List.map request names) with
  | responses ->
      List.fold_right
        (fun line acc ->
          let* acc = acc in
          let* row = parse_row line in
          Ok (row :: acc))
        responses (Ok [])
  | exception e -> Error (Printexc.to_string e)

let pp_header ppf alphas =
  Fmt.pf ppf "%-8s %6s %9s" "circuit" "gates" "orig s/m";
  List.iter
    (fun a ->
      Fmt.pf ppf " | a=%-3g %6s %7s %7s %7s %8s" a "dmu%" "dsig%" "s/m" "darea%"
        "time(m)")
    alphas;
  Fmt.pf ppf "@."

let pp ppf rows =
  match rows with
  | [] -> Fmt.pf ppf "(no rows)@."
  | first :: _ ->
      pp_header ppf (List.map (fun r -> r.alpha) first.runs);
      List.iter
        (fun row ->
          Fmt.pf ppf "%-8s %6d %9.3f" row.name row.gates
            row.original_sigma_over_mean;
          List.iter
            (fun r ->
              Fmt.pf ppf " |       %+6.1f %+7.1f %7.3f %+7.1f %8.2f"
                r.mean_change_pct r.sigma_change_pct r.final_sigma_over_mean
                r.area_change_pct
                (r.runtime_s /. 60.0))
            row.runs;
          Fmt.pf ppf "@.")
        rows

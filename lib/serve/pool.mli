(** Shared-nothing domain pool for serve job batches. [map] fans the tasks
    out across up to [domains] lanes (the calling domain is lane 0; at
    [domains <= 1] everything runs inline) with an atomic work-stealing
    index; each lane accumulates its results privately and hands them back
    through [Domain.join], so no result cell is ever written from two
    domains. Output order matches input order regardless of scheduling. *)

val map : domains:int -> (unit -> 'a) list -> 'a list
(** A task that raises kills the whole map (the daemon wraps every job so
    its tasks never raise). *)

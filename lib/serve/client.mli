(** Minimal [serve/1] client: connect to a daemon's Unix socket, pipeline
    request lines, read responses in order. *)

type t

val connect : socket:string -> t
(** Raises [Unix.Unix_error] if nothing listens on [socket]. *)

val send_line : t -> string -> unit
(** Ship one request line (newline appended). Does not wait for the
    response — pipelining consecutive sends is how clients exercise the
    daemon's batching window. *)

val recv_line : t -> string option
(** Next response line; [None] once the daemon closes the connection. *)

val request : t -> string -> string
(** [send_line] + [recv_line], raising [Failure] on EOF. *)

val request_json : t -> Obs.Json.t -> Obs.Json.t
(** [request] with encoding/decoding at both ends. *)

val close : t -> unit

val with_connection : socket:string -> (t -> 'a) -> 'a

val session : socket:string -> string list -> string list
(** Pipeline all request lines, then collect exactly one response per line
    (one connection). *)

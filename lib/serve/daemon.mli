(** The resident sizing daemon: accepts sequential client connections on a
    Unix socket, reads newline-delimited [serve/1] requests, drains every
    complete line already buffered into one batch, executes the batch
    through the {!Pool} domain pool (responses keep request order), and
    writes one response line per request.

    Robustness contract (test/test_serve.ml): a malformed line, an
    oversized request or batch, a cache-hash collision, or a job exception
    each produce a typed [serve/1] error response; a client that
    disconnects mid-job (SIGPIPE is ignored, [EPIPE] handled) only ends
    that connection. Only the [shutdown] op — or [max_connections], a test
    hook — stops the daemon. *)

type config = {
  socket : string;  (** Unix socket path; any stale file is replaced *)
  domains : int;  (** pool lanes for batch execution (1 = inline) *)
  max_batch : int;  (** cap on an explicit ["batch"] op's job count *)
  max_request_bytes : int;  (** per-line byte cap *)
  max_connections : int option;
      (** stop after serving this many connections (test hook) *)
  hash : (string -> string) option;
      (** cache-hash override (test hook for the collision path) *)
}

val default_config : socket:string -> config
(** domains 1, max_batch 64, max_request_bytes 8 MiB, no connection cap,
    stock MD5 content hash. *)

val run : config -> unit
(** Blocks until a [shutdown] op (or the connection cap) is reached. The
    socket file is removed on the way out. *)

(** The [serve/1] wire protocol: newline-delimited JSON over a Unix socket
    (statserve tentpole). One request object per line; one response object
    per line, in request order. Parsed with {!Obs.Json}; emitted by a
    compact single-line encoder (responses must never contain newlines).

    Request: [{"serve":1, "id":..., "op":"...", ...params}] where [id] is
    echoed verbatim (any JSON value). Ops: [ping], [info], [analyze],
    [optimize], [table1], [stats], [batch] (an array of sub-requests under
    ["jobs"]), [shutdown]. Circuit sources: ["circuit": "<suite name>"] or
    ["bench": "<.bench file contents>"]; an optional ["library"] object
    ([tau], [strengths]) selects a generated library (default: the stock
    one). Responses: [{"serve":1, "id":..., "ok":true, "result":{...}}] or
    [{"serve":1, "id":..., "ok":false,
    "error":{"code":"...", "message":"..."}}]. *)

type error_code =
  | Parse_error  (** line is not a [serve/1] JSON object *)
  | Bad_request  (** well-formed JSON, invalid fields *)
  | Unknown_op
  | Unknown_circuit  (** suite name not found, or .bench text rejected *)
  | Oversized_batch  (** explicit batch larger than the daemon's max *)
  | Oversized_request  (** request line longer than the daemon's byte cap *)
  | Cache_collision
      (** two different contents hashed to the same cache digest — the
          cache refuses to serve either rather than return wrong state *)
  | Job_failed  (** job raised; the daemon survives and reports *)

type error = { code : error_code; message : string }

val err : error_code -> ('a, unit, string, error) format4 -> 'a
val code_string : error_code -> string

type source = Suite of string | Bench of string

type libspec = { tau : float option; strengths : float array option }
(** [{ tau = None; strengths = None }] selects the default library. *)

val default_libspec : libspec

val libspec_key : libspec -> string
(** Canonical cache-key text for a library request. *)

type job =
  | Ping
  | Info of { source : source; library : libspec }
  | Analyze of { source : source; library : libspec; alpha : float }
  | Optimize of {
      source : source;
      library : libspec;
      alpha : float;
      domains : int;  (** [Sizer.config.window_domains] for this job *)
      max_iterations : int option;
      return_cells : bool;
    }
  | Table1 of {
      source : source;
      library : libspec;
      alphas : float list;
      domains : int;
      max_iterations : int option;
    }
  | Stats
  | Shutdown

type request = { id : Obs.Json.t; job : job }
type payload = Single of request | Batch of request list

val parse_line : string -> (payload, Obs.Json.t * error) result
(** Parse one request line. On error, the returned id is the request's
    [id] when it could be recovered ([Null] otherwise), so the error
    response still correlates. *)

type response = { id : Obs.Json.t; body : (Obs.Json.t, error) result }

val response_json : response -> Obs.Json.t

val render_response : response -> string
(** One line, no trailing newline. *)

val to_line : Obs.Json.t -> string
(** Compact single-line JSON encoding (strings RFC 8259-escaped). *)

let c_batches = Obs.Counters.make "serve.pool.batches"
let c_tasks = Obs.Counters.make "serve.pool.tasks"
let c_spawns = Obs.Counters.make "serve.pool.spawns"

let map ~domains tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  Obs.Counters.bump c_batches;
  Obs.Counters.add c_tasks n;
  if n = 0 then []
  else begin
    let next = Atomic.make 0 in
    let run_lane () =
      let rec go acc =
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then acc else go ((i, tasks.(i) ()) :: acc)
      in
      go []
    in
    let spawned = Int.max 0 (Int.min (domains - 1) (n - 1)) in
    Obs.Counters.add c_spawns spawned;
    let workers = Array.init spawned (fun _ -> Domain.spawn run_lane) in
    let mine = run_lane () in
    let all =
      Array.fold_left
        (fun acc d -> List.rev_append (Domain.join d) acc)
        mine workers
    in
    let out = Array.make n None in
    List.iter (fun (i, r) -> out.(i) <- Some r) all;
    Array.to_list out
    |> List.map (function Some r -> r | None -> assert false)
  end

type 'a entry = { content : string; value : 'a }

type 'a t = {
  hash : string -> string;
  m : Mutex.t;
  tbl : (string, 'a entry) Hashtbl.t;
}

let create ?(hash = Digest.string) () =
  { hash; m = Mutex.create (); tbl = Hashtbl.create 16 }

type 'a outcome = Hit of 'a | Miss of 'a | Collision of string

let find_or_build t ~content ~build =
  let digest = t.hash content in
  let lookup () =
    Mutex.protect t.m (fun () -> Hashtbl.find_opt t.tbl digest)
  in
  match lookup () with
  | Some e when String.equal e.content content -> Hit e.value
  | Some _ ->
      Collision
        (Printf.sprintf
           "cache digest %S matches an entry with different content"
           (String.escaped digest))
  | None -> (
      let value = build () in
      (* first insert wins: if another domain built the same content in the
         meantime, serve its (identical, deterministically-built) value *)
      Mutex.protect t.m (fun () ->
          match Hashtbl.find_opt t.tbl digest with
          | Some e when String.equal e.content content -> Hit e.value
          | Some _ ->
              Collision
                (Printf.sprintf
                   "cache digest %S matches an entry with different content"
                   (String.escaped digest))
          | None ->
              Hashtbl.add t.tbl digest { content; value };
              Miss value))

let length t = Mutex.protect t.m (fun () -> Hashtbl.length t.tbl)

(** Serve-driven Table 1: fan the experiment's circuits out to a running
    daemon as [table1] jobs (one per circuit, amortizing the daemon's warm
    caches and pool) and assemble the printed-table metrics from the
    responses. The daemon runs the exact {!Experiments.Table1.run_circuit}
    pipeline, so the numbers are identical to the in-process path; only the
    circuits (which never cross the wire) are absent from these rows. *)

type run = {
  alpha : float;
  mean_change_pct : float;
  sigma_change_pct : float;
  final_sigma_over_mean : float;
  area_change_pct : float;
  iterations : int;
  resizes : int;
  runtime_s : float;
  sizing_digest : string;
}

type row = {
  name : string;
  gates : int;
  original_sigma_over_mean : float;
  runs : run list;
}

val run :
  socket:string ->
  ?alphas:float list ->
  ?names:string list ->
  ?domains:int ->
  ?max_iterations:int ->
  unit ->
  (row list, string) result
(** [domains] is each job's [window_domains] (intra-job parallelism — the
    daemon's pool parallelizes across jobs on its own). One connection,
    pipelined requests, so the whole table is a single daemon batch. *)

val pp : row list Fmt.t
(** Same layout as {!Experiments.Table1.pp}. *)

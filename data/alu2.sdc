# sample constraints for the alu2 benchmark
create_clock -period 900.0 -name clk
set_input_delay 10.0 -clock clk [get_ports cin]
set_output_delay 60.0 -clock clk [get_ports cout]
set_output_delay 40.0 -clock clk [get_ports zero]

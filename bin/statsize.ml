(* statsize — command-line front end.

   Subcommands:
     list                    show the built-in benchmark suite
     info     CIRCUIT        structural metrics
     analyze  CIRCUIT        deterministic + statistical timing summary
     optimize CIRCUIT        baseline + StatisticalGreedy at one alpha
     paths    CIRCUIT        K worst paths with per-path miss probability
     slack    CIRCUIT        statistical required times / slack summary
     pca      CIRCUIT        correlation-aware SSTA vs the independent engines
     check    CIRCUIT        certify SSTA runs against abstract-interpretation
                             bounds (ABS rules) and report the dominance skip set
     races    [ROOT]...      parallel-safety static analysis of the project's
                             own sources (PAR rules), rooted at Domain.spawn
     dot      CIRCUIT FILE   Graphviz export with the WNSS cone highlighted
     table1 / fig1 / fig3 / fig4 / approx
                             regenerate the paper's experiments
     serve                   resident sizing daemon on a Unix socket
                             (serve/1 newline-delimited JSON; --client and
                             --table1 talk to a running daemon)
     export   CIRCUIT FILE   write a suite circuit as .bench
     liberty  FILE           dump the generated cell library *)

open Cmdliner

let lib = Lazy.force Cells.Library.default

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let circuit_arg =
  let doc = "Benchmark circuit name (see $(b,statsize list)) or a .bench file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let build_circuit name =
  if Sys.file_exists name then Netlist.Bench_io.load ~lib ~path:name ()
  else
    match Benchgen.Iscas_like.find name with
    | Some entry -> entry.Benchgen.Iscas_like.build ~lib
    | None ->
        Fmt.failwith "unknown circuit %s (try `statsize list` or a .bench path)"
          name

(* ---- subcommands ------------------------------------------------------- *)

let list_cmd =
  let run () =
    Fmt.pr "built-in benchmark suite:@.";
    List.iter
      (fun name ->
        let c = build_circuit name in
        Fmt.pr "  %a@." Netlist.Metrics.pp (Netlist.Metrics.compute c))
      Benchgen.Iscas_like.names
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark suite")
    Term.(const run $ const ())

let info_cmd =
  let run name =
    let c = build_circuit name in
    Fmt.pr "%a@." Netlist.Metrics.pp (Netlist.Metrics.compute c);
    let m = Netlist.Metrics.compute c in
    List.iter (fun (fn, n) -> Fmt.pr "  %-8s %d@." fn n) m.Netlist.Metrics.fn_histogram
  in
  Cmd.v (Cmd.info "info" ~doc:"Show structural metrics for a circuit")
    Term.(const run $ circuit_arg)

let trials_arg =
  Arg.(value & opt int 2000 & info [ "trials" ] ~doc:"Monte-Carlo trials.")

let analyze_cmd =
  let run name trials =
    let c = build_circuit name in
    let _ = Core.Initial_sizing.apply ~lib c in
    let det = Sta.Analysis.analyze c in
    Fmt.pr "deterministic: max arrival %.2f ps (critical path %d nodes)@."
      (Sta.Analysis.max_arrival det)
      (List.length (Sta.Analysis.critical_path det));
    let full = Ssta.Fullssta.run c in
    let m = Ssta.Fullssta.output_moments full in
    Fmt.pr "FULLSSTA: mu=%.2f sigma=%.2f sigma/mean=%.4f@." m.Numerics.Clark.mean
      (Numerics.Clark.sigma m)
      (Ssta.Fullssta.sigma_over_mean full);
    let stats = Ssta.Fassta.make_stats () in
    let fast = Ssta.Fassta.run ~stats c in
    let fm = Ssta.Fassta.output_moments c fast in
    Fmt.pr "FASSTA:   mu=%.2f sigma=%.2f (cutoff hit rate %.0f%%)@."
      fm.Numerics.Clark.mean (Numerics.Clark.sigma fm)
      (100.0 *. Ssta.Fassta.cutoff_fraction stats);
    let mc =
      Ssta.Monte_carlo.run
        ~config:{ Ssta.Monte_carlo.default_config with trials }
        c
    in
    let s = Ssta.Monte_carlo.circuit_stats mc in
    Fmt.pr "MonteCarlo (%d trials): mu=%.2f sigma=%.2f@." trials
      (Numerics.Stats.mean s) (Numerics.Stats.std s)
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Timing analysis with all three engines")
    Term.(const run $ circuit_arg $ trials_arg)

let alpha_arg =
  Arg.(value & opt float 3.0 & info [ "alpha" ] ~doc:"Variance weight α.")

let no_recover_arg =
  Arg.(value & flag & info [ "no-recover" ] ~doc:"Skip the area-recovery pass.")

let window_domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ]
        ~doc:
          "Intra-run window-evaluation domains (0 = historical serial path). \
           Any value yields byte-identical sizings; see the sizer docs.")

let optimize_cmd =
  let run verbose name alpha no_recover domains =
    setup_logs verbose;
    let baseline = Experiments.Pipeline.prepare ~lib (fun () -> build_circuit name) in
    Fmt.pr "baseline (mean-optimized): mu=%.2f sigma=%.2f area=%.1f@."
      baseline.Experiments.Pipeline.moments.Numerics.Clark.mean
      (Numerics.Clark.sigma baseline.Experiments.Pipeline.moments)
      baseline.Experiments.Pipeline.area;
    let config =
      { Core.Sizer.default_config with window_domains = domains }
    in
    let r =
      Experiments.Pipeline.run_alpha ~recover:(not no_recover) ~config ~lib
        baseline ~alpha
    in
    Fmt.pr
      "alpha=%g: dmu=%+.1f%% dsigma=%+.1f%% sigma/mean %.4f -> %.4f darea=%+.1f%% \
       (%d iterations, %d resizes, %.1f s)@."
      alpha r.Experiments.Pipeline.mean_change_pct
      r.Experiments.Pipeline.sigma_change_pct
      (Experiments.Pipeline.sigma_over_mean baseline.Experiments.Pipeline.moments)
      r.Experiments.Pipeline.final_sigma_over_mean
      r.Experiments.Pipeline.area_change_pct r.Experiments.Pipeline.iterations
      r.Experiments.Pipeline.resizes r.Experiments.Pipeline.runtime_s
  in
  Cmd.v (Cmd.info "optimize" ~doc:"Run StatisticalGreedy on a circuit")
    Term.(
      const run $ verbose_arg $ circuit_arg $ alpha_arg $ no_recover_arg
      $ window_domains_arg)

let names_arg =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "circuits" ] ~doc:"Comma-separated subset of suite circuits.")

let csv_arg =
  Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Write CSV to FILE.")

let table1_cmd =
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:
            "Round-robin the circuits across this many domains (clamped to \
             the host's recommended domain count).")
  in
  let run names csv domains =
    let names = Option.value ~default:Benchgen.Iscas_like.names names in
    let rows = Experiments.Table1.run ~names ~domains ~lib () in
    Fmt.pr "%a" Experiments.Table1.pp rows;
    Option.iter
      (fun path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Experiments.Table1.to_csv rows));
        Fmt.pr "wrote %s@." path)
      csv
  in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table 1")
    Term.(const run $ names_arg $ csv_arg $ domains_arg)

let fig1_cmd =
  let run () = Fmt.pr "%a" Experiments.Fig1.pp (Experiments.Fig1.run ~lib ()) in
  Cmd.v (Cmd.info "fig1" ~doc:"Reproduce Fig. 1") Term.(const run $ const ())

let fig3_cmd =
  let run () = Fmt.pr "%a" Experiments.Fig3.pp (Experiments.Fig3.trace ()) in
  Cmd.v (Cmd.info "fig3" ~doc:"Reproduce Fig. 3") Term.(const run $ const ())

let fig4_cmd =
  let run () = Fmt.pr "%a" Experiments.Fig4.pp (Experiments.Fig4.run ~lib ()) in
  Cmd.v (Cmd.info "fig4" ~doc:"Reproduce Fig. 4") Term.(const run $ const ())

let ablation_cmd =
  let run () = Fmt.pr "%a" Experiments.Ablation.pp (Experiments.Ablation.run ~lib ()) in
  Cmd.v (Cmd.info "ablation" ~doc:"Ablation over sizer design choices")
    Term.(const run $ const ())

let approx_cmd =
  let run () =
    Fmt.pr "%a" Experiments.Approx.pp_erf (Experiments.Approx.erf_study ());
    Fmt.pr "%a" Experiments.Approx.pp_max (Experiments.Approx.max_study ());
    Fmt.pr "%a" Experiments.Approx.pp_cutoffs
      (Experiments.Approx.cutoff_study ~lib ())
  in
  Cmd.v
    (Cmd.info "approx" ~doc:"Reproduce the §4.3 approximation study")
    Term.(const run $ const ())

let path_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Output path.")

let export_cmd =
  let run name path =
    let c = build_circuit name in
    Netlist.Bench_io.save c ~path;
    Fmt.pr "wrote %s@." path
  in
  Cmd.v (Cmd.info "export" ~doc:"Write a circuit as .bench")
    Term.(const run $ circuit_arg $ path_arg)

let verilog_cmd =
  let run name path =
    let c = build_circuit name in
    Netlist.Verilog.save ~module_name:name c ~path;
    Fmt.pr "wrote %s@." path
  in
  Cmd.v (Cmd.info "verilog" ~doc:"Write a circuit as structural Verilog")
    Term.(const run $ circuit_arg $ path_arg)

let sdf_cmd =
  let run name path =
    let c = build_circuit name in
    let _ = Core.Initial_sizing.apply ~lib c in
    let e = Sta.Electrical.compute c in
    Sta.Sdf.save ~design:name c e ~path;
    Fmt.pr "wrote %s@." path
  in
  Cmd.v
    (Cmd.info "sdf" ~doc:"Write SDF delays with statistical +-3 sigma corners")
    Term.(const run $ circuit_arg $ path_arg)

let power_cmd =
  let run name trials =
    let c = build_circuit name in
    let _ = Core.Initial_sizing.apply ~lib c in
    let r =
      Ssta.Power_analysis.run
        ~config:{ Ssta.Power_analysis.default_config with trials }
        c
    in
    Fmt.pr "%a@." Ssta.Power_analysis.pp r
  in
  Cmd.v (Cmd.info "power" ~doc:"Dynamic power and die-to-die leakage spread")
    Term.(const run $ circuit_arg $ trials_arg)

let liberty_cmd =
  let run path =
    Cells.Liberty.save lib ~path;
    Fmt.pr "wrote %s (%d cells)@." path (Cells.Library.cell_count lib)
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v (Cmd.info "liberty" ~doc:"Dump the generated cell library")
    Term.(const run $ path)

let paths_cmd =
  let k_arg = Arg.(value & opt int 10 & info [ "k" ] ~doc:"How many paths.") in
  let run name k =
    let c = build_circuit name in
    let _ = Core.Initial_sizing.apply ~lib c in
    let t = Sta.Analysis.analyze c in
    let e = Sta.Analysis.electrical t in
    let model = Variation.Model.default in
    let period = Sta.Analysis.max_arrival t in
    Fmt.pr "%d worst paths (period anchor %.1f ps):@." k period;
    List.iter
      (fun p ->
        let m = Sta.Paths.path_moments ~model c e p in
        Fmt.pr "  %.1f ps, stat N(%.1f, %.1f^2), P(miss anchor)=%.2f | %d nodes@."
          p.Sta.Paths.arrival m.Numerics.Clark.mean (Numerics.Clark.sigma m)
          (Sta.Paths.violation_probability ~model c e p ~period)
          (List.length p.Sta.Paths.nodes))
      (Sta.Paths.k_worst t c ~k)
  in
  Cmd.v (Cmd.info "paths" ~doc:"Enumerate the K worst paths")
    Term.(const run $ circuit_arg $ k_arg)

let slack_cmd =
  let period_arg =
    Arg.(value & opt (some float) None
         & info [ "period" ] ~doc:"Clock period (ps); default mean + 1 sigma.")
  in
  let sdc_arg =
    Arg.(value & opt (some string) None
         & info [ "sdc" ] ~doc:"SDC constraint file (overrides --period).")
  in
  let run name period sdc_path alpha =
    let c = build_circuit name in
    let _ = Core.Initial_sizing.apply ~lib c in
    let model = Variation.Model.default in
    let full = Ssta.Fullssta.run c in
    let m = Ssta.Fullssta.output_moments full in
    let sdc = Option.map (fun path -> Sta.Sdc.load ~path) sdc_path in
    let period =
      match (sdc, period) with
      | Some sdc, _ -> Sta.Sdc.period_exn sdc
      | None, Some p -> p
      | None, None -> m.Numerics.Clark.mean +. Numerics.Clark.sigma m
    in
    let sl =
      match sdc with
      | Some sdc -> Ssta.Stat_slack.of_sdc ~model ~sdc full c
      | None -> Ssta.Stat_slack.of_fullssta ~model ~period full c
    in
    Fmt.pr "statistical slack at T=%.1f ps (arrival N(%.1f, %.1f^2)):@." period
      m.Numerics.Clark.mean (Numerics.Clark.sigma m);
    List.iter
      (fun o ->
        match
          (Ssta.Stat_slack.slack sl o, Ssta.Stat_slack.meet_probability sl o)
        with
        | Some s, Some p ->
            Fmt.pr "  %-10s slack N(%+.1f, %.1f^2)  P(meet)=%.3f@."
              (Netlist.Circuit.node_name c o)
              s.Numerics.Clark.mean (Numerics.Clark.sigma s) p
        | _ -> ())
      (Netlist.Circuit.outputs c);
    match Ssta.Stat_slack.worst_node sl ~alpha c with
    | Some (id, v) ->
        Fmt.pr "worst pessimistic slack (mean - %g sigma): %s at %+.1f ps@." alpha
          (Netlist.Circuit.node_name c id)
          v
    | None -> ()
  in
  Cmd.v (Cmd.info "slack" ~doc:"Statistical required times and slack")
    Term.(const run $ circuit_arg $ period_arg $ sdc_arg $ alpha_arg)

let pca_cmd =
  let share_arg =
    Arg.(value & opt float 0.5
         & info [ "global-share" ] ~doc:"Die-to-die variance share.")
  in
  let run name share trials =
    let c = build_circuit name in
    let _ = Core.Initial_sizing.apply ~lib c in
    let structure = Variation.Correlated.create ~global_share:share () in
    let full = Ssta.Fullssta.run c in
    let fm = Ssta.Fullssta.output_moments full in
    let pca = Ssta.Pca.run ~structure c in
    let pa = Ssta.Pca.output_arrival pca c in
    let mc =
      Ssta.Monte_carlo.run
        ~config:{ Ssta.Monte_carlo.default_config with trials; structure }
        c
    in
    let ms = Ssta.Monte_carlo.circuit_stats mc in
    Fmt.pr "global variance share %.2f:@." share;
    Fmt.pr "  independent SSTA : mu=%.1f sigma=%.2f@." fm.Numerics.Clark.mean
      (Numerics.Clark.sigma fm);
    Fmt.pr "  PCA SSTA         : mu=%.1f sigma=%.2f@." pa.Ssta.Pca.mean
      (Ssta.Pca.total_sigma pa);
    Fmt.pr "  correlated MC    : mu=%.1f sigma=%.2f@." (Numerics.Stats.mean ms)
      (Numerics.Stats.std ms)
  in
  Cmd.v
    (Cmd.info "pca" ~doc:"Correlation-aware SSTA vs independent engines")
    Term.(const run $ circuit_arg $ share_arg $ trials_arg)

let rank_cmd =
  let top_arg = Arg.(value & opt int 15 & info [ "top" ] ~doc:"How many gates.") in
  let run name top =
    let c = build_circuit name in
    let _ = Core.Initial_sizing.apply ~lib c in
    let crit = Core.Criticality.compute c in
    Fmt.pr "%a" (Core.Criticality.pp ~top c) crit
  in
  Cmd.v
    (Cmd.info "rank" ~doc:"Rank gates by statistical criticality")
    Term.(const run $ circuit_arg $ top_arg)

let dot_cmd =
  let run name path =
    let c = build_circuit name in
    let _ = Core.Initial_sizing.apply ~lib c in
    let full = Ssta.Fullssta.run c in
    let cone = Core.Wnss.critical_cone ~model:Variation.Model.default c full in
    let in_cone = Hashtbl.create 97 in
    List.iter (fun id -> Hashtbl.replace in_cone id ()) cone;
    let style id =
      { Netlist.Dot.label = None; highlight = Hashtbl.mem in_cone id }
    in
    Netlist.Dot.save ~graph_name:name ~style c ~path;
    Fmt.pr "wrote %s (%d cone nodes highlighted)@." path (List.length cone)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Graphviz export with the WNSS cone highlighted")
    Term.(const run $ circuit_arg $ path_arg)

let lint_cmd =
  let targets_arg =
    let doc = "Circuits to lint: suite names or .bench files. With no \
               targets, only the library and variation model are checked." in
    Arg.(value & pos_all string [] & info [] ~docv:"CIRCUIT" ~doc)
  in
  let all_arg =
    Arg.(value & flag
         & info [ "all" ] ~doc:"Also lint every built-in suite circuit.")
  in
  let format_arg =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ] ~doc:"Exit 3 when warnings are present (errors \
                                   always exit 1).")
  in
  let disable_arg =
    Arg.(value & opt (list string) []
         & info [ "disable" ] ~doc:"Comma-separated rule codes to disable.")
  in
  let severity_arg =
    Arg.(value & opt (list string) []
         & info [ "severity" ]
             ~doc:"Comma-separated severity overrides, e.g. \
                   CIRC007=error,LIB002=info.")
  in
  let liberty_arg =
    Arg.(value & opt (some file) None
         & info [ "liberty" ] ~docv:"FILE"
             ~doc:"Lint this liberty-like library dump instead of the \
                   generated default.")
  in
  (* Usage problems exit 2 with a plain message so CI can tell "you called
     it wrong" (2) apart from "the design is bad" (1/3). *)
  let die fmt = Fmt.kstr (fun m -> Fmt.epr "statsize lint: %s@." m; exit 2) fmt in
  let run targets all format strict disable overrides liberty =
    let registry =
      match Lint.Registry.of_spec ~disable ~overrides () with
      | Ok r -> r
      | Error msg -> die "--disable/--severity: %s" msg
    in
    let model = Variation.Model.default in
    let lib =
      match liberty with
      | None -> lib
      | Some path -> Cells.Liberty.load ~path
    in
    let targets =
      targets @ if all then Benchgen.Iscas_like.names else []
    in
    let lint_target name =
      if Sys.file_exists name then begin
        (* .bench file: permissive parse diagnostics first; only run the
           circuit rules when the file maps cleanly. *)
        let file_diags = Netlist.Bench_io.lint_file ~path:name in
        if Diag.has_errors file_diags then file_diags
        else
          file_diags
          @ Lint.Engine.check_circuit ~lib
              (Netlist.Bench_io.load ~validate:false ~lib ~path:name ())
      end
      else
        match Benchgen.Iscas_like.find name with
        | Some entry ->
            Lint.Engine.check_circuit ~lib (entry.Benchgen.Iscas_like.build ~lib)
        | None ->
            die "unknown circuit %s (try `statsize list` or a .bench path)"
              name
    in
    let results =
      ( "library+model",
        Lint.Engine.check_library lib @ Lint.Engine.check_model model )
      :: List.map (fun t -> (t, lint_target t)) targets
    in
    let results =
      List.map (fun (t, ds) -> (t, Lint.Registry.apply registry ds)) results
    in
    (match format with
    | `Json -> print_endline (Lint.Report.to_json results)
    | `Text ->
        List.iter
          (fun (t, ds) -> Fmt.pr "%s:@.%a" t Lint.Report.pp ds)
          results);
    exit (Lint.Report.exit_code ~strict (List.concat_map snd results))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Typed diagnostics for circuits, the library, and SSTA invariants"
       ~man:
         [
           `S Manpage.s_description;
           `P "Runs the circuit, library, and statistical rule packs and \
               prints coded findings (CIRC*/LIB*/STAT*/BENCH*). Exit codes: \
               0 clean or warnings, 1 errors, 2 usage errors, 3 warnings \
               with $(b,--strict).";
         ])
    Term.(const run $ targets_arg $ all_arg $ format_arg $ strict_arg
          $ disable_arg $ severity_arg $ liberty_arg)

let check_cmd =
  let targets_arg =
    let doc = "Circuits to certify: suite names or .bench files." in
    Arg.(value & pos_all string [] & info [] ~docv:"CIRCUIT" ~doc)
  in
  let all_arg =
    Arg.(value & flag
         & info [ "all" ] ~doc:"Also certify every built-in suite circuit.")
  in
  let format_arg =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let scope_arg =
    Arg.(value
         & opt (enum [ ("current", `Current); ("all-sizings", `All) ]) `Current
         & info [ "scope" ]
             ~doc:"Certify the $(b,current) sizing (tight) or hull over \
                   $(b,all-sizings) of the drive ladder (sound under any \
                   optimizer trajectory).")
  in
  let margin_arg =
    Arg.(value & opt (some float) None
         & info [ "margin" ]
             ~doc:"Dominance margin in joint sigmas (default 4).")
  in
  let budget_tol_arg =
    Arg.(value & opt float 0.05
         & info [ "budget-tol" ]
             ~doc:"ABS005 threshold: accumulated FASSTA budget as a fraction \
                   of the certified RV_O mean bound.")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ] ~doc:"Exit 3 when warnings are present (errors \
                                   always exit 1).")
  in
  let disable_arg =
    Arg.(value & opt (list string) []
         & info [ "disable" ] ~doc:"Comma-separated rule codes to disable.")
  in
  let severity_arg =
    Arg.(value & opt (list string) []
         & info [ "severity" ]
             ~doc:"Comma-separated severity overrides, e.g. ABS005=info.")
  in
  let die fmt = Fmt.kstr (fun m -> Fmt.epr "statsize check: %s@." m; exit 2) fmt in
  let run targets all format scope margin budget_tol strict disable overrides =
    let registry =
      match Lint.Registry.of_spec ~disable ~overrides () with
      | Ok r -> r
      | Error msg -> die "--disable/--severity: %s" msg
    in
    let targets = targets @ if all then Benchgen.Iscas_like.names else [] in
    if targets = [] then
      die "no circuits to certify (pass suite names, .bench paths, or --all)";
    let scope =
      match scope with
      | `Current -> Absint.Statcheck.Current_sizing
      | `All -> Absint.Statcheck.All_sizings
    in
    let model = Variation.Model.default in
    let check_target name =
      let c = try build_circuit name with Failure msg -> die "%s" msg in
      ignore (Core.Initial_sizing.apply ~lib c);
      let clark_config =
        { Absint.Statcheck.default_config with Absint.Statcheck.scope; model }
      in
      let sc = Absint.Statcheck.run ~config:clark_config ~lib c in
      let scd =
        Absint.Statcheck.run
          ~config:
            { clark_config with semantics = Absint.Domain.Distribution_free }
          ~lib c
      in
      let dom = Absint.Dominance.compute ?margin sc in
      let full = Ssta.Fullssta.run c in
      let fast = Ssta.Fassta.run c in
      let exact =
        let electrical = Sta.Electrical.compute c in
        let scratch =
          Array.make (Netlist.Circuit.size c)
            (Numerics.Clark.moments ~mean:0.0 ~var:0.0)
        in
        Ssta.Fassta.propagate_into ~exact:true ~model ~circuit:c ~electrical
          scratch;
        scratch
      in
      let diags =
        Lint.Absint_rules.check_fullssta scd (Ssta.Fullssta.moments full)
        @ Lint.Absint_rules.check_fassta ~engine:`Fast sc (fun id -> fast.(id))
        @ Lint.Absint_rules.check_fassta ~engine:`Exact sc (fun id ->
              exact.(id))
        @ Lint.Absint_rules.check_budget sc
            ~fast:(fun id -> fast.(id))
            ~exact:(fun id -> exact.(id))
        @ Lint.Absint_rules.check_budget_tolerance ~tol:budget_tol sc
      in
      (c, sc, scd, dom, Lint.Registry.apply registry diags)
    in
    let results = List.map (fun t -> (t, check_target t)) targets in
    (match format with
    | `Json ->
        print_endline
          (Lint.Report.to_json
             (List.map (fun (t, (_, _, _, _, ds)) -> (t, ds)) results))
    | `Text ->
        List.iter
          (fun (t, (c, sc, scd, dom, ds)) ->
            Fmt.pr "%s:@.  clark:     %a@.  dist-free: %a@.  %a@." t
              Absint.Statcheck.pp_summary sc Absint.Statcheck.pp_summary scd
              Absint.Dominance.pp dom;
            (match Absint.Dominance.dominated_outputs dom with
            | [] -> ()
            | outs ->
                Fmt.pr "  dominated outputs: %a@."
                  Fmt.(list ~sep:sp string)
                  (List.map (Netlist.Circuit.node_name c) outs));
            Fmt.pr "%a" Lint.Report.pp ds)
          results);
    exit
      (Lint.Report.exit_code ~strict
         (List.concat_map (fun (_, (_, _, _, _, ds)) -> ds) results))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Certify SSTA runs against abstract-interpretation bounds (ABS rules)"
       ~man:
         [
           `S Manpage.s_description;
           `P "Runs the statcheck certifier (Clark-normal and \
               distribution-free abstract interpretation) over each circuit, \
               then cross-checks concrete FULLSSTA and FASSTA results \
               against the certified enclosures (ABS001-ABS005) and reports \
               the dominance skip set the sizer's $(b,prune) mode consumes. \
               Exit codes match $(b,statsize lint): 0 clean or warnings, 1 \
               errors, 2 usage errors, 3 warnings with $(b,--strict).";
         ])
    Term.(const run $ targets_arg $ all_arg $ format_arg $ scope_arg
          $ margin_arg $ budget_tol_arg $ strict_arg $ disable_arg
          $ severity_arg)

let races_cmd =
  let roots_arg =
    let doc = "Source roots to scan for .ml files (recursive; _build and \
               dot-directories skipped). Default: $(b,lib) $(b,bin)." in
    Arg.(value & pos_all dir [] & info [] ~docv:"ROOT" ~doc)
  in
  let entry_arg =
    Arg.(value & opt_all string []
         & info [ "entry" ] ~docv:"NAME"
             ~doc:"Restrict the analysis to Domain.spawn sites inside this \
                   binding ($(b,Module.binding), bare $(b,binding), or bare \
                   $(b,Module)). Repeatable; default: every spawn site.")
  in
  let allow_file_arg =
    Arg.(value & opt (some file) None
         & info [ "allow-file" ] ~docv:"FILE"
             ~doc:"Allowlist file: lines of CODE PATH[:LINE] reason. Entries \
                   that suppress nothing are flagged PAR007.")
  in
  let format_arg =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ] ~doc:"Exit 3 when warnings are present (errors \
                                   always exit 1).")
  in
  let disable_arg =
    Arg.(value & opt (list string) []
         & info [ "disable" ] ~doc:"Comma-separated rule codes to disable.")
  in
  let severity_arg =
    Arg.(value & opt (list string) []
         & info [ "severity" ]
             ~doc:"Comma-separated severity overrides, e.g. \
                   PAR005=error,PAR004=info.")
  in
  let die fmt = Fmt.kstr (fun m -> Fmt.epr "statsize races: %s@." m; exit 2) fmt in
  let run roots entries allow_file format strict disable overrides =
    let registry =
      match Lint.Registry.of_spec ~disable ~overrides () with
      | Ok r -> r
      | Error msg -> die "--disable/--severity: %s" msg
    in
    let roots = if roots = [] then [ "lib"; "bin" ] else roots in
    List.iter
      (fun r -> if not (Sys.file_exists r) then die "no such root %s" r)
      roots;
    let allow =
      match allow_file with
      | None -> []
      | Some path -> (
          match Statrace.Analyze.parse_allow_file path with
          | Ok a -> a
          | Error msg -> die "--allow-file: %s" msg)
    in
    let result =
      Statrace.Analyze.run_dirs ~config:{ Statrace.Analyze.entries; allow }
        roots
    in
    let findings = Lint.Registry.apply registry result.Statrace.Analyze.findings in
    (match format with
    | `Json ->
        print_endline (Lint.Report.to_json [ ("races", findings) ])
    | `Text ->
        Fmt.pr "scanned %d files under %s; %d parallel entry point%s:@."
          result.Statrace.Analyze.files_scanned
          (String.concat ", " roots)
          (List.length result.Statrace.Analyze.entry_points)
          (if List.length result.Statrace.Analyze.entry_points = 1 then ""
           else "s");
        List.iter
          (fun (name, file, line) ->
            Fmt.pr "  %s (%s:%d)@." name file line)
          result.Statrace.Analyze.entry_points;
        if result.Statrace.Analyze.suppressed > 0 then
          Fmt.pr "%d finding%s suppressed by pragmas/allowlist@."
            result.Statrace.Analyze.suppressed
            (if result.Statrace.Analyze.suppressed = 1 then "" else "s");
        Fmt.pr "races:@.%a" Lint.Report.pp findings);
    exit (Lint.Report.exit_code ~strict findings)
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:"Parallel-safety static analysis of the project's own sources"
       ~man:
         [
           `S Manpage.s_description;
           `P "Parses every .ml file under the given roots with the \
               compiler's own front end, builds a module-level call graph, \
               and classifies every mutable location reachable from a \
               Domain.spawn region (PAR001-PAR007). Atomic operations, \
               Mutex.protect regions (including callees reached only through \
               guarded call sites), Domain.DLS state, and thunk-local \
               allocations are safe by construction. Suppress a reviewed \
               finding with a (* statrace: safe — reason *) comment on the \
               line or the line above, or with $(b,--allow-file); stale \
               suppressions are themselves flagged (PAR007). Exit codes \
               match $(b,statsize lint): 0 clean or warnings, 1 errors, 2 \
               usage errors, 3 warnings with $(b,--strict).";
         ])
    Term.(const run $ roots_arg $ entry_arg $ allow_file_arg $ format_arg
          $ strict_arg $ disable_arg $ severity_arg)

let flow_cmd =
  let roots_arg =
    let doc = "Source roots to scan for .ml files (recursive; _build and \
               dot-directories skipped). Default: $(b,lib) $(b,bin)." in
    Arg.(value & pos_all dir [] & info [] ~docv:"ROOT" ~doc)
  in
  let entry_arg =
    Arg.(value & opt_all string []
         & info [ "entry" ] ~docv:"NAME"
             ~doc:"Replace $(b,both) built-in entry sets (hot kernels and \
                   deterministic-result roots) with this binding \
                   ($(b,Module.binding), bare $(b,binding), or bare \
                   $(b,Module)). Repeatable.")
  in
  let allow_file_arg =
    Arg.(value & opt (some file) None
         & info [ "allow-file" ] ~docv:"FILE"
             ~doc:"Allowlist file: lines of CODE PATH[:LINE] reason. Entries \
                   that suppress nothing are flagged FLOW007.")
  in
  let format_arg =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ] ~doc:"Exit 3 when warnings are present (errors \
                                   always exit 1).")
  in
  let disable_arg =
    Arg.(value & opt (list string) []
         & info [ "disable" ] ~doc:"Comma-separated rule codes to disable.")
  in
  let severity_arg =
    Arg.(value & opt (list string) []
         & info [ "severity" ]
             ~doc:"Comma-separated severity overrides, e.g. \
                   HOT001=error,EXC002=info.")
  in
  let die fmt = Fmt.kstr (fun m -> Fmt.epr "statsize flow: %s@." m; exit 2) fmt in
  let run roots entries allow_file format strict disable overrides =
    let registry =
      match Lint.Registry.of_spec ~disable ~overrides () with
      | Ok r -> r
      | Error msg -> die "--disable/--severity: %s" msg
    in
    let roots = if roots = [] then [ "lib"; "bin" ] else roots in
    List.iter
      (fun r -> if not (Sys.file_exists r) then die "no such root %s" r)
      roots;
    let allow =
      match allow_file with
      | None -> []
      | Some path -> (
          match Statflow.Analyze.parse_allow_file path with
          | Ok a -> a
          | Error msg -> die "--allow-file: %s" msg)
    in
    let result =
      Statflow.Analyze.run_dirs ~config:{ Statflow.Analyze.entries; allow }
        roots
    in
    let findings = Lint.Registry.apply registry result.Statflow.Analyze.findings in
    (match format with
    | `Json -> print_endline (Lint.Report.to_json [ ("flow", findings) ])
    | `Text ->
        Fmt.pr
          "scanned %d files under %s; %d hot entr%s, %d result entr%s:@."
          result.Statflow.Analyze.files_scanned
          (String.concat ", " roots)
          (List.length result.Statflow.Analyze.hot_entries)
          (if List.length result.Statflow.Analyze.hot_entries = 1 then "y"
           else "ies")
          (List.length result.Statflow.Analyze.det_entries)
          (if List.length result.Statflow.Analyze.det_entries = 1 then "y"
           else "ies");
        List.iter
          (fun (name, file, line) -> Fmt.pr "  hot %s (%s:%d)@." name file line)
          result.Statflow.Analyze.hot_entries;
        List.iter
          (fun (name, file, line) -> Fmt.pr "  det %s (%s:%d)@." name file line)
          result.Statflow.Analyze.det_entries;
        List.iter
          (fun (name, c) ->
            Fmt.pr
              "  alloc summary %s: %d bindings, %d constructs, %d closures, \
               %d builders (%d in loops)@."
              name c.Statflow.Analyze.bindings c.Statflow.Analyze.constructs
              c.Statflow.Analyze.closures c.Statflow.Analyze.builders
              c.Statflow.Analyze.in_loop)
          result.Statflow.Analyze.summaries;
        if result.Statflow.Analyze.suppressed > 0 then
          Fmt.pr "%d finding%s suppressed by pragmas/allowlist@."
            result.Statflow.Analyze.suppressed
            (if result.Statflow.Analyze.suppressed = 1 then "" else "s");
        Fmt.pr "flow:@.%a" Lint.Report.pp findings);
    exit (Lint.Report.exit_code ~strict findings)
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:
         "Allocation, exception-safety, and determinism static analysis of \
          the hot paths"
       ~man:
         [
           `S Manpage.s_description;
           `P "Parses every .ml file under the given roots with the \
               compiler's own front end, roots reachability at the sizer/SSTA \
               hot kernels and at the deterministic-result entry points, and \
               classifies three packs: HOT (heap allocation in iteration \
               contexts on hot paths, plus the boxed-float-return \
               heuristic), EXC (raises that can skip a resource release; \
               partial stdlib calls on hot paths), and DET \
               (order-sensitive Hashtbl traversals, wall-clock reads, and \
               ambient Random in result-producing code — the static \
               complement of the serial-vs-parallel bit-exactness gate). \
               Suppress a reviewed finding with a (* statflow: safe — \
               reason *) comment on the line or the line above, or with \
               $(b,--allow-file); stale suppressions are themselves flagged \
               (FLOW007). Exit codes match $(b,statsize lint): 0 clean or \
               warnings, 1 errors, 2 usage errors, 3 warnings with \
               $(b,--strict).";
         ])
    Term.(const run $ roots_arg $ entry_arg $ allow_file_arg $ format_arg
          $ strict_arg $ disable_arg $ severity_arg)

let serve_cmd =
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path to listen on.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:"Domain-pool lanes for batch execution (1 = inline).")
  in
  let max_batch_arg =
    Arg.(
      value & opt int 64
      & info [ "max-batch" ] ~doc:"Cap on an explicit batch op's job count.")
  in
  let max_connections_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-connections" ]
          ~doc:"Stop after serving this many connections (testing).")
  in
  let client_arg =
    Arg.(
      value & flag
      & info [ "client" ]
          ~doc:
            "Client mode: pipeline request lines from stdin to an already \
             running daemon at $(b,--socket) and print one response line \
             per request.")
  in
  let table1_arg =
    Arg.(
      value & flag
      & info [ "table1" ]
          ~doc:
            "Client mode: reproduce Table 1 through a running daemon (one \
             table1 job per suite circuit, pipelined on one connection).")
  in
  let run verbose socket domains max_batch max_connections client table1 names
      =
    setup_logs verbose;
    if table1 then
      match Serve.Table1_client.run ~socket ~domains ?names () with
      | Ok rows -> Fmt.pr "%a" Serve.Table1_client.pp rows
      | Error msg -> Fmt.failwith "serve table1: %s" msg
    else if client then begin
      let lines = In_channel.input_lines In_channel.stdin in
      let lines = List.filter (fun l -> String.trim l <> "") lines in
      List.iter print_endline (Serve.Client.session ~socket lines)
    end
    else
      Serve.Daemon.run
        {
          (Serve.Daemon.default_config ~socket) with
          domains;
          max_batch;
          max_connections;
        }
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the resident sizing daemon (or a client against one)"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Without $(b,--client)/$(b,--table1), listens on the Unix \
              socket for newline-delimited serve/1 JSON requests: ping, \
              info, analyze, optimize, table1, stats, batch, shutdown. \
              Parsed netlists and generated libraries are cached by content \
              hash across jobs; batched requests fan out across \
              $(b,--domains) pool lanes. Sizings are byte-identical for \
              every domain count.";
           `P
             "Example session: echo \
              '{\"serve\":1,\"id\":1,\"op\":\"ping\"}' | statsize serve \
              --socket /tmp/statserve.sock --client";
         ])
    Term.(
      const run $ verbose_arg $ socket_arg $ domains_arg $ max_batch_arg
      $ max_connections_arg $ client_arg $ table1_arg $ names_arg)

let main =
  let doc = "statistical gate sizing for process-variation tolerance" in
  Cmd.group
    (Cmd.info "statsize" ~doc
       ~man:
         [
           `S Manpage.s_common_options;
           `P
             "$(b,--metrics) $(i,FILE) and $(b,--trace) $(i,FILE) may be \
              placed anywhere on the command line (they are stripped before \
              subcommand parsing). They enable the statobs observability \
              layer for the whole invocation and, on exit, write a flat \
              metrics JSON (deterministic operation counters plus span \
              summaries) or a Chrome trace_event JSON loadable at \
              chrome://tracing, respectively.";
         ])
    [ list_cmd; info_cmd; lint_cmd; check_cmd; races_cmd; flow_cmd; analyze_cmd; optimize_cmd; paths_cmd; slack_cmd;
      pca_cmd; rank_cmd; dot_cmd; table1_cmd; fig1_cmd; fig3_cmd; fig4_cmd;
      approx_cmd; ablation_cmd; export_cmd; verilog_cmd; sdf_cmd; power_cmd;
      liberty_cmd; serve_cmd ]

(* cmdliner's group parser cannot accept options placed before the
   subcommand name, so the observability flags are stripped from argv by
   hand and the exports hang off [at_exit] — several subcommands (lint,
   check) terminate through [exit] deep inside their run functions, and
   at_exit is the only hook that sees every path out. *)
let obs_argv () =
  let metrics = ref None and trace = ref None in
  let die msg =
    Fmt.epr "statsize: %s@." msg;
    exit 2
  in
  let rec strip acc = function
    | [] -> List.rev acc
    | [ "--metrics" ] -> die "--metrics needs a FILE argument"
    | [ "--trace" ] -> die "--trace needs a FILE argument"
    | "--metrics" :: path :: rest ->
        metrics := Some path;
        strip acc rest
    | "--trace" :: path :: rest ->
        trace := Some path;
        strip acc rest
    | a :: rest when String.starts_with ~prefix:"--metrics=" a ->
        metrics := Some (String.sub a 10 (String.length a - 10));
        strip acc rest
    | a :: rest when String.starts_with ~prefix:"--trace=" a ->
        trace := Some (String.sub a 8 (String.length a - 8));
        strip acc rest
    | a :: rest -> strip (a :: acc) rest
  in
  let argv = Array.of_list (strip [] (Array.to_list Sys.argv)) in
  (argv, !metrics, !trace)

let () =
  let argv, metrics, trace = obs_argv () in
  if metrics <> None || trace <> None then begin
    Obs.Sink.reset ();
    Obs.Sink.enable ();
    at_exit (fun () ->
        Obs.Sink.disable ();
        Option.iter
          (fun path ->
            Obs.Sink.write_metrics ~path;
            Fmt.epr "statsize: wrote metrics %s@." path)
          metrics;
        Option.iter
          (fun path ->
            Obs.Sink.write_trace ~path;
            Fmt.epr "statsize: wrote trace %s@." path)
          trace)
  end;
  exit (Cmd.eval ~argv main)

(* Unit tests for the standard-cell library substrate. *)

open Test_util

(* ---- Fn ----------------------------------------------------------------- *)

let all_input_combos arity =
  List.init (1 lsl arity) (fun v ->
      Array.init arity (fun i -> v land (1 lsl i) <> 0))

let fn_truth_tables () =
  let spec fn inputs =
    let all = Array.for_all Fun.id inputs and any = Array.exists Fun.id inputs in
    match fn with
    | Cells.Fn.Inv -> not inputs.(0)
    | Cells.Fn.Buf -> inputs.(0)
    | Cells.Fn.Nand _ -> not all
    | Cells.Fn.Nor _ -> not any
    | Cells.Fn.And _ -> all
    | Cells.Fn.Or _ -> any
    | Cells.Fn.Xor2 -> inputs.(0) <> inputs.(1)
    | Cells.Fn.Xnor2 -> inputs.(0) = inputs.(1)
    | Cells.Fn.Aoi21 -> not ((inputs.(0) && inputs.(1)) || inputs.(2))
    | Cells.Fn.Oai21 -> not ((inputs.(0) || inputs.(1)) && inputs.(2))
    | Cells.Fn.Mux2 -> if inputs.(2) then inputs.(1) else inputs.(0)
  in
  List.iter
    (fun fn ->
      List.iter
        (fun inputs ->
          Alcotest.(check bool)
            (Printf.sprintf "%s truth table" (Cells.Fn.name fn))
            (spec fn inputs) (Cells.Fn.eval fn inputs))
        (all_input_combos (Cells.Fn.arity fn)))
    Cells.Fn.all_shapes

let fn_name_roundtrip () =
  List.iter
    (fun fn ->
      match Cells.Fn.of_name (Cells.Fn.name fn) with
      | Some fn' -> check_true "roundtrip" (Cells.Fn.equal fn fn')
      | None -> Alcotest.failf "of_name failed for %s" (Cells.Fn.name fn))
    Cells.Fn.all_shapes

let fn_bench_aliases () =
  let expect alias fn =
    match Cells.Fn.of_name alias with
    | Some got -> check_true alias (Cells.Fn.equal got fn)
    | None -> Alcotest.failf "alias %s not recognized" alias
  in
  expect "NOT" Cells.Fn.Inv;
  expect "BUFF" Cells.Fn.Buf;
  expect "XOR" Cells.Fn.Xor2;
  expect "nand" (Cells.Fn.Nand 2);
  Alcotest.(check bool) "garbage" true (Cells.Fn.of_name "FROB" = None)

let fn_arity_eval_mismatch () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Fn.eval: NAND2 expects 2 inputs, got 3") (fun () ->
      ignore (Cells.Fn.eval (Cells.Fn.Nand 2) [| true; true; false |]))

let fn_inverting () =
  check_true "nand inverts" (Cells.Fn.inverting (Cells.Fn.Nand 2));
  check_true "and does not" (not (Cells.Fn.inverting (Cells.Fn.And 2)))

(* ---- Library ------------------------------------------------------------ *)

let library_shape () =
  check_int "functions" (List.length Cells.Fn.all_shapes)
    (List.length (Cells.Library.functions lib));
  check_int "cells = functions x strengths"
    (List.length Cells.Fn.all_shapes * Array.length (Cells.Library.strengths lib))
    (Cells.Library.cell_count lib);
  List.iter
    (fun fn ->
      let sizes = Cells.Library.sizes_of_fn lib fn in
      check_int
        (Printf.sprintf "%s has 8 sizes" (Cells.Fn.name fn))
        8 (Array.length sizes))
    (Cells.Library.functions lib)

let library_monotone_strength () =
  List.iter
    (fun fn ->
      let sizes = Cells.Library.sizes_of_fn lib fn in
      for i = 0 to Array.length sizes - 2 do
        check_true "strength ascends"
          (Cells.Cell.strength sizes.(i) < Cells.Cell.strength sizes.(i + 1));
        check_true "area ascends"
          (Cells.Cell.area sizes.(i) < Cells.Cell.area sizes.(i + 1));
        check_true "input cap ascends"
          (Cells.Cell.input_cap sizes.(i) < Cells.Cell.input_cap sizes.(i + 1))
      done)
    (Cells.Library.functions lib)

let delay_monotone_in_load_and_slew () =
  let cell = Cells.Library.cell_exn lib ~fn:(Cells.Fn.Nand 2) ~drive_index:2 in
  let d1 = Cells.Cell.delay cell ~slew:10.0 ~load:5.0 in
  let d2 = Cells.Cell.delay cell ~slew:10.0 ~load:50.0 in
  let d3 = Cells.Cell.delay cell ~slew:60.0 ~load:5.0 in
  check_true "more load, more delay" (d2 > d1);
  check_true "more slew, more delay" (d3 > d1);
  let s1 = Cells.Cell.slew cell ~slew:10.0 ~load:5.0 in
  let s2 = Cells.Cell.slew cell ~slew:10.0 ~load:50.0 in
  check_true "more load, more output slew" (s2 > s1)

let delay_decreases_with_strength () =
  let sizes = Cells.Library.sizes_of_fn lib (Cells.Fn.Nand 2) in
  let at i = Cells.Cell.delay sizes.(i) ~slew:15.0 ~load:30.0 in
  for i = 0 to Array.length sizes - 2 do
    check_true "stronger is faster under load" (at (i + 1) < at i)
  done

let library_lookup () =
  (match Cells.Library.find lib ~name:"NAND2_X4" with
  | Some c ->
      check_true "fn" (Cells.Fn.equal (Cells.Cell.fn c) (Cells.Fn.Nand 2));
      close "strength" 4.0 (Cells.Cell.strength c)
  | None -> Alcotest.fail "NAND2_X4 missing");
  check_true "unknown name" (Cells.Library.find lib ~name:"NAND9_X1" = None)

let library_next_up_down () =
  let min_c = Cells.Library.min_cell lib ~fn:Cells.Fn.Inv in
  let max_c = Cells.Library.max_cell lib ~fn:Cells.Fn.Inv in
  check_true "min has no down" (Cells.Library.next_down lib min_c = None);
  check_true "max has no up" (Cells.Library.next_up lib max_c = None);
  (match Cells.Library.next_up lib min_c with
  | Some c -> check_int "up index" 1 (Cells.Cell.drive_index c)
  | None -> Alcotest.fail "min should have an up");
  match Cells.Library.next_down lib max_c with
  | Some c ->
      check_int "down index"
        (Array.length (Cells.Library.strengths lib) - 2)
        (Cells.Cell.drive_index c)
  | None -> Alcotest.fail "max should have a down"

let library_cell_exn_bounds () =
  Alcotest.check_raises "drive out of range"
    (Invalid_argument "Library.cell_exn: drive 99 out of range for INV")
    (fun () -> ignore (Cells.Library.cell_exn lib ~fn:Cells.Fn.Inv ~drive_index:99))

let library_custom_generate () =
  let small =
    Cells.Library.generate ~name:"mini" ~strengths:[| 1.0; 2.0 |]
      ~shapes:[ Cells.Fn.Inv; Cells.Fn.Nand 2 ] ()
  in
  check_int "two functions" 2 (List.length (Cells.Library.functions small));
  check_int "four cells" 4 (Cells.Library.cell_count small);
  check_true "inv present" (Cells.Library.mem_fn small Cells.Fn.Inv);
  check_true "nor absent" (not (Cells.Library.mem_fn small (Cells.Fn.Nor 2)))

(* ---- Liberty ------------------------------------------------------------ *)

let liberty_roundtrip () =
  let text = Cells.Liberty.to_string lib in
  let lib2 = Cells.Liberty.of_string text in
  Alcotest.(check string) "name" (Cells.Library.name lib) (Cells.Library.name lib2);
  check_int "cell count" (Cells.Library.cell_count lib)
    (Cells.Library.cell_count lib2);
  (* spot-check timing equality through the round trip *)
  List.iter
    (fun name ->
      match (Cells.Library.find lib ~name, Cells.Library.find lib2 ~name) with
      | Some a, Some b ->
          close ~tol:1e-12 "area" (Cells.Cell.area a) (Cells.Cell.area b);
          close ~tol:1e-12 "cap" (Cells.Cell.input_cap a) (Cells.Cell.input_cap b);
          List.iter
            (fun (slew, load) ->
              close ~tol:1e-9 "delay"
                (Cells.Cell.delay a ~slew ~load)
                (Cells.Cell.delay b ~slew ~load);
              close ~tol:1e-9 "slew"
                (Cells.Cell.slew a ~slew ~load)
                (Cells.Cell.slew b ~slew ~load))
            [ (5.0, 2.0); (22.0, 17.0); (100.0, 80.0) ]
      | _ -> Alcotest.failf "cell %s lost in roundtrip" name)
    [ "INV_X1"; "NAND3_X8"; "XOR2_X16"; "MUX2_X2" ]

let liberty_parse_error () =
  (try
     ignore (Cells.Liberty.of_string "library x\nbogus 1.0\n");
     Alcotest.fail "expected parse error"
   with Cells.Liberty.Parse_error _ -> ());
  try
    ignore (Cells.Liberty.of_string "");
    Alcotest.fail "expected parse error on empty"
  with Cells.Liberty.Parse_error _ -> ()

let liberty_file_io () =
  let path = Filename.temp_file "statsize" ".lib" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cells.Liberty.save lib ~path;
      let lib2 = Cells.Liberty.load ~path in
      check_int "cells" (Cells.Library.cell_count lib) (Cells.Library.cell_count lib2))

let () =
  Alcotest.run "cells"
    [
      ( "fn",
        [
          Alcotest.test_case "truth tables" `Quick fn_truth_tables;
          Alcotest.test_case "name roundtrip" `Quick fn_name_roundtrip;
          Alcotest.test_case "bench aliases" `Quick fn_bench_aliases;
          Alcotest.test_case "eval arity mismatch" `Quick fn_arity_eval_mismatch;
          Alcotest.test_case "inverting" `Quick fn_inverting;
        ] );
      ( "library",
        [
          Alcotest.test_case "shape" `Quick library_shape;
          Alcotest.test_case "monotone strength" `Quick library_monotone_strength;
          Alcotest.test_case "delay monotonicity" `Quick
            delay_monotone_in_load_and_slew;
          Alcotest.test_case "strength speeds up" `Quick
            delay_decreases_with_strength;
          Alcotest.test_case "lookup" `Quick library_lookup;
          Alcotest.test_case "next up/down" `Quick library_next_up_down;
          Alcotest.test_case "cell_exn bounds" `Quick library_cell_exn_bounds;
          Alcotest.test_case "custom generate" `Quick library_custom_generate;
        ] );
      ( "liberty",
        [
          Alcotest.test_case "roundtrip" `Quick liberty_roundtrip;
          Alcotest.test_case "parse errors" `Quick liberty_parse_error;
          Alcotest.test_case "file io" `Quick liberty_file_io;
        ] );
    ]

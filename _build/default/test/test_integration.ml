(* End-to-end integration tests across subsystems. *)

open Test_util

(* Optimization must never change circuit function: simulate before and
   after a full statistical sizing run. *)
let sizing_preserves_function () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:6 () in
  let vectors =
    let rng = Numerics.Rng.create ~seed:60 in
    List.init 60 (fun _ ->
        bits_of_int ~prefix:"a" ~width:6 (Numerics.Rng.int rng ~bound:64)
        @ bits_of_int ~prefix:"b" ~width:6 (Numerics.Rng.int rng ~bound:64)
        @ [ ("cin", Numerics.Rng.bool rng) ])
  in
  let before = List.map (fun ins -> Netlist.Simulate.run c ~inputs:ins) vectors in
  let _ = Core.Initial_sizing.apply ~lib c in
  let _ = Core.Sizer.optimize ~config:Core.Sizer.mean_delay_config ~lib c in
  let config =
    { Core.Sizer.default_config with
      objective = Core.Objective.create ~alpha:9.0; max_iterations = 20 }
  in
  let _ = Core.Sizer.optimize ~config ~lib c in
  let _ = Core.Area_recovery.recover ~lib c in
  let after = List.map (fun ins -> Netlist.Simulate.run c ~inputs:ins) vectors in
  List.iter2
    (fun b a -> Alcotest.(check (list (pair string bool))) "same function" b a)
    before after

(* The optimized circuit must genuinely be more variation-tolerant under
   Monte Carlo, not just per the SSTA engines' own report. *)
let sizing_verified_by_monte_carlo () =
  let build () = Benchgen.Alu.generate ~lib ~bits:6 () in
  let baseline = Experiments.Pipeline.prepare ~lib build in
  let mc_of circuit =
    Ssta.Monte_carlo.run
      ~config:{ Ssta.Monte_carlo.default_config with trials = 1500 }
      circuit
  in
  let before = Ssta.Monte_carlo.circuit_stats (mc_of baseline.Experiments.Pipeline.circuit) in
  let r = Experiments.Pipeline.run_alpha ~lib baseline ~alpha:9.0 in
  let after = Ssta.Monte_carlo.circuit_stats (mc_of r.Experiments.Pipeline.circuit) in
  check_true "MC sigma dropped by at least 25%"
    (Numerics.Stats.std after < 0.75 *. Numerics.Stats.std before);
  check_true "MC mean within 8%"
    (Float.abs (Numerics.Stats.mean after -. Numerics.Stats.mean before)
    < 0.08 *. Numerics.Stats.mean before)

(* A circuit written to .bench, re-imported, and re-optimized behaves the
   same as the original pipeline. *)
let bench_roundtrip_through_optimization () =
  let c = Benchgen.Alu.generate ~lib ~bits:4 () in
  let text = Netlist.Bench_io.to_string c in
  let c2 = Netlist.Bench_io.of_string ~lib ~name:"imported" text in
  let run circuit =
    let _ = Core.Initial_sizing.apply ~lib circuit in
    let _ = Core.Sizer.optimize ~config:Core.Sizer.mean_delay_config ~lib circuit in
    let full = Ssta.Fullssta.run circuit in
    Ssta.Fullssta.output_moments full
  in
  let m1 = run c and m2 = run c2 in
  close ~tol:0.01 "same optimized mean" m1.Numerics.Clark.mean m2.Numerics.Clark.mean

(* The library survives serialization and yields identical timing. *)
let liberty_roundtrip_timing () =
  let text = Cells.Liberty.to_string lib in
  let lib2 = Cells.Liberty.of_string text in
  let c1 = Benchgen.Adder.ripple_carry ~lib ~bits:5 () in
  let c2 = Benchgen.Adder.ripple_carry ~lib:lib2 ~bits:5 () in
  let t1 = Sta.Analysis.analyze c1 and t2 = Sta.Analysis.analyze c2 in
  close ~tol:1e-9 "identical timing through liberty roundtrip"
    (Sta.Analysis.max_arrival t1) (Sta.Analysis.max_arrival t2)

(* Yield improvement story of Fig. 1: at the baseline's mean + 1 sigma, the
   optimized circuit yields more. *)
let yield_improves_at_fixed_period () =
  let build () = Benchgen.Alu.generate ~lib ~bits:6 () in
  let baseline = Experiments.Pipeline.prepare ~lib build in
  let m0 = baseline.Experiments.Pipeline.moments in
  let period = m0.Numerics.Clark.mean +. Numerics.Clark.sigma m0 in
  let full0 = Ssta.Fullssta.run baseline.Experiments.Pipeline.circuit in
  let y0 = Ssta.Fullssta.yield_at full0 ~period in
  let r = Experiments.Pipeline.run_alpha ~lib baseline ~alpha:9.0 in
  let full1 = Ssta.Fullssta.run r.Experiments.Pipeline.circuit in
  let y1 = Ssta.Fullssta.yield_at full1 ~period in
  check_true
    (Printf.sprintf "yield %.3f -> %.3f at fixed period" y0 y1)
    (y1 > y0)

(* The WNSS machinery and the sizer agree: after convergence at high alpha,
   re-running reports no further sigma gain (idempotence up to noise). *)
let sizer_converged_state_is_stable () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:5 () in
  let _ = Core.Initial_sizing.apply ~lib c in
  let config =
    { Core.Sizer.default_config with
      objective = Core.Objective.create ~alpha:9.0; max_iterations = 30 }
  in
  let _ = Core.Sizer.optimize ~config ~lib c in
  let again = Core.Sizer.optimize ~config ~lib c in
  let s0 = Numerics.Clark.sigma again.Core.Sizer.initial_moments in
  let s1 = Numerics.Clark.sigma again.Core.Sizer.final_moments in
  check_true "no significant further reduction" (s1 > 0.9 *. s0)

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "sizing preserves function" `Slow
            sizing_preserves_function;
          Alcotest.test_case "verified by monte carlo" `Slow
            sizing_verified_by_monte_carlo;
          Alcotest.test_case "bench roundtrip + optimize" `Slow
            bench_roundtrip_through_optimization;
          Alcotest.test_case "liberty roundtrip timing" `Quick
            liberty_roundtrip_timing;
          Alcotest.test_case "yield improves" `Slow yield_improves_at_fixed_period;
          Alcotest.test_case "converged state stable" `Slow
            sizer_converged_state_is_stable;
        ] );
    ]

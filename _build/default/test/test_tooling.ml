(* Tests for the tooling/side-story extensions: power model and analysis,
   yield-driven sizing, the Kogge-Stone generator, Verilog and SDF export. *)

open Test_util

(* ---- power ---------------------------------------------------------------- *)

let power_cell_model () =
  let small = Cells.Library.cell_exn lib ~fn:Cells.Fn.Inv ~drive_index:0 in
  let big = Cells.Library.cell_exn lib ~fn:Cells.Fn.Inv ~drive_index:7 in
  check_true "bigger cell, more dynamic energy"
    (Cells.Power.dynamic_energy_fj big > Cells.Power.dynamic_energy_fj small);
  check_true "bigger cell, more leakage"
    (Cells.Power.leakage_nw big > Cells.Power.leakage_nw small);
  (* fast corner (z < 0) leaks more; slow corner leaks less *)
  let nom = Cells.Power.leakage_nw small in
  check_true "fast die leaks more"
    (Cells.Power.leakage_at_corner_nw small ~z:(-1.0) > nom);
  check_true "slow die leaks less"
    (Cells.Power.leakage_at_corner_nw small ~z:1.0 < nom);
  close ~tol:1e-9 "nominal corner is nominal" nom
    (Cells.Power.leakage_at_corner_nw small ~z:0.0)

let power_analysis_runs () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:8 () in
  let r =
    Ssta.Power_analysis.run
      ~config:{ Ssta.Power_analysis.default_config with trials = 500 }
      c
  in
  check_true "dynamic positive" (r.Ssta.Power_analysis.dynamic_uw > 0.0);
  let s = Ssta.Power_analysis.leakage_stats r in
  check_int "all trials" 500 (Numerics.Stats.count s);
  check_true "leakage positive" (Numerics.Stats.mean s > 0.0);
  check_true "leakage varies across dies" (Numerics.Stats.std s > 0.0);
  check_true "total includes both"
    (Ssta.Power_analysis.total_mean_uw r > r.Ssta.Power_analysis.dynamic_uw)

let power_upsizing_costs_power () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:6 () in
  let cfg = { Ssta.Power_analysis.default_config with trials = 300 } in
  let before = Ssta.Power_analysis.run ~config:cfg c in
  List.iter
    (fun id ->
      let cell = Netlist.Circuit.cell_exn c id in
      Netlist.Circuit.set_cell c id
        (Cells.Library.max_cell lib ~fn:(Cells.Cell.fn cell)))
    (Netlist.Circuit.gates c);
  let after = Ssta.Power_analysis.run ~config:cfg c in
  check_true "upsizing raises leakage"
    (Numerics.Stats.mean (Ssta.Power_analysis.leakage_stats after)
    > Numerics.Stats.mean (Ssta.Power_analysis.leakage_stats before));
  check_true "upsizing raises dynamic power"
    (after.Ssta.Power_analysis.dynamic_uw > before.Ssta.Power_analysis.dynamic_uw)

(* ---- yield-driven sizing ----------------------------------------------------- *)

let yield_driven_meets_target () =
  let c = Benchgen.Alu.generate ~lib ~bits:6 () in
  let _ = Core.Initial_sizing.apply ~lib c in
  let _ = Core.Sizer.optimize ~config:Core.Sizer.mean_delay_config ~lib c in
  let full = Ssta.Fullssta.run c in
  let m = Ssta.Fullssta.output_moments full in
  (* a period the baseline misses often: mean + 0.3 sigma *)
  let period = m.Numerics.Clark.mean +. (0.3 *. Numerics.Clark.sigma m) in
  let before = Ssta.Fullssta.yield_at full ~period in
  let r = Core.Yield_driven.optimize ~lib c ~period ~target:0.95 in
  check_true "started below target" (before < 0.95);
  check_true "target met" r.Core.Yield_driven.met;
  check_true "achieved recorded" (r.Core.Yield_driven.achieved >= 0.95);
  check_true "ladder stopped early or at end"
    (List.length r.Core.Yield_driven.steps <= 6);
  (* the final step's yield equals the result's achieved yield *)
  let last =
    List.nth r.Core.Yield_driven.steps (List.length r.Core.Yield_driven.steps - 1)
  in
  close ~tol:1e-9 "final step consistent" r.Core.Yield_driven.achieved
    last.Core.Yield_driven.yield_

let yield_driven_validates_target () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:4 () in
  try
    ignore (Core.Yield_driven.optimize ~lib c ~period:100.0 ~target:1.5);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let yield_driven_noop_when_already_met () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:4 () in
  let area0 = Netlist.Circuit.total_area c in
  let r = Core.Yield_driven.optimize ~lib c ~period:1e7 ~target:0.9 in
  check_true "met trivially" r.Core.Yield_driven.met;
  check_int "no ladder steps taken" 1 (List.length r.Core.Yield_driven.steps);
  close ~tol:1e-9 "area untouched" area0 (Netlist.Circuit.total_area c)

(* ---- Kogge-Stone --------------------------------------------------------------- *)

let kogge_stone_matches_spec () =
  List.iter
    (fun bits ->
      let c = Benchgen.Kogge_stone.generate ~lib ~bits () in
      let rng = Numerics.Rng.create ~seed:bits in
      for _ = 1 to 150 do
        let a = Numerics.Rng.int rng ~bound:(1 lsl bits) in
        let b = Numerics.Rng.int rng ~bound:(1 lsl bits) in
        let cin = Numerics.Rng.int rng ~bound:2 in
        let ins =
          bits_of_int ~prefix:"a" ~width:bits a
          @ bits_of_int ~prefix:"b" ~width:bits b
          @ [ ("cin", cin = 1) ]
        in
        let outs = Netlist.Simulate.run c ~inputs:ins in
        let sum = Netlist.Simulate.read_unsigned outs ~prefix:"sum" in
        let cout = if List.assoc "cout" outs then 1 else 0 in
        if sum + (cout lsl bits) <> a + b + cin then
          Alcotest.failf "ks%d %d+%d+%d gave %d" bits a b cin
            (sum + (cout lsl bits))
      done)
    [ 1; 4; 8; 13 ]

let kogge_stone_is_shallower_than_ripple () =
  let ks = Benchgen.Kogge_stone.generate ~lib ~bits:16 () in
  let rca = Benchgen.Adder.ripple_carry ~lib ~bits:16 () in
  check_true "parallel prefix is shallower"
    (Netlist.Levelize.depth ks < Netlist.Levelize.depth rca);
  check_true "and larger"
    (Netlist.Circuit.gate_count ks > Netlist.Circuit.gate_count rca)

(* ---- Verilog -------------------------------------------------------------------- *)

let verilog_structure () =
  let c = tiny_circuit () in
  let text = Netlist.Verilog.to_verilog ~module_name:"tiny" c in
  let has needle =
    let len = String.length needle in
    let rec scan i =
      i + len <= String.length text
      && (String.sub text i len = needle || scan (i + 1))
    in
    scan 0
  in
  check_true "module header" (has "module tiny (");
  check_true "endmodule" (has "endmodule");
  check_true "input decls" (has "input a;");
  check_true "output decl" (has "output n3;");
  check_true "instance with ports" (has ".Y(n1)");
  check_true "cell reference" (has "AND2_X1");
  (* every gate instantiated once *)
  check_true "or instance" (has ".Y(n3)")

let verilog_escapes_identifiers () =
  let bld = Netlist.Build.create ~lib ~name:"esc" () in
  let a = Netlist.Build.input bld ~name:"1in" in
  let x = Netlist.Build.not_ ~name:"weird.name" bld a in
  ignore (Netlist.Build.output bld x);
  let c = Netlist.Build.finish bld in
  let text = Netlist.Verilog.to_verilog c in
  check_true "escaped with backslash"
    (String.length text > 0
    && (let rec scan i =
          i < String.length text - 1
          && ((text.[i] = '\\' && text.[i + 1] = '1') || scan (i + 1))
        in
        scan 0))

(* ---- SDF ------------------------------------------------------------------------ *)

let sdf_structure () =
  let c = tiny_circuit () in
  let e = Sta.Electrical.compute c in
  let text = Sta.Sdf.to_sdf ~design:"tiny" c e in
  let count needle =
    let len = String.length needle in
    let n = ref 0 in
    for i = 0 to String.length text - len do
      if String.sub text i len = needle then incr n
    done;
    !n
  in
  check_int "one CELL per gate" 3 (count "(CELL ");
  (* one IOPATH per fanin arc: 2 + 1 + 2 *)
  check_int "IOPATH per arc" 5 (count "(IOPATH ");
  check_true "header" (count "(DELAYFILE" = 1);
  check_true "min <= typ <= max encoded"
    (count "(DELAY (ABSOLUTE" = 3)

let sdf_corners_ordered () =
  let c = tiny_circuit () in
  let e = Sta.Electrical.compute c in
  let n1 = Netlist.Circuit.find_exn c ~name:"n1" in
  let d = (Sta.Electrical.arc_delays e n1).(0) in
  let strength = Cells.Cell.strength (Netlist.Circuit.cell_exn c n1) in
  let sigma = Variation.Model.sigma Variation.Model.default ~delay:d ~strength in
  let text = Sta.Sdf.to_sdf ~sigma_corner:2.0 c e in
  (* the typ value for n1's first arc appears with its +-2 sigma corners *)
  let expect =
    Printf.sprintf "(%.1f:%.1f:%.1f)" (Float.max 0.0 (d -. (2.0 *. sigma))) d
      (d +. (2.0 *. sigma))
  in
  let len = String.length expect in
  let rec scan i =
    i + len <= String.length text && (String.sub text i len = expect || scan (i + 1))
  in
  check_true "corner triple present" (scan 0)

let () =
  Alcotest.run "tooling"
    [
      ( "power",
        [
          Alcotest.test_case "cell model" `Quick power_cell_model;
          Alcotest.test_case "analysis runs" `Quick power_analysis_runs;
          Alcotest.test_case "upsizing costs power" `Quick power_upsizing_costs_power;
        ] );
      ( "yield_driven",
        [
          Alcotest.test_case "meets target" `Quick yield_driven_meets_target;
          Alcotest.test_case "validates target" `Quick yield_driven_validates_target;
          Alcotest.test_case "noop when met" `Quick yield_driven_noop_when_already_met;
        ] );
      ( "kogge_stone",
        [
          Alcotest.test_case "matches spec" `Quick kogge_stone_matches_spec;
          Alcotest.test_case "shallower than ripple" `Quick
            kogge_stone_is_shallower_than_ripple;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "structure" `Quick verilog_structure;
          Alcotest.test_case "escapes identifiers" `Quick verilog_escapes_identifiers;
        ] );
      ( "sdf",
        [
          Alcotest.test_case "structure" `Quick sdf_structure;
          Alcotest.test_case "corners ordered" `Quick sdf_corners_ordered;
        ] );
    ]

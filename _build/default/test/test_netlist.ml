(* Unit tests for the netlist substrate. *)

open Test_util

let nand2 = Cells.Library.cell_exn lib ~fn:(Cells.Fn.Nand 2) ~drive_index:0
let inv = Cells.Library.cell_exn lib ~fn:Cells.Fn.Inv ~drive_index:0

(* ---- Circuit ------------------------------------------------------------ *)

let circuit_construction () =
  let c = Netlist.Circuit.create ~name:"t" () in
  let a = Netlist.Circuit.add_input c ~name:"a" in
  let b = Netlist.Circuit.add_input c ~name:"b" in
  let g = Netlist.Circuit.add_gate c ~name:"g" ~cell:nand2 ~fanins:[| a; b |] in
  Netlist.Circuit.mark_output c g;
  check_int "size" 3 (Netlist.Circuit.size c);
  check_int "gates" 1 (Netlist.Circuit.gate_count c);
  Alcotest.(check (list int)) "inputs" [ a; b ] (Netlist.Circuit.inputs c);
  Alcotest.(check (list int)) "outputs" [ g ] (Netlist.Circuit.outputs c);
  Alcotest.(check (list int)) "fanouts of a" [ g ] (Netlist.Circuit.fanouts c a);
  check_true "validates" (Netlist.Circuit.validate c = [])

let circuit_duplicate_name () =
  let c = Netlist.Circuit.create ~name:"t" () in
  let _ = Netlist.Circuit.add_input c ~name:"a" in
  Alcotest.check_raises "duplicate" (Invalid_argument "Circuit: duplicate node name \"a\"")
    (fun () -> ignore (Netlist.Circuit.add_input c ~name:"a"))

let circuit_arity_mismatch () =
  let c = Netlist.Circuit.create ~name:"t" () in
  let a = Netlist.Circuit.add_input c ~name:"a" in
  try
    ignore (Netlist.Circuit.add_gate c ~name:"g" ~cell:nand2 ~fanins:[| a |]);
    Alcotest.fail "expected arity failure"
  with Invalid_argument _ -> ()

let circuit_forward_reference () =
  let c = Netlist.Circuit.create ~name:"t" () in
  let a = Netlist.Circuit.add_input c ~name:"a" in
  try
    ignore (Netlist.Circuit.add_gate c ~name:"g" ~cell:nand2 ~fanins:[| a; 7 |]);
    Alcotest.fail "expected fanin failure"
  with Invalid_argument _ -> ()

let circuit_set_cell_checks_function () =
  let c = tiny_circuit () in
  let n1 = Netlist.Circuit.find_exn c ~name:"n1" in
  try
    Netlist.Circuit.set_cell c n1 inv;
    Alcotest.fail "expected function-change failure"
  with Invalid_argument _ -> ()

let circuit_set_cell_resizes () =
  let c = tiny_circuit () in
  let n1 = Netlist.Circuit.find_exn c ~name:"n1" in
  let bigger = Cells.Library.cell_exn lib ~fn:(Cells.Fn.And 2) ~drive_index:3 in
  let area0 = Netlist.Circuit.total_area c in
  Netlist.Circuit.set_cell c n1 bigger;
  check_true "area grew" (Netlist.Circuit.total_area c > area0);
  check_true "cell updated"
    (Cells.Cell.equal (Netlist.Circuit.cell_exn c n1) bigger)

let circuit_load () =
  let c = tiny_circuit () in
  let a = Netlist.Circuit.find_exn c ~name:"a" in
  let n1 = Netlist.Circuit.find_exn c ~name:"n1" in
  let n3 = Netlist.Circuit.find_exn c ~name:"n3" in
  (* a drives only n1: load = one AND2 pin *)
  close ~tol:1e-9 "input load"
    (Cells.Cell.input_cap (Netlist.Circuit.cell_exn c n1))
    (Netlist.Circuit.load c a);
  (* n3 is the primary output: external load only *)
  close ~tol:1e-9 "output load" (Netlist.Circuit.output_load c)
    (Netlist.Circuit.load c n3)

let circuit_topological_property () =
  let c = Benchgen.Alu.generate ~lib ~bits:4 () in
  List.iter
    (fun id ->
      Array.iter
        (fun fi -> check_true "fanin before gate" (fi < id))
        (Netlist.Circuit.fanins c id))
    (Netlist.Circuit.topological c)

let circuit_validate_dangling () =
  let c = Netlist.Circuit.create ~name:"t" () in
  let a = Netlist.Circuit.add_input c ~name:"a" in
  let b = Netlist.Circuit.add_input c ~name:"b" in
  let g = Netlist.Circuit.add_gate c ~name:"g" ~cell:nand2 ~fanins:[| a; b |] in
  let problems = Netlist.Circuit.validate c in
  check_true "dangling gate reported"
    (List.exists (fun p -> String.length p > 0) problems);
  Netlist.Circuit.mark_output c g;
  check_true "fixed after marking output" (Netlist.Circuit.validate c = [])

let circuit_copy_independent () =
  let c = tiny_circuit () in
  let c2 = Netlist.Circuit.copy c in
  check_int "same size" (Netlist.Circuit.size c) (Netlist.Circuit.size c2);
  close "same area" (Netlist.Circuit.total_area c) (Netlist.Circuit.total_area c2);
  let n1 = Netlist.Circuit.find_exn c ~name:"n1" in
  let bigger = Cells.Library.cell_exn lib ~fn:(Cells.Fn.And 2) ~drive_index:5 in
  Netlist.Circuit.set_cell c2 n1 bigger;
  check_true "copies are independent"
    (not
       (Cells.Cell.equal (Netlist.Circuit.cell_exn c n1)
          (Netlist.Circuit.cell_exn c2 n1)))

let circuit_copy_simulates_identically () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:4 () in
  let c2 = Netlist.Circuit.copy c in
  for v = 0 to 40 do
    let ins =
      bits_of_int ~prefix:"a" ~width:4 (v mod 16)
      @ bits_of_int ~prefix:"b" ~width:4 (v * 3 mod 16)
      @ [ ("cin", v mod 2 = 1) ]
    in
    Alcotest.(check (list (pair string bool)))
      "same outputs"
      (Netlist.Simulate.run c ~inputs:ins)
      (Netlist.Simulate.run c2 ~inputs:ins)
  done

(* ---- Levelize ----------------------------------------------------------- *)

let levelize_chain () =
  let bld = Netlist.Build.create ~lib ~name:"chain" () in
  let a = Netlist.Build.input bld ~name:"a" in
  let x1 = Netlist.Build.not_ bld a in
  let x2 = Netlist.Build.not_ bld x1 in
  let x3 = Netlist.Build.not_ bld x2 in
  ignore (Netlist.Build.output bld x3);
  let c = Netlist.Build.finish bld in
  let levels = Netlist.Levelize.levels c in
  check_int "input level" 0 levels.(a);
  check_int "x3 level" 3 levels.(x3);
  check_int "depth" 3 (Netlist.Levelize.depth c);
  let by_level = Netlist.Levelize.by_level c in
  check_int "4 levels" 4 (Array.length by_level);
  check_int "one node per level" 1 (List.length by_level.(2))

let levelize_tiny () =
  let c = tiny_circuit () in
  check_int "depth 2" 2 (Netlist.Levelize.depth c);
  let od = Netlist.Levelize.output_depths c in
  check_int "one output" 1 (List.length od)

(* ---- Cone --------------------------------------------------------------- *)

let cone_tfi_tfo () =
  let c = tiny_circuit () in
  let n1 = Netlist.Circuit.find_exn c ~name:"n1" in
  let n2 = Netlist.Circuit.find_exn c ~name:"n2" in
  let n3 = Netlist.Circuit.find_exn c ~name:"n3" in
  Alcotest.(check (list int)) "tfi of n3" [ n1; n2 ]
    (Netlist.Cone.transitive_fanin c n3 ~depth:2);
  Alcotest.(check (list int)) "tfo of n1" [ n3 ]
    (Netlist.Cone.transitive_fanout c n1 ~depth:2);
  Alcotest.(check (list int)) "tfi depth 0" []
    (Netlist.Cone.transitive_fanin c n3 ~depth:0)

let cone_extract () =
  let c = tiny_circuit () in
  let n1 = Netlist.Circuit.find_exn c ~name:"n1" in
  let n3 = Netlist.Circuit.find_exn c ~name:"n3" in
  let sub = Netlist.Cone.extract c ~pivot:n1 ~depth:2 in
  check_int "pivot" n1 sub.Netlist.Cone.pivot;
  Alcotest.(check (list int)) "members include pivot chain" [ n1; n3 ]
    (Array.to_list sub.Netlist.Cone.members);
  check_true "n2 is boundary"
    (List.mem (Netlist.Circuit.find_exn c ~name:"n2") sub.Netlist.Cone.boundary_inputs);
  Alcotest.(check (list int)) "window outputs" [ n3 ] sub.Netlist.Cone.window_outputs

let cone_extract_input_rejected () =
  let c = tiny_circuit () in
  let a = Netlist.Circuit.find_exn c ~name:"a" in
  Alcotest.check_raises "pivot must be a gate"
    (Invalid_argument "Cone.extract: pivot is a primary input") (fun () ->
      ignore (Netlist.Cone.extract c ~pivot:a ~depth:2))

let cone_input_cone () =
  let c = tiny_circuit () in
  let n3 = Netlist.Circuit.find_exn c ~name:"n3" in
  check_int "full cone = whole circuit" (Netlist.Circuit.size c)
    (List.length (Netlist.Cone.input_cone c n3))

(* ---- Build -------------------------------------------------------------- *)

let build_wide_gates_simulate () =
  let widths = [ 2; 3; 4; 5; 7; 9; 13 ] in
  List.iter
    (fun width ->
      let bld = Netlist.Build.create ~lib ~name:(Printf.sprintf "wide%d" width) () in
      let ins = Netlist.Build.inputs bld ~prefix:"i" ~count:width in
      let and_o = Netlist.Build.and_ bld (Array.to_list ins) in
      let or_o = Netlist.Build.or_ bld (Array.to_list ins) in
      let xor_o = Netlist.Build.xor bld (Array.to_list ins) in
      let nand_o = Netlist.Build.nand bld (Array.to_list ins) in
      let nor_o = Netlist.Build.nor bld (Array.to_list ins) in
      ignore (Netlist.Build.output ~name:"o_and" bld and_o);
      ignore (Netlist.Build.output ~name:"o_or" bld or_o);
      ignore (Netlist.Build.output ~name:"o_xor" bld xor_o);
      ignore (Netlist.Build.output ~name:"o_nand" bld nand_o);
      ignore (Netlist.Build.output ~name:"o_nor" bld nor_o);
      let c = Netlist.Build.finish bld in
      let rng = Numerics.Rng.create ~seed:width in
      for _ = 1 to 50 do
        let v = Numerics.Rng.int rng ~bound:(1 lsl width) in
        let bits = List.init width (fun i -> v land (1 lsl i) <> 0) in
        let ins =
          List.mapi (fun i b -> (Printf.sprintf "i%d" i, b)) bits
        in
        let outs = Netlist.Simulate.run c ~inputs:ins in
        let all = List.for_all Fun.id bits and any = List.exists Fun.id bits in
        let parity = List.fold_left (fun acc b -> acc <> b) false bits in
        check_true "and" (List.assoc "o_and" outs = all);
        check_true "or" (List.assoc "o_or" outs = any);
        check_true "xor" (List.assoc "o_xor" outs = parity);
        check_true "nand" (List.assoc "o_nand" outs = not all);
        check_true "nor" (List.assoc "o_nor" outs = not any)
      done)
    widths

let build_fresh_names_unique () =
  let bld = Netlist.Build.create ~lib ~name:"fresh" () in
  let names = List.init 100 (fun _ -> Netlist.Build.fresh bld "n") in
  check_int "unique" 100 (List.length (List.sort_uniq String.compare names))

let build_mux () =
  let bld = Netlist.Build.create ~lib ~name:"m" () in
  let a = Netlist.Build.input bld ~name:"a" in
  let b = Netlist.Build.input bld ~name:"b" in
  let s = Netlist.Build.input bld ~name:"s" in
  let m = Netlist.Build.mux2 bld ~sel:s ~a ~b in
  ignore (Netlist.Build.output ~name:"o" bld m);
  let c = Netlist.Build.finish bld in
  let run a_v b_v s_v =
    List.assoc "o"
      (Netlist.Simulate.run c ~inputs:[ ("a", a_v); ("b", b_v); ("s", s_v) ])
  in
  check_true "sel=0 -> a" (run true false false = true);
  check_true "sel=1 -> b" (run true false true = false)

(* ---- Bench_io ----------------------------------------------------------- *)

let bench_sample = {|
# a tiny sample
INPUT(i0)
INPUT(i1)
INPUT(i2)
OUTPUT(o0)
n1 = NAND(i0, i1)
n2 = NOT(i2)
o0 = OR(n1, n2)
|}

let bench_parse_sample () =
  let c = Netlist.Bench_io.of_string ~lib bench_sample in
  check_int "inputs" 3 (List.length (Netlist.Circuit.inputs c));
  check_int "outputs" 1 (List.length (Netlist.Circuit.outputs c));
  check_int "gates" 3 (Netlist.Circuit.gate_count c);
  let outs =
    Netlist.Simulate.run c
      ~inputs:[ ("i0", true); ("i1", true); ("i2", true) ]
  in
  check_true "nand(1,1) | not(1) = false" (List.assoc "o0" outs = false)

let bench_out_of_order () =
  let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(x)\nx = NOT(a)\n" in
  let c = Netlist.Bench_io.of_string ~lib text in
  check_int "two gates" 2 (Netlist.Circuit.gate_count c);
  let outs = Netlist.Simulate.run c ~inputs:[ ("a", true) ] in
  check_true "double inversion" (List.assoc "y" outs = true)

let bench_wide_gate_decomposition () =
  let text =
    "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nOUTPUT(y)\n\
     y = AND(a, b, c, d, e, f)\n"
  in
  let c = Netlist.Bench_io.of_string ~lib text in
  check_true "decomposed into a tree" (Netlist.Circuit.gate_count c >= 2);
  let all_true = List.map (fun n -> (n, true)) [ "a"; "b"; "c"; "d"; "e"; "f" ] in
  check_true "wide and true"
    (List.assoc "y" (Netlist.Simulate.run c ~inputs:all_true));
  let one_false = ("c", false) :: List.remove_assoc "c" all_true in
  check_true "wide and false"
    (not (List.assoc "y" (Netlist.Simulate.run c ~inputs:one_false)))

let bench_errors () =
  let expect_error text =
    try
      ignore (Netlist.Bench_io.of_string ~lib text);
      Alcotest.fail "expected parse error"
    with Netlist.Bench_io.Parse_error _ -> ()
  in
  expect_error "INPUT(a)\nOUTPUT(y)\ny = NOT(zz)\n";
  expect_error "INPUT(a)\nOUTPUT(y)\ny = FOO(a)\n";
  expect_error "INPUT(a)\nOUTPUT(y)\ny = NOT(x)\nx = NOT(y)\n";
  expect_error "INPUT(a)\nOUTPUT(y)\ny = NOT(a\n"

let bench_roundtrip () =
  let c = Benchgen.Alu.generate ~lib ~bits:4 () in
  let text = Netlist.Bench_io.to_string c in
  let c2 = Netlist.Bench_io.of_string ~lib ~name:"roundtrip" text in
  check_int "gates preserved" (Netlist.Circuit.gate_count c)
    (Netlist.Circuit.gate_count c2);
  check_int "outputs preserved"
    (List.length (Netlist.Circuit.outputs c))
    (List.length (Netlist.Circuit.outputs c2));
  (* functional equivalence on random vectors *)
  let rng = Numerics.Rng.create ~seed:17 in
  for _ = 1 to 60 do
    let ins =
      bits_of_int ~prefix:"a" ~width:4 (Numerics.Rng.int rng ~bound:16)
      @ bits_of_int ~prefix:"b" ~width:4 (Numerics.Rng.int rng ~bound:16)
      @ [ ("cin", Numerics.Rng.bool rng); ("op0", Numerics.Rng.bool rng);
          ("op1", Numerics.Rng.bool rng) ]
    in
    let o1 = Netlist.Simulate.run c ~inputs:ins in
    let o2 = Netlist.Simulate.run c2 ~inputs:ins in
    Alcotest.(check (list (pair string bool))) "same function" o1 o2
  done

(* ---- Simulate ----------------------------------------------------------- *)

let simulate_input_validation () =
  let c = tiny_circuit () in
  (try
     ignore (Netlist.Simulate.run c ~inputs:[ ("a", true) ]);
     Alcotest.fail "expected missing input error"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Netlist.Simulate.run c
          ~inputs:[ ("a", true); ("b", true); ("zz", true) ]);
     Alcotest.fail "expected unknown input error"
   with Invalid_argument _ -> ());
  try
    ignore
      (Netlist.Simulate.run c ~inputs:[ ("a", true); ("b", true); ("n1", true) ]);
    Alcotest.fail "expected non-input error"
  with Invalid_argument _ -> ()

let simulate_read_unsigned () =
  let outs = [ ("sum0", true); ("sum1", false); ("sum2", true); ("cout", true) ] in
  check_int "little endian" 5 (Netlist.Simulate.read_unsigned outs ~prefix:"sum")

(* ---- Metrics ------------------------------------------------------------ *)

let metrics_tiny () =
  let m = Netlist.Metrics.compute (tiny_circuit ()) in
  check_int "inputs" 3 m.Netlist.Metrics.input_count;
  check_int "outputs" 1 m.Netlist.Metrics.output_count;
  check_int "gates" 3 m.Netlist.Metrics.gate_count;
  check_int "depth" 2 m.Netlist.Metrics.depth;
  check_true "area positive" (m.Netlist.Metrics.area > 0.0);
  check_int "histogram entries" 3 (List.length m.Netlist.Metrics.fn_histogram)

let () =
  Alcotest.run "netlist"
    [
      ( "circuit",
        [
          Alcotest.test_case "construction" `Quick circuit_construction;
          Alcotest.test_case "duplicate name" `Quick circuit_duplicate_name;
          Alcotest.test_case "arity mismatch" `Quick circuit_arity_mismatch;
          Alcotest.test_case "forward reference" `Quick circuit_forward_reference;
          Alcotest.test_case "set_cell function check" `Quick
            circuit_set_cell_checks_function;
          Alcotest.test_case "set_cell resizes" `Quick circuit_set_cell_resizes;
          Alcotest.test_case "load" `Quick circuit_load;
          Alcotest.test_case "topological property" `Quick
            circuit_topological_property;
          Alcotest.test_case "validate dangling" `Quick circuit_validate_dangling;
          Alcotest.test_case "copy independent" `Quick circuit_copy_independent;
          Alcotest.test_case "copy simulates identically" `Quick
            circuit_copy_simulates_identically;
        ] );
      ( "levelize",
        [
          Alcotest.test_case "chain" `Quick levelize_chain;
          Alcotest.test_case "tiny" `Quick levelize_tiny;
        ] );
      ( "cone",
        [
          Alcotest.test_case "tfi/tfo" `Quick cone_tfi_tfo;
          Alcotest.test_case "extract" `Quick cone_extract;
          Alcotest.test_case "input pivot rejected" `Quick
            cone_extract_input_rejected;
          Alcotest.test_case "input cone" `Quick cone_input_cone;
        ] );
      ( "build",
        [
          Alcotest.test_case "wide gates simulate" `Quick build_wide_gates_simulate;
          Alcotest.test_case "fresh names unique" `Quick build_fresh_names_unique;
          Alcotest.test_case "mux" `Quick build_mux;
        ] );
      ( "bench_io",
        [
          Alcotest.test_case "parse sample" `Quick bench_parse_sample;
          Alcotest.test_case "out of order defs" `Quick bench_out_of_order;
          Alcotest.test_case "wide gate decomposition" `Quick
            bench_wide_gate_decomposition;
          Alcotest.test_case "errors" `Quick bench_errors;
          Alcotest.test_case "roundtrip" `Quick bench_roundtrip;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "input validation" `Quick simulate_input_validation;
          Alcotest.test_case "read_unsigned" `Quick simulate_read_unsigned;
        ] );
      ("metrics", [ Alcotest.test_case "tiny" `Quick metrics_tiny ]);
    ]

(* Shared helpers for the test suites. *)

let lib = Lazy.force Cells.Library.default

(* Relative/absolute closeness check with a readable failure message. *)
let close ?(tol = 1e-9) msg expected actual =
  let scale = Float.max 1.0 (Float.abs expected) in
  if Float.abs (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.8g, got %.8g (tol %g)" msg expected actual tol

let close_abs ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.8g, got %.8g (abs tol %g)" msg expected actual
      tol

let check_true msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)

(* A tiny hand-built circuit used across netlist/sta tests:

     a ----\
            AND2 (n1) ---\
     b ----/              OR2 (n3) --> out
     c --- INV (n2) -----/
*)
let tiny_circuit () =
  let bld = Netlist.Build.create ~lib ~name:"tiny" () in
  let a = Netlist.Build.input bld ~name:"a" in
  let b = Netlist.Build.input bld ~name:"b" in
  let c = Netlist.Build.input bld ~name:"c" in
  let n1 = Netlist.Build.and_ ~name:"n1" bld [ a; b ] in
  let n2 = Netlist.Build.not_ ~name:"n2" bld c in
  let n3 = Netlist.Build.or_ ~name:"n3" bld [ n1; n2 ] in
  ignore (Netlist.Build.output bld n3);
  Netlist.Build.finish bld

(* Little-endian named input vector helpers. *)
let bits_of_int ~prefix ~width v =
  List.init width (fun i -> (Printf.sprintf "%s%d" prefix i, v land (1 lsl i) <> 0))

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let moments ~mu ~sigma = Numerics.Clark.moments ~mean:mu ~var:(sigma *. sigma)

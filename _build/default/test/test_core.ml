(* Tests for the paper's core contribution: objective, WNSS tracing, window
   evaluation, initial sizing, StatisticalGreedy, area recovery. *)

open Test_util

(* ---- Objective ------------------------------------------------------------ *)

let objective_cost () =
  let obj = Core.Objective.create ~alpha:3.0 in
  close "mu + 3 sigma" 130.0
    (Core.Objective.cost_of_moments obj (moments ~mu:100.0 ~sigma:10.0));
  close "alpha" 3.0 (Core.Objective.alpha obj);
  close "mean objective" 100.0
    (Core.Objective.cost_of_moments Core.Objective.mean_delay
       (moments ~mu:100.0 ~sigma:10.0))

let objective_negative_alpha () =
  try
    ignore (Core.Objective.create ~alpha:(-1.0));
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let objective_outputs () =
  let obj = Core.Objective.create ~alpha:2.0 in
  let table =
    [ (0, moments ~mu:100.0 ~sigma:1.0); (1, moments ~mu:90.0 ~sigma:20.0) ]
  in
  let f o = List.assoc o table in
  (* max of costs: 102 vs 130 *)
  close "max per-output cost" 130.0 (Core.Objective.cost_of_outputs obj f [ 0; 1 ]);
  (* the blended RV cost is at least the dominant mean *)
  check_true "rv cost sane" (Core.Objective.cost_of_rv obj f [ 0; 1 ] > 100.0);
  try
    ignore (Core.Objective.cost_of_outputs obj f []);
    Alcotest.fail "empty outputs accepted"
  with Invalid_argument _ -> ()

(* ---- Wnss ------------------------------------------------------------------ *)

let wnss_cutoff_dominance () =
  let cfg = Core.Wnss.config ~coupling:0.5 () in
  (* far-apart means: cutoff picks the higher mean regardless of sigma *)
  check_true "cutoff picks higher mean"
    (Core.Wnss.dominant cfg (moments ~mu:500.0 ~sigma:1.0)
       (moments ~mu:100.0 ~sigma:50.0)
    = Core.Wnss.First)

let wnss_variance_sensitivity_prefers_high_sigma () =
  let cfg = Core.Wnss.config ~coupling:0.5 () in
  (* the paper's Fig. 3 situation: means close, sigmas far apart *)
  let low_mean_high_sigma = moments ~mu:310.0 ~sigma:45.0 in
  let high_mean_low_sigma = moments ~mu:320.0 ~sigma:27.0 in
  check_true "high-sigma branch dominates the variance"
    (Core.Wnss.dominant cfg high_mean_low_sigma low_mean_high_sigma
    = Core.Wnss.Second)

let wnss_sensitivity_positive () =
  let cfg = Core.Wnss.config ~coupling:0.5 () in
  let s =
    Core.Wnss.variance_sensitivity cfg
      ~target:(moments ~mu:100.0 ~sigma:20.0)
      ~other:(moments ~mu:95.0 ~sigma:10.0)
  in
  check_true "sensitivity is finite" (Float.is_finite s)

let wnss_pick_dominant_order_independent () =
  let cfg = Core.Wnss.config ~coupling:0.5 () in
  let items =
    [ ("a", moments ~mu:100.0 ~sigma:5.0); ("b", moments ~mu:101.0 ~sigma:25.0);
      ("c", moments ~mu:60.0 ~sigma:2.0) ]
  in
  let x, _ = Core.Wnss.pick_dominant cfg items in
  let y, _ = Core.Wnss.pick_dominant cfg (List.rev items) in
  Alcotest.(check string) "same winner" x y;
  Alcotest.(check string) "high sigma wins" "b" x

let prepared_alu () =
  let c = Benchgen.Alu.generate ~lib ~bits:4 () in
  let _ = Core.Initial_sizing.apply ~lib c in
  c

let wnss_trace_reaches_input () =
  let c = prepared_alu () in
  let full = Ssta.Fullssta.run c in
  let path = Core.Wnss.trace ~model:Variation.Model.default c full in
  (match path with
  | [] -> Alcotest.fail "empty path"
  | first :: _ ->
      check_true "starts at an output" (Netlist.Circuit.is_output c first));
  let last = List.nth path (List.length path - 1) in
  check_true "ends at an input" (Netlist.Circuit.is_input c last)

let wnss_cone_superset_of_path () =
  let c = prepared_alu () in
  let full = Ssta.Fullssta.run c in
  let model = Variation.Model.default in
  let path = Core.Wnss.trace ~model c full in
  let cone = Core.Wnss.critical_cone ~model c full in
  List.iter
    (fun id -> check_true "path node in cone" (List.mem id cone))
    path;
  check_true "cone within circuit" (List.length cone <= Netlist.Circuit.size c)

let wnss_all_outputs_union () =
  let c = prepared_alu () in
  let full = Ssta.Fullssta.run c in
  let model = Variation.Model.default in
  let forest = Core.Wnss.trace_all_outputs ~model c full in
  let single =
    Core.Wnss.trace_from_output ~model c full (List.hd (Netlist.Circuit.outputs c))
  in
  List.iter (fun id -> check_true "path in forest" (List.mem id forest)) single

(* ---- Initial sizing --------------------------------------------------------- *)

let initial_sizing_respects_fanout_target () =
  (* the SEC corrector's syndrome roots fan out to every flip gate, so the
     rule has real work to do *)
  let c = Benchgen.Ecc.hamming_corrector ~lib ~data_bits:16 () in
  let resizes = Core.Initial_sizing.apply ~lib c in
  check_true "some gates resized" (resizes > 0);
  (* every gate not at max drive meets the electrical-fanout rule *)
  List.iter
    (fun id ->
      let cell = Netlist.Circuit.cell_exn c id in
      let load = Netlist.Circuit.load c id in
      let fanout = load /. Cells.Cell.input_cap cell in
      let at_max = Cells.Library.next_up lib cell = None in
      if not at_max then
        check_true
          (Printf.sprintf "fanout %.1f within target at %s" fanout
             (Netlist.Circuit.node_name c id))
          (fanout <= 4.0 +. 1e-9))
    (Netlist.Circuit.gates c)

let initial_sizing_idempotent () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:8 () in
  let _ = Core.Initial_sizing.apply ~lib c in
  let again = Core.Initial_sizing.apply ~lib c in
  check_int "second pass is a no-op" 0 again

let initial_sizing_pick_cell () =
  let c = Core.Initial_sizing.pick_cell lib ~fn:Cells.Fn.Inv ~load:0.1 ~target:4.0 in
  check_int "tiny load -> min size" 0 (Cells.Cell.drive_index c);
  let c2 = Core.Initial_sizing.pick_cell lib ~fn:Cells.Fn.Inv ~load:1e6 ~target:4.0 in
  check_true "huge load -> max size" (Cells.Library.next_up lib c2 = None)

(* ---- Window ------------------------------------------------------------------ *)

let window_trials_are_side_effect_free () =
  let c = prepared_alu () in
  let full = Ssta.Fullssta.run c in
  let obj = Core.Objective.create ~alpha:3.0 in
  let window =
    Core.Window.create ~circuit:c ~model:Variation.Model.default ~objective:obj
      ~full ()
  in
  let gate = List.nth (Netlist.Circuit.gates c) 5 in
  let sub = Netlist.Cone.extract c ~pivot:gate ~depth:2 in
  let cells_before =
    List.map (fun id -> Netlist.Circuit.cell_exn c id) (Netlist.Circuit.gates c)
  in
  let cost_before = Core.Window.cost window sub in
  let _ = Core.Window.best_size window ~lib sub in
  let cost_after = Core.Window.cost window sub in
  close ~tol:1e-12 "cost unchanged by trials" cost_before cost_after;
  List.iter2
    (fun a b -> check_true "cells restored" (Cells.Cell.equal a b))
    cells_before
    (List.map (fun id -> Netlist.Circuit.cell_exn c id) (Netlist.Circuit.gates c))

let window_best_never_worse () =
  let c = prepared_alu () in
  let full = Ssta.Fullssta.run c in
  let obj = Core.Objective.create ~alpha:3.0 in
  let window =
    Core.Window.create ~circuit:c ~model:Variation.Model.default ~objective:obj
      ~full ()
  in
  List.iteri
    (fun i gate ->
      if i < 15 then begin
        let sub = Netlist.Cone.extract c ~pivot:gate ~depth:2 in
        let v = Core.Window.best_size window ~lib sub in
        check_true "best cost <= current cost"
          (v.Core.Window.best_cost <= v.Core.Window.current_cost +. 1e-9)
      end)
    (Netlist.Circuit.gates c)

let window_windowed_mode_runs () =
  let c = prepared_alu () in
  let full = Ssta.Fullssta.run c in
  let obj = Core.Objective.create ~alpha:3.0 in
  let window =
    Core.Window.create ~mode:Core.Window.Windowed ~circuit:c
      ~model:Variation.Model.default ~objective:obj ~full ()
  in
  let gate = List.nth (Netlist.Circuit.gates c) 3 in
  let sub = Netlist.Cone.extract c ~pivot:gate ~depth:2 in
  let v = Core.Window.best_size window ~lib sub in
  check_true "windowed verdict is finite" (Float.is_finite v.Core.Window.best_cost);
  let stats = Core.Window.fassta_stats window in
  check_true "windowed mode exercises the quadratic engine"
    (stats.Ssta.Fassta.cutoff_hits + stats.Ssta.Fassta.blended > 0)

(* ---- Sizer -------------------------------------------------------------------- *)

let small_stat_config alpha =
  { Core.Sizer.default_config with
    objective = Core.Objective.create ~alpha;
    max_iterations = 30 }

let sizer_reduces_sigma () =
  let c = prepared_alu () in
  let _ = Core.Sizer.optimize ~config:Core.Sizer.mean_delay_config ~lib c in
  let res = Core.Sizer.optimize ~config:(small_stat_config 9.0) ~lib c in
  let s0 = Numerics.Clark.sigma res.Core.Sizer.initial_moments in
  let s1 = Numerics.Clark.sigma res.Core.Sizer.final_moments in
  check_true "sigma reduced by at least 20%" (s1 < 0.8 *. s0);
  check_true "area grew" (res.Core.Sizer.final_area > res.Core.Sizer.initial_area);
  check_true "circuit still validates" (Netlist.Circuit.validate c = [])

let sizer_mean_config_reduces_mean () =
  let c = prepared_alu () in
  let full0 = Ssta.Fullssta.run c in
  let mu0 = (Ssta.Fullssta.output_moments full0).Numerics.Clark.mean in
  let res = Core.Sizer.optimize ~config:Core.Sizer.mean_delay_config ~lib c in
  check_true "mean reduced"
    (res.Core.Sizer.final_moments.Numerics.Clark.mean < mu0);
  check_true "iterations recorded" (List.length res.Core.Sizer.iterations > 0)

let sizer_respects_iteration_limit () =
  let c = prepared_alu () in
  let config = { (small_stat_config 9.0) with Core.Sizer.max_iterations = 1 } in
  let res = Core.Sizer.optimize ~config ~lib c in
  check_true "at most 1 iteration" (List.length res.Core.Sizer.iterations <= 1)

let sizer_batch_mode_runs () =
  let c = prepared_alu () in
  let config =
    { (small_stat_config 3.0) with Core.Sizer.commit_mode = Core.Sizer.Batch;
      max_iterations = 5 }
  in
  let res = Core.Sizer.optimize ~config ~lib c in
  check_true "batch mode terminates"
    (match res.Core.Sizer.stop_reason with
    | Core.Sizer.Converged | Core.Sizer.No_candidate | Core.Sizer.Iteration_limit ->
        true)

let sizer_alpha_zero_equals_mean_config () =
  close "mean config alpha" 0.0
    (Core.Objective.alpha Core.Sizer.mean_delay_config.Core.Sizer.objective)

(* ---- Area recovery -------------------------------------------------------------- *)

let area_recovery_reclaims () =
  let c = prepared_alu () in
  (* grossly over-size everything, then recover *)
  List.iter
    (fun id ->
      let cell = Netlist.Circuit.cell_exn c id in
      Netlist.Circuit.set_cell c id
        (Cells.Library.max_cell lib ~fn:(Cells.Cell.fn cell)))
    (Netlist.Circuit.gates c);
  let r = Core.Area_recovery.recover ~lib c in
  check_true "area reclaimed" (r.Core.Area_recovery.area_after < r.Core.Area_recovery.area_before);
  check_true "downsizes counted" (r.Core.Area_recovery.downsized > 0);
  (* objective within the (small) budget *)
  check_true "cost within 2% of pre-recovery"
    (r.Core.Area_recovery.cost_after
    <= 1.02 *. Float.abs r.Core.Area_recovery.cost_before);
  check_true "still valid" (Netlist.Circuit.validate c = [])

let () =
  Alcotest.run "core"
    [
      ( "objective",
        [
          Alcotest.test_case "cost" `Quick objective_cost;
          Alcotest.test_case "negative alpha" `Quick objective_negative_alpha;
          Alcotest.test_case "outputs" `Quick objective_outputs;
        ] );
      ( "wnss",
        [
          Alcotest.test_case "cutoff dominance" `Quick wnss_cutoff_dominance;
          Alcotest.test_case "variance sensitivity" `Quick
            wnss_variance_sensitivity_prefers_high_sigma;
          Alcotest.test_case "sensitivity finite" `Quick wnss_sensitivity_positive;
          Alcotest.test_case "pick dominant stable" `Quick
            wnss_pick_dominant_order_independent;
          Alcotest.test_case "trace reaches input" `Quick wnss_trace_reaches_input;
          Alcotest.test_case "cone superset" `Quick wnss_cone_superset_of_path;
          Alcotest.test_case "forest contains paths" `Quick wnss_all_outputs_union;
        ] );
      ( "initial_sizing",
        [
          Alcotest.test_case "fanout target" `Quick
            initial_sizing_respects_fanout_target;
          Alcotest.test_case "idempotent" `Quick initial_sizing_idempotent;
          Alcotest.test_case "pick_cell" `Quick initial_sizing_pick_cell;
        ] );
      ( "window",
        [
          Alcotest.test_case "side-effect free" `Quick
            window_trials_are_side_effect_free;
          Alcotest.test_case "best never worse" `Quick window_best_never_worse;
          Alcotest.test_case "windowed mode" `Quick window_windowed_mode_runs;
        ] );
      ( "sizer",
        [
          Alcotest.test_case "reduces sigma" `Quick sizer_reduces_sigma;
          Alcotest.test_case "mean config reduces mean" `Quick
            sizer_mean_config_reduces_mean;
          Alcotest.test_case "iteration limit" `Quick sizer_respects_iteration_limit;
          Alcotest.test_case "batch mode" `Quick sizer_batch_mode_runs;
          Alcotest.test_case "mean config alpha" `Quick
            sizer_alpha_zero_equals_mean_config;
        ] );
      ( "area_recovery",
        [ Alcotest.test_case "reclaims" `Quick area_recovery_reclaims ] );
    ]

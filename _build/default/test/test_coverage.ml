(* Additional fine-grained coverage: small behaviours not exercised by the
   main suites. *)

open Test_util

(* ---- numerics ---------------------------------------------------------- *)

let eigen_one_by_one () =
  let e = Numerics.Eigen.decompose [| [| 4.2 |] |] in
  close ~tol:1e-12 "eigenvalue" 4.2 e.Numerics.Eigen.values.(0);
  close ~tol:1e-12 "eigenvector" 1.0 (Float.abs e.Numerics.Eigen.vectors.(0).(0))

let discrete_max_list () =
  let mk mu = Numerics.Discrete_pdf.of_normal ~samples:10 ~mean:mu ~sigma:1.0 () in
  let m = Numerics.Discrete_pdf.max_list [ mk 10.0; mk 11.0; mk 60.0 ] in
  close ~tol:0.01 "dominated by 60" 60.0 (Numerics.Discrete_pdf.mean m);
  Alcotest.check_raises "empty max_list"
    (Invalid_argument "Discrete_pdf.max_list: empty") (fun () ->
      ignore (Numerics.Discrete_pdf.max_list []))

let lut_map () =
  let lut =
    Numerics.Lut.create ~rows:[| 0.0; 1.0 |] ~cols:[| 0.0; 1.0 |]
      ~values:[| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]
  in
  let doubled = Numerics.Lut.map lut ~f:(fun v -> 2.0 *. v) in
  close "mapped corner" 8.0 (Numerics.Lut.query doubled ~row:1.0 ~col:1.0);
  Alcotest.(check (array (float 0.0))) "axes preserved" (Numerics.Lut.rows lut)
    (Numerics.Lut.rows doubled)

let stats_empty_behaviour () =
  let s = Numerics.Stats.create () in
  check_true "empty mean is nan" (Float.is_nan (Numerics.Stats.mean s));
  close_abs ~tol:0.0 "empty variance is 0" 0.0 (Numerics.Stats.variance s);
  Numerics.Stats.add s 5.0;
  close "single mean" 5.0 (Numerics.Stats.mean s);
  close_abs ~tol:0.0 "single-sample variance is 0" 0.0 (Numerics.Stats.variance s)

let clark_shift () =
  let m = Numerics.Clark.shift (moments ~mu:10.0 ~sigma:2.0) 5.0 in
  close "shifted mean" 15.0 m.Numerics.Clark.mean;
  close "variance unchanged" 4.0 m.Numerics.Clark.var

let rng_float_range () =
  let rng = Numerics.Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let v = Numerics.Rng.float_range rng ~lo:(-3.0) ~hi:7.0 in
    check_true "in range" (v >= -3.0 && v < 7.0)
  done;
  Alcotest.check_raises "inverted range"
    (Invalid_argument "Rng.float_range: hi < lo") (fun () ->
      ignore (Numerics.Rng.float_range rng ~lo:1.0 ~hi:0.0))

(* ---- cells --------------------------------------------------------------- *)

let delay_convex_in_load () =
  (* the quadratic load correction makes delay(load) convex *)
  let cell = Cells.Library.cell_exn lib ~fn:Cells.Fn.Inv ~drive_index:0 in
  let d l = Cells.Cell.delay cell ~slew:10.0 ~load:l in
  let d1 = d 10.0 and d2 = d 40.0 and d3 = d 70.0 in
  check_true "increasing" (d1 < d2 && d2 < d3);
  check_true "convex" (d3 -. d2 >= d2 -. d1 -. 1e-9)

let power_params_custom () =
  let params =
    { Cells.Power.default_params with leakage_per_strength_nw = 10.0 }
  in
  let cell = Cells.Library.cell_exn lib ~fn:Cells.Fn.Inv ~drive_index:0 in
  close ~tol:1e-9 "custom leakage scales"
    (5.0 *. Cells.Power.leakage_nw cell)
    (Cells.Power.leakage_nw ~params cell)

let library_pp_smoke () =
  let s = Fmt.str "%a" Cells.Library.pp lib in
  check_true "pp mentions cell count" (String.length s > 10)

(* ---- sta ------------------------------------------------------------------ *)

let paths_violation_monotone_in_period () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:5 () in
  let t = Sta.Analysis.analyze c in
  let e = Sta.Analysis.electrical t in
  let model = Variation.Model.default in
  match Sta.Paths.k_worst t c ~k:1 with
  | [ p ] ->
      let prob period =
        Sta.Paths.violation_probability ~model c e p ~period
      in
      let p1 = prob (p.Sta.Paths.arrival *. 0.8) in
      let p2 = prob p.Sta.Paths.arrival in
      let p3 = prob (p.Sta.Paths.arrival *. 1.2) in
      check_true "monotone decreasing in period" (p1 >= p2 && p2 >= p3);
      check_true "tight period mostly violates" (p1 > 0.7)
  | _ -> Alcotest.fail "expected one path"

let sdf_respects_sigma_corner_zero () =
  let c = tiny_circuit () in
  let e = Sta.Electrical.compute c in
  let text = Sta.Sdf.to_sdf ~sigma_corner:0.0 c e in
  (* with zero corners min = typ = max: triples have equal entries *)
  let n1 = Netlist.Circuit.find_exn c ~name:"n1" in
  let d = (Sta.Electrical.arc_delays e n1).(0) in
  let expect = Printf.sprintf "(%.1f:%.1f:%.1f)" d d d in
  let len = String.length expect in
  let rec scan i =
    i + len <= String.length text && (String.sub text i len = expect || scan (i + 1))
  in
  check_true "degenerate triple present" (scan 0)

(* ---- ssta ------------------------------------------------------------------ *)

let power_analysis_deterministic () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:4 () in
  let cfg = { Ssta.Power_analysis.default_config with trials = 100; seed = 5 } in
  let r1 = Ssta.Power_analysis.run ~config:cfg c in
  let r2 = Ssta.Power_analysis.run ~config:cfg c in
  Alcotest.(check (array (float 1e-12)))
    "same leakage samples" r1.Ssta.Power_analysis.leakage_uw
    r2.Ssta.Power_analysis.leakage_uw

let stat_slack_fast_min_close_to_exact () =
  let c = Benchgen.Alu.generate ~lib ~bits:4 () in
  let model = Variation.Model.default in
  let full = Ssta.Fullssta.run c in
  let m = Ssta.Fullssta.output_moments full in
  let period = m.Numerics.Clark.mean in
  let exact = Ssta.Stat_slack.of_fullssta ~exact:true ~model ~period full c in
  let fast = Ssta.Stat_slack.of_fullssta ~exact:false ~model ~period full c in
  List.iter
    (fun id ->
      match (Ssta.Stat_slack.slack exact id, Ssta.Stat_slack.slack fast id) with
      | Some a, Some b ->
          close ~tol:0.1 "means track"
            (a.Numerics.Clark.mean +. 1000.0)
            (b.Numerics.Clark.mean +. 1000.0)
      | None, None -> ()
      | _ -> Alcotest.fail "engines disagree on constrained-ness")
    (Netlist.Circuit.inputs c)

(* ---- sdc -------------------------------------------------------------------- *)

let sdc_sample = {|
# constraints for the tiny example
create_clock -period 120.0 -name clk
set_input_delay 8.0 -clock clk [get_ports a]
set_output_delay 15.0 -clock clk [get_ports n3]
// trailing comment line
|}

let sdc_parses () =
  let sdc = Sta.Sdc.of_string sdc_sample in
  close ~tol:1e-9 "period" 120.0 (Sta.Sdc.period_exn sdc);
  close ~tol:1e-9 "input delay" 8.0 (Sta.Sdc.input_delay sdc ~port:"a");
  close_abs ~tol:0.0 "unconstrained input" 0.0 (Sta.Sdc.input_delay sdc ~port:"b");
  close ~tol:1e-9 "output delay" 15.0 (Sta.Sdc.output_delay sdc ~port:"n3");
  close ~tol:1e-9 "worst input delay" 8.0 (Sta.Sdc.worst_input_delay sdc)

let sdc_errors () =
  (try
     ignore (Sta.Sdc.of_string "create_clock -name clk\n");
     Alcotest.fail "expected missing-period error"
   with Sta.Sdc.Parse_error _ -> ());
  (try
     ignore (Sta.Sdc.of_string "set_output_delay [get_ports x]\n");
     Alcotest.fail "expected missing-value error"
   with Sta.Sdc.Parse_error _ -> ());
  try
    ignore (Sta.Sdc.of_string "frobnicate 1 2 3\n");
    Alcotest.fail "expected unknown-command error"
  with Sta.Sdc.Parse_error _ -> ()

let sdc_drives_stat_slack () =
  let c = tiny_circuit () in
  let model = Variation.Model.default in
  let full = Ssta.Fullssta.run c in
  let sdc = Sta.Sdc.of_string sdc_sample in
  let sl = Ssta.Stat_slack.of_sdc ~model ~sdc full c in
  let n3 = Netlist.Circuit.find_exn c ~name:"n3" in
  (match Ssta.Stat_slack.slack sl n3 with
  | Some s ->
      let m = Ssta.Fullssta.moments full n3 in
      (* slack mean = (period - output margin) - arrival mean *)
      close ~tol:0.01 "margin applied"
        (120.0 -. 15.0 -. m.Numerics.Clark.mean)
        s.Numerics.Clark.mean
  | None -> Alcotest.fail "output constrained");
  (* without the margin the slack is 15 ps larger *)
  let plain = Ssta.Stat_slack.of_fullssta ~model ~period:120.0 full c in
  match (Ssta.Stat_slack.slack sl n3, Ssta.Stat_slack.slack plain n3) with
  | Some a, Some b ->
      close ~tol:0.01 "margin delta" 15.0
        (b.Numerics.Clark.mean -. a.Numerics.Clark.mean)
  | _ -> Alcotest.fail "both constrained"

(* ---- core ------------------------------------------------------------------- *)

let objective_pp_smoke () =
  let s = Fmt.str "%a" Core.Objective.pp (Core.Objective.create ~alpha:3.0) in
  check_true "pp mentions alpha" (String.length s > 5)

let area_recovery_tolerance_respected () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:6 () in
  (* over-size, recover with a generous tolerance, check budget *)
  List.iter
    (fun id ->
      let cell = Netlist.Circuit.cell_exn c id in
      Netlist.Circuit.set_cell c id
        (Cells.Library.max_cell lib ~fn:(Cells.Cell.fn cell)))
    (Netlist.Circuit.gates c);
  let config = { Core.Area_recovery.default_config with tolerance = 0.05 } in
  let r = Core.Area_recovery.recover ~config ~lib c in
  check_true "cost within 6% of pre-recovery"
    (r.Core.Area_recovery.cost_after
    <= 1.06 *. Float.abs r.Core.Area_recovery.cost_before);
  check_true "generous tolerance reclaims a lot"
    (r.Core.Area_recovery.area_after < 0.7 *. r.Core.Area_recovery.area_before)

let window_batch_vs_sequential_same_verdicts () =
  (* best_size itself is commit-mode independent; verdicts must agree *)
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:4 () in
  let full = Ssta.Fullssta.run c in
  let obj = Core.Objective.create ~alpha:3.0 in
  let w1 =
    Core.Window.create ~circuit:c ~model:Variation.Model.default ~objective:obj
      ~full ()
  in
  let w2 =
    Core.Window.create ~circuit:c ~model:Variation.Model.default ~objective:obj
      ~full ()
  in
  List.iteri
    (fun i gate ->
      if i < 8 then begin
        let sub = Netlist.Cone.extract c ~pivot:gate ~depth:2 in
        let v1 = Core.Window.best_size w1 ~lib sub in
        let v2 = Core.Window.best_size w2 ~lib sub in
        check_true "same best cell"
          (Cells.Cell.equal v1.Core.Window.best v2.Core.Window.best);
        close ~tol:1e-9 "same cost" v1.Core.Window.best_cost v2.Core.Window.best_cost
      end)
    (Netlist.Circuit.gates c)

let () =
  Alcotest.run "coverage"
    [
      ( "numerics",
        [
          Alcotest.test_case "eigen 1x1" `Quick eigen_one_by_one;
          Alcotest.test_case "discrete max_list" `Quick discrete_max_list;
          Alcotest.test_case "lut map" `Quick lut_map;
          Alcotest.test_case "stats empty" `Quick stats_empty_behaviour;
          Alcotest.test_case "clark shift" `Quick clark_shift;
          Alcotest.test_case "rng float_range" `Quick rng_float_range;
        ] );
      ( "cells",
        [
          Alcotest.test_case "delay convex in load" `Quick delay_convex_in_load;
          Alcotest.test_case "power params" `Quick power_params_custom;
          Alcotest.test_case "library pp" `Quick library_pp_smoke;
        ] );
      ( "sta",
        [
          Alcotest.test_case "violation monotone" `Quick
            paths_violation_monotone_in_period;
          Alcotest.test_case "sdf zero corner" `Quick sdf_respects_sigma_corner_zero;
        ] );
      ( "ssta",
        [
          Alcotest.test_case "power deterministic" `Quick power_analysis_deterministic;
          Alcotest.test_case "stat slack fast vs exact" `Quick
            stat_slack_fast_min_close_to_exact;
        ] );
      ( "sdc",
        [
          Alcotest.test_case "parses" `Quick sdc_parses;
          Alcotest.test_case "errors" `Quick sdc_errors;
          Alcotest.test_case "drives stat slack" `Quick sdc_drives_stat_slack;
        ] );
      ( "core",
        [
          Alcotest.test_case "objective pp" `Quick objective_pp_smoke;
          Alcotest.test_case "recovery tolerance" `Quick
            area_recovery_tolerance_respected;
          Alcotest.test_case "window verdicts stable" `Quick
            window_batch_vs_sequential_same_verdicts;
        ] );
    ]

(* Unit tests for the variation model and correlated draws. *)

open Test_util

let model_sigma_shrinks_with_strength () =
  let m = Variation.Model.default in
  let s1 = Variation.Model.sigma m ~delay:30.0 ~strength:1.0 in
  let s4 = Variation.Model.sigma m ~delay:30.0 ~strength:4.0 in
  let s16 = Variation.Model.sigma m ~delay:30.0 ~strength:16.0 in
  check_true "sigma(1) > sigma(4)" (s1 > s4);
  check_true "sigma(4) > sigma(16)" (s4 > s16)

let model_systematic_inverse_linear () =
  (* default size exponent 1: the paper's "inversely proportional to their
     dimensions" *)
  let m = Variation.Model.default in
  let s1 = Variation.Model.systematic_sigma m ~delay:30.0 ~strength:1.0 in
  let s4 = Variation.Model.systematic_sigma m ~delay:30.0 ~strength:4.0 in
  close ~tol:1e-9 "1/s scaling" (s1 /. 4.0) s4

let model_sigma_grows_with_delay () =
  let m = Variation.Model.default in
  check_true "more delay, more sigma"
    (Variation.Model.sigma m ~delay:60.0 ~strength:2.0
    > Variation.Model.sigma m ~delay:20.0 ~strength:2.0)

let model_floor_is_absolute () =
  let m = Variation.Model.default in
  let huge = Variation.Model.sigma m ~delay:0.0 ~strength:16.0 in
  close ~tol:1e-9 "floor remains at zero delay" (Variation.Model.random_sigma m) huge;
  check_true "floor positive" (Variation.Model.random_sigma m > 0.0)

let model_custom_exponent () =
  let m = Variation.Model.create ~size_exponent:0.5 () in
  let s1 = Variation.Model.systematic_sigma m ~delay:30.0 ~strength:1.0 in
  let s4 = Variation.Model.systematic_sigma m ~delay:30.0 ~strength:4.0 in
  close ~tol:1e-9 "1/sqrt(s) scaling" (s1 /. 2.0) s4

let model_delay_moments () =
  let m = Variation.Model.default in
  let mm = Variation.Model.delay_moments m ~delay:25.0 ~strength:2.0 in
  close "mean is delay" 25.0 mm.Numerics.Clark.mean;
  close ~tol:1e-9 "var is sigma squared"
    (Variation.Model.sigma m ~delay:25.0 ~strength:2.0)
    (Numerics.Clark.sigma mm)

let model_coupling () =
  let m = Variation.Model.create ~systematic:0.4 () in
  close "coupling = k_sys" 0.4 (Variation.Model.coupling m)

let model_rejects_negative () =
  try
    ignore (Variation.Model.create ~systematic:(-0.1) ());
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

(* ---- Correlated ---------------------------------------------------------- *)

let correlated_validation () =
  (try
     ignore (Variation.Correlated.create ~global_share:0.8 ~regional_share:0.5 ());
     Alcotest.fail "shares above 1 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Variation.Correlated.create ~regions:0 ());
    Alcotest.fail "zero regions accepted"
  with Invalid_argument _ -> ()

let correlated_independent_draws () =
  let rng = Numerics.Rng.create ~seed:2 in
  let stats = Numerics.Stats.create () in
  for _ = 1 to 500 do
    let z = Variation.Correlated.draw Variation.Correlated.independent rng ~count:20 in
    Array.iter (Numerics.Stats.add stats) z
  done;
  close_abs ~tol:0.03 "mean 0" 0.0 (Numerics.Stats.mean stats);
  close ~tol:0.03 "sigma 1" 1.0 (Numerics.Stats.std stats)

let correlated_global_share_correlates () =
  let structure = Variation.Correlated.create ~global_share:0.6 () in
  let rng = Numerics.Rng.create ~seed:4 in
  (* empirical correlation between two gates across many dies *)
  let n = 4000 in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let z = Variation.Correlated.draw structure rng ~count:2 in
    xs.(i) <- z.(0);
    ys.(i) <- z.(1)
  done;
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
  let mx = mean xs and my = mean ys in
  let cov = ref 0.0 and vx = ref 0.0 and vy = ref 0.0 in
  for i = 0 to n - 1 do
    cov := !cov +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    vx := !vx +. ((xs.(i) -. mx) ** 2.0);
    vy := !vy +. ((ys.(i) -. my) ** 2.0)
  done;
  let rho = !cov /. Float.sqrt (!vx *. !vy) in
  close_abs ~tol:0.06 "empirical correlation ~ share" 0.6 rho;
  close ~tol:1e-9 "implied correlation" 0.6
    (Variation.Correlated.correlation structure ~gate_a:0 ~gate_b:1)

let correlated_regional () =
  let structure = Variation.Correlated.create ~regional_share:0.5 ~regions:4 () in
  close ~tol:1e-9 "same region" 0.5
    (Variation.Correlated.correlation structure ~gate_a:0 ~gate_b:4);
  close_abs ~tol:1e-9 "different region" 0.0
    (Variation.Correlated.correlation structure ~gate_a:0 ~gate_b:1);
  close ~tol:1e-9 "self" 1.0
    (Variation.Correlated.correlation structure ~gate_a:3 ~gate_b:3);
  close ~tol:1e-9 "residual" 0.5 (Variation.Correlated.residual_share structure)

let () =
  Alcotest.run "variation"
    [
      ( "model",
        [
          Alcotest.test_case "sigma shrinks with strength" `Quick
            model_sigma_shrinks_with_strength;
          Alcotest.test_case "1/s systematic scaling" `Quick
            model_systematic_inverse_linear;
          Alcotest.test_case "sigma grows with delay" `Quick
            model_sigma_grows_with_delay;
          Alcotest.test_case "absolute floor" `Quick model_floor_is_absolute;
          Alcotest.test_case "custom exponent" `Quick model_custom_exponent;
          Alcotest.test_case "delay moments" `Quick model_delay_moments;
          Alcotest.test_case "coupling" `Quick model_coupling;
          Alcotest.test_case "rejects negatives" `Quick model_rejects_negative;
        ] );
      ( "correlated",
        [
          Alcotest.test_case "validation" `Quick correlated_validation;
          Alcotest.test_case "independent draws" `Quick correlated_independent_draws;
          Alcotest.test_case "global share correlates" `Quick
            correlated_global_share_correlates;
          Alcotest.test_case "regional structure" `Quick correlated_regional;
        ] );
    ]

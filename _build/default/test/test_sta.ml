(* Unit tests for the deterministic STA substrate. *)

open Test_util

(* A 3-inverter chain: arrivals must be exact partial sums of arc delays. *)
let chain_circuit () =
  let bld = Netlist.Build.create ~lib ~name:"chain3" () in
  let a = Netlist.Build.input bld ~name:"a" in
  let x1 = Netlist.Build.not_ ~name:"x1" bld a in
  let x2 = Netlist.Build.not_ ~name:"x2" bld x1 in
  let x3 = Netlist.Build.not_ ~name:"x3" bld x2 in
  ignore (Netlist.Build.output bld x3);
  Netlist.Build.finish bld

let electrical_chain_arrivals () =
  let c = chain_circuit () in
  let e = Sta.Electrical.compute c in
  let arrival = Sta.Analysis.arrivals c e in
  let x1 = Netlist.Circuit.find_exn c ~name:"x1" in
  let x2 = Netlist.Circuit.find_exn c ~name:"x2" in
  let x3 = Netlist.Circuit.find_exn c ~name:"x3" in
  let d id = (Sta.Electrical.arc_delays e id).(0) in
  close ~tol:1e-9 "x1 arrival" (d x1) arrival.(x1);
  close ~tol:1e-9 "x2 arrival" (d x1 +. d x2) arrival.(x2);
  close ~tol:1e-9 "x3 arrival" (d x1 +. d x2 +. d x3) arrival.(x3)

let electrical_input_slew_config () =
  let c = chain_circuit () in
  let e1 = Sta.Electrical.compute ~config:{ input_slew = 5.0; input_arrival = 0.0 } c in
  let e2 = Sta.Electrical.compute ~config:{ input_slew = 80.0; input_arrival = 0.0 } c in
  let x1 = Netlist.Circuit.find_exn c ~name:"x1" in
  check_true "slower input slew, slower first arc"
    ((Sta.Electrical.arc_delays e2 x1).(0) > (Sta.Electrical.arc_delays e1 x1).(0))

let analysis_max_at_converge () =
  let c = tiny_circuit () in
  let t = Sta.Analysis.analyze c in
  let n1 = Netlist.Circuit.find_exn c ~name:"n1" in
  let n2 = Netlist.Circuit.find_exn c ~name:"n2" in
  let n3 = Netlist.Circuit.find_exn c ~name:"n3" in
  let e = Sta.Analysis.electrical t in
  let arcs = Sta.Electrical.arc_delays e n3 in
  let expected =
    Float.max
      (Sta.Analysis.arrival t n1 +. arcs.(0))
      (Sta.Analysis.arrival t n2 +. arcs.(1))
  in
  close ~tol:1e-9 "or gate max" expected (Sta.Analysis.arrival t n3);
  close ~tol:1e-9 "max arrival" (Sta.Analysis.arrival t n3) (Sta.Analysis.max_arrival t)

let analysis_slack_zero_on_critical () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:6 () in
  let t = Sta.Analysis.analyze c in
  (* without an explicit period, required = worst arrival: WNS = 0 *)
  close_abs ~tol:1e-9 "wns zero" 0.0 (Sta.Analysis.wns t);
  List.iter
    (fun id -> close_abs ~tol:1e-6 "zero slack along critical path" 0.0
        (Sta.Analysis.slack t id))
    (Sta.Analysis.critical_path t)

let analysis_explicit_period () =
  let c = tiny_circuit () in
  let t = Sta.Analysis.analyze ~period:1000.0 c in
  check_true "positive slack at relaxed period" (Sta.Analysis.wns t > 0.0);
  let t2 = Sta.Analysis.analyze ~period:1.0 c in
  check_true "negative slack at tight period" (Sta.Analysis.wns t2 < 0.0)

let analysis_critical_path_structure () =
  let c = Benchgen.Alu.generate ~lib ~bits:4 () in
  let t = Sta.Analysis.analyze c in
  match Sta.Analysis.critical_path t with
  | [] -> Alcotest.fail "empty critical path"
  | path ->
      (* the path is input-first, critical output last *)
      let first = List.hd path in
      check_true "starts at a primary input" (Netlist.Circuit.is_input c first);
      let last = List.nth path (List.length path - 1) in
      check_true "ends at the critical output"
        (last = Sta.Analysis.critical_output t);
      let rec connected = function
        | a :: b :: rest ->
            check_true "edge exists" (Array.mem a (Netlist.Circuit.fanins c b));
            connected (b :: rest)
        | _ -> ()
      in
      connected path

let downstream_delays_properties () =
  let c = chain_circuit () in
  let e = Sta.Electrical.compute c in
  let d = Sta.Analysis.downstream_delays c e in
  let x3 = Netlist.Circuit.find_exn c ~name:"x3" in
  let x1 = Netlist.Circuit.find_exn c ~name:"x1" in
  let a = Netlist.Circuit.find_exn c ~name:"a" in
  close_abs ~tol:1e-9 "output has no downstream" 0.0 d.(x3);
  check_true "upstream accumulates" (d.(a) > d.(x1));
  (* downstream(a) = total path delay = max arrival *)
  let arrival = Sta.Analysis.arrivals c e in
  close ~tol:1e-9 "input downstream = circuit delay" arrival.(x3) d.(a)

let electrical_snapshot_restore () =
  let c = tiny_circuit () in
  let e = Sta.Electrical.compute c in
  let n1 = Netlist.Circuit.find_exn c ~name:"n1" in
  let ids = [| n1 |] in
  let before_delay = (Sta.Electrical.arc_delays e n1).(0) in
  let snap = Sta.Electrical.snapshot e ids in
  (* resize and recompute: delay changes *)
  let big = Cells.Library.cell_exn lib ~fn:(Cells.Fn.And 2) ~drive_index:6 in
  Netlist.Circuit.set_cell c n1 big;
  Sta.Electrical.recompute_nodes e c ids;
  check_true "delay changed" ((Sta.Electrical.arc_delays e n1).(0) <> before_delay);
  (* restore: delay back *)
  Sta.Electrical.restore e snap;
  close ~tol:0.0 "restored" before_delay (Sta.Electrical.arc_delays e n1).(0)

let electrical_recompute_all_matches_fresh () =
  let c = Benchgen.Alu.generate ~lib ~bits:4 () in
  let e = Sta.Electrical.compute c in
  (* resize a few gates, then full refresh must equal a fresh compute *)
  List.iteri
    (fun i id ->
      if i mod 3 = 0 then
        let cell = Netlist.Circuit.cell_exn c id in
        match Cells.Library.next_up lib cell with
        | Some up -> Netlist.Circuit.set_cell c id up
        | None -> ())
    (Netlist.Circuit.gates c);
  Sta.Electrical.recompute_all e c;
  let fresh = Sta.Electrical.compute c in
  Netlist.Circuit.iter_nodes c ~f:(fun id ->
      close ~tol:1e-12 "load" (Sta.Electrical.load fresh id) (Sta.Electrical.load e id);
      close ~tol:1e-12 "slew" (Sta.Electrical.slew fresh id) (Sta.Electrical.slew e id))

let () =
  Alcotest.run "sta"
    [
      ( "electrical",
        [
          Alcotest.test_case "chain arrivals" `Quick electrical_chain_arrivals;
          Alcotest.test_case "input slew config" `Quick electrical_input_slew_config;
          Alcotest.test_case "snapshot/restore" `Quick electrical_snapshot_restore;
          Alcotest.test_case "recompute_all consistent" `Quick
            electrical_recompute_all_matches_fresh;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "max at converge" `Quick analysis_max_at_converge;
          Alcotest.test_case "zero slack on critical path" `Quick
            analysis_slack_zero_on_critical;
          Alcotest.test_case "explicit period" `Quick analysis_explicit_period;
          Alcotest.test_case "critical path structure" `Quick
            analysis_critical_path_structure;
          Alcotest.test_case "downstream delays" `Quick downstream_delays_properties;
        ] );
    ]

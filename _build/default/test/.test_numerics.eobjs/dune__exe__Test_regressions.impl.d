test/test_regressions.ml: Alcotest Array Benchgen Cells Core Float List Netlist Numerics Printf Ssta Sta String Test_util Variation

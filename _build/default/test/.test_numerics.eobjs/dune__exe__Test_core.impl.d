test/test_core.ml: Alcotest Benchgen Cells Core Float List Netlist Numerics Printf Ssta Test_util Variation

test/test_integration.ml: Alcotest Benchgen Cells Core Experiments Float List Netlist Numerics Printf Ssta Sta Test_util

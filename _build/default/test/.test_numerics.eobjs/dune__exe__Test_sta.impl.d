test/test_sta.ml: Alcotest Array Benchgen Cells Float List Netlist Sta Test_util

test/test_tooling.ml: Alcotest Array Benchgen Cells Core Float List Netlist Numerics Printf Ssta Sta String Test_util Variation

test/test_coverage.ml: Alcotest Array Benchgen Cells Core Float Fmt List Netlist Numerics Printf Ssta Sta String Test_util Variation

test/test_properties.ml: Alcotest Array Benchgen Cells Core Float List Netlist Numerics Printf QCheck Ssta Sta Test_util Variation

test/test_cells.ml: Alcotest Array Cells Filename Fun List Printf Sys Test_util

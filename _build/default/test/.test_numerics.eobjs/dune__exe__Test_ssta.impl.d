test/test_ssta.ml: Alcotest Array Benchgen Cells Core Float Hashtbl List Netlist Numerics Ssta Sta Test_util Variation

test/test_numerics.ml: Alcotest Array Float Fun Gen List Numerics QCheck Test_util

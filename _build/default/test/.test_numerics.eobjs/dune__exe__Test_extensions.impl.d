test/test_extensions.ml: Alcotest Array Benchgen Core Filename Float List Netlist Numerics Printf Ssta Sta String Sys Test_util Variation

test/test_experiments.ml: Alcotest Benchgen Experiments Float List Numerics Option Ssta String Test_util

test/test_benchgen.ml: Alcotest Benchgen List Netlist Numerics Printf Test_util

test/test_netlist.ml: Alcotest Array Benchgen Cells Fun List Netlist Numerics Printf String Test_util

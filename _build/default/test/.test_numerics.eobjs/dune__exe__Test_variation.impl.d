test/test_variation.ml: Alcotest Array Float Numerics Test_util Variation

(* Second-round coverage: regressions for bugs found during bring-up, and
   finer-grained checks across subsystems. *)

open Test_util

(* ---- regressions ----------------------------------------------------------- *)

(* Rng.int once truncated a 63-bit value into a negative OCaml int. *)
let rng_int_never_negative () =
  let rng = Numerics.Rng.create ~seed:0 in
  for _ = 1 to 100_000 do
    let v = Numerics.Rng.int rng ~bound:7 in
    check_true "non-negative" (v >= 0 && v < 7)
  done

(* Centroid-only re-binning used to leak ~4% variance per propagation level;
   the two-point scheme must keep sigma through long chains of operations. *)
let resample_chain_keeps_sigma () =
  let p = ref (Numerics.Discrete_pdf.of_normal ~samples:12 ~mean:10.0 ~sigma:2.0 ()) in
  let total_sigma = 2.0 *. Float.sqrt 25.0 in
  for _ = 1 to 24 do
    let arc = Numerics.Discrete_pdf.of_normal ~samples:12 ~mean:10.0 ~sigma:2.0 () in
    p := Numerics.Discrete_pdf.resample (Numerics.Discrete_pdf.sum !p arc) ~samples:12
  done;
  close ~tol:0.04 "sigma after 24 sums+resamples" total_sigma
    (Numerics.Discrete_pdf.std !p)

(* The CRC quadratic is a Φ approximation; reading it as a literal erf
   polynomial produced Φ(1) ≈ 0.76. Pin the correct values. *)
let phi_quadratic_values () =
  List.iter
    (fun (x, expected) ->
      close_abs ~tol:0.006 (Printf.sprintf "phi(%g)" x) expected
        (Numerics.Normal.cdf_fast x))
    [ (0.0, 0.5); (0.5, 0.6915); (1.0, 0.8413); (1.5, 0.9332); (2.0, 0.9772);
      (2.5, 0.99); (3.0, 1.0); (-1.0, 0.1587) ]

(* Named wide gates must put the name on the tree root (a dangling duplicate
   tree used to be built on .bench import). *)
let named_wide_gate_root () =
  let bld = Netlist.Build.create ~lib ~name:"wide" () in
  let ins = Netlist.Build.inputs bld ~prefix:"i" ~count:9 in
  let root = Netlist.Build.and_ ~name:"root" bld (Array.to_list ins) in
  ignore (Netlist.Build.output bld root);
  let c = Netlist.Build.finish bld in
  Alcotest.(check string) "root carries the name" "root"
    (Netlist.Circuit.node_name c root);
  check_true "no dangling duplicates" (Netlist.Circuit.validate c = [])

(* ---- Vec -------------------------------------------------------------------- *)

let vec_grows_and_indexes () =
  let v = Netlist.Vec.create ~dummy:(-1) in
  for i = 0 to 99 do
    check_int "push returns index" i (Netlist.Vec.push v i)
  done;
  check_int "length" 100 (Netlist.Vec.length v);
  check_int "get" 57 (Netlist.Vec.get v 57);
  Netlist.Vec.set v 57 1000;
  check_int "set" 1000 (Netlist.Vec.get v 57);
  check_int "fold" (4950 + 1000 - 57) (Netlist.Vec.fold v ~init:0 ~f:( + ));
  (try
     ignore (Netlist.Vec.get v 100);
     Alcotest.fail "expected bounds failure"
   with Invalid_argument _ -> ());
  let seen = ref [] in
  Netlist.Vec.iteri v ~f:(fun i x -> if i < 3 then seen := x :: !seen);
  Alcotest.(check (list int)) "iteri order" [ 2; 1; 0 ] !seen

(* ---- levelize / bench writer ------------------------------------------------- *)

let by_level_partitions_nodes () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:5 () in
  let by_level = Netlist.Levelize.by_level c in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 by_level in
  check_int "every node in exactly one level" (Netlist.Circuit.size c) total;
  let levels = Netlist.Levelize.levels c in
  Array.iteri
    (fun lvl nodes ->
      List.iter (fun id -> check_int "level tag matches" lvl levels.(id)) nodes)
    by_level

let bench_writer_structure () =
  let c = tiny_circuit () in
  let text = Netlist.Bench_io.to_string c in
  let count needle =
    List.length
      (List.filter
         (fun line ->
           String.length line >= String.length needle
           && String.sub line 0 (String.length needle) = needle)
         (String.split_on_char '\n' text))
  in
  check_int "INPUT lines" 3 (count "INPUT(");
  check_int "OUTPUT lines" 1 (count "OUTPUT(");
  check_true "gate definitions present" (count "n1 = AND2" = 1)

(* ---- library internals -------------------------------------------------------- *)

let library_tau_and_strengths () =
  close "default tau" 5.0 (Cells.Library.tau lib);
  Alcotest.(check (array (float 0.0)))
    "strength ladder" Cells.Library.default_strengths (Cells.Library.strengths lib)

let cell_names_follow_convention () =
  List.iter
    (fun fn ->
      Array.iter
        (fun cell ->
          let name = Cells.Cell.name cell in
          let prefix = Cells.Fn.name fn ^ "_X" in
          check_true
            (Printf.sprintf "%s starts with %s" name prefix)
            (String.length name > String.length prefix
            && String.sub name 0 (String.length prefix) = prefix))
        (Cells.Library.sizes_of_fn lib fn))
    (Cells.Library.functions lib)

(* ---- FULLSSTA internals --------------------------------------------------------- *)

let fullssta_pdf_invariants_everywhere () =
  let c = Benchgen.Alu.generate ~lib ~bits:4 () in
  let full = Ssta.Fullssta.run c in
  Netlist.Circuit.iter_nodes c ~f:(fun id ->
      let pdf = Ssta.Fullssta.pdf full id in
      check_true "pdf invariants" (Numerics.Discrete_pdf.check_invariants pdf);
      check_true "pdf bounded" (Numerics.Discrete_pdf.support_size pdf <= 24);
      let m = Ssta.Fullssta.moments full id in
      close ~tol:1e-9 "stored moments match pdf" (Numerics.Discrete_pdf.mean pdf)
        m.Numerics.Clark.mean)

let fullssta_yield_is_rv_cdf () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:4 () in
  let full = Ssta.Fullssta.run c in
  let rv = Ssta.Fullssta.output_rv full in
  List.iter
    (fun q ->
      let period = Numerics.Discrete_pdf.quantile rv q in
      close_abs ~tol:1e-9 "yield = cdf of RV_O"
        (Numerics.Discrete_pdf.cdf rv period)
        (Ssta.Fullssta.yield_at full ~period))
    [ 0.1; 0.5; 0.9 ]

(* ---- sizer determinism / co-sizing ----------------------------------------------- *)

let sizer_is_deterministic () =
  let run () =
    let c = Benchgen.Alu.generate ~lib ~bits:4 () in
    let _ = Core.Initial_sizing.apply ~lib c in
    let config =
      { Core.Sizer.default_config with
        objective = Core.Objective.create ~alpha:9.0; max_iterations = 10 }
    in
    let r = Core.Sizer.optimize ~config ~lib c in
    (r.Core.Sizer.final_area,
     (Ssta.Fullssta.output_moments (Ssta.Fullssta.run c)).Numerics.Clark.mean)
  in
  let a1, m1 = run () and a2, m2 = run () in
  close ~tol:0.0 "same area" a1 a2;
  close ~tol:0.0 "same mean" m1 m2

let window_co_sizing_reports_adjustments () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:4 () in
  let full = Ssta.Fullssta.run c in
  let window =
    Core.Window.create ~circuit:c ~model:Variation.Model.default
      ~objective:(Core.Objective.create ~alpha:9.0) ~full ()
  in
  (* push a mid-chain gate to max: its min-size fanins must be co-sized *)
  let gate =
    List.find
      (fun id ->
        Array.exists
          (fun fi -> not (Netlist.Circuit.is_input c fi))
          (Netlist.Circuit.fanins c id))
      (List.rev (Netlist.Circuit.gates c))
  in
  let sub = Netlist.Cone.extract c ~pivot:gate ~depth:2 in
  let huge =
    Cells.Library.max_cell lib ~fn:(Cells.Cell.fn (Netlist.Circuit.cell_exn c gate))
  in
  let _, adjustments = Core.Window.cost_with_cell ~lib window sub huge in
  check_true "fanins co-sized upward"
    (List.for_all
       (fun (fi, cell) ->
         Cells.Cell.strength cell
         > Cells.Cell.strength (Netlist.Circuit.cell_exn c fi))
       adjustments);
  check_true "at least one adjustment" (adjustments <> [])

(* ---- cross-engine sanity on every suite circuit (cheap passes only) ------------- *)

let engines_agree_on_suite_means () =
  List.iter
    (fun name ->
      let c = Benchgen.Iscas_like.build_exn ~lib name in
      let _ = Core.Initial_sizing.apply ~lib c in
      let det = Sta.Analysis.analyze c in
      (* the exact-Clark propagation is the engine used for global scoring;
         the quadratic variant is a window-scale device and drifts much
         further on reconvergent circuits (by design, documented) *)
      let e = Sta.Electrical.compute c in
      let out =
        Array.make (Netlist.Circuit.size c) (moments ~mu:0.0 ~sigma:0.0)
      in
      Ssta.Fassta.propagate_into ~exact:true ~model:Variation.Model.default
        ~circuit:c ~electrical:e out;
      let stat =
        Numerics.Clark.max_exact_list
          (List.map (fun o -> out.(o)) (Netlist.Circuit.outputs c))
      in
      (* E[max] must dominate the deterministic max arrival; the moments
         chain drifts high on heavy reconvergence (c499 reaches ~1.7x),
         while the discrete engine stays much closer *)
      check_true
        (Printf.sprintf "%s: stat mean >= det arrival" name)
        (stat.Numerics.Clark.mean >= Sta.Analysis.max_arrival det -. 1e-6);
      check_true
        (Printf.sprintf "%s: moments chain within 2x of det" name)
        (stat.Numerics.Clark.mean < 2.0 *. Sta.Analysis.max_arrival det);
      (* FULLSSTA shares the independence assumption, so on heavily
         reconvergent circuits (c499: every output is a max over dozens of
         correlated-in-truth paths) E[max] inflates the same way — up to
         ~1.75x deterministic at minimum sizes with k_sys = 0.8. Both
         engines must agree with EACH OTHER far more tightly than with the
         deterministic arrival. *)
      let full = Ssta.Fullssta.run c in
      let fm = Ssta.Fullssta.output_moments full in
      check_true
        (Printf.sprintf "%s: FULLSSTA dominates det" name)
        (fm.Numerics.Clark.mean >= Sta.Analysis.max_arrival det -. 1e-6);
      check_true
        (Printf.sprintf "%s: engines agree within 15%%" name)
        (Float.abs (fm.Numerics.Clark.mean -. stat.Numerics.Clark.mean)
        < 0.15 *. fm.Numerics.Clark.mean))
    [ "alu2"; "c432"; "c499" ]

let () =
  Alcotest.run "regressions"
    [
      ( "regressions",
        [
          Alcotest.test_case "rng int non-negative" `Quick rng_int_never_negative;
          Alcotest.test_case "resample chain keeps sigma" `Quick
            resample_chain_keeps_sigma;
          Alcotest.test_case "phi quadratic values" `Quick phi_quadratic_values;
          Alcotest.test_case "named wide gate root" `Quick named_wide_gate_root;
        ] );
      ("vec", [ Alcotest.test_case "grow/index/fold" `Quick vec_grows_and_indexes ]);
      ( "structure",
        [
          Alcotest.test_case "by_level partitions" `Quick by_level_partitions_nodes;
          Alcotest.test_case "bench writer" `Quick bench_writer_structure;
          Alcotest.test_case "library tau/strengths" `Quick library_tau_and_strengths;
          Alcotest.test_case "cell naming" `Quick cell_names_follow_convention;
        ] );
      ( "fullssta-internals",
        [
          Alcotest.test_case "pdf invariants everywhere" `Quick
            fullssta_pdf_invariants_everywhere;
          Alcotest.test_case "yield is RV cdf" `Quick fullssta_yield_is_rv_cdf;
        ] );
      ( "sizer",
        [
          Alcotest.test_case "deterministic" `Quick sizer_is_deterministic;
          Alcotest.test_case "co-sizing adjustments" `Quick
            window_co_sizing_reports_adjustments;
        ] );
      ( "suite",
        [
          Alcotest.test_case "engines agree on means" `Quick
            engines_agree_on_suite_means;
        ] );
    ]

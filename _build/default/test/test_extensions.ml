(* Tests for the extension modules: eigendecomposition, statistical slack,
   K-worst paths, PCA-correlated SSTA. *)

open Test_util

(* ---- Eigen -------------------------------------------------------------- *)

let eigen_diagonal () =
  let e = Numerics.Eigen.decompose [| [| 3.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  close ~tol:1e-9 "first eigenvalue" 3.0 e.Numerics.Eigen.values.(0);
  close ~tol:1e-9 "second eigenvalue" 1.0 e.Numerics.Eigen.values.(1)

let eigen_known_2x2 () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1 *)
  let e = Numerics.Eigen.decompose [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  close ~tol:1e-9 "lambda1" 3.0 e.Numerics.Eigen.values.(0);
  close ~tol:1e-9 "lambda2" 1.0 e.Numerics.Eigen.values.(1);
  (* eigenvector for 3 is (1,1)/sqrt2 up to sign *)
  let v = e.Numerics.Eigen.vectors.(0) in
  close ~tol:1e-6 "eigenvector components equal" (Float.abs v.(0)) (Float.abs v.(1))

let eigen_reconstructs_covariance () =
  let cov =
    [| [| 2.0; 0.8; 0.3 |]; [| 0.8; 1.5; 0.5 |]; [| 0.3; 0.5; 1.0 |] |]
  in
  let pcs = Numerics.Eigen.principal_components cov in
  for i = 0 to 2 do
    for j = 0 to 2 do
      let rebuilt =
        Array.fold_left (fun acc row -> acc +. (row.(i) *. row.(j))) 0.0 pcs
      in
      close ~tol:1e-6
        (Printf.sprintf "cov(%d,%d) reconstructed" i j)
        cov.(i).(j) rebuilt
    done
  done

let eigen_rejects_asymmetric () =
  try
    ignore (Numerics.Eigen.decompose [| [| 1.0; 2.0 |]; [| 0.0; 1.0 |] |]);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let eigen_keep_truncates () =
  let cov = [| [| 1.0; 0.9 |]; [| 0.9; 1.0 |] |] in
  let pcs = Numerics.Eigen.principal_components ~keep:1 cov in
  check_int "one component kept" 1 (Array.length pcs);
  (* the dominant component explains 1.9 of the 2.0 total variance *)
  let explained = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 pcs.(0) in
  close ~tol:1e-6 "dominant component variance" 1.9 explained

(* ---- Stat_slack ----------------------------------------------------------- *)

let stat_slack_chain () =
  let bld = Netlist.Build.create ~lib ~name:"sl" () in
  let a = Netlist.Build.input bld ~name:"a" in
  let x1 = Netlist.Build.not_ ~name:"x1" bld a in
  let x2 = Netlist.Build.not_ ~name:"x2" bld x1 in
  ignore (Netlist.Build.output bld x2);
  let c = Netlist.Build.finish bld in
  let model = Variation.Model.default in
  let full = Ssta.Fullssta.run c in
  let m_out = Ssta.Fullssta.output_moments full in
  let period = m_out.Numerics.Clark.mean +. 50.0 in
  let sl = Ssta.Stat_slack.of_fullssta ~model ~period full c in
  let x2id = Netlist.Circuit.find_exn c ~name:"x2" in
  (match Ssta.Stat_slack.slack sl x2id with
  | Some s ->
      (* output slack mean = period − arrival mean *)
      close ~tol:0.01 "output slack mean" 50.0 s.Numerics.Clark.mean
  | None -> Alcotest.fail "output should have slack");
  (* the input's required time walks both arcs back *)
  let aid = Netlist.Circuit.find_exn c ~name:"a" in
  match (Ssta.Stat_slack.required sl aid, Ssta.Stat_slack.slack sl aid) with
  | Some r, Some s ->
      check_true "input required below period" (r.Numerics.Clark.mean < period);
      (* on a single path, input slack mean = output slack mean *)
      close ~tol:0.5 "slack consistent along chain" 50.0 s.Numerics.Clark.mean;
      check_true "slack variance accumulated" (s.Numerics.Clark.var > 0.0)
  | _ -> Alcotest.fail "input should be constrained"

let stat_slack_meet_probability () =
  let c = tiny_circuit () in
  let model = Variation.Model.default in
  let full = Ssta.Fullssta.run c in
  let m = Ssta.Fullssta.output_moments full in
  let o = List.hd (Netlist.Circuit.outputs c) in
  (* generous period: certain to meet; impossible period: certain to miss *)
  let sl_hi =
    Ssta.Stat_slack.of_fullssta ~model
      ~period:(m.Numerics.Clark.mean *. 3.0)
      full c
  in
  let sl_lo = Ssta.Stat_slack.of_fullssta ~model ~period:1.0 full c in
  (match Ssta.Stat_slack.meet_probability sl_hi o with
  | Some p -> check_true "meets generous period" (p > 0.999)
  | None -> Alcotest.fail "expected probability");
  (match Ssta.Stat_slack.meet_probability sl_lo o with
  | Some p -> check_true "misses impossible period" (p < 0.01)
  | None -> Alcotest.fail "expected probability");
  match Ssta.Stat_slack.worst_node sl_lo ~alpha:3.0 c with
  | Some (_, v) -> check_true "worst pessimistic slack negative" (v < 0.0)
  | None -> Alcotest.fail "expected a worst node"

let stat_slack_wnss_anchor_matches_tight_period () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:6 () in
  let model = Variation.Model.default in
  let full = Ssta.Fullssta.run c in
  let m = Ssta.Fullssta.output_moments full in
  let sl =
    Ssta.Stat_slack.of_fullssta ~model ~period:m.Numerics.Clark.mean full c
  in
  (* at period = mean, some pessimistic slacks must be negative at alpha>0 *)
  match Ssta.Stat_slack.worst_node sl ~alpha:3.0 c with
  | Some (id, v) ->
      check_true "worst node has negative pessimistic slack" (v < 0.0);
      check_true "worst node is a real node" (id >= 0 && id < Netlist.Circuit.size c)
  | None -> Alcotest.fail "expected a worst node"

(* ---- Paths ------------------------------------------------------------------ *)

let paths_chain_single () =
  let bld = Netlist.Build.create ~lib ~name:"p1" () in
  let a = Netlist.Build.input bld ~name:"a" in
  let x1 = Netlist.Build.not_ bld a in
  let x2 = Netlist.Build.not_ bld x1 in
  ignore (Netlist.Build.output bld x2);
  let c = Netlist.Build.finish bld in
  let t = Sta.Analysis.analyze c in
  match Sta.Paths.k_worst t c ~k:5 with
  | [ p ] ->
      check_int "three nodes" 3 (List.length p.Sta.Paths.nodes);
      close ~tol:1e-9 "arrival matches analysis" (Sta.Analysis.max_arrival t)
        p.Sta.Paths.arrival
  | ps -> Alcotest.failf "expected exactly one path, got %d" (List.length ps)

let paths_sorted_and_distinct () =
  let c = Benchgen.Alu.generate ~lib ~bits:4 () in
  let t = Sta.Analysis.analyze c in
  let paths = Sta.Paths.k_worst t c ~k:20 in
  check_int "found 20 paths" 20 (List.length paths);
  let arrivals = List.map (fun p -> p.Sta.Paths.arrival) paths in
  let rec descending = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && descending rest
    | _ -> true
  in
  check_true "worst first" (descending arrivals);
  (match paths with
  | first :: _ ->
      close ~tol:1e-9 "first is the critical path arrival"
        (Sta.Analysis.max_arrival t) first.Sta.Paths.arrival
  | [] -> Alcotest.fail "no paths");
  let keys = List.map (fun p -> p.Sta.Paths.nodes) paths in
  check_int "paths distinct" 20 (List.length (List.sort_uniq compare keys))

let paths_connected_ends () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:4 () in
  let t = Sta.Analysis.analyze c in
  List.iter
    (fun p ->
      (match p.Sta.Paths.nodes with
      | first :: _ -> check_true "starts at input" (Netlist.Circuit.is_input c first)
      | [] -> Alcotest.fail "empty path");
      let last = List.nth p.Sta.Paths.nodes (List.length p.Sta.Paths.nodes - 1) in
      check_true "ends at output" (Netlist.Circuit.is_output c last))
    (Sta.Paths.k_worst t c ~k:10)

let paths_statistical_moments () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:5 () in
  let t = Sta.Analysis.analyze c in
  let e = Sta.Analysis.electrical t in
  let model = Variation.Model.default in
  match Sta.Paths.k_worst t c ~k:1 with
  | [ p ] ->
      let m = Sta.Paths.path_moments ~model c e p in
      (* one path: mean is exactly the deterministic arrival *)
      close ~tol:1e-9 "path mean = deterministic arrival" p.Sta.Paths.arrival
        m.Numerics.Clark.mean;
      check_true "path variance positive" (m.Numerics.Clark.var > 0.0);
      let p_slow =
        Sta.Paths.violation_probability ~model c e p ~period:p.Sta.Paths.arrival
      in
      close_abs ~tol:0.01 "violates its own mean half the time" 0.5 p_slow
  | _ -> Alcotest.fail "expected one path"

(* ---- PCA SSTA ------------------------------------------------------------------- *)

let pca_independent_structure_matches_fassta () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:6 () in
  let pca =
    Ssta.Pca.run ~structure:Variation.Correlated.independent c
  in
  let pa = Ssta.Pca.output_arrival pca c in
  (* with no correlated share, PCA must agree with plain exact-moment SSTA *)
  let e = Sta.Electrical.compute c in
  let out = Array.make (Netlist.Circuit.size c) (moments ~mu:0.0 ~sigma:0.0) in
  Ssta.Fassta.propagate_into ~exact:true ~model:Variation.Model.default
    ~circuit:c ~electrical:e out;
  let stat =
    Numerics.Clark.max_exact_list
      (List.map (fun o -> out.(o)) (Netlist.Circuit.outputs c))
  in
  close ~tol:0.01 "means agree" stat.Numerics.Clark.mean pa.Ssta.Pca.mean;
  close ~tol:0.05 "sigmas agree" (Numerics.Clark.sigma stat)
    (Ssta.Pca.total_sigma pa)

let pca_tracks_correlated_monte_carlo () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:8 () in
  let _ = Core.Initial_sizing.apply ~lib c in
  let structure =
    Variation.Correlated.create ~global_share:0.5 ~regional_share:0.2 ~regions:4 ()
  in
  let pca = Ssta.Pca.run ~structure c in
  let pa = Ssta.Pca.output_arrival pca c in
  let mc =
    Ssta.Monte_carlo.run
      ~config:{ Ssta.Monte_carlo.default_config with trials = 3000; structure }
      c
  in
  let ms = Ssta.Monte_carlo.circuit_stats mc in
  (* independent SSTA misses the die-to-die factor entirely *)
  let full = Ssta.Fullssta.run c in
  let indep_sigma = Numerics.Clark.sigma (Ssta.Fullssta.output_moments full) in
  let mc_sigma = Numerics.Stats.std ms in
  check_true "independent SSTA badly under-estimates" (indep_sigma < 0.5 *. mc_sigma);
  close ~tol:0.2 "PCA sigma tracks correlated MC" mc_sigma (Ssta.Pca.total_sigma pa);
  close ~tol:0.1 "PCA mean tracks correlated MC" (Numerics.Stats.mean ms)
    pa.Ssta.Pca.mean

let pca_loadings_reconstruct_structure () =
  let structure =
    Variation.Correlated.create ~global_share:0.4 ~regional_share:0.3 ~regions:3 ()
  in
  let pcs = Ssta.Pca.loadings_of_structure structure in
  (* Sum_k L_k(i) L_k(j) must reproduce the correlated covariance *)
  for i = 0 to 2 do
    for j = 0 to 2 do
      let rebuilt =
        Array.fold_left (fun acc row -> acc +. (row.(i) *. row.(j))) 0.0 pcs
      in
      let expected = 0.4 +. if i = j then 0.3 else 0.0 in
      close ~tol:1e-6 "structure covariance" expected rebuilt
    done
  done

(* ---- Priority encoder --------------------------------------------------------- *)

let priority_matches_spec () =
  let channels = 6 in
  let c = Benchgen.Priority.generate ~lib ~channels () in
  let rng = Numerics.Rng.create ~seed:66 in
  for _ = 1 to 200 do
    let req = Numerics.Rng.int rng ~bound:(1 lsl channels) in
    let mask = Numerics.Rng.int rng ~bound:(1 lsl channels) in
    let ins =
      bits_of_int ~prefix:"req" ~width:channels req
      @ bits_of_int ~prefix:"mask" ~width:channels mask
    in
    let outs = Netlist.Simulate.run c ~inputs:ins in
    let active = req land mask in
    let expected_grant =
      if active = 0 then 0
      else
        let rec top i = if active land (1 lsl i) <> 0 then i else top (i - 1) in
        1 lsl top (channels - 1)
    in
    check_int "one-hot grant" expected_grant
      (Netlist.Simulate.read_unsigned outs ~prefix:"grant");
    check_true "valid flag" (List.assoc "valid" outs = (active <> 0))
  done

let priority_unmaskable () =
  let c = Benchgen.Priority.generate ~maskable:false ~lib ~channels:4 () in
  check_true "no mask inputs" (Netlist.Circuit.find c ~name:"mask0" = None);
  let outs =
    Netlist.Simulate.run c
      ~inputs:[ ("req0", true); ("req1", false); ("req2", true); ("req3", false) ]
  in
  check_int "grants highest" 4 (Netlist.Simulate.read_unsigned outs ~prefix:"grant")

(* ---- DOT export ------------------------------------------------------------------ *)

let dot_export_well_formed () =
  let c = tiny_circuit () in
  let text = Netlist.Dot.to_dot ~graph_name:"tiny" c in
  check_true "digraph header"
    (String.length text > 20 && String.sub text 0 14 = "digraph \"tiny\"");
  (* one node line per node, one edge line per arc *)
  let count needle =
    let n = ref 0 and len = String.length needle in
    String.iteri
      (fun i _ ->
        if i + len <= String.length text && String.sub text i len = needle then
          incr n)
      text;
    !n
  in
  check_int "edges" 5 (count " -> ");
  check_int "nodes" (Netlist.Circuit.size c) (count "[shape=");
  let styled =
    Netlist.Dot.to_dot
      ~style:(fun id ->
        { Netlist.Dot.label = Some "x"; highlight = id mod 2 = 0 })
      c
  in
  check_true "highlight style applied"
    (count " -> " > 0 && String.length styled > String.length text)

(* ---- yield objective --------------------------------------------------------------- *)

let for_yield_objective () =
  let obj = Core.Objective.for_yield ~percentile:0.9772 in
  (* z at 97.72% is 2.0 *)
  close ~tol:1e-3 "z for 97.7%" 2.0 (Core.Objective.alpha obj);
  (try
     ignore (Core.Objective.for_yield ~percentile:0.3);
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ());
  close ~tol:1e-3 "cost is the percentile delay" 120.0
    (Core.Objective.cost_of_moments obj (moments ~mu:100.0 ~sigma:10.0))

(* ---- Criticality ------------------------------------------------------------------ *)

let criticality_chain_is_one () =
  (* on a pure chain every node is on the critical path with certainty *)
  let bld = Netlist.Build.create ~lib ~name:"cc" () in
  let a = Netlist.Build.input bld ~name:"a" in
  let x1 = Netlist.Build.not_ bld a in
  let x2 = Netlist.Build.not_ bld x1 in
  ignore (Netlist.Build.output bld x2);
  let c = Netlist.Build.finish bld in
  let crit = Core.Criticality.compute c in
  Netlist.Circuit.iter_nodes c ~f:(fun id ->
      close ~tol:1e-9 "criticality 1 on a chain" 1.0
        (Core.Criticality.criticality crit id))

let criticality_conserved_and_bounded () =
  let c = Benchgen.Alu.generate ~lib ~bits:4 () in
  let crit = Core.Criticality.compute c in
  Netlist.Circuit.iter_nodes c ~f:(fun id ->
      let v = Core.Criticality.criticality crit id in
      check_true "within [0, 1+eps]" (v >= 0.0 && v <= 1.0 +. 1e-6));
  (* outputs' criticalities are a probability distribution over RV_O *)
  let total =
    List.fold_left
      (fun acc o -> acc +. Core.Criticality.criticality crit o)
      0.0 (Netlist.Circuit.outputs c)
  in
  close ~tol:1e-6 "output shares sum to 1" 1.0 total;
  (* ranking is sorted descending *)
  let ranking = Core.Criticality.ranking crit c in
  let rec desc = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && desc rest
    | _ -> true
  in
  check_true "ranking descending" (desc ranking)

let rec find_upwards dir file =
  let candidate = Filename.concat dir file in
  if Sys.file_exists candidate then Some candidate
  else
    let parent = Filename.dirname dir in
    if String.equal parent dir then None else find_upwards parent file

let c17_data_file () =
  let path =
    match find_upwards (Sys.getcwd ()) "data/c17.bench" with
    | Some p -> p
    | None -> Alcotest.skip ()
  in
  let c = Netlist.Bench_io.load ~lib ~path () in
  check_int "5 inputs" 5 (List.length (Netlist.Circuit.inputs c));
  check_int "2 outputs" 2 (List.length (Netlist.Circuit.outputs c));
  check_int "6 gates" 6 (Netlist.Circuit.gate_count c);
  (* truth check, all inputs 0: the first NAND level goes high, so the
     output NANDs (of two high inputs) go low *)
  let outs =
    Netlist.Simulate.run c
      ~inputs:[ ("1", false); ("2", false); ("3", false); ("6", false); ("7", false) ]
  in
  check_true "22 low" (not (List.assoc "22" outs));
  check_true "23 low" (not (List.assoc "23" outs));
  (* 1=1, 3=1 -> 10 = NAND(1,1) = 0 -> 22 = NAND(0, 16) = 1 *)
  let outs2 =
    Netlist.Simulate.run c
      ~inputs:[ ("1", true); ("2", false); ("3", true); ("6", false); ("7", false) ]
  in
  check_true "22 high when 10 low" (List.assoc "22" outs2)

let () =
  Alcotest.run "extensions"
    [
      ( "eigen",
        [
          Alcotest.test_case "diagonal" `Quick eigen_diagonal;
          Alcotest.test_case "known 2x2" `Quick eigen_known_2x2;
          Alcotest.test_case "reconstructs covariance" `Quick
            eigen_reconstructs_covariance;
          Alcotest.test_case "rejects asymmetric" `Quick eigen_rejects_asymmetric;
          Alcotest.test_case "keep truncates" `Quick eigen_keep_truncates;
        ] );
      ( "stat_slack",
        [
          Alcotest.test_case "chain" `Quick stat_slack_chain;
          Alcotest.test_case "meet probability" `Quick stat_slack_meet_probability;
          Alcotest.test_case "wnss anchor" `Quick
            stat_slack_wnss_anchor_matches_tight_period;
        ] );
      ( "paths",
        [
          Alcotest.test_case "chain single" `Quick paths_chain_single;
          Alcotest.test_case "sorted and distinct" `Quick paths_sorted_and_distinct;
          Alcotest.test_case "connected ends" `Quick paths_connected_ends;
          Alcotest.test_case "statistical moments" `Quick paths_statistical_moments;
        ] );
      ( "pca",
        [
          Alcotest.test_case "independent matches exact moments" `Quick
            pca_independent_structure_matches_fassta;
          Alcotest.test_case "tracks correlated MC" `Quick
            pca_tracks_correlated_monte_carlo;
          Alcotest.test_case "loadings reconstruct structure" `Quick
            pca_loadings_reconstruct_structure;
        ] );
      ( "priority",
        [
          Alcotest.test_case "matches spec" `Quick priority_matches_spec;
          Alcotest.test_case "unmaskable" `Quick priority_unmaskable;
        ] );
      ("dot", [ Alcotest.test_case "well-formed" `Quick dot_export_well_formed ]);
      ( "objective",
        [ Alcotest.test_case "for_yield" `Quick for_yield_objective ] );
      ( "criticality",
        [
          Alcotest.test_case "chain is one" `Quick criticality_chain_is_one;
          Alcotest.test_case "conserved and bounded" `Quick
            criticality_conserved_and_bounded;
        ] );
      ("data", [ Alcotest.test_case "c17.bench" `Quick c17_data_file ]);
    ]

(* Functional correctness of the benchmark generators: every arithmetic
   block is checked against its integer specification. *)

open Test_util

let input_vector ~widths v_of =
  List.concat_map (fun (prefix, width) -> bits_of_int ~prefix ~width (v_of prefix))
    widths

(* ---- adders ------------------------------------------------------------- *)

let check_adder c ~bits a b cin =
  let ins =
    bits_of_int ~prefix:"a" ~width:bits a
    @ bits_of_int ~prefix:"b" ~width:bits b
    @ [ ("cin", cin = 1) ]
  in
  let outs = Netlist.Simulate.run c ~inputs:ins in
  let sum = Netlist.Simulate.read_unsigned outs ~prefix:"sum" in
  let cout = if List.assoc "cout" outs then 1 else 0 in
  let got = sum + (cout lsl bits) in
  if got <> a + b + cin then
    Alcotest.failf "adder %d+%d+%d: expected %d, got %d" a b cin (a + b + cin) got

let ripple_exhaustive_small () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:3 () in
  for a = 0 to 7 do
    for b = 0 to 7 do
      check_adder c ~bits:3 a b 0;
      check_adder c ~bits:3 a b 1
    done
  done

let ripple_random_wide () =
  let c = Benchgen.Adder.ripple_carry ~lib ~bits:12 () in
  let rng = Numerics.Rng.create ~seed:1 in
  for _ = 1 to 200 do
    check_adder c ~bits:12
      (Numerics.Rng.int rng ~bound:4096)
      (Numerics.Rng.int rng ~bound:4096)
      (Numerics.Rng.int rng ~bound:2)
  done

let carry_select_matches_spec () =
  List.iter
    (fun (bits, block) ->
      let c = Benchgen.Adder.carry_select ~lib ~bits ~block () in
      let rng = Numerics.Rng.create ~seed:(bits * 10 + block) in
      for _ = 1 to 150 do
        check_adder c ~bits
          (Numerics.Rng.int rng ~bound:(1 lsl bits))
          (Numerics.Rng.int rng ~bound:(1 lsl bits))
          (Numerics.Rng.int rng ~bound:2)
      done)
    [ (4, 2); (8, 4); (11, 3) ]

let carry_select_is_shallower () =
  let rca = Benchgen.Adder.ripple_carry ~lib ~bits:16 () in
  let csa = Benchgen.Adder.carry_select ~lib ~bits:16 ~block:4 () in
  check_true "carry select shallower"
    (Netlist.Levelize.depth csa < Netlist.Levelize.depth rca);
  check_true "carry select larger"
    (Netlist.Circuit.total_area csa > Netlist.Circuit.total_area rca)

let adder_rejects_zero_bits () =
  try
    ignore (Benchgen.Adder.ripple_carry ~lib ~bits:0 ());
    Alcotest.fail "expected failure"
  with Invalid_argument _ -> ()

(* ---- multiplier --------------------------------------------------------- *)

let multiplier_exhaustive_4x4 () =
  let c = Benchgen.Multiplier.generate ~lib ~bits:4 () in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let ins =
        bits_of_int ~prefix:"a" ~width:4 a @ bits_of_int ~prefix:"b" ~width:4 b
      in
      let outs = Netlist.Simulate.run c ~inputs:ins in
      let p = Netlist.Simulate.read_unsigned outs ~prefix:"p" in
      if p <> a * b then Alcotest.failf "4x4 mult %d*%d: got %d" a b p
    done
  done

let multiplier_random_8x8 () =
  let c = Benchgen.Multiplier.generate ~lib ~bits:8 () in
  let rng = Numerics.Rng.create ~seed:8 in
  for _ = 1 to 200 do
    let a = Numerics.Rng.int rng ~bound:256 in
    let b = Numerics.Rng.int rng ~bound:256 in
    let ins =
      bits_of_int ~prefix:"a" ~width:8 a @ bits_of_int ~prefix:"b" ~width:8 b
    in
    let outs = Netlist.Simulate.run c ~inputs:ins in
    let p = Netlist.Simulate.read_unsigned outs ~prefix:"p" in
    if p <> a * b then Alcotest.failf "8x8 mult %d*%d: got %d" a b p
  done

let multiplier_structure () =
  let c = Benchgen.Multiplier.generate ~lib ~bits:16 () in
  check_int "2n product bits" 32 (List.length (Netlist.Circuit.outputs c));
  check_true "deepest circuit in the suite" (Netlist.Levelize.depth c > 60);
  check_true "validates" (Netlist.Circuit.validate c = [])

let multiplier_1x1 () =
  let c = Benchgen.Multiplier.generate ~lib ~bits:1 () in
  let outs = Netlist.Simulate.run c ~inputs:[ ("a0", true); ("b0", true) ] in
  check_true "1*1=1" (List.assoc "p0" outs)

(* ---- ALU ---------------------------------------------------------------- *)

let alu_ops () =
  let bits = 6 in
  let c = Benchgen.Alu.generate ~lib ~bits () in
  let rng = Numerics.Rng.create ~seed:6 in
  let mask = (1 lsl bits) - 1 in
  for _ = 1 to 300 do
    let a = Numerics.Rng.int rng ~bound:(mask + 1) in
    let b = Numerics.Rng.int rng ~bound:(mask + 1) in
    let cin = Numerics.Rng.int rng ~bound:2 in
    let op = Numerics.Rng.int rng ~bound:4 in
    let ins =
      bits_of_int ~prefix:"a" ~width:bits a
      @ bits_of_int ~prefix:"b" ~width:bits b
      @ [ ("cin", cin = 1); ("op0", op land 1 <> 0); ("op1", op land 2 <> 0) ]
    in
    let outs = Netlist.Simulate.run c ~inputs:ins in
    let f = Netlist.Simulate.read_unsigned outs ~prefix:"f" in
    let expected =
      match op with
      | 0 -> (a + b + cin) land mask
      | 1 -> a land b
      | 2 -> a lor b
      | 3 -> a lxor b
      | _ -> assert false
    in
    if f <> expected then
      Alcotest.failf "alu op %d on %d,%d,cin=%d: expected %d got %d" op a b cin
        expected f;
    (* flags *)
    check_true "zero flag" (List.assoc "zero" outs = (expected = 0));
    if op = 0 then
      check_true "cout" (List.assoc "cout" outs = (a + b + cin > mask))
  done

let alu_without_zero_flag () =
  let c = Benchgen.Alu.generate ~zero_flag:false ~lib ~bits:4 () in
  check_true "no zero output" (Netlist.Circuit.find c ~name:"zero" = None)

(* ---- comparator --------------------------------------------------------- *)

let comparator_matches_spec () =
  let bits = 5 in
  let c = Benchgen.Comparator.generate ~lib ~bits () in
  for a = 0 to 31 do
    for b = 0 to 31 do
      let ins =
        bits_of_int ~prefix:"a" ~width:bits a @ bits_of_int ~prefix:"b" ~width:bits b
      in
      let outs = Netlist.Simulate.run c ~inputs:ins in
      check_true "eq" (List.assoc "eq" outs = (a = b));
      check_true "lt" (List.assoc "lt" outs = (a < b));
      check_true "gt" (List.assoc "gt" outs = (a > b))
    done
  done

(* ---- decoder / mux tree -------------------------------------------------- *)

let decoder_matches_spec () =
  let bits = 4 in
  let c = Benchgen.Decoder.generate ~lib ~bits () in
  for v = 0 to 15 do
    List.iter
      (fun en ->
        let ins = ("en", en) :: bits_of_int ~prefix:"s" ~width:bits v in
        let outs = Netlist.Simulate.run c ~inputs:ins in
        for y = 0 to 15 do
          check_true
            (Printf.sprintf "y%d at v=%d en=%b" y v en)
            (List.assoc (Printf.sprintf "y%d" y) outs = (en && y = v))
        done)
      [ true; false ]
  done

let mux_tree_matches_spec () =
  let select_bits = 3 in
  let c = Benchgen.Decoder.mux_tree ~lib ~select_bits () in
  let rng = Numerics.Rng.create ~seed:3 in
  for _ = 1 to 100 do
    let data = Numerics.Rng.int rng ~bound:256 in
    let sel = Numerics.Rng.int rng ~bound:8 in
    let ins =
      bits_of_int ~prefix:"d" ~width:8 data
      @ bits_of_int ~prefix:"s" ~width:select_bits sel
    in
    let outs = Netlist.Simulate.run c ~inputs:ins in
    check_true "selected" (List.assoc "y" outs = (data land (1 lsl sel) <> 0))
  done

(* ---- ECC ---------------------------------------------------------------- *)

let ecc_corrects_single_errors style =
  let data_bits = 11 in
  let r = Benchgen.Ecc.check_bit_count ~data_bits in
  let c = Benchgen.Ecc.hamming_corrector ~style ~lib ~data_bits () in
  let enc = Benchgen.Ecc.hamming_encoder ~style ~lib ~data_bits () in
  let rng = Numerics.Rng.create ~seed:11 in
  for _ = 1 to 40 do
    let word = Numerics.Rng.int rng ~bound:(1 lsl data_bits) in
    (* encode *)
    let checks =
      Netlist.Simulate.run enc ~inputs:(bits_of_int ~prefix:"d" ~width:data_bits word)
    in
    let check_val = Netlist.Simulate.read_unsigned checks ~prefix:"c" in
    (* no error: corrector returns the word *)
    let decode data_v =
      let ins =
        bits_of_int ~prefix:"d" ~width:data_bits data_v
        @ bits_of_int ~prefix:"c" ~width:r check_val
      in
      Netlist.Simulate.read_unsigned (Netlist.Simulate.run c ~inputs:ins) ~prefix:"o"
    in
    check_int "clean word decodes" word (decode word);
    (* flip each data bit in turn: must be corrected *)
    for bit = 0 to data_bits - 1 do
      check_int
        (Printf.sprintf "bit %d corrected" bit)
        word
        (decode (word lxor (1 lsl bit)))
    done
  done

let ecc_native () = ecc_corrects_single_errors Benchgen.Ecc.Native
let ecc_nand4 () = ecc_corrects_single_errors Benchgen.Ecc.Nand4

let ecc_nand4_bigger_and_deeper () =
  let native = Benchgen.Ecc.hamming_corrector ~style:Benchgen.Ecc.Native ~lib ~data_bits:32 () in
  let nand4 = Benchgen.Ecc.hamming_corrector ~style:Benchgen.Ecc.Nand4 ~lib ~data_bits:32 () in
  check_true "nand expansion has more gates"
    (Netlist.Circuit.gate_count nand4 > Netlist.Circuit.gate_count native);
  check_true "nand expansion is deeper"
    (Netlist.Levelize.depth nand4 > Netlist.Levelize.depth native)

let ecc_check_bits () =
  check_int "11 data -> 4 checks" 4 (Benchgen.Ecc.check_bit_count ~data_bits:11);
  check_int "32 data -> 6 checks" 6 (Benchgen.Ecc.check_bit_count ~data_bits:32);
  check_int "4 data -> 3 checks" 3 (Benchgen.Ecc.check_bit_count ~data_bits:4)

(* ---- random DAG ---------------------------------------------------------- *)

let random_dag_deterministic () =
  let profile =
    { Benchgen.Random_dag.profile_name = "rd"; inputs = 12; outputs = 5;
      gates = 80; depth = 9; seed = 99 }
  in
  let c1 = Benchgen.Random_dag.generate ~lib profile in
  let c2 = Benchgen.Random_dag.generate ~lib profile in
  check_int "same size" (Netlist.Circuit.size c1) (Netlist.Circuit.size c2);
  Alcotest.(check string) "same bench text" (Netlist.Bench_io.to_string c1)
    (Netlist.Bench_io.to_string c2)

let random_dag_profile_respected () =
  let profile =
    { Benchgen.Random_dag.profile_name = "rd2"; inputs = 20; outputs = 8;
      gates = 150; depth = 12; seed = 5 }
  in
  let c = Benchgen.Random_dag.generate ~lib profile in
  check_int "inputs exact" 20 (List.length (Netlist.Circuit.inputs c));
  check_int "depth exact" 12 (Netlist.Levelize.depth c);
  check_true "gate count near target"
    (abs (Netlist.Circuit.gate_count c - 150) < 40);
  check_true "validates" (Netlist.Circuit.validate c = [])

let random_dag_rejects_bad_profiles () =
  let bad = { Benchgen.Random_dag.profile_name = "bad"; inputs = 1; outputs = 1;
              gates = 10; depth = 2; seed = 0 } in
  try
    ignore (Benchgen.Random_dag.generate ~lib bad);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

(* ---- barrel shifter -------------------------------------------------------- *)

let shifter_matches_spec () =
  let bits = 8 in
  let c = Benchgen.Shifter.generate ~lib ~bits () in
  let stages = 3 in
  for amount = 0 to 7 do
    let rng = Numerics.Rng.create ~seed:amount in
    for _ = 1 to 30 do
      let d = Numerics.Rng.int rng ~bound:256 in
      let ins =
        bits_of_int ~prefix:"d" ~width:bits d
        @ bits_of_int ~prefix:"s" ~width:stages amount
      in
      let outs = Netlist.Simulate.run c ~inputs:ins in
      let q = Netlist.Simulate.read_unsigned outs ~prefix:"q" in
      check_int
        (Printf.sprintf "%d << %d" d amount)
        ((d lsl amount) land 255)
        q
    done
  done

let shifter_log_depth () =
  let c = Benchgen.Shifter.generate ~lib ~bits:16 () in
  (* 4 mux stages plus the constant-zero pair: depth stays logarithmic *)
  check_true "log depth" (Netlist.Levelize.depth c <= 8)

(* ---- suite --------------------------------------------------------------- *)

let suite_builds_and_validates () =
  List.iter
    (fun name ->
      let c = Benchgen.Iscas_like.build_exn ~lib name in
      check_true (name ^ " validates") (Netlist.Circuit.validate c = []);
      check_true (name ^ " nonempty") (Netlist.Circuit.gate_count c > 50))
    Benchgen.Iscas_like.names

let suite_depth_ordering () =
  let depth name = Netlist.Levelize.depth (Benchgen.Iscas_like.build_exn ~lib name) in
  (* the multiplier is by far the deepest; the SEC corrector the shallowest *)
  let d6288 = depth "c6288" and d499 = depth "c499" and dalu2 = depth "alu2" in
  check_true "c6288 deepest" (d6288 > 2 * dalu2);
  check_true "c499 shallow" (d499 < dalu2)

let suite_unknown_name () =
  try
    ignore (Benchgen.Iscas_like.build_exn ~lib "c17");
    Alcotest.fail "expected failure"
  with Invalid_argument _ -> ()

let () =
  ignore input_vector;
  Alcotest.run "benchgen"
    [
      ( "adders",
        [
          Alcotest.test_case "ripple exhaustive 3b" `Quick ripple_exhaustive_small;
          Alcotest.test_case "ripple random 12b" `Quick ripple_random_wide;
          Alcotest.test_case "carry select spec" `Quick carry_select_matches_spec;
          Alcotest.test_case "carry select shape" `Quick carry_select_is_shallower;
          Alcotest.test_case "zero bits rejected" `Quick adder_rejects_zero_bits;
        ] );
      ( "multiplier",
        [
          Alcotest.test_case "exhaustive 4x4" `Quick multiplier_exhaustive_4x4;
          Alcotest.test_case "random 8x8" `Quick multiplier_random_8x8;
          Alcotest.test_case "structure 16x16" `Quick multiplier_structure;
          Alcotest.test_case "1x1" `Quick multiplier_1x1;
        ] );
      ( "alu",
        [
          Alcotest.test_case "all ops" `Quick alu_ops;
          Alcotest.test_case "no zero flag" `Quick alu_without_zero_flag;
        ] );
      ( "comparator",
        [ Alcotest.test_case "exhaustive 5b" `Quick comparator_matches_spec ] );
      ( "decoder",
        [
          Alcotest.test_case "decoder" `Quick decoder_matches_spec;
          Alcotest.test_case "mux tree" `Quick mux_tree_matches_spec;
        ] );
      ( "ecc",
        [
          Alcotest.test_case "corrects single errors (native)" `Quick ecc_native;
          Alcotest.test_case "corrects single errors (nand4)" `Quick ecc_nand4;
          Alcotest.test_case "nand4 bigger/deeper" `Quick ecc_nand4_bigger_and_deeper;
          Alcotest.test_case "check bit count" `Quick ecc_check_bits;
        ] );
      ( "shifter",
        [
          Alcotest.test_case "matches spec" `Quick shifter_matches_spec;
          Alcotest.test_case "log depth" `Quick shifter_log_depth;
        ] );
      ( "random_dag",
        [
          Alcotest.test_case "deterministic" `Quick random_dag_deterministic;
          Alcotest.test_case "profile respected" `Quick random_dag_profile_respected;
          Alcotest.test_case "bad profiles rejected" `Quick
            random_dag_rejects_bad_profiles;
        ] );
      ( "suite",
        [
          Alcotest.test_case "builds and validates" `Quick suite_builds_and_validates;
          Alcotest.test_case "depth ordering" `Quick suite_depth_ordering;
          Alcotest.test_case "unknown name" `Quick suite_unknown_name;
        ] );
    ]

(* Sweep the user weight alpha and watch the optimizer walk the
   mean/sigma/area trade-off surface (the paper's Fig. 4, on a carry-select
   adder instead of c432).

     dune exec examples/mean_sigma_tradeoff.exe *)

let () =
  let lib = Lazy.force Cells.Library.default in
  let build () = Benchgen.Adder.carry_select ~lib ~bits:16 ~block:4 () in
  let baseline = Experiments.Pipeline.prepare ~lib build in
  let m0 = baseline.Experiments.Pipeline.moments in
  let mu0 = m0.Numerics.Clark.mean in
  Fmt.pr "carry-select adder, 16 bits: baseline mu=%.1f sigma=%.2f@." mu0
    (Numerics.Clark.sigma m0);
  Fmt.pr "%-7s %10s %12s %10s %10s@." "alpha" "mu/mu0" "sigma/mu0" "darea%"
    "iters";
  Fmt.pr "%-7s %10.4f %12.4f %10s %10s@." "0" 1.0
    (Numerics.Clark.sigma m0 /. mu0)
    "-" "-";
  List.iter
    (fun alpha ->
      let r = Experiments.Pipeline.run_alpha ~lib baseline ~alpha in
      let m = r.Experiments.Pipeline.final_moments in
      Fmt.pr "%-7g %10.4f %12.4f %+10.1f %10d@." alpha
        (m.Numerics.Clark.mean /. mu0)
        (Numerics.Clark.sigma m /. mu0)
        r.Experiments.Pipeline.area_change_pct r.Experiments.Pipeline.iterations)
    [ 1.0; 3.0; 6.0; 9.0; 15.0 ];
  Fmt.pr
    "note the saturation at high alpha: the unsystematic variation floor \
     cannot be sized away (paper Sec. 5).@."

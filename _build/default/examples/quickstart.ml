(* Quickstart: build a circuit, look at its statistical timing, make it
   variation-tolerant.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. a standard-cell library (generated 90nm-like; 8 drives per function) *)
  let lib = Lazy.force Cells.Library.default in
  Fmt.pr "library: %a@." Cells.Library.pp lib;

  (* 2. a circuit — here a 16-bit ripple-carry adder from the generators;
     Netlist.Bench_io.load reads ISCAS-85 .bench files the same way *)
  let adder = Benchgen.Adder.ripple_carry ~lib ~bits:16 () in
  Fmt.pr "circuit: %a@." Netlist.Metrics.pp (Netlist.Metrics.compute adder);

  (* 3. give it realistic starting sizes (a synthesis-style fanout rule) *)
  let resized = Core.Initial_sizing.apply ~lib adder in
  Fmt.pr "initial sizing: %d gates resized@." resized;

  (* 4. statistical timing: every gate delay is a random variable *)
  let full = Ssta.Fullssta.run adder in
  let m = Ssta.Fullssta.output_moments full in
  Fmt.pr "before: delay = N(%.1f, %.1f^2) ps, sigma/mean = %.4f@."
    m.Numerics.Clark.mean (Numerics.Clark.sigma m)
    (Ssta.Fullssta.sigma_over_mean full);

  (* 5. StatisticalGreedy: trade a little mean and area for much less sigma.
     alpha weights sigma against mean in the cost mu + alpha*sigma. *)
  let config =
    { Core.Sizer.default_config with objective = Core.Objective.create ~alpha:9.0 }
  in
  let result = Core.Sizer.optimize ~config ~lib adder in
  Fmt.pr "%a@." Core.Sizer.pp_result result;

  (* 6. verify with Monte Carlo — the sigma reduction is real, not just the
     engine's own opinion *)
  let mc = Ssta.Monte_carlo.run adder in
  let stats = Ssta.Monte_carlo.circuit_stats mc in
  Fmt.pr "Monte Carlo after: mu=%.1f sigma=%.1f over %d dies@."
    (Numerics.Stats.mean stats) (Numerics.Stats.std stats)
    (Numerics.Stats.count stats)

(* Run the full flow on a genuine ISCAS-85 netlist file (the classic c17),
   demonstrating .bench import, criticality ranking, statistical slack, and
   variance-aware sizing on externally supplied data.

     dune exec examples/real_netlist.exe [path/to/file.bench] *)

let rec find_upwards dir file =
  let candidate = Filename.concat dir file in
  if Sys.file_exists candidate then Some candidate
  else
    let parent = Filename.dirname dir in
    if String.equal parent dir then None else find_upwards parent file

let () =
  let lib = Lazy.force Cells.Library.default in
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else
      match find_upwards (Sys.getcwd ()) "data/c17.bench" with
      | Some p -> p
      | None -> failwith "data/c17.bench not found; pass a .bench path"
  in
  let c = Netlist.Bench_io.load ~lib ~path () in
  Fmt.pr "loaded %s: %a@." path Netlist.Metrics.pp (Netlist.Metrics.compute c);

  let _ = Core.Initial_sizing.apply ~lib c in

  (* which gates matter statistically? *)
  let crit = Core.Criticality.compute c in
  Fmt.pr "%a" (Core.Criticality.pp ~top:6 c) crit;

  (* statistical slack at an ambitious period *)
  let model = Variation.Model.default in
  let full = Ssta.Fullssta.run c in
  let m = Ssta.Fullssta.output_moments full in
  let period = m.Numerics.Clark.mean in
  let sl = Ssta.Stat_slack.of_fullssta ~model ~period full c in
  Fmt.pr "at T = mean = %.1f ps:@." period;
  List.iter
    (fun o ->
      match Ssta.Stat_slack.meet_probability sl o with
      | Some p ->
          Fmt.pr "  %-6s meets timing with probability %.2f@."
            (Netlist.Circuit.node_name c o) p
      | None -> ())
    (Netlist.Circuit.outputs c);

  (* make it variation-tolerant *)
  let config =
    { Core.Sizer.default_config with objective = Core.Objective.for_yield ~percentile:0.99 }
  in
  let result = Core.Sizer.optimize ~config ~lib c in
  Fmt.pr "%a@." Core.Sizer.pp_result result;
  let full2 = Ssta.Fullssta.run c in
  Fmt.pr "yield at the old mean-period: %.1f%% -> %.1f%%@."
    (100.0 *. Ssta.Fullssta.yield_at full ~period)
    (100.0 *. Ssta.Fullssta.yield_at full2 ~period)

(* The power side of the paper's §2.2 story: variance-aware sizing narrows
   the delay distribution at the cost of dynamic and leakage power — this
   example puts numbers on all three axes at once.

     dune exec examples/power_tradeoff.exe *)

let report tag circuit =
  let full = Ssta.Fullssta.run circuit in
  let m = Ssta.Fullssta.output_moments full in
  let p =
    Ssta.Power_analysis.run
      ~config:{ Ssta.Power_analysis.default_config with trials = 1000 }
      circuit
  in
  let ls = Ssta.Power_analysis.leakage_stats p in
  Fmt.pr
    "%-12s delay N(%.1f, %.2f^2) ps | dynamic %.1f uW | leakage %.2f uW \
     (die-to-die sigma %.2f)@."
    tag m.Numerics.Clark.mean (Numerics.Clark.sigma m)
    p.Ssta.Power_analysis.dynamic_uw (Numerics.Stats.mean ls)
    (Numerics.Stats.std ls)

let () =
  let lib = Lazy.force Cells.Library.default in
  let build () = Benchgen.Kogge_stone.generate ~lib ~bits:12 () in

  let baseline = Experiments.Pipeline.prepare ~lib build in
  Fmt.pr "Kogge-Stone 12-bit adder, mean-optimized baseline:@.";
  report "baseline" baseline.Experiments.Pipeline.circuit;

  List.iter
    (fun alpha ->
      let r = Experiments.Pipeline.run_alpha ~lib baseline ~alpha in
      report (Printf.sprintf "alpha=%g" alpha) r.Experiments.Pipeline.circuit)
    [ 3.0; 9.0 ];

  Fmt.pr
    "@.the trade the paper describes: each step of variance reduction buys \
     delay predictability with area — and therefore dynamic and leakage \
     power. The statistical sizer makes the exchange rate explicit.@."

(* Bring your own technology: generate a custom cell library (fewer drives,
   slower process), persist it in the liberty-like text format, reload it,
   and run the flow against it.

     dune exec examples/custom_library.exe *)

let () =
  (* a leaner library: 4 drive strengths, slower process corner (tau = 8ps),
     no complex cells *)
  let custom =
    Cells.Library.generate ~name:"slow4" ~tau:8.0
      ~strengths:[| 1.0; 2.0; 4.0; 8.0 |]
      ~shapes:
        [ Cells.Fn.Inv; Cells.Fn.Buf; Cells.Fn.Nand 2; Cells.Fn.Nand 3;
          Cells.Fn.Nor 2; Cells.Fn.And 2; Cells.Fn.Or 2; Cells.Fn.Xor2;
          Cells.Fn.Xnor2; Cells.Fn.Mux2; Cells.Fn.Aoi21; Cells.Fn.Oai21 ]
      ()
  in
  Fmt.pr "generated: %a@." Cells.Library.pp custom;

  (* round-trip through the text format *)
  let path = Filename.temp_file "slow4" ".lib" in
  Cells.Liberty.save custom ~path;
  let reloaded = Cells.Liberty.load ~path in
  Sys.remove path;
  Fmt.pr "reloaded: %a@." Cells.Library.pp reloaded;

  (* the generators and the optimizer work against any library *)
  let c = Benchgen.Ecc.hamming_corrector ~lib:reloaded ~data_bits:16 () in
  let _ = Core.Initial_sizing.apply ~lib:reloaded c in
  let full = Ssta.Fullssta.run c in
  let m = Ssta.Fullssta.output_moments full in
  Fmt.pr "SEC corrector on slow4: mu=%.1f sigma=%.2f@." m.Numerics.Clark.mean
    (Numerics.Clark.sigma m);

  let config =
    { Core.Sizer.default_config with objective = Core.Objective.create ~alpha:6.0 }
  in
  let result = Core.Sizer.optimize ~config ~lib:reloaded c in
  Fmt.pr "%a@." Core.Sizer.pp_result result;

  (* with only 4 drives the sigma lever is shorter: compare the reduction
     against the default 8-drive library *)
  let default_lib = Lazy.force Cells.Library.default in
  let c2 = Benchgen.Ecc.hamming_corrector ~lib:default_lib ~data_bits:16 () in
  let _ = Core.Initial_sizing.apply ~lib:default_lib c2 in
  let result2 = Core.Sizer.optimize ~config ~lib:default_lib c2 in
  let reduction (r : Core.Sizer.result) =
    100.0
    *. (Numerics.Clark.sigma r.Core.Sizer.final_moments
        /. Numerics.Clark.sigma r.Core.Sizer.initial_moments
       -. 1.0)
  in
  Fmt.pr "sigma reduction: 4-drive library %.0f%%, 8-drive library %.0f%%@."
    (reduction result) (reduction result2)

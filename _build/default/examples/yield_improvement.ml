(* The Fig.-1 story: reducing performance variance raises parametric yield at
   a fixed clock period — more dies meet timing even though the mean barely
   moves.

     dune exec examples/yield_improvement.exe *)

let () =
  let lib = Lazy.force Cells.Library.default in
  let build () = Benchgen.Alu.generate ~lib ~bits:12 () in

  (* the mean-optimized baseline ("Original" in the paper) *)
  let baseline = Experiments.Pipeline.prepare ~lib build in
  let m0 = baseline.Experiments.Pipeline.moments in
  Fmt.pr "baseline: mu=%.1f sigma=%.1f area=%.0f@." m0.Numerics.Clark.mean
    (Numerics.Clark.sigma m0) baseline.Experiments.Pipeline.area;

  (* pick a market clock period the baseline only just meets: mu + 0.5 sigma *)
  let period =
    m0.Numerics.Clark.mean +. (0.5 *. Numerics.Clark.sigma m0)
  in
  let mc_yield circuit =
    let mc =
      Ssta.Monte_carlo.run
        ~config:{ Ssta.Monte_carlo.default_config with trials = 4000 }
        circuit
    in
    Ssta.Monte_carlo.yield_at mc ~period
  in
  let full0 = Ssta.Fullssta.run baseline.Experiments.Pipeline.circuit in
  Fmt.pr "clock period T = %.1f ps@." period;
  Fmt.pr "baseline yield:  SSTA %.1f%%  MonteCarlo %.1f%%@."
    (100.0 *. Ssta.Fullssta.yield_at full0 ~period)
    (100.0 *. mc_yield baseline.Experiments.Pipeline.circuit);

  (* statistical sizing at two aggressiveness levels *)
  List.iter
    (fun alpha ->
      let r = Experiments.Pipeline.run_alpha ~lib baseline ~alpha in
      let full = Ssta.Fullssta.run r.Experiments.Pipeline.circuit in
      Fmt.pr
        "alpha=%-3g yield: SSTA %5.1f%%  MonteCarlo %5.1f%%   (dsigma %+.0f%%, \
         darea %+.0f%%)@."
        alpha
        (100.0 *. Ssta.Fullssta.yield_at full ~period)
        (100.0 *. mc_yield r.Experiments.Pipeline.circuit)
        r.Experiments.Pipeline.sigma_change_pct
        r.Experiments.Pipeline.area_change_pct)
    [ 3.0; 9.0 ]

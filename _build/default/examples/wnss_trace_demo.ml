(* Statistical vs deterministic critical paths: the WNSS trace follows the
   variance, which is not always where the worst mean is (paper Sec. 4.4 and
   Fig. 3).

     dune exec examples/wnss_trace_demo.exe *)

let () =
  let lib = Lazy.force Cells.Library.default in
  let c = Benchgen.Alu.generate ~lib ~bits:8 () in
  let _ = Core.Initial_sizing.apply ~lib c in
  let model = Variation.Model.default in

  (* deterministic WNS path *)
  let det = Sta.Analysis.analyze c in
  let wns_path = Sta.Analysis.critical_path det in
  Fmt.pr "deterministic WNS path (%d nodes, arrival %.1f ps):@."
    (List.length wns_path) (Sta.Analysis.max_arrival det);
  Fmt.pr "  %a@."
    (Fmt.list ~sep:(Fmt.any " -> ") Fmt.string)
    (List.map (Netlist.Circuit.node_name c) wns_path);

  (* statistical WNSS path *)
  let full = Ssta.Fullssta.run c in
  let wnss_path = Core.Wnss.trace ~model c full in
  Fmt.pr "statistical WNSS path (%d nodes):@." (List.length wnss_path);
  List.iter
    (fun id ->
      let m = Ssta.Fullssta.moments full id in
      Fmt.pr "  %-12s arrival N(%.1f, %.1f^2)@."
        (Netlist.Circuit.node_name c id)
        m.Numerics.Clark.mean (Numerics.Clark.sigma m))
    wnss_path;

  (* how much do they overlap? *)
  let overlap =
    List.length (List.filter (fun id -> List.mem id wns_path) wnss_path)
  in
  Fmt.pr "overlap: %d of %d WNSS nodes are also on the WNS path@." overlap
    (List.length wnss_path);

  (* the full statistical critical cone the sizer sweeps *)
  let cone = Core.Wnss.critical_cone ~model c full in
  Fmt.pr "statistical critical cone: %d of %d nodes@." (List.length cone)
    (Netlist.Circuit.size c)

examples/wnss_trace_demo.ml: Benchgen Cells Core Fmt Lazy List Netlist Numerics Ssta Sta Variation

examples/real_netlist.mli:

examples/power_tradeoff.ml: Benchgen Cells Experiments Fmt Lazy List Numerics Printf Ssta

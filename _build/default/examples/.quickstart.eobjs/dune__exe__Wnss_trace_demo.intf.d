examples/wnss_trace_demo.mli:

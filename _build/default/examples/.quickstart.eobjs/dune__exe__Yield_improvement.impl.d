examples/yield_improvement.ml: Benchgen Cells Experiments Fmt Lazy List Numerics Ssta

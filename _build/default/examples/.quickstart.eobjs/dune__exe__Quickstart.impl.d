examples/quickstart.ml: Benchgen Cells Core Fmt Lazy Netlist Numerics Ssta

examples/yield_improvement.mli:

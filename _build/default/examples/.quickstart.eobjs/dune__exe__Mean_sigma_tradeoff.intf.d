examples/mean_sigma_tradeoff.mli:

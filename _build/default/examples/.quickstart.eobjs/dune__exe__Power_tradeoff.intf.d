examples/power_tradeoff.mli:

examples/quickstart.mli:

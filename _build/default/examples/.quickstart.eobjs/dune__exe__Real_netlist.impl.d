examples/real_netlist.ml: Array Cells Core Filename Fmt Lazy List Netlist Numerics Ssta String Sys Variation

examples/mean_sigma_tradeoff.ml: Benchgen Cells Experiments Fmt Lazy List Numerics

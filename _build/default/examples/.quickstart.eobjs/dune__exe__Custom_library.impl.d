examples/custom_library.ml: Benchgen Cells Core Filename Fmt Lazy Numerics Ssta Sys

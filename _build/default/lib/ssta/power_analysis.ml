(* Circuit power and its die-to-die variability.

   The paper's Fig.-1 discussion: parts on the fast side of the delay
   distribution burn disproportionate power (fast die = leaky die), so
   narrowing the delay distribution also narrows the power distribution —
   this module quantifies that side of the story.

   Monte-Carlo over dies: each die draws one standardized process deviation
   per gate (reusing the delay model's correlated structures, with the SAME
   sign convention: positive z = slow = less leaky), total leakage sums
   exponentially-scaled per-gate leakages, dynamic power sums toggle
   energies at an assumed activity. *)

type config = {
  trials : int;
  seed : int;
  params : Cells.Power.params;
  structure : Variation.Correlated.t;
  activity : float; (* toggles per node per cycle *)
  clock_ghz : float;
}

let default_config =
  {
    trials = 2000;
    seed = 99;
    params = Cells.Power.default_params;
    structure = Variation.Correlated.create ~global_share:0.5 ();
    activity = 0.15;
    clock_ghz = 0.5;
  }

type result = {
  config : config;
  dynamic_uw : float; (* activity-weighted dynamic power, microwatts *)
  leakage_uw : float array; (* per-trial total leakage, microwatts *)
}

(* Activity-weighted dynamic power (no variability modeled on it — dynamic
   power varies far less than leakage). *)
let dynamic_power_uw ~config circuit =
  let total_fj_per_cycle =
    List.fold_left
      (fun acc id ->
        acc
        +. Cells.Power.dynamic_energy_fj ~params:config.params
             (Netlist.Circuit.cell_exn circuit id))
      0.0
      (Netlist.Circuit.gates circuit)
  in
  (* fJ/cycle · cycles/ns = µW: 1 fJ/ns = 1 µW *)
  total_fj_per_cycle *. config.activity *. config.clock_ghz

let run ?(config = default_config) circuit =
  if config.trials < 1 then invalid_arg "Power_analysis.run: trials < 1";
  let gates = Array.of_list (Netlist.Circuit.gates circuit) in
  let nominal =
    Array.map
      (fun id ->
        Cells.Power.leakage_nw ~params:config.params
          (Netlist.Circuit.cell_exn circuit id))
      gates
  in
  let rng = Numerics.Rng.create ~seed:config.seed in
  let n = Netlist.Circuit.size circuit in
  let lambda = config.params.Cells.Power.leakage_process_lambda in
  let leakage_uw =
    Array.init config.trials (fun _ ->
        let z = Variation.Correlated.draw config.structure rng ~count:n in
        let total_nw = ref 0.0 in
        Array.iteri
          (fun i id ->
            total_nw := !total_nw +. (nominal.(i) *. Float.exp (-.lambda *. z.(id))))
          gates;
        !total_nw /. 1000.0)
  in
  { config; dynamic_uw = dynamic_power_uw ~config circuit; leakage_uw }

let leakage_stats r = Numerics.Stats.of_list (Array.to_list r.leakage_uw)

let total_mean_uw r = r.dynamic_uw +. Numerics.Stats.mean (leakage_stats r)

(* The ratio the paper's story predicts falls after variance-aware sizing:
   the die-to-die spread of leakage relative to its mean. *)
let leakage_sigma_over_mean r = Numerics.Stats.sigma_over_mean (leakage_stats r)

let pp ppf r =
  let s = leakage_stats r in
  Fmt.pf ppf
    "power: dynamic %.1f uW, leakage %.1f uW (sigma %.1f uW, sigma/mean %.3f \
     across %d dies)"
    r.dynamic_uw (Numerics.Stats.mean s) (Numerics.Stats.std s)
    (Numerics.Stats.sigma_over_mean s)
    (Numerics.Stats.count s)

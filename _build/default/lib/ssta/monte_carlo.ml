(* Monte-Carlo timing: the ground-truth engine both SSTA engines are
   validated against, and the yield model behind Fig. 1's story. Each trial
   perturbs every arc delay by its modeled sigma and runs a deterministic
   arrival pass.

   Deviation sharing is configurable:
   - [`Per_arc]  (default): every arc draws independently — the exact
     assumption FULLSSTA/FASSTA propagate under, so this mode is the right
     reference for engine-accuracy validation;
   - [`Per_gate]: all arcs of a gate share one deviation, adding the
     within-gate correlation real silicon has (and SSTA ignores) — used by
     the correlation study.
   A [Variation.Correlated] structure layers die-level and regional factors
   on top of either mode. *)

type sharing = Per_arc | Per_gate

type config = {
  trials : int;
  seed : int;
  model : Variation.Model.t;
  structure : Variation.Correlated.t;
  sharing : sharing;
  electrical : Sta.Electrical.config;
}

let default_config =
  {
    trials = 2000;
    seed = 77;
    model = Variation.Model.default;
    structure = Variation.Correlated.independent;
    sharing = Per_arc;
    electrical = Sta.Electrical.default_config;
  }

type result = {
  config : config;
  circuit_delay : float array; (* worst output arrival per trial *)
  per_output : (Netlist.Circuit.id * float array) list;
}

let run ?(config = default_config) circuit =
  if config.trials < 1 then invalid_arg "Monte_carlo.run: trials < 1";
  let electrical = Sta.Electrical.compute ~config:config.electrical circuit in
  let n = Netlist.Circuit.size circuit in
  let order = Netlist.Circuit.topological circuit in
  let outputs = Netlist.Circuit.outputs circuit in
  (* Pre-compute per-arc (nominal delay, sigma). *)
  let arc_sigma =
    Array.init n (fun id ->
        match Netlist.Circuit.cell circuit id with
        | None -> [||]
        | Some cell ->
            let strength = Cells.Cell.strength cell in
            Array.map
              (fun delay -> Variation.Model.sigma config.model ~delay ~strength)
              (Sta.Electrical.arc_delays electrical id))
  in
  let rng = Numerics.Rng.create ~seed:config.seed in
  let structure = config.structure in
  let wg = Float.sqrt structure.Variation.Correlated.global_share in
  let wr = Float.sqrt structure.Variation.Correlated.regional_share in
  let we = Float.sqrt (Variation.Correlated.residual_share structure) in
  let regions = structure.Variation.Correlated.regions in
  let arrival = Array.make n 0.0 in
  let circuit_delay = Array.make config.trials 0.0 in
  let per_output = List.map (fun o -> (o, Array.make config.trials 0.0)) outputs in
  for trial = 0 to config.trials - 1 do
    let g = Numerics.Rng.gaussian rng in
    let regional = Array.init regions (fun _ -> Numerics.Rng.gaussian rng) in
    let common id = (wg *. g) +. (wr *. regional.(id mod regions)) in
    List.iter
      (fun id ->
        let fanins = Netlist.Circuit.fanins circuit id in
        if Array.length fanins = 0 then
          arrival.(id) <- config.electrical.Sta.Electrical.input_arrival
        else begin
          let arcs = Sta.Electrical.arc_delays electrical id in
          let sigmas = arc_sigma.(id) in
          let base = common id in
          let gate_eps =
            match config.sharing with
            | Per_gate -> Numerics.Rng.gaussian rng
            | Per_arc -> 0.0
          in
          let at = ref Float.neg_infinity in
          Array.iteri
            (fun k fi ->
              let eps =
                match config.sharing with
                | Per_gate -> gate_eps
                | Per_arc -> Numerics.Rng.gaussian rng
              in
              let z = base +. (we *. eps) in
              (* No clamping at zero: the variation model is normal by
                 construction (as in the paper and in both SSTA engines), so
                 the reference keeps the full normal tail for consistency. *)
              let d = arcs.(k) +. (sigmas.(k) *. z) in
              at := Float.max !at (arrival.(fi) +. d))
            fanins;
          arrival.(id) <- !at
        end)
      order;
    let worst =
      List.fold_left (fun acc o -> Float.max acc arrival.(o)) Float.neg_infinity
        outputs
    in
    circuit_delay.(trial) <- worst;
    List.iter (fun (o, arr) -> arr.(trial) <- arrival.(o)) per_output
  done;
  { config; circuit_delay; per_output }

let circuit_stats r = Numerics.Stats.of_list (Array.to_list r.circuit_delay)

let output_stats r id =
  match List.assoc_opt id r.per_output with
  | Some arr -> Some (Numerics.Stats.of_list (Array.to_list arr))
  | None -> None

let yield_at r ~period =
  let hits =
    Array.fold_left
      (fun acc d -> if d <= period then acc + 1 else acc)
      0 r.circuit_delay
  in
  float_of_int hits /. float_of_int (Array.length r.circuit_delay)

let circuit_pdf ?(samples = 40) r =
  Numerics.Discrete_pdf.of_samples ~samples (Array.to_list r.circuit_delay)

let quantile r p = Numerics.Stats.percentile (Array.to_list r.circuit_delay) p

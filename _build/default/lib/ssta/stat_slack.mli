(** Statistical required times and slack — the moment-space mirror of the
    deterministic backward pass (statistical MIN over reader arcs), closing
    the loop on the paper's "worst negative statistical slack" vocabulary. *)

type t = {
  period : float;
  required : Numerics.Clark.moments option array;
  slack : Numerics.Clark.moments option array;
}

val compute :
  ?exact:bool ->
  ?required_at:(Netlist.Circuit.id -> float) ->
  model:Variation.Model.t ->
  circuit:Netlist.Circuit.t ->
  electrical:Sta.Electrical.t ->
  arrival:(Netlist.Circuit.id -> Numerics.Clark.moments) ->
  period:float ->
  unit ->
  t
(** Backward pass from the outputs at [period]. [exact] (default true)
    selects the exact-erf Clark min. *)

val of_fullssta :
  ?exact:bool ->
  ?required_at:(Netlist.Circuit.id -> float) ->
  model:Variation.Model.t ->
  period:float ->
  Fullssta.t ->
  Netlist.Circuit.t ->
  t
(** Convenience wrapper over a FULLSSTA annotation of the same circuit;
    [required_at] overrides the single period per output. *)

val of_sdc :
  ?exact:bool ->
  model:Variation.Model.t ->
  sdc:Sta.Sdc.t ->
  Fullssta.t ->
  Netlist.Circuit.t ->
  t
(** Constrained analysis from an SDC constraint set (period and per-output
    margins). *)

val required : t -> Netlist.Circuit.id -> Numerics.Clark.moments option
(** [None] when no path leads onward from the node. *)

val slack : t -> Netlist.Circuit.id -> Numerics.Clark.moments option

val pessimistic_slack : t -> alpha:float -> Netlist.Circuit.id -> float option
(** slack mean − α·σ. *)

val worst_node :
  t -> alpha:float -> Netlist.Circuit.t -> (Netlist.Circuit.id * float) option
(** Node with the most negative pessimistic slack. *)

val meet_probability : t -> Netlist.Circuit.id -> float option
(** P(slack ≥ 0) under the normal approximation. *)

(** Monte-Carlo timing — the ground truth the SSTA engines are validated
    against, and the yield model behind Fig. 1. *)

type sharing =
  | Per_arc  (** independent draw per arc — matches the SSTA assumption *)
  | Per_gate  (** arcs of a gate share one deviation (correlation study) *)

type config = {
  trials : int;
  seed : int;
  model : Variation.Model.t;
  structure : Variation.Correlated.t;
  sharing : sharing;
  electrical : Sta.Electrical.config;
}

val default_config : config
(** 2000 trials, per-arc independent draws, default variation model. *)

type result = {
  config : config;
  circuit_delay : float array;  (** worst output arrival per trial *)
  per_output : (Netlist.Circuit.id * float array) list;
}

val run : ?config:config -> Netlist.Circuit.t -> result

val circuit_stats : result -> Numerics.Stats.t
val output_stats : result -> Netlist.Circuit.id -> Numerics.Stats.t option

val yield_at : result -> period:float -> float
(** Fraction of trials meeting the period. *)

val circuit_pdf : ?samples:int -> result -> Numerics.Discrete_pdf.t
val quantile : result -> float -> float

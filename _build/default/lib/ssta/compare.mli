(** Cross-engine accuracy metrics (FASSTA / FULLSSTA vs Monte Carlo). *)

type engine_summary = { mean : float; sigma : float }

val of_moments : Numerics.Clark.moments -> engine_summary
val of_stats : Numerics.Stats.t -> engine_summary

type deviation = { mean_rel_err : float; sigma_rel_err : float }

val deviation : reference:engine_summary -> candidate:engine_summary -> deviation

type report = {
  per_output : (string * deviation) list;
  worst_mean_rel_err : float;
  worst_sigma_rel_err : float;
}

val summarize : (string * deviation) list -> report

val engines_vs_monte_carlo :
  ?mc_config:Monte_carlo.config ->
  ?full_config:Fullssta.config ->
  Netlist.Circuit.t ->
  [ `Full of report ] * [ `Fast of report ]

val pp_deviation : deviation Fmt.t
val pp_report : report Fmt.t

lib/ssta/fullssta.ml: Array Cells Float List Netlist Numerics Sta Variation

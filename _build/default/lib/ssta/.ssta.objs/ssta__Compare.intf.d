lib/ssta/compare.mli: Fmt Fullssta Monte_carlo Netlist Numerics

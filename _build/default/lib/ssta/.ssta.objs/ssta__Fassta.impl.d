lib/ssta/fassta.ml: Array Cells Float Hashtbl List Netlist Numerics Option Sta Variation

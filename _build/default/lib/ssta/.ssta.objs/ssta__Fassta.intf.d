lib/ssta/fassta.mli: Hashtbl Netlist Numerics Sta Variation

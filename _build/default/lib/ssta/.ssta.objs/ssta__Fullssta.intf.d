lib/ssta/fullssta.mli: Netlist Numerics Sta Variation

lib/ssta/power_analysis.mli: Cells Fmt Netlist Numerics Variation

lib/ssta/stat_slack.mli: Fullssta Netlist Numerics Sta Variation

lib/ssta/stat_slack.ml: Array Fassta Fullssta List Netlist Numerics Sta

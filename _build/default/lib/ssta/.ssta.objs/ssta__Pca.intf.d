lib/ssta/pca.mli: Netlist Numerics Sta Variation

lib/ssta/power_analysis.ml: Array Cells Float Fmt List Netlist Numerics Variation

lib/ssta/monte_carlo.mli: Netlist Numerics Sta Variation

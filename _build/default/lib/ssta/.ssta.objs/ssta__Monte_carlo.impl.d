lib/ssta/monte_carlo.ml: Array Cells Float List Netlist Numerics Sta Variation

lib/ssta/compare.ml: Array Fassta Float Fmt Fullssta List Monte_carlo Netlist Numerics

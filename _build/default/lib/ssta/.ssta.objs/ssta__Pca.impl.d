lib/ssta/pca.ml: Array Cells Float List Netlist Numerics Sta Variation

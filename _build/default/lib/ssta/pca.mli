(** Correlation-aware SSTA via principal components (the paper's §4.3
    outer-loop extension): arrivals carry per-factor loadings, sums add them
    exactly, and maxes use correlation-aware Clark with tightness-blended
    loadings. *)

type arrival = {
  mean : float;
  loadings : float array;
  indep_var : float;
}

val total_var : arrival -> float
val total_sigma : arrival -> float
val to_moments : arrival -> Numerics.Clark.moments

type t = { components : int; arrivals : arrival array }

val loadings_of_structure : Variation.Correlated.t -> float array array
(** Principal-component loadings per region implied by the correlated
    structure (rows = components). *)

val run :
  ?model:Variation.Model.t ->
  ?structure:Variation.Correlated.t ->
  ?config:Sta.Electrical.config ->
  Netlist.Circuit.t ->
  t
(** Propagate correlated arrivals; gates are striped across the structure's
    regions by id, matching {!Monte_carlo}'s convention. *)

val arrival : t -> Netlist.Circuit.id -> arrival

val output_arrival : t -> Netlist.Circuit.t -> arrival
(** Correlation-aware max over the primary outputs. *)

(* Statistical required times and slack.

   The deterministic backward pass generalizes to moments: at a primary
   output the required time is the (deterministic) clock period; walking
   backwards, a node's required time through a reader arc is the reader's
   required time MINUS the arc delay — a moment subtraction whose variance
   adds — and competing readers combine with the statistical MIN (the
   mirror of Clark's max: min(A,B) = −max(−A,−B)).

   A node's statistical slack is required − arrival (independence assumed,
   as everywhere in both engines). The most negative slack — judged by
   mean − α·σ, i.e. pessimistically — names the nodes the paper's "worst
   negative statistical slack" vocabulary points at. *)

type t = {
  period : float;
  required : Numerics.Clark.moments option array; (* None = no path onward *)
  slack : Numerics.Clark.moments option array;
}

let neg (m : Numerics.Clark.moments) =
  Numerics.Clark.moments ~mean:(-.m.Numerics.Clark.mean) ~var:m.Numerics.Clark.var

let min_moments ~exact a b =
  let max2 = if exact then Numerics.Clark.max_exact ?rho:None else Numerics.Clark.max_fast in
  neg (max2 (neg a) (neg b))

(* Moments of A − B assuming independence. *)
let diff (a : Numerics.Clark.moments) (b : Numerics.Clark.moments) =
  Numerics.Clark.moments
    ~mean:(a.Numerics.Clark.mean -. b.Numerics.Clark.mean)
    ~var:(a.Numerics.Clark.var +. b.Numerics.Clark.var)

let compute ?(exact = true) ?required_at ~model ~circuit
    ~(electrical : Sta.Electrical.t) ~arrival ~period () =
  let n = Netlist.Circuit.size circuit in
  let required : Numerics.Clark.moments option array = Array.make n None in
  let meet id cand =
    required.(id) <-
      (match required.(id) with
      | None -> Some cand
      | Some r -> Some (min_moments ~exact r cand))
  in
  let output_required o =
    match required_at with Some f -> f o | None -> period
  in
  List.iter
    (fun o -> meet o (Numerics.Clark.moments ~mean:(output_required o) ~var:0.0))
    (Netlist.Circuit.outputs circuit);
  List.iter
    (fun id ->
      match required.(id) with
      | None -> () (* dangling: nothing constrains the fanins through it *)
      | Some r ->
          let fanins = Netlist.Circuit.fanins circuit id in
          Array.iteri
            (fun k fi ->
              let arc = Fassta.arc_moments model circuit electrical id k in
              meet fi (diff r arc))
            fanins)
    (List.rev (Netlist.Circuit.topological circuit));
  let slack =
    Array.mapi
      (fun id r ->
        match r with None -> None | Some r -> Some (diff r (arrival id)))
      required
  in
  { period; required; slack }

let of_fullssta ?exact ?required_at ~model ~period full circuit =
  compute ?exact ?required_at ~model ~circuit
    ~electrical:(Fullssta.electrical full)
    ~arrival:(Fullssta.moments full) ~period ()

(* Constrained analysis straight from an SDC constraint set. *)
let of_sdc ?exact ~model ~sdc full circuit =
  of_fullssta ?exact
    ~required_at:(fun o -> Sta.Sdc.required_at sdc circuit o)
    ~model
    ~period:(Sta.Sdc.period_exn sdc)
    full circuit

let required t id = t.required.(id)
let slack t id = t.slack.(id)

(* Pessimistic slack: mean − α·σ (negative when the node risks missing the
   period at the α-sigma corner). *)
let pessimistic_slack t ~alpha id =
  match t.slack.(id) with
  | None -> None
  | Some s ->
      Some (s.Numerics.Clark.mean -. (alpha *. Numerics.Clark.sigma s))

(* The worst node by pessimistic slack — a required-time anchor for WNSS. *)
let worst_node t ~alpha circuit =
  let best = ref None in
  Netlist.Circuit.iter_nodes circuit ~f:(fun id ->
      match pessimistic_slack t ~alpha id with
      | None -> ()
      | Some v -> (
          match !best with
          | Some (_, bv) when bv <= v -> ()
          | _ -> best := Some (id, v)));
  !best

(* Probability the node meets its required time: P(slack >= 0). *)
let meet_probability t id =
  match t.slack.(id) with
  | None -> None
  | Some s ->
      let sigma = Numerics.Clark.sigma s in
      Some
        (if sigma <= 0.0 then if s.Numerics.Clark.mean >= 0.0 then 1.0 else 0.0
         else 1.0 -. Numerics.Normal.cdf (-.s.Numerics.Clark.mean /. sigma))

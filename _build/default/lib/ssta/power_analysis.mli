(** Circuit power and its die-to-die variability (the paper's §2.2 power
    side of the Fig.-1 story): activity-weighted dynamic power plus Monte-
    Carlo leakage with the fast-die/leaky-die exponential coupling. *)

type config = {
  trials : int;
  seed : int;
  params : Cells.Power.params;
  structure : Variation.Correlated.t;
  activity : float;
  clock_ghz : float;
}

val default_config : config

type result = {
  config : config;
  dynamic_uw : float;
  leakage_uw : float array;
}

val run : ?config:config -> Netlist.Circuit.t -> result

val leakage_stats : result -> Numerics.Stats.t
val total_mean_uw : result -> float

val leakage_sigma_over_mean : result -> float
(** Die-to-die leakage spread over mean — the quantity variance-aware
    sizing narrows as a side effect. *)

val pp : result Fmt.t

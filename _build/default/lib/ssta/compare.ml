(* Cross-engine accuracy metrics: how close FASSTA and FULLSSTA land to each
   other and to Monte Carlo, per output and for the circuit-level RV_O.
   Backs the §4.3 approximation study and the engine-agreement tests. *)

type engine_summary = { mean : float; sigma : float }

let of_moments (m : Numerics.Clark.moments) =
  { mean = m.Numerics.Clark.mean; sigma = Numerics.Clark.sigma m }

let of_stats s =
  { mean = Numerics.Stats.mean s; sigma = Numerics.Stats.std s }

type deviation = { mean_rel_err : float; sigma_rel_err : float }

let deviation ~reference ~candidate =
  let rel a b = if b = 0.0 then Float.abs (a -. b) else Float.abs ((a -. b) /. b) in
  {
    mean_rel_err = rel candidate.mean reference.mean;
    sigma_rel_err = rel candidate.sigma reference.sigma;
  }

type report = {
  per_output : (string * deviation) list;
  worst_mean_rel_err : float;
  worst_sigma_rel_err : float;
}

let summarize per_output =
  {
    per_output;
    worst_mean_rel_err =
      List.fold_left (fun acc (_, d) -> Float.max acc d.mean_rel_err) 0.0 per_output;
    worst_sigma_rel_err =
      List.fold_left (fun acc (_, d) -> Float.max acc d.sigma_rel_err) 0.0 per_output;
  }

(* FASSTA and FULLSSTA against a Monte-Carlo reference on every output. *)
let engines_vs_monte_carlo ?(mc_config = Monte_carlo.default_config)
    ?(full_config = Fullssta.default_config) circuit =
  let mc = Monte_carlo.run ~config:mc_config circuit in
  let full = Fullssta.run ~config:full_config circuit in
  let fast = Fassta.run ~model:full_config.Fullssta.model circuit in
  let outputs = Netlist.Circuit.outputs circuit in
  let against summary_of =
    summarize
      (List.filter_map
         (fun o ->
           match Monte_carlo.output_stats mc o with
           | None -> None
           | Some s ->
               Some
                 ( Netlist.Circuit.node_name circuit o,
                   deviation ~reference:(of_stats s) ~candidate:(summary_of o) ))
         outputs)
  in
  let full_report = against (fun o -> of_moments (Fullssta.moments full o)) in
  let fast_report = against (fun o -> of_moments fast.(o)) in
  (`Full full_report, `Fast fast_report)

let pp_deviation ppf d =
  Fmt.pf ppf "Δμ=%.2f%% Δσ=%.2f%%" (100.0 *. d.mean_rel_err)
    (100.0 *. d.sigma_rel_err)

let pp_report ppf r =
  Fmt.pf ppf "worst Δμ=%.2f%%, worst Δσ=%.2f%%" (100.0 *. r.worst_mean_rel_err)
    (100.0 *. r.worst_sigma_rel_err)

(* Correlation-aware SSTA via principal components — the outer-loop upgrade
   the paper points at in §4.3 ("track correlations due to reconvergent
   paths using Principal Component Analysis [17] or other methods").

   Arrival times carry (mean, loading per principal component, independent
   residual variance). The correlated share of every gate's deviation is a
   linear combination of a few global factors (from the eigendecomposition
   of the region covariance), so:

   - SUM adds means, loadings, and residual variances exactly;
   - MAX uses Clark's formulas *with the correlation implied by the shared
     loadings*, and blends the loadings of the operands by the tightness
     probability T = Φ(α) (Chang–Sapatnekar style), putting whatever
     variance the blend cannot express into the residual.

   Reconvergent paths that share gates now share loadings, so their
   correlation is tracked instead of assumed away — the validation test
   pits this against the correlated Monte-Carlo engine. *)

type arrival = {
  mean : float;
  loadings : float array; (* ps of sigma per unit of each global factor *)
  indep_var : float; (* residual variance not explained by the factors *)
}

let total_var a =
  Array.fold_left (fun acc l -> acc +. (l *. l)) a.indep_var a.loadings

let total_sigma a = Float.sqrt (total_var a)

let to_moments a = Numerics.Clark.moments ~mean:a.mean ~var:(total_var a)

type t = {
  components : int;
  arrivals : arrival array;
}

(* Factor loadings per region implied by a [Variation.Correlated] structure:
   the correlated share of the covariance between two gates is
   global_share + regional_share·[same region]. *)
let loadings_of_structure (s : Variation.Correlated.t) =
  let m = s.Variation.Correlated.regions in
  let covariance =
    Array.init m (fun i ->
        Array.init m (fun j ->
            s.Variation.Correlated.global_share
            +. if i = j then s.Variation.Correlated.regional_share else 0.0))
  in
  Numerics.Eigen.principal_components covariance

let zeros k = Array.make k 0.0

let sum_arrival a ~arc_mean ~arc_loadings ~arc_indep =
  {
    mean = a.mean +. arc_mean;
    loadings = Array.map2 ( +. ) a.loadings arc_loadings;
    indep_var = a.indep_var +. arc_indep;
  }

let max_arrival a b =
  let va = total_var a and vb = total_var b in
  let sa = Float.sqrt va and sb = Float.sqrt vb in
  let cov =
    (* only the shared global factors correlate two different arrivals *)
    let acc = ref 0.0 in
    Array.iteri (fun k la -> acc := !acc +. (la *. b.loadings.(k))) a.loadings;
    !acc
  in
  let rho =
    if sa <= 0.0 || sb <= 0.0 then 0.0
    else Float.max (-1.0) (Float.min 1.0 (cov /. (sa *. sb)))
  in
  let ma = Numerics.Clark.moments ~mean:a.mean ~var:va in
  let mb = Numerics.Clark.moments ~mean:b.mean ~var:vb in
  let m = Numerics.Clark.max_exact ~rho ma mb in
  (* tightness probability: how often a wins *)
  let spread = Numerics.Clark.spread ~rho ma mb in
  let tightness =
    if spread <= 0.0 then if a.mean >= b.mean then 1.0 else 0.0
    else Numerics.Normal.cdf ((a.mean -. b.mean) /. spread)
  in
  let loadings =
    Array.mapi
      (fun k la -> (tightness *. la) +. ((1.0 -. tightness) *. b.loadings.(k)))
      a.loadings
  in
  let explained = Array.fold_left (fun acc l -> acc +. (l *. l)) 0.0 loadings in
  {
    mean = m.Numerics.Clark.mean;
    loadings;
    indep_var = Float.max (m.Numerics.Clark.var -. explained) 0.0;
  }

let run ?(model = Variation.Model.default)
    ?(structure = Variation.Correlated.create ~global_share:0.5 ())
    ?(config = Sta.Electrical.default_config) circuit =
  let electrical = Sta.Electrical.compute ~config circuit in
  let region_loadings = loadings_of_structure structure in
  let k = Array.length region_loadings in
  let residual_share = Variation.Correlated.residual_share structure in
  let region_of id = id mod structure.Variation.Correlated.regions in
  let n = Netlist.Circuit.size circuit in
  let arrivals =
    Array.make n
      { mean = config.Sta.Electrical.input_arrival; loadings = zeros k;
        indep_var = 0.0 }
  in
  List.iter
    (fun id ->
      let fanins = Netlist.Circuit.fanins circuit id in
      if Array.length fanins > 0 then begin
        let arcs = Sta.Electrical.arc_delays electrical id in
        let strength = Cells.Cell.strength (Netlist.Circuit.cell_exn circuit id) in
        let region = region_of id in
        let acc = ref None in
        Array.iteri
          (fun idx fi ->
            let sigma =
              Variation.Model.sigma model ~delay:arcs.(idx) ~strength
            in
            let arc_loadings =
              Array.init k (fun c -> sigma *. region_loadings.(c).(region))
            in
            let arc_indep = sigma *. sigma *. residual_share in
            let arrival =
              sum_arrival arrivals.(fi) ~arc_mean:arcs.(idx) ~arc_loadings
                ~arc_indep
            in
            acc :=
              Some
                (match !acc with
                | None -> arrival
                | Some best -> max_arrival best arrival))
          fanins;
        match !acc with Some a -> arrivals.(id) <- a | None -> assert false
      end)
    (Netlist.Circuit.topological circuit);
  { components = k; arrivals }

let arrival t id = t.arrivals.(id)

let output_arrival t circuit =
  match Netlist.Circuit.outputs circuit with
  | [] -> invalid_arg "Pca.output_arrival: no outputs"
  | o :: os ->
      List.fold_left
        (fun acc o' -> max_arrival acc t.arrivals.(o'))
        t.arrivals.(o) os

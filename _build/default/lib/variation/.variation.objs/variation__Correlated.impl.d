lib/variation/correlated.ml: Array Float Fmt Numerics

lib/variation/model.mli: Fmt Numerics

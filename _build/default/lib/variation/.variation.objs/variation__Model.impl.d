lib/variation/model.ml: Float Fmt Numerics

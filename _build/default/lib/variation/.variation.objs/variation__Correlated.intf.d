lib/variation/correlated.mli: Fmt Numerics

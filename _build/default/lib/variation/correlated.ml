(* Correlated variation draws — the outer-loop extension the paper points at
   (§4.3: correlations due to reconvergence and spatial proximity can be
   tracked with PCA, "as long as runtime is managed appropriately").

   Without placement data we substitute a hierarchical decomposition: each
   standard-normal gate deviation is

       z_g = sqrt(g_share)·G + sqrt(r_share)·R_region(g) + sqrt(rest)·eps_g

   with one global factor G per die, one factor per region (gates are
   striped across regions round-robin, standing in for placement tiles) and
   an independent residual. g_share = r_share = 0 recovers the paper's
   independent model. *)

type t = {
  global_share : float;
  regional_share : float;
  regions : int;
}

let independent = { global_share = 0.0; regional_share = 0.0; regions = 1 }

let create ?(global_share = 0.0) ?(regional_share = 0.0) ?(regions = 1) () =
  if global_share < 0.0 || regional_share < 0.0 then
    invalid_arg "Correlated.create: negative shares";
  if global_share +. regional_share > 1.0 then
    invalid_arg "Correlated.create: shares exceed 1";
  if regions < 1 then invalid_arg "Correlated.create: regions < 1";
  { global_share; regional_share; regions }

let residual_share t = 1.0 -. t.global_share -. t.regional_share

(* One die's worth of standard-normal deviations for [count] gates. *)
let draw t rng ~count =
  let g = Numerics.Rng.gaussian rng in
  let regional = Array.init t.regions (fun _ -> Numerics.Rng.gaussian rng) in
  let wg = Float.sqrt t.global_share
  and wr = Float.sqrt t.regional_share
  and we = Float.sqrt (residual_share t) in
  Array.init count (fun i ->
      (wg *. g)
      +. (wr *. regional.(i mod t.regions))
      +. (we *. Numerics.Rng.gaussian rng))

(* Pairwise correlation between two gates implied by the structure. *)
let correlation t ~gate_a ~gate_b =
  if gate_a = gate_b then 1.0
  else
    t.global_share
    +. if gate_a mod t.regions = gate_b mod t.regions then t.regional_share else 0.0

let pp ppf t =
  Fmt.pf ppf "corr(global=%.2f, regional=%.2f x%d)" t.global_share
    t.regional_share t.regions

(** Two-component gate-delay variation model (systematic ∝ delay, shrinking
    with drive strength; unsystematic random floor). *)

type t = {
  systematic : float;
  random_floor : float;
  tau_ref : float;
  size_exponent : float;
}

val create :
  ?systematic:float ->
  ?random_floor:float ->
  ?tau_ref:float ->
  ?size_exponent:float ->
  unit ->
  t
(** Defaults: k_sys 0.8, k_rand 0.15, tau 5.0 ps, size exponent 1.0 (the
    paper's "variations inversely proportional to their dimensions") —
    chosen so the mean-optimized Table-1 suite starts in the paper's σ/μ
    range. *)

val default : t

val sigma : t -> delay:float -> strength:float -> float
val systematic_sigma : t -> delay:float -> strength:float -> float
val random_sigma : t -> float

val delay_moments : t -> delay:float -> strength:float -> Numerics.Clark.moments

val coupling : t -> float
(** The paper's c in Δσ ≈ c·Δμ used when ranking WNSS inputs (§4.4). *)

val pp : t Fmt.t

(** Hierarchical correlated-variation structure (global + regional +
    independent residual) for the Monte-Carlo engine. *)

type t = { global_share : float; regional_share : float; regions : int }

val independent : t

val create :
  ?global_share:float -> ?regional_share:float -> ?regions:int -> unit -> t
(** Shares must be non-negative and sum to at most 1. *)

val residual_share : t -> float

val draw : t -> Numerics.Rng.t -> count:int -> float array
(** One die: a standard-normal deviation per gate, correlated per the
    structure. *)

val correlation : t -> gate_a:int -> gate_b:int -> float
(** Implied pairwise correlation. *)

val pp : t Fmt.t

(* Deterministic static timing analysis: arrival and required times, slack,
   and worst-negative-slack (WNS) path tracing — the classical machinery the
   paper's WNSS generalizes. *)

type t = {
  circuit : Netlist.Circuit.t;
  electrical : Electrical.t;
  arrival : float array;
  required : float array;
  period : float;
}

let arrivals circuit (electrical : Electrical.t) =
  let n = Netlist.Circuit.size circuit in
  let arrival = Array.make n electrical.Electrical.config.input_arrival in
  List.iter
    (fun id ->
      let fanins = Netlist.Circuit.fanins circuit id in
      if Array.length fanins > 0 then begin
        let arcs = Electrical.arc_delays electrical id in
        let at = ref Float.neg_infinity in
        Array.iteri
          (fun k fi -> at := Float.max !at (arrival.(fi) +. arcs.(k)))
          fanins;
        arrival.(id) <- !at
      end)
    (Netlist.Circuit.topological circuit);
  arrival

let max_output_arrival circuit arrival =
  List.fold_left
    (fun acc o -> Float.max acc arrival.(o))
    Float.neg_infinity (Netlist.Circuit.outputs circuit)

let requireds circuit (electrical : Electrical.t) ~period =
  let n = Netlist.Circuit.size circuit in
  let required = Array.make n Float.infinity in
  List.iter
    (fun o -> required.(o) <- Float.min required.(o) period)
    (Netlist.Circuit.outputs circuit);
  List.iter
    (fun id ->
      let fanins = Netlist.Circuit.fanins circuit id in
      let arcs = Electrical.arc_delays electrical id in
      Array.iteri
        (fun k fi ->
          required.(fi) <- Float.min required.(fi) (required.(id) -. arcs.(k)))
        fanins)
    (List.rev (Netlist.Circuit.topological circuit));
  required

(* Longest mean-delay path from each node onward to any primary output: the
   "remaining downstream logic" each node's arrival still has to traverse.
   The sizing window uses this to score boundary-internal outputs fairly —
   a +1 ps slowdown on a node with 400 ps of downstream logic matters
   exactly as much as on a node feeding a primary output directly. *)
let downstream_delays circuit (electrical : Electrical.t) =
  let n = Netlist.Circuit.size circuit in
  let downstream = Array.make n 0.0 in
  List.iter
    (fun id ->
      let arcs = Electrical.arc_delays electrical id in
      Array.iteri
        (fun k fi ->
          let through = arcs.(k) +. downstream.(id) in
          if through > downstream.(fi) then downstream.(fi) <- through)
        (Netlist.Circuit.fanins circuit id))
    (List.rev (Netlist.Circuit.topological circuit));
  downstream

let analyze ?config ?period circuit =
  let electrical = Electrical.compute ?config circuit in
  let arrival = arrivals circuit electrical in
  let period =
    match period with Some p -> p | None -> max_output_arrival circuit arrival
  in
  let required = requireds circuit electrical ~period in
  { circuit; electrical; arrival; required; period }

let arrival t id = t.arrival.(id)
let required t id = t.required.(id)
let slack t id = t.required.(id) -. t.arrival.(id)
let electrical t = t.electrical
let period t = t.period

let critical_output t =
  match Netlist.Circuit.outputs t.circuit with
  | [] -> invalid_arg "Analysis.critical_output: no outputs"
  | o :: os ->
      List.fold_left
        (fun best c -> if t.arrival.(c) > t.arrival.(best) then c else best)
        o os

let wns t =
  List.fold_left
    (fun acc o -> Float.min acc (slack t o))
    Float.infinity (Netlist.Circuit.outputs t.circuit)

let max_arrival t = max_output_arrival t.circuit t.arrival

(* Walk back from a node along the arcs that set its arrival time. *)
let critical_path_from t start =
  let rec walk id acc =
    let fanins = Netlist.Circuit.fanins t.circuit id in
    if Array.length fanins = 0 then id :: acc
    else begin
      let arcs = Electrical.arc_delays t.electrical id in
      let best = ref 0 and best_at = ref Float.neg_infinity in
      Array.iteri
        (fun k fi ->
          let at = t.arrival.(fi) +. arcs.(k) in
          if at > !best_at then begin
            best_at := at;
            best := k
          end)
        fanins;
      walk fanins.(!best) (id :: acc)
    end
  in
  walk start []

let critical_path t = critical_path_from t (critical_output t)

let pp_path t ppf path =
  Fmt.pf ppf "@[<hov 2>%a@]"
    (Fmt.list ~sep:(Fmt.any " ->@ ") Fmt.string)
    (List.map (Netlist.Circuit.node_name t.circuit) path)

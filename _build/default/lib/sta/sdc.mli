(** SDC constraint subset: [create_clock -period], [set_input_delay],
    [set_output_delay]. Enough to drive constrained (statistical) slack
    analysis. *)

exception Parse_error of { line : int; message : string }

type t

val empty : t
val of_string : string -> t
val load : path:string -> t

val period : t -> float option
val period_exn : t -> float

val input_delay : t -> port:string -> float
(** External arrival offset on an input port (0 when unconstrained). *)

val output_delay : t -> port:string -> float
(** External margin required before the clock edge at an output port. *)

val required_at : t -> Netlist.Circuit.t -> Netlist.Circuit.id -> float
(** period − output_delay for the named output. *)

val worst_input_delay : t -> float

val pp : t Fmt.t

(* SDF (Standard Delay Format, 2.1-flavoured subset) writer: per-instance
   IOPATH delays from the electrical pass, with the statistical corners as
   the (min:typ:max) triple — typ = nominal, min/max = nominal ∓ k·sigma
   under the variation model. This is the hand-off format timing tools
   exchange; emitting it makes the engine's view inspectable by standard
   tooling. *)

let escape name =
  (* SDF identifiers: keep alphanumerics/underscore, escape others *)
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> String.make 1 c
         | c -> Printf.sprintf "\\%c" c)
       (List.init (String.length name) (String.get name)))

let to_sdf ?(design = "top") ?(sigma_corner = 3.0)
    ?(model = Variation.Model.default) circuit (electrical : Electrical.t) =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "(DELAYFILE\n";
  add "  (SDFVERSION \"2.1\")\n  (DESIGN \"%s\")\n" design;
  add "  (TIMESCALE 1ps)\n";
  List.iter
    (fun id ->
      match Netlist.Circuit.cell circuit id with
      | None -> ()
      | Some cell ->
          let strength = Cells.Cell.strength cell in
          add "  (CELL (CELLTYPE \"%s\") (INSTANCE %s)\n"
            (Cells.Cell.name cell)
            (escape (Netlist.Circuit.node_name circuit id));
          add "    (DELAY (ABSOLUTE\n";
          let arcs = Electrical.arc_delays electrical id in
          Array.iteri
            (fun k fi ->
              let d = arcs.(k) in
              let sigma = Variation.Model.sigma model ~delay:d ~strength in
              let lo = Float.max 0.0 (d -. (sigma_corner *. sigma)) in
              let hi = d +. (sigma_corner *. sigma) in
              add "      (IOPATH %s Y (%.1f:%.1f:%.1f) (%.1f:%.1f:%.1f))\n"
                (escape (Netlist.Circuit.node_name circuit fi))
                lo d hi lo d hi)
            (Netlist.Circuit.fanins circuit id);
          add "    ))\n  )\n")
    (Netlist.Circuit.topological circuit);
  add ")\n";
  Buffer.contents buf

let save ?design ?sigma_corner ?model circuit electrical ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_sdf ?design ?sigma_corner ?model circuit electrical))

(** SDF (Standard Delay Format) writer: per-instance IOPATH delays with
    statistical (min:typ:max) corners at ±k·σ under the variation model. *)

val to_sdf :
  ?design:string ->
  ?sigma_corner:float ->
  ?model:Variation.Model.t ->
  Netlist.Circuit.t ->
  Electrical.t ->
  string
(** [sigma_corner] defaults to 3.0 (±3σ corners). *)

val save :
  ?design:string ->
  ?sigma_corner:float ->
  ?model:Variation.Model.t ->
  Netlist.Circuit.t ->
  Electrical.t ->
  path:string ->
  unit

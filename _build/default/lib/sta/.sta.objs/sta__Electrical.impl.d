lib/sta/electrical.ml: Array Cells Float List Netlist

lib/sta/sdc.mli: Fmt Netlist

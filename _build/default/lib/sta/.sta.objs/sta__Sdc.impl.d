lib/sta/sdc.ml: Float Fmt Fun In_channel List Netlist Option Printf Stdlib String

lib/sta/sdf.ml: Array Buffer Cells Electrical Float Fun List Netlist Printf String Variation

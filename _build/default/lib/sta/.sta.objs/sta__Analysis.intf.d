lib/sta/analysis.mli: Electrical Fmt Netlist

lib/sta/sdf.mli: Electrical Netlist Variation

lib/sta/paths.ml: Analysis Array Cells Electrical Fmt List Netlist Numerics Stdlib Variation

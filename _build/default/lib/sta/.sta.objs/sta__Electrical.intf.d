lib/sta/electrical.mli: Netlist

lib/sta/paths.mli: Analysis Electrical Fmt Netlist Numerics Variation

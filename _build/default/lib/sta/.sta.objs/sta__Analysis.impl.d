lib/sta/analysis.ml: Array Electrical Float Fmt List Netlist

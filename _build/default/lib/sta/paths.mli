(** K-worst path enumeration (exact, best-first) and per-path statistical
    delay moments (exact sums — no max approximation along one path). *)

type path = {
  nodes : Netlist.Circuit.id list;  (** input first, output last *)
  arrival : float;
}

val k_worst : Analysis.t -> Netlist.Circuit.t -> k:int -> path list
(** The [k] worst input→output paths by deterministic arrival, worst first
    (fewer when the circuit has fewer paths). *)

val path_moments :
  model:Variation.Model.t ->
  Netlist.Circuit.t ->
  Electrical.t ->
  path ->
  Numerics.Clark.moments
(** Exact delay moments of one path under the variation model. *)

val violation_probability :
  model:Variation.Model.t ->
  Netlist.Circuit.t ->
  Electrical.t ->
  path ->
  period:float ->
  float
(** P(path delay > period) under the normal approximation. *)

val pp : Netlist.Circuit.t -> path Fmt.t

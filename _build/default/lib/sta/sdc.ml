(* A small SDC (Synopsys Design Constraints) subset:

     create_clock -period <ps> [-name <n>]
     set_input_delay  <ps> [-clock <n>] <port>
     set_output_delay <ps> [-clock <n>] <port>

   set_output_delay shrinks the time available at that output (required =
   period − delay); set_input_delay pushes the port's arrival later. '#'
   and '//' start comments; ports may be bracketed ([get_ports x]). This is
   enough to drive constrained statistical-slack analysis on real designs. *)

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

type t = {
  period : float option;
  clock_name : string option;
  input_delays : (string * float) list; (* port -> extra arrival *)
  output_delays : (string * float) list; (* port -> margin before the edge *)
}

let empty =
  { period = None; clock_name = None; input_delays = []; output_delays = [] }

let strip_comment line =
  let cut i = String.sub line 0 i in
  let hash = String.index_opt line '#' in
  let slashes =
    let rec go i =
      if i + 1 >= String.length line then None
      else if line.[i] = '/' && line.[i + 1] = '/' then Some i
      else go (i + 1)
    in
    go 0
  in
  match (hash, slashes) with
  | Some h, Some s -> cut (Stdlib.min h s)
  | Some h, None -> cut h
  | None, Some s -> cut s
  | None, None -> line

(* Strip [get_ports x] / {x} / [x] wrappers down to the port name. *)
let port_of token =
  let drop_prefix p s =
    if String.length s >= String.length p && String.sub s 0 (String.length p) = p
    then String.sub s (String.length p) (String.length s - String.length p)
    else s
  in
  token
  |> String.map (fun c -> match c with '[' | ']' | '{' | '}' -> ' ' | c -> c)
  |> String.trim |> drop_prefix "get_ports" |> String.trim

let tokens_of line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_line ~line acc text =
  match tokens_of (strip_comment text) with
  | [] -> acc
  | "create_clock" :: rest ->
      let rec scan acc_t = function
        | "-period" :: v :: rest -> (
            match float_of_string_opt v with
            | Some p when p > 0.0 -> scan { acc_t with period = Some p } rest
            | _ -> fail line "bad -period value %S" v)
        | "-name" :: n :: rest -> scan { acc_t with clock_name = Some n } rest
        | _ :: rest -> scan acc_t rest
        | [] -> acc_t
      in
      let acc = scan acc rest in
      if acc.period = None then fail line "create_clock needs -period";
      acc
  | ("set_input_delay" | "set_output_delay") :: rest as all ->
      let kind = List.hd all in
      let rec scan value port = function
        | "-clock" :: _ :: rest -> scan value port rest
        | "-max" :: rest | "-min" :: rest -> scan value port rest
        | tok :: rest -> (
            match float_of_string_opt tok with
            | Some v when value = None -> scan (Some v) port rest
            | _ ->
                let p = port_of (String.concat " " (tok :: rest)) in
                scan value (Some p) [])
        | [] -> (value, port)
      in
      (match scan None None rest with
      | Some v, Some p when p <> "" ->
          if kind = "set_input_delay" then
            { acc with input_delays = (p, v) :: acc.input_delays }
          else { acc with output_delays = (p, v) :: acc.output_delays }
      | _ -> fail line "%s needs a value and a port" kind)
  | cmd :: _ -> fail line "unsupported SDC command %S" cmd

let of_string text =
  let lines = String.split_on_char '\n' text in
  let acc, _ =
    List.fold_left
      (fun (acc, n) l -> (parse_line ~line:n acc l, n + 1))
      (empty, 1) lines
  in
  {
    acc with
    input_delays = List.rev acc.input_delays;
    output_delays = List.rev acc.output_delays;
  }

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))

let period t = t.period

let period_exn t =
  match t.period with
  | Some p -> p
  | None -> invalid_arg "Sdc.period_exn: no create_clock in constraints"

let input_delay t ~port =
  Option.value ~default:0.0 (List.assoc_opt port t.input_delays)

let output_delay t ~port =
  Option.value ~default:0.0 (List.assoc_opt port t.output_delays)

(* Per-output required time: period minus the external output delay. *)
let required_at t circuit id =
  period_exn t -. output_delay t ~port:(Netlist.Circuit.node_name circuit id)

(* Worst-case launch offset across inputs — a conservative arrival shift for
   engines that carry a single boundary arrival. *)
let worst_input_delay t =
  List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 t.input_delays

let pp ppf t =
  Fmt.pf ppf "sdc: period=%a, %d input delays, %d output delays"
    Fmt.(option ~none:(any "unset") float)
    t.period
    (List.length t.input_delays)
    (List.length t.output_delays)

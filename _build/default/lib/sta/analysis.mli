(** Deterministic STA: arrivals, requireds, slack, and WNS-path tracing. *)

type t

val analyze :
  ?config:Electrical.config -> ?period:float -> Netlist.Circuit.t -> t
(** Full pass. Without [period], required times are anchored at the worst
    output arrival (so the critical path has zero slack). *)

val arrivals : Netlist.Circuit.t -> Electrical.t -> float array
(** Arrival times only, for callers that already have the electrical pass. *)

val downstream_delays : Netlist.Circuit.t -> Electrical.t -> float array
(** Per node, the longest mean-delay path from that node to any primary
    output (0 at the outputs themselves). *)

val arrival : t -> Netlist.Circuit.id -> float
val required : t -> Netlist.Circuit.id -> float
val slack : t -> Netlist.Circuit.id -> float
val electrical : t -> Electrical.t
val period : t -> float

val max_arrival : t -> float
(** Worst primary-output arrival (the circuit's deterministic delay). *)

val wns : t -> float
(** Worst negative slack over the outputs. *)

val critical_output : t -> Netlist.Circuit.id

val critical_path : t -> Netlist.Circuit.id list
(** Input-to-output WNS path, traced along arrival-setting arcs. *)

val critical_path_from : t -> Netlist.Circuit.id -> Netlist.Circuit.id list

val pp_path : t -> Netlist.Circuit.id list Fmt.t

(* K-worst path enumeration (deterministic), plus per-path statistical delay
   moments (along one fixed path there is no max, so the moments are exact
   sums — useful to contrast node-based SSTA against path-based views, and
   to report "this path misses the period with probability p").

   Enumeration is best-first over partial paths grown backwards from the
   outputs: a partial path ending (towards the inputs) at node [head] with
   [suffix] delay already fixed has potential arrival(head) + suffix, an
   exact upper bound that equals the true path arrival when completed, so
   the first K completed paths popped from the queue are exactly the K
   worst. *)

type path = {
  nodes : Netlist.Circuit.id list; (* input first, output last *)
  arrival : float;
}

(* A minimal max-heap on float priorities. *)
module Heap = struct
  type 'a t = { mutable data : (float * 'a) array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h prio v =
    if h.len = Array.length h.data then begin
      let grown =
        Array.make (Stdlib.max 16 (2 * Array.length h.data)) (0.0, v)
      in
      Array.blit h.data 0 grown 0 h.len;
      h.data <- grown
    end;
    h.data.(h.len) <- (prio, v);
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) < fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      h.data.(0) <- h.data.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let largest = ref !i in
        if l < h.len && fst h.data.(l) > fst h.data.(!largest) then largest := l;
        if r < h.len && fst h.data.(r) > fst h.data.(!largest) then largest := r;
        if !largest <> !i then begin
          swap h !i !largest;
          i := !largest
        end
        else continue := false
      done;
      Some top
    end
end

(* Partial path: [head] is the node still to be expanded; [tail] holds the
   nodes already fixed, head-exclusive, input..output order when reversed. *)
type partial = { head : Netlist.Circuit.id; tail : Netlist.Circuit.id list }

let k_worst (analysis : Analysis.t) circuit ~k =
  if k < 1 then invalid_arg "Paths.k_worst: k < 1";
  let electrical = Analysis.electrical analysis in
  let heap = Heap.create () in
  List.iter
    (fun o -> Heap.push heap (Analysis.arrival analysis o) { head = o; tail = [] })
    (Netlist.Circuit.outputs circuit);
  let results = ref [] in
  let count = ref 0 in
  let rec drain () =
    if !count < k then
      match Heap.pop heap with
      | None -> ()
      | Some (potential, p) ->
          let fanins = Netlist.Circuit.fanins circuit p.head in
          if Array.length fanins = 0 then begin
            incr count;
            results :=
              { nodes = p.head :: p.tail; arrival = potential } :: !results
          end
          else begin
            let arcs = Electrical.arc_delays electrical p.head in
            let suffix = potential -. Analysis.arrival analysis p.head in
            Array.iteri
              (fun idx fi ->
                Heap.push heap
                  (Analysis.arrival analysis fi +. arcs.(idx) +. suffix)
                  { head = fi; tail = p.head :: p.tail })
              fanins
          end;
          drain ()
  in
  drain ();
  List.rev !results

(* Exact delay moments of one specific path under a variation model: pure
   sums of arc moments, no max approximation. *)
let path_moments ~model circuit (electrical : Electrical.t) path =
  let rec walk acc = function
    | a :: (b :: _ as rest) ->
        let fanins = Netlist.Circuit.fanins circuit b in
        let arc_index = ref (-1) in
        Array.iteri (fun idx fi -> if fi = a then arc_index := idx) fanins;
        if !arc_index < 0 then
          invalid_arg "Paths.path_moments: nodes are not connected";
        let delay = (Electrical.arc_delays electrical b).(!arc_index) in
        let strength =
          Cells.Cell.strength (Netlist.Circuit.cell_exn circuit b)
        in
        let arc = Variation.Model.delay_moments model ~delay ~strength in
        walk (Numerics.Clark.sum acc arc) rest
    | _ -> acc
  in
  walk (Numerics.Clark.moments ~mean:0.0 ~var:0.0) path.nodes

(* Probability that the path alone violates a period. *)
let violation_probability ~model circuit electrical path ~period =
  let m = path_moments ~model circuit electrical path in
  let sigma = Numerics.Clark.sigma m in
  if sigma <= 0.0 then if m.Numerics.Clark.mean > period then 1.0 else 0.0
  else Numerics.Normal.cdf ((m.Numerics.Clark.mean -. period) /. sigma)

let pp circuit ppf p =
  Fmt.pf ppf "@[<hov 2>%.2f ps: %a@]" p.arrival
    (Fmt.list ~sep:(Fmt.any " -> ") Fmt.string)
    (List.map (Netlist.Circuit.node_name circuit) p.nodes)
